# Developer entry points. `make check` is the pre-merge gate: format
# (when ocamlformat is installed), build, full test suite, the simlint
# determinism gate, and a 10k-tick end-to-end smoke that a run report is
# written and parses.

.PHONY: all build test fmt lint baseline-update check smoke fuzz-smoke bench-smoke clean

# Worker count for the parallel targets below. Results are byte-identical
# for any J (see DESIGN.md, "Parallel execution & determinism contract"),
# so this only affects wall-clock.
J ?= 2

all: build

build:
	dune build

test:
	dune runtest

fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt --auto-promote; \
	else \
		echo "ocamlformat not installed; skipping format check"; \
	fi

# Determinism & simulation-hygiene gate (rules D001-D010; see DESIGN.md).
# Exits non-zero on any finding that is neither suppressed in-source nor
# listed in tools/simlint/baseline.json, or when a baseline entry is
# stale. Also emits the SARIF 2.1.0 form for CI code-scanning upload.
lint: build
	dune exec tools/simlint/main.exe -- --root . --sarif _build/simlint.sarif

# Re-record tools/simlint/baseline.json from the current findings
# (deterministic output; review the diff before committing).
baseline-update: build
	dune exec tools/simlint/main.exe -- --root . --baseline-update

smoke: build
	dune exec bin/dinersim.exe -- extract --horizon 10000 --report /tmp/dinersim-smoke.json
	dune exec bin/dinersim.exe -- report /tmp/dinersim-smoke.json

# Bounded schedule-fuzzing campaign over the real algorithms (fixed root
# seed, so the exact same configs every time; -j only changes wall-clock,
# never the report body). Exits non-zero if any run violates a dining
# property.
fuzz-smoke: build
	dune exec bin/dinersim.exe -- fuzz --runs 200 --seed 0xF5EED --max-horizon 6000 \
		-j $(J) --report /tmp/dinersim-fuzz-smoke.json
	dune exec bin/dinersim.exe -- report /tmp/dinersim-fuzz-smoke.json

# Refresh the committed benchmark snapshot. Medians over --trials runs;
# the extra trials execute on the worker pool, and the recorded `jobs`
# field documents the pool width used for the refresh.
bench-smoke: build
	dune exec bench/main.exe -- --trials 3 -j $(J)

check: fmt build test lint smoke fuzz-smoke
	@echo "check: OK"

clean:
	dune clean
