# Developer entry points. `make check` is the pre-merge gate: format
# (when ocamlformat is installed), build, full test suite, and a
# 10k-tick end-to-end smoke that a run report is written and parses.

.PHONY: all build test fmt check smoke clean

all: build

build:
	dune build

test:
	dune runtest

fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt --auto-promote; \
	else \
		echo "ocamlformat not installed; skipping format check"; \
	fi

smoke: build
	dune exec bin/dinersim.exe -- extract --horizon 10000 --report /tmp/dinersim-smoke.json
	dune exec bin/dinersim.exe -- report /tmp/dinersim-smoke.json

check: fmt build test smoke
	@echo "check: OK"

clean:
	dune clean
