# Developer entry points. `make check` is the pre-merge gate: format
# (when ocamlformat is installed), build, full test suite, the simlint
# determinism gate, and a 10k-tick end-to-end smoke that a run report is
# written and parses.

.PHONY: all build test fmt lint baseline-update check smoke fuzz-smoke mc-smoke \
	bench-smoke bench-scale bench-diff trace-smoke clean

# Worker count for the parallel targets below. Results are byte-identical
# for any J (see DESIGN.md, "Parallel execution & determinism contract"),
# so this only affects wall-clock.
J ?= 2

# Relative-slowdown gate for bench-diff: an experiment regresses when its
# fresh median exceeds THRESHOLD x the committed median. CI passes a more
# generous value (shared runners are noisy); see .github/workflows/ci.yml.
BENCH_THRESHOLD ?= 1.5

all: build

build:
	dune build

test:
	dune runtest

fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt --auto-promote; \
	else \
		echo "ocamlformat not installed; skipping format check"; \
	fi

# Determinism & simulation-hygiene gate (rules D001-D018; see DESIGN.md).
# Exits non-zero on any finding that is neither suppressed in-source nor
# listed in tools/simlint/baseline.json, or when a baseline entry is
# stale. Also emits the SARIF 2.1.0 form for CI code-scanning upload.
# Optionally restrict to a rule subset: make lint RULES=D014,D016
lint: build
	dune exec tools/simlint/main.exe -- --root . --sarif _build/simlint.sarif $(if $(RULES),--only $(RULES))

# Re-record tools/simlint/baseline.json from the current findings
# (deterministic output; review the diff before committing).
baseline-update: build
	dune exec tools/simlint/main.exe -- --root . --baseline-update

smoke: build
	dune exec bin/dinersim.exe -- extract --horizon 10000 --report /tmp/dinersim-smoke.json
	dune exec bin/dinersim.exe -- report /tmp/dinersim-smoke.json

# Bounded schedule-fuzzing campaign over the real algorithms (fixed root
# seed, so the exact same configs every time; -j only changes wall-clock,
# never the report body). Exits non-zero if any run violates a dining
# property.
fuzz-smoke: build
	dune exec bin/dinersim.exe -- fuzz --runs 200 --seed 0xF5EED --max-horizon 6000 \
		-j $(J) --report /tmp/dinersim-fuzz-smoke.json
	dune exec bin/dinersim.exe -- report /tmp/dinersim-fuzz-smoke.json

# Bounded exhaustive model check of a known-good instance: every one of
# the 256 schedules a dls(delta=2,phi=1) adversary can produce for wf on
# a pair within 12 ticks, all dining monitors green. Exits non-zero on
# any violation; the dinersim-mc/1 report is re-parsed as a round-trip
# check (and uploaded as a CI artifact).
mc-smoke: build
	dune exec bin/dinersim.exe -- check --algo wf --topology pair --horizon 12 \
		--delta 2 --phi 1 --eat-ticks 1 --seed 0x5EED -j $(J) \
		--out /tmp/dinersim-mc-repro --report /tmp/dinersim-mc-smoke.json
	dune exec bin/dinersim.exe -- report /tmp/dinersim-mc-smoke.json

# Refresh the committed benchmark snapshot. Medians over --trials runs;
# the extra trials execute on the worker pool, and the recorded `jobs`
# field documents the pool width used for the refresh.
bench-smoke: build
	dune exec bench/main.exe -- --trials 3 -j $(J)

# Engine scaling curve, n = 10^2..10^5 (ring of hygienic diners, fixed
# total proc-tick budget — see DESIGN.md "Engine at scale"). Written to
# its own file so a partial-suite run never clobbers the committed
# full-suite snapshot that bench-diff compares against; the scale keys
# also live in the full suite, so regressions are gated there.
bench-scale: build
	dune exec bench/main.exe -- scale2 scale3 scale4 scale5 \
		--trials 3 -j $(J) --out _build/bench-scale.json

# Perf-regression gate: stash the committed snapshot, run a fresh
# bench-smoke (which overwrites BENCH_dining.json in place), and diff the
# two medians. Exits non-zero when any experiment slowed down by more
# than BENCH_THRESHOLD x, or dropped out of the suite. The machine diff
# lands in _build/benchdiff.json (uploaded as a CI artifact).
bench-diff: build
	cp BENCH_dining.json _build/bench-baseline.json
	$(MAKE) bench-smoke
	dune exec tools/benchdiff/main.exe -- _build/bench-baseline.json BENCH_dining.json \
		--threshold $(BENCH_THRESHOLD) --json _build/benchdiff.json

# End-to-end smoke of the Perfetto exporter: render a corpus repro
# artifact and a freshly streamed JSONL trace, then sanity-check both
# documents parse back.
trace-smoke: build
	dune exec bin/dinersim.exe -- trace test/corpus/family-sync.json \
		-o /tmp/dinersim-trace-smoke.perfetto.json
	dune exec bin/dinersim.exe -- dining --seed 41 --horizon 3000 \
		--trace-out /tmp/dinersim-trace-smoke.jsonl > /dev/null
	dune exec bin/dinersim.exe -- trace /tmp/dinersim-trace-smoke.jsonl

check: fmt build test lint smoke fuzz-smoke mc-smoke trace-smoke
	@echo "check: OK"

clean:
	dune clean
