(** Undirected conflict graphs for dining instances.

    A dining instance is modelled by an undirected conflict graph
    [DP = (Pi, E)] (Section 4): vertices are diners, and an edge [(p, q)]
    represents the set of shared resources contended for by neighbors [p]
    and [q].

    The representation is compressed sparse rows over dense int arrays, so
    graphs with 10^5..10^6 vertices cost O(n + m) words; [degree] is O(1),
    [are_neighbors] O(log degree), and neighbor iteration a linear scan in
    ascending pid order (the same order the previous set-based
    representation iterated in). *)

type t

val of_edges : n:int -> (Dsim.Types.pid * Dsim.Types.pid) list -> t
(** [of_edges ~n edges] builds a graph over pids [0 .. n-1]. Self-loops and
    out-of-range endpoints are rejected; duplicate edges are merged. *)

val n : t -> int

val neighbor_list : t -> Dsim.Types.pid -> Dsim.Types.pid list
(** Neighbors of [p] in ascending order — for edge-state construction at
    registration time. Allocates; per-packet / per-tick code should use
    {!iter_neighbors}. *)

val iter_neighbors : t -> Dsim.Types.pid -> (Dsim.Types.pid -> unit) -> unit
(** [iter_neighbors t p f] applies [f] to each neighbor of [p] in ascending
    order, without allocating. *)

val are_neighbors : t -> Dsim.Types.pid -> Dsim.Types.pid -> bool

val edges : t -> (Dsim.Types.pid * Dsim.Types.pid) list
(** Each undirected edge once, as [(min, max)] pairs, sorted. *)

val degree : t -> Dsim.Types.pid -> int
val max_degree : t -> int

val distance : t -> Dsim.Types.pid -> Dsim.Types.pid -> int option
(** Length of a shortest path between two vertices ([None] if
    disconnected; [Some 0] for a vertex and itself). *)

(** {1 Generators} *)

val empty : n:int -> t

val pair : unit -> t
(** Two diners, one edge — the shape of every DX_i in the reduction. *)

val ring : n:int -> t
val clique : n:int -> t

val star : n:int -> t
(** Vertex 0 is the hub. *)

val path : n:int -> t
val grid : rows:int -> cols:int -> t

val random : n:int -> p:float -> rng:Dsim.Prng.t -> t
(** Erdos–Renyi G(n, p). Draws one [chance] per vertex pair — O(n^2) PRNG
    draws, fine up to a few thousand vertices; use {!gnm} for large sparse
    graphs. *)

val gnm : n:int -> m:int -> rng:Dsim.Prng.t -> t
(** Uniform random graph with exactly [m] distinct edges, built by
    rejection-sampling endpoint pairs — O(m) expected draws in the sparse
    regime, so 10^5-vertex benchmark graphs cost seconds of PRNG work, not
    the O(n^2) sweep of {!random}. Deterministic in the [rng] seed. *)
