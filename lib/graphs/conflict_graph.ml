open Dsim

(* Compressed sparse rows: [adj.(off.(p) .. off.(p+1)-1)] are the neighbors
   of [p], sorted ascending. Dense int arrays instead of a [Pidset] per
   vertex keep a 10^5..10^6-vertex graph to two flat arrays (O(n + m)
   words, no per-edge tree nodes) and make degree O(1) and neighbor
   iteration a cache-friendly linear scan. Ascending adjacency order
   matches the old [Pidset] iteration order, so every neighbor-order-
   sensitive client (edge-state construction, monitors, POR wake) behaves
   identically. *)
type t = { size : int; off : int array; adj : int array }

let of_edges ~n edges =
  if n <= 0 then invalid_arg "Conflict_graph.of_edges: n must be positive";
  List.iter
    (fun (a, b) ->
      if a = b then invalid_arg "Conflict_graph.of_edges: self-loop";
      if a < 0 || a >= n || b < 0 || b >= n then
        invalid_arg "Conflict_graph.of_edges: endpoint out of range")
    edges;
  (* Encode both directions of each undirected edge as [src * n + dst];
     sorting then groups by source with ascending destinations, and
     adjacent duplicates merge in one pass. *)
  let m2 = 2 * List.length edges in
  let keys = Array.make (max 1 m2) 0 in
  let k = ref 0 in
  List.iter
    (fun (a, b) ->
      keys.(!k) <- (a * n) + b;
      keys.(!k + 1) <- (b * n) + a;
      k := !k + 2)
    edges;
  Array.sort compare keys;
  let off = Array.make (n + 1) 0 in
  let adj = Array.make (max 1 m2) 0 in
  let kept = ref 0 in
  for i = 0 to m2 - 1 do
    if i = 0 || keys.(i) <> keys.(i - 1) then begin
      let src = keys.(i) / n and dst = keys.(i) mod n in
      adj.(!kept) <- dst;
      off.(src + 1) <- off.(src + 1) + 1;
      incr kept
    end
  done;
  for p = 0 to n - 1 do
    off.(p + 1) <- off.(p + 1) + off.(p)
  done;
  { size = n; off; adj = Array.sub adj 0 !kept }

let n t = t.size
let degree t p = t.off.(p + 1) - t.off.(p)

let iter_neighbors t p f =
  for i = t.off.(p) to t.off.(p + 1) - 1 do
    f t.adj.(i)
  done

let neighbor_list t p =
  let acc = ref [] in
  for i = t.off.(p + 1) - 1 downto t.off.(p) do
    acc := t.adj.(i) :: !acc
  done;
  !acc

let are_neighbors t p q =
  (* Binary search in the sorted adjacency row of [p]. *)
  let lo = ref t.off.(p) and hi = ref (t.off.(p + 1) - 1) in
  let found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let v = t.adj.(mid) in
    if v = q then found := true else if v < q then lo := mid + 1 else hi := mid - 1
  done;
  !found

let edges t =
  (* Rows ascend and each row is sorted, so emitting (p, q) with p < q in
     scan order yields the sorted (min, max) list directly. *)
  let acc = ref [] in
  for p = t.size - 1 downto 0 do
    for i = t.off.(p + 1) - 1 downto t.off.(p) do
      let q = t.adj.(i) in
      if p < q then acc := (p, q) :: !acc
    done
  done;
  !acc

let max_degree t =
  let best = ref 0 in
  for p = 0 to t.size - 1 do
    best := max !best (degree t p)
  done;
  !best

let empty ~n = of_edges ~n []

let pair () = of_edges ~n:2 [ (0, 1) ]

let ring ~n =
  if n < 3 then invalid_arg "Conflict_graph.ring: need n >= 3";
  of_edges ~n (List.init n (fun i -> (i, (i + 1) mod n)))

let clique ~n =
  let acc = ref [] in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      acc := (a, b) :: !acc
    done
  done;
  of_edges ~n !acc

let star ~n =
  if n < 2 then invalid_arg "Conflict_graph.star: need n >= 2";
  of_edges ~n (List.init (n - 1) (fun i -> (0, i + 1)))

let path ~n =
  if n < 2 then invalid_arg "Conflict_graph.path: need n >= 2";
  of_edges ~n (List.init (n - 1) (fun i -> (i, i + 1)))

let grid ~rows ~cols =
  if rows < 1 || cols < 1 then invalid_arg "Conflict_graph.grid: bad dimensions";
  let id r c = (r * cols) + c in
  let acc = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then acc := (id r c, id r (c + 1)) :: !acc;
      if r + 1 < rows then acc := (id r c, id (r + 1) c) :: !acc
    done
  done;
  of_edges ~n:(rows * cols) !acc

let random ~n ~p ~rng =
  let acc = ref [] in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      if Prng.chance rng ~p then acc := (a, b) :: !acc
    done
  done;
  of_edges ~n !acc

let gnm ~n ~m ~rng =
  if n < 2 then invalid_arg "Conflict_graph.gnm: need n >= 2";
  if m < 0 || m > n * (n - 1) / 2 then invalid_arg "Conflict_graph.gnm: too many edges";
  (* Rejection-sample distinct pairs; every draw comes from [rng], so the
     graph is a pure function of the seed. The expected number of redraws
     stays O(m) while m is below about half of all pairs — the sparse
     regime (m = O(n)) this generator exists for. *)
  let seen = Hashtbl.create (2 * max 1 m) in
  let acc = ref [] in
  let made = ref 0 in
  while !made < m do
    let a = Prng.int_in rng ~lo:0 ~hi:(n - 1) in
    let b = Prng.int_in rng ~lo:0 ~hi:(n - 1) in
    if a <> b then begin
      let lo = min a b and hi = max a b in
      let key = (lo * n) + hi in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        acc := (lo, hi) :: !acc;
        incr made
      end
    end
  done;
  of_edges ~n !acc

let distance t a b =
  if a = b then Some 0
  else begin
    let dist = Array.make t.size (-1) in
    dist.(a) <- 0;
    let queue = Queue.create () in
    Queue.add a queue;
    let found = ref None in
    while !found = None && not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      for i = t.off.(u) to t.off.(u + 1) - 1 do
        let v = t.adj.(i) in
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          if v = b then found := Some dist.(v) else Queue.add v queue
        end
      done
    done;
    !found
  end
