(** Discrete-event simulation engine.

    Implements the system model of Section 4 of the paper:

    - a finite set of processes [0 .. n-1] executing atomic steps: in each
      step a process receives at most one pending message and executes at
      most one enabled guarded action (interleaving semantics, with a
      rotating cursor providing weak fairness across a process's actions);
    - reliable non-FIFO channels: every message sent to a correct process is
      eventually delivered exactly once, uncorrupted; delivery delays are
      chosen by the {!Adversary}; messages to crashed processes vanish;
    - crash faults: a crashed process ceases execution permanently;
    - a discrete global clock (the tick counter), inaccessible to protocols
      except through their local [now] capability, which models local
      step-counting rather than global time.

    All nondeterminism derives from a single seeded {!Prng}, so runs are
    exactly reproducible. *)

type t

val create : ?seed:int64 -> ?retain_trace:bool -> n:int -> adversary:Adversary.t -> unit -> t
(** [retain_trace] (default [true]) is forwarded to {!Trace.create}: pass
    [false] for very long runs that stream the trace to an [Obs.Sink]
    instead of holding it in memory. *)

val n : t -> int
val now : t -> Types.time
val trace : t -> Trace.t
val rng : t -> Prng.t

val ctx : t -> Types.pid -> Context.t
(** Capability bundle for building components at process [pid]. *)

val register : t -> Types.pid -> Component.t -> unit
(** Add a component (protocol layer / logical thread) to a process. Raises
    [Invalid_argument] on duplicate component names at the same process. *)

val schedule_crash : t -> Types.pid -> at:Types.time -> unit
(** The process ceases taking steps at the first tick >= [at]. *)

val crash_now : t -> Types.pid -> unit

val is_live : t -> Types.pid -> bool
val crashed : t -> Types.Pidset.t
val live_set : t -> Types.Pidset.t

val in_flight : t -> tag:string -> int
(** Number of undelivered messages addressed to components named [tag]
    (including those already ripe but not yet consumed). Used by white-box
    monitors such as the Lemma 3 checker; not available to protocols. *)

val in_flight_filtered : t -> tag:string -> f:(Msg.t -> bool) -> int
(** Like {!in_flight} but counting only payloads satisfying [f]. *)

val in_flight_total : t -> int
(** All undelivered packets, any tag (excludes inbox-pending ones). *)

val sent_total : t -> int
(** Total messages sent so far (accounting, used by benches). *)

val sent_with_tag : t -> tag:string -> int

val sent_by_tag : t -> (string * int) list
(** All (tag, sent count) pairs, sorted by tag — a deterministic snapshot
    for metrics export. *)

val on_tick : t -> (unit -> unit) -> unit
(** Register a hook executed at the end of every tick (after all process
    steps); used by online invariant monitors. *)

val step : t -> unit
(** Advance the clock by one tick. *)

val run : t -> until:Types.time -> unit
(** Run until [now >= until]. *)

val run_while : t -> max:Types.time -> (unit -> bool) -> unit
(** Step while the predicate holds and [now < max]. *)
