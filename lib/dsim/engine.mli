(** Discrete-event simulation engine.

    Implements the system model of Section 4 of the paper:

    - a finite set of processes [0 .. n-1] executing atomic steps: in each
      step a process receives at most one pending message and executes at
      most one enabled guarded action (interleaving semantics, with a
      rotating cursor providing weak fairness across a process's actions);
    - reliable non-FIFO channels: every message sent to a correct process is
      eventually delivered exactly once, uncorrupted; delivery delays are
      chosen by the {!Adversary}; messages to crashed processes vanish;
    - crash faults: a crashed process ceases execution permanently;
    - a discrete global clock (the tick counter), inaccessible to protocols
      except through their local [now] capability, which models local
      step-counting rather than global time.

    All nondeterminism derives from a single seeded {!Prng}, so runs are
    exactly reproducible. *)

type t

val create :
  ?seed:int64 ->
  ?retain_trace:bool ->
  ?delivery:[ `Wheel | `Reference ] ->
  n:int ->
  adversary:Adversary.t ->
  unit ->
  t
(** [retain_trace] (default [true]) is forwarded to {!Trace.create}: pass
    [false] for very long runs that stream the trace to an [Obs.Sink]
    instead of holding it in memory.

    [delivery] selects the in-flight representation: [`Wheel] (default), an
    O(1) bucketed timing wheel keyed on delivery tick with an overflow map
    beyond the horizon, or [`Reference], the previous tree-map of buckets.
    The two are observationally identical (same traces, same PRNG draws,
    same delivery order — property-tested in [test/test_scale.ml]);
    [`Reference] exists only as the oracle for that differential test. *)

val n : t -> int
val now : t -> Types.time
val trace : t -> Trace.t
val rng : t -> Prng.t

val ctx : t -> Types.pid -> Context.t
(** Capability bundle for building components at process [pid]. *)

val register : t -> Types.pid -> Component.t -> unit
(** Add a component (protocol layer / logical thread) to a process. Raises
    [Invalid_argument] on duplicate component names at the same process. *)

val schedule_crash : t -> Types.pid -> at:Types.time -> unit
(** The process ceases taking steps at the first tick >= [at]. *)

val crash_now : t -> Types.pid -> unit

val is_live : t -> Types.pid -> bool
val crashed : t -> Types.Pidset.t
val live_set : t -> Types.Pidset.t

val live_count : t -> int
(** Number of live processes, maintained incrementally — O(1), unlike
    [Types.Pidset.cardinal (live_set t)] which rebuilds a set per call.
    Per-tick instrumentation should use this. *)

val in_flight : t -> tag:string -> int
(** Number of undelivered messages addressed to components named [tag]
    (including those already ripe but not yet consumed). Used by white-box
    monitors such as the Lemma 3 checker; not available to protocols. O(1):
    backed by per-tag counters maintained at send, crash-time discard and
    inbox drain. *)

val in_flight_scan : t -> tag:string -> int
(** Same quantity as {!in_flight}, recomputed by walking every in-flight
    bucket and every inbox — O(total undelivered traffic). Kept as the
    debug cross-check for the incremental counters (see
    [test/test_scale.ml]); monitors should call {!in_flight}. *)

val in_flight_filtered : t -> tag:string -> f:(Msg.t -> bool) -> int
(** Like {!in_flight} but counting only payloads satisfying [f]. This one
    is a scan — the filter is an arbitrary predicate, so no counter can be
    maintained for it. Its only client (the Lemma 3 monitor) runs on
    2-process reduction pairs where traffic is tiny. *)

val in_flight_total : t -> int
(** All undelivered packets, any tag (excludes inbox-pending ones). *)

val sent_total : t -> int
(** Total messages sent so far (accounting, used by benches). *)

val sent_with_tag : t -> tag:string -> int

val sent_by_tag : t -> (string * int) list
(** All (tag, sent count) pairs, sorted by tag — a deterministic snapshot
    for metrics export. *)

val on_tick : t -> (unit -> unit) -> unit
(** Register a hook executed at the end of every tick (after all process
    steps); used by online invariant monitors. *)

val step : t -> unit
(** Advance the clock by one tick. *)

val run : t -> until:Types.time -> unit
(** Run until [now >= until]. *)

val run_while : t -> max:Types.time -> (unit -> bool) -> unit
(** Step while the predicate holds and [now < max]. *)
