type event =
  | Transition of { instance : string; pid : Types.pid; from_ : Types.phase; to_ : Types.phase }
  | Suspect of { detector : string; owner : Types.pid; target : Types.pid }
  | Trust of { detector : string; owner : Types.pid; target : Types.pid }
  | Crash of { pid : Types.pid }
  | Note of { pid : Types.pid; label : string; info : string }

type entry = { at : Types.time; ev : event }

type t = {
  mutable buf : entry array;
  mutable len : int;
  mutable retain : bool;
  mutable subs : (entry -> unit) list; (* registration order *)
}

let dummy = { at = 0; ev = Crash { pid = -1 } }

let create ?(retain = true) () =
  { buf = Array.make 1024 dummy; len = 0; retain; subs = [] }

let subscribe t f = t.subs <- t.subs @ [ f ]

let set_retain t b = t.retain <- b
let retains t = t.retain

let append t ~at ev =
  (match t.subs with
  | [] -> ()
  | subs ->
      (* simlint: allow D011 — entry + fanout closure exist only when subscribers are registered *)
      let e = { at; ev } in
      (* simlint: allow D011 — see above: live-subscriber path, not the default hot configuration *)
      List.iter (fun f -> f e) subs);
  if t.retain then begin
    if t.len = Array.length t.buf then begin
      (* simlint: allow D011 — amortised doubling of the retained trace buffer *)
      let bigger = Array.make (2 * t.len) dummy in
      Array.blit t.buf 0 bigger 0 t.len;
      t.buf <- bigger
    end;
    (* simlint: allow D011 — the retained entry IS the product; set retain:false to run allocation-free *)
    t.buf.(t.len) <- { at; ev };
    t.len <- t.len + 1
  end

let length t = t.len

let iter t f =
  for i = 0 to t.len - 1 do
    f t.buf.(i)
  done

let entries t =
  let acc = ref [] in
  for i = t.len - 1 downto 0 do
    acc := t.buf.(i) :: !acc
  done;
  !acc

let filter t p =
  let acc = ref [] in
  iter t (fun e -> if p e then acc := e :: !acc);
  List.rev !acc

let crash_times t =
  let m = ref Types.Pidmap.empty in
  iter t (fun e ->
      match e.ev with
      | Crash { pid } when not (Types.Pidmap.mem pid !m) ->
          m := Types.Pidmap.add pid e.at !m
      | _ -> ());
  !m

let transitions ?instance ?pid t =
  filter t (fun e ->
      match e.ev with
      | Transition tr ->
          (match instance with Some i -> String.equal i tr.instance | None -> true)
          && (match pid with Some p -> p = tr.pid | None -> true)
      | _ -> false)

let phase_timeline t ~instance ~pid ~horizon =
  let trs = transitions ~instance ~pid t in
  let rec go current since = function
    | [] -> if since >= horizon then [] else [ (since, horizon, current) ]
    | e :: rest -> (
        match e.ev with
        | Transition tr ->
            let seg = if e.at > since then [ (since, e.at, current) ] else [] in
            seg @ go tr.to_ e.at rest
        | _ -> go current since rest)
  in
  go Types.Thinking 0 trs

let eating_intervals t ~instance ~pid ~horizon =
  phase_timeline t ~instance ~pid ~horizon
  |> List.filter_map (fun (a, b, ph) ->
         if Types.phase_equal ph Types.Eating then Some (a, b) else None)

let suspicion_flips t ~detector ~owner ~target =
  filter t (fun e ->
      match e.ev with
      | Suspect s -> String.equal s.detector detector && s.owner = owner && s.target = target
      | Trust s -> String.equal s.detector detector && s.owner = owner && s.target = target
      | _ -> false)
  |> List.map (fun e ->
         match e.ev with
         | Suspect _ -> (e.at, true)
         | Trust _ -> (e.at, false)
         | _ -> assert false)

let suspected_at t ~detector ~owner ~target ~at ~initially =
  let flips = suspicion_flips t ~detector ~owner ~target in
  List.fold_left (fun acc (ts, v) -> if ts <= at then v else acc) initially flips

let notes ?pid ?label t =
  filter t (fun e ->
      match e.ev with
      | Note n ->
          (match pid with Some p -> p = n.pid | None -> true)
          && (match label with Some l -> String.equal l n.label | None -> true)
      | _ -> false)

let pp_event fmt = function
  | Transition { instance; pid; from_; to_ } ->
      Format.fprintf fmt "[%s] p%d: %a -> %a" instance pid Types.pp_phase from_ Types.pp_phase to_
  | Suspect { detector; owner; target } ->
      Format.fprintf fmt "[%s] p%d suspects p%d" detector owner target
  | Trust { detector; owner; target } ->
      Format.fprintf fmt "[%s] p%d trusts p%d" detector owner target
  | Crash { pid } -> Format.fprintf fmt "CRASH p%d" pid
  | Note { pid; label; info } -> Format.fprintf fmt "note p%d %s %s" pid label info

let pp_entry fmt e = Format.fprintf fmt "t=%-6d %a" e.at pp_event e.ev

let dump ?limit fmt t =
  let n = match limit with Some l -> min l t.len | None -> t.len in
  for i = 0 to n - 1 do
    Format.fprintf fmt "%a@." pp_entry t.buf.(i)
  done;
  if n < t.len then Format.fprintf fmt "... (%d more)@." (t.len - n)

(* RFC-4180: a field containing a comma, double quote, CR or LF is wrapped
   in double quotes, with embedded quotes doubled. *)
let csv_field s =
  let needs_quoting =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s
  in
  if not needs_quoting then s
  else begin
    let b = Buffer.create (String.length s + 8) in
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string b "\"\"" else Buffer.add_char b c)
      s;
    Buffer.add_char b '"';
    Buffer.contents b
  end

let csv_row e =
  let f = Printf.sprintf in
  let q = csv_field in
  match e.ev with
  | Transition { instance; pid; from_; to_ } ->
      f "%d,transition,%s,%d,,%s->%s" e.at (q instance) pid (Types.phase_to_string from_)
        (Types.phase_to_string to_)
  | Suspect { detector; owner; target } -> f "%d,suspect,%s,%d,%d," e.at (q detector) owner target
  | Trust { detector; owner; target } -> f "%d,trust,%s,%d,%d," e.at (q detector) owner target
  | Crash { pid } -> f "%d,crash,,%d,," e.at pid
  | Note { pid; label; info } -> f "%d,note,%s,%d,,%s" e.at (q label) pid (q info)

let to_csv t =
  let buf = Buffer.create (4096 + (t.len * 32)) in
  Buffer.add_string buf "at,kind,scope,actor,peer,detail\n";
  iter t (fun e ->
      Buffer.add_string buf (csv_row e);
      Buffer.add_char buf '\n');
  Buffer.contents buf

let write_csv t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_csv t))
