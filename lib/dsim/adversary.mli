(** Run adversaries: message delays and step schedules.

    The paper's system model is asynchronous — message delay and relative
    process speed are unbounded but finite, channels are reliable and
    non-FIFO, and correct processes take infinitely many steps. A finite
    simulation can only exhibit bounded behaviours, so an adversary is a
    *family of knobs* over those bounds; the interesting regimes are:

    - {!synchronous}: lock-step, delay 1 — the friendliest schedule.
    - {!async_uniform}: random bounded delays and random step skipping with
      a weak-fairness backstop.
    - {!partial_sync}: arbitrary (large, reordering) delays before an
      unknown global stabilisation time [gst], bounded by [delta] after —
      the classic model in which ◇P is implementable.
    - {!bursty}: alternating calm/storm delay phases before [gst]; stresses
      timeout adaptation. *)

type t = {
  name : string;
  delay : Prng.t -> now:Types.time -> src:Types.pid -> dst:Types.pid -> int;
      (** Delivery delay (>= 1 ticks) assigned when a message is sent. *)
  steps : Prng.t -> now:Types.time -> Types.pid -> bool;
      (** Whether this live process is offered a step this tick. The engine
          additionally forces a step after [fairness_bound] consecutive
          skipped ticks, so correct processes always take infinitely many
          steps. *)
  fairness_bound : int;
}

val synchronous : unit -> t

val async_uniform : ?max_delay:int -> ?step_prob:float -> ?fairness_bound:int -> unit -> t

val partial_sync :
  ?gst:Types.time ->
  ?pre_max_delay:int ->
  ?delta:int ->
  ?pre_step_prob:float ->
  ?fairness_bound:int ->
  unit ->
  t
(** Before [gst]: delays uniform in [1, pre_max_delay], steps offered with
    probability [pre_step_prob]. From [gst] on: delays uniform in
    [1, delta], every live process steps every tick. *)

val dls : ?delta:int -> ?phi:int -> unit -> t
(** DLS-style parametric adversary: message delays uniform in [1, delta]
    and steps offered with probability 1/2, under a weak-fairness backstop
    of [phi] (every live process takes a step at least every [phi] ticks —
    the relative-speed bound). With [delta = 1] and [phi = 1] this is the
    synchronous model. The decision space of this adversary — each delay a
    choice in [1, delta], each unforced step offer a boolean — is what the
    bounded exhaustive explorer in lib/mc enumerates through {!drive}.
    Raises [Invalid_argument] unless [delta >= 1] and [phi >= 1]. *)

val handicap : slow:Types.pid list -> factor:float -> t -> t
(** Derive an adversary where the listed processes are offered steps only
    with probability [factor] of the base schedule (their weak-fairness
    backstop is stretched by [1/factor] too, so they stay correct — just
    arbitrarily slow, which asynchrony permits). *)

(** {1 Record / replay}

    The schedule-fuzzing harness needs to (a) capture every nondeterministic
    choice an adversary makes during a run and (b) re-execute a run with
    some of those choices overridden (the shrinker's neutralised
    candidates). Both wrappers forward each query to the base adversary
    {e first} — consuming exactly the PRNG draws the base would consume —
    so recording never perturbs the run it observes, and replaying the full
    recorded decision sequence reproduces the recorded run bit-identically. *)

type decision =
  | Delay of int  (** A delivery-delay choice, in ticks (>= 1). *)
  | Step of bool  (** A step-offer choice. *)

type tape
(** Mutable recording of the decision sequence of one run, in query order
    (delay and step queries share a single position counter). *)

val tape : unit -> tape
val tape_length : tape -> int
val tape_decisions : tape -> decision array

val record : tape -> t -> t
(** Wrap an adversary so every decision is appended to the tape. *)

val replay : len:int -> overrides:(int * decision) list -> t -> t
(** [replay ~len ~overrides base] drives the first [len] queries from the
    override table: query [i < len] takes the decision at position [i] when
    one is present with the matching kind, and otherwise the {e friendliest}
    choice (delay 1 / step offered). Queries at positions [>= len] fall back
    to the base adversary. Replaying [~len:(tape_length tp)] with the full
    recorded decision list reproduces the recorded run exactly; removing
    overrides neutralises the corresponding adversarial choices. Raises
    [Invalid_argument] on an override position outside [0, len). *)

(** {1 Driven adversaries}

    The model-checking explorer needs to {e choose} every adversary
    decision rather than record or override a random one. [drive] hands
    each query — with its tick and the pids involved — to a controller
    callback that returns the decision. *)

type query =
  | Delay_q of { now : Types.time; src : Types.pid; dst : Types.pid }
      (** A delivery-delay choice for a message sent at [now]. *)
  | Step_q of { now : Types.time; pid : Types.pid }
      (** A step-offer choice for [pid] at tick [now]. *)

val drive : (query -> decision) -> t -> t
(** [drive controller base] answers every adversary query with
    [controller q]. The base adversary's decision is computed (and its
    PRNG draws burnt) {e first}, exactly as {!record} does — so a driven
    run consumes the same engine PRNG stream as a {!replay} of the chosen
    decisions, and a counterexample found by the explorer replays
    bit-identically from an ordinary full-override decision table. Raises
    [Invalid_argument] when the controller returns a decision of the wrong
    kind for the query, or a delay [< 1]. *)

val bursty :
  ?gst:Types.time ->
  ?calm:int ->
  ?storm:int ->
  ?storm_delay:int ->
  ?delta:int ->
  ?fairness_bound:int ->
  unit ->
  t
(** Before [gst], time alternates between [calm]-tick windows (delay 1-3)
    and [storm]-tick windows (delay up to [storm_delay]); after [gst],
    behaves like {!partial_sync}. *)
