type pid = int
type time = int

type phase =
  | Thinking
  | Hungry
  | Eating
  | Exiting

let phase_to_string = function
  | Thinking -> "thinking"
  | Hungry -> "hungry"
  | Eating -> "eating"
  | Exiting -> "exiting"

let phase_of_string = function
  | "thinking" -> Some Thinking
  | "hungry" -> Some Hungry
  | "eating" -> Some Eating
  | "exiting" -> Some Exiting
  | _ -> None

let pp_phase fmt p = Format.pp_print_string fmt (phase_to_string p)

let phase_equal (a : phase) (b : phase) = a = b

module Pidset = Set.Make (Int)
module Pidmap = Map.Make (Int)

let pidset_of_list l = Pidset.of_list l

let pp_pidset fmt s =
  Format.fprintf fmt "{%s}"
    (String.concat "," (List.map string_of_int (Pidset.elements s)))
