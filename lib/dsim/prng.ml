type t = { mutable state : int64 }

let create seed = { state = seed }

let copy t = { state = t.state }

let golden_gamma = 0x9E3779B97F4A7C15L

(* splitmix64 finalizer: Steele, Lea & Flood, "Fast splittable pseudorandom
   number generators", OOPSLA 2014. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = create (next_int64 t)

(* A splitmix64 step keyed by the index alone: the child stream for index
   [i] is a pure function of [(seed, i)], unlike [split] whose children
   depend on how many draws preceded them. Campaign run [i] can therefore
   be executed on any worker, in any order, and see the same stream. *)
let derive seed ~index =
  if index < 0 then invalid_arg "Prng.derive: index must be non-negative";
  create (mix (Int64.add seed (Int64.mul golden_gamma (Int64.of_int (index + 1)))))

let int t ~bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection-free modulo is fine here: bounds are tiny relative to 2^62. *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let int_in t ~lo ~hi =
  if lo > hi then invalid_arg "Prng.int_in: lo > hi";
  lo + int t ~bound:(hi - lo + 1)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let float t =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  r /. 9007199254740992.0 (* 2^53 *)

let chance t ~p =
  if p <= 0.0 then false else if p >= 1.0 then true else float t < p

let pick t a =
  if Array.length a = 0 then invalid_arg "Prng.pick: empty array";
  a.(int t ~bound:(Array.length a))

(* Fisher-Yates over a.(0 .. len-1), leaving the tail untouched. The draw
   sequence for a given [len] is identical to [shuffle] on an array of
   exactly that length, so hot paths can reuse an oversized scratch buffer
   without perturbing replay. *)
let shuffle_prefix t a ~len =
  if len < 0 || len > Array.length a then invalid_arg "Prng.shuffle_prefix: bad len";
  for i = len - 1 downto 1 do
    let j = int t ~bound:(i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let shuffle t a = shuffle_prefix t a ~len:(Array.length a)
