(** Extensible message type.

    Every protocol layer adds its own constructors with [type t += ...]; the
    engine routes messages opaquely by destination pid and component tag, so
    it never needs to inspect payloads. *)

type t = ..

(** A tiny built-in payload used by tests and examples. *)
type t += Unit_msg | Int_msg of int | Str_msg of string
