type 'a t = { mutable buf : 'a array; mutable len : int }

let create () = { buf = [||]; len = 0 }

let length t = t.len

(* simlint: hotpath *)
let add_last t x =
  if t.len = Array.length t.buf then begin
    let cap = max 8 (2 * t.len) in
    (* simlint: allow D011 — amortised doubling; the steady-state append is a plain store *)
    let bigger = Array.make cap x in
    Array.blit t.buf 0 bigger 0 t.len;
    t.buf <- bigger
  end;
  t.buf.(t.len) <- x;
  t.len <- t.len + 1

let check t i = if i < 0 || i >= t.len then invalid_arg "Vec: index out of bounds"

let get t i =
  check t i;
  t.buf.(i)

let set t i x =
  check t i;
  t.buf.(i) <- x

let remove_last t =
  if t.len = 0 then invalid_arg "Vec.remove_last: empty";
  t.len <- t.len - 1

let clear t = t.len <- 0

let iter f t =
  for i = 0 to t.len - 1 do
    f t.buf.(i)
  done

let to_list t =
  let acc = ref [] in
  for i = t.len - 1 downto 0 do
    acc := t.buf.(i) :: !acc
  done;
  !acc
