(** Capabilities handed by the engine to a protocol component at one process.

    [send], [now], [rng] and [log] are the legitimate process-local
    capabilities. [is_live] is an omniscient probe into the global fault
    pattern: real protocols must never call it — it exists only for oracle
    implementations (the perfect and trusting detectors, which *model*
    failure detectors that are not implementable in pure asynchrony) and for
    white-box monitors. *)

type t = {
  self : Types.pid;
  send : dst:Types.pid -> tag:string -> Msg.t -> unit;
  now : unit -> Types.time;
  rng : Prng.t;
  log : Trace.event -> unit;
  is_live : Types.pid -> bool;
}
