type t = {
  name : string;
  delay : Prng.t -> now:Types.time -> src:Types.pid -> dst:Types.pid -> int;
  steps : Prng.t -> now:Types.time -> Types.pid -> bool;
  fairness_bound : int;
}

let synchronous () =
  {
    name = "synchronous";
    delay = (fun _ ~now:_ ~src:_ ~dst:_ -> 1);
    steps = (fun _ ~now:_ _ -> true);
    fairness_bound = 1;
  }

let async_uniform ?(max_delay = 8) ?(step_prob = 0.7) ?(fairness_bound = 16) () =
  {
    name = Printf.sprintf "async(d<=%d,p=%.2f)" max_delay step_prob;
    delay = (fun rng ~now:_ ~src:_ ~dst:_ -> Prng.int_in rng ~lo:1 ~hi:max_delay);
    steps = (fun rng ~now:_ _ -> Prng.chance rng ~p:step_prob);
    fairness_bound;
  }

let partial_sync ?(gst = 500) ?(pre_max_delay = 40) ?(delta = 4) ?(pre_step_prob = 0.5)
    ?(fairness_bound = 32) () =
  {
    name = Printf.sprintf "partial-sync(gst=%d,delta=%d)" gst delta;
    delay =
      (fun rng ~now ~src:_ ~dst:_ ->
        if now >= gst then Prng.int_in rng ~lo:1 ~hi:delta
        else Prng.int_in rng ~lo:1 ~hi:pre_max_delay);
    steps = (fun rng ~now p -> ignore p; now >= gst || Prng.chance rng ~p:pre_step_prob);
    fairness_bound;
  }

let bursty ?(gst = 800) ?(calm = 60) ?(storm = 40) ?(storm_delay = 80) ?(delta = 4)
    ?(fairness_bound = 32) () =
  let in_storm now = now mod (calm + storm) >= calm in
  {
    name = Printf.sprintf "bursty(gst=%d,storm<=%d)" gst storm_delay;
    delay =
      (fun rng ~now ~src:_ ~dst:_ ->
        if now >= gst then Prng.int_in rng ~lo:1 ~hi:delta
        else if in_storm now then Prng.int_in rng ~lo:(storm_delay / 2) ~hi:storm_delay
        else Prng.int_in rng ~lo:1 ~hi:3);
    steps =
      (fun rng ~now p ->
        ignore p;
        now >= gst || if in_storm now then Prng.chance rng ~p:0.25 else Prng.chance rng ~p:0.9);
    fairness_bound;
  }

(* ------------------------------------------------------------------ *)
(* Record / replay.

   Both wrappers forward every query to the base adversary *first*, so the
   engine-shared PRNG consumes exactly the draws the base would consume.
   Recording therefore never perturbs the run it observes, and a replay
   whose overrides equal the recorded decisions reproduces the recorded
   run bit-identically — while a replay with *edited* decisions (the
   shrinker's neutralised candidates) stays fully deterministic, because
   the base draws are a deterministic function of the engine PRNG state
   and the query sequence. *)

type decision = Delay of int | Step of bool

type tape = { mutable rev : decision list; mutable count : int }

let tape () = { rev = []; count = 0 }

let tape_length tp = tp.count

let tape_decisions tp =
  let a = Array.make (max tp.count 1) (Step true) in
  List.iteri (fun i d -> a.(tp.count - 1 - i) <- d) tp.rev;
  Array.sub a 0 tp.count

let push tp d =
  tp.rev <- d :: tp.rev;
  tp.count <- tp.count + 1

let record tp base =
  {
    name = base.name ^ "/rec";
    delay =
      (fun rng ~now ~src ~dst ->
        let d = base.delay rng ~now ~src ~dst in
        push tp (Delay d);
        d);
    steps =
      (fun rng ~now p ->
        let s = base.steps rng ~now p in
        push tp (Step s);
        s);
    fairness_bound = base.fairness_bound;
  }

let replay ~len ~overrides base =
  if len < 0 then invalid_arg "Adversary.replay: negative length";
  let tbl = Hashtbl.create (max 16 (2 * List.length overrides)) in
  List.iter
    (fun (i, d) ->
      if i < 0 || i >= len then invalid_arg "Adversary.replay: override out of range";
      Hashtbl.replace tbl i d)
    overrides;
  let cursor = ref 0 in
  let next () =
    let i = !cursor in
    incr cursor;
    i
  in
  {
    name = Printf.sprintf "%s/replay(%d of %d)" base.name (Hashtbl.length tbl) len;
    delay =
      (fun rng ~now ~src ~dst ->
        let b = base.delay rng ~now ~src ~dst in
        let i = next () in
        if i >= len then b
        else
          match Hashtbl.find_opt tbl i with
          | Some (Delay d) -> d
          | Some (Step _) | None -> 1);
    steps =
      (fun rng ~now p ->
        let b = base.steps rng ~now p in
        let i = next () in
        if i >= len then b
        else match Hashtbl.find_opt tbl i with Some (Step s) -> s | Some (Delay _) | None -> true);
    fairness_bound = base.fairness_bound;
  }

(* ------------------------------------------------------------------ *)
(* DLS-style parametric adversary and the drive hook (model checking).

   [dls] is the bounded counterpart of the classic partially synchronous
   model of Dwork-Lynch-Stockmeyer: every message is delivered within
   [delta] ticks and every live process takes a step at least every [phi]
   ticks (the engine's weak-fairness backstop enforces the latter). The
   natural adversary draws both choices uniformly; under [drive] every
   choice is taken by an external controller instead — the bounded
   exhaustive explorer in lib/mc enumerates exactly this decision space. *)

let dls ?(delta = 2) ?(phi = 2) () =
  if delta < 1 then invalid_arg "Adversary.dls: delta must be >= 1";
  if phi < 1 then invalid_arg "Adversary.dls: phi must be >= 1";
  {
    name = Printf.sprintf "dls(delta=%d,phi=%d)" delta phi;
    delay = (fun rng ~now:_ ~src:_ ~dst:_ -> Prng.int_in rng ~lo:1 ~hi:delta);
    steps = (fun rng ~now:_ _ -> Prng.chance rng ~p:0.5);
    fairness_bound = phi;
  }

type query =
  | Delay_q of { now : Types.time; src : Types.pid; dst : Types.pid }
  | Step_q of { now : Types.time; pid : Types.pid }

let drive controller base =
  {
    name = base.name ^ "/driven";
    delay =
      (fun rng ~now ~src ~dst ->
        (* Burn the base draws first, exactly like [record]: a driven run
           and its full-override [replay] then consume identical PRNG
           streams, so counterexample artifacts replay bit-identically. *)
        let (_ : int) = base.delay rng ~now ~src ~dst in
        match controller (Delay_q { now; src; dst }) with
        | Delay d ->
            if d < 1 then invalid_arg "Adversary.drive: delay must be >= 1" else d
        | Step _ -> invalid_arg "Adversary.drive: Step decision for a delay query");
    steps =
      (fun rng ~now p ->
        let (_ : bool) = base.steps rng ~now p in
        match controller (Step_q { now; pid = p }) with
        | Step s -> s
        | Delay _ -> invalid_arg "Adversary.drive: Delay decision for a step query");
    fairness_bound = base.fairness_bound;
  }

let handicap ~slow ~factor base =
  if factor <= 0.0 || factor > 1.0 then invalid_arg "Adversary.handicap: factor in (0,1]";
  {
    name = Printf.sprintf "%s/handicap(%.2f)" base.name factor;
    delay = base.delay;
    steps =
      (fun rng ~now p ->
        let offered = base.steps rng ~now p in
        if List.mem p slow then offered && Prng.chance rng ~p:factor else offered);
    fairness_bound =
      int_of_float (ceil (float_of_int base.fairness_bound /. factor));
  }
