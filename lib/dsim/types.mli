(** Shared base types for the simulation substrate.

    The model follows Section 4 of the paper: a finite set of processes
    [0 .. n-1], a discrete global clock whose ticks are natural numbers
    (inaccessible to the processes themselves), crash faults, and the four
    diner phases. *)

type pid = int
(** Process identifier; processes are numbered [0 .. n-1]. *)

type time = int
(** Tick of the conceptual global clock [T]. *)

(** The four basic phases of a dining participant (Section 4, "Dining"). *)
type phase =
  | Thinking
  | Hungry
  | Eating
  | Exiting

val phase_to_string : phase -> string

(** Inverse of {!phase_to_string}; [None] on unknown names. *)
val phase_of_string : string -> phase option
val pp_phase : Format.formatter -> phase -> unit
val phase_equal : phase -> phase -> bool

module Pidset : Set.S with type elt = pid
module Pidmap : Map.S with type key = pid

val pidset_of_list : pid list -> Pidset.t
val pp_pidset : Format.formatter -> Pidset.t -> unit
