(** Deterministic pseudo-random number generator (splitmix64).

    All stochastic choices in the simulator flow through this module so that
    every run is exactly reproducible from its seed. [Stdlib.Random] is never
    used anywhere in the library. *)

type t

val create : int64 -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Snapshot of the current generator state. *)

val split : t -> t
(** [split t] derives an independent child stream and advances [t]. *)

val derive : int64 -> index:int -> t
(** [derive seed ~index] is the [index]-th child stream of [seed], as a
    pure function of the pair — no generator state is consumed, so two
    callers derive identical streams regardless of execution order. This is
    what parallel campaign drivers use to make run [i] independent of runs
    [0..i-1]. Requires [index >= 0]. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> bound:int -> int
(** [int t ~bound] is uniform over [0, bound). Requires [bound > 0]. *)

val int_in : t -> lo:int -> hi:int -> int
(** [int_in t ~lo ~hi] is uniform over the inclusive range [lo, hi].
    Requires [lo <= hi]. *)

val bool : t -> bool

val float : t -> float
(** Uniform in [0, 1). *)

val chance : t -> p:float -> bool
(** [chance t ~p] is true with probability [p] (clamped to [0, 1]). *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val shuffle_prefix : t -> 'a array -> len:int -> unit
(** In-place Fisher-Yates shuffle of the first [len] elements, leaving the
    tail untouched. Draws exactly the sequence [shuffle] would on an array
    of length [len], so replay is unchanged when a hot path swaps a fresh
    array for an oversized reusable scratch buffer. *)
