type packet = {
  src : Types.pid;
  dst : Types.pid;
  tag : string;
  tag_id : int; (* interned index into the engine's tag tables *)
  payload : Msg.t;
}

(* In-flight delivery structure. The production representation is a
   bucketed timing wheel: [slots] holds one Vec per future tick in the
   window (t.clock, t.clock + wheel_size], indexed by [at land mask], so
   send and delivery are O(1) in the number of distinct delivery times.
   Deliveries beyond the horizon land in [overflow], an int map keyed on
   delivery tick whose minimum bucket migrates into the wheel the tick it
   enters the window (exactly one bucket can qualify per tick, because
   buckets hold distinct ticks and the window advances one tick at a
   time). The wheel holds only future ticks, so a slot is always empty
   when its tick's packets start arriving.

   [Refmap] is the previous tree-map-of-buckets representation, kept as a
   reference implementation: O(log buckets) per send/delivery, but simple
   enough to be obviously correct. The equivalence property test in
   test/test_scale.ml runs randomized instances under both and demands
   byte-identical traces. *)
type wheel = {
  slots : packet Vec.t array; (* length is a power of two *)
  mask : int; (* Array.length slots - 1 *)
  mutable overflow : packet Vec.t Types.Pidmap.t;
}

type refmap = { mutable buckets : packet Vec.t Types.Pidmap.t }

type delivery = Wheel of wheel | Refmap of refmap

type proc = {
  pid : Types.pid;
  mutable alive : bool;
  mutable crash_at : Types.time option;
  components : Component.t Vec.t; (* registration order *)
  mutable flat_actions : (Component.t * Component.action) array;
  mutable cursor : int; (* weak-fairness rotation over flat_actions *)
  inbox : packet Vec.t;
  mutable last_step : Types.time;
  mutable batch : packet array;
      (* step_process drain scratch, grown geometrically and reused across
         steps; only the first [Vec.length inbox] slots are meaningful *)
}

and t = {
  n_procs : int;
  procs : proc array;
  adversary : Adversary.t;
  prng : Prng.t;
  mutable clock : Types.time;
  delivery : delivery;
  mutable flight_count : int;
  mutable live_count : int;
  tr : Trace.t;
  hooks : (unit -> unit) Vec.t; (* registration order *)
  mutable sent_total : int;
  tag_ids : (string, int) Hashtbl.t; (* tag -> interned id *)
  mutable tag_names : string array; (* id -> tag; first tag_count slots live *)
  mutable tag_count : int;
  mutable sent_tag : int array; (* id -> messages ever sent *)
  mutable pending_tag : int array;
      (* id -> undelivered messages (in flight or sitting in a live inbox);
         maintained incrementally at send / dead-destination discard /
         inbox drain / crash-time inbox clear, so per-tick monitors read
         it in O(1) instead of scanning every bucket and inbox *)
  order : int array;
      (* per-tick scheduling order scratch: rebuilt to the identity and
         shuffled in place each tick, so [step] allocates no order array *)
}

(* 256 ticks of horizon covers every built-in adversary (delays are small
   bounded draws); anything beyond rides the overflow map and costs the
   old O(log n) only for itself. *)
let wheel_size = 256

let create ?(seed = 0xC0FFEEL) ?(retain_trace = true) ?(delivery = `Wheel) ~n ~adversary () =
  if n <= 0 then invalid_arg "Engine.create: n must be positive";
  let procs =
    Array.init n (fun pid ->
        {
          pid;
          alive = true;
          crash_at = None;
          components = Vec.create ();
          flat_actions = [||];
          cursor = 0;
          inbox = Vec.create ();
          last_step = 0;
          batch = [||];
        })
  in
  let delivery =
    match delivery with
    | `Wheel ->
        Wheel
          {
            slots = Array.init wheel_size (fun _ -> Vec.create ());
            mask = wheel_size - 1;
            overflow = Types.Pidmap.empty;
          }
    | `Reference -> Refmap { buckets = Types.Pidmap.empty }
  in
  {
    n_procs = n;
    procs;
    adversary;
    prng = Prng.create seed;
    clock = 0;
    delivery;
    flight_count = 0;
    live_count = n;
    tr = Trace.create ~retain:retain_trace ();
    hooks = Vec.create ();
    sent_total = 0;
    tag_ids = Hashtbl.create 32;
    tag_names = [||];
    tag_count = 0;
    sent_tag = [||];
    pending_tag = [||];
    order = Array.make n 0;
  }

let n t = t.n_procs
let now t = t.clock
let trace t = t.tr
let rng t = t.prng

let is_live t pid = t.procs.(pid).alive
let live_count t = t.live_count

let crashed t =
  Array.fold_left
    (fun acc p -> if p.alive then acc else Types.Pidset.add p.pid acc)
    Types.Pidset.empty t.procs

let live_set t =
  Array.fold_left
    (fun acc p -> if p.alive then Types.Pidset.add p.pid acc else acc)
    Types.Pidset.empty t.procs

let intern_tag t tag =
  match Hashtbl.find_opt t.tag_ids tag with
  | Some id -> id
  | None ->
      let id = t.tag_count in
      if id = Array.length t.tag_names then begin
        let cap = max 16 (2 * (id + 1)) in
        let grow a fill =
          let b = Array.make cap fill in
          Array.blit a 0 b 0 id;
          b
        in
        t.tag_names <- grow t.tag_names "";
        t.sent_tag <- grow t.sent_tag 0;
        t.pending_tag <- grow t.pending_tag 0
      end;
      t.tag_names.(id) <- tag;
      Hashtbl.replace t.tag_ids tag id;
      t.tag_count <- id + 1;
      id

let send t ~src ~dst ~tag payload =
  if dst < 0 || dst >= t.n_procs then invalid_arg "Engine.send: bad destination";
  (* Reliable channels: the message is assigned a finite delay at send time.
     If the destination crashes before delivery, the packet is discarded at
     delivery time (a crashed process takes no further steps anyway). *)
  let delay = max 1 (t.adversary.Adversary.delay t.prng ~now:t.clock ~src ~dst) in
  let at = t.clock + delay in
  let tag_id = intern_tag t tag in
  let pkt = { src; dst; tag; tag_id; payload } in
  (match t.delivery with
  | Wheel w ->
      if at - t.clock <= wheel_size then Vec.add_last w.slots.(at land w.mask) pkt
      else begin
        let bucket =
          match Types.Pidmap.find_opt at w.overflow with
          | Some v -> v
          | None ->
              let v = Vec.create () in
              w.overflow <- Types.Pidmap.add at v w.overflow;
              v
        in
        Vec.add_last bucket pkt
      end
  | Refmap r ->
      let bucket =
        match Types.Pidmap.find_opt at r.buckets with
        | Some v -> v
        | None ->
            let v = Vec.create () in
            r.buckets <- Types.Pidmap.add at v r.buckets;
            v
      in
      Vec.add_last bucket pkt);
  t.flight_count <- t.flight_count + 1;
  t.sent_total <- t.sent_total + 1;
  t.sent_tag.(tag_id) <- t.sent_tag.(tag_id) + 1;
  t.pending_tag.(tag_id) <- t.pending_tag.(tag_id) + 1

let ctx t pid : Context.t =
  {
    Context.self = pid;
    send = (fun ~dst ~tag m -> send t ~src:pid ~dst ~tag m);
    now = (fun () -> t.clock);
    rng = t.prng;
    log = (fun ev -> Trace.append t.tr ~at:t.clock ev);
    is_live = (fun q -> is_live t q);
  }

let reflatten p =
  let ncomps = Vec.length p.components in
  let total = ref 0 in
  for i = 0 to ncomps - 1 do
    total := !total + Array.length (Vec.get p.components i).Component.actions
  done;
  (if !total = 0 then p.flat_actions <- [||]
   else begin
     (* Seed value for Array.make; every slot is overwritten in order. *)
     let rec first i =
       let c = Vec.get p.components i in
       if Array.length c.Component.actions > 0 then (c, c.Component.actions.(0))
       else first (i + 1)
     in
     let flat = Array.make !total (first 0) in
     let k = ref 0 in
     for i = 0 to ncomps - 1 do
       let c = Vec.get p.components i in
       Array.iter
         (fun a ->
           flat.(!k) <- (c, a);
           incr k)
         c.Component.actions
     done;
     p.flat_actions <- flat
   end);
  (* The cursor indexed the *previous* flat layout; re-anchor the
     weak-fairness rotation at the start of the new one so a mid-run
     registration resumes from a well-defined action rather than wherever
     the old rotation happened to stop. *)
  p.cursor <- 0

let register t pid comp =
  let p = t.procs.(pid) in
  let dup = ref false in
  for i = 0 to Vec.length p.components - 1 do
    if String.equal (Vec.get p.components i).Component.cname comp.Component.cname then
      dup := true
  done;
  if !dup then
    invalid_arg
      (Printf.sprintf "Engine.register: duplicate component %s at p%d" comp.Component.cname
         pid);
  (* Vec append keeps n-process setup linear in total registrations; the
     old [p.components <- p.components @ [comp]] list append re-copied the
     whole list per layer, quadratic in layers per process. *)
  Vec.add_last p.components comp;
  reflatten p

let schedule_crash t pid ~at =
  let p = t.procs.(pid) in
  p.crash_at <-
    (match p.crash_at with Some old -> Some (min old at) | None -> Some at)

let do_crash t (p : proc) =
  if p.alive then begin
    p.alive <- false;
    t.live_count <- t.live_count - 1;
    (* Discard the pending inbox; each discarded packet leaves the
       per-tag undelivered count with it. *)
    for i = 0 to Vec.length p.inbox - 1 do
      let pkt = Vec.get p.inbox i in
      t.pending_tag.(pkt.tag_id) <- t.pending_tag.(pkt.tag_id) - 1
    done;
    Vec.clear p.inbox;
    (* simlint: allow D011 — allocates only on the once-per-process crash transition *)
    Trace.append t.tr ~at:t.clock (Trace.Crash { pid = p.pid })
  end

let crash_now t pid = do_crash t t.procs.(pid)

(* Every undelivered packet: the delivery structure (wheel slots +
   overflow, or the reference map) plus the live inboxes. Cost is
   proportional to total traffic — debug/monitoring only; the hot path
   never calls this. *)
let iter_undelivered t f =
  (match t.delivery with
  | Wheel w ->
      Array.iter (fun slot -> Vec.iter f slot) w.slots;
      Types.Pidmap.iter (fun _ bucket -> Vec.iter f bucket) w.overflow
  | Refmap r -> Types.Pidmap.iter (fun _ bucket -> Vec.iter f bucket) r.buckets);
  Array.iter (fun p -> Vec.iter f p.inbox) t.procs

let in_flight_scan t ~tag =
  let count = ref 0 in
  iter_undelivered t (fun pkt -> if String.equal pkt.tag tag then incr count);
  !count

let in_flight t ~tag =
  match Hashtbl.find_opt t.tag_ids tag with Some id -> t.pending_tag.(id) | None -> 0

let in_flight_filtered t ~tag ~f =
  let count = ref 0 in
  iter_undelivered t (fun pkt ->
      if String.equal pkt.tag tag && f pkt.payload then incr count);
  !count

let in_flight_total t = t.flight_count

let sent_total t = t.sent_total

let sent_with_tag t ~tag =
  match Hashtbl.find_opt t.tag_ids tag with Some id -> t.sent_tag.(id) | None -> 0

let sent_by_tag t =
  let acc = ref [] in
  for id = t.tag_count - 1 downto 0 do
    acc := (t.tag_names.(id), t.sent_tag.(id)) :: !acc
  done;
  List.sort (fun (a, _) (b, _) -> String.compare a b) !acc

(* Hooks run in registration order; a Vec keeps registration O(1) amortised
   where the previous [t.hooks <- t.hooks @ [f]] re-copied the whole list,
   quadratic in hook count. *)
let on_tick t f = Vec.add_last t.hooks f

(* Deliver one packet: move it to the destination inbox, or discard it if
   the destination crashed (the per-tag pending count drops either way it
   leaves the system — on discard here, on drain otherwise). *)
(* simlint: hotpath *)
let deliver_packet t pkt =
  t.flight_count <- t.flight_count - 1;
  let p = t.procs.(pkt.dst) in
  if p.alive then Vec.add_last p.inbox pkt
  else t.pending_tag.(pkt.tag_id) <- t.pending_tag.(pkt.tag_id) - 1

(* Iterative bucket delivery in send order (oldest first). The old list
   representation recursed to the bucket tail before delivering, so the
   stack grew with the bucket — a same-tick flood at n=10^5 overflowed it.
   Vec buckets append in send order and an index loop delivers them with
   O(1) stack whatever the bucket size. *)
(* simlint: hotpath *)
let deliver_slot t slot =
  for i = 0 to Vec.length slot - 1 do
    deliver_packet t (Vec.get slot i)
  done;
  Vec.clear slot

(* One wheel turn: deliver the current tick's slot, then migrate the
   overflow bucket entering the window, if any, into the slot just freed
   ([at = clock + wheel_size] maps to [clock land mask]). Migration
   precedes this tick's sends, and a direct wheel insert for the same
   delivery tick can only happen at [clock >= at - wheel_size], so within
   any slot migrated packets (sent strictly earlier) come first and global
   send order — the delivery order the old map preserved — is kept. *)
(* simlint: hotpath *)
let turn_wheel t w =
  deliver_slot t w.slots.(t.clock land w.mask);
  match Types.Pidmap.min_binding_opt w.overflow with
  | Some (at, bucket) when at - t.clock <= wheel_size ->
      w.overflow <- Types.Pidmap.remove at w.overflow;
      let dst = w.slots.(at land w.mask) in
      for i = 0 to Vec.length bucket - 1 do
        Vec.add_last dst (Vec.get bucket i)
      done
  | Some _ | None -> ()

(* Reference delivery: peel ripe buckets off the cheap end of the map in
   ascending delivery-time order, exactly the old tree-map behaviour. *)
(* simlint: hotpath *)
let rec deliver_ref t r =
  match Types.Pidmap.min_binding_opt r.buckets with
  | Some (at, bucket) when at <= t.clock ->
      r.buckets <- Types.Pidmap.remove at r.buckets;
      deliver_slot t bucket;
      deliver_ref t r
  | Some _ | None -> ()

(* First registered component whose name matches the tag handles the
   packet; a message for an unregistered layer is dropped. Open-coded
   index walk (rather than a [find]-style combinator) so the per-packet
   dispatch neither builds a predicate closure nor boxes the result. *)
(* simlint: hotpath *)
let rec route_from (p : proc) i ~src payload tag =
  if i < Vec.length p.components then begin
    let c = Vec.get p.components i in
    if String.equal c.Component.cname tag then c.Component.on_receive ~src payload
    else route_from p (i + 1) ~src payload tag
  end

(* simlint: hotpath *)
let route_receive (p : proc) pkt = route_from p 0 ~src:pkt.src pkt.payload pkt.tag

(* One atomic step of process [p]: consume the pending messages (the paper's
   atomic step receives at most one message from *each* process, so draining
   the inbox — which holds at most a few packets per peer — is faithful and,
   crucially, keeps consumption ahead of production: draining only one packet
   per step would let chatty layers grow the inbox without bound, silently
   stretching every delivery), then execute at most one enabled guarded
   action, scanning from the rotating cursor so that a continuously enabled
   action runs within one full rotation (weak fairness). *)
(* Weak-fairness scan from the rotating cursor: run the first enabled
   action, advancing the cursor past it. Hoisted to top level so the hot
   step builds no [scan] closure (a local [let rec] capturing its
   environment is reallocated per process step). *)
let rec scan_action (p : proc) acts m k =
  if k < m then begin
    let idx = (p.cursor + k) mod m in
    let _, a = acts.(idx) in
    if a.Component.guard () then begin
      p.cursor <- (idx + 1) mod m;
      a.Component.body ()
    end
    else scan_action p acts m (k + 1)
  end

(* simlint: hotpath *)
let step_process t (p : proc) =
  p.last_step <- t.clock;
  let pending = Vec.length p.inbox in
  if pending > 0 then begin
    (* Non-FIFO: consume in a randomly shuffled order. Only the packets
       present at the start of the step are delivered in it. The batch
       lives in per-process scratch reused across steps; [shuffle_prefix]
       draws exactly what [shuffle] on a fresh [pending]-sized array drew,
       so replay digests are unchanged. *)
    if Array.length p.batch < pending then
      (* simlint: allow D011 — amortised geometric scratch growth, not a per-step cost *)
      p.batch <- Array.make (max 8 (2 * pending)) (Vec.get p.inbox 0);
    for i = 0 to pending - 1 do
      let pkt = Vec.get p.inbox i in
      p.batch.(i) <- pkt;
      (* Drained from the inbox: the packet stops counting as undelivered
         the moment this step consumes it, matching what a scan of the
         inboxes at the end of the tick would see. *)
      t.pending_tag.(pkt.tag_id) <- t.pending_tag.(pkt.tag_id) - 1
    done;
    Vec.clear p.inbox;
    Prng.shuffle_prefix t.prng p.batch ~len:pending;
    for i = 0 to pending - 1 do
      if p.alive then route_receive p p.batch.(i)
    done
  end;
  if p.alive then begin
    let acts = p.flat_actions in
    let m = Array.length acts in
    if m > 0 then scan_action p acts m 0
  end

(* simlint: hotpath *)
let step t =
  t.clock <- t.clock + 1;
  for i = 0 to t.n_procs - 1 do
    let p = t.procs.(i) in
    match p.crash_at with
    | Some at when at <= t.clock -> do_crash t p
    | Some _ | None -> ()
  done;
  (match t.delivery with Wheel w -> turn_wheel t w | Refmap r -> deliver_ref t r);
  (* Steps within a tick run in adversary-shuffled order: a fixed pid order
     would systematically favour low pids in same-tick interactions, which
     asynchrony does not promise anyone. The identity order is rebuilt in
     place in per-engine scratch each tick — same draws, same permutation
     as shuffling a fresh [Array.init n Fun.id], without the allocation. *)
  let order = t.order in
  for i = 0 to t.n_procs - 1 do
    order.(i) <- i
  done;
  Prng.shuffle t.prng order;
  for i = 0 to t.n_procs - 1 do
    let p = t.procs.(order.(i)) in
    if p.alive then begin
      let offered = t.adversary.Adversary.steps t.prng ~now:t.clock p.pid in
      let forced = t.clock - p.last_step >= t.adversary.Adversary.fairness_bound in
      if offered || forced then step_process t p
    end
  done;
  Vec.iter (fun f -> f ()) t.hooks

let run t ~until =
  while t.clock < until do
    step t
  done

let run_while t ~max cond =
  while t.clock < max && cond () do
    step t
  done
