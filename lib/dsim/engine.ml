type packet = {
  src : Types.pid;
  dst : Types.pid;
  tag : string;
  payload : Msg.t;
}

type proc = {
  pid : Types.pid;
  mutable alive : bool;
  mutable crash_at : Types.time option;
  mutable components : Component.t list; (* registration order *)
  mutable flat_actions : (Component.t * Component.action) array;
  mutable cursor : int; (* weak-fairness rotation over flat_actions *)
  inbox : packet Vec.t;
  mutable last_step : Types.time;
  mutable batch : packet array;
      (* step_process drain scratch, grown geometrically and reused across
         steps; only the first [Vec.length inbox] slots are meaningful *)
}

and t = {
  n_procs : int;
  procs : proc array;
  adversary : Adversary.t;
  prng : Prng.t;
  mutable clock : Types.time;
  mutable in_flight : packet list Types.Pidmap.t;
      (* keyed by delivery time (an int map); buckets are built by consing *)
  mutable flight_count : int;
  tr : Trace.t;
  hooks : (unit -> unit) Vec.t; (* registration order *)
  mutable sent_total : int;
  sent_by_tag : (string, int) Hashtbl.t;
  order : int array;
      (* per-tick scheduling order scratch: rebuilt to the identity and
         shuffled in place each tick, so [step] allocates no order array *)
}

let create ?(seed = 0xC0FFEEL) ?(retain_trace = true) ~n ~adversary () =
  if n <= 0 then invalid_arg "Engine.create: n must be positive";
  let procs =
    Array.init n (fun pid ->
        {
          pid;
          alive = true;
          crash_at = None;
          components = [];
          flat_actions = [||];
          cursor = 0;
          inbox = Vec.create ();
          last_step = 0;
          batch = [||];
        })
  in
  {
    n_procs = n;
    procs;
    adversary;
    prng = Prng.create seed;
    clock = 0;
    in_flight = Types.Pidmap.empty;
    flight_count = 0;
    tr = Trace.create ~retain:retain_trace ();
    hooks = Vec.create ();
    sent_total = 0;
    sent_by_tag = Hashtbl.create 32;
    order = Array.make n 0;
  }

let n t = t.n_procs
let now t = t.clock
let trace t = t.tr
let rng t = t.prng

let is_live t pid = t.procs.(pid).alive

let crashed t =
  Array.fold_left
    (fun acc p -> if p.alive then acc else Types.Pidset.add p.pid acc)
    Types.Pidset.empty t.procs

let live_set t =
  Array.fold_left
    (fun acc p -> if p.alive then Types.Pidset.add p.pid acc else acc)
    Types.Pidset.empty t.procs

let send t ~src ~dst ~tag payload =
  if dst < 0 || dst >= t.n_procs then invalid_arg "Engine.send: bad destination";
  (* Reliable channels: the message is assigned a finite delay at send time.
     If the destination crashes before delivery, the packet is discarded at
     delivery time (a crashed process takes no further steps anyway). *)
  let delay = max 1 (t.adversary.Adversary.delay t.prng ~now:t.clock ~src ~dst) in
  let at = t.clock + delay in
  let pkt = { src; dst; tag; payload } in
  let bucket = match Types.Pidmap.find_opt at t.in_flight with Some l -> l | None -> [] in
  t.in_flight <- Types.Pidmap.add at (pkt :: bucket) t.in_flight;
  t.flight_count <- t.flight_count + 1;
  t.sent_total <- t.sent_total + 1;
  Hashtbl.replace t.sent_by_tag tag
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.sent_by_tag tag))

let ctx t pid : Context.t =
  {
    Context.self = pid;
    send = (fun ~dst ~tag m -> send t ~src:pid ~dst ~tag m);
    now = (fun () -> t.clock);
    rng = t.prng;
    log = (fun ev -> Trace.append t.tr ~at:t.clock ev);
    is_live = (fun q -> is_live t q);
  }

let reflatten p =
  p.flat_actions <-
    (List.concat_map
       (fun (c : Component.t) -> Array.to_list c.actions |> List.map (fun a -> (c, a)))
       p.components
    |> Array.of_list);
  (* The cursor indexed the *previous* flat layout; re-anchor the
     weak-fairness rotation at the start of the new one so a mid-run
     registration resumes from a well-defined action rather than wherever
     the old rotation happened to stop. *)
  p.cursor <- 0

let register t pid comp =
  let p = t.procs.(pid) in
  if List.exists (fun (c : Component.t) -> String.equal c.cname comp.Component.cname) p.components
  then invalid_arg (Printf.sprintf "Engine.register: duplicate component %s at p%d"
                      comp.Component.cname pid);
  p.components <- p.components @ [ comp ];
  reflatten p

let schedule_crash t pid ~at =
  let p = t.procs.(pid) in
  p.crash_at <-
    (match p.crash_at with Some old -> Some (min old at) | None -> Some at)

let do_crash t (p : proc) =
  if p.alive then begin
    p.alive <- false;
    Vec.clear p.inbox;
    (* simlint: allow D011 — allocates only on the once-per-process crash transition *)
    Trace.append t.tr ~at:t.clock (Trace.Crash { pid = p.pid })
  end

let crash_now t pid = do_crash t t.procs.(pid)

let in_flight t ~tag =
  let count = ref 0 in
  Types.Pidmap.iter
    (fun _ pkts ->
      List.iter (fun pkt -> if String.equal pkt.tag tag then incr count) pkts)
    t.in_flight;
  Array.iter
    (fun p ->
      Vec.iter (fun pkt -> if String.equal pkt.tag tag then incr count) p.inbox)
    t.procs;
  !count

let in_flight_filtered t ~tag ~f =
  let count = ref 0 in
  let consider pkt =
    if String.equal pkt.tag tag && f pkt.payload then incr count
  in
  Types.Pidmap.iter (fun _ pkts -> List.iter consider pkts) t.in_flight;
  Array.iter (fun p -> Vec.iter consider p.inbox) t.procs;
  !count

let in_flight_total t = t.flight_count

let sent_total t = t.sent_total

let sent_with_tag t ~tag = Option.value ~default:0 (Hashtbl.find_opt t.sent_by_tag tag)

let sent_by_tag t =
  Hashtbl.fold (fun tag n acc -> (tag, n) :: acc) t.sent_by_tag []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Hooks run in registration order; a Vec keeps registration O(1) amortised
   where the previous [t.hooks <- t.hooks @ [f]] re-copied the whole list,
   quadratic in hook count. *)
let on_tick t f = Vec.add_last t.hooks f

(* Buckets were built by consing; restore send order within the tick
   (order is irrelevant for correctness — channels are non-FIFO — but
   determinism must not depend on map internals). Recursing to the tail
   first delivers oldest-first without materialising the [List.rev] copy
   the hot path used to pay per bucket; depth is bounded by the bucket
   size, a few packets per tick. *)
let rec deliver_bucket t = function
  | [] -> ()
  | pkt :: rest ->
      deliver_bucket t rest;
      t.flight_count <- t.flight_count - 1;
      let p = t.procs.(pkt.dst) in
      if p.alive then Vec.add_last p.inbox pkt

(* Peel ripe buckets off the cheap end of the map. [partition] walks the
   whole in-flight map — cost proportional to the number of distinct future
   delivery times — every tick; [min_binding] visits exactly the ripe
   buckets (usually zero or one) plus one O(log n) probe, and yields them in
   the same ascending-time order partition did. Top-level recursion rather
   than a local [let rec peel]: a local recursive function is a cyclic
   closure rebuilt on every call of its host. *)
(* simlint: hotpath *)
let rec deliver_ripe t =
  match Types.Pidmap.min_binding_opt t.in_flight with
  | Some (at, pkts) when at <= t.clock ->
      t.in_flight <- Types.Pidmap.remove at t.in_flight;
      deliver_bucket t pkts;
      deliver_ripe t
  | Some _ | None -> ()

(* First registered component whose name matches the tag handles the
   packet; a message for an unregistered layer is dropped. Open-coded
   (rather than [List.find_opt]) so the per-packet dispatch neither builds
   a predicate closure nor boxes the result in an option. *)
let rec route_to_component ~src payload tag (comps : Component.t list) =
  match comps with
  | [] -> ()
  | c :: rest ->
      if String.equal c.Component.cname tag then c.Component.on_receive ~src payload
      else route_to_component ~src payload tag rest

let route_receive (p : proc) pkt = route_to_component ~src:pkt.src pkt.payload pkt.tag p.components

(* One atomic step of process [p]: consume the pending messages (the paper's
   atomic step receives at most one message from *each* process, so draining
   the inbox — which holds at most a few packets per peer — is faithful and,
   crucially, keeps consumption ahead of production: draining only one packet
   per step would let chatty layers grow the inbox without bound, silently
   stretching every delivery), then execute at most one enabled guarded
   action, scanning from the rotating cursor so that a continuously enabled
   action runs within one full rotation (weak fairness). *)
(* Weak-fairness scan from the rotating cursor: run the first enabled
   action, advancing the cursor past it. Hoisted to top level so the hot
   step builds no [scan] closure (a local [let rec] capturing its
   environment is reallocated per process step). *)
let rec scan_action (p : proc) acts m k =
  if k < m then begin
    let idx = (p.cursor + k) mod m in
    let _, a = acts.(idx) in
    if a.Component.guard () then begin
      p.cursor <- (idx + 1) mod m;
      a.Component.body ()
    end
    else scan_action p acts m (k + 1)
  end

(* simlint: hotpath *)
let step_process t (p : proc) =
  p.last_step <- t.clock;
  let pending = Vec.length p.inbox in
  if pending > 0 then begin
    (* Non-FIFO: consume in a randomly shuffled order. Only the packets
       present at the start of the step are delivered in it. The batch
       lives in per-process scratch reused across steps; [shuffle_prefix]
       draws exactly what [shuffle] on a fresh [pending]-sized array drew,
       so replay digests are unchanged. *)
    if Array.length p.batch < pending then
      (* simlint: allow D011 — amortised geometric scratch growth, not a per-step cost *)
      p.batch <- Array.make (max 8 (2 * pending)) (Vec.get p.inbox 0);
    for i = 0 to pending - 1 do
      p.batch.(i) <- Vec.get p.inbox i
    done;
    Vec.clear p.inbox;
    Prng.shuffle_prefix t.prng p.batch ~len:pending;
    for i = 0 to pending - 1 do
      if p.alive then route_receive p p.batch.(i)
    done
  end;
  if p.alive then begin
    let acts = p.flat_actions in
    let m = Array.length acts in
    if m > 0 then scan_action p acts m 0
  end

(* simlint: hotpath *)
let step t =
  t.clock <- t.clock + 1;
  for i = 0 to t.n_procs - 1 do
    let p = t.procs.(i) in
    match p.crash_at with
    | Some at when at <= t.clock -> do_crash t p
    | Some _ | None -> ()
  done;
  deliver_ripe t;
  (* Steps within a tick run in adversary-shuffled order: a fixed pid order
     would systematically favour low pids in same-tick interactions, which
     asynchrony does not promise anyone. The identity order is rebuilt in
     place in per-engine scratch each tick — same draws, same permutation
     as shuffling a fresh [Array.init n Fun.id], without the allocation. *)
  let order = t.order in
  for i = 0 to t.n_procs - 1 do
    order.(i) <- i
  done;
  Prng.shuffle t.prng order;
  for i = 0 to t.n_procs - 1 do
    let p = t.procs.(order.(i)) in
    if p.alive then begin
      let offered = t.adversary.Adversary.steps t.prng ~now:t.clock p.pid in
      let forced = t.clock - p.last_step >= t.adversary.Adversary.fairness_bound in
      if offered || forced then step_process t p
    end
  done;
  Vec.iter (fun f -> f ()) t.hooks

let run t ~until =
  while t.clock < until do
    step t
  done

let run_while t ~max cond =
  while t.clock < max && cond () do
    step t
  done
