(** Structured run trace.

    Every observable event of a run — dining phase transitions, suspicion
    flips of any failure-detector module, crashes, and protocol-specific
    notes — is appended here with its global-clock timestamp. All property
    checkers (exclusion, wait-freedom, completeness, accuracy, fairness and
    the paper's lemma invariants) are pure functions over a trace. *)

type event =
  | Transition of { instance : string; pid : Types.pid; from_ : Types.phase; to_ : Types.phase }
      (** A diner of dining instance [instance] changed phase. *)
  | Suspect of { detector : string; owner : Types.pid; target : Types.pid }
      (** [owner]'s module of detector [detector] started suspecting [target]. *)
  | Trust of { detector : string; owner : Types.pid; target : Types.pid }
      (** [owner]'s module of detector [detector] stopped suspecting [target]. *)
  | Crash of { pid : Types.pid }
  | Note of { pid : Types.pid; label : string; info : string }
      (** Protocol-specific marker (e.g. ping sent, ack received). *)

type entry = { at : Types.time; ev : event }

type t

val create : ?retain:bool -> unit -> t
(** [retain] (default [true]): whether appended entries are stored in the
    in-memory buffer. With [~retain:false] the trace only fans appends out
    to subscribers — the memory-free streaming mode for very long runs
    (property checkers then run offline over an exported JSONL file). *)

val append : t -> at:Types.time -> event -> unit

val subscribe : t -> (entry -> unit) -> unit
(** Register a streaming observer called synchronously on every append, in
    registration order, before (and regardless of) in-memory retention.
    This is the attachment point for [Obs.Sink] trace sinks. *)

val set_retain : t -> bool -> unit
val retains : t -> bool
val length : t -> int
val entries : t -> entry list
(** All entries in chronological (append) order. *)

val iter : t -> (entry -> unit) -> unit
val filter : t -> (entry -> bool) -> entry list

val crash_times : t -> Types.time Types.Pidmap.t
(** First crash time of each crashed process. *)

val transitions : ?instance:string -> ?pid:Types.pid -> t -> entry list
(** Phase transitions, optionally restricted to one instance and/or diner. *)

val eating_intervals :
  t -> instance:string -> pid:Types.pid -> horizon:Types.time -> (Types.time * Types.time) list
(** Closed eating sessions of a diner as [(start, stop)] pairs; a session
    still open at the end of the run is closed at [horizon]. *)

val phase_timeline :
  t -> instance:string -> pid:Types.pid -> horizon:Types.time
  -> (Types.time * Types.time * Types.phase) list
(** Piecewise-constant phase history [(from, to_exclusive, phase)] covering
    [0, horizon); diners start [Thinking]. *)

val suspicion_flips :
  t -> detector:string -> owner:Types.pid -> target:Types.pid
  -> (Types.time * bool) list
(** Chronological suspicion history: [(t, true)] = started suspecting at [t];
    [(t, false)] = started trusting. Initial attitude is whatever the
    detector logged first (detectors log their initial state at time 0). *)

val suspected_at :
  t -> detector:string -> owner:Types.pid -> target:Types.pid -> at:Types.time
  -> initially:bool -> bool
(** Attitude of [owner] toward [target] at time [at] given the attitude
    before any logged flip. *)

val notes : ?pid:Types.pid -> ?label:string -> t -> entry list

val pp_entry : Format.formatter -> entry -> unit
val dump : ?limit:int -> Format.formatter -> t -> unit

val to_csv : t -> string
(** The whole trace as CSV with header
    [at,kind,scope,actor,peer,detail] — [scope] is the dining instance or
    detector name, [actor]/[peer] the pids involved, [detail] the phase
    transition, flip direction, or note payload. *)

val write_csv : t -> path:string -> unit
