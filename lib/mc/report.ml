let schema_version = "dinersim-mc/1"

let counterexample_json (v : Explore.violation) =
  let failed =
    List.filter_map
      (fun (c : Obs.Report.check) ->
        if c.Obs.Report.holds then None else Some (Obs.Json.Str c.Obs.Report.name))
      v.Explore.repro.Check.Repro.checks
  in
  Obs.Json.Obj
    [
      ("crash_index", Obs.Json.Int v.Explore.crash_index);
      ("schedule_index", Obs.Json.Int v.Explore.schedule_index);
      ("digest", Obs.Json.Str (Check.Repro.digest v.Explore.repro));
      ("failed", Obs.Json.Arr failed);
      ("repro", Check.Repro.to_json v.Explore.repro);
    ]

let make ?(max_counterexamples = 16) ~(config : Explore.config) ~(result : Explore.result)
    ?metrics ?wall () =
  let s = result.Explore.stats in
  let cexs =
    List.filteri (fun i _ -> i < max_counterexamples) result.Explore.violations
  in
  Obs.Json.Obj
    [
      ("schema", Obs.Json.Str schema_version);
      ("cmd", Obs.Json.Str "check");
      ("config", Check.Config.to_json config.Explore.base);
      ( "explorer",
        Obs.Json.Obj
          [
            ("por", Obs.Json.Bool config.Explore.por);
            ("max_schedules", Obs.Json.Int config.Explore.max_schedules);
            ("split_depth", Obs.Json.Int config.Explore.split_depth);
            ("crash_budget", Obs.Json.Int config.Explore.crash_budget);
            ("crash_grid", Obs.Json.Int config.Explore.crash_grid);
          ] );
      ("crash_schedules", Obs.Json.Int s.Explore.crash_schedules);
      ("schedules", Obs.Json.Int s.Explore.schedules);
      ("pruned", Obs.Json.Int s.Explore.pruned);
      ("violations", Obs.Json.Int s.Explore.violation_count);
      ("max_decisions", Obs.Json.Int s.Explore.max_decisions);
      ("truncated", Obs.Json.Bool s.Explore.truncated);
      ("counterexamples", Obs.Json.Arr (List.map counterexample_json cexs));
      ( "metrics",
        match metrics with Some m -> Obs.Metrics.to_json m | None -> Obs.Json.Obj [] );
      ("wall_clock", Option.value ~default:Obs.Json.Null wall);
    ]
