(** Bounded exhaustive schedule exploration (stateless model checking).

    The explorer enumerates {e every} adversary decision sequence of a
    bounded instance — a {!Check.Config.t} whose adversary is the
    DLS-parametric family [Dls {delta; phi}] — and executes each complete
    schedule through {!Check.Runner}, using the existing wait-freedom /
    ◇WX / exiting monitors as oracles. The decision tape of
    {!Dsim.Adversary} is the schedule representation: a schedule is the
    full sequence of delay choices (each in [1, delta]) and unforced
    step-offer booleans the engine queries during one run, so every
    counterexample is an ordinary full-override ["fuzz-repro/1"] artifact
    that [dinersim replay] re-executes bit-identically (see
    {!Dsim.Adversary.drive} for the PRNG-parity argument).

    Exploration is depth-first by re-execution: each tree node is a
    decision prefix; visiting it runs a fresh engine that replays the
    prefix and extends it greedily with first choices (step offered, delay
    1), pushing the untaken siblings as pending prefixes. Forced steps —
    queries where the engine's weak-fairness backstop fires because the
    process has not stepped for [phi] ticks — have a single branch,
    normalised to [Step true]; the explorer mirrors the engine's fairness
    accounting exactly, so tapes never branch on decisions the engine
    would ignore.

    {2 Partial-order reduction}

    With [por] on, a sleep-set–style reduction prunes step branches that
    only commute with everything explored since a sibling subtree covered
    them. Decisions are owned by pids (a step offer by its process, a
    delay by the destination); two decisions are treated as independent
    when their owners are distinct non-neighbors of the conflict graph.
    Descending into the [Step false] sibling after exploring [Step true]
    puts the pid to sleep; any later decision owned by a dependent pid
    (the pid itself or a conflict-graph neighbor stepping or receiving a
    message) wakes it; a fresh [Step true] branch for a sleeping pid is
    pruned. This is deliberately conservative about wake-ups but still
    heuristic for timing-sensitive oracles — see DESIGN.md for the
    soundness argument and its caveats, and the full-vs-POR
    verdict-equality test that backs it empirically.

    {2 Determinism and parallelism}

    Exploration is a pure function of the config: a sequential phase
    enumerates the DFS tree down to [split_depth] decisions, yielding an
    ordered list of completed schedules and subtree roots; the subtrees
    are then explored on an {!Exec.Pool} and merged in enumeration order.
    The split does not depend on [jobs], and the [max_schedules] budget
    applies per subtree, so results are byte-identical at any job
    count. *)

open Dsim

type config = {
  base : Check.Config.t;
      (** Bounded instance. The adversary must be [Dls] and [handicap]
          must be [None] (the explorer mirrors the unstretched fairness
          bound). *)
  por : bool;  (** Enable sleep-set partial-order reduction. *)
  max_schedules : int;
      (** Schedule budget {e per subtree root} (and per phase-1 leaf run):
          exceeding it sets [truncated] instead of diverging. *)
  split_depth : int;
      (** Decision depth of the sequential root split. Must not depend on
          [jobs]; deeper splits expose more parallelism. *)
  jobs : int;  (** Worker domains for subtree exploration. *)
  crash_budget : int;
      (** Enumerate all crash schedules of at most this many crashes
          (default 0: crash-free — heartbeat detection is slower than the
          short horizons this explorer can afford). *)
  crash_grid : int;  (** Tick spacing of candidate crash times. *)
  collect_schedules : bool;
      (** Also return every explored complete schedule (cross-validation
          tests); keep off for large runs. *)
}

val default : base:Check.Config.t -> config
(** [por = true], [max_schedules = 20_000], [split_depth = 4],
    [jobs = 1], [crash_budget = 0], [crash_grid = 4],
    [collect_schedules = false]. *)

type violation = {
  crash_index : int;  (** Index into {!crash_schedules} of the config. *)
  schedule_index : int;
      (** Enumeration index of the failing schedule within that crash
          schedule's exploration. *)
  repro : Check.Repro.t;
      (** Full-override replayable artifact (schema ["fuzz-repro/1"]). *)
}

type stats = {
  crash_schedules : int;
  schedules : int;  (** Complete schedules executed. *)
  pruned : int;  (** Branches removed by the sleep-set reduction. *)
  violation_count : int;
  max_decisions : int;  (** Longest decision sequence seen. *)
  truncated : bool;  (** Some subtree exhausted its schedule budget. *)
}

type result = {
  stats : stats;
  violations : violation list;  (** In global enumeration order. *)
  schedules : Adversary.decision array list;
      (** Every explored schedule, in enumeration order — empty unless
          [collect_schedules]. *)
}

val crash_schedules : config -> (Types.pid * Types.time) list list
(** The crash schedules the explorer enumerates, in order: the empty
    schedule, then all sorted pid/tick assignments of size up to
    [crash_budget] with ticks on the [crash_grid]. *)

val run :
  ?progress:(stats -> unit) ->
  ?metrics:Obs.Metrics.t ->
  registry:Check.Runner.registry ->
  config ->
  result
(** Explore exhaustively. [progress] is invoked with cumulative stats
    after each crash schedule's exploration completes (it runs on the
    calling domain). [metrics] receives the explorer counters
    ([mc_schedules], [mc_pruned_branches], [mc_violations],
    [mc_crash_schedules]). Raises [Invalid_argument] when the config's
    adversary is not [Dls] or a handicap is set. *)

val random_schedule : registry:Check.Runner.registry -> Check.Config.t -> Prng.t -> Adversary.decision array
(** Execute one run of the config under a uniformly random DLS schedule
    drawn from the given (explorer-side) PRNG and return its full
    normalised decision tape — forced steps recorded as [Step true],
    exactly as the exhaustive enumeration records them. Used by the
    cross-validation test: every tape this returns must be a member of the
    un-reduced exhaustive schedule set. *)

val schedule_key : Adversary.decision array -> string
(** Compact injective rendering of a decision tape ("S1.D2.S0..."), for
    set membership and digests in tests. *)
