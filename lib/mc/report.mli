(** Exhaustive-run summaries, schema ["dinersim-mc/1"].

    One JSON document per [dinersim check] invocation:

    {v
    {
      "schema":          "dinersim-mc/1",
      "cmd":             "check",
      "config":          { ... },   // the explored Check.Config
      "explorer":        { "por":..., "max_schedules":..., "split_depth":...,
                           "crash_budget":..., "crash_grid":... },
      "crash_schedules": 1,
      "schedules":       152,
      "pruned":          38,
      "violations":      0,
      "max_decisions":   41,
      "truncated":       false,
      "counterexamples": [ { "crash_index":..., "schedule_index":...,
                             "digest":..., "failed": [...],
                             "repro": { fuzz-repro/1 } } ],
      "metrics":         { ... },
      "wall_clock":      { ... }    // the only nondeterministic field
    }
    v}

    Everything except ["wall_clock"] is a pure function of the explored
    config — the worker job count is deliberately {e not} part of the
    body, so reports from the same instance are byte-identical at any
    [-j] (the jobs-invariance property test pins this). Embedded
    counterexamples are complete digest-pinned ["fuzz-repro/1"] artifacts:
    extract one and hand it to [dinersim replay]. {!Obs.Report.read_any}
    recognises and shape-validates the schema, so [dinersim report] vets
    these documents too. *)

val schema_version : string

val make :
  ?max_counterexamples:int ->
  config:Explore.config ->
  result:Explore.result ->
  ?metrics:Obs.Metrics.t ->
  ?wall:Obs.Json.t ->
  unit ->
  Obs.Json.t
(** Build the document. At most [max_counterexamples] (default 16, in
    enumeration order) are embedded — the ["violations"] counter still
    reports the full count, so a capped report is visible as
    [violations > length counterexamples], never a silent truncation. *)
