open Dsim

type config = {
  base : Check.Config.t;
  por : bool;
  max_schedules : int;
  split_depth : int;
  jobs : int;
  crash_budget : int;
  crash_grid : int;
  collect_schedules : bool;
}

let default ~base =
  {
    base;
    por = true;
    max_schedules = 20_000;
    split_depth = 4;
    jobs = 1;
    crash_budget = 0;
    crash_grid = 4;
    collect_schedules = false;
  }

type violation = { crash_index : int; schedule_index : int; repro : Check.Repro.t }

type stats = {
  crash_schedules : int;
  schedules : int;
  pruned : int;
  violation_count : int;
  max_decisions : int;
  truncated : bool;
}

type result = {
  stats : stats;
  violations : violation list;
  schedules : Adversary.decision array list;
}

let dls_bounds (c : Check.Config.t) =
  match c.Check.Config.adversary with
  | Check.Config.Dls { delta; phi } -> (delta, phi)
  | _ -> invalid_arg "Mc.Explore: the config adversary must be the Dls family"

let schedule_key decisions =
  let buf = Buffer.create (4 * Array.length decisions) in
  Array.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char buf '.';
      match d with
      | Adversary.Step s -> Buffer.add_string buf (if s then "S1" else "S0")
      | Adversary.Delay d ->
          Buffer.add_char buf 'D';
          Buffer.add_string buf (string_of_int d))
    decisions;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* One node visit: re-execute the engine, replaying [prefix] and
   extending it with first choices. The controller mirrors the engine's
   weak-fairness accounting (engine.ml: [forced = clock - last_step >=
   fairness_bound], and a step — offered or forced — resets [last_step])
   so forced queries never branch, and maintains the sleep set along the
   replayed prefix so reduction state needs no snapshotting: a [Step
   false] at an unforced, awake pid can only be a descended sibling, which
   is exactly the "put it to sleep" case. *)

exception Cut
(* Raised by the controller to abandon an engine run once the root-split
   depth is reached; the partial tape becomes a subtree root. *)

type visit =
  | Completed of {
      decisions : Adversary.decision array;
      outcome : Check.Runner.outcome;
      pending : Adversary.decision array list;
      fresh_pruned : int;
    }
  | Cut_at of {
      prefix : Adversary.decision array;
      pending : Adversary.decision array list;
      fresh_pruned : int;
    }

let visit ?cut ~registry ~graph ~delta ~phi ~por (cfg : Check.Config.t)
    (prefix : Adversary.decision array) =
  let n = Graphs.Conflict_graph.n graph in
  let last_step = Array.make n 0 in
  let sleep = Array.make n false in
  let chosen = ref [] (* reversed tape so far *) in
  let count = ref 0 in
  let pending = ref [] (* untaken siblings, head = next in DFS order *) in
  let fresh_pruned = ref 0 in
  let wake pid =
    sleep.(pid) <- false;
    Graphs.Conflict_graph.iter_neighbors graph pid (fun q -> sleep.(q) <- false)
  in
  let sibling d = Array.of_list (List.rev (d :: !chosen)) in
  let controller q =
    let i = !count in
    (match cut with Some depth when i >= depth -> raise Cut | _ -> ());
    let answer =
      if i < Array.length prefix then prefix.(i)
      else begin
        (* Fresh position: pick the first branch, queue the siblings.
           Prepending each position's siblings keeps [pending] in DFS
           order — deeper positions come first, in-order within one. *)
        match q with
        | Adversary.Step_q { now; pid } ->
            let forced = now - last_step.(pid) >= phi in
            if forced then Adversary.Step true
            else if por && sleep.(pid) then begin
              incr fresh_pruned;
              Adversary.Step false
            end
            else begin
              pending := sibling (Adversary.Step false) :: !pending;
              Adversary.Step true
            end
        | Adversary.Delay_q _ ->
            let rec siblings d acc =
              if d < 2 then acc else siblings (d - 1) (sibling (Adversary.Delay d) :: acc)
            in
            pending := siblings delta !pending;
            Adversary.Delay 1
      end
    in
    (match (q, answer) with
    | Adversary.Step_q { now; pid }, Adversary.Step s ->
        let forced = now - last_step.(pid) >= phi in
        if s || forced then begin
          last_step.(pid) <- now;
          wake pid
        end
        else sleep.(pid) <- true
    | Adversary.Delay_q { dst; _ }, Adversary.Delay _ -> wake dst
    | Adversary.Step_q _, Adversary.Delay _ | Adversary.Delay_q _, Adversary.Step _ ->
        (* Query kinds are deterministic in the answered prefix, so a
           replayed decision always matches its query. *)
        assert false);
    chosen := answer :: !chosen;
    incr count;
    answer
  in
  match
    try `Done (Check.Runner.run ~drive:controller ~registry cfg) with Cut -> `Abandoned
  with
  | `Done outcome ->
      Completed
        {
          decisions = Array.of_list (List.rev !chosen);
          outcome;
          pending = !pending;
          fresh_pruned = !fresh_pruned;
        }
  | `Abandoned ->
      Cut_at
        {
          prefix = Array.of_list (List.rev !chosen);
          pending = !pending;
          fresh_pruned = !fresh_pruned;
        }

(* ------------------------------------------------------------------ *)
(* Phase 1: sequential root split. DFS down to [split_depth] decisions,
   producing the ordered frontier — completed short schedules stay
   leaves; everything else becomes a subtree root for phase 2. *)

type item =
  | Leaf of { decisions : Adversary.decision array; outcome : Check.Runner.outcome }
  | Subtree of Adversary.decision array

let split ~registry ~graph ~delta ~phi ~por ~split_depth cfg =
  let items = ref [] (* reversed enumeration order *) in
  let pruned = ref 0 in
  let stack = ref [ [||] ] in
  let rec loop () =
    match !stack with
    | [] -> ()
    | prefix :: rest ->
        stack := rest;
        (if Array.length prefix >= split_depth then items := Subtree prefix :: !items
         else
           match visit ~cut:split_depth ~registry ~graph ~delta ~phi ~por cfg prefix with
           | Completed { decisions; outcome; pending; fresh_pruned } ->
               pruned := !pruned + fresh_pruned;
               items := Leaf { decisions; outcome } :: !items;
               stack := pending @ !stack
           | Cut_at { prefix = p; pending; fresh_pruned } ->
               pruned := !pruned + fresh_pruned;
               items := Subtree p :: !items;
               stack := pending @ !stack);
        loop ()
  in
  loop ();
  (List.rev !items, !pruned)

(* ------------------------------------------------------------------ *)
(* Phase 2: one work item, on a pool worker. Everything it needs derives
   from its item; results merge in item order (Pool.map's contract). *)

type worker_result = {
  w_schedules : int;
  w_pruned : int;
  w_max_decisions : int;
  w_truncated : bool;
  w_violations : (int * Check.Repro.t) list; (* local schedule index *)
  w_collected : Adversary.decision array list;
}

let record_schedule ~collect ~cfg ~collected ~violations ~local_index decisions
    (outcome : Check.Runner.outcome) =
  if collect then collected := decisions :: !collected;
  match outcome.Check.Runner.failed with
  | [] -> ()
  | _ :: _ ->
      let overrides = List.mapi (fun i d -> (i, d)) (Array.to_list decisions) in
      let repro =
        Check.Repro.v ~config:cfg ~len:(Array.length decisions) ~overrides
          ~checks:outcome.Check.Runner.checks
      in
      violations := (local_index, repro) :: !violations

let explore_subtree ~registry ~graph ~delta ~phi ~por ~budget ~collect cfg root =
  let schedules = ref 0 in
  let pruned = ref 0 in
  let max_decisions = ref 0 in
  let truncated = ref false in
  let violations = ref [] in
  let collected = ref [] in
  let stack = ref [ root ] in
  let rec loop () =
    match !stack with
    | [] -> ()
    | _ :: _ when !schedules >= budget -> truncated := true
    | prefix :: rest ->
        stack := rest;
        (match visit ~registry ~graph ~delta ~phi ~por cfg prefix with
        | Completed { decisions; outcome; pending; fresh_pruned } ->
            pruned := !pruned + fresh_pruned;
            max_decisions := max !max_decisions (Array.length decisions);
            record_schedule ~collect ~cfg ~collected ~violations ~local_index:!schedules
              decisions outcome;
            incr schedules;
            stack := pending @ !stack
        | Cut_at _ -> assert false (* no cut depth in phase 2 *));
        loop ()
  in
  loop ();
  {
    w_schedules = !schedules;
    w_pruned = !pruned;
    w_max_decisions = !max_decisions;
    w_truncated = !truncated;
    w_violations = List.rev !violations;
    w_collected = List.rev !collected;
  }

let leaf_result ~collect ~cfg decisions outcome =
  let violations = ref [] in
  let collected = ref [] in
  record_schedule ~collect ~cfg ~collected ~violations ~local_index:0 decisions outcome;
  {
    w_schedules = 1;
    w_pruned = 0 (* phase 1 already counted its prunes *);
    w_max_decisions = Array.length decisions;
    w_truncated = false;
    w_violations = List.rev !violations;
    w_collected = List.rev !collected;
  }

(* ------------------------------------------------------------------ *)
(* Crash-schedule enumeration: all sorted pid/tick assignments of size up
   to the budget, smallest first, pids ascending, ticks ascending — a
   canonical order so reports are stable. *)

let crash_schedules mc =
  let n = Check.Config.n_procs mc.base in
  let horizon = mc.base.Check.Config.horizon in
  let grid = max 1 mc.crash_grid in
  let ticks =
    let rec go t acc = if t > horizon then List.rev acc else go (t + grid) (t :: acc) in
    go grid []
  in
  let rec extend first_pid size acc =
    if size = 0 then [ List.rev acc ]
    else
      List.concat_map
        (fun pid ->
          List.concat_map (fun t -> extend (pid + 1) (size - 1) ((pid, t) :: acc)) ticks)
        (List.init (n - first_pid) (fun i -> first_pid + i))
  in
  List.concat_map
    (fun size -> extend 0 size [])
    (List.init (max 0 mc.crash_budget + 1) Fun.id)

(* ------------------------------------------------------------------ *)

let run ?progress ?metrics ~registry mc =
  let delta, phi = dls_bounds mc.base in
  (match mc.base.Check.Config.handicap with
  | None -> ()
  | Some _ -> invalid_arg "Mc.Explore.run: handicapped configs are not explorable");
  if mc.split_depth < 0 then invalid_arg "Mc.Explore.run: split_depth must be >= 0";
  if mc.max_schedules < 1 then invalid_arg "Mc.Explore.run: max_schedules must be >= 1";
  let graph = Check.Config.graph mc.base in
  let por = mc.por in
  let crash_scheds = crash_schedules mc in
  let schedules = ref 0 in
  let pruned = ref 0 in
  let max_decisions = ref 0 in
  let truncated = ref false in
  let violations = ref [] (* reversed global order *) in
  let collected = ref [] (* reversed global order *) in
  List.iteri
    (fun crash_index crashes ->
      let cfg = { mc.base with Check.Config.crashes = crashes } in
      let items, split_pruned =
        split ~registry ~graph ~delta ~phi ~por ~split_depth:mc.split_depth cfg
      in
      pruned := !pruned + split_pruned;
      let items = Array.of_list items in
      let results =
        Exec.Pool.map ~jobs:(max 1 mc.jobs) (Array.length items) (fun i ->
            match items.(i) with
            | Leaf { decisions; outcome } ->
                leaf_result ~collect:mc.collect_schedules ~cfg decisions outcome
            | Subtree root ->
                explore_subtree ~registry ~graph ~delta ~phi ~por
                  ~budget:mc.max_schedules ~collect:mc.collect_schedules cfg root)
      in
      Array.iter
        (fun w ->
          List.iter
            (fun (local, repro) ->
              violations :=
                { crash_index; schedule_index = !schedules + local; repro } :: !violations)
            w.w_violations;
          List.iter (fun d -> collected := d :: !collected) w.w_collected;
          schedules := !schedules + w.w_schedules;
          pruned := !pruned + w.w_pruned;
          max_decisions := max !max_decisions w.w_max_decisions;
          truncated := !truncated || w.w_truncated)
        results;
      match progress with
      | None -> ()
      | Some f ->
          f
            {
              crash_schedules = crash_index + 1;
              schedules = !schedules;
              pruned = !pruned;
              violation_count = List.length !violations;
              max_decisions = !max_decisions;
              truncated = !truncated;
            })
    crash_scheds;
  let stats =
    {
      crash_schedules = List.length crash_scheds;
      schedules = !schedules;
      pruned = !pruned;
      violation_count = List.length !violations;
      max_decisions = !max_decisions;
      truncated = !truncated;
    }
  in
  (match metrics with
  | None -> ()
  | Some m ->
      let bump name v = Obs.Metrics.incr ~by:v (Obs.Metrics.counter m name) in
      bump "mc_schedules" stats.schedules;
      bump "mc_pruned_branches" stats.pruned;
      bump "mc_violations" stats.violation_count;
      bump "mc_crash_schedules" stats.crash_schedules);
  { stats; violations = List.rev !violations; schedules = List.rev !collected }

let random_schedule ~registry (cfg : Check.Config.t) rng =
  let delta, phi = dls_bounds cfg in
  let n = Check.Config.n_procs cfg in
  let last_step = Array.make n 0 in
  let chosen = ref [] in
  let controller q =
    let d =
      match q with
      | Adversary.Step_q { now; pid } ->
          let forced = now - last_step.(pid) >= phi in
          (* Forced queries are normalised to [Step true], matching the
             exhaustive enumeration's single branch. *)
          let s = forced || Prng.chance rng ~p:0.5 in
          if s then last_step.(pid) <- now;
          Adversary.Step s
      | Adversary.Delay_q _ -> Adversary.Delay (Prng.int_in rng ~lo:1 ~hi:delta)
    in
    chosen := d :: !chosen;
    d
  in
  let (_ : Check.Runner.outcome) = Check.Runner.run ~drive:controller ~registry cfg in
  Array.of_list (List.rev !chosen)
