open Dsim

type Msg.t +=
  | Cs_estimate of { round : int; est : int; ts : int }
  | Cs_propose of { round : int; v : int }
  | Cs_ack of { round : int; ok : bool }
  | Cs_decide of int

type stage = Idle | Wait_propose

(* Per-round coordinator bookkeeping. *)
type coord_round = {
  mutable estimates : (int * int) list; (* (est, ts), one per sender *)
  mutable proposed : int option;
  mutable positive_acks : int;
  mutable negative_acks : int;
}

type t = {
  propose : int -> unit;
  decided : unit -> int option;
  round : unit -> int;
  component : Component.t;
}

let create (ctx : Context.t) ?(tag = "consensus") ~members ~suspects () =
  let members = List.sort_uniq compare members in
  let n = List.length members in
  if n < 2 then invalid_arg "Consensus.create: need at least two members";
  let self = ctx.Context.self in
  if not (List.mem self members) then invalid_arg "Consensus.create: self not a member";
  let majority = (n / 2) + 1 in
  let coord r = List.nth members (r mod n) in
  let bcast m = List.iter (fun q -> ctx.Context.send ~dst:q ~tag m) members in
  (* participant state. The initial timestamp lies strictly below every
     round number: an estimate adopted from round r carries ts = r, and the
     locking argument needs those to dominate never-adopted estimates —
     with ts0 = round0 = 0 a later coordinator could break ties against a
     decided value and violate agreement. *)
  let estimate = ref None in
  let ts = ref (-1) in
  let round = ref 0 in
  let stage = ref Idle in
  let decided = ref None in
  let decision_forwarded = ref false in
  (* coordinator state, indexed by round *)
  let rounds : (int, coord_round) Hashtbl.t = Hashtbl.create 8 in
  let coord_round r =
    match Hashtbl.find_opt rounds r with
    | Some cr -> cr
    | None ->
        let cr = { estimates = []; proposed = None; positive_acks = 0; negative_acks = 0 } in
        Hashtbl.add rounds r cr;
        cr
  in
  (* pending proposals received ahead of our own round *)
  let proposals : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let decide v =
    if !decided = None then begin
      decided := Some v;
      ctx.Context.log
        (Trace.Note { pid = self; label = "decide"; info = string_of_int v })
    end
  in
  let running () = !decided = None && !estimate <> None in
  (* Phase 1: open the round by shipping our estimate to its coordinator. *)
  let send_estimate =
    Component.action "cs-estimate"
      ~guard:(fun () -> running () && !stage = Idle)
      ~body:(fun () ->
        match !estimate with
        | Some est ->
            stage := Wait_propose;
            ctx.Context.send ~dst:(coord !round) ~tag
              (Cs_estimate { round = !round; est; ts = !ts })
        | None -> ())
  in
  (* Phase 3: adopt the coordinator's proposal, or give up on a suspected
     coordinator and move on. *)
  let adopt_proposal =
    Component.action "cs-adopt"
      ~guard:(fun () -> running () && !stage = Wait_propose && Hashtbl.mem proposals !round)
      ~body:(fun () ->
        let v = Hashtbl.find proposals !round in
        estimate := Some v;
        ts := !round;
        ctx.Context.send ~dst:(coord !round) ~tag (Cs_ack { round = !round; ok = true });
        stage := Idle;
        incr round)
  in
  let abandon_coordinator =
    Component.action "cs-abandon"
      ~guard:(fun () ->
        running () && !stage = Wait_propose
        && Types.Pidset.mem (coord !round) (suspects ())
        && not (Hashtbl.mem proposals !round))
      ~body:(fun () ->
        ctx.Context.send ~dst:(coord !round) ~tag (Cs_ack { round = !round; ok = false });
        stage := Idle;
        incr round)
  in
  (* Coordinator bookkeeping lives in a hash table, but everything the
     actions *do* with it walks rounds in ascending key order: emission
     order of Cs_propose/Cs_decide must be a function of the protocol state,
     never of the table's hash layout. *)
  let sorted_rounds () =
    Hashtbl.fold (fun r cr acc -> (r, cr) :: acc) rounds []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  let ready_to_propose (r, cr) =
    coord r = self && cr.proposed = None && List.length cr.estimates >= majority
  in
  let ready_to_decide (r, cr) =
    coord r = self && cr.proposed <> None && cr.positive_acks >= majority
  in
  (* Phase 2 (coordinator): propose the highest-timestamp estimate once a
     majority reported. *)
  let coordinate =
    Component.action "cs-coordinate"
      ~guard:(fun () -> !decided = None && List.exists ready_to_propose (sorted_rounds ()))
      ~body:(fun () ->
        List.iter
          (fun ((r, cr) as rc) ->
            if ready_to_propose rc then begin
              let v, _ =
                List.fold_left
                  (fun (bv, bt) (v, t) -> if t > bt then (v, t) else (bv, bt))
                  (List.hd cr.estimates) (List.tl cr.estimates)
              in
              cr.proposed <- Some v;
              bcast (Cs_propose { round = r; v })
            end)
          (sorted_rounds ()))
  in
  (* Phase 4 (coordinator): a majority of positive acks decides. *)
  let conclude =
    Component.action "cs-conclude"
      ~guard:(fun () -> !decided = None && List.exists ready_to_decide (sorted_rounds ()))
      ~body:(fun () ->
        List.iter
          (fun ((_, cr) as rc) ->
            if ready_to_decide rc then
              match cr.proposed with Some v -> decide v | None -> ())
          (sorted_rounds ()))
  in
  (* Reliable broadcast of the decision: forward it once. *)
  let spread_decision =
    Component.action "cs-spread"
      ~guard:(fun () -> !decided <> None && not !decision_forwarded)
      ~body:(fun () ->
        decision_forwarded := true;
        match !decided with Some v -> bcast (Cs_decide v) | None -> ())
  in
  let on_receive ~src:_ msg =
    match msg with
    | Cs_estimate { round = r; est; ts = t } ->
        let cr = coord_round r in
        cr.estimates <- (est, t) :: cr.estimates
    | Cs_propose { round = r; v } -> if not (Hashtbl.mem proposals r) then Hashtbl.add proposals r v
    | Cs_ack { round = r; ok } ->
        let cr = coord_round r in
        if ok then cr.positive_acks <- cr.positive_acks + 1
        else cr.negative_acks <- cr.negative_acks + 1
    | Cs_decide v -> decide v
    (* simlint: allow D015 — the arms above cover the full consensus message set; Msg.t is engine-wide, so the wildcard only absorbs other protocol families' traffic on this process *)
    | _ -> ()
  in
  let component =
    Component.make ~name:tag
      ~actions:
        [ send_estimate; adopt_proposal; abandon_coordinator; coordinate; conclude;
          spread_decision ]
      ~on_receive ()
  in
  {
    propose = (fun v -> if !estimate = None then estimate := Some v);
    decided = (fun () -> !decided);
    round = (fun () -> !round);
    component;
  }

let decisions trace =
  Trace.notes ~label:"decide" trace
  |> List.filter_map (fun (e : Trace.entry) ->
         match e.ev with
         | Trace.Note n -> Some (n.pid, e.at, int_of_string n.info)
         | _ -> None)

let agreement trace =
  let ds = decisions trace in
  let values = List.sort_uniq compare (List.map (fun (_, _, v) -> v) ds) in
  let details =
    if List.length values <= 1 then []
    else
      [
        Printf.sprintf "conflicting decisions: %s"
          (String.concat ", "
             (List.map (fun (p, t, v) -> Printf.sprintf "p%d@%d=%d" p t v) ds));
      ]
  in
  { Detectors.Properties.holds = details = []; details }
