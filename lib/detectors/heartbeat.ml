open Dsim

type config = {
  period : int;
  initial_timeout : int;
  adaptive : bool;
}

let default_config = { period = 4; initial_timeout = 24; adaptive = true }

type Msg.t += Hb_msg

type peer_state = {
  peer : Types.pid;
  mutable last_heard : Types.time;
  mutable timeout : int;
  mutable suspected : bool;
}

let component (ctx : Context.t) ?(detector_name = "evp") ?(tag = "fd")
    ?(config = default_config) ~peers () =
  let self = ctx.Context.self in
  let states =
    List.map
      (fun peer -> { peer; last_heard = 0; timeout = config.initial_timeout; suspected = false })
      (List.filter (fun q -> q <> self) peers)
  in
  let next_send = ref 0 in
  let send_heartbeats =
    Component.action "hb-send"
      ~guard:(fun () -> ctx.Context.now () >= !next_send)
      ~body:(fun () ->
        next_send := ctx.Context.now () + config.period;
        List.iter (fun st -> ctx.Context.send ~dst:st.peer ~tag Hb_msg) states)
  in
  let expired st = (not st.suspected) && ctx.Context.now () - st.last_heard > st.timeout in
  let check_timeouts =
    Component.action "hb-check"
      ~guard:(fun () -> List.exists expired states)
      ~body:(fun () ->
        List.iter
          (fun st ->
            if expired st then begin
              st.suspected <- true;
              ctx.Context.log
                (Trace.Suspect { detector = detector_name; owner = self; target = st.peer })
            end)
          states)
  in
  let on_receive ~src = function
    | Hb_msg -> (
        match List.find_opt (fun st -> st.peer = src) states with
        | None -> ()
        | Some st ->
            st.last_heard <- ctx.Context.now ();
            if st.suspected then begin
              st.suspected <- false;
              if config.adaptive then st.timeout <- st.timeout * 2;
              ctx.Context.log
                (Trace.Trust { detector = detector_name; owner = self; target = st.peer })
            end)
    (* simlint: allow D015 — Hb_msg is this detector's whole vocabulary; the wildcard only absorbs other protocol families sharing the engine's extensible Msg.t *)
    | _ -> ()
  in
  let comp =
    Component.make ~name:tag ~actions:[ send_heartbeats; check_timeouts ] ~on_receive ()
  in
  let suspects () =
    List.fold_left
      (fun acc st -> if st.suspected then Types.Pidset.add st.peer acc else acc)
      Types.Pidset.empty states
  in
  (comp, Oracle.make ~name:detector_name ~owner:self ~suspects)
