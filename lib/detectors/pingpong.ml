open Dsim

type config = {
  period : int;
  initial_timeout : int;
  adaptive : bool;
}

let default_config = { period = 6; initial_timeout = 32; adaptive = true }

type Msg.t += Query of int | Response of int

type peer_state = {
  peer : Types.pid;
  mutable round : int;  (** Last query round sent to this peer. *)
  mutable asked_at : Types.time;
  mutable answered : bool;  (** Response to [round] received. *)
  mutable timeout : int;
  mutable suspected : bool;
}

let component (ctx : Context.t) ?(detector_name = "evp-pp") ?(tag = "fdpp")
    ?(config = default_config) ~peers () =
  let self = ctx.Context.self in
  let states =
    List.map
      (fun peer ->
        { peer; round = 0; asked_at = 0; answered = true; timeout = config.initial_timeout;
          suspected = false })
      (List.filter (fun q -> q <> self) peers)
  in
  let next_round = ref 0 in
  let send_queries =
    Component.action "pp-query"
      ~guard:(fun () -> ctx.Context.now () >= !next_round)
      ~body:(fun () ->
        next_round := ctx.Context.now () + config.period;
        List.iter
          (fun st ->
            (* A new round only opens once the previous one resolved (answer
               or suspicion): an unanswered round stays the one we time. *)
            if st.answered || st.suspected then begin
              st.round <- st.round + 1;
              st.asked_at <- ctx.Context.now ();
              st.answered <- false;
              ctx.Context.send ~dst:st.peer ~tag (Query st.round)
            end)
          states)
  in
  let overdue st =
    (not st.suspected) && (not st.answered)
    && ctx.Context.now () - st.asked_at > st.timeout
  in
  let check_timeouts =
    Component.action "pp-check"
      ~guard:(fun () -> List.exists overdue states)
      ~body:(fun () ->
        List.iter
          (fun st ->
            if overdue st then begin
              st.suspected <- true;
              ctx.Context.log
                (Trace.Suspect { detector = detector_name; owner = self; target = st.peer })
            end)
          states)
  in
  let on_receive ~src msg =
    match msg with
    | Query r ->
        (* Answer immediately; the responder needs no monitor state. *)
        ctx.Context.send ~dst:src ~tag (Response r)
    | Response r -> (
        match List.find_opt (fun st -> st.peer = src) states with
        | None -> ()
        | Some st ->
            if r = st.round then st.answered <- true;
            if st.suspected then begin
              st.suspected <- false;
              if config.adaptive then st.timeout <- st.timeout * 2;
              ctx.Context.log
                (Trace.Trust { detector = detector_name; owner = self; target = st.peer })
            end)
    (* simlint: allow D015 — Query/Response are handled above; the wildcard only absorbs other protocol families sharing the engine's extensible Msg.t *)
    | _ -> ()
  in
  let comp = Component.make ~name:tag ~actions:[ send_queries; check_timeouts ] ~on_receive () in
  let suspects () =
    List.fold_left
      (fun acc st -> if st.suspected then Types.Pidset.add st.peer acc else acc)
      Types.Pidset.empty states
  in
  (comp, Oracle.make ~name:detector_name ~owner:self ~suspects)
