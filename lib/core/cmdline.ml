let parse_seed s =
  let s = String.trim s in
  if s = "" then Error "empty seed"
  else
    match Int64.of_string_opt s with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "bad seed %S (decimal or 0x-hex expected)" s)

let seed_to_string = Printf.sprintf "0x%Lx"

let extract_seed_flag ~default args =
  let rec go acc seed = function
    | [] -> Ok (seed, List.rev acc)
    | "--seed" :: v :: rest -> (
        match parse_seed v with Ok s -> go acc s rest | Error e -> Error e)
    | [ "--seed" ] -> Error "--seed expects a value"
    | a :: rest when String.length a > 7 && String.sub a 0 7 = "--seed=" -> (
        match parse_seed (String.sub a 7 (String.length a - 7)) with
        | Ok s -> go acc s rest
        | Error e -> Error e)
    | a :: rest -> go (a :: acc) seed rest
  in
  go [] default args
