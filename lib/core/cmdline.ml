let parse_seed s =
  let s = String.trim s in
  if s = "" then Error "empty seed"
  else
    match Int64.of_string_opt s with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "bad seed %S (decimal or 0x-hex expected)" s)

let seed_to_string = Printf.sprintf "0x%Lx"

let parse_int ~what s =
  let s = String.trim s in
  if s = "" then Error (Printf.sprintf "empty %s" what)
  else
    match int_of_string_opt s with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "bad %s %S (integer expected)" what s)

let parse_float ~what s =
  let s = String.trim s in
  if s = "" then Error (Printf.sprintf "empty %s" what)
  else
    match float_of_string_opt s with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "bad %s %S (number expected)" what s)

let extract_flag ~parse ~names ~default args =
  let what = String.concat "/" names in
  let inline_value a =
    match String.index_opt a '=' with
    | Some i when List.mem (String.sub a 0 i) names ->
        Some (String.sub a (i + 1) (String.length a - i - 1))
    | _ -> None
  in
  let rec go acc v = function
    | [] -> Ok (v, List.rev acc)
    | a :: rest when List.mem a names -> (
        match rest with
        | x :: rest -> (
            match parse ~what x with Ok n -> go acc n rest | Error e -> Error e)
        | [] -> Error (Printf.sprintf "%s expects a value" a))
    | a :: rest -> (
        match inline_value a with
        | Some s -> (
            match parse ~what s with Ok n -> go acc n rest | Error e -> Error e)
        | None -> go (a :: acc) v rest)
  in
  go [] default args

let extract_int_flag ~names ~default args = extract_flag ~parse:parse_int ~names ~default args

let parse_string ~what s = if s = "" then Error (Printf.sprintf "empty %s" what) else Ok s

let extract_string_flag ~names ~default args =
  extract_flag ~parse:parse_string ~names ~default args

let extract_float_flag ~names ~default args =
  extract_flag ~parse:parse_float ~names ~default args

let extract_seed_flag ~default args =
  let rec go acc seed = function
    | [] -> Ok (seed, List.rev acc)
    | "--seed" :: v :: rest -> (
        match parse_seed v with Ok s -> go acc s rest | Error e -> Error e)
    | [ "--seed" ] -> Error "--seed expects a value"
    | a :: rest when String.length a > 7 && String.sub a 0 7 = "--seed=" -> (
        match parse_seed (String.sub a 7 (String.length a - 7)) with
        | Ok s -> go acc s rest
        | Error e -> Error e)
    | a :: rest -> go (a :: acc) seed rest
  in
  go [] default args
