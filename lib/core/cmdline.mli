(** Shared command-line conventions for the executables.

    Every entry point that takes a PRNG seed ([dinersim]'s subcommands,
    [stress/sweep.exe], the fuzz campaign driver) parses it through this one
    helper, so hexadecimal ([0x2f00d]) and decimal ([7]) spellings — plus
    OCaml's [0o]/[0b] and [_] separators — are accepted everywhere, and
    seeds printed by one tool ({!seed_to_string} prints canonical hex) are
    valid input to every other. *)

val parse_seed : string -> (int64, string) result
(** Accepts anything [Int64.of_string] does: decimal (optionally signed)
    and [0x]/[0o]/[0b] radix prefixes. The input is trimmed first. *)

val seed_to_string : int64 -> string
(** Canonical rendering, [0x%Lx] — round-trips through {!parse_seed}. *)

val extract_seed_flag : default:int64 -> string list -> (int64 * string list, string) result
(** Pull a [--seed V] or [--seed=V] flag (last occurrence wins) out of a raw
    argument list, returning the seed and the remaining arguments — for
    executables that do their own minimal argv handling. *)

val extract_int_flag :
  names:string list -> default:int -> string list -> (int * string list, string) result
(** Pull an integer flag out of a raw argument list: any spelling in
    [names] ([--jobs N], [--jobs=N], [-j N]), last occurrence wins.
    Returns the value and the remaining arguments. Used for the worker
    count ([-j]) and trial count flags of [stress/sweep.exe] and
    [bench/main.exe]. *)

val extract_string_flag :
  names:string list -> default:string -> string list -> (string * string list, string) result
(** Same contract for a string-valued flag (empty values rejected). Used
    for [bench/main.exe]'s [--out]. *)

val extract_float_flag :
  names:string list -> default:float -> string list -> (float * string list, string) result
(** Same contract for a float-valued flag (accepts anything
    [float_of_string] does). Used for [tools/benchdiff]'s
    [--threshold]. *)
