(** Umbrella module: the public API of the reproduction.

    {ol
    {- {!Dsim} — the asynchronous message-passing simulator (processes,
       guarded-command components, adversaries, crash faults, traces).}
    {- {!Graphs} — conflict graphs for dining instances.}
    {- {!Detectors} — failure detectors (heartbeat ◇P, ground-truth P and T,
       mistake injection) and the Chandra–Toueg property checkers.}
    {- {!Dining} — the dining-philosophers framework: WF-◇WX ([12]-style),
       hygienic baseline, eventually-fair variant, perpetual-WX FTME, and
       the exclusion/wait-freedom/fairness monitors.}
    {- {!Reduction} — the paper's contribution: Algorithms 1 and 2, the
       per-pair cell, the full extraction, the flawed [8] construction, and
       the executable Lemmas.}
    {- {!Ctm} — obstruction-free transactions + contention-manager boost.}
    {- {!Wsn} — sensor-network duty-cycle scheduling.}
    {- {!Agreement} — consensus and stable leader election over ◇P (the
       problems the paper's introduction motivates ◇P with).}
    {- {!Scenario} — one-call builders for the canonical experiments.}
    {- {!Cmdline} — shared command-line conventions (seed parsing).}
    {- {!Batch} — multi-seed sweeps and summary statistics.}
    {- {!Certify} — certification harness for candidate dining boxes.}} *)

module Dsim = Dsim
module Graphs = Graphs
module Detectors = Detectors
module Dining = Dining
module Reduction = Reduction
module Ctm = Ctm
module Wsn = Wsn
module Agreement = Agreement
module Scenario = Scenario
module Cmdline = Cmdline
module Batch = Batch
module Certify = Certify
