(** Messages of the reduction's ping/ack protocol.

    The integer is the dining-instance index [i] of the sending thread
    (DX_0 or DX_1); routing to the right pair is by component tag. *)

type Dsim.Msg.t +=
  | Ping of int  (** subject q.s_i -> witness p.w_i *)
  | Ack of int  (** witness p.w_i -> subject q.s_i *)
  | Heartbeat_cm  (** q -> p in the flawed contention-manager construction *)
