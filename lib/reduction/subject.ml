open Dsim

type t = {
  component : Component.t;
  trigger : unit -> int;
  ping_flag : int -> bool;
}

let create (ctx : Context.t) ~tag ~witness_pid ~witness_tag ~dx () =
  assert (Array.length dx = 2);
  let self = ctx.Context.self in
  let trigger = ref 0 in
  let ping = [| true; true |] in
  let phase i = (dx.(i) : Dining.Spec.handle).Dining.Spec.phase () in
  let note label i =
    ctx.Context.log
      (Trace.Note { pid = self; label; info = Printf.sprintf "%s:%d" tag i })
  in
  (* Action S_h: {(s_i = thinking) /\ (trigger = i)} *)
  let s_h i =
    Component.action (Printf.sprintf "S_h[%d]" i)
      ~guard:(fun () -> Types.phase_equal (phase i) Types.Thinking && !trigger = i)
      ~body:(fun () -> dx.(i).Dining.Spec.hungry ())
  in
  (* Action S_p: {(s_i = eating) /\ (s_{1-i} <> eating) /\ ping_i} *)
  let s_p i =
    Component.action (Printf.sprintf "S_p[%d]" i)
      ~guard:(fun () ->
        Types.phase_equal (phase i) Types.Eating
        && (not (Types.phase_equal (phase (1 - i)) Types.Eating))
        && ping.(i))
      ~body:(fun () ->
        ctx.Context.send ~dst:witness_pid ~tag:witness_tag (Messages.Ping i);
        note "red-ping" i;
        ping.(i) <- false)
  in
  (* Action S_x: {(s_i = eating) /\ (s_{1-i} = eating) /\ (trigger = 1-i)} *)
  let s_x i =
    Component.action (Printf.sprintf "S_x[%d]" i)
      ~guard:(fun () ->
        Types.phase_equal (phase i) Types.Eating
        && Types.phase_equal (phase (1 - i)) Types.Eating
        && !trigger = 1 - i)
      ~body:(fun () ->
        ping.(i) <- true;
        dx.(i).Dining.Spec.exit_eating ())
  in
  (* Action S_a: upon receive ack from p.w_i. *)
  let on_receive ~src msg =
    match msg with
    | Messages.Ack i when src = witness_pid ->
        note "red-ack" i;
        trigger := 1 - i
    (* simlint: allow D015 — action S_a of the reduction hears only Ack from the witness; the wildcard absorbs other protocol families sharing the engine's extensible Msg.t *)
    | _ -> ()
  in
  let component =
    Component.make ~name:tag
      ~actions:[ s_h 0; s_p 0; s_x 0; s_h 1; s_p 1; s_x 1 ]
      ~on_receive ()
  in
  { component; trigger = (fun () -> !trigger); ping_flag = (fun i -> ping.(i)) }
