open Dsim

type t = {
  component : Component.t;
  suspected : unit -> bool;
  haveping : int -> bool;
  switch : unit -> int;
}

let create (ctx : Context.t) ~tag ~subject_pid ~subject_tag ~dx ~detector_name () =
  assert (Array.length dx = 2);
  let self = ctx.Context.self in
  let switch = ref 0 in
  let haveping = [| false; false |] in
  let suspect_q = ref true in
  let phase i = (dx.(i) : Dining.Spec.handle).Dining.Spec.phase () in
  let set_suspect v =
    if v <> !suspect_q then begin
      suspect_q := v;
      ctx.Context.log
        (if v then Trace.Suspect { detector = detector_name; owner = self; target = subject_pid }
         else Trace.Trust { detector = detector_name; owner = self; target = subject_pid })
    end
  in
  (* Action W_h: {(w_i = thinking) /\ (w_{1-i} = thinking) /\ (switch = i)} *)
  let w_h i =
    Component.action (Printf.sprintf "W_h[%d]" i)
      ~guard:(fun () ->
        Types.phase_equal (phase i) Types.Thinking
        && Types.phase_equal (phase (1 - i)) Types.Thinking
        && !switch = i)
      ~body:(fun () -> dx.(i).Dining.Spec.hungry ())
  in
  (* Action W_x: {w_i = eating} — rule on q, hand the turn over, exit. *)
  let w_x i =
    Component.action (Printf.sprintf "W_x[%d]" i)
      ~guard:(fun () -> Types.phase_equal (phase i) Types.Eating)
      ~body:(fun () ->
        set_suspect (not haveping.(i));
        haveping.(i) <- false;
        switch := 1 - i;
        dx.(i).Dining.Spec.exit_eating ())
  in
  (* Action W_p: upon receive ping from subject q.s_i. *)
  let on_receive ~src msg =
    match msg with
    | Messages.Ping i when src = subject_pid ->
        haveping.(i) <- true;
        ctx.Context.send ~dst:subject_pid ~tag:subject_tag (Messages.Ack i)
    (* simlint: allow D015 — action W_p of the reduction hears only Ping from the subject; the wildcard absorbs other protocol families sharing the engine's extensible Msg.t *)
    | _ -> ()
  in
  let component =
    Component.make ~name:tag ~actions:[ w_h 0; w_x 0; w_h 1; w_x 1 ] ~on_receive ()
  in
  {
    component;
    suspected = (fun () -> !suspect_q);
    haveping = (fun i -> haveping.(i));
    switch = (fun () -> !switch);
  }
