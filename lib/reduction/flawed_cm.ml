open Dsim

type t = {
  name : string;
  watcher : Types.pid;
  subject : Types.pid;
  suspected : unit -> bool;
  cm_instance : string;
  w_handle : Dining.Spec.handle;
  s_handle : Dining.Spec.handle;
}

let create ~engine ?(detector_name = "flawed-cm") ?(heartbeat_period = 4) ~dining ~watcher
    ~subject () =
  if watcher = subject then invalid_arg "Flawed_cm.create: watcher = subject";
  let name = Printf.sprintf "%d>%d" watcher subject in
  let cm_instance = Printf.sprintf "cm[%s]" name in
  let wtag = Printf.sprintf "cw[%s]" name in
  let stag = Printf.sprintf "cs[%s]" name in
  let wctx = Engine.ctx engine watcher in
  let sctx = Engine.ctx engine subject in
  let w_comp, w_handle = dining wctx ~instance:cm_instance ~participants:(watcher, subject) in
  Engine.register engine watcher w_comp;
  let s_comp, s_handle = dining sctx ~instance:cm_instance ~participants:(watcher, subject) in
  Engine.register engine subject s_comp;
  (* ---- subject side: heartbeats + glutton client ---- *)
  let next_hb = ref 0 in
  let requested = ref false in
  let send_heartbeats =
    Component.action "cm-heartbeat"
      ~guard:(fun () -> sctx.Context.now () >= !next_hb)
      ~body:(fun () ->
        next_hb := sctx.Context.now () + heartbeat_period;
        sctx.Context.send ~dst:watcher ~tag:wtag Messages.Heartbeat_cm)
  in
  let request_once =
    Component.action "cm-enter-forever"
      ~guard:(fun () ->
        (not !requested)
        && Types.phase_equal (s_handle.Dining.Spec.phase ()) Types.Thinking)
      ~body:(fun () ->
        requested := true;
        s_handle.Dining.Spec.hungry ())
    (* ... and never exits: there is no exit action. *)
  in
  Engine.register engine subject
    (Component.make ~name:stag ~actions:[ send_heartbeats; request_once ] ());
  (* ---- watcher side ---- *)
  let suspect_q = ref true in
  let heard = ref false in
  let set_suspect v =
    if v <> !suspect_q then begin
      suspect_q := v;
      wctx.Context.log
        (if v then Trace.Suspect { detector = detector_name; owner = watcher; target = subject }
         else Trace.Trust { detector = detector_name; owner = watcher; target = subject })
    end
  in
  let request_on_heartbeat =
    Component.action "cm-request"
      ~guard:(fun () ->
        !heard && Types.phase_equal (w_handle.Dining.Spec.phase ()) Types.Thinking)
      ~body:(fun () ->
        heard := false;
        w_handle.Dining.Spec.hungry ())
  in
  let exit_and_suspect =
    Component.action "cm-exit"
      ~guard:(fun () -> Types.phase_equal (w_handle.Dining.Spec.phase ()) Types.Eating)
      ~body:(fun () ->
        set_suspect true;
        w_handle.Dining.Spec.exit_eating ())
  in
  let on_receive ~src msg =
    match msg with
    | Messages.Heartbeat_cm when src = subject ->
        set_suspect false;
        heard := true
    (* simlint: allow D015 — the flawed contention manager of Section 3 hears only Heartbeat_cm; the wildcard absorbs other families sharing the engine's extensible Msg.t *)
    | _ -> ()
  in
  Engine.register engine watcher
    (Component.make ~name:wtag ~actions:[ request_on_heartbeat; exit_and_suspect ] ~on_receive
       ());
  {
    name;
    watcher;
    subject;
    suspected = (fun () -> !suspect_q);
    cm_instance;
    w_handle;
    s_handle;
  }
