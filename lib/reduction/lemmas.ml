open Dsim

type report = {
  lemma : string;
  violations : string list;
  info : string;
}

let ok r = r.violations = []
let all_ok rs = List.for_all ok rs

let pp_report fmt r =
  Format.fprintf fmt "%-8s %s %s" r.lemma (if ok r then "OK " else "FAIL") r.info;
  List.iter (fun v -> Format.fprintf fmt "@,  - %s" v) r.violations

(* Violation accumulator capped to keep traces of long runs small. *)
module Acc = struct
  type t = { mutable items : string list; mutable count : int }

  let create () = { items = []; count = 0 }

  let add t msg =
    t.count <- t.count + 1;
    if t.count <= 10 then t.items <- t.items @ [ msg ]

  let violations t =
    if t.count > 10 then t.items @ [ Printf.sprintf "... (%d total)" t.count ] else t.items
end

type online = {
  engine : Engine.t;
  pair : Pair.t;
  l2 : Acc.t;
  l3 : Acc.t;
  l4 : Acc.t;
  l9 : Acc.t;
  mutable l8_last_violation : int;
  mutable l8_violations : int;
}

let phase_of (h : Dining.Spec.handle) = h.Dining.Spec.phase ()

let install_online ~engine ~pair =
  let o =
    {
      engine;
      pair;
      l2 = Acc.create ();
      l3 = Acc.create ();
      l4 = Acc.create ();
      l9 = Acc.create ();
      l8_last_violation = 0;
      l8_violations = 0;
    }
  in
  let s_phase i = phase_of pair.Pair.s_handles.(i) in
  let w_phase i = phase_of pair.Pair.w_handles.(i) in
  let subject_live () = Engine.is_live engine pair.Pair.subject in
  let watcher_live () = Engine.is_live engine pair.Pair.watcher in
  Engine.on_tick engine (fun () ->
      let now = Engine.now engine in
      if subject_live () then begin
        for i = 0 to 1 do
          let eating = Types.phase_equal (s_phase i) Types.Eating in
          let ping = pair.Pair.subject_threads.Subject.ping_flag i in
          (* Lemma 2 *)
          if (not eating) && not ping then
            Acc.add o.l2 (Printf.sprintf "t=%d: s_%d not eating but ping_%d=false" now i i);
          (* Lemma 4 *)
          if
            Types.phase_equal (s_phase i) Types.Hungry
            && pair.Pair.subject_threads.Subject.trigger () <> i
          then Acc.add o.l4 (Printf.sprintf "t=%d: s_%d hungry but trigger<>%d" now i i);
          (* Lemma 3: no ping_i/ack_i in transit when (not eating) /\ ping_i *)
          if (not eating) && ping && watcher_live () then begin
            let pings =
              Engine.in_flight_filtered engine ~tag:pair.Pair.witness_tag ~f:(function
                | Messages.Ping j -> j = i
                (* simlint: allow D015 — in-flight classifier, not a handler: the filter counts Ping_i and deliberately ignores every other message *)
                | _ -> false)
            in
            let acks =
              Engine.in_flight_filtered engine ~tag:pair.Pair.subject_tag ~f:(function
                | Messages.Ack j -> j = i
                (* simlint: allow D015 — in-flight classifier, not a handler: the filter counts Ack_i and deliberately ignores every other message *)
                | _ -> false)
            in
            if pings + acks > 0 then
              Acc.add o.l3
                (Printf.sprintf "t=%d: %d ping(s), %d ack(s) in transit on idle channel %d" now
                   pings acks i)
          end
        done;
        (* Lemma 8 suffix invariant *)
        if
          not
            (Types.phase_equal (s_phase 0) Types.Eating
            || Types.phase_equal (s_phase 1) Types.Eating)
        then begin
          o.l8_last_violation <- now;
          o.l8_violations <- o.l8_violations + 1
        end
      end;
      (* Lemma 9 *)
      if
        watcher_live ()
        && not
             (Types.phase_equal (w_phase 0) Types.Thinking
             || Types.phase_equal (w_phase 1) Types.Thinking)
      then Acc.add o.l9 (Printf.sprintf "t=%d: no witness thinking" now));
  o

let online_reports o =
  let now = Engine.now o.engine in
  let l8 =
    let subject_crashed = not (Engine.is_live o.engine o.pair.Pair.subject) in
    let converged = o.l8_last_violation < now - (now / 4) in
    {
      lemma = "L8";
      violations =
        (if subject_crashed || converged then []
         else
           [
             Printf.sprintf "suffix invariant still violated at t=%d (horizon %d)"
               o.l8_last_violation now;
           ]);
      info =
        Printf.sprintf "last-violation=%d total=%d%s" o.l8_last_violation o.l8_violations
          (if subject_crashed then " (subject crashed: n/a)" else "");
    }
  in
  [
    { lemma = "L2"; violations = Acc.violations o.l2; info = "state invariant" };
    { lemma = "L3"; violations = Acc.violations o.l3; info = "quiescent channels" };
    { lemma = "L4"; violations = Acc.violations o.l4; info = "state invariant" };
    l8;
    { lemma = "L9"; violations = Acc.violations o.l9; info = "some witness thinking" };
  ]

(* ------------------------------------------------------------------ *)
(* Post-hoc schedule lemmas *)

let eating_starts trace ~instance ~pid =
  Trace.transitions ~instance ~pid trace
  |> List.filter_map (fun (e : Trace.entry) ->
         match e.ev with
         | Trace.Transition { to_ = Types.Eating; _ } -> Some e.at
         | _ -> None)

let note_times trace ~pid ~label ~info =
  Trace.notes ~pid ~label trace
  |> List.filter_map (fun (e : Trace.entry) ->
         match e.ev with
         | Trace.Note n when String.equal n.info info -> Some e.at
         | _ -> None)

let trace_reports ~engine ~pair =
  let trace = Engine.trace engine in
  let horizon = Engine.now engine in
  let slack = max 1000 (horizon / 5) in
  let both_correct =
    Engine.is_live engine pair.Pair.watcher && Engine.is_live engine pair.Pair.subject
  in
  let watcher_correct = Engine.is_live engine pair.Pair.watcher in
  (* Lemma 5: one ping and one ack per completed subject eating session. *)
  let l5_violations = ref [] in
  if both_correct then
    for i = 0 to 1 do
      let sessions =
        Trace.eating_intervals trace ~instance:pair.Pair.dx_instances.(i)
          ~pid:pair.Pair.subject ~horizon
        |> List.filter (fun (_, b) -> b < horizon - slack)
      in
      let info_tag = Printf.sprintf "%s:%d" pair.Pair.subject_tag i in
      let pings = note_times trace ~pid:pair.Pair.subject ~label:"red-ping" ~info:info_tag in
      let acks = note_times trace ~pid:pair.Pair.subject ~label:"red-ack" ~info:info_tag in
      List.iter
        (fun (a, b) ->
          let np = List.length (List.filter (fun t -> t >= a && t < b) pings) in
          let na = List.length (List.filter (fun t -> t > a && t <= b) acks) in
          if np <> 1 then
            l5_violations :=
              Printf.sprintf "s_%d session [%d,%d): %d pings" i a b np :: !l5_violations;
          if na <> 1 then
            l5_violations :=
              Printf.sprintf "s_%d session [%d,%d): %d acks" i a b na :: !l5_violations)
        sessions
    done;
  (* Lemmas 7 and 11: threads eat repeatedly. *)
  let counts role pid =
    List.map
      (fun i -> List.length (eating_starts trace ~instance:pair.Pair.dx_instances.(i) ~pid))
      [ 0; 1 ]
    |> fun l -> (role, l)
  in
  let _, s_counts = counts "subject" pair.Pair.subject in
  let _, w_counts = counts "witness" pair.Pair.watcher in
  let l7 =
    {
      lemma = "L7";
      violations =
        (if both_correct && List.exists (fun c -> c < 2) s_counts then
           [ Printf.sprintf "subjects ate only %s times" (String.concat "/" (List.map string_of_int s_counts)) ]
         else []);
      info = Printf.sprintf "subject eats: %s" (String.concat "/" (List.map string_of_int s_counts));
    }
  in
  let l11 =
    {
      lemma = "L11";
      violations =
        (if watcher_correct && List.exists (fun c -> c < 2) w_counts then
           [ Printf.sprintf "witnesses ate only %s times" (String.concat "/" (List.map string_of_int w_counts)) ]
         else []);
      info = Printf.sprintf "witness eats: %s" (String.concat "/" (List.map string_of_int w_counts));
    }
  in
  (* Lemma 12: between consecutive eats of w_i, w_{1-i} eats exactly once. *)
  let l12_violations = ref [] in
  if watcher_correct then
    for i = 0 to 1 do
      let starts_i =
        eating_starts trace ~instance:pair.Pair.dx_instances.(i) ~pid:pair.Pair.watcher
      in
      let starts_other =
        eating_starts trace ~instance:pair.Pair.dx_instances.(1 - i) ~pid:pair.Pair.watcher
      in
      let rec scan = function
        | a :: (b :: _ as rest) ->
            let c = List.length (List.filter (fun t -> t > a && t < b) starts_other) in
            if c <> 1 then
              l12_violations :=
                Printf.sprintf "w_%d eats at %d and %d with %d w_%d eats between" i a b c (1 - i)
                :: !l12_violations;
            scan rest
        | _ -> ()
      in
      scan starts_i
    done;
  (* Lemma 1 (wait-freedom of the subjects) and Lemma 6 (finite eating),
     judged only when both processes are correct. *)
  let l1_violations = ref [] in
  let l6_violations = ref [] in
  if both_correct then
    for i = 0 to 1 do
      List.iter
        (fun (a, b, ph) ->
          if Types.phase_equal ph Types.Hungry && b >= horizon && a < horizon - slack then
            l1_violations := Printf.sprintf "s_%d hungry since t=%d unserved" i a :: !l1_violations;
          if Types.phase_equal ph Types.Eating && b >= horizon && a < horizon - slack then
            l6_violations := Printf.sprintf "s_%d eating since t=%d never exits" i a :: !l6_violations)
        (Trace.phase_timeline trace ~instance:pair.Pair.dx_instances.(i) ~pid:pair.Pair.subject
           ~horizon)
    done;
  [
    { lemma = "L1"; violations = List.rev !l1_violations; info = "hungry subjects eat" };
    { lemma = "L5"; violations = List.rev !l5_violations; info = "one ping/ack per session" };
    { lemma = "L6"; violations = List.rev !l6_violations; info = "finite subject eating" };
    l7;
    l11;
    { lemma = "L12"; violations = List.rev !l12_violations; info = "witness alternation" };
  ]
