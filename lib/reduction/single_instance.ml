open Dsim

type t = {
  name : string;
  watcher : Types.pid;
  subject : Types.pid;
  suspected : unit -> bool;
  instance : string;
}

let create ~engine ?(detector_name = "single-inst") ~dining ~watcher ~subject () =
  if watcher = subject then invalid_arg "Single_instance.create: watcher = subject";
  let name = Printf.sprintf "%d>%d" watcher subject in
  let instance = Printf.sprintf "si[%s]" name in
  let wtag = Printf.sprintf "siw[%s]" name in
  let stag = Printf.sprintf "sis[%s]" name in
  let wctx = Engine.ctx engine watcher in
  let sctx = Engine.ctx engine subject in
  let w_comp, w_handle = dining wctx ~instance ~participants:(watcher, subject) in
  Engine.register engine watcher w_comp;
  let s_comp, s_handle = dining sctx ~instance ~participants:(watcher, subject) in
  Engine.register engine subject s_comp;
  (* Witness: one thread, one instance. *)
  let suspect_q = ref true in
  let haveping = ref false in
  let set_suspect v =
    if v <> !suspect_q then begin
      suspect_q := v;
      wctx.Context.log
        (if v then Trace.Suspect { detector = detector_name; owner = watcher; target = subject }
         else Trace.Trust { detector = detector_name; owner = watcher; target = subject })
    end
  in
  let w_phase () = w_handle.Dining.Spec.phase () in
  let w_hungry =
    Component.action "siw-hungry"
      ~guard:(fun () -> Types.phase_equal (w_phase ()) Types.Thinking)
      ~body:(fun () -> w_handle.Dining.Spec.hungry ())
  in
  let w_judge =
    Component.action "siw-judge"
      ~guard:(fun () -> Types.phase_equal (w_phase ()) Types.Eating)
      ~body:(fun () ->
        set_suspect (not !haveping);
        haveping := false;
        w_handle.Dining.Spec.exit_eating ())
  in
  let w_receive ~src msg =
    match msg with
    | Messages.Ping _ when src = subject ->
        haveping := true;
        wctx.Context.send ~dst:subject ~tag:stag (Messages.Ack 0)
    (* simlint: allow D015 — the witness hears only Ping from its subject; the wildcard absorbs other protocol families sharing the engine's extensible Msg.t *)
    | _ -> ()
  in
  Engine.register engine watcher
    (Component.make ~name:wtag ~actions:[ w_hungry; w_judge ] ~on_receive:w_receive ());
  (* Subject: eat, ping, exit on ack, repeat. *)
  let pinged = ref false in
  let acked = ref false in
  let s_phase () = s_handle.Dining.Spec.phase () in
  let s_hungry =
    Component.action "sis-hungry"
      ~guard:(fun () -> Types.phase_equal (s_phase ()) Types.Thinking)
      ~body:(fun () ->
        pinged := false;
        acked := false;
        s_handle.Dining.Spec.hungry ())
  in
  let s_ping =
    Component.action "sis-ping"
      ~guard:(fun () -> Types.phase_equal (s_phase ()) Types.Eating && not !pinged)
      ~body:(fun () ->
        pinged := true;
        sctx.Context.send ~dst:watcher ~tag:wtag (Messages.Ping 0))
  in
  let s_exit =
    Component.action "sis-exit"
      ~guard:(fun () -> Types.phase_equal (s_phase ()) Types.Eating && !acked)
      ~body:(fun () -> s_handle.Dining.Spec.exit_eating ())
  in
  let s_receive ~src msg =
    match msg with
    | Messages.Ack _ when src = watcher -> acked := true
    (* simlint: allow D015 — the subject hears only Ack from its watcher; the wildcard absorbs other protocol families sharing the engine's extensible Msg.t *)
    | _ -> ()
  in
  Engine.register engine subject
    (Component.make ~name:stag ~actions:[ s_hungry; s_ping; s_exit ] ~on_receive:s_receive ());
  { name; watcher; subject; suspected = (fun () -> !suspect_q); instance }
