(** Campaign configurations: the coordinates of one fuzzed run.

    A config pins everything a run depends on — algorithm, conflict-graph
    topology, adversary family and knobs, crash pattern, handicap set,
    horizon, client meal length, and the engine seed — so a run is a pure
    function of its config and (optionally) a decision-trace override. All
    knobs are integers (probabilities are percentages) so configs
    round-trip through JSON byte-exactly, which the repro-artifact digests
    rely on. *)

open Dsim

type adversary =
  | Sync
  | Async of { max_delay : int; step_prob_pct : int }
  | Partial of { gst : int; pre_max_delay : int; delta : int; pre_step_prob_pct : int }
  | Bursty of { gst : int; calm : int; storm : int; storm_delay : int; delta : int }
  | Dls of { delta : int; phi : int }
      (** DLS-style parametric bounds: message delay in [1, delta], a step
          at least every [phi] ticks. The model checker's family — the
          fuzz generator never draws it (see {!all_families}). *)

type topology = Pair | Ring of int | Clique of int | Star of int | Path of int

type t = {
  algo : string;  (** Registry name of the dining deployment (see {!Runner}). *)
  topology : topology;
  adversary : adversary;
  crashes : (Types.pid * Types.time) list;  (** Sorted [(pid, tick)] pairs. *)
  handicap : (Types.pid list * int) option;  (** Slowed pids and factor (percent). *)
  horizon : int;
  eat_ticks : int;
  seed : int64;
}

type family = [ `Sync | `Async | `Partial | `Bursty | `Dls ]

(** The four randomly-fuzzed families. [`Dls] is excluded: DLS configs are
    the bounded model checker's input, built explicitly by [dinersim
    check]; keeping it out of the default draw preserves every pinned
    campaign digest. *)
val all_families : family list
val family_of_string : string -> family option
val family_to_string : family -> string
val family : adversary -> family

val graph : t -> Graphs.Conflict_graph.t
val n_procs : t -> int
val to_adversary : t -> Adversary.t
(** Build the run adversary, including the handicap wrapper when set. *)

val topology_to_string : topology -> string
val topology_of_string : string -> topology option
val describe : t -> string
(** One-line human summary (used in campaign logs). *)

val to_json : t -> Obs.Json.t
val of_json : Obs.Json.t -> t
(** Raises [Failure] on malformed input. *)

val crash_tolerant : string -> bool
(** Whether the generator may schedule crashes for this algorithm. False
    for [hygienic] (no failure detector: a crashed neighbour blocks its
    forks forever) and [fl1] (failure locality 1: neighbours of a crashed
    diner may legitimately starve); true for everything else. *)

val generate : Prng.t -> algos:string list -> families:family list -> max_horizon:int -> t
(** Draw a random config. Knob ranges are calibrated so the monitored
    properties are expected to hold for the real algorithms (gst within the
    first quarter of the horizon, handicap factors >= 30%): campaign
    violations mean property failures, not truncation artifacts. *)
