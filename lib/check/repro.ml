open Dsim

let schema_version = "fuzz-repro/1"

type t = {
  config : Config.t;
  len : int;
  overrides : (int * Adversary.decision) list;
  checks : Obs.Report.check list;
}

let v ~config ~len ~overrides ~checks =
  { config; len; overrides = List.sort compare overrides; checks }

(* Decisions are encoded as small integers: 0 = step withheld, 1 = step
   offered, d+1 = delivery delay d (delays are >= 1, so codes >= 2 are
   unambiguous). *)
let encode_decision = function
  | Adversary.Step false -> 0
  | Adversary.Step true -> 1
  | Adversary.Delay d ->
      if d < 1 then invalid_arg "Repro: delay < 1" else d + 1

let decode_decision = function
  | 0 -> Adversary.Step false
  | 1 -> Adversary.Step true
  | e when e >= 2 -> Adversary.Delay (e - 1)
  | e -> failwith (Printf.sprintf "Repro: bad decision code %d" e)

let body_json r =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.Str schema_version);
      ("config", Config.to_json r.config);
      ( "decisions",
        Obs.Json.Obj
          [
            ("len", Obs.Json.Int r.len);
            ( "overrides",
              Obs.Json.Arr
                (List.map
                   (fun (i, d) ->
                     Obs.Json.Arr [ Obs.Json.Int i; Obs.Json.Int (encode_decision d) ])
                   r.overrides) );
          ] );
      ("checks", Obs.Json.Arr (List.map Obs.Report.check_to_json r.checks));
    ]

let digest r = Digest.to_hex (Digest.string (Obs.Json.to_string (body_json r)))

let to_json r =
  match body_json r with
  | Obs.Json.Obj fields -> Obs.Json.Obj (fields @ [ ("digest", Obs.Json.Str (digest r)) ])
  | _ -> assert false

let of_json j =
  (match Obs.Json.find j "schema" with
  | Some (Obs.Json.Str s) when s = schema_version -> ()
  | Some (Obs.Json.Str s) -> failwith (Printf.sprintf "Repro.of_json: unknown schema %S" s)
  | _ -> failwith "Repro.of_json: missing schema tag");
  let config = Config.of_json (Obs.Json.get j "config") in
  let d = Obs.Json.get j "decisions" in
  let len = Obs.Json.int (Obs.Json.get d "len") in
  let overrides =
    List.map
      (fun e ->
        match Obs.Json.arr e with
        | [ i; v ] -> (Obs.Json.int i, decode_decision (Obs.Json.int v))
        | _ -> failwith "Repro.of_json: bad override entry")
      (Obs.Json.arr (Obs.Json.get d "overrides"))
  in
  let checks = List.map Obs.Report.check_of_json (Obs.Json.arr (Obs.Json.get j "checks")) in
  let r = v ~config ~len ~overrides ~checks in
  (match Obs.Json.find j "digest" with
  | Some (Obs.Json.Str d) when d = digest r -> ()
  | Some (Obs.Json.Str d) ->
      failwith
        (Printf.sprintf "Repro.of_json: digest mismatch (recorded %s, computed %s)" d (digest r))
  | _ -> failwith "Repro.of_json: missing digest");
  r

let save ~path r =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Obs.Json.to_string_pretty (to_json r));
      output_char oc '\n')

let load ~path =
  let ic = open_in path in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_json (Obs.Json.of_string content)

let replay ~registry r =
  let outcome = Runner.run ~replay:(r.len, r.overrides) ~registry r.config in
  let expected =
    List.map (fun (c : Obs.Report.check) -> (c.Obs.Report.name, c.Obs.Report.holds)) r.checks
  in
  let got =
    List.map
      (fun (c : Obs.Report.check) -> (c.Obs.Report.name, c.Obs.Report.holds))
      outcome.Runner.checks
  in
  if expected = got then Ok outcome
  else
    Error
      (List.filter_map
         (fun (name, holds) ->
           match List.assoc_opt name got with
           | Some g when g = holds -> None
           | Some g -> Some (Printf.sprintf "%s: recorded %b, replayed %b" name holds g)
           | None -> Some (Printf.sprintf "%s: missing from replay" name))
         expected
      @ List.filter_map
          (fun (name, _) ->
            if List.mem_assoc name expected then None
            else Some (Printf.sprintf "%s: unexpected in replay" name))
          got)
