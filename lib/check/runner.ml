open Dsim

type builder =
  Engine.t -> graph:Graphs.Conflict_graph.t -> instance:string -> eat_ticks:int -> unit

type registry = (string * builder) list

type outcome = {
  checks : Obs.Report.check list;
  failed : string list;
  meals : int;
  trace_events : int;
  coverage : Obs.Coverage.t;
}

let instance = "fz"

let with_evp make engine ~graph ~instance ~eat_ticks =
  let n = Graphs.Conflict_graph.n graph in
  let suspects = Core.Scenario.evp_suspects engine ~n ~windows:[] in
  for pid = 0 to n - 1 do
    let ctx = Engine.ctx engine pid in
    let comp, handle = make ctx ~graph ~instance ~suspects:(suspects pid) in
    Engine.register engine pid comp;
    Engine.register engine pid (Dining.Clients.greedy ctx ~handle ~eat_ticks ())
  done

let wf_builder =
  with_evp (fun ctx ~graph ~instance ~suspects ->
      let c, h, _ = Dining.Wf_ewx.component ctx ~instance ~graph ~suspects () in
      (c, h))

let kfair_builder =
  with_evp (fun ctx ~graph ~instance ~suspects ->
      let c, h, _ = Dining.Kfair.component ctx ~instance ~graph ~suspects () in
      (c, h))

let fl1_builder =
  with_evp (fun ctx ~graph ~instance ~suspects ->
      Dining.Fl1.component ctx ~instance ~graph ~suspects ())

let hygienic_builder engine ~graph ~instance ~eat_ticks =
  let n = Graphs.Conflict_graph.n graph in
  for pid = 0 to n - 1 do
    let ctx = Engine.ctx engine pid in
    let comp, handle, _ = Dining.Hygienic.component ctx ~instance ~graph () in
    Engine.register engine pid comp;
    Engine.register engine pid (Dining.Clients.greedy ctx ~handle ~eat_ticks ())
  done

let ftme_builder engine ~graph ~instance ~eat_ticks =
  let n = Graphs.Conflict_graph.n graph in
  let members = List.init n Fun.id in
  for pid = 0 to n - 1 do
    let ctx = Engine.ctx engine pid in
    let comp, oracle = Detectors.Ground_truth.trusting ctx ~peers:members () in
    Engine.register engine pid comp;
    let dcomp, handle, _ =
      Dining.Ftme.component ctx ~instance ~members
        ~suspects:(fun () -> oracle.Detectors.Oracle.suspects ())
        ()
    in
    Engine.register engine pid dcomp;
    Engine.register engine pid (Dining.Clients.greedy ctx ~handle ~eat_ticks ())
  done

let default_registry =
  [
    ("wf", wf_builder);
    ("kfair", kfair_builder);
    ("fl1", fl1_builder);
    ("hygienic", hygienic_builder);
    ("ftme", ftme_builder);
  ]

let run_traced ?record ?replay ?drive ?metrics ~registry (c : Config.t) =
  (match (record, replay, drive) with
  | Some _, Some _, _ | Some _, _, Some _ | _, Some _, Some _ ->
      invalid_arg "Runner.run: record, replay and drive are mutually exclusive"
  | _ -> ());
  let builder =
    match List.assoc_opt c.Config.algo registry with
    | Some b -> b
    | None -> failwith (Printf.sprintf "Runner.run: unknown algorithm %S" c.Config.algo)
  in
  let graph = Config.graph c in
  let n = Graphs.Conflict_graph.n graph in
  let base = Config.to_adversary c in
  let adversary =
    match (record, replay, drive) with
    | Some tape, None, None -> Adversary.record tape base
    | None, Some (len, overrides), None -> Adversary.replay ~len ~overrides base
    | None, None, Some controller -> Adversary.drive controller base
    | None, None, None -> base
    | _ -> assert false
  in
  let engine = Engine.create ~seed:c.Config.seed ~n ~adversary () in
  (* Instrumentation must be installed before components register so its
     on_tick hook and trace subscriber see the whole run. *)
  let inst = Option.map (fun metrics -> Obs.Instrument.install ~metrics engine) metrics in
  (* The coverage collector likewise subscribes before any component can
     log, so the signature spans the whole event stream. *)
  let cov = Obs.Coverage.create () in
  Obs.Coverage.attach cov (Engine.trace engine);
  builder engine ~graph ~instance ~eat_ticks:c.Config.eat_ticks;
  List.iter
    (fun (pid, at) -> if pid >= 0 && pid < n then Engine.schedule_crash engine pid ~at)
    c.Config.crashes;
  Engine.run engine ~until:c.Config.horizon;
  Option.iter Obs.Instrument.finalize inst;
  let trace = Engine.trace engine in
  let horizon = c.Config.horizon in
  let checks =
    [
      Obs.Report.of_verdict "wait_freedom"
        (Dining.Monitor.wait_freedom trace ~instance ~n ~horizon ~slack:(horizon / 3));
      Obs.Report.of_verdict "eventual_weak_exclusion"
        (Dining.Monitor.eventual_weak_exclusion trace ~instance ~graph ~horizon
           ~suffix_from:(horizon / 2));
      Obs.Report.of_verdict "exiting_finite"
        (Dining.Monitor.exiting_finite trace ~instance ~n ~horizon ~slack:(horizon / 3));
    ]
  in
  let failed =
    List.filter_map
      (fun (ch : Obs.Report.check) -> if ch.Obs.Report.holds then None else Some ch.Obs.Report.name)
      checks
  in
  let meals =
    List.init n (fun pid -> Dining.Monitor.eat_count trace ~instance ~pid)
    |> List.fold_left ( + ) 0
  in
  ( {
      checks;
      failed;
      meals;
      trace_events = Trace.length trace;
      coverage = Obs.Coverage.snapshot cov;
    },
    trace )

let run ?record ?replay ?drive ?metrics ~registry c =
  fst (run_traced ?record ?replay ?drive ?metrics ~registry c)
