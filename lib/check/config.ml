open Dsim

type adversary =
  | Sync
  | Async of { max_delay : int; step_prob_pct : int }
  | Partial of { gst : int; pre_max_delay : int; delta : int; pre_step_prob_pct : int }
  | Bursty of { gst : int; calm : int; storm : int; storm_delay : int; delta : int }
  | Dls of { delta : int; phi : int }

type topology = Pair | Ring of int | Clique of int | Star of int | Path of int

type t = {
  algo : string;
  topology : topology;
  adversary : adversary;
  crashes : (Types.pid * Types.time) list;
  handicap : (Types.pid list * int) option;
  horizon : int;
  eat_ticks : int;
  seed : int64;
}

type family = [ `Sync | `Async | `Partial | `Bursty | `Dls ]

(* [`Dls] is deliberately absent: the fuzz generator never draws DLS
   configs (they are the model checker's input, constructed explicitly by
   [dinersim check]), and the pinned campaign digests depend on the draw
   sequence staying exactly as it was. *)
let all_families : family list = [ `Sync; `Async; `Partial; `Bursty ]

let family_of_string = function
  | "sync" -> Some `Sync
  | "async" -> Some `Async
  | "partial" -> Some `Partial
  | "bursty" -> Some `Bursty
  | "dls" -> Some `Dls
  | _ -> None

let family_to_string = function
  | `Sync -> "sync"
  | `Async -> "async"
  | `Partial -> "partial"
  | `Bursty -> "bursty"
  | `Dls -> "dls"

let family = function
  | Sync -> `Sync
  | Async _ -> `Async
  | Partial _ -> `Partial
  | Bursty _ -> `Bursty
  | Dls _ -> `Dls

(* All probabilities are integer percentages so that configs round-trip
   through JSON without any float-formatting subtleties. *)
let pct p = float_of_int p /. 100.0

let graph c =
  match c.topology with
  | Pair -> Graphs.Conflict_graph.pair ()
  | Ring n -> Graphs.Conflict_graph.ring ~n
  | Clique n -> Graphs.Conflict_graph.clique ~n
  | Star n -> Graphs.Conflict_graph.star ~n
  | Path n -> Graphs.Conflict_graph.path ~n

let n_procs c = Graphs.Conflict_graph.n (graph c)

let to_adversary c =
  let base =
    match c.adversary with
    | Sync -> Adversary.synchronous ()
    | Async { max_delay; step_prob_pct } ->
        Adversary.async_uniform ~max_delay ~step_prob:(pct step_prob_pct) ()
    | Partial { gst; pre_max_delay; delta; pre_step_prob_pct } ->
        Adversary.partial_sync ~gst ~pre_max_delay ~delta ~pre_step_prob:(pct pre_step_prob_pct)
          ()
    | Bursty { gst; calm; storm; storm_delay; delta } ->
        Adversary.bursty ~gst ~calm ~storm ~storm_delay ~delta ()
    | Dls { delta; phi } -> Adversary.dls ~delta ~phi ()
  in
  match c.handicap with
  | None -> base
  | Some (slow, factor_pct) -> Adversary.handicap ~slow ~factor:(pct factor_pct) base

(* ------------------------------------------------------------------ *)
(* Text renderings *)

let topology_to_string = function
  | Pair -> "pair"
  | Ring n -> Printf.sprintf "ring:%d" n
  | Clique n -> Printf.sprintf "clique:%d" n
  | Star n -> Printf.sprintf "star:%d" n
  | Path n -> Printf.sprintf "path:%d" n

let topology_of_string s =
  match String.split_on_char ':' s with
  | [ "pair" ] -> Some Pair
  | [ "ring"; n ] -> Option.bind (int_of_string_opt n) (fun n -> if n >= 3 then Some (Ring n) else None)
  | [ "clique"; n ] ->
      Option.bind (int_of_string_opt n) (fun n -> if n >= 2 then Some (Clique n) else None)
  | [ "star"; n ] -> Option.bind (int_of_string_opt n) (fun n -> if n >= 2 then Some (Star n) else None)
  | [ "path"; n ] -> Option.bind (int_of_string_opt n) (fun n -> if n >= 2 then Some (Path n) else None)
  | _ -> None

let describe c =
  Printf.sprintf "algo=%s topo=%s adv=%s crashes=[%s]%s horizon=%d eat=%d seed=%s" c.algo
    (topology_to_string c.topology)
    (to_adversary c).Adversary.name
    (String.concat "," (List.map (fun (p, t) -> Printf.sprintf "%d@%d" p t) c.crashes))
    (match c.handicap with
    | None -> ""
    | Some (slow, f) ->
        Printf.sprintf " slow=[%s]@%d%%" (String.concat "," (List.map string_of_int slow)) f)
    c.horizon c.eat_ticks
    (Core.Cmdline.seed_to_string c.seed)

(* ------------------------------------------------------------------ *)
(* JSON codec *)

let adversary_to_json = function
  | Sync -> Obs.Json.Obj [ ("family", Obs.Json.Str "sync") ]
  | Async { max_delay; step_prob_pct } ->
      Obs.Json.Obj
        [
          ("family", Obs.Json.Str "async");
          ("max_delay", Obs.Json.Int max_delay);
          ("step_prob_pct", Obs.Json.Int step_prob_pct);
        ]
  | Partial { gst; pre_max_delay; delta; pre_step_prob_pct } ->
      Obs.Json.Obj
        [
          ("family", Obs.Json.Str "partial");
          ("gst", Obs.Json.Int gst);
          ("pre_max_delay", Obs.Json.Int pre_max_delay);
          ("delta", Obs.Json.Int delta);
          ("pre_step_prob_pct", Obs.Json.Int pre_step_prob_pct);
        ]
  | Bursty { gst; calm; storm; storm_delay; delta } ->
      Obs.Json.Obj
        [
          ("family", Obs.Json.Str "bursty");
          ("gst", Obs.Json.Int gst);
          ("calm", Obs.Json.Int calm);
          ("storm", Obs.Json.Int storm);
          ("storm_delay", Obs.Json.Int storm_delay);
          ("delta", Obs.Json.Int delta);
        ]
  | Dls { delta; phi } ->
      Obs.Json.Obj
        [
          ("family", Obs.Json.Str "dls");
          ("delta", Obs.Json.Int delta);
          ("phi", Obs.Json.Int phi);
        ]

let adversary_of_json j =
  let field k = Obs.Json.int (Obs.Json.get j k) in
  match Obs.Json.find j "family" with
  | Some (Obs.Json.Str "sync") -> Sync
  | Some (Obs.Json.Str "async") ->
      Async { max_delay = field "max_delay"; step_prob_pct = field "step_prob_pct" }
  | Some (Obs.Json.Str "partial") ->
      Partial
        {
          gst = field "gst";
          pre_max_delay = field "pre_max_delay";
          delta = field "delta";
          pre_step_prob_pct = field "pre_step_prob_pct";
        }
  | Some (Obs.Json.Str "bursty") ->
      Bursty
        {
          gst = field "gst";
          calm = field "calm";
          storm = field "storm";
          storm_delay = field "storm_delay";
          delta = field "delta";
        }
  | Some (Obs.Json.Str "dls") -> Dls { delta = field "delta"; phi = field "phi" }
  | _ -> failwith "Config.adversary_of_json: missing or unknown family"

let to_json c =
  Obs.Json.Obj
    [
      ("algo", Obs.Json.Str c.algo);
      ("topology", Obs.Json.Str (topology_to_string c.topology));
      ("adversary", adversary_to_json c.adversary);
      ( "crashes",
        Obs.Json.Arr
          (List.map (fun (p, t) -> Obs.Json.Str (Printf.sprintf "%d@%d" p t)) c.crashes) );
      ( "handicap",
        match c.handicap with
        | None -> Obs.Json.Null
        | Some (slow, f) ->
            Obs.Json.Obj
              [
                ("slow", Obs.Json.Arr (List.map (fun p -> Obs.Json.Int p) slow));
                ("factor_pct", Obs.Json.Int f);
              ] );
      ("horizon", Obs.Json.Int c.horizon);
      ("eat_ticks", Obs.Json.Int c.eat_ticks);
      ("seed", Obs.Json.Str (Core.Cmdline.seed_to_string c.seed));
    ]

let crash_of_string s =
  match String.split_on_char '@' s with
  | [ p; t ] -> (
      match (int_of_string_opt p, int_of_string_opt t) with
      | Some p, Some t -> (p, t)
      | _ -> failwith (Printf.sprintf "Config.of_json: bad crash %S" s))
  | _ -> failwith (Printf.sprintf "Config.of_json: bad crash %S" s)

let of_json j =
  let str k = Obs.Json.str (Obs.Json.get j k) in
  let int k = Obs.Json.int (Obs.Json.get j k) in
  let topology =
    match topology_of_string (str "topology") with
    | Some t -> t
    | None -> failwith (Printf.sprintf "Config.of_json: bad topology %S" (str "topology"))
  in
  let crashes =
    List.map (fun e -> crash_of_string (Obs.Json.str e)) (Obs.Json.arr (Obs.Json.get j "crashes"))
  in
  let handicap =
    match Obs.Json.find j "handicap" with
    | None | Some Obs.Json.Null -> None
    | Some h ->
        Some
          ( List.map Obs.Json.int (Obs.Json.arr (Obs.Json.get h "slow")),
            Obs.Json.int (Obs.Json.get h "factor_pct") )
  in
  let seed =
    match Core.Cmdline.parse_seed (str "seed") with
    | Ok s -> s
    | Error e -> failwith ("Config.of_json: " ^ e)
  in
  {
    algo = str "algo";
    topology;
    adversary = adversary_of_json (Obs.Json.get j "adversary");
    crashes;
    handicap;
    horizon = int "horizon";
    eat_ticks = int "eat_ticks";
    seed;
  }

(* ------------------------------------------------------------------ *)
(* Random generation *)

let gen_topology rng =
  match Prng.int rng ~bound:5 with
  | 0 -> Pair
  | 1 -> Ring (Prng.int_in rng ~lo:3 ~hi:6)
  | 2 -> Clique (Prng.int_in rng ~lo:3 ~hi:5)
  | 3 -> Star (Prng.int_in rng ~lo:4 ~hi:6)
  | _ -> Path (Prng.int_in rng ~lo:4 ~hi:6)

(* Knob ranges are calibrated so that the monitored properties are
   *expected* to hold for the real algorithms at the given horizon: the
   adversary must stabilise (gst <= horizon/4) well before the suffix the
   ◇WX check inspects (horizon/2), and handicap factors stay >= 30% so
   hungry waits of slowed diners fit inside the wait-freedom slack. A
   violation reported by a campaign is therefore a genuine property
   failure, not a truncation artifact. *)
let gen_adversary rng ~family:fam ~horizon =
  match fam with
  | `Sync -> Sync
  | `Async ->
      Async
        {
          max_delay = Prng.int_in rng ~lo:2 ~hi:16;
          step_prob_pct = 50 + (10 * Prng.int_in rng ~lo:0 ~hi:4);
        }
  | `Partial ->
      Partial
        {
          gst = Prng.int_in rng ~lo:50 ~hi:(max 51 (horizon / 4));
          pre_max_delay = Prng.int_in rng ~lo:8 ~hi:60;
          delta = Prng.int_in rng ~lo:1 ~hi:6;
          pre_step_prob_pct = 40 + (10 * Prng.int_in rng ~lo:0 ~hi:4);
        }
  | `Bursty ->
      Bursty
        {
          gst = Prng.int_in rng ~lo:100 ~hi:(max 101 (horizon / 4));
          calm = Prng.int_in rng ~lo:30 ~hi:80;
          storm = Prng.int_in rng ~lo:20 ~hi:60;
          storm_delay = Prng.int_in rng ~lo:20 ~hi:100;
          delta = Prng.int_in rng ~lo:1 ~hi:6;
        }
  | `Dls ->
      (* Only reachable when the caller asks for the family explicitly
         (e.g. `dinersim fuzz --families dls`); [all_families] excludes it
         so default campaigns draw exactly what they always drew. *)
      Dls { delta = Prng.int_in rng ~lo:1 ~hi:6; phi = Prng.int_in rng ~lo:1 ~hi:4 }

(* The campaign monitors check wait-freedom for every live process, which
   is only a fair test of algorithms designed to survive crashes: hygienic
   runs with no failure detector at all (a crashed neighbour holds its
   forks forever), and FL1 only promises failure locality 1 (a crashed
   diner may legitimately starve its neighbours). Fuzzing those with
   crashes would report "violations" that are really documented
   limitations, so the generator keeps their runs crash-free. *)
let crash_tolerant = function "hygienic" | "fl1" -> false | _ -> true

let generate rng ~algos ~families ~max_horizon =
  if algos = [] then invalid_arg "Config.generate: empty algo list";
  if families = [] then invalid_arg "Config.generate: empty family list";
  let algo = Prng.pick rng (Array.of_list algos) in
  let topology = gen_topology rng in
  let horizon =
    let h = max 1600 max_horizon in
    match Prng.int rng ~bound:3 with 0 -> h / 2 | 1 -> 3 * h / 4 | _ -> h
  in
  let fam = Prng.pick rng (Array.of_list families) in
  let adversary = gen_adversary rng ~family:fam ~horizon in
  let g =
    match topology with
    | Pair -> Graphs.Conflict_graph.pair ()
    | Ring n -> Graphs.Conflict_graph.ring ~n
    | Clique n -> Graphs.Conflict_graph.clique ~n
    | Star n -> Graphs.Conflict_graph.star ~n
    | Path n -> Graphs.Conflict_graph.path ~n
  in
  let n = Graphs.Conflict_graph.n g in
  let crashes =
    let k =
      match Prng.int rng ~bound:20 with
      | x when x < 9 -> 0
      | x when x < 16 -> 1
      | _ -> 2
    in
    let k = if crash_tolerant algo then min k (n - 1) else 0 in
    let pids = Array.init n Fun.id in
    Prng.shuffle rng pids;
    List.init k (fun i -> (pids.(i), Prng.int_in rng ~lo:200 ~hi:(max 201 (horizon / 2))))
    |> List.sort compare
  in
  let handicap =
    if Prng.chance rng ~p:0.25 then
      let crashed = List.map fst crashes in
      let candidates = List.filter (fun p -> not (List.mem p crashed)) (List.init n Fun.id) in
      match candidates with
      | [] -> None
      | _ ->
          let slow = List.nth candidates (Prng.int rng ~bound:(List.length candidates)) in
          Some ([ slow ], 30 + (20 * Prng.int_in rng ~lo:0 ~hi:2))
    else None
  in
  let eat_ticks = Prng.int_in rng ~lo:1 ~hi:4 in
  let seed = Prng.next_int64 rng in
  { algo; topology; adversary; crashes; handicap; horizon; eat_ticks; seed }
