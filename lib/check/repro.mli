(** Self-contained replayable run artifacts, schema ["fuzz-repro/1"].

    One JSON document holds everything needed to re-execute a fuzzed run
    bit-identically: the {!Config} (which includes the engine seed), the
    decision-trace override (length + sparse positional overrides, see
    {!Dsim.Adversary.replay}), and the recorded property verdicts. A
    content digest (over the canonical compact JSON, digest field
    excluded) pins the artifact: {!load} verifies it, so a corpus file
    that drifts from its recorded digest fails loudly. *)

open Dsim

val schema_version : string

type t = {
  config : Config.t;
  len : int;  (** Number of adversary queries driven by the override table. *)
  overrides : (int * Adversary.decision) list;  (** Sorted by position. *)
  checks : Obs.Report.check list;  (** Verdicts recorded when the artifact was made. *)
}

val v :
  config:Config.t ->
  len:int ->
  overrides:(int * Adversary.decision) list ->
  checks:Obs.Report.check list ->
  t

val digest : t -> string
(** Hex MD5 of the canonical compact JSON body (without the digest field).
    Deterministic across runs and platforms. *)

val to_json : t -> Obs.Json.t
val of_json : Obs.Json.t -> t
(** Validates the schema tag and the embedded digest; raises [Failure]. *)

val save : path:string -> t -> unit
val load : path:string -> t

val replay : registry:Runner.registry -> t -> (Runner.outcome, string list) result
(** Re-execute the artifact and compare (name, holds) of every recorded
    check against the replayed verdicts; [Error] lists the mismatches. *)
