(** Execute one campaign config and collect its property verdicts.

    A runner builds the engine from the config (seed, adversary, optionally
    wrapped for decision recording or replay), deploys the named dining
    algorithm with greedy clients on every process, applies the crash
    schedule, runs to the horizon, and checks the Section 4 dining
    properties over the trace: wait-freedom (slack horizon/3), eventual
    weak exclusion (suffix from horizon/2), and finite exiting. *)

open Dsim

type builder =
  Engine.t -> graph:Graphs.Conflict_graph.t -> instance:string -> eat_ticks:int -> unit
(** Deploy one dining algorithm (plus clients and any detectors it needs)
    on every process of the engine. *)

type registry = (string * builder) list
(** Algorithms by config name. Tests extend this with broken variants. *)

type outcome = {
  checks : Obs.Report.check list;  (** Verdicts, fixed order. *)
  failed : string list;  (** Names of the checks that do not hold. *)
  meals : int;  (** Total completed+ongoing eating sessions (diagnostics). *)
  trace_events : int;
  coverage : Obs.Coverage.t;
      (** Schedule-coverage signature of the run's event stream —
          deterministic in the config, so replay reproduces it exactly. *)
}

val instance : string
(** The dining-instance tag used by every fuzz run (["fz"]). *)

val default_registry : registry
(** wf, kfair, fl1, hygienic, ftme — deployed exactly as [dinersim dining]
    deploys them (heartbeat ◇P under wf/kfair/fl1, trusting ground truth
    under ftme, nothing under hygienic). *)

val run :
  ?record:Adversary.tape ->
  ?replay:int * (int * Adversary.decision) list ->
  ?drive:(Adversary.query -> Adversary.decision) ->
  ?metrics:Obs.Metrics.t ->
  registry:registry ->
  Config.t ->
  outcome
(** Execute the config. [record] wraps the adversary so its decision
    sequence is captured; [replay] drives the first [len] adversary queries
    from the given positional overrides (see {!Adversary.replay}); [drive]
    hands every adversary query to a controller callback (see
    {!Adversary.drive}) — the bounded exhaustive explorer's hook. The
    three are mutually exclusive. [metrics] installs the standard
    {!Obs.Instrument} engine instrumentation into the given registry
    (finalized before returning) — campaign drivers give each run its own
    registry and merge them in run-index order. Raises [Failure] on an
    algorithm name missing from the registry. *)

val run_traced :
  ?record:Adversary.tape ->
  ?replay:int * (int * Adversary.decision) list ->
  ?drive:(Adversary.query -> Adversary.decision) ->
  ?metrics:Obs.Metrics.t ->
  registry:registry ->
  Config.t ->
  outcome * Trace.t
(** Like {!run} but also returns the full recorded trace — the input of
    {!Obs.Span.chrome_of_trace} and offline property checkers
    ([dinersim trace] renders repro artifacts through this). *)
