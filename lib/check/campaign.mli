(** Fuzzing campaigns: generate N configs from a root seed, run each under
    the dining monitors, shrink violations into replayable artifacts.

    Everything is deterministic in [root_seed]: run [i] draws its config
    from the [i]-th {!Dsim.Prng.split} child of the root stream, so two
    campaigns with equal knobs and seed execute identical runs and shrink
    identical counterexamples. *)

type violation = {
  index : int;  (** Which run of the campaign failed. *)
  config : Config.t;
  failed : string list;  (** Names of the violated properties. *)
  repro : Repro.t option;
      (** Shrunk counterexample; [None] once [max_repros] have been shrunk. *)
}

type t = {
  root_seed : int64;
  runs : int;
  violations : violation list;
  knobs : (string * Obs.Json.t) list;  (** Campaign parameters, for the summary. *)
  entries : Obs.Json.t list;  (** One summary entry per violation. *)
}

val run :
  ?runs:int ->
  ?max_repros:int ->
  ?max_horizon:int ->
  ?families:Config.family list ->
  ?algos:string list ->
  ?config_budget:int ->
  ?decision_budget:int ->
  ?on_run:(int -> Config.t -> Runner.outcome -> unit) ->
  ?corpus:(int -> Repro.t -> unit) ->
  registry:Runner.registry ->
  root_seed:int64 ->
  unit ->
  t
(** Execute a campaign. Defaults: 100 runs, shrink at most 3 violations,
    horizons up to 6000, all adversary families, every algorithm in the
    registry. [on_run] observes each run as it completes (progress
    reporting); [corpus] receives a zero-override artifact for every run
    (corpus harvesting). Raises [Invalid_argument] on empty algorithm or
    family lists. *)

val summary : ?wall:Obs.Json.t -> cmd:string -> t -> Obs.Json.t
(** The ["dinersim-campaign/1"] summary document (see
    {!Obs.Report.make_campaign}). *)
