(** Fuzzing campaigns: generate N configs from a root seed, run each under
    the dining monitors, shrink violations into replayable artifacts.

    Everything canonical is deterministic in [root_seed] {e alone}: run [i]
    draws its whole PRNG stream from {!Dsim.Prng.derive}[ root_seed
    ~index:i] — a pure function of the pair, not a sequentially stateful
    split chain — so runs are independent trials that may execute on any
    worker in any order. With [jobs > 1] the runs are spread over that many
    domains ({!Exec.Pool}) and the results merged back in run-index order:
    verdicts, violations, shrunk counterexamples, merged metrics and the
    summary's canonical body are byte-identical for every [jobs] value.
    Only the wall_clock section (total and per-run elapsed seconds, and the
    jobs count itself) may differ between invocations. *)

type violation = {
  index : int;  (** Which run of the campaign failed. *)
  config : Config.t;
  failed : string list;  (** Names of the violated properties. *)
  repro : Repro.t option;
      (** Shrunk counterexample; [None] once [max_repros] have been shrunk. *)
}

type t = {
  root_seed : int64;
  runs : int;
  jobs : int;  (** Worker domains used; affects wall-clock only. *)
  violations : violation list;
  knobs : (string * Obs.Json.t) list;  (** Campaign parameters, for the summary. *)
  entries : Obs.Json.t list;  (** One summary entry per violation. *)
  metrics : Obs.Metrics.t;
      (** Per-run engine instrumentation registries, merged in run-index
          order — deterministic in [root_seed], independent of [jobs].
          Includes counter [coverage.edges_new] (sum over runs of the edge
          buckets each run added to the accumulated union) and gauge
          [coverage.edges] (final union popcount). *)
  coverage : Obs.Coverage.t;
      (** Union of the per-run schedule-coverage signatures — commutative,
          hence identical for every [jobs]. *)
  coverage_growth : int list;
      (** Cumulative union edge count after each run, in run-index order —
          the campaign's coverage growth curve. *)
  run_walls : float array;
      (** Wall seconds per run, in run-index order. Nondeterministic; feeds
          the summary's wall_clock section only. *)
}

val run :
  ?runs:int ->
  ?max_repros:int ->
  ?max_horizon:int ->
  ?families:Config.family list ->
  ?algos:string list ->
  ?config_budget:int ->
  ?decision_budget:int ->
  ?on_run:(int -> Config.t -> Runner.outcome -> unit) ->
  ?corpus:(int -> Repro.t -> unit) ->
  ?jobs:int ->
  registry:Runner.registry ->
  root_seed:int64 ->
  unit ->
  t
(** Execute a campaign. Defaults: 100 runs, shrink at most 3 violations,
    horizons up to 6000, all adversary families, every algorithm in the
    registry, [jobs = 1]. [on_run] observes every run and [corpus] receives
    a zero-override artifact for every run; both are invoked on the calling
    domain, in run-index order, after the parallel phase — so campaign
    output (progress lines, corpus files) is identical for every [jobs].
    Shrinking also happens on the calling domain, over the first
    [max_repros] violations in run-index order. Raises [Invalid_argument]
    on empty algorithm or family lists or [jobs < 1]. *)

val wall_json : ?total_s:float -> t -> Obs.Json.t
(** The wall_clock section: [{"jobs":N, "total_s":S?, "runs_s":[...]}].
    Everything in it is excluded from the canonical digest. *)

val coverage_json : t -> Obs.Json.t
(** The summary's coverage block:
    [{"width","edges","digest","growth":[...],"bitmap":"hex"}]. *)

val summary : ?total_s:float -> cmd:string -> t -> Obs.Json.t
(** The ["dinersim-campaign/1"] summary document (see
    {!Obs.Report.make_campaign}). Canonical body (config, entries, merged
    metrics, coverage block) is byte-identical across [jobs]; the
    wall_clock section carries {!wall_json}. *)
