(** Counterexample shrinking: deterministic delta-debugging of a failing
    campaign run, first over the config vector, then over the recorded
    adversary decision trace.

    Config shrinking greedily applies simplification candidates (smaller
    topology, friendlier adversary family/knobs, fewer and earlier crashes,
    no handicap, half the horizon, unit meals) and keeps a candidate iff
    its run still exhibits a property violation, restarting from the
    coarsest candidates after every acceptance until a fixpoint or the run
    budget. Decision shrinking then records the minimal config's failing
    run and neutralises positional chunks of the decision trace towards
    the friendliest schedule (delay 1 / step offered) in a ddmin-style
    halving loop. Every step is deterministic, so a given failing config
    always shrinks to the same artifact. *)

open Dsim

val fails : registry:Runner.registry -> Config.t -> bool
(** One natural run; true iff some monitored property is violated. *)

val config : ?budget:int -> registry:Runner.registry -> Config.t -> Config.t
(** Greedy config-level shrink (budget: max runs, default 200). The input
    should be failing; the result then still fails. *)

val decisions :
  ?budget:int ->
  registry:Runner.registry ->
  Config.t ->
  int * (int * Adversary.decision) list
(** Record the config's failing run and ddmin its decision trace (budget:
    max replays, default 150). Returns the trace length and the surviving
    positional overrides (empty when the violation needs no adversarial
    decisions at all). *)

val counterexample :
  ?config_budget:int ->
  ?decision_budget:int ->
  registry:Runner.registry ->
  Config.t ->
  Repro.t
(** Full pipeline: shrink the config, shrink its decision trace, re-run
    the minimal case and package it with its recorded verdicts. *)
