open Dsim

let fails ~registry c = (Runner.run ~registry c).Runner.failed <> []

(* Candidate configs must stay well-formed after a coarse simplification:
   shrinking the topology can orphan crash/handicap pids, and shrinking the
   horizon can push crash times or the gst past the end of the run. *)
let sanitize (c : Config.t) =
  let n = Config.n_procs c in
  let crashes = List.filter (fun (p, t) -> p >= 0 && p < n && t < c.Config.horizon) c.Config.crashes in
  let handicap =
    match c.Config.handicap with
    | Some (slow, f) -> (
        match List.filter (fun p -> p >= 0 && p < n) slow with
        | [] -> None
        | slow -> Some (slow, f))
    | None -> None
  in
  let adversary =
    match c.Config.adversary with
    | Config.Partial a -> Config.Partial { a with gst = min a.gst c.Config.horizon }
    | Config.Bursty a -> Config.Bursty { a with gst = min a.gst c.Config.horizon }
    | a -> a
  in
  { c with Config.crashes; handicap; adversary }

(* Simplification candidates in decreasing coarseness: whole-dimension
   resets first (friendliest adversary, no crashes, smallest topology,
   half the horizon), then single-knob reductions. The greedy loop below
   restarts from the top after every accepted candidate, so the coarse
   jumps get retried as the config shrinks. *)
let candidates (c : Config.t) =
  let out = ref [] in
  let add c' =
    let c' = sanitize c' in
    if c' <> c && not (List.mem c' !out) then out := c' :: !out
  in
  if c.Config.topology <> Config.Pair then add { c with Config.topology = Config.Pair };
  if c.Config.adversary <> Config.Sync then add { c with Config.adversary = Config.Sync };
  if c.Config.crashes <> [] then add { c with Config.crashes = [] };
  if c.Config.handicap <> None then add { c with Config.handicap = None };
  if c.Config.horizon >= 1600 then add { c with Config.horizon = c.Config.horizon / 2 };
  (match c.Config.topology with
  | Config.Ring n when n > 3 -> add { c with Config.topology = Config.Ring (n - 1) }
  | Config.Clique n when n > 3 -> add { c with Config.topology = Config.Clique (n - 1) }
  | Config.Star n when n > 3 -> add { c with Config.topology = Config.Star (n - 1) }
  | Config.Path n when n > 3 -> add { c with Config.topology = Config.Path (n - 1) }
  | _ -> ());
  (match c.Config.adversary with
  | Config.Sync -> ()
  | Config.Async a ->
      if a.max_delay > 1 then
        add { c with Config.adversary = Config.Async { a with max_delay = a.max_delay / 2 } };
      if a.step_prob_pct < 100 then
        add { c with Config.adversary = Config.Async { a with step_prob_pct = 100 } }
  | Config.Partial a ->
      if a.gst > 0 then
        add { c with Config.adversary = Config.Partial { a with gst = a.gst / 2 } };
      if a.pre_max_delay > 1 then
        add
          {
            c with
            Config.adversary = Config.Partial { a with pre_max_delay = a.pre_max_delay / 2 };
          };
      if a.delta > 1 then
        add { c with Config.adversary = Config.Partial { a with delta = 1 } };
      if a.pre_step_prob_pct < 100 then
        add { c with Config.adversary = Config.Partial { a with pre_step_prob_pct = 100 } }
  | Config.Bursty a ->
      add
        {
          c with
          Config.adversary =
            Config.Partial
              {
                gst = a.gst;
                pre_max_delay = max 1 a.storm_delay;
                delta = a.delta;
                pre_step_prob_pct = 60;
              };
        };
      if a.gst > 0 then
        add { c with Config.adversary = Config.Bursty { a with gst = a.gst / 2 } };
      if a.storm_delay > 1 then
        add
          {
            c with
            Config.adversary = Config.Bursty { a with storm_delay = a.storm_delay / 2 };
          }
  | Config.Dls a ->
      if a.delta > 1 then
        add { c with Config.adversary = Config.Dls { a with delta = a.delta / 2 } };
      if a.phi > 1 then add { c with Config.adversary = Config.Dls { a with phi = 1 } });
  List.iteri
    (fun i _ ->
      add { c with Config.crashes = List.filteri (fun j _ -> j <> i) c.Config.crashes })
    c.Config.crashes;
  List.iteri
    (fun i (p, t) ->
      if t > 1 then
        add
          {
            c with
            Config.crashes =
              List.mapi (fun j e -> if j = i then (p, max 1 (t / 2)) else e) c.Config.crashes;
          })
    c.Config.crashes;
  if c.Config.eat_ticks > 1 then add { c with Config.eat_ticks = 1 };
  List.rev !out

let config ?(budget = 200) ~registry c0 =
  let evals = ref 0 in
  let still_fails c =
    incr evals;
    fails ~registry c
  in
  let rec improve c =
    let rec try_cands = function
      | [] -> c
      | cand :: rest ->
          if !evals >= budget then c
          else if still_fails cand then improve cand
          else try_cands rest
    in
    if !evals >= budget then c else try_cands (candidates c)
  in
  improve c0

let decisions ?(budget = 150) ~registry (c : Config.t) =
  let tape = Adversary.tape () in
  ignore (Runner.run ~record:tape ~registry c);
  let d = Adversary.tape_decisions tape in
  let len = Array.length d in
  if len = 0 then (0, [])
  else begin
    let evals = ref 0 in
    let still_fails overrides =
      incr evals;
      (Runner.run ~replay:(len, overrides) ~registry c).Runner.failed <> []
    in
    let kept = Array.make len true in
    let to_overrides () =
      let out = ref [] in
      for i = len - 1 downto 0 do
        if kept.(i) then out := (i, d.(i)) :: !out
      done;
      !out
    in
    if still_fails [] then (len, [])
    else begin
      (* ddmin-style: neutralise chunks of decisions (towards the
         friendliest choice) while the violation persists, halving the
         chunk size, under a run budget. *)
      let chunk = ref (max 1 (len / 2)) in
      let continue_ () = !evals < budget && Array.exists Fun.id kept in
      while !chunk >= 1 && continue_ () do
        let pos = ref 0 in
        while !pos < len && continue_ () do
          let hi = min len (!pos + !chunk) in
          let any = ref false in
          for i = !pos to hi - 1 do
            if kept.(i) then any := true
          done;
          if !any then begin
            let saved = Array.sub kept !pos (hi - !pos) in
            for i = !pos to hi - 1 do
              kept.(i) <- false
            done;
            if not (still_fails (to_overrides ())) then Array.blit saved 0 kept !pos (hi - !pos)
          end;
          pos := !pos + !chunk
        done;
        chunk := if !chunk = 1 then 0 else !chunk / 2
      done;
      (len, to_overrides ())
    end
  end

let counterexample ?config_budget ?decision_budget ~registry c0 =
  let c = config ?budget:config_budget ~registry c0 in
  let len, overrides = decisions ?budget:decision_budget ~registry c in
  let outcome = Runner.run ~replay:(len, overrides) ~registry c in
  Repro.v ~config:c ~len ~overrides ~checks:outcome.Runner.checks
