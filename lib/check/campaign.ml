open Dsim

type violation = {
  index : int;
  config : Config.t;
  failed : string list;
  repro : Repro.t option;
}

type t = {
  root_seed : int64;
  runs : int;
  violations : violation list;
  knobs : (string * Obs.Json.t) list;
  entries : Obs.Json.t list;
}

let violation_entry v =
  Obs.Json.Obj
    ([
       ("run", Obs.Json.Int v.index);
       ("config", Config.to_json v.config);
       ("failed", Obs.Json.Arr (List.map (fun s -> Obs.Json.Str s) v.failed));
     ]
    @
    match v.repro with
    | Some r ->
        [
          ( "repro",
            Obs.Json.Obj
              [
                ("digest", Obs.Json.Str (Repro.digest r));
                ("config", Config.to_json r.Repro.config);
                ("overrides", Obs.Json.Int (List.length r.Repro.overrides));
              ] );
        ]
    | None -> [])

let run ?(runs = 100) ?(max_repros = 3) ?(max_horizon = 6000) ?(families = Config.all_families)
    ?algos ?config_budget ?decision_budget ?on_run ?corpus ~registry ~root_seed () =
  if runs < 0 then invalid_arg "Campaign.run: runs < 0";
  let algos =
    match algos with Some a -> a | None -> List.map fst (registry : Runner.registry)
  in
  if algos = [] then invalid_arg "Campaign.run: empty algorithm list";
  if families = [] then invalid_arg "Campaign.run: empty family list";
  let rng = Prng.create root_seed in
  let violations = ref [] in
  let shrunk = ref 0 in
  for index = 0 to runs - 1 do
    (* Each run draws from a split child stream, so the sequence of
       generated configs is independent of how much randomness any one
       config consumes. *)
    let crng = Prng.split rng in
    let config = Config.generate crng ~algos ~families ~max_horizon in
    let outcome = Runner.run ~registry config in
    (match on_run with Some f -> f index config outcome | None -> ());
    (match corpus with
    | Some f ->
        (* A natural run needs no decision overrides: replaying with an
           empty table reproduces it exactly. *)
        f index (Repro.v ~config ~len:0 ~overrides:[] ~checks:outcome.Runner.checks)
    | None -> ());
    if outcome.Runner.failed <> [] then begin
      let repro =
        if !shrunk < max_repros then begin
          incr shrunk;
          Some (Shrink.counterexample ?config_budget ?decision_budget ~registry config)
        end
        else None
      in
      violations := { index; config; failed = outcome.Runner.failed; repro } :: !violations
    end
  done;
  let violations = List.rev !violations in
  let knobs =
    [
      ("runs", Obs.Json.Int runs);
      ("max_repros", Obs.Json.Int max_repros);
      ("max_horizon", Obs.Json.Int max_horizon);
      ( "families",
        Obs.Json.Arr
          (List.map (fun f -> Obs.Json.Str (Config.family_to_string f)) families) );
      ("algos", Obs.Json.Arr (List.map (fun a -> Obs.Json.Str a) algos));
    ]
  in
  {
    root_seed;
    runs;
    violations;
    knobs;
    entries = List.map violation_entry violations;
  }

let summary ?wall ~cmd t =
  Obs.Report.make_campaign ~cmd ~root_seed:t.root_seed ~runs:t.runs
    ~violations:(List.length t.violations) ~config:t.knobs ~entries:t.entries ?wall ()
