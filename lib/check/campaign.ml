open Dsim

type violation = {
  index : int;
  config : Config.t;
  failed : string list;
  repro : Repro.t option;
}

type t = {
  root_seed : int64;
  runs : int;
  jobs : int;
  violations : violation list;
  knobs : (string * Obs.Json.t) list;
  entries : Obs.Json.t list;
  metrics : Obs.Metrics.t;
  coverage : Obs.Coverage.t;
  coverage_growth : int list;
  run_walls : float array;
}

let violation_entry v =
  Obs.Json.Obj
    ([
       ("run", Obs.Json.Int v.index);
       ("config", Config.to_json v.config);
       ("failed", Obs.Json.Arr (List.map (fun s -> Obs.Json.Str s) v.failed));
     ]
    @
    match v.repro with
    | Some r ->
        [
          ( "repro",
            Obs.Json.Obj
              [
                ("digest", Obs.Json.Str (Repro.digest r));
                ("config", Config.to_json r.Repro.config);
                ("overrides", Obs.Json.Int (List.length r.Repro.overrides));
              ] );
        ]
    | None -> [])

let run ?(runs = 100) ?(max_repros = 3) ?(max_horizon = 6000) ?(families = Config.all_families)
    ?algos ?config_budget ?decision_budget ?on_run ?corpus ?(jobs = 1) ~registry ~root_seed ()
    =
  if runs < 0 then invalid_arg "Campaign.run: runs < 0";
  let algos =
    match algos with Some a -> a | None -> List.map fst (registry : Runner.registry)
  in
  if algos = [] then invalid_arg "Campaign.run: empty algorithm list";
  if families = [] then invalid_arg "Campaign.run: empty family list";
  (* Phase 1 — the embarrassingly parallel part. Run [index] derives its
     whole PRNG stream from [(root_seed, index)] (not from a sequentially
     stateful split chain), so any worker can execute any index and produce
     the same config, the same engine run and the same verdicts: the merged
     result is independent of [jobs] and of domain scheduling. Each run
     fills its own metrics registry; only the per-run wall-clock below is
     allowed to differ between invocations. *)
  let results =
    Exec.Pool.map ~jobs runs (fun index ->
        let crng = Prng.derive root_seed ~index in
        let config = Config.generate crng ~algos ~families ~max_horizon in
        let metrics = Obs.Metrics.create () in
        let outcome, wall_s =
          Obs.Instrument.time (fun () -> Runner.run ~metrics ~registry config)
        in
        (config, outcome, metrics, wall_s))
  in
  (* Phase 2 — sequential, in run-index order: observer callbacks, metrics
     merge, and shrinking. Shrinking stays on the calling domain so the
     set of shrunk violations (the first [max_repros] by index) and every
     shrink search are bit-identical to a single-domain campaign. *)
  let metrics = Obs.Metrics.create () in
  let violations = ref [] in
  let shrunk = ref 0 in
  (* Union of the per-run coverage signatures, folded in run-index order.
     Union is commutative, so the accumulated bitmap is order-independent;
     the growth curve (cumulative edge count after each run) and the
     edges_new counter depend on the fold order, which run-index order
     makes canonical for every [jobs]. *)
  let coverage = ref (Obs.Coverage.empty ()) in
  let growth = ref [] in
  Array.iteri
    (fun index (config, (outcome : Runner.outcome), m, _wall_s) ->
      Obs.Metrics.merge ~into:metrics m;
      let fresh = Obs.Coverage.new_edges ~seen:!coverage outcome.Runner.coverage in
      Obs.Metrics.incr ~by:fresh (Obs.Metrics.counter metrics "coverage.edges_new");
      coverage := Obs.Coverage.union !coverage outcome.Runner.coverage;
      growth := Obs.Coverage.edges !coverage :: !growth;
      (match on_run with Some f -> f index config outcome | None -> ());
      (match corpus with
      | Some f ->
          (* A natural run needs no decision overrides: replaying with an
             empty table reproduces it exactly. *)
          f index (Repro.v ~config ~len:0 ~overrides:[] ~checks:outcome.Runner.checks)
      | None -> ());
      if outcome.Runner.failed <> [] then begin
        let repro =
          if !shrunk < max_repros then begin
            incr shrunk;
            Some (Shrink.counterexample ?config_budget ?decision_budget ~registry config)
          end
          else None
        in
        violations := { index; config; failed = outcome.Runner.failed; repro } :: !violations
      end)
    results;
  Obs.Metrics.set (Obs.Metrics.gauge metrics "coverage.edges") (Obs.Coverage.edges !coverage);
  let violations = List.rev !violations in
  let knobs =
    (* [jobs] is deliberately absent: the knobs are part of the canonical
       summary body, which must be byte-identical across worker counts.
       The jobs value is reported in the wall_clock section instead. *)
    [
      ("runs", Obs.Json.Int runs);
      ("max_repros", Obs.Json.Int max_repros);
      ("max_horizon", Obs.Json.Int max_horizon);
      ( "families",
        Obs.Json.Arr
          (List.map (fun f -> Obs.Json.Str (Config.family_to_string f)) families) );
      ("algos", Obs.Json.Arr (List.map (fun a -> Obs.Json.Str a) algos));
    ]
  in
  {
    root_seed;
    runs;
    jobs;
    violations;
    knobs;
    entries = List.map violation_entry violations;
    metrics;
    coverage = !coverage;
    coverage_growth = List.rev !growth;
    run_walls = Array.map (fun (_, _, _, w) -> w) results;
  }

let wall_json ?total_s t =
  Obs.Json.Obj
    ([ ("jobs", Obs.Json.Int t.jobs) ]
    @ (match total_s with Some s -> [ ("total_s", Obs.Json.Float s) ] | None -> [])
    @ [
        ( "runs_s",
          Obs.Json.Arr (Array.to_list (Array.map (fun w -> Obs.Json.Float w) t.run_walls)) );
      ])

let coverage_json t =
  Obs.Json.Obj
    [
      ("width", Obs.Json.Int (Obs.Coverage.width t.coverage));
      ("edges", Obs.Json.Int (Obs.Coverage.edges t.coverage));
      ("digest", Obs.Json.Str (Obs.Coverage.digest t.coverage));
      ("growth", Obs.Json.Arr (List.map (fun n -> Obs.Json.Int n) t.coverage_growth));
      ("bitmap", Obs.Json.Str (Obs.Coverage.to_hex t.coverage));
    ]

let summary ?total_s ~cmd t =
  Obs.Report.make_campaign ~cmd ~root_seed:t.root_seed ~runs:t.runs
    ~violations:(List.length t.violations) ~config:t.knobs ~metrics:t.metrics
    ~coverage:(coverage_json t) ~entries:t.entries ~wall:(wall_json ?total_s t) ()
