open Dsim

type stats = {
  mutable attempts : int;
  mutable commits : int;
  mutable aborts : int;
  mutable commit_times : Types.time list;
}

type tx_state =
  | Idle
  | Awaiting_cs  (** Hungry in the contention manager. *)
  | Read_sent
  | Computing of { until : Types.time; version : int; value : int }
  | Cas_sent

let component (ctx : Context.t) ~store ?cm ?(compute_ticks = 4) ?transactions () =
  let stats = { attempts = 0; commits = 0; aborts = 0; commit_times = [] } in
  let state = ref Idle in
  let more_to_do () =
    match transactions with None -> true | Some k -> stats.commits < k
  in
  let send_read () =
    stats.attempts <- stats.attempts + 1;
    state := Read_sent;
    ctx.Context.send ~dst:store ~tag:Store.tag Store.Read_req
  in
  let in_cs () =
    match cm with
    | None -> true
    | Some h -> Types.phase_equal (h.Dining.Spec.phase ()) Types.Eating
  in
  let start_tx =
    Component.action "tx-start"
      ~guard:(fun () -> !state = Idle && more_to_do ())
      ~body:(fun () ->
        match cm with
        | None -> send_read ()
        | Some h ->
            state := Awaiting_cs;
            if Types.phase_equal (h.Dining.Spec.phase ()) Types.Thinking then
              h.Dining.Spec.hungry ())
  in
  let cs_granted =
    Component.action "tx-cs-granted"
      ~guard:(fun () -> !state = Awaiting_cs && in_cs ())
      ~body:(fun () -> send_read ())
  in
  let compute_done =
    Component.action "tx-commit"
      ~guard:(fun () ->
        match !state with
        | Computing { until; _ } -> ctx.Context.now () >= until
        | Idle | Awaiting_cs | Read_sent | Cas_sent -> false)
      ~body:(fun () ->
        match !state with
        | Computing { version; value; _ } ->
            state := Cas_sent;
            ctx.Context.send ~dst:store ~tag:Store.tag
              (Store.Cas_req { expect = version; value = value + 1 })
        | Idle | Awaiting_cs | Read_sent | Cas_sent -> ())
  in
  let on_receive ~src msg =
    if src = store then
      match msg with
      | Store.Read_resp { version; value } ->
          if !state = Read_sent then
            state :=
              Computing { until = ctx.Context.now () + compute_ticks; version; value }
      | Store.Cas_resp { ok; version = _ } ->
          if !state = Cas_sent then
            if ok then begin
              stats.commits <- stats.commits + 1;
              stats.commit_times <- ctx.Context.now () :: stats.commit_times;
              state := Idle;
              match cm with
              | Some h when Types.phase_equal (h.Dining.Spec.phase ()) Types.Eating ->
                  h.Dining.Spec.exit_eating ()
              | Some _ | None -> ()
            end
            else begin
              stats.aborts <- stats.aborts + 1;
              (* Retry. Under a contention manager the critical section is
                 kept across retries: commit is what releases it. *)
              send_read ()
            end
      (* simlint: allow D015 — both store responses are handled above; the wildcard only absorbs other protocol families sharing the engine's extensible Msg.t *)
      | _ -> ()
  in
  let comp =
    Component.make ~name:Store.client_tag
      ~actions:[ start_tx; cs_granted; compute_done ]
      ~on_receive ()
  in
  (comp, stats)
