open Dsim

let tag = "ctm-store"
let client_tag = "ctm-client"

type stats = {
  mutable reads : int;
  mutable cas_ok : int;
  mutable cas_fail : int;
}

type Msg.t +=
  | Read_req
  | Read_resp of { version : int; value : int }
  | Cas_req of { expect : int; value : int }
  | Cas_resp of { ok : bool; version : int }

let component (ctx : Context.t) () =
  let version = ref 0 in
  let value = ref 0 in
  let stats = { reads = 0; cas_ok = 0; cas_fail = 0 } in
  let on_receive ~src msg =
    match msg with
    | Read_req ->
        stats.reads <- stats.reads + 1;
        ctx.Context.send ~dst:src ~tag:client_tag
          (Read_resp { version = !version; value = !value })
    | Cas_req { expect; value = v } ->
        let ok = expect = !version in
        if ok then begin
          version := !version + 1;
          value := v;
          stats.cas_ok <- stats.cas_ok + 1
        end
        else stats.cas_fail <- stats.cas_fail + 1;
        ctx.Context.send ~dst:src ~tag:client_tag (Cas_resp { ok; version = !version })
    (* simlint: allow D015 — both store requests are handled above; the wildcard only absorbs other protocol families sharing the engine's extensible Msg.t *)
    | _ -> ()
  in
  (Component.make ~name:tag ~on_receive (), stats)
