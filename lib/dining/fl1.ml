open Dsim

type Msg.t += Fl_fork | Fl_request of int

type edge_state = {
  peer : Types.pid;
  mutable has_fork : bool;
  mutable peer_req : int option;
  mutable next_ask : Types.time;
}

let component (ctx : Context.t) ~instance ~graph ~suspects () =
  let self = ctx.Context.self in
  let cell, handle = Spec.Cell.handle (Spec.Cell.create ctx ~instance) in
  let phase () = Spec.Cell.phase cell in
  let edges =
    Graphs.Conflict_graph.neighbor_list graph self
    |> List.map (fun peer ->
           { peer; has_fork = self > peer; peer_req = None; next_ask = 0 })
  in
  let suspected q = Types.Pidset.mem q (suspects ()) in
  let eating () = Types.phase_equal (phase ()) Types.Eating in
  let hungry () = Types.phase_equal (phase ()) Types.Hungry in
  let clock = ref 0 in
  let session = ref None in
  let stamp_session =
    Component.action "fl-stamp"
      ~guard:(fun () -> hungry () && !session = None)
      ~body:(fun () ->
        incr clock;
        session := Some !clock)
  in
  let needs_request (e : edge_state) =
    (not e.has_fork) && ctx.Context.now () >= e.next_ask
  in
  let request_forks =
    Component.action "fl-request"
      ~guard:(fun () -> hungry () && !session <> None && List.exists needs_request edges)
      ~body:(fun () ->
        match !session with
        | None -> ()
        | Some ts ->
            List.iter
              (fun e ->
                if needs_request e then begin
                  e.next_ask <- ctx.Context.now () + 32;
                  ctx.Context.send ~dst:e.peer ~tag:instance (Fl_request ts)
                end)
              edges)
  in
  (* Doomed: waiting on a fork whose holder we currently suspect. A doomed
     diner cannot eat soon, so it must not make anyone wait on it. *)
  let doomed () =
    hungry () && List.exists (fun (e : edge_state) -> (not e.has_fork) && suspected e.peer) edges
  in
  let i_have_priority_over req_ts peer =
    match !session with
    | Some my_ts when hungry () && not (doomed ()) -> (my_ts, self) < (req_ts, peer)
    | Some _ | None -> false
  in
  let owed (e : edge_state) =
    e.has_fork && (not (eating ()))
    && match e.peer_req with Some ts -> not (i_have_priority_over ts e.peer) | None -> false
  in
  let yield_forks =
    Component.action "fl-yield"
      ~guard:(fun () -> List.exists owed edges)
      ~body:(fun () ->
        List.iter
          (fun e ->
            if owed e then begin
              e.has_fork <- false;
              e.peer_req <- None;
              e.next_ask <- 0;
              ctx.Context.send ~dst:e.peer ~tag:instance Fl_fork
            end)
          edges)
  in
  (* Perpetual exclusion: eating requires every real fork — suspicion never
     substitutes for one. *)
  let eat =
    Component.action "fl-eat"
      ~guard:(fun () ->
        hungry () && !session <> None
        && List.for_all (fun (e : edge_state) -> e.has_fork) edges)
      ~body:(fun () -> Spec.Cell.set cell Types.Eating)
  in
  let finish_exit =
    Component.action "fl-exit"
      ~guard:(fun () -> Types.phase_equal (phase ()) Types.Exiting)
      ~body:(fun () ->
        session := None;
        List.iter (fun (e : edge_state) -> e.next_ask <- 0) edges;
        Spec.Cell.set cell Types.Thinking)
  in
  let on_receive ~src msg =
    match List.find_opt (fun (e : edge_state) -> e.peer = src) edges with
    | None -> ()
    | Some e -> (
        match msg with
        | Fl_request ts ->
            clock := max !clock ts;
            e.peer_req <- Some ts
        | Fl_fork -> e.has_fork <- true
        (* simlint: allow D015 — Fl_request/Fl_fork are this algorithm's whole edge protocol; the wildcard only absorbs other families sharing the engine's extensible Msg.t *)
        | _ -> ())
  in
  let comp =
    Component.make ~name:instance
      ~actions:[ stamp_session; request_forks; yield_forks; eat; finish_exit ]
      ~on_receive ()
  in
  (comp, handle)
