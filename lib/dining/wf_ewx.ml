open Dsim

type config = { suspicion_override : bool }

let default_config = { suspicion_override = true }

type Msg.t += Fork | Request of int (* requester's session timestamp *)

type edge_state = {
  peer : Types.pid;
  mutable has_fork : bool;
  mutable peer_req : int option; (* pending request timestamp from peer *)
  mutable next_ask : Types.time; (* earliest time of the next (re-)request *)
}

type debug = {
  has_fork : Types.pid -> bool;
  peer_requesting : Types.pid -> bool;
  session_ts : unit -> int option;
  eating_virtually : unit -> bool;
}

let component (ctx : Context.t) ~instance ~graph ~suspects ?(config = default_config) () =
  let self = ctx.Context.self in
  let cell, handle = Spec.Cell.handle (Spec.Cell.create ctx ~instance) in
  let phase () = Spec.Cell.phase cell in
  let edges =
    Graphs.Conflict_graph.neighbor_list graph self
    |> List.map (fun peer ->
           (* The fork starts at the higher-id endpoint. *)
           { peer; has_fork = self > peer; peer_req = None; next_ask = 0 })
  in
  let suspected q = config.suspicion_override && Types.Pidset.mem q (suspects ()) in
  let eating () = Types.phase_equal (phase ()) Types.Eating in
  let hungry () = Types.phase_equal (phase ()) Types.Hungry in
  (* Lamport clock and the timestamp of the current hungry session. Smaller
     (timestamp, pid) = higher priority; timestamps grow along message
     chains, so sessions that keep losing get ever-stronger claims:
     starvation-free among live diners, no persistent precedence state to
     corrupt. *)
  let clock = ref 0 in
  let session = ref None in
  let stamp_session =
    Component.action "din-stamp"
      ~guard:(fun () -> hungry () && !session = None)
      ~body:(fun () ->
        incr clock;
        session := Some !clock)
  in
  (* Requests are retried while the fork is missing: sessions and yields
     race on non-FIFO channels, so a request recorded at a holder can be
     consumed by a yield whose fork is immediately won back by a third
     party with an older claim — a one-shot request would then never reach
     the new holder and the requester would starve. Retrying is idempotent
     (the holder just re-records the pending timestamp). *)
  let needs_request (e : edge_state) =
    (not e.has_fork) && ctx.Context.now () >= e.next_ask && not (suspected e.peer)
  in
  let request_forks =
    Component.action "din-request"
      ~guard:(fun () -> hungry () && !session <> None && List.exists needs_request edges)
      ~body:(fun () ->
        match !session with
        | None -> ()
        | Some ts ->
            List.iter
              (fun e ->
                if needs_request e then begin
                  e.next_ask <- ctx.Context.now () + 32;
                  ctx.Context.send ~dst:e.peer ~tag:instance (Request ts)
                end)
              edges)
  in
  (* Yield rule: a requested fork is surrendered unless we are eating with
     it or we are hungry with strictly higher priority. *)
  let i_have_priority_over req_ts peer =
    match !session with
    | Some my_ts when hungry () -> (my_ts, self) < (req_ts, peer)
    | Some _ | None -> false
  in
  let owed (e : edge_state) =
    e.has_fork && (not (eating ()))
    && match e.peer_req with Some ts -> not (i_have_priority_over ts e.peer) | None -> false
  in
  let yield_forks =
    Component.action "din-yield"
      ~guard:(fun () -> List.exists owed edges)
      ~body:(fun () ->
        List.iter
          (fun e ->
            if owed e then begin
              e.has_fork <- false;
              e.peer_req <- None;
              e.next_ask <- 0;
              ctx.Context.send ~dst:e.peer ~tag:instance Fork
            end)
          edges)
  in
  let virtual_eat = ref false in
  let eat =
    Component.action "din-eat"
      ~guard:(fun () ->
        hungry () && !session <> None
        && List.for_all (fun (e : edge_state) -> e.has_fork || suspected e.peer) edges)
      ~body:(fun () ->
        virtual_eat := List.exists (fun (e : edge_state) -> not e.has_fork) edges;
        Spec.Cell.set cell Types.Eating)
  in
  let finish_exit =
    Component.action "din-exit"
      ~guard:(fun () -> Types.phase_equal (phase ()) Types.Exiting)
      ~body:(fun () ->
        virtual_eat := false;
        session := None;
        List.iter (fun (e : edge_state) -> e.next_ask <- 0) edges;
        Spec.Cell.set cell Types.Thinking)
  in
  let on_receive ~src msg =
    match List.find_opt (fun (e : edge_state) -> e.peer = src) edges with
    | None -> ()
    | Some e -> (
        match msg with
        | Request ts ->
            clock := max !clock ts;
            e.peer_req <- Some ts
        | Fork -> e.has_fork <- true
        (* simlint: allow D015 — Request/Fork are this algorithm's whole edge protocol; the wildcard only absorbs other families sharing the engine's extensible Msg.t *)
        | _ -> ())
  in
  let comp =
    Component.make ~name:instance
      ~actions:[ stamp_session; request_forks; yield_forks; eat; finish_exit ]
      ~on_receive ()
  in
  let find q =
    match List.find_opt (fun (e : edge_state) -> e.peer = q) edges with
    | Some e -> e
    | None -> invalid_arg "Wf_ewx.debug: not a neighbor"
  in
  let debug =
    {
      has_fork = (fun q -> (find q).has_fork);
      peer_requesting = (fun q -> (find q).peer_req <> None);
      session_ts = (fun () -> !session);
      eating_virtually = (fun () -> !virtual_eat && eating ());
    }
  in
  (comp, handle, debug)
