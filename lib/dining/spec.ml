open Dsim

(* The paper's Section-4 diner state machine: a single 4-cycle. Clients
   drive Thinking->Hungry (hungry ()) and Eating->Exiting (exit_eating ());
   algorithms drive Hungry->Eating and Exiting->Thinking. Exported as data
   so the runtime monitors and the simlint D016 phase-transition rule share
   one source of truth. *)
let legal_transitions =
  [
    (Types.Thinking, Types.Hungry);
    (Types.Hungry, Types.Eating);
    (Types.Eating, Types.Exiting);
    (Types.Exiting, Types.Thinking);
  ]

let legal_transition ~from_ ~to_ =
  List.exists
    (fun (a, b) -> Types.phase_equal a from_ && Types.phase_equal b to_)
    legal_transitions

type handle = {
  instance : string;
  self : Types.pid;
  phase : unit -> Types.phase;
  hungry : unit -> unit;
  exit_eating : unit -> unit;
  set_on_transition : (Types.phase -> Types.phase -> unit) -> unit;
}

module Cell = struct
  type t = {
    ctx : Context.t;
    instance : string;
    mutable cur : Types.phase;
    mutable callback : Types.phase -> Types.phase -> unit;
  }

  let create ctx ~instance = { ctx; instance; cur = Types.Thinking; callback = (fun _ _ -> ()) }

  let phase t = t.cur

  let set t next =
    let prev = t.cur in
    if not (Types.phase_equal prev next) then begin
      t.cur <- next;
      t.ctx.Context.log
        (Trace.Transition
           { instance = t.instance; pid = t.ctx.Context.self; from_ = prev; to_ = next });
      t.callback prev next
    end

  let handle t =
    let h =
      {
        instance = t.instance;
        self = t.ctx.Context.self;
        phase = (fun () -> t.cur);
        hungry =
          (fun () ->
            match t.cur with
            | Types.Thinking -> set t Types.Hungry
            | ph ->
                invalid_arg
                  (Printf.sprintf "Dining %s p%d: hungry() while %s" t.instance
                     t.ctx.Context.self (Types.phase_to_string ph)));
        exit_eating =
          (fun () ->
            match t.cur with
            | Types.Eating -> set t Types.Exiting
            | ph ->
                invalid_arg
                  (Printf.sprintf "Dining %s p%d: exit_eating() while %s" t.instance
                     t.ctx.Context.self (Types.phase_to_string ph)));
        set_on_transition = (fun f -> t.callback <- f);
      }
    in
    (t, h)
end
