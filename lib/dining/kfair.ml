open Dsim

type Msg.t += Kf_req of int | Kf_grant of int

(* Per-neighbor request bookkeeping. [latest_req] is the maximum timestamp
   ever received from that neighbor — monotone on purpose: session
   timestamps strictly increase at the requester, but non-FIFO channels can
   deliver a stale (smaller) request *after* the current one, and treating
   the stale value as the pending request would make us answer with a grant
   the requester drops as outdated, losing its real request forever (a
   whole-graph deadlock observed in sweeps). [granted_upto] is the largest
   timestamp we have answered. *)
type neighbor = {
  peer : Types.pid;
  mutable granted : bool; (* their grant for my current request *)
  mutable latest_req : int option;
  mutable granted_upto : int;
}

let component (ctx : Context.t) ~instance ~graph ~suspects () =
  let self = ctx.Context.self in
  let cell, handle = Spec.Cell.handle (Spec.Cell.create ctx ~instance) in
  let phase () = Spec.Cell.phase cell in
  let neighbors =
    Graphs.Conflict_graph.neighbor_list graph self
    |> List.map (fun peer ->
           { peer; granted = false; latest_req = None; granted_upto = min_int })
  in
  let clock = ref 0 in
  let req_ts = ref (-1) in
  let sent = ref false in
  (* Priority: lexicographic (timestamp, pid) — a total order, so two
     conflicting requests never defer to each other. *)
  let my_priority_over ts peer =
    !sent
    && Types.phase_equal (phase ()) Types.Hungry
    && (!req_ts, self) < (ts, peer)
  in
  let request =
    Component.action "kf-request"
      ~guard:(fun () -> Types.phase_equal (phase ()) Types.Hungry && not !sent)
      ~body:(fun () ->
        incr clock;
        req_ts := !clock;
        sent := true;
        List.iter
          (fun nb ->
            nb.granted <- false;
            ctx.Context.send ~dst:nb.peer ~tag:instance (Kf_req !req_ts))
          neighbors)
  in
  (* Answer pending requests whenever we neither hold the critical section
     nor outrank the requester. Running this as a guarded action (rather
     than inside the receive handler and the exit path) means the decision
     is re-evaluated as our own state changes — a request deferred during
     our meal is granted right after we return to thinking. *)
  let pending nb =
    match nb.latest_req with
    | Some ts ->
        ts > nb.granted_upto
        && (not (Types.phase_equal (phase ()) Types.Eating))
        && (not (Types.phase_equal (phase ()) Types.Exiting))
        && not (my_priority_over ts nb.peer)
    | None -> false
  in
  let serve =
    Component.action "kf-serve"
      ~guard:(fun () -> List.exists pending neighbors)
      ~body:(fun () ->
        List.iter
          (fun nb ->
            if pending nb then
              match nb.latest_req with
              | Some ts ->
                  nb.granted_upto <- ts;
                  ctx.Context.send ~dst:nb.peer ~tag:instance (Kf_grant ts)
              | None -> ())
          neighbors)
  in
  let eat =
    Component.action "kf-eat"
      ~guard:(fun () ->
        Types.phase_equal (phase ()) Types.Hungry
        && !sent
        && List.for_all
             (fun nb -> nb.granted || Types.Pidset.mem nb.peer (suspects ()))
             neighbors)
      ~body:(fun () -> Spec.Cell.set cell Types.Eating)
  in
  let finish_exit =
    Component.action "kf-exit"
      ~guard:(fun () -> Types.phase_equal (phase ()) Types.Exiting)
      ~body:(fun () ->
        sent := false;
        Spec.Cell.set cell Types.Thinking)
  in
  let on_receive ~src msg =
    match List.find_opt (fun nb -> nb.peer = src) neighbors with
    | None -> ()
    | Some nb -> (
        match msg with
        | Kf_req ts ->
            clock := max !clock ts + 1;
            nb.latest_req <-
              (match nb.latest_req with Some old -> Some (max old ts) | None -> Some ts)
        | Kf_grant ts ->
            (* Grants for superseded requests are stale; drop them. *)
            if !sent && ts = !req_ts then nb.granted <- true
        (* simlint: allow D015 — Kf_req/Kf_grant are this algorithm's whole vocabulary; the wildcard only absorbs other families sharing the engine's extensible Msg.t *)
        | _ -> ())
  in
  let comp =
    Component.make ~name:instance ~actions:[ request; serve; eat; finish_exit ] ~on_receive ()
  in
  let debug () =
    Printf.sprintf "req_ts=%d sent=%b clock=%d [%s]" !req_ts !sent !clock
      (String.concat " "
         (List.map
            (fun nb ->
              Printf.sprintf "%d:g=%b,req=%s,upto=%d" nb.peer nb.granted
                (match nb.latest_req with Some t -> string_of_int t | None -> "-")
                nb.granted_upto)
            neighbors))
  in
  (comp, handle, debug)
