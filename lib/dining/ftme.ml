open Dsim

(* A grant is identified by (server epoch, serial): releases and in-CS
   status reports carry the id, so a storm-delayed release of an *earlier*
   session can never be mistaken for the release of a current grant (that
   confusion both un-gated the server's one-at-a-time grant discipline and
   let stale releases stand in for recovery answers — a real double-grant
   observed under the bursty adversary during development). *)
type grant_id = int * int

type Msg.t +=
  | Fx_req
  | Fx_grant of grant_id
  | Fx_release of grant_id
  | Fx_recover of int (* new server's epoch *)
  | Fx_status of { in_cs : grant_id option; waiting : bool }

let component (ctx : Context.t) ~instance ~members ~suspects () =
  let members = List.sort_uniq compare members in
  (match members with
  | [] | [ _ ] -> invalid_arg "Ftme.component: need at least two members"
  | _ -> ());
  if not (List.mem ctx.Context.self members) then
    invalid_arg "Ftme.component: self not a member";
  let self = ctx.Context.self in
  let cell, handle = Spec.Cell.handle (Spec.Cell.create ctx ~instance) in
  let phase () = Spec.Cell.phase cell in
  let others = List.filter (fun q -> q <> self) members in
  let suspected q = Types.Pidset.mem q (suspects ()) in
  (* The believed server: the lowest member not currently suspected.
     Trusting accuracy keeps this safe; strong completeness keeps it live. *)
  let believed_server () =
    let rec go = function
      | [] -> self
      | p :: rest -> if p = self || not (suspected p) then p else go rest
    in
    go members
  in
  (* ---- client state ---- *)
  let sent_to = ref None in
  let max_epoch_seen = ref 0 in
  let current_grant = ref None in
  (* ---- server state (meaningful once [activated]) ---- *)
  let activated = ref (self = List.hd members) in
  let recovering = ref false in
  let answered = Hashtbl.create 8 in
  let queue : Types.pid Vec.t = Vec.create () in
  let granted_to : (Types.pid * grant_id) option ref = ref None in
  (* Release ids already seen. A status reply reporting "in CS with grant g"
     can be overtaken by g's own release (non-FIFO channels); installing g
     after its release has already been consumed would block the server
     forever. One entry per grant ever issued — fine for a simulator. *)
  let released : (grant_id, unit) Hashtbl.t = Hashtbl.create 32 in
  let serial = ref 0 in
  let note label info = ctx.Context.log (Trace.Note { pid = self; label; info }) in
  let in_queue q =
    let found = ref false in
    Vec.iter (fun x -> if x = q then found := true) queue;
    !found
  in
  (* Dedup only against the queue itself. A request from the *currently
     granted* process must still be enqueued: on non-FIFO channels a
     client's next request can overtake its release broadcast, and clients
     do not resend while their believed server is unchanged. *)
  let enqueue q =
    if not (in_queue q) then begin
      note "fx-enq" (string_of_int q);
      Vec.add_last queue q
    end
  in
  let dequeue () =
    let head = Vec.get queue 0 in
    let rest = List.tl (Vec.to_list queue) in
    Vec.clear queue;
    List.iter (Vec.add_last queue) rest;
    head
  in
  let i_am_server () = believed_server () = self in
  (* ---- client actions ---- *)
  let send_request =
    Component.action "fx-request"
      ~guard:(fun () ->
        Types.phase_equal (phase ()) Types.Hungry
        && (match !sent_to with Some s -> s <> believed_server () | None -> true))
      ~body:(fun () ->
        let srv = believed_server () in
        sent_to := Some srv;
        if srv = self then enqueue self
        else ctx.Context.send ~dst:srv ~tag:instance Fx_req)
  in
  let finish_exit =
    Component.action "fx-exit"
      ~guard:(fun () -> Types.phase_equal (phase ()) Types.Exiting)
      ~body:(fun () ->
        sent_to := None;
        (match !current_grant with
        | Some id ->
            current_grant := None;
            (* Broadcast the release: the grantor may have changed since. *)
            List.iter (fun q -> ctx.Context.send ~dst:q ~tag:instance (Fx_release id)) others;
            (match !granted_to with
            | Some (q, gid) when q = self && gid = id -> granted_to := None
            | Some _ | None -> ())
        | None -> ());
        Spec.Cell.set cell Types.Thinking)
  in
  (* ---- server actions ---- *)
  let take_over =
    Component.action "fx-take-over"
      ~guard:(fun () -> (not !activated) && i_am_server ())
      ~body:(fun () ->
        activated := true;
        recovering := true;
        Hashtbl.reset answered;
        List.iter (fun q -> ctx.Context.send ~dst:q ~tag:instance (Fx_recover self)) others)
  in
  let recovery_done () =
    List.for_all (fun q -> Hashtbl.mem answered q || suspected q) others
    && (match !granted_to with Some (q, _) -> q = self || not (suspected q) | None -> true)
  in
  let finish_recovery =
    Component.action "fx-finish-recovery"
      ~guard:(fun () -> !activated && !recovering && recovery_done ())
      ~body:(fun () -> recovering := false)
  in
  let reap_dead_holder =
    (* A grantee that crashed in its critical section is no longer live:
       weak exclusion permits granting past it. *)
    Component.action "fx-reap"
      ~guard:(fun () ->
        !activated
        && match !granted_to with Some (q, _) -> q <> self && suspected q | None -> false)
      ~body:(fun () -> granted_to := None)
  in
  let serve =
    Component.action "fx-serve"
      ~guard:(fun () ->
        !activated && (not !recovering) && !granted_to = None && Vec.length queue > 0
        && (Vec.get queue 0 <> self || Types.phase_equal (phase ()) Types.Hungry))
      ~body:(fun () ->
        let head = dequeue () in
        incr serial;
        let id = (self, !serial) in
        note "fx-grant" (string_of_int head);
        granted_to := Some (head, id);
        if head = self then begin
          current_grant := Some id;
          Spec.Cell.set cell Types.Eating
        end
        else ctx.Context.send ~dst:head ~tag:instance (Fx_grant id))
  in
  let on_receive ~src msg =
    match msg with
    | Fx_req ->
        (* Queue even if not (yet) the active server: a request can arrive
           before this process has noticed it is next in line, and the
           client will not resend while its believed server is unchanged. *)
        enqueue src
    | Fx_grant ((epoch, _) as id) ->
        if epoch >= !max_epoch_seen && Types.phase_equal (phase ()) Types.Hungry then begin
          max_epoch_seen := epoch;
          current_grant := Some id;
          Spec.Cell.set cell Types.Eating
        end
        else
          (* Unusable (stale epoch, or we are no longer asking): decline it
             so the grantor's one-at-a-time bookkeeping is not left hanging
             on a release that will never come. *)
          ctx.Context.send ~dst:src ~tag:instance (Fx_release id)
    | Fx_release id -> (
        Hashtbl.replace released id ();
        match !granted_to with
        | Some (_, gid) when gid = id -> granted_to := None
        | Some _ | None -> ())
    | Fx_recover epoch ->
        if epoch > !max_epoch_seen then max_epoch_seen := epoch;
        let in_cs =
          if
            Types.phase_equal (phase ()) Types.Eating
            || Types.phase_equal (phase ()) Types.Exiting
          then !current_grant
          else None
        in
        let waiting = Types.phase_equal (phase ()) Types.Hungry in
        if waiting then sent_to := Some src;
        ctx.Context.send ~dst:src ~tag:instance (Fx_status { in_cs; waiting })
    | Fx_status { in_cs; waiting } ->
        if !activated then begin
          Hashtbl.replace answered src ();
          (match in_cs with
          | Some id when not (Hashtbl.mem released id) -> granted_to := Some (src, id)
          | Some _ | None -> ());
          if waiting then enqueue src
        end
    (* simlint: allow D015 — all five Fx_* constructors are handled above; the wildcard only absorbs other protocol families sharing the engine's extensible Msg.t *)
    | _ -> ()
  in
  let comp =
    Component.make ~name:instance
      ~actions:[ send_request; finish_exit; take_over; finish_recovery; reap_dead_holder; serve ]
      ~on_receive ()
  in
  let debug () =
    Printf.sprintf "p%d act=%b rec=%b granted=%s queue=[%s] sent_to=%s believed=%d" self
      !activated !recovering
      (match !granted_to with
      | Some (q, (e, s)) -> Printf.sprintf "%d(id=%d.%d)" q e s
      | None -> "-")
      (String.concat ";" (List.map string_of_int (Vec.to_list queue)))
      (match !sent_to with Some q -> string_of_int q | None -> "-")
      (believed_server ())
  in
  (comp, handle, debug)
