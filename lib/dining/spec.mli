(** Dining-service interface shared by all scheduling algorithms.

    A dining solution schedules diner transitions hungry -> eating. Clients
    drive the thinking -> hungry and eating -> exiting transitions through a
    {!handle}; the algorithm drives hungry -> eating (when it grants the
    critical section) and exiting -> thinking (when relinquishment
    completes, which the spec requires to take finite time). *)

val legal_transitions : (Dsim.Types.phase * Dsim.Types.phase) list
(** The paper's Section-4 state machine as data: the exact set of legal
    diner transitions, [Thinking -> Hungry -> Eating -> Exiting ->
    Thinking]. Runtime monitors and the simlint D016 phase-legality rule
    both consume this list, so there is one source of truth. *)

val legal_transition : from_:Dsim.Types.phase -> to_:Dsim.Types.phase -> bool
(** [legal_transition ~from_ ~to_] is membership in {!legal_transitions}. *)

type handle = {
  instance : string;
  self : Dsim.Types.pid;
  phase : unit -> Dsim.Types.phase;
  hungry : unit -> unit;
      (** Request the critical section. Only legal while [Thinking]. *)
  exit_eating : unit -> unit;
      (** Relinquish the critical section. Only legal while [Eating]. *)
  set_on_transition : (Dsim.Types.phase -> Dsim.Types.phase -> unit) -> unit;
      (** Register a callback fired after every phase transition. *)
}

(** Mutable diner-phase cell used by algorithm implementations: transitions
    are logged to the trace under the instance name and forwarded to the
    client callback. *)
module Cell : sig
  type t

  val create : Dsim.Context.t -> instance:string -> t
  val phase : t -> Dsim.Types.phase

  val set : t -> Dsim.Types.phase -> unit
  (** Unchecked transition (algorithms maintain their own discipline). *)

  val handle : t -> t * handle
  (** The cell together with the client-facing handle; [hungry] and
      [exit_eating] check phase legality and raise [Invalid_argument] on
      misuse. *)
end
