open Dsim

type violation = {
  at : Types.time;
  p : Types.pid;
  q : Types.pid;
}

let clip_at_crash intervals crash =
  match crash with
  | None -> intervals
  | Some tc ->
      List.filter_map
        (fun (a, b) -> if a >= tc then None else Some (a, min b tc))
        intervals

let live_eating_intervals trace ~instance ~pid ~horizon =
  let crash = Types.Pidmap.find_opt pid (Trace.crash_times trace) in
  clip_at_crash (Trace.eating_intervals trace ~instance ~pid ~horizon) crash

let exclusion_violations trace ~instance ~graph ~horizon =
  let n = Graphs.Conflict_graph.n graph in
  let intervals =
    Array.init n (fun pid -> live_eating_intervals trace ~instance ~pid ~horizon)
  in
  let acc = ref [] in
  List.iter
    (fun (p, q) ->
      List.iter
        (fun (a1, b1) ->
          List.iter
            (fun (a2, b2) ->
              let lo = max a1 a2 and hi = min b1 b2 in
              if lo < hi then acc := { at = lo; p; q } :: !acc)
            intervals.(q))
        intervals.(p))
    (Graphs.Conflict_graph.edges graph);
  let cmp v1 v2 =
    match Int.compare v1.at v2.at with
    | 0 -> ( match Int.compare v1.p v2.p with 0 -> Int.compare v1.q v2.q | c -> c)
    | c -> c
  in
  List.sort cmp !acc

let last_violation_time trace ~instance ~graph ~horizon =
  match List.rev (exclusion_violations trace ~instance ~graph ~horizon) with
  | [] -> None
  | v :: _ -> Some v.at

let eventual_weak_exclusion trace ~instance ~graph ~horizon ~suffix_from =
  let late =
    List.filter (fun v -> v.at >= suffix_from) (exclusion_violations trace ~instance ~graph ~horizon)
  in
  let details =
    List.map
      (fun v ->
        Printf.sprintf "[%s] live neighbors p%d and p%d eating simultaneously at t=%d (suffix from %d)"
          instance v.p v.q v.at suffix_from)
      late
  in
  { Detectors.Properties.holds = details = []; details }

let perpetual_weak_exclusion trace ~instance ~graph ~horizon =
  eventual_weak_exclusion trace ~instance ~graph ~horizon ~suffix_from:0

let wait_freedom trace ~instance ~n ~horizon ~slack =
  let crash_times = Trace.crash_times trace in
  let details = ref [] in
  for pid = 0 to n - 1 do
    if not (Types.Pidmap.mem pid crash_times) then
      List.iter
        (fun (a, b, ph) ->
          if Types.phase_equal ph Types.Hungry && b >= horizon && a < horizon - slack then
            details :=
              Printf.sprintf "[%s] correct p%d hungry since t=%d never ate (horizon %d)"
                instance pid a horizon
              :: !details)
        (Trace.phase_timeline trace ~instance ~pid ~horizon)
  done;
  { Detectors.Properties.holds = !details = []; details = !details }

let exiting_finite trace ~instance ~n ~horizon ~slack =
  let crash_times = Trace.crash_times trace in
  let details = ref [] in
  for pid = 0 to n - 1 do
    if not (Types.Pidmap.mem pid crash_times) then
      List.iter
        (fun (a, b, ph) ->
          if Types.phase_equal ph Types.Exiting && b >= horizon && a < horizon - slack then
            details :=
              Printf.sprintf "[%s] correct p%d stuck exiting since t=%d" instance pid a
              :: !details)
        (Trace.phase_timeline trace ~instance ~pid ~horizon)
  done;
  { Detectors.Properties.holds = !details = []; details = !details }

let eat_count trace ~instance ~pid =
  Trace.transitions ~instance ~pid trace
  |> List.filter (fun (e : Trace.entry) ->
         match e.ev with
         | Trace.Transition { to_ = Types.Eating; _ } -> true
         | _ -> false)
  |> List.length

let hungry_segments trace ~instance ~pid ~horizon =
  Trace.phase_timeline trace ~instance ~pid ~horizon
  |> List.filter_map (fun (a, b, ph) ->
         if Types.phase_equal ph Types.Hungry then Some (a, b) else None)

let eating_starts trace ~instance ~pid =
  Trace.transitions ~instance ~pid trace
  |> List.filter_map (fun (e : Trace.entry) ->
         match e.ev with
         | Trace.Transition { to_ = Types.Eating; _ } -> Some e.at
         | _ -> None)

let max_overtaking trace ~instance ~graph ~after ~horizon =
  let crash_times = Trace.crash_times trace in
  let n = Graphs.Conflict_graph.n graph in
  let starts = Array.init n (fun pid -> eating_starts trace ~instance ~pid) in
  let worst = ref 0 in
  for p = 0 to n - 1 do
    if not (Types.Pidmap.mem p crash_times) then
      List.iter
        (fun (a, b) ->
          if a >= after then
            Graphs.Conflict_graph.iter_neighbors graph p (fun q ->
                let c = List.length (List.filter (fun t -> t >= a && t < b) starts.(q)) in
                worst := max !worst c))
        (hungry_segments trace ~instance ~pid:p ~horizon)
  done;
  !worst

let starved trace ~instance ~n ~horizon ~slack =
  let crash_times = Trace.crash_times trace in
  List.filter
    (fun pid ->
      (not (Types.Pidmap.mem pid crash_times))
      && List.exists
           (fun (a, b, ph) ->
             Types.phase_equal ph Types.Hungry && b >= horizon && a < horizon - slack)
           (Trace.phase_timeline trace ~instance ~pid ~horizon))
    (List.init n Fun.id)

let failure_locality trace ~instance ~graph ~horizon ~slack =
  let n = Graphs.Conflict_graph.n graph in
  let crashed =
    List.map fst (Types.Pidmap.bindings (Trace.crash_times trace))
  in
  let victims = starved trace ~instance ~n ~horizon ~slack in
  List.fold_left
    (fun acc pid ->
      let nearest =
        List.filter_map (fun c -> Graphs.Conflict_graph.distance graph pid c) crashed
        |> function
        | [] -> None
        | ds -> Some (List.fold_left min max_int ds)
      in
      match (acc, nearest) with
      | None, _ | _, None -> None
      | Some worst, Some d -> Some (max worst d))
    (Some 0) victims

let fairness_index trace ~instance ~pids =
  let xs = List.map (fun pid -> float_of_int (eat_count trace ~instance ~pid)) pids in
  let n = float_of_int (List.length xs) in
  let s = List.fold_left ( +. ) 0.0 xs in
  let s2 = List.fold_left (fun acc x -> acc +. (x *. x)) 0.0 xs in
  if s2 = 0.0 then 1.0 else s *. s /. (n *. s2)

let hungry_wait_times trace ~instance ~pid ~horizon =
  Trace.phase_timeline trace ~instance ~pid ~horizon
  |> List.filter_map (fun (a, b, ph) ->
         if Types.phase_equal ph Types.Hungry && b < horizon then Some (b - a) else None)
