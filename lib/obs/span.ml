(* Span layer: folds the flat trace stream into per-(instance, diner)
   phase spans — the interval view of the run that latency accounting,
   the Chrome-trace export and (eventually) open-loop workload reporting
   all share. One collector subscribes to a live trace (or replays a
   recorded one); each Transition event closes the diner's current span
   and opens the next. Spans still open when the caller asks for the
   final list are closed at the horizon and flagged [closed = false]. *)

open Dsim

type span = {
  instance : string;
  pid : Types.pid;
  phase : Types.phase;
  start : Types.time;
  stop : Types.time; (* exclusive; the horizon for spans still open there *)
  closed : bool; (* false: cut at the horizon, not ended by a transition *)
}

type t = {
  open_ : (string * Types.pid, Types.phase * Types.time) Hashtbl.t;
  mutable closed : span list; (* reverse chronological close order *)
  retain : bool;
  mutable on_close : (span -> next:Types.phase -> unit) list; (* registration order *)
}

let create ?(retain = true) () =
  { open_ = Hashtbl.create 64; closed = []; retain; on_close = [] }

let on_close t f = t.on_close <- t.on_close @ [ f ]

let observe t (e : Trace.entry) =
  match e.Trace.ev with
  | Trace.Transition { instance; pid; from_; to_ } ->
      let key = (instance, pid) in
      let phase, start =
        match Hashtbl.find_opt t.open_ key with
        | Some opened -> opened
        | None -> (from_, 0) (* diners start Thinking at tick 0 *)
      in
      let sp = { instance; pid; phase; start; stop = e.Trace.at; closed = true } in
      List.iter (fun f -> f sp ~next:to_) t.on_close;
      (* Zero-length spans (entered and left within one tick) fire the
         close callbacks — a 0-tick hunger session is still a latency
         sample — but are dropped from the retained interval list, like
         Trace.phase_timeline drops zero-length segments. *)
      if t.retain && sp.stop > sp.start then t.closed <- sp :: t.closed;
      Hashtbl.replace t.open_ key (to_, e.Trace.at)
  | Trace.Suspect _ | Trace.Trust _ | Trace.Crash _ | Trace.Note _ -> ()

let attach t tr =
  Trace.iter tr (observe t);
  Trace.subscribe tr (observe t)

let compare_span a b =
  let c = String.compare a.instance b.instance in
  if c <> 0 then c
  else
    let c = Int.compare a.pid b.pid in
    if c <> 0 then c
    else
      let c = Int.compare a.start b.start in
      if c <> 0 then c else Int.compare a.stop b.stop

let spans t ~horizon =
  if not t.retain then invalid_arg "Span.spans: collector created with ~retain:false";
  (* Hashtbl order is nondeterministic; sorting makes the list canonical
     (simlint D003). *)
  Hashtbl.fold
    (fun (instance, pid) (phase, start) acc ->
      if horizon > start then
        { instance; pid; phase; start; stop = horizon; closed = false } :: acc
      else acc)
    t.open_ (List.rev t.closed)
  |> List.sort compare_span

(* ------------------------------------------------------------------ *)
(* Chrome trace-event ("trace_event/1") export, openable in Perfetto or
   chrome://tracing. Ticks are rendered as microseconds — the absolute
   scale is meaningless for a simulation, only the proportions matter.
   Every field is derived from the trace, so the document bytes are
   deterministic in the seed. *)

let schema_version = "trace_event/1"

let chrome_span_event ~tid sp =
  Json.Obj
    [
      ("name", Json.Str (Types.phase_to_string sp.phase));
      ("cat", Json.Str ("phase," ^ sp.instance));
      ("ph", Json.Str "X");
      ("ts", Json.Int sp.start);
      ("dur", Json.Int (sp.stop - sp.start));
      ("pid", Json.Int sp.pid);
      ("tid", Json.Int tid);
      ( "args",
        Json.Obj
          ([ ("instance", Json.Str sp.instance) ]
          @ if sp.closed then [] else [ ("open_at_horizon", Json.Bool true) ]) );
    ]

let chrome_instant ~name ~cat ~pid ?(args = []) at =
  Json.Obj
    ([
       ("name", Json.Str name);
       ("cat", Json.Str cat);
       ("ph", Json.Str "i");
       ("ts", Json.Int at);
       ("pid", Json.Int pid);
       ("s", Json.Str "p");
     ]
    @ match args with [] -> [] | args -> [ ("args", Json.Obj args) ])

let chrome_of_trace ?horizon tr =
  let horizon =
    match horizon with
    | Some h -> h
    | None ->
        (* Default: just past the last recorded event. *)
        let last = ref 0 in
        Trace.iter tr (fun e -> if e.Trace.at > !last then last := e.Trace.at);
        !last + 1
  in
  let collector = create () in
  Trace.iter tr (observe collector);
  let spans = spans collector ~horizon in
  (* One Chrome thread lane per dining instance, numbered in sorted
     instance order so the lane assignment is canonical. *)
  let instances =
    List.sort_uniq String.compare (List.map (fun sp -> sp.instance) spans)
  in
  let tid_of instance =
    let rec go i = function
      | [] -> 0
      | x :: rest -> if String.equal x instance then i else go (i + 1) rest
    in
    go 0 instances
  in
  let span_events = List.map (fun sp -> chrome_span_event ~tid:(tid_of sp.instance) sp) spans in
  let instant_events =
    List.filter_map
      (fun (e : Trace.entry) ->
        match e.Trace.ev with
        | Trace.Suspect { detector; owner; target } ->
            Some
              (chrome_instant
                 ~name:(Printf.sprintf "suspect p%d" target)
                 ~cat:("detector," ^ detector) ~pid:owner e.Trace.at)
        | Trace.Trust { detector; owner; target } ->
            Some
              (chrome_instant
                 ~name:(Printf.sprintf "trust p%d" target)
                 ~cat:("detector," ^ detector) ~pid:owner e.Trace.at)
        | Trace.Crash { pid } -> Some (chrome_instant ~name:"crash" ~cat:"crash" ~pid e.Trace.at)
        | Trace.Note { pid; label; info } ->
            Some
              (chrome_instant ~name:label ~cat:"note" ~pid
                 ~args:[ ("info", Json.Str info) ]
                 e.Trace.at)
        | Trace.Transition _ -> None)
      (Trace.entries tr)
  in
  let metadata =
    List.concat_map
      (fun pid ->
        [
          Json.Obj
            [
              ("name", Json.Str "process_name");
              ("ph", Json.Str "M");
              ("pid", Json.Int pid);
              ("args", Json.Obj [ ("name", Json.Str (Printf.sprintf "p%d" pid)) ]);
            ];
        ])
      (List.sort_uniq Int.compare (List.map (fun sp -> sp.pid) spans))
  in
  Json.Obj
    [
      ("schema", Json.Str schema_version);
      ("displayTimeUnit", Json.Str "ms");
      ("traceEvents", Json.Arr (metadata @ span_events @ instant_events));
    ]
