(** Minimal JSON value type with a deterministic printer and a strict
    parser.

    The repo deliberately depends only on the baked-in toolchain, so this
    small module stands in for yojson. The printer is canonical — no
    whitespace, object keys in the order given, ["%.12g"] floats — so two
    runs that build the same value produce byte-identical text (the
    determinism contract of the run reports). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact canonical rendering (no whitespace). *)

val to_string_pretty : t -> string
(** Two-space-indented rendering for files meant to be read by humans. *)

val of_string : string -> t
(** Strict parser. Raises [Failure] with a position on malformed input.
    Numbers without [.], [e] or [E] parse as [Int]; others as [Float]. *)

val find : t -> string -> t option
(** [find (Obj _) key] — [None] on missing key or non-object. *)

val get : t -> string -> t
(** Like {!find} but raises [Failure] on a missing key. *)

val str : t -> string
(** Contents of a [Str]; raises [Failure] otherwise. *)

val int : t -> int
(** Contents of an [Int]; raises [Failure] otherwise. *)

val bool : t -> bool
(** Contents of a [Bool]; raises [Failure] otherwise. *)

val arr : t -> t list
(** Contents of an [Arr]; raises [Failure] otherwise. *)
