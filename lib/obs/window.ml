(* Per-tick-window event series: a fixed window width in ticks and one
   counter per window, growing with the horizon. The canonical use is
   throughput-over-time (meals per 1000-tick window); everything is
   driven by simulation timestamps, so the series is deterministic in
   the seed. *)

type t = {
  width : int;
  mutable counts : int array;
  mutable len : int; (* number of windows in use: 1 + highest bucket touched *)
  mutable total : int;
}

let create ~width =
  if width <= 0 then invalid_arg "Window.create: width must be positive";
  { width; counts = Array.make 16 0; len = 0; total = 0 }

let width t = t.width
let total t = t.total

let observe ?(by = 1) t ~at =
  if at < 0 then invalid_arg "Window.observe: negative timestamp";
  let b = at / t.width in
  if b >= Array.length t.counts then begin
    let cap = ref (2 * Array.length t.counts) in
    while b >= !cap do
      cap := 2 * !cap
    done;
    let bigger = Array.make !cap 0 in
    Array.blit t.counts 0 bigger 0 t.len;
    t.counts <- bigger
  end;
  t.counts.(b) <- t.counts.(b) + by;
  if b + 1 > t.len then t.len <- b + 1;
  t.total <- t.total + by

let counts t = Array.sub t.counts 0 t.len

let peak t =
  let m = ref 0 in
  for i = 0 to t.len - 1 do
    if t.counts.(i) > !m then m := t.counts.(i)
  done;
  !m

let merge ~into src =
  if into.width <> src.width then
    invalid_arg
      (Printf.sprintf "Window.merge: window widths differ (%d vs %d)" into.width src.width);
  for b = 0 to src.len - 1 do
    if src.counts.(b) <> 0 then observe ~by:src.counts.(b) into ~at:(b * src.width)
  done

let to_json t =
  Json.Obj
    [
      ("width", Json.Int t.width);
      ("total", Json.Int t.total);
      ("peak", Json.Int (peak t));
      ("counts", Json.Arr (List.init t.len (fun i -> Json.Int t.counts.(i))));
    ]
