type counter = { mutable c : int }
type gauge = { mutable g : int }

type histogram = {
  bounds : int array; (* strictly increasing inclusive upper bounds *)
  counts : int array; (* length bounds + 1; last is overflow *)
  mutable n : int;
  mutable sum : int;
  mutable min_v : int;
  mutable max_v : int;
}

type item =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram
  | Quantile of Quantile.t
  | Series of Window.t

type t = { tbl : (string, item) Hashtbl.t }

let create () = { tbl = Hashtbl.create 32 }

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"
  | Quantile _ -> "quantile"
  | Series _ -> "series"

let register t name make match_existing =
  match Hashtbl.find_opt t.tbl name with
  | Some item -> (
      match match_existing item with
      | Some v -> v
      | None ->
          invalid_arg
            (Printf.sprintf "Metrics: %S already registered as a %s" name (kind_name item)))
  | None ->
      let v, item = make () in
      Hashtbl.add t.tbl name item;
      v

let counter t name =
  register t name
    (fun () ->
      let c = { c = 0 } in
      (c, Counter c))
    (function Counter c -> Some c | _ -> None)

let incr ?(by = 1) c = c.c <- c.c + by
let counter_value c = c.c

let gauge t name =
  register t name
    (fun () ->
      let g = { g = 0 } in
      (g, Gauge g))
    (function Gauge g -> Some g | _ -> None)

let set g v = g.g <- v
let gauge_value g = g.g

let histogram t name ~buckets =
  register t name
    (fun () ->
      let bounds = Array.of_list buckets in
      Array.iteri
        (fun i b -> if i > 0 && b <= bounds.(i - 1) then invalid_arg "Metrics.histogram: bounds must be strictly increasing")
        bounds;
      let h =
        {
          bounds;
          counts = Array.make (Array.length bounds + 1) 0;
          n = 0;
          sum = 0;
          min_v = max_int;
          max_v = min_int;
        }
      in
      (h, Histogram h))
    (function Histogram h -> Some h | _ -> None)

let quantile t name =
  register t name
    (fun () ->
      let q = Quantile.create () in
      (q, Quantile q))
    (function Quantile q -> Some q | _ -> None)

let series t name ~width =
  register t name
    (fun () ->
      let w = Window.create ~width in
      (w, Series w))
    (function Series w -> Some w | _ -> None)

let observe h v =
  let rec slot i =
    if i >= Array.length h.bounds then i else if v <= h.bounds.(i) then i else slot (i + 1)
  in
  let i = slot 0 in
  h.counts.(i) <- h.counts.(i) + 1;
  h.n <- h.n + 1;
  h.sum <- h.sum + v;
  if v < h.min_v then h.min_v <- v;
  if v > h.max_v then h.max_v <- v

(* Deterministic registry merge, for combining per-run (or per-worker)
   registries into one report. Merge is order-sensitive only for gauges, so
   callers merging in a canonical order (campaigns merge in run-index
   order) get a canonical result:
   - counters add;
   - histograms add bucket-wise (bounds must agree) and combine n/sum/min/max;
   - gauges are instantaneous quantities with no meaningful sum: the last
     merged value wins, i.e. the highest-index run's snapshot. *)
let merge ~into src =
  let merge_item name item =
    match (Hashtbl.find_opt into.tbl name, item) with
    | None, Counter c -> Hashtbl.add into.tbl name (Counter { c = c.c })
    | None, Gauge g -> Hashtbl.add into.tbl name (Gauge { g = g.g })
    | None, Histogram h ->
        Hashtbl.add into.tbl name
          (Histogram { h with bounds = Array.copy h.bounds; counts = Array.copy h.counts })
    | None, Quantile q ->
        let fresh = Quantile.create () in
        Quantile.merge ~into:fresh q;
        Hashtbl.add into.tbl name (Quantile fresh)
    | None, Series w ->
        let fresh = Window.create ~width:(Window.width w) in
        Window.merge ~into:fresh w;
        Hashtbl.add into.tbl name (Series fresh)
    | Some (Counter dst), Counter c -> dst.c <- dst.c + c.c
    | Some (Gauge dst), Gauge g -> dst.g <- g.g
    | Some (Histogram dst), Histogram h ->
        if dst.bounds <> h.bounds then
          invalid_arg (Printf.sprintf "Metrics.merge: histogram %S bucket bounds differ" name);
        Array.iteri (fun i c -> dst.counts.(i) <- dst.counts.(i) + c) h.counts;
        dst.n <- dst.n + h.n;
        dst.sum <- dst.sum + h.sum;
        if h.min_v < dst.min_v then dst.min_v <- h.min_v;
        if h.max_v > dst.max_v then dst.max_v <- h.max_v
    | Some (Quantile dst), Quantile q -> Quantile.merge ~into:dst q
    | Some (Series dst), Series w -> Window.merge ~into:dst w
    | Some existing, _ ->
        invalid_arg
          (Printf.sprintf "Metrics.merge: %S is a %s in the target, a %s in the source" name
             (kind_name existing) (kind_name item))
  in
  (* Hashtbl order is nondeterministic; visit names sorted so creation
     order in [into] (hence nothing observable — to_json re-sorts — but
     also any future iteration) is canonical. *)
  Hashtbl.fold (fun name item acc -> (name, item) :: acc) src.tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.iter (fun (name, item) -> merge_item name item)

let latency_buckets = [ 1; 3; 10; 30; 100; 300; 1000; 3000; 10000; 30000 ]
let depth_buckets = [ 0; 1; 2; 4; 8; 16; 32; 64; 128; 256; 512; 1024 ]

let histogram_json h =
  let buckets =
    List.init
      (Array.length h.counts)
      (fun i ->
        let le =
          if i < Array.length h.bounds then Json.Int h.bounds.(i) else Json.Str "inf"
        in
        Json.Obj [ ("le", le); ("count", Json.Int h.counts.(i)) ])
  in
  Json.Obj
    [
      ("buckets", Json.Arr buckets);
      ("count", Json.Int h.n);
      ("sum", Json.Int h.sum);
      ("min", if h.n = 0 then Json.Null else Json.Int h.min_v);
      ("max", if h.n = 0 then Json.Null else Json.Int h.max_v);
    ]

let to_json t =
  let sorted kind_of =
    Hashtbl.fold
      (fun name item acc -> match kind_of item with Some j -> (name, j) :: acc | None -> acc)
      t.tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  Json.Obj
    [
      ("counters", Json.Obj (sorted (function Counter c -> Some (Json.Int c.c) | _ -> None)));
      ("gauges", Json.Obj (sorted (function Gauge g -> Some (Json.Int g.g) | _ -> None)));
      ( "histograms",
        Json.Obj (sorted (function Histogram h -> Some (histogram_json h) | _ -> None)) );
      ( "quantiles",
        Json.Obj (sorted (function Quantile q -> Some (Quantile.to_json q) | _ -> None)) );
      ("series", Json.Obj (sorted (function Series w -> Some (Window.to_json w) | _ -> None)));
    ]
