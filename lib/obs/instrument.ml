open Dsim

type t = {
  metrics : Metrics.t;
  engine : Engine.t;
  t0 : float;
  mutable ticks : int;
  mutable elapsed : float option; (* set by finalize *)
}

let meals_window_width = 1000

let install ~metrics engine =
  let st = { metrics; engine; t0 = Unix.gettimeofday (); ticks = 0; elapsed = None } in
  let depth =
    Metrics.histogram metrics "engine.in_flight_depth" ~buckets:Metrics.depth_buckets
  in
  let live = Metrics.gauge metrics "engine.live_procs" in
  let ticks = Metrics.counter metrics "engine.ticks" in
  Metrics.set live (Engine.n engine);
  Engine.on_tick engine (fun () ->
      st.ticks <- st.ticks + 1;
      Metrics.incr ticks;
      Metrics.observe depth (Engine.in_flight_total engine);
      Metrics.set live (Engine.live_count engine));
  (* Hunger latency via the span layer: a streaming (memory-free) span
     collector closes a diner's Hungry span on the transition out of
     Hungry; when the next phase is Eating, the span length is one
     completed hunger session. Dual-recorded as the bucketed
     [hunger_latency] histogram (cheap cross-run aggregation) and the
     exact [hunger_latency_exact] quantile digest (true p99/p999). *)
  let spans = Span.create ~retain:false () in
  Span.on_close spans (fun sp ~next ->
      match (sp.Span.phase, next) with
      | Types.Hungry, Types.Eating ->
          let latency = sp.Span.stop - sp.Span.start in
          Metrics.observe
            (Metrics.histogram metrics
               ("dining." ^ sp.Span.instance ^ ".hunger_latency")
               ~buckets:Metrics.latency_buckets)
            latency;
          Quantile.add
            (Metrics.quantile metrics ("dining." ^ sp.Span.instance ^ ".hunger_latency_exact"))
            latency
      | _ -> ());
  Trace.subscribe (Engine.trace engine) (fun e ->
      Span.observe spans e;
      match e.Trace.ev with
      | Trace.Suspect { detector; _ } ->
          Metrics.incr (Metrics.counter metrics ("detector." ^ detector ^ ".flips"));
          Metrics.incr (Metrics.counter metrics ("detector." ^ detector ^ ".suspects"))
      | Trace.Trust { detector; _ } ->
          Metrics.incr (Metrics.counter metrics ("detector." ^ detector ^ ".flips"));
          Metrics.incr (Metrics.counter metrics ("detector." ^ detector ^ ".trusts"))
      | Trace.Crash _ -> Metrics.incr (Metrics.counter metrics "engine.crashes")
      | Trace.Transition { instance; to_; _ } -> (
          match to_ with
          | Types.Eating ->
              Metrics.incr (Metrics.counter metrics ("dining." ^ instance ^ ".meals"));
              Window.observe
                (Metrics.series metrics ("dining." ^ instance ^ ".meals_per_window")
                   ~width:meals_window_width)
                ~at:e.Trace.at
          | Types.Thinking | Types.Hungry | Types.Exiting -> ())
      | Trace.Note _ -> ());
  st

let finalize st =
  match st.elapsed with
  | Some _ -> ()
  | None ->
      st.elapsed <- Some (Unix.gettimeofday () -. st.t0);
      Metrics.set (Metrics.gauge st.metrics "engine.clock") (Engine.now st.engine);
      Metrics.set (Metrics.gauge st.metrics "engine.sent_total") (Engine.sent_total st.engine);
      Metrics.set
        (Metrics.gauge st.metrics "engine.in_flight_final")
        (Engine.in_flight_total st.engine);
      List.iter
        (fun (tag, n) -> Metrics.set (Metrics.gauge st.metrics ("engine.sent." ^ tag)) n)
        (Engine.sent_by_tag st.engine)

(* This module is the one sanctioned wall-clock reader (simlint D001):
   other layers that need elapsed-seconds measurements for a report's
   segregated wall_clock section route them through here. *)
let now_s () = Unix.gettimeofday ()

let time f =
  let t0 = now_s () in
  let v = f () in
  (v, now_s () -. t0)

let wall_json st =
  finalize st;
  let elapsed = Option.value ~default:0.0 st.elapsed in
  Json.Obj
    [
      ("elapsed_s", Json.Float elapsed);
      ("ticks", Json.Int st.ticks);
      ( "ticks_per_s",
        if elapsed > 0.0 then Json.Float (float_of_int st.ticks /. elapsed) else Json.Null );
    ]
