(** Per-tick-window event series.

    A series splits the global clock into consecutive windows of a fixed
    width (in ticks) and counts events per window — the throughput-over-
    time view the heavy-traffic workloads report (e.g. meals per
    1000-tick window). Driven entirely by simulation timestamps, so a
    series is deterministic in the engine seed. *)

type t

val create : width:int -> t
(** Raises [Invalid_argument] when [width <= 0]. *)

val width : t -> int

val observe : ?by:int -> t -> at:int -> unit
(** Count [by] (default 1) events in the window containing tick [at].
    Raises [Invalid_argument] on a negative timestamp. *)

val total : t -> int
(** Sum over all windows. *)

val peak : t -> int
(** Largest single-window count (0 when empty). *)

val counts : t -> int array
(** Per-window counts from window 0 through the highest window touched;
    a fresh array. *)

val merge : into:t -> t -> unit
(** Window-wise addition. Order-independent. Raises [Invalid_argument]
    when the widths differ. [src] is not modified. *)

val to_json : t -> Json.t
(** [{"width":W,"total":N,"peak":P,"counts":[...]}] — deterministic. *)
