(* Exact quantiles over integer samples.

   Representation: a sorted run-length array of (value, count) pairs plus
   a small fixed-capacity pending buffer of raw samples. When the buffer
   fills it is sorted and merged into the runs — "deterministic
   compaction": compaction happens at exactly the same points for the
   same sample sequence, and the merged runs are a pure function of the
   sample multiset, so two runs that observe the same values in the same
   order hold byte-identical state at every step. No sampling, no decay:
   the quantiles reported are exact nearest-rank statistics of everything
   observed. Memory is O(distinct values), which for tick-valued
   latencies is bounded by the horizon. *)

type t = {
  mutable runs : (int * int) array; (* (value, count), values strictly increasing *)
  pending : int array;
  mutable pending_len : int;
  mutable n : int;
  mutable sum : int;
}

let pending_capacity = 512

let create () =
  { runs = [||]; pending = Array.make pending_capacity 0; pending_len = 0; n = 0; sum = 0 }

(* Merge the (sorted) pending samples into the run array. Linear in the
   number of runs plus pending samples. *)
let compact t =
  if t.pending_len > 0 then begin
    let p = Array.sub t.pending 0 t.pending_len in
    Array.sort Int.compare p;
    let old = t.runs in
    let merged = Array.make (Array.length old + Array.length p) (0, 0) in
    let mi = ref 0 in
    let push v c =
      if !mi > 0 && fst merged.(!mi - 1) = v then begin
        let _, c0 = merged.(!mi - 1) in
        merged.(!mi - 1) <- (v, c0 + c)
      end
      else begin
        merged.(!mi) <- (v, c);
        incr mi
      end
    in
    let oi = ref 0 and pi = ref 0 in
    while !oi < Array.length old || !pi < Array.length p do
      if !pi >= Array.length p then begin
        let v, c = old.(!oi) in
        push v c;
        incr oi
      end
      else if !oi >= Array.length old || p.(!pi) < fst old.(!oi) then begin
        push p.(!pi) 1;
        incr pi
      end
      else begin
        let v, c = old.(!oi) in
        push v c;
        incr oi
      end
    done;
    t.runs <- Array.sub merged 0 !mi;
    t.pending_len <- 0
  end

let add t v =
  if t.pending_len = Array.length t.pending then compact t;
  t.pending.(t.pending_len) <- v;
  t.pending_len <- t.pending_len + 1;
  t.n <- t.n + 1;
  t.sum <- t.sum + v

let count t = t.n
let sum t = t.sum

let min_value t =
  compact t;
  if t.n = 0 then None else Some (fst t.runs.(0))

let max_value t =
  compact t;
  if t.n = 0 then None else Some (fst t.runs.(Array.length t.runs - 1))

let quantile t q =
  if not (q >= 0.0 && q <= 1.0) then invalid_arg "Quantile.quantile: q outside [0, 1]";
  compact t;
  if t.n = 0 then None
  else begin
    (* Nearest-rank: the smallest value whose cumulative count reaches
       rank = ceil(q * n), clamped to [1, n]. q = 0 is the minimum. *)
    let rank = max 1 (min t.n (int_of_float (ceil (q *. float_of_int t.n)))) in
    let rec go i acc =
      let v, c = t.runs.(i) in
      if acc + c >= rank then v else go (i + 1) (acc + c)
    in
    Some (go 0 0)
  end

let runs t =
  compact t;
  Array.to_list t.runs

(* Multiset union: merge the two run arrays pairwise (one linear pass),
   so the result is independent of merge order — campaigns merging
   per-run digests in any order produce the same statistics, though
   drivers still merge in run-index order for uniformity with gauges. *)
let merge ~into src =
  compact src;
  compact into;
  let a = into.runs and b = src.runs in
  let merged = Array.make (Array.length a + Array.length b) (0, 0) in
  let mi = ref 0 in
  let push v c =
    if !mi > 0 && fst merged.(!mi - 1) = v then begin
      let _, c0 = merged.(!mi - 1) in
      merged.(!mi - 1) <- (v, c0 + c)
    end
    else begin
      merged.(!mi) <- (v, c);
      incr mi
    end
  in
  let ai = ref 0 and bi = ref 0 in
  while !ai < Array.length a || !bi < Array.length b do
    if !ai >= Array.length a then begin
      let v, c = b.(!bi) in
      push v c;
      incr bi
    end
    else if !bi >= Array.length b || fst a.(!ai) <= fst b.(!bi) then begin
      let v, c = a.(!ai) in
      push v c;
      incr ai
    end
    else begin
      let v, c = b.(!bi) in
      push v c;
      incr bi
    end
  done;
  into.runs <- Array.sub merged 0 !mi;
  into.n <- into.n + src.n;
  into.sum <- into.sum + src.sum

let json_of_opt = function Some v -> Json.Int v | None -> Json.Null

let to_json t =
  let q p = json_of_opt (quantile t p) in
  Json.Obj
    [
      ("count", Json.Int t.n);
      ("sum", Json.Int t.sum);
      ("min", json_of_opt (min_value t));
      ("max", json_of_opt (max_value t));
      ("p50", q 0.5);
      ("p90", q 0.9);
      ("p99", q 0.99);
      ("p999", q 0.999);
    ]
