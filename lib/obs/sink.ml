open Dsim

type t = { emit : Trace.entry -> unit; close : unit -> unit }

let null = { emit = ignore; close = ignore }

let memory () =
  let tr = Trace.create () in
  ({ emit = (fun e -> Trace.append tr ~at:e.Trace.at e.Trace.ev); close = ignore }, tr)

(* ------------------------------------------------------------------ *)
(* JSONL codec *)

let entry_to_json (e : Trace.entry) =
  let base = [ ("at", Json.Int e.at) ] in
  Json.Obj
    (base
    @
    match e.ev with
    | Trace.Transition { instance; pid; from_; to_ } ->
        [
          ("ev", Json.Str "transition");
          ("instance", Json.Str instance);
          ("pid", Json.Int pid);
          ("from", Json.Str (Types.phase_to_string from_));
          ("to", Json.Str (Types.phase_to_string to_));
        ]
    | Trace.Suspect { detector; owner; target } ->
        [
          ("ev", Json.Str "suspect");
          ("detector", Json.Str detector);
          ("owner", Json.Int owner);
          ("target", Json.Int target);
        ]
    | Trace.Trust { detector; owner; target } ->
        [
          ("ev", Json.Str "trust");
          ("detector", Json.Str detector);
          ("owner", Json.Int owner);
          ("target", Json.Int target);
        ]
    | Trace.Crash { pid } -> [ ("ev", Json.Str "crash"); ("pid", Json.Int pid) ]
    | Trace.Note { pid; label; info } ->
        [
          ("ev", Json.Str "note");
          ("pid", Json.Int pid);
          ("label", Json.Str label);
          ("info", Json.Str info);
        ])

let phase_exn s =
  match Types.phase_of_string s with
  | Some p -> p
  | None -> failwith (Printf.sprintf "Sink.entry_of_json: unknown phase %S" s)

let entry_of_json j =
  let at = Json.int (Json.get j "at") in
  let ev =
    match Json.str (Json.get j "ev") with
    | "transition" ->
        Trace.Transition
          {
            instance = Json.str (Json.get j "instance");
            pid = Json.int (Json.get j "pid");
            from_ = phase_exn (Json.str (Json.get j "from"));
            to_ = phase_exn (Json.str (Json.get j "to"));
          }
    | "suspect" ->
        Trace.Suspect
          {
            detector = Json.str (Json.get j "detector");
            owner = Json.int (Json.get j "owner");
            target = Json.int (Json.get j "target");
          }
    | "trust" ->
        Trace.Trust
          {
            detector = Json.str (Json.get j "detector");
            owner = Json.int (Json.get j "owner");
            target = Json.int (Json.get j "target");
          }
    | "crash" -> Trace.Crash { pid = Json.int (Json.get j "pid") }
    | "note" ->
        Trace.Note
          {
            pid = Json.int (Json.get j "pid");
            label = Json.str (Json.get j "label");
            info = Json.str (Json.get j "info");
          }
    | kind -> failwith (Printf.sprintf "Sink.entry_of_json: unknown event kind %S" kind)
  in
  { Trace.at; ev }

(* ------------------------------------------------------------------ *)
(* File sink *)

let jsonl_file path =
  let oc = open_out path in
  let closed = ref false in
  let emit e =
    if not !closed then begin
      output_string oc (Json.to_string (entry_to_json e));
      output_char oc '\n'
    end
  in
  let close () =
    if not !closed then begin
      closed := true;
      close_out oc
    end
  in
  { emit; close }

let tee sinks =
  {
    emit = (fun e -> List.iter (fun s -> s.emit e) sinks);
    close = (fun () -> List.iter (fun s -> s.close ()) sinks);
  }

let attach tr sink =
  Trace.iter tr sink.emit;
  Trace.subscribe tr sink.emit

let read_jsonl path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let tr = Trace.create () in
      (try
         while true do
           let line = input_line ic in
           if String.trim line <> "" then begin
             let e = entry_of_json (Json.of_string line) in
             Trace.append tr ~at:e.Trace.at e.Trace.ev
           end
         done
       with End_of_file -> ());
      tr)
