(** Pluggable trace sinks.

    A sink is a streaming consumer of {!Dsim.Trace} entries. Sinks attach
    to a live trace with {!attach} (which first replays any entries already
    recorded, then subscribes for the rest), so a JSONL file written by a
    streaming run contains exactly the entries an in-memory trace of the
    same run would hold — including events logged during deployment setup,
    before the sink existed.

    Combined with [Engine.create ~retain_trace:false], the JSONL file sink
    lets million-tick runs stream their event log to disk instead of
    growing an in-memory array; {!read_jsonl} rebuilds an in-memory trace
    from such a file so the pure property checkers can run offline. *)

type t = {
  emit : Dsim.Trace.entry -> unit;
  close : unit -> unit;  (** Flush and release resources; idempotent. *)
}

val null : t
(** Discards everything. *)

val memory : unit -> t * Dsim.Trace.t
(** A sink that appends into a fresh in-memory trace (also returned). *)

val jsonl_file : string -> t
(** Streams entries to [path], one JSON object per line (see
    {!entry_to_json} for the schema). Buffered; [close] flushes. *)

val tee : t list -> t
(** Fans every entry out to all sinks, in order. [close] closes all. *)

val attach : Dsim.Trace.t -> t -> unit
(** Replay already-recorded entries into the sink, then subscribe it to
    all future appends. *)

val entry_to_json : Dsim.Trace.entry -> Json.t
(** One entry as a flat object: [{"at":3,"ev":"transition","instance":"i",
    "pid":0,"from":"thinking","to":"hungry"}]; suspicion events carry
    [detector]/[owner]/[target], crashes [pid], notes [pid]/[label]/[info]. *)

val entry_of_json : Json.t -> Dsim.Trace.entry
(** Inverse of {!entry_to_json}. Raises [Failure] on schema mismatch. *)

val read_jsonl : string -> Dsim.Trace.t
(** Load a JSONL trace file back into an in-memory trace (blank lines are
    skipped). Raises [Failure] on malformed lines, [Sys_error] on IO. *)
