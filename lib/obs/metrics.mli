(** Metrics registry: named counters, gauges and fixed-bucket histograms.

    Everything here is driven by simulation events, so for a fixed seed the
    snapshot is bit-for-bit reproducible; wall-clock quantities are kept
    out of the registry on purpose (see {!Instrument.wall_json}).

    Units convention, used by every instrumented name in this repo:
    counters count events, gauges are instantaneous quantities, histogram
    samples are in global-clock {e ticks} unless the name says otherwise. *)

type t

type counter
type gauge
type histogram

val create : unit -> t

val counter : t -> string -> counter
(** Get-or-create. Raises [Invalid_argument] if the name is already
    registered with a different kind. *)

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

val gauge : t -> string -> gauge
val set : gauge -> int -> unit
val gauge_value : gauge -> int

val histogram : t -> string -> buckets:int list -> histogram
(** [buckets] are strictly increasing inclusive upper bounds; one implicit
    overflow bucket is added. Get-or-create: re-requesting an existing
    histogram ignores [buckets]. *)

val observe : histogram -> int -> unit

val quantile : t -> string -> Quantile.t
(** Get-or-create an exact-quantile digest (see {!Quantile}). By
    convention, exact digests shadowing a histogram use the histogram's
    name with an [_exact] suffix (the name itself must be distinct — the
    kind-clash rule applies). *)

val series : t -> string -> width:int -> Window.t
(** Get-or-create a per-tick-window series (see {!Window}). Get-or-create:
    re-requesting an existing series ignores [width], mirroring histogram
    [buckets]. *)

val merge : into:t -> t -> unit
(** [merge ~into src] folds [src] into [into]: counters add, histograms add
    bucket-wise (raises [Invalid_argument] if bucket bounds differ),
    quantile digests take the multiset union, series add window-wise
    (raises [Invalid_argument] if widths differ), and
    gauges take the source value (last merge wins). Merging several
    registries in a canonical order — campaign drivers merge per-run
    registries in run-index order — therefore yields a canonical result
    independent of which worker produced which registry. Raises
    [Invalid_argument] when a name is registered with different kinds on
    the two sides. [src] is not modified. *)

val latency_buckets : int list
(** Default tick-latency bucket bounds: 1, 3, 10, ... 30000. *)

val depth_buckets : int list
(** Default queue-depth bucket bounds: 0, 1, 2, 4, ... 1024. *)

val to_json : t -> Json.t
(** Deterministic snapshot: [{"counters":{...},"gauges":{...},
    "histograms":{name -> {"buckets":[{"le":b,"count":n}...,
    {"le":"inf","count":n}],"count":N,"sum":S,"min":m,"max":M}},
    "quantiles":{name -> Quantile.to_json},"series":{name ->
    Window.to_json}}] with all names sorted. Empty histograms have
    [min]/[max] null. *)
