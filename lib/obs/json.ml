type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing *)

let escape_into b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let float_repr f =
  if Float.is_nan f then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec write ~indent ~level b j =
  let nl k =
    match indent with
    | None -> ()
    | Some step ->
        Buffer.add_char b '\n';
        Buffer.add_string b (String.make (step * k) ' ')
  in
  match j with
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int n -> Buffer.add_string b (string_of_int n)
  | Float f -> Buffer.add_string b (float_repr f)
  | Str s -> escape_into b s
  | Arr [] -> Buffer.add_string b "[]"
  | Arr items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char b ',';
          nl (level + 1);
          write ~indent ~level:(level + 1) b item)
        items;
      nl level;
      Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          nl (level + 1);
          escape_into b k;
          Buffer.add_char b ':';
          if indent <> None then Buffer.add_char b ' ';
          write ~indent ~level:(level + 1) b v)
        fields;
      nl level;
      Buffer.add_char b '}'

let to_string j =
  let b = Buffer.create 256 in
  write ~indent:None ~level:0 b j;
  Buffer.contents b

let to_string_pretty j =
  let b = Buffer.create 256 in
  write ~indent:(Some 2) ~level:0 b j;
  Buffer.add_char b '\n';
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing *)

type cursor = { s : string; mutable pos : int }

let fail cur msg = failwith (Printf.sprintf "Json.of_string: %s at offset %d" msg cur.pos)

let peek cur = if cur.pos < String.length cur.s then Some cur.s.[cur.pos] else None
let peek_is cur c = match peek cur with Some x -> Char.equal x c | None -> false

let advance cur = cur.pos <- cur.pos + 1

let rec skip_ws cur =
  match peek cur with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance cur;
      skip_ws cur
  | _ -> ()

let expect cur c =
  match peek cur with
  | Some c' when c' = c -> advance cur
  | _ -> fail cur (Printf.sprintf "expected %C" c)

let literal cur word value =
  let n = String.length word in
  if cur.pos + n <= String.length cur.s && String.sub cur.s cur.pos n = word then begin
    cur.pos <- cur.pos + n;
    value
  end
  else fail cur (Printf.sprintf "expected %s" word)

let utf8_add b code =
  if code < 0x80 then Buffer.add_char b (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_string cur =
  expect cur '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek cur with
    | None -> fail cur "unterminated string"
    | Some '"' ->
        advance cur;
        Buffer.contents b
    | Some '\\' -> (
        advance cur;
        match peek cur with
        | Some '"' -> advance cur; Buffer.add_char b '"'; go ()
        | Some '\\' -> advance cur; Buffer.add_char b '\\'; go ()
        | Some '/' -> advance cur; Buffer.add_char b '/'; go ()
        | Some 'n' -> advance cur; Buffer.add_char b '\n'; go ()
        | Some 'r' -> advance cur; Buffer.add_char b '\r'; go ()
        | Some 't' -> advance cur; Buffer.add_char b '\t'; go ()
        | Some 'b' -> advance cur; Buffer.add_char b '\b'; go ()
        | Some 'f' -> advance cur; Buffer.add_char b '\012'; go ()
        | Some 'u' ->
            advance cur;
            if cur.pos + 4 > String.length cur.s then fail cur "truncated \\u escape";
            let hex = String.sub cur.s cur.pos 4 in
            (match int_of_string_opt ("0x" ^ hex) with
            | Some code ->
                cur.pos <- cur.pos + 4;
                utf8_add b code;
                go ()
            | None -> fail cur "bad \\u escape")
        | _ -> fail cur "bad escape")
    | Some c ->
        advance cur;
        Buffer.add_char b c;
        go ()
  in
  go ()

let parse_number cur =
  let start = cur.pos in
  let is_float = ref false in
  let rec go () =
    match peek cur with
    | Some ('0' .. '9' | '-' | '+') ->
        advance cur;
        go ()
    | Some ('.' | 'e' | 'E') ->
        is_float := true;
        advance cur;
        go ()
    | _ -> ()
  in
  go ();
  let text = String.sub cur.s start (cur.pos - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail cur "bad number"
  else
    match int_of_string_opt text with
    | Some n -> Int n
    | None -> fail cur "bad number"

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> fail cur "unexpected end of input"
  | Some 'n' -> literal cur "null" Null
  | Some 't' -> literal cur "true" (Bool true)
  | Some 'f' -> literal cur "false" (Bool false)
  | Some '"' -> Str (parse_string cur)
  | Some '[' ->
      advance cur;
      skip_ws cur;
      if peek_is cur ']' then begin
        advance cur;
        Arr []
      end
      else begin
        let rec items acc =
          let v = parse_value cur in
          skip_ws cur;
          match peek cur with
          | Some ',' ->
              advance cur;
              items (v :: acc)
          | Some ']' ->
              advance cur;
              List.rev (v :: acc)
          | _ -> fail cur "expected ',' or ']'"
        in
        Arr (items [])
      end
  | Some '{' ->
      advance cur;
      skip_ws cur;
      if peek_is cur '}' then begin
        advance cur;
        Obj []
      end
      else begin
        let field () =
          skip_ws cur;
          let k = parse_string cur in
          skip_ws cur;
          expect cur ':';
          let v = parse_value cur in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws cur;
          match peek cur with
          | Some ',' ->
              advance cur;
              fields (kv :: acc)
          | Some '}' ->
              advance cur;
              List.rev (kv :: acc)
          | _ -> fail cur "expected ',' or '}'"
        in
        Obj (fields [])
      end
  | Some ('-' | '0' .. '9') -> parse_number cur
  | Some c -> fail cur (Printf.sprintf "unexpected %C" c)

let of_string s =
  let cur = { s; pos = 0 } in
  let v = parse_value cur in
  skip_ws cur;
  if cur.pos <> String.length s then fail cur "trailing garbage";
  v

(* ------------------------------------------------------------------ *)
(* Accessors *)

let find j key = match j with Obj fields -> List.assoc_opt key fields | _ -> None

let get j key =
  match find j key with
  | Some v -> v
  | None -> failwith (Printf.sprintf "Json.get: missing key %S" key)

let str = function Str s -> s | _ -> failwith "Json.str: not a string"
let int = function Int n -> n | _ -> failwith "Json.int: not an integer"
let bool = function Bool b -> b | _ -> failwith "Json.bool: not a boolean"
let arr = function Arr l -> l | _ -> failwith "Json.arr: not an array"
