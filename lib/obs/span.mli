(** Phase spans: the interval view of a run.

    A collector folds the flat {!Dsim.Trace} event stream into
    per-(instance, diner) phase spans — one interval per contiguous stay
    in a phase. This is the single source of phase-duration truth:
    {!Instrument} derives hunger latencies from closed [Hungry] spans,
    and {!chrome_of_trace} renders the same intervals as a Chrome
    trace-event document viewable in Perfetto.

    Spans are derived purely from trace timestamps, so every output here
    is deterministic in the engine seed. *)

type span = {
  instance : string;
  pid : Dsim.Types.pid;
  phase : Dsim.Types.phase;
  start : Dsim.Types.time;
  stop : Dsim.Types.time;  (** exclusive; the horizon for open spans *)
  closed : bool;  (** [false]: cut at the horizon, not by a transition *)
}

type t

val create : ?retain:bool -> unit -> t
(** [retain] (default [true]): keep closed spans in memory for {!spans}.
    With [~retain:false] the collector only drives {!on_close} callbacks
    — the memory-free mode {!Instrument} uses for latency accounting. *)

val on_close : t -> (span -> next:Dsim.Types.phase -> unit) -> unit
(** Register a callback fired (in registration order) whenever a
    transition closes a span, including zero-length ones — a 0-tick
    hunger session is still a latency sample. [next] is the phase the
    diner moved to. *)

val observe : t -> Dsim.Trace.entry -> unit
(** Feed one trace entry. Only [Transition] events affect span state. A
    diner first seen mid-run is assumed to have held the transition's
    [from_] phase since tick 0 (diners start [Thinking] at 0). *)

val attach : t -> Dsim.Trace.t -> unit
(** [iter] over the already-recorded entries, then [subscribe] for the
    rest of the run. *)

val spans : t -> horizon:Dsim.Types.time -> span list
(** All spans of the run: closed spans plus every still-open span cut at
    [horizon] with [closed = false]. Zero-length spans are omitted,
    mirroring {!Dsim.Trace.phase_timeline}. Sorted by (instance, pid,
    start, stop) — canonical regardless of close order. Raises
    [Invalid_argument] on a [~retain:false] collector. *)

val schema_version : string
(** ["trace_event/1"] — tag of the Chrome export document. *)

val chrome_of_trace : ?horizon:Dsim.Types.time -> Dsim.Trace.t -> Json.t
(** Render a recorded trace as a Chrome trace-event JSON document
    (openable in Perfetto / chrome://tracing): one complete ("X") event
    per phase span with ticks as microseconds, one instant ("i") event
    per suspicion flip, crash and note, plus process-name metadata.
    [horizon] defaults to one past the last event. Deterministic in the
    trace contents. *)
