(* Schedule-coverage signatures.

   An AFL-style edge bitmap over the behavioural event stream of a run:
   each trace event is hashed to a 64-bit "site", each consecutive pair
   of sites *on the same track* (one track per diner per dining
   instance, per detector module owner, per note label, plus one crash
   track) forms an edge, and each edge sets one bit in a fixed-width
   bitmap. Two runs with the same signature exercised the same set of
   local event successions; a fuzzing campaign's union bitmap growing is
   the signal that new schedules are still being discovered.

   The hash is a hand-rolled FNV-1a over the event's rendered fields —
   deliberately not [Hashtbl.hash], which is a simlint D010 taint source
   (its output is not specified across OCaml versions, and signatures
   are pinned in tests and corpus artifacts). Everything here is a pure
   function of the trace, hence of the engine seed. *)

open Dsim

let default_width = 4096

(* ------------------------------------------------------------------ *)
(* FNV-1a, 64 bit. *)

let fnv_basis = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv_byte h b = Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) fnv_prime

let fnv_string h s =
  let h = ref h in
  String.iter (fun c -> h := fnv_byte !h (Char.code c)) s;
  !h

let fnv_int64 h v =
  let h = ref h in
  for i = 0 to 7 do
    h := fnv_byte !h (Int64.to_int (Int64.shift_right_logical v (8 * i)))
  done;
  !h

(* ------------------------------------------------------------------ *)
(* Finished signatures: plain data, so run outcomes carrying one still
   compare structurally. *)

type t = { width : int; bits : Bytes.t }

let empty ?(width = default_width) () =
  if width <= 0 || width mod 8 <> 0 then
    invalid_arg "Coverage.empty: width must be a positive multiple of 8";
  { width; bits = Bytes.make (width / 8) '\000' }

let width t = t.width

let check_widths fn a b =
  if a.width <> b.width then
    invalid_arg (Printf.sprintf "Coverage.%s: signature widths differ (%d vs %d)" fn a.width b.width)

let union a b =
  check_widths "union" a b;
  let bits = Bytes.create (Bytes.length a.bits) in
  for i = 0 to Bytes.length bits - 1 do
    Bytes.unsafe_set bits i
      (Char.chr (Char.code (Bytes.get a.bits i) lor Char.code (Bytes.get b.bits i)))
  done;
  { width = a.width; bits }

let popcount_byte b =
  let rec go b acc = if b = 0 then acc else go (b lsr 1) (acc + (b land 1)) in
  go b 0

let edges t =
  let n = ref 0 in
  Bytes.iter (fun c -> n := !n + popcount_byte (Char.code c)) t.bits;
  !n

let new_edges ~seen t =
  check_widths "new_edges" seen t;
  let n = ref 0 in
  for i = 0 to Bytes.length t.bits - 1 do
    let fresh = Char.code (Bytes.get t.bits i) land lnot (Char.code (Bytes.get seen.bits i)) in
    n := !n + popcount_byte fresh
  done;
  !n

let equal a b = a.width = b.width && Bytes.equal a.bits b.bits

let to_hex t =
  let buf = Buffer.create (2 * Bytes.length t.bits) in
  Bytes.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) t.bits;
  Buffer.contents buf

let of_hex s =
  let len = String.length s in
  if len = 0 || len mod 2 <> 0 then invalid_arg "Coverage.of_hex: odd-length or empty string";
  let nibble = function
    | '0' .. '9' as c -> Char.code c - Char.code '0'
    | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
    | c -> invalid_arg (Printf.sprintf "Coverage.of_hex: non-hex character %C" c)
  in
  let bits = Bytes.create (len / 2) in
  for i = 0 to (len / 2) - 1 do
    Bytes.set bits i (Char.chr ((nibble s.[2 * i] lsl 4) lor nibble s.[(2 * i) + 1]))
  done;
  { width = 4 * len; bits }

let digest t = Digest.to_hex (Digest.bytes t.bits)

let to_json t =
  Json.Obj
    [
      ("width", Json.Int t.width);
      ("edges", Json.Int (edges t));
      ("digest", Json.Str (digest t));
      ("bitmap", Json.Str (to_hex t));
    ]

(* ------------------------------------------------------------------ *)
(* Collector. *)

type collector = {
  cwidth : int;
  cbits : Bytes.t;
  (* Per-track previous site. Lookup/replace only — never traversed —
     so iteration-order nondeterminism (simlint D003) cannot leak. *)
  last : (string * int, int64) Hashtbl.t;
}

let create ?(width = default_width) () =
  if width <= 0 || width mod 8 <> 0 then
    invalid_arg "Coverage.create: width must be a positive multiple of 8";
  { cwidth = width; cbits = Bytes.make (width / 8) '\000'; last = Hashtbl.create 64 }

let set_bit bits idx =
  let byte = idx / 8 and mask = 1 lsl (idx mod 8) in
  Bytes.set bits byte (Char.chr (Char.code (Bytes.get bits byte) lor mask))

(* Track identity: events only form edges with their predecessor on the
   same logical strand. Strands are deliberately cross-process — all
   transitions of a dining instance share one strand, all flips of a
   detector module share another — so an edge records which process's
   event followed which, i.e. the schedule's interleaving (a per-process
   strand would collapse to the fixed phase cycle and lose exactly the
   information a schedule signature exists to capture). *)
let track_of = function
  | Trace.Transition { instance; _ } -> ("t:" ^ instance, 0)
  | Trace.Suspect { detector; _ } | Trace.Trust { detector; _ } -> ("s:" ^ detector, 0)
  | Trace.Crash _ -> ("c", 0)
  | Trace.Note { label; _ } -> ("n:" ^ label, 0)

let site_of = function
  | Trace.Transition { instance; pid; from_; to_ } ->
      fnv_string fnv_basis
        (Printf.sprintf "t|%s|%d|%s|%s" instance pid (Types.phase_to_string from_)
           (Types.phase_to_string to_))
  | Trace.Suspect { detector; owner; target } ->
      fnv_string fnv_basis (Printf.sprintf "s|%s|%d|%d|1" detector owner target)
  | Trace.Trust { detector; owner; target } ->
      fnv_string fnv_basis (Printf.sprintf "s|%s|%d|%d|0" detector owner target)
  | Trace.Crash { pid } -> fnv_string fnv_basis (Printf.sprintf "c|%d" pid)
  | Trace.Note { pid; label; info } ->
      fnv_string fnv_basis (Printf.sprintf "n|%s|%d|%s" label pid info)

let observe c (e : Trace.entry) =
  let track = track_of e.Trace.ev in
  let cur = site_of e.Trace.ev in
  let prev =
    match Hashtbl.find_opt c.last track with
    | Some p -> p
    | None ->
        (* Track-start sentinel site, derived from the track key so the
           first edge of a track is distinct per track. *)
        let name, pid = track in
        fnv_string fnv_basis (Printf.sprintf "start|%s|%d" name pid)
  in
  let edge = fnv_int64 (fnv_int64 fnv_basis prev) cur in
  let idx = Int64.to_int edge land max_int mod c.cwidth in
  set_bit c.cbits idx;
  Hashtbl.replace c.last track cur

let attach c tr =
  Trace.iter tr (observe c);
  Trace.subscribe tr (observe c)

let snapshot c = { width = c.cwidth; bits = Bytes.copy c.cbits }
