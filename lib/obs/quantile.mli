(** Exact quantile digest over integer samples.

    Unlike the fixed-bucket {!Metrics} histograms (whose quantiles are
    only known up to a bucket bound), this digest reports {e exact}
    nearest-rank quantiles: the internal representation is a sorted
    run-length array of (value, count) pairs plus a small pending buffer
    of raw samples, compacted deterministically whenever the buffer
    fills. No reservoir, no sampling, no decay — p999 of a million
    samples is the true 999,000th order statistic. Memory is O(distinct
    values), bounded for tick-valued latencies by the run horizon.

    Everything here is a pure function of the observed sample sequence,
    so same-seed runs serialize byte-identically (the determinism
    contract of the run reports). *)

type t

val create : unit -> t

val add : t -> int -> unit
(** Observe one sample. Amortized O(1); worst case one compaction pass,
    linear in the number of distinct values seen so far. *)

val count : t -> int
val sum : t -> int

val min_value : t -> int option
val max_value : t -> int option
(** [None] while no sample has been observed. *)

val quantile : t -> float -> int option
(** [quantile t q] with [q] in [0, 1] is the nearest-rank [q]-quantile:
    the smallest observed value whose cumulative count reaches
    [ceil (q * n)] (clamped to at least rank 1, so [q = 0.0] is the
    minimum and [q = 1.0] the maximum). [None] when empty. Raises
    [Invalid_argument] outside [0, 1]. *)

val runs : t -> (int * int) list
(** The compacted (value, count) runs in increasing value order — the
    digest's full exact contents (used by tests and merges). *)

val merge : into:t -> t -> unit
(** Multiset union: after [merge ~into src], [into] holds every sample of
    both sides. Order-independent (unlike gauge merges). [src]'s sample
    content is unchanged, though it may be compacted in place. *)

val to_json : t -> Json.t
(** [{"count":N,"sum":S,"min":..,"max":..,"p50":..,"p90":..,"p99":..,
    "p999":..}] with nulls when empty. Deterministic in the samples. *)
