let schema_version = "dinersim-report/1"

type check = { name : string; holds : bool; detail : string }

let check ?(detail = "") name holds = { name; holds; detail }

let of_verdict name (v : Detectors.Properties.verdict) =
  {
    name;
    holds = v.Detectors.Properties.holds;
    detail = String.concat "; " v.Detectors.Properties.details;
  }

let check_to_json c =
  Json.Obj
    [ ("name", Json.Str c.name); ("holds", Json.Bool c.holds); ("detail", Json.Str c.detail) ]

let check_of_json j =
  match (Json.find j "name", Json.find j "holds") with
  | Some (Json.Str name), Some (Json.Bool holds) ->
      let detail = match Json.find j "detail" with Some (Json.Str d) -> d | _ -> "" in
      { name; holds; detail }
  | _ -> failwith "Report.check_of_json: malformed check entry"

let check_json = check_to_json

let make ~cmd ?seed ?horizon ?(config = []) ?metrics ?(checks = []) ?wall () =
  Json.Obj
    [
      ("schema", Json.Str schema_version);
      ("cmd", Json.Str cmd);
      ("seed", match seed with Some s -> Json.Int (Int64.to_int s) | None -> Json.Null);
      ("horizon", match horizon with Some h -> Json.Int h | None -> Json.Null);
      ("config", Json.Obj config);
      ("checks", Json.Arr (List.map check_json checks));
      ( "metrics",
        match metrics with Some m -> Metrics.to_json m | None -> Json.Obj [] );
      ("wall_clock", Option.value ~default:Json.Null wall);
    ]

let write ~path j =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Json.to_string_pretty j))

let validate j =
  (match Json.find j "schema" with
  | Some (Json.Str s) when s = schema_version -> ()
  | Some (Json.Str s) -> failwith (Printf.sprintf "Report.read: unknown schema %S" s)
  | _ -> failwith "Report.read: missing schema tag");
  (match Json.find j "cmd" with
  | Some (Json.Str _) -> ()
  | _ -> failwith "Report.read: missing cmd");
  match Json.find j "checks" with
  | Some (Json.Arr checks) ->
      List.iter
        (fun c ->
          match (Json.find c "name", Json.find c "holds") with
          | Some (Json.Str _), Some (Json.Bool _) -> ()
          | _ -> failwith "Report.read: malformed check entry")
        checks
  | _ -> failwith "Report.read: missing checks array"

(* ------------------------------------------------------------------ *)
(* Campaign summaries: one document per fuzz (or other multi-run)
   campaign, aggregating per-run entries. Deterministic in the root seed,
   like run reports, except for the optional wall_clock field. *)

let campaign_schema_version = "dinersim-campaign/1"

let make_campaign ~cmd ~root_seed ~runs ~violations ?(config = []) ?metrics ?coverage ~entries
    ?wall () =
  Json.Obj
    ([
       ("schema", Json.Str campaign_schema_version);
       ("cmd", Json.Str cmd);
       ("root_seed", Json.Str (Printf.sprintf "0x%Lx" root_seed));
       ("runs", Json.Int runs);
       ("violations", Json.Int violations);
       ("config", Json.Obj config);
       ("entries", Json.Arr entries);
       ( "metrics",
         match metrics with Some m -> Metrics.to_json m | None -> Json.Obj [] );
     ]
    @ (match coverage with Some c -> [ ("coverage", c) ] | None -> [])
    @ [ ("wall_clock", Option.value ~default:Json.Null wall) ])

let validate_campaign j =
  (match Json.find j "schema" with
  | Some (Json.Str s) when s = campaign_schema_version -> ()
  | Some (Json.Str s) -> failwith (Printf.sprintf "Report.read_campaign: unknown schema %S" s)
  | _ -> failwith "Report.read_campaign: missing schema tag");
  (match (Json.find j "runs", Json.find j "violations") with
  | Some (Json.Int _), Some (Json.Int _) -> ()
  | _ -> failwith "Report.read_campaign: missing runs/violations counters");
  (match Json.find j "entries" with
  | Some (Json.Arr _) -> ()
  | _ -> failwith "Report.read_campaign: missing entries array");
  (* The coverage block is optional (older summaries predate it) but must
     be well-formed when present. *)
  match Json.find j "coverage" with
  | None -> ()
  | Some c -> (
      match (Json.find c "width", Json.find c "edges", Json.find c "bitmap") with
      | Some (Json.Int _), Some (Json.Int _), Some (Json.Str _) -> ()
      | _ -> failwith "Report.read_campaign: malformed coverage block")

(* ------------------------------------------------------------------ *)
(* simlint reports: the determinism linter's canonical document. Obs
   validates the shape only — the linter itself lives in tools/simlint —
   so `dinersim report` can vet all three schema families. *)

let simlint_schema_version = "simlint-report/1"

let validate_simlint j =
  (match Json.find j "schema" with
  | Some (Json.Str s) when s = simlint_schema_version -> ()
  | Some (Json.Str s) -> failwith (Printf.sprintf "Report.read_simlint: unknown schema %S" s)
  | _ -> failwith "Report.read_simlint: missing schema tag");
  List.iter
    (fun k ->
      match Json.find j k with
      | Some (Json.Int _) -> ()
      | _ -> failwith (Printf.sprintf "Report.read_simlint: missing %s counter" k))
    [ "files_scanned"; "open"; "suppressed"; "baselined" ];
  (match Json.find j "findings" with
  | Some (Json.Arr findings) ->
      List.iter
        (fun f ->
          match (Json.find f "rule", Json.find f "file", Json.find f "line", Json.find f "status")
          with
          | Some (Json.Str _), Some (Json.Str _), Some (Json.Int _), Some (Json.Str _) -> ()
          | _ -> failwith "Report.read_simlint: malformed finding entry")
        findings
  | _ -> failwith "Report.read_simlint: missing findings array");
  match Json.find j "stale_baseline" with
  | Some (Json.Arr _) -> ()
  | _ -> failwith "Report.read_simlint: missing stale_baseline array"

(* ------------------------------------------------------------------ *)
(* Model-checking reports: one document per exhaustive [dinersim check]
   run, written by lib/mc. As with simlint, Obs validates the shape only
   — obs cannot depend on the explorer — so `dinersim report` can vet all
   four schema families. *)

let mc_schema_version = "dinersim-mc/1"

let validate_mc j =
  (match Json.find j "schema" with
  | Some (Json.Str s) when s = mc_schema_version -> ()
  | Some (Json.Str s) -> failwith (Printf.sprintf "Report.read_mc: unknown schema %S" s)
  | _ -> failwith "Report.read_mc: missing schema tag");
  List.iter
    (fun k ->
      match Json.find j k with
      | Some (Json.Int _) -> ()
      | _ -> failwith (Printf.sprintf "Report.read_mc: missing %s counter" k))
    [ "crash_schedules"; "schedules"; "pruned"; "violations"; "max_decisions" ];
  (match Json.find j "truncated" with
  | Some (Json.Bool _) -> ()
  | _ -> failwith "Report.read_mc: missing truncated flag");
  match Json.find j "counterexamples" with
  | Some (Json.Arr cexs) ->
      List.iter
        (fun c ->
          match (Json.find c "digest", Json.find c "repro") with
          | Some (Json.Str _), Some (Json.Obj _) -> ()
          | _ -> failwith "Report.read_mc: malformed counterexample entry")
        cexs
  | _ -> failwith "Report.read_mc: missing counterexamples array"

let slurp ~path =
  let ic = open_in path in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  Json.of_string content

let read ~path =
  let j = slurp ~path in
  validate j;
  j

let read_campaign ~path =
  let j = slurp ~path in
  validate_campaign j;
  j

let read_simlint ~path =
  let j = slurp ~path in
  validate_simlint j;
  j

let read_mc ~path =
  let j = slurp ~path in
  validate_mc j;
  j

let read_any ~path =
  let j = slurp ~path in
  match Json.find j "schema" with
  | Some (Json.Str s) when s = campaign_schema_version ->
      validate_campaign j;
      `Campaign j
  | Some (Json.Str s) when s = simlint_schema_version ->
      validate_simlint j;
      `Simlint j
  | Some (Json.Str s) when s = mc_schema_version ->
      validate_mc j;
      `Mc j
  | _ ->
      validate j;
      `Run j

let passed j =
  match Json.find j "checks" with
  | Some (Json.Arr checks) ->
      List.for_all (fun c -> match Json.find c "holds" with Some (Json.Bool b) -> b | _ -> false) checks
  | _ -> false

let strip_wall_clock = function
  | Json.Obj fields -> Json.Obj (List.filter (fun (k, _) -> k <> "wall_clock") fields)
  | j -> j

(* Latency-digest lines for the human summaries: approximate quantiles
   reconstructed from histogram bucket counts (bounded by the bucket's
   inclusive upper bound, hence "<="), plus the exact digests when the
   report carries them. *)
let pp_metrics_latencies fmt j =
  match Json.find j "metrics" with
  | None -> ()
  | Some m ->
      (match Json.find m "histograms" with
      | Some (Json.Obj hists) ->
          List.iter
            (fun (name, h) ->
              let count = match Json.find h "count" with Some (Json.Int n) -> n | _ -> 0 in
              if count > 0 then begin
                let buckets =
                  match Json.find h "buckets" with
                  | Some (Json.Arr bs) ->
                      List.map
                        (fun b ->
                          let le = Json.find b "le" in
                          let c =
                            match Json.find b "count" with Some (Json.Int c) -> c | _ -> 0
                          in
                          (le, c))
                        bs
                  | _ -> []
                in
                let last_finite =
                  List.fold_left
                    (fun acc (le, _) -> match le with Some (Json.Int b) -> Some b | _ -> acc)
                    None buckets
                in
                let approx q =
                  let rank = max 1 (int_of_float (ceil (q *. float_of_int count))) in
                  let rec go acc = function
                    | [] -> "?"
                    | (le, c) :: rest ->
                        if acc + c >= rank then
                          match le with
                          | Some (Json.Int b) -> Printf.sprintf "<=%d" b
                          | _ -> (
                              (* overflow bucket *)
                              match last_finite with
                              | Some b -> Printf.sprintf ">%d" b
                              | None -> "?")
                        else go (acc + c) rest
                  in
                  go 0 buckets
                in
                Format.fprintf fmt "  %s: n=%d p50%s p99%s (bucket bounds)@." name count
                  (approx 0.5) (approx 0.99)
              end)
            hists
      | _ -> ());
      (match Json.find m "quantiles" with
      | Some (Json.Obj qs) ->
          List.iter
            (fun (name, q) ->
              let int k = match Json.find q k with Some (Json.Int n) -> Some n | _ -> None in
              match int "count" with
              | Some n when n > 0 ->
                  let s k = match int k with Some v -> string_of_int v | None -> "-" in
                  Format.fprintf fmt "  %s: n=%d p50=%s p90=%s p99=%s p999=%s (exact)@." name n
                    (s "p50") (s "p90") (s "p99") (s "p999")
              | _ -> ())
            qs
      | _ -> ())

let pp_summary fmt j =
  let field k = match Json.find j k with Some v -> v | None -> Json.Null in
  Format.fprintf fmt "report: cmd=%s seed=%s horizon=%s@."
    (match field "cmd" with Json.Str s -> s | _ -> "?")
    (match field "seed" with Json.Int n -> string_of_int n | _ -> "-")
    (match field "horizon" with Json.Int n -> string_of_int n | _ -> "-");
  (match field "checks" with
  | Json.Arr [] -> Format.fprintf fmt "  (no checks)@."
  | Json.Arr checks ->
      List.iter
        (fun c ->
          let name = match Json.find c "name" with Some (Json.Str s) -> s | _ -> "?" in
          let holds = match Json.find c "holds" with Some (Json.Bool b) -> b | _ -> false in
          let detail = match Json.find c "detail" with Some (Json.Str s) -> s | _ -> "" in
          Format.fprintf fmt "  %-34s %s%s@." name
            (if holds then "ok" else "FAIL")
            (if detail = "" then "" else " — " ^ detail))
        checks
  | _ -> ());
  pp_metrics_latencies fmt j;
  Format.fprintf fmt "  all checks: %s@." (if passed j then "ok" else "FAIL")

let pp_campaign_summary fmt j =
  let str k = match Json.find j k with Some (Json.Str s) -> s | _ -> "?" in
  let int k = match Json.find j k with Some (Json.Int n) -> n | _ -> 0 in
  Format.fprintf fmt "campaign: cmd=%s root_seed=%s runs=%d violations=%d@." (str "cmd")
    (str "root_seed") (int "runs") (int "violations");
  (match Json.find j "entries" with
  | Some (Json.Arr entries) ->
      List.iter
        (fun e ->
          let run = match Json.find e "run" with Some (Json.Int n) -> n | _ -> -1 in
          let failed =
            match Json.find e "failed" with
            | Some (Json.Arr l) -> List.filter_map (function Json.Str s -> Some s | _ -> None) l
            | _ -> []
          in
          Format.fprintf fmt "  run %04d: %s@." run (String.concat ", " failed))
        entries
  | _ -> ());
  (match Json.find j "coverage" with
  | Some c ->
      let cint k = match Json.find c k with Some (Json.Int n) -> n | _ -> 0 in
      let growth =
        match Json.find c "growth" with
        | Some (Json.Arr g) -> List.filter_map (function Json.Int n -> Some n | _ -> None) g
        | _ -> []
      in
      let first = match growth with n :: _ -> n | [] -> 0 in
      Format.fprintf fmt "  coverage: %d/%d edge buckets (run 0: %d)@." (cint "edges")
        (cint "width") first
  | None -> ());
  pp_metrics_latencies fmt j;
  Format.fprintf fmt "  verdict: %s@." (if int "violations" = 0 then "ok" else "FAIL")

let pp_simlint_summary fmt j =
  let int k = match Json.find j k with Some (Json.Int n) -> n | _ -> 0 in
  Format.fprintf fmt "simlint: %d file(s), %d open, %d suppressed, %d baselined@."
    (int "files_scanned") (int "open") (int "suppressed") (int "baselined");
  (match Json.find j "findings" with
  | Some (Json.Arr findings) ->
      List.iter
        (fun f ->
          let str k = match Json.find f k with Some (Json.Str s) -> s | _ -> "?" in
          let line = match Json.find f "line" with Some (Json.Int n) -> n | _ -> 0 in
          if str "status" = "open" then
            Format.fprintf fmt "  %s %s:%d %s@." (str "rule") (str "file") line (str "msg"))
        findings
  | _ -> ());
  let stale =
    match Json.find j "stale_baseline" with Some (Json.Arr l) -> List.length l | _ -> 0
  in
  if stale > 0 then Format.fprintf fmt "  stale baseline entries: %d@." stale;
  Format.fprintf fmt "  verdict: %s@." (if int "open" = 0 && stale = 0 then "ok" else "FAIL")

let pp_mc_summary fmt j =
  let int k = match Json.find j k with Some (Json.Int n) -> n | _ -> 0 in
  let truncated =
    match Json.find j "truncated" with Some (Json.Bool b) -> b | _ -> false
  in
  Format.fprintf fmt
    "mc: %d schedule(s) over %d crash schedule(s), %d branch(es) pruned, max %d decision(s)%s@."
    (int "schedules") (int "crash_schedules") (int "pruned") (int "max_decisions")
    (if truncated then " [TRUNCATED]" else "");
  (match Json.find j "counterexamples" with
  | Some (Json.Arr cexs) ->
      List.iter
        (fun c ->
          let str k = match Json.find c k with Some (Json.Str s) -> s | _ -> "?" in
          let idx = match Json.find c "schedule_index" with Some (Json.Int n) -> n | _ -> -1 in
          let failed =
            match Json.find c "failed" with
            | Some (Json.Arr l) -> List.filter_map (function Json.Str s -> Some s | _ -> None) l
            | _ -> []
          in
          Format.fprintf fmt "  schedule %d: %s (repro %s)@." idx
            (String.concat ", " failed) (str "digest"))
        cexs
  | _ -> ());
  pp_metrics_latencies fmt j;
  Format.fprintf fmt "  verdict: %s@."
    (if int "violations" = 0 && not truncated then "ok"
     else if int "violations" = 0 then "ok (truncated)"
     else "FAIL")
