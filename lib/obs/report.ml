let schema_version = "dinersim-report/1"

type check = { name : string; holds : bool; detail : string }

let check ?(detail = "") name holds = { name; holds; detail }

let of_verdict name (v : Detectors.Properties.verdict) =
  {
    name;
    holds = v.Detectors.Properties.holds;
    detail = String.concat "; " v.Detectors.Properties.details;
  }

let check_json c =
  Json.Obj
    [ ("name", Json.Str c.name); ("holds", Json.Bool c.holds); ("detail", Json.Str c.detail) ]

let make ~cmd ?seed ?horizon ?(config = []) ?metrics ?(checks = []) ?wall () =
  Json.Obj
    [
      ("schema", Json.Str schema_version);
      ("cmd", Json.Str cmd);
      ("seed", match seed with Some s -> Json.Int (Int64.to_int s) | None -> Json.Null);
      ("horizon", match horizon with Some h -> Json.Int h | None -> Json.Null);
      ("config", Json.Obj config);
      ("checks", Json.Arr (List.map check_json checks));
      ( "metrics",
        match metrics with Some m -> Metrics.to_json m | None -> Json.Obj [] );
      ("wall_clock", Option.value ~default:Json.Null wall);
    ]

let write ~path j =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Json.to_string_pretty j))

let validate j =
  (match Json.find j "schema" with
  | Some (Json.Str s) when s = schema_version -> ()
  | Some (Json.Str s) -> failwith (Printf.sprintf "Report.read: unknown schema %S" s)
  | _ -> failwith "Report.read: missing schema tag");
  (match Json.find j "cmd" with
  | Some (Json.Str _) -> ()
  | _ -> failwith "Report.read: missing cmd");
  match Json.find j "checks" with
  | Some (Json.Arr checks) ->
      List.iter
        (fun c ->
          match (Json.find c "name", Json.find c "holds") with
          | Some (Json.Str _), Some (Json.Bool _) -> ()
          | _ -> failwith "Report.read: malformed check entry")
        checks
  | _ -> failwith "Report.read: missing checks array"

let read ~path =
  let ic = open_in path in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let j = Json.of_string content in
  validate j;
  j

let passed j =
  match Json.find j "checks" with
  | Some (Json.Arr checks) ->
      List.for_all (fun c -> match Json.find c "holds" with Some (Json.Bool b) -> b | _ -> false) checks
  | _ -> false

let strip_wall_clock = function
  | Json.Obj fields -> Json.Obj (List.filter (fun (k, _) -> k <> "wall_clock") fields)
  | j -> j

let pp_summary fmt j =
  let field k = match Json.find j k with Some v -> v | None -> Json.Null in
  Format.fprintf fmt "report: cmd=%s seed=%s horizon=%s@."
    (match field "cmd" with Json.Str s -> s | _ -> "?")
    (match field "seed" with Json.Int n -> string_of_int n | _ -> "-")
    (match field "horizon" with Json.Int n -> string_of_int n | _ -> "-");
  (match field "checks" with
  | Json.Arr [] -> Format.fprintf fmt "  (no checks)@."
  | Json.Arr checks ->
      List.iter
        (fun c ->
          let name = match Json.find c "name" with Some (Json.Str s) -> s | _ -> "?" in
          let holds = match Json.find c "holds" with Some (Json.Bool b) -> b | _ -> false in
          let detail = match Json.find c "detail" with Some (Json.Str s) -> s | _ -> "" in
          Format.fprintf fmt "  %-34s %s%s@." name
            (if holds then "ok" else "FAIL")
            (if detail = "" then "" else " — " ^ detail))
        checks
  | _ -> ());
  Format.fprintf fmt "  all checks: %s@." (if passed j then "ok" else "FAIL")
