(** Schedule-coverage signatures.

    An AFL-style edge bitmap over a run's behavioural event stream: each
    trace event hashes to a 64-bit site (hand-rolled FNV-1a — never
    [Hashtbl.hash], whose output is unspecified across compiler
    versions), consecutive sites on the same logical track (all phase
    transitions of a dining instance, all flips of a detector module, all
    notes of a label, the crash stream) form edges, and each edge sets
    one bit of a fixed-width bitmap. Tracks span processes on purpose:
    an edge records which process's event followed which, so the bitmap
    fingerprints the schedule's interleaving, not just each process's
    (fixed) phase cycle. Equal signatures mean the runs exercised the
    same set of event successions; a campaign's union bitmap growing
    means new schedules are still being found.

    Signatures are a pure function of the trace, hence of the engine
    seed: same seed ⇒ byte-identical bitmap, regardless of worker count
    or merge order (union is commutative). *)

type t
(** A finished signature: plain immutable data (safe inside structurally
    compared run outcomes). *)

val default_width : int
(** 4096 edge buckets (512 bytes). *)

val empty : ?width:int -> unit -> t
(** All-zero signature. Raises [Invalid_argument] unless [width] is a
    positive multiple of 8. *)

val width : t -> int

val union : t -> t -> t
(** Bitwise or; commutative and associative. Raises [Invalid_argument]
    when the widths differ. *)

val edges : t -> int
(** Number of set edge buckets (popcount). *)

val new_edges : seen:t -> t -> int
(** Edge buckets set in the signature but not in [seen] — the marginal
    coverage a run adds to a campaign's accumulator. *)

val equal : t -> t -> bool

val to_hex : t -> string
(** Lowercase hex of the bitmap bytes (LSB-first bit order within each
    byte); [width / 4] characters. *)

val of_hex : string -> t
(** Inverse of {!to_hex}. Raises [Invalid_argument] on odd-length, empty
    or non-hex input. *)

val digest : t -> string
(** MD5 hex of the bitmap bytes — a compact pinnable fingerprint. *)

val to_json : t -> Json.t
(** [{"width":W,"edges":E,"digest":"..","bitmap":"hex.."}]. *)

(** {1 Collecting} *)

type collector

val create : ?width:int -> unit -> collector
(** Fresh collector. Raises like {!empty}. *)

val observe : collector -> Dsim.Trace.entry -> unit

val attach : collector -> Dsim.Trace.t -> unit
(** [iter] over already-recorded entries, then [subscribe] for the rest
    of the run. *)

val snapshot : collector -> t
(** The signature accumulated so far (a copy; the collector may keep
    observing). *)
