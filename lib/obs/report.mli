(** Machine-readable run reports.

    One JSON document per run, schema ["dinersim-report/1"]:

    {v
    {
      "schema":  "dinersim-report/1",
      "cmd":     "dining",               // subcommand / experiment name
      "seed":    7,                      // null when not seed-driven
      "horizon": 12000,                  // null when open-ended
      "config":  { ... },                // free-form, flat, deterministic
      "checks":  [ {"name":..., "holds":..., "detail":...} ],
      "metrics": { ... },                // Metrics.to_json snapshot
      "wall_clock": { ... }              // the only nondeterministic field
    }
    v}

    Everything except ["wall_clock"] is deterministic in the seed, so two
    reports from identical runs are byte-identical once that one key is
    dropped ({!strip_wall_clock}). *)

val schema_version : string

type check = { name : string; holds : bool; detail : string }

val check : ?detail:string -> string -> bool -> check

val of_verdict : string -> Detectors.Properties.verdict -> check
(** Lift a property-checker verdict into a report check. *)

val check_to_json : check -> Json.t
val check_of_json : Json.t -> check
(** Inverse of {!check_to_json} ([detail] defaults to [""]); raises
    [Failure] on malformed input. Used by the fuzz repro artifacts, which
    embed recorded check verdicts. *)

val make :
  cmd:string ->
  ?seed:int64 ->
  ?horizon:int ->
  ?config:(string * Json.t) list ->
  ?metrics:Metrics.t ->
  ?checks:check list ->
  ?wall:Json.t ->
  unit ->
  Json.t

val write : path:string -> Json.t -> unit
(** Pretty-printed with a trailing newline. *)

val read : path:string -> Json.t
(** Parse and validate: correct schema tag, [cmd] string, well-formed
    [checks] array. Raises [Failure] with a reason on invalid input. *)

val passed : Json.t -> bool
(** True iff every check holds. *)

val strip_wall_clock : Json.t -> Json.t
(** Drop the ["wall_clock"] field — the deterministic residue used to
    compare reports across runs. *)

val pp_summary : Format.formatter -> Json.t -> unit
(** Short human rendering: cmd, seed, pass/fail per check, and a latency
    digest per non-empty metrics histogram (approximate p50/p99 bucket
    bounds) and exact-quantile entry (true p50/p90/p99/p999). *)

(** {1 Campaign summaries}

    A second document kind, schema ["dinersim-campaign/1"], for multi-run
    drivers (the schedule fuzzer): the root seed, run/violation counters,
    and one entry per executed run. Everything except ["wall_clock"] is
    deterministic in the root seed. *)

val campaign_schema_version : string

val make_campaign :
  cmd:string ->
  root_seed:int64 ->
  runs:int ->
  violations:int ->
  ?config:(string * Json.t) list ->
  ?metrics:Metrics.t ->
  ?coverage:Json.t ->
  entries:Json.t list ->
  ?wall:Json.t ->
  unit ->
  Json.t
(** [metrics] is the campaign's merged per-run registry snapshot — part of
    the canonical body (it is deterministic in the root seed), unlike
    ["wall_clock"]. Omitted, the field is an empty object. [coverage] is
    the campaign's schedule-coverage block
    ([{"width","edges","digest","growth","bitmap"}], see
    {!Coverage.to_json} and {!Check}'s campaign driver); also canonical.
    Omitted, the field is absent. *)

val read_campaign : path:string -> Json.t
(** Parse and validate a campaign summary: schema tag, run/violation
    counters, entries array. Raises [Failure] on invalid input. *)

val read_any :
  path:string -> [ `Run of Json.t | `Campaign of Json.t | `Simlint of Json.t | `Mc of Json.t ]
(** Parse any of the four document kinds, dispatching on the schema tag
    (documents without a campaign, simlint or mc tag are validated as run
    reports). Raises [Failure] on invalid input. *)

val pp_campaign_summary : Format.formatter -> Json.t -> unit
(** Short human rendering of a campaign summary: counters, one line per
    violation entry, the schedule-coverage line when the summary carries
    a coverage block, and the same latency digests as {!pp_summary}. *)

(** {1 simlint reports}

    The third document kind, schema ["simlint-report/1"], written by the
    determinism linter in [tools/simlint]. Obs validates the shape only
    (counters, findings array with rule/file/line/status, stale-baseline
    array) so reports can be vetted without linking the linter. *)

val simlint_schema_version : string

val validate_simlint : Json.t -> unit
(** Raises [Failure] with a reason on malformed input. *)

val read_simlint : path:string -> Json.t
(** Parse and validate a simlint report. Raises [Failure] on invalid
    input. *)

val pp_simlint_summary : Format.formatter -> Json.t -> unit
(** Short human rendering: counters, each open finding, and the gate
    verdict (ok iff zero open findings and no stale baseline entry). *)

(** {1 Model-checking reports}

    The fourth document kind, schema ["dinersim-mc/1"], written by the
    bounded exhaustive explorer in [lib/mc] ([dinersim check]). Obs
    validates the shape only (schedule/prune/violation counters, the
    truncation flag, and a counterexamples array whose entries carry a
    digest and an embedded ["fuzz-repro/1"] document) so reports can be
    vetted without linking the explorer. *)

val mc_schema_version : string

val validate_mc : Json.t -> unit
(** Raises [Failure] with a reason on malformed input. *)

val read_mc : path:string -> Json.t
(** Parse and validate an mc report. Raises [Failure] on invalid input. *)

val pp_mc_summary : Format.formatter -> Json.t -> unit
(** Short human rendering: schedule/prune counters, one line per
    counterexample, and the verdict (ok iff zero violations). *)
