(** Machine-readable run reports.

    One JSON document per run, schema ["dinersim-report/1"]:

    {v
    {
      "schema":  "dinersim-report/1",
      "cmd":     "dining",               // subcommand / experiment name
      "seed":    7,                      // null when not seed-driven
      "horizon": 12000,                  // null when open-ended
      "config":  { ... },                // free-form, flat, deterministic
      "checks":  [ {"name":..., "holds":..., "detail":...} ],
      "metrics": { ... },                // Metrics.to_json snapshot
      "wall_clock": { ... }              // the only nondeterministic field
    }
    v}

    Everything except ["wall_clock"] is deterministic in the seed, so two
    reports from identical runs are byte-identical once that one key is
    dropped ({!strip_wall_clock}). *)

val schema_version : string

type check = { name : string; holds : bool; detail : string }

val check : ?detail:string -> string -> bool -> check

val of_verdict : string -> Detectors.Properties.verdict -> check
(** Lift a property-checker verdict into a report check. *)

val make :
  cmd:string ->
  ?seed:int64 ->
  ?horizon:int ->
  ?config:(string * Json.t) list ->
  ?metrics:Metrics.t ->
  ?checks:check list ->
  ?wall:Json.t ->
  unit ->
  Json.t

val write : path:string -> Json.t -> unit
(** Pretty-printed with a trailing newline. *)

val read : path:string -> Json.t
(** Parse and validate: correct schema tag, [cmd] string, well-formed
    [checks] array. Raises [Failure] with a reason on invalid input. *)

val passed : Json.t -> bool
(** True iff every check holds. *)

val strip_wall_clock : Json.t -> Json.t
(** Drop the ["wall_clock"] field — the deterministic residue used to
    compare reports across runs. *)

val pp_summary : Format.formatter -> Json.t -> unit
(** Short human rendering: cmd, seed, pass/fail per check. *)
