(** Standard engine instrumentation.

    {!install} wires a {!Metrics} registry to a live engine:

    - an [on_tick] hook samples per-tick state: histogram
      [engine.in_flight_depth] (undelivered packets after the tick), gauge
      [engine.live_procs], counter [engine.ticks];
    - a trace subscriber folds events as they happen: counters
      [detector.<name>.flips], [detector.<name>.suspects],
      [detector.<name>.trusts], [engine.crashes],
      [dining.<instance>.meals], and — via a streaming {!Span} collector
      over Hungry→Eating spans — histogram
      [dining.<instance>.hunger_latency] plus the exact-quantile digest
      [dining.<instance>.hunger_latency_exact] (ticks from entering
      Hungry to entering Eating, one sample per completed hunger
      session), and the throughput series
      [dining.<instance>.meals_per_window] ({!meals_window_width}-tick
      windows).

    {!finalize} snapshots end-of-run totals: gauges [engine.clock],
    [engine.sent_total], [engine.in_flight_final] and per-tag
    [engine.sent.<tag>].

    All of the above is deterministic in the engine seed. Wall-clock
    timing (elapsed seconds, ticks/sec) is measured too but deliberately
    kept {e outside} the registry — it is only available through
    {!wall_json}, which reports feed into their segregated ["wall_clock"]
    section. *)

type t

val meals_window_width : int
(** Window width (ticks) of the [dining.<instance>.meals_per_window]
    throughput series. *)

val install : metrics:Metrics.t -> Dsim.Engine.t -> t
(** Install the hooks. Call before running the engine. *)

val finalize : t -> unit
(** Record end-of-run totals and stop the wall clock; idempotent. *)

val wall_json : t -> Json.t
(** [{"elapsed_s":...,"ticks":...,"ticks_per_s":...}] — nondeterministic,
    for the report's ["wall_clock"] section only. Finalizes if needed. *)

val now_s : unit -> float
(** Wall-clock seconds. This module is the one sanctioned clock reader
    (simlint D001): use this only for quantities that end up in a report's
    segregated ["wall_clock"] section, never for anything canonical. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] is [(f (), elapsed wall seconds)] — same caveat as {!now_s}. *)
