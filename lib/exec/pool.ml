(* Domain-based worker pool for embarrassingly parallel, *deterministic*
   workloads.

   The contract that keeps `-j N` byte-identical to `-j 1`:

   - the caller supplies a pure-by-index task [f : int -> 'a]; every run's
     inputs (PRNG stream, config, ...) must be derived from the index alone
     (see [Dsim.Prng.derive]), never from state shared with other indices;
   - results land in a pre-sized array slot owned by exactly one index, so
     the merged output is in index order no matter which domain ran what;
   - work is handed out by an atomic next-index counter (dynamic load
     balancing); the schedule varies between runs, the results cannot;
   - exceptions are deterministic too: after all domains join, the
     lowest-index failure (if any) is re-raised in the caller's domain.

   simlint's D009 rule polices the first clause: worker closures must not
   reach module-level mutable state. *)

type 'a outcome = Done of 'a | Raised of exn

let default_jobs () = Domain.recommended_domain_count ()

let clamp ~jobs n =
  if jobs < 1 then invalid_arg "Pool.map: jobs must be >= 1";
  min jobs (max 1 n)

let map ?(jobs = 1) n f =
  if n < 0 then invalid_arg "Pool.map: negative count";
  let jobs = clamp ~jobs n in
  if jobs = 1 then Array.init n f
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (* Each slot is written by exactly one domain and read only after
             the joins below, which publish the writes. *)
          results.(i) <- Some (try Done (f i) with e -> Raised e);
          loop ()
        end
      in
      loop ()
    in
    let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains;
    Array.map
      (function
        | Some (Done v) -> v
        | Some (Raised e) -> raise e
        | None -> assert false (* every index < n was claimed exactly once *))
      results
  end

let iter ?jobs n f = ignore (map ?jobs n (fun i : unit -> f i))
