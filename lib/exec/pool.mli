(** Deterministic Domain-based worker pool.

    [map ~jobs n f] evaluates [f i] for every [i] in [0 .. n-1] across
    [jobs] domains and returns the results {e in index order}: the output
    is a pure function of [f] and [n], independent of [jobs] and of the
    scheduling of the underlying domains — provided [f] derives everything
    it needs from its index (e.g. a {!Dsim.Prng.derive}d stream) and
    touches no state shared across indices. simlint rule D009 polices the
    latter for code in this repository.

    Exceptions propagate deterministically: if any task raises, the
    exception of the {e lowest} failing index is re-raised in the calling
    domain after all workers have drained. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the `-j` default everywhere. *)

val map : ?jobs:int -> int -> (int -> 'a) -> 'a array
(** [map ~jobs n f] is [[| f 0; f 1; ...; f (n-1) |]], computed on up to
    [jobs] domains (default 1; clamped to [n]). Raises [Invalid_argument]
    on [jobs < 1] or [n < 0]. *)

val iter : ?jobs:int -> int -> (int -> unit) -> unit
(** [iter ~jobs n f] is [map] with unit results. *)
