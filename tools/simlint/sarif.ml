(* SARIF 2.1.0 emitter.

   One run, one tool ("simlint"), one result per finding. The document is
   built with the canonical Obs.Json printer, so its bytes are a pure
   function of the findings — the fixture test pins the fixture corpus'
   SARIF byte-exactly, and CI can upload the file for PR annotation without
   any post-processing.

   Disposition mapping: an open finding is a plain result; a suppressed one
   carries [{"kind":"inSource"}] (the [simlint: allow] comment); a
   baselined one carries [{"kind":"external"}] (tools/simlint/baseline.json).
   Code-scanning UIs hide suppressed results but keep them auditable. *)

let version = "2.1.0"
let schema_uri = "https://json.schemastore.org/sarif-2.1.0.json"
let tool_version = "4.0.0"

let level_of (s : Finding.severity) =
  match s with Finding.Error -> "error" | Finding.Warning -> "warning" | Finding.Note -> "note"

let rule_json (id, short) =
  Obs.Json.Obj
    [
      ("id", Obs.Json.Str id);
      ("shortDescription", Obs.Json.Obj [ ("text", Obs.Json.Str short) ]);
      ( "defaultConfiguration",
        Obs.Json.Obj [ ("level", Obs.Json.Str (level_of (Finding.severity_of_rule id))) ] );
    ]

let result_json ((f : Finding.t), (status : Finding.status)) =
  let location =
    Obs.Json.Obj
      [
        ( "physicalLocation",
          Obs.Json.Obj
            [
              ( "artifactLocation",
                Obs.Json.Obj [ ("uri", Obs.Json.Str f.Finding.file) ] );
              ( "region",
                Obs.Json.Obj
                  [
                    ("startLine", Obs.Json.Int f.Finding.line);
                    ("startColumn", Obs.Json.Int (f.Finding.col + 1));
                  ] );
            ] );
      ]
  in
  let base =
    [
      ("ruleId", Obs.Json.Str f.Finding.rule);
      ("level", Obs.Json.Str (level_of f.Finding.severity));
      ("message", Obs.Json.Obj [ ("text", Obs.Json.Str f.Finding.msg) ]);
      ("locations", Obs.Json.Arr [ location ]);
    ]
  in
  (* Interprocedural findings expose their symbol-chain key (the same one
     the baseline matches on) as a stable fingerprint, so code-scanning
     dedup survives line drift just like the baseline does. *)
  let fingerprints =
    match f.Finding.sym with
    | Some s ->
        [ ("partialFingerprints", Obs.Json.Obj [ ("simlintSym/v1", Obs.Json.Str s) ]) ]
    | None -> []
  in
  let base = base @ fingerprints in
  let suppressions =
    match status with
    | Finding.Open -> []
    | Finding.Suppressed ->
        [ ("suppressions", Obs.Json.Arr [ Obs.Json.Obj [ ("kind", Obs.Json.Str "inSource") ] ]) ]
    | Finding.Baselined ->
        [ ("suppressions", Obs.Json.Arr [ Obs.Json.Obj [ ("kind", Obs.Json.Str "external") ] ]) ]
  in
  Obs.Json.Obj (base @ suppressions)

let of_findings (findings : (Finding.t * Finding.status) list) : Obs.Json.t =
  Obs.Json.Obj
    [
      ("version", Obs.Json.Str version);
      ("$schema", Obs.Json.Str schema_uri);
      ( "runs",
        Obs.Json.Arr
          [
            Obs.Json.Obj
              [
                ( "tool",
                  Obs.Json.Obj
                    [
                      ( "driver",
                        Obs.Json.Obj
                          [
                            ("name", Obs.Json.Str "simlint");
                            ("version", Obs.Json.Str tool_version);
                            ( "informationUri",
                              Obs.Json.Str "DESIGN.md#determinism-discipline-toolssimlint" );
                            ("rules", Obs.Json.Arr (List.map rule_json Rules.catalog));
                          ] );
                    ] );
                ("columnKind", Obs.Json.Str "utf16CodeUnits");
                ("results", Obs.Json.Arr (List.map result_json findings));
              ];
          ] );
    ]

let to_string findings = Obs.Json.to_string (of_findings findings)

let write ~path findings =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string findings);
      output_char oc '\n')
