(* The determinism & simulation-hygiene rules, as one Parsetree walk.

   Rules (ids are stable; suppressions and the baseline key on them):

   D001  wall-clock access ([Unix.gettimeofday], [Unix.time], [Unix.localtime],
         [Unix.gmtime], [Sys.time]) outside the allowlisted module set.
         Simulated protocols must read time from [Context.now]; the only
         legitimate wall-clock consumer is [Obs.Instrument], which segregates
         it from the deterministic report body.
   D002  ambient randomness: any [Random.*], [Hashtbl.randomize], or
         [Hashtbl.create ~random:...], plus [open Random] / module aliases of
         [Random]. All stochastic choice flows through the seeded
         [Dsim.Prng].
   D003  [Hashtbl.iter] anywhere, and [Hashtbl.fold] whose result is not
         immediately piped through [List.sort]/[List.sort_uniq]/
         [List.stable_sort]/[List.fast_sort]. Hashtable order is a function
         of the hash function and insertion history, so any behaviour that
         escapes a traversal unsorted is a determinism hazard (the
         consensus-coordinator bug class).
   D004  [Obj.magic] and physical equality [==] / [!=] in lib code. Physical
         equality distinguishes structurally equal values, so results depend
         on sharing decisions the GC and optimiser are free to change.
   D006  polymorphic compare/hash on non-scalar simulation state, lib only:
         [=] / [<>] / [compare] applied to a syntactically structured operand
         (tuple, record, array, non-empty list, constructor or variant with a
         payload), and any use of [Hashtbl.hash]/[Hashtbl.seeded_hash]/
         [Hashtbl.hash_param]. Polymorphic compare on structured state walks
         representation details (and raises on closures); the hash is an
         implementation artefact of the runtime. Typed comparators or pattern
         matching say what is actually meant.
   D007  catch-all [try ... with _ ->] in lib code. A wildcard handler
         swallows everything, including monitor-violation and invariant
         exceptions the harness relies on to fail loudly; name the exceptions
         the site can genuinely handle.
   D008  module-level mutable state in lib: a structure-top-level [let] bound
         to [ref ...], [Hashtbl.create ...], [Queue.create]/[Stack.create]/
         [Buffer.create]/[Bytes.create]/[Vec.create] or [Array.make].
         Campaign drivers run many engines in one process; state that lives
         at module level leaks between back-to-back runs, so run state must
         hang off the engine/component instance.

   (D005 — lib module missing its .mli — is a file-set rule; D009 —
   parallel worker dispatch reaching shared mutable state — and D010 —
   interprocedural nondeterminism taint — need the whole-project call
   graph. All three live outside this per-file walk, in [Driver] and
   [Taint].)

   The walk is purely syntactic: module aliasing or [open Unix] can evade
   path matching. That is acceptable for a hygiene gate — the point is to
   make the compliant spelling the path of least resistance, and reviewers
   catch deliberate evasion. *)

type config = {
  file : string;  (** reported path *)
  lib : bool;  (** D004 applies only to lib code *)
  wallclock_ok : bool;  (** file is in the D001 allowlist *)
}

let sort_heads = [ "List.sort"; "List.sort_uniq"; "List.stable_sort"; "List.fast_sort" ]
let wallclock = [ "Unix.gettimeofday"; "Unix.time"; "Unix.localtime"; "Unix.gmtime"; "Sys.time" ]
let poly_hash = [ "Hashtbl.hash"; "Hashtbl.seeded_hash"; "Hashtbl.hash_param" ]

let mutable_heads =
  [
    "ref"; "Hashtbl.create"; "Queue.create"; "Stack.create"; "Buffer.create"; "Bytes.create";
    "Vec.create"; "Dsim.Vec.create"; "Array.make";
  ]

(* One row per rule id: short description used by the SARIF [rules] array and
   the DESIGN.md table. Kept here so adding a rule forces the metadata. *)
let catalog =
  [
    ("D001", "wall-clock access outside Obs.Instrument");
    ("D002", "ambient randomness outside the seeded Dsim.Prng");
    ("D003", "Hashtbl traversal order escapes unsorted");
    ("D004", "Obj.magic or physical equality in lib code");
    ("D005", "lib module without an .mli interface");
    ("D006", "polymorphic compare/hash on non-scalar simulation state");
    ("D007", "catch-all exception handler in lib code");
    ("D008", "module-level mutable state in lib code");
    ("D009", "parallel worker dispatch reaches shared mutable state");
    ("D010", "result depends on a nondeterminism source in another file");
    ("D011", "allocation reachable from an annotated hot-path function");
    ("D012", "mutable state escapes into a parallel worker closure");
    ("D013", "quadratic accumulation inside a recursive loop");
    ("D014", "protocol message constructed but never handled");
    ("D015", "handler catch-all discards protocol messages");
    ("D016", "phase write outside the paper's legal transition relation");
    ("D017", "fork token duplicated or leaked across send/receive sites");
    ("D018", "worker PRNG not derived from the root seed and index");
    ("E000", "source file failed to parse");
  ]

let rec flatten (li : Longident.t) =
  match li with
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> flatten l @ [ s ]
  | Longident.Lapply _ -> []

(* "Stdlib.Random.int" and "Random.int" must match the same rules. *)
let path_of_ident (li : Longident.t) =
  match flatten li with
  | [] -> None
  | "Stdlib" :: (_ :: _ as rest) -> Some (String.concat "." rest)
  | parts -> Some (String.concat "." parts)

let path_of_expr (e : Parsetree.expression) =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_ident { txt; _ } -> path_of_ident txt
  | _ -> None

(* The function position of an application, or the expression itself. *)
let head_path (e : Parsetree.expression) =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_apply (f, _) -> path_of_expr f
  | _ -> path_of_expr e

let starts_with ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let run (cfg : config) (str : Parsetree.structure) : Finding.t list =
  let findings = ref [] in
  let report ~loc rule msg =
    findings := Finding.of_location ~rule ~file:cfg.file ~msg loc :: !findings
  in
  (* Locations of [Hashtbl.fold] head identifiers that are sanctioned
     because the enclosing expression pipes the result straight into a
     sort. Keyed by location, which is unique per syntax node. *)
  let sanctioned : (Location.t, unit) Hashtbl.t = Hashtbl.create 16 in
  let sanction (e : Parsetree.expression) =
    match e.Parsetree.pexp_desc with
    | Parsetree.Pexp_apply (f, _) -> (
        match path_of_expr f with
        | Some "Hashtbl.fold" -> Hashtbl.replace sanctioned f.Parsetree.pexp_loc ()
        | _ -> ())
    | _ -> ()
  in
  let is_sort e = match head_path e with Some p -> List.mem p sort_heads | None -> false in
  (* D006: operands whose shape alone proves the compare is structural.
     Purely syntactic, so `a = b` on idents of a record type slips through —
     the rule exists to catch the spelled-out cases reviewers actually see. *)
  let rec structured (e : Parsetree.expression) =
    match e.Parsetree.pexp_desc with
    | Parsetree.Pexp_tuple _ | Parsetree.Pexp_record _ | Parsetree.Pexp_array _ -> true
    | Parsetree.Pexp_construct ({ txt = Longident.Lident "::"; _ }, _) -> true
    | Parsetree.Pexp_construct (_, Some _) -> true
    | Parsetree.Pexp_variant (_, Some _) -> true
    | Parsetree.Pexp_constraint (inner, _) -> structured inner
    | _ -> false
  in
  let check_ident ~loc path =
    if List.mem path wallclock || path = "gettimeofday" then begin
      if not cfg.wallclock_ok then
        report ~loc "D001"
          (Printf.sprintf
             "wall-clock access `%s` outside Obs.Instrument; simulated code must use \
              Context.now"
             path)
    end
    else if starts_with ~prefix:"Random." path || path = "Hashtbl.randomize" then
      report ~loc "D002"
        (Printf.sprintf "ambient randomness `%s`; use the seeded Dsim.Prng instead" path)
    else if path = "Obj.magic" then begin
      if cfg.lib then report ~loc "D004" "Obj.magic defeats the type system in lib code"
    end
    else if path = "==" || path = "!=" then begin
      if cfg.lib then
        report ~loc "D004"
          (Printf.sprintf
             "physical equality `%s` in lib code depends on sharing; use structural \
              (=)/(<>)"
             path)
    end
    else if List.mem path poly_hash then begin
      if cfg.lib then
        report ~loc "D006"
          (Printf.sprintf
             "`%s` bakes the runtime's representation hash into behaviour; derive an \
              explicit key instead"
             path)
    end
    else if path = "Hashtbl.iter" then
      report ~loc "D003"
        "Hashtbl.iter visits bindings in hash order; fold to a list and List.sort it \
         (or iterate sorted keys)"
    else if path = "Hashtbl.fold" && not (Hashtbl.mem sanctioned loc) then
      report ~loc "D003"
        "Hashtbl.fold result escapes in hash order; pipe it immediately through \
         List.sort"
  in
  let expr (it : Ast_iterator.iterator) (e : Parsetree.expression) =
    (match e.Parsetree.pexp_desc with
    | Parsetree.Pexp_apply (f, args) -> (
        (* Sanctioning contexts for D003, checked before the children are
           visited so the inner fold sees itself cleared. *)
        (match (path_of_expr f, args) with
        | Some "|>", [ (Asttypes.Nolabel, lhs); (Asttypes.Nolabel, rhs) ] when is_sort rhs ->
            sanction lhs
        | Some "@@", [ (Asttypes.Nolabel, lhs); (Asttypes.Nolabel, rhs) ] when is_sort lhs ->
            sanction rhs
        | Some p, args when List.mem p sort_heads ->
            List.iter (fun (_, a) -> sanction a) args
        | _ -> ());
        (* D002: Hashtbl.create ~random:... *)
        (match path_of_expr f with
        | Some "Hashtbl.create"
          when List.exists (fun (l, _) -> l = Asttypes.Labelled "random") args ->
            report ~loc:e.Parsetree.pexp_loc "D002"
              "Hashtbl.create ~random randomizes iteration order across runs"
        | _ -> ());
        (* D006: polymorphic compare applied to a structured operand. *)
        match path_of_expr f with
        | Some (("=" | "<>" | "compare") as op)
          when cfg.lib
               && List.exists
                    (fun (l, a) -> l = Asttypes.Nolabel && structured a)
                    args ->
            report ~loc:e.Parsetree.pexp_loc "D006"
              (Printf.sprintf
                 "polymorphic `%s` on structured state; pattern-match or use a typed \
                  comparator"
                 op)
        | _ -> ())
    | Parsetree.Pexp_try (_, cases) when cfg.lib ->
        List.iter
          (fun (c : Parsetree.case) ->
            match c.Parsetree.pc_lhs.Parsetree.ppat_desc with
            | Parsetree.Ppat_any ->
                report ~loc:c.Parsetree.pc_lhs.Parsetree.ppat_loc "D007"
                  "catch-all `with _` swallows monitor violations; name the exceptions \
                   this site can handle"
            | _ -> ())
          cases
    | Parsetree.Pexp_ident { txt; _ } -> (
        match path_of_ident txt with
        | Some p -> check_ident ~loc:e.Parsetree.pexp_loc p
        | None -> ())
    | _ -> ());
    Ast_iterator.default_iterator.Ast_iterator.expr it e
  in
  (* D002 also covers bringing Random into scope wholesale. *)
  let module_is_random (m : Parsetree.module_expr) =
    match m.Parsetree.pmod_desc with
    | Parsetree.Pmod_ident { txt; _ } -> (
        match path_of_ident txt with
        | Some ("Random" | "Random.State") -> true
        | _ -> false)
    | _ -> false
  in
  let open_declaration (it : Ast_iterator.iterator) (o : Parsetree.open_declaration) =
    if module_is_random o.Parsetree.popen_expr then
      report ~loc:o.Parsetree.popen_loc "D002" "open Random pulls ambient randomness into scope";
    Ast_iterator.default_iterator.Ast_iterator.open_declaration it o
  in
  let module_binding (it : Ast_iterator.iterator) (mb : Parsetree.module_binding) =
    if module_is_random mb.Parsetree.pmb_expr then
      report ~loc:mb.Parsetree.pmb_loc "D002" "module alias of Random hides ambient randomness";
    Ast_iterator.default_iterator.Ast_iterator.module_binding it mb
  in
  let it = { Ast_iterator.default_iterator with expr; open_declaration; module_binding } in
  it.Ast_iterator.structure it str;
  (* D008: a dedicated walk over structure items (not the expression
     iterator), so it descends into nested [module S = struct .. end] but
     never into expressions — a function-local [let module] allocates per
     call and is fine. Functor bodies are skipped for the same reason:
     their state is per-application. *)
  let rec peel (e : Parsetree.expression) =
    match e.Parsetree.pexp_desc with Parsetree.Pexp_constraint (inner, _) -> peel inner | _ -> e
  in
  let rec scan_items items = List.iter scan_item items
  and scan_item (si : Parsetree.structure_item) =
    match si.Parsetree.pstr_desc with
    | Parsetree.Pstr_value (_, bindings) when cfg.lib ->
        List.iter
          (fun (vb : Parsetree.value_binding) ->
            match head_path (peel vb.Parsetree.pvb_expr) with
            | Some h when List.mem h mutable_heads ->
                report ~loc:vb.Parsetree.pvb_loc "D008"
                  (Printf.sprintf
                     "module-level `%s` persists across campaign runs in one process; \
                      hang run state off the engine or component instance"
                     h)
            | _ -> ())
          bindings
    | Parsetree.Pstr_module mb -> scan_mod mb.Parsetree.pmb_expr
    | Parsetree.Pstr_recmodule mbs ->
        List.iter (fun (mb : Parsetree.module_binding) -> scan_mod mb.Parsetree.pmb_expr) mbs
    | Parsetree.Pstr_include i -> scan_mod i.Parsetree.pincl_mod
    | _ -> ()
  and scan_mod (m : Parsetree.module_expr) =
    match m.Parsetree.pmod_desc with
    | Parsetree.Pmod_structure s -> scan_items s
    | Parsetree.Pmod_constraint (inner, _) -> scan_mod inner
    | _ -> ()
  in
  scan_items str;
  List.rev !findings
