(* simlint: allow D005 — fixture corpus file *)
(* Callgraph resolution fixture: [include M] behaves like an open for
   reference resolution, and functor-body top-level lets register under the
   functor's name. The [Cg_probe] handler lives inside the functor, so D014
   staying silent on [Cg_probe] pins the functor descent; the bare [weight]
   references pin include-as-open. *)
type Msg.t += Cg_probe of int

module Impl = struct
  let weight n = n + n
end

include Impl

let emit send = send (Cg_probe (weight 3))

module Make (X : sig
  val base : int
end) =
struct
  let consume msg =
    match msg with
    | Cg_probe n -> weight (n + X.base)
    | _other -> X.base
end
