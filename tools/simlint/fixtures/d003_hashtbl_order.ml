(* Fixture: D003 fires on order-dependent Hashtbl traversals and stays
   silent on traversals immediately piped through a sort. *)

let tbl : (int, string) Hashtbl.t = Hashtbl.create 8

(* violation: iter visits in hash order *)
let bad_iter f = Hashtbl.iter f tbl

(* violation: fold result escapes unsorted *)
let bad_fold () = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []

(* ok: fold piped straight into a sort *)
let good_pipe () =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

(* ok: sort applied directly *)
let good_direct () = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])

(* ok: sort_uniq via @@ *)
let good_at () = List.sort_uniq compare @@ Hashtbl.fold (fun k _ acc -> k :: acc) tbl []
