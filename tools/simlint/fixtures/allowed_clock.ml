(* Fixture: a wall-clock source that tests put on the D001 allowlist.
   Allowlisted, neither the direct D001 nor any downstream D010 may fire;
   without the allowlist both do. *)

let stamp () = Unix.gettimeofday ()
