(* Fixture: D001 must fire on every wall-clock read outside Obs.Instrument. *)

let now () = Unix.gettimeofday ()
let cpu () = Sys.time ()
let epoch () = Unix.time ()
let via_stdlib () = Stdlib.Sys.time ()
