(* Fixture: D006 fires on polymorphic compare/hash over structured state
   and stays silent on scalar compares and comparators passed as values. *)

let key x = Hashtbl.hash x
let pair_eq a b = (a, b) = (1, 2)
let opt_ne o x = o <> Some x
let cmp_lists l = compare l [ 1; 2 ]

(* ok: scalar operands, and a comparator used as a value *)
let scalar_eq a b = a = b
let sorted l = List.sort compare l

let justified_pair_eq a b =
  (* simlint: allow D006 — fixture: structural compare accepted here *)
  (a, 1) = (b, 1)
