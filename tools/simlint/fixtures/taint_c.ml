(* Fixture: the SINK, two hops from the source. D010 must report the full
   chain Taint_c.use -> Taint_b.wrapped -> Taint_a.roll, and the justified
   sink below must classify as suppressed, not open. *)

let use () = Taint_b.wrapped () * 2

(* simlint: allow D010 — verifying per-site suppression of a tainted sink *)
let justified () = Taint_b.wrapped () mod 2
