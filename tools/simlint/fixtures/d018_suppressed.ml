(* simlint: allow D005 — fixture corpus file *)
(* The capture variant: one generator shared by every worker domain, with
   its justification — the draws interleave on scheduling, which this
   fixture's campaign tolerates. *)
let shared_stream_campaign sink n =
  let rng = Prng.create 42 in
  (* simlint: allow D018 — fixture: domains may interleave draws on the shared stream *)
  Pool.iter n (fun i -> sink i (Prng.int rng 6))
