(* simlint: allow D005 — fixture corpus file *)
(* The flood-bench shape: a deliberately handler-less message whose drop is
   justified at the construction site. *)
type Msg.t += Mf_flood

let flood ctx ~dst n =
  for _ = 1 to n do
    (* simlint: allow D014 — fixture: the sink is deliberately handler-less *)
    ctx.send ~dst Mf_flood
  done
