(* Fixture: the laundering helper — no nondeterminism of its own, but its
   result depends on Taint_a.roll in another file, so D010 fires here. *)

let wrapped () = Taint_a.roll () + 1
