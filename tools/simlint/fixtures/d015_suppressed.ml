(* simlint: allow D005 — fixture corpus file *)
(* A justified drop: the arms above cover this protocol family's whole
   vocabulary, so the wildcard only absorbs other families' traffic. *)
type Msg.t += Pf_pong of int

let on_receive st msg =
  match msg with
  | Pf_pong n -> st.seen <- n
  (* simlint: allow D015 — fixture: arms above cover this family's vocabulary *)
  | _ -> ()
