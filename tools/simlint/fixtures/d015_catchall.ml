(* simlint: allow D005 — fixture corpus file *)
(* D015: a match that handles a protocol constructor must not also have a
   literal catch-all arm — Msg.t is extensible, so the wildcard silently
   drops any constructor added later. A *named* wildcard (below) is visible
   in review and stays clean. *)
type Msg.t += Pf_ping of int

let on_receive st msg =
  match msg with
  | Pf_ping n -> st.last <- n
  | _ -> ()

let classified msg =
  match msg with
  | Pf_ping n -> n
  | _other -> 0
