(* simlint: allow D005 — fixture file, deliberately interface-free *)
(* Fixture: a [simlint: allow] comment silences exactly the named rule at
   exactly that site. The D002 on the last line names the wrong rule in its
   comment, so it must still fire. *)

(* simlint: allow D001 — testing the suppression mechanism *)
let now () = Unix.gettimeofday ()

let both f tbl =
  (* simlint: allow D001 — first id of a two-id comment *)
  ignore (Unix.gettimeofday ());
  (* simlint: allow D001 D003 — multiple ids on one comment *)
  Hashtbl.iter f tbl

(* simlint: allow D001 — wrong id: this one must NOT silence the D002 *)
let r () = Random.bool ()
