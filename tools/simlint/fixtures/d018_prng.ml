(* simlint: allow D005 — fixture corpus file *)
(* D018: a worker closure must derive its randomness from the root seed and
   its own index. Creating a fresh PRNG inside the worker makes the draw
   sequence independent of the campaign seed; the derived form below is the
   sanctioned spelling and stays clean. *)

let underived_campaign n =
  Pool.map n (fun i -> Prng.int (Prng.create (7 + i)) 6)

let derived_campaign root n =
  Pool.map n (fun i -> Prng.int (Prng.derive root ~index:i) 6)
