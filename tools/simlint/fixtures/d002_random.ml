(* Fixture: D002 must fire on every route to ambient randomness. *)

let draw () = Random.int 10
let seeded () = Random.self_init ()
let tbl () : (int, int) Hashtbl.t = Hashtbl.create ~random:true 8
let () = Hashtbl.randomize ()

open Random

module R = Random

let f () = R.bool ()

let justified_roll () =
  (* simlint: allow D002 — fixture: suppressed ambient-randomness site *)
  Random.bits ()
