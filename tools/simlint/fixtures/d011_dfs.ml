(* simlint: allow D005 — fixture corpus file *)
(* D011: DFS worklist loop. The cons in [push_frontier] rebuilds the
   frontier on every visited state and is reached from the annotated
   [check_states] root, so it must carry the hot-caller chain. Popping by
   pattern matching in the driver itself allocates nothing and the
   non-recursive [sum_frontier] is not reachable from the root, so both
   stay clean. *)
let push_frontier stack state = state :: stack

(* simlint: hotpath *)
let rec check_states visited stack =
  match stack with
  | [] -> visited
  | s :: rest -> check_states (visited + s) (push_frontier rest (s * 2))

let sum_frontier stack = List.fold_left ( + ) 0 stack
