(* simlint: allow D005 — fixture corpus file *)
(* D017: sending a fork token without clearing local ownership duplicates
   it — both endpoints then believe they hold the fork and mutual exclusion
   breaks. [grant] clears before sending and stays clean; the handler
   records ownership, so the receive side conserves the token too (and the
   constructor counts as handled for D014). *)
type Msg.t += Pf_fork of int

let duplicate ctx st ~dst = ctx.send ~dst (Pf_fork st.epoch)

let grant ctx st ~dst =
  st.fork_owned <- false;
  ctx.send ~dst (Pf_fork st.epoch)

let on_receive st msg =
  match msg with
  | Pf_fork _ -> st.fork_owned <- true
  | _other -> ()
