(* Fixture: the taint SOURCE file. The direct D002 fires here; the
   interesting part is that Taint_b/Taint_c inherit D010 from it. *)

let roll () = Random.int 6
