(* D009: dispatching workers from a function that reaches module-level
   mutable state; the pure dispatch below stays clean. *)
(* simlint: allow D008 — the D009 fixture needs a shared table to reach *)
let cache = Hashtbl.create 16

let lookup k = Hashtbl.find_opt cache k

let tainted_campaign n = Pool.map ~jobs:2 n (fun i -> lookup i)

let clean_campaign n = Pool.map ~jobs:2 n (fun i -> i * i)

let justified_campaign n =
  (* simlint: allow D009 — table is warmed before dispatch, read-only after *)
  Pool.map ~jobs:2 n (fun i -> lookup i)
