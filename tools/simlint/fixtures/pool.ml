(* Stand-in for Exec.Pool: D009 recognises parallel dispatch by the
   Pool.map/Pool.iter id suffix, so the fixture corpus carries its own. *)
let map ~jobs n f =
  ignore jobs;
  Array.init n f

let iter ~jobs n f = ignore (map ~jobs n f)
