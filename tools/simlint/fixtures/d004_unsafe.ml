(* Fixture: D004 (lib-only) fires on Obj.magic and physical equality. *)

let cast (x : int) : string = Obj.magic x
let same_box a b = a == b
let diff_box a b = a != b
