(* Fixture: D004 (lib-only) fires on Obj.magic and physical equality. *)

let cast (x : int) : string = Obj.magic x
let same_box a b = a == b
let diff_box a b = a != b

let justified_eq a b =
  (* simlint: allow D004 — fixture: physical equality intended here *)
  a == b
