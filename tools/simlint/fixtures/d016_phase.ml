(* simlint: allow D005 — fixture corpus file *)
(* D016: a phase write whose dominating test proves an illegal hop.
   Eating -> Hungry is not an edge of the paper's 4-cycle
   (thinking -> hungry -> eating -> exiting -> thinking), so regressing a
   diner straight back to hungry is flagged. The legal hop below stays
   clean, as does a write with no dominating phase test (the pass refuses
   to guess the source phase). *)

let regress cell phase =
  if Types.phase_equal (phase ()) Types.Eating then Cell.set cell Types.Hungry

let finish cell phase =
  if Types.phase_equal (phase ()) Types.Eating then Cell.set cell Types.Exiting

let unanchored cell = Cell.set cell Types.Thinking
