(* simlint: allow D005 — fixture corpus file *)
(* D014: [Mf_fork_pass] is constructed and sent but no handler arm anywhere
   in the corpus matches it — the engine would deliver it into a peer's
   catch-all and the hand-off would silently stall. The ownership clear
   keeps the send D017-clean, so this fixture isolates the missing
   handler. *)
type Msg.t += Mf_fork_pass of int

type state = { mutable fork_held : bool }

let pass_fork ctx st ~dst =
  st.fork_held <- false;
  ctx.send ~dst (Mf_fork_pass dst)
