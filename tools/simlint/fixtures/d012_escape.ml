(* simlint: allow D005 — fixture corpus file *)
(* D012: locally-bound mutable state escaping into Pool worker closures,
   and a non-atomic Atomic read-modify-write. The warmed read-only capture
   is the sanctioned fan-out idiom and stays clean; the justified race
   carries its own suppression. *)
let racy_sum n =
  let total = ref 0 in
  Pool.iter ~jobs:2 n (fun i -> total := !total + i);
  !total

let racy_fill n =
  let results = Array.make n 0 in
  Pool.iter ~jobs:2 n (fun i -> results.(i) <- i * i);
  results

let warmed_readonly n =
  let table = Array.make n 1 in
  Pool.map ~jobs:2 n (fun i -> table.(i))

let justified n =
  let hits = ref 0 in
  (* simlint: allow D012 — fixture: the probe tolerates this race *)
  Pool.iter ~jobs:2 n (fun i -> hits := !hits + i);
  !hits

let lost_update c = Atomic.set c (Atomic.get c + 1)

let atomic_ok c = Atomic.incr c
