(* simlint: allow D005 — fixture corpus file *)
(* A deliberate off-relation hop with its justification: a crash-recovery
   path may re-queue a diner without passing through exiting. *)
let requeue cell phase =
  if Types.phase_equal (phase ()) Types.Eating then
    (* simlint: allow D016 — fixture: crash-recovery requeue skips exiting *)
    Cell.set cell Types.Hungry
