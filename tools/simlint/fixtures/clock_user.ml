(* Fixture: consumes Allowed_clock.stamp from another file. Tainted (D010)
   exactly when allowed_clock.ml is NOT on the wall-clock allowlist. *)

let tag () = Allowed_clock.stamp ()
