(* simlint: allow D005 — fixture corpus file *)
(* D011: allocation reachable from a [(* simlint: hotpath *)] root. The
   tuple in [build_pair] is reached through the call graph and must be
   reported with the full hot-caller chain; the amortised growth in [grow]
   carries its own justification. *)
let build_pair a b = (a, b)

let grow n =
  (* simlint: allow D011 — fixture: amortised scratch growth is justified *)
  Array.make n 0

(* simlint: hotpath *)
let hot_tick x = fst (build_pair x (Array.length (grow x)))

let cold_pair x = build_pair x x
