(* simlint: allow D005 — fixture file, deliberately interface-free *)
(* Fixture: compliant code — no other rule may fire. *)

let tbl : (int, string) Hashtbl.t = Hashtbl.create 8

let sorted_bindings () =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

let structural_eq a b = a = b
let lookup k = Hashtbl.find_opt tbl k
