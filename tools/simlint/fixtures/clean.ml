(* simlint: allow D005 — fixture file, deliberately interface-free *)
(* Fixture: compliant code — no other rule may fire. *)

let make_tbl () : (int, string) Hashtbl.t = Hashtbl.create 8

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

let structural_eq a b = a = b
let lookup tbl k = Hashtbl.find_opt tbl k
let named_handler f = try f () with Not_found -> 0
