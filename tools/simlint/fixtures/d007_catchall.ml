(* Fixture: D007 flags catch-all exception handlers; named ones are fine. *)

let swallow f = try f () with _ -> 0
let partial f = try f () with Failure _ -> 1 | _ -> 2

(* ok: names the exception it can actually handle *)
let named f = try f () with Not_found -> 3

let justified_swallow f =
  (* simlint: allow D007 — fixture: probe must not propagate *)
  try f () with _ -> ()
