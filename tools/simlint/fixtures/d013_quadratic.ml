(* simlint: allow D005 — fixture corpus file *)
(* D013: accumulators rebuilt with [@] / [^] inside recursive self-calls
   are O(n^2); consing with one final reverse is the linear spelling and
   stays clean, as does an append outside any self-call. *)
let rec collect acc n = if n = 0 then acc else collect (acc @ [ n ]) (n - 1)

let rec render acc n = if n = 0 then acc else render (acc ^ "x") (n - 1)

let rec collect_fast acc n =
  if n = 0 then List.rev acc else collect_fast (n :: acc) (n - 1)

let rec justified acc n =
  if n = 0 then acc
  else
    (* simlint: allow D013 — fixture: n is tiny here, clarity wins *)
    justified (acc @ [ n ]) (n - 1)

let merge a b = a @ b
