(* Fixture: D008 flags module-level mutable state (including in nested
   modules); per-call allocation inside a function is fine. *)

let counter = ref 0
let table : (int, int) Hashtbl.t = Hashtbl.create 16

module Nested = struct
  let queue : int Queue.t = Queue.create ()
end

(* ok: created per call *)
let fresh () = Hashtbl.create 16
let bump c = incr c
