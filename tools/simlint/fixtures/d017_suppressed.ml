(* simlint: allow D005 — fixture corpus file *)
(* The leak side of token conservation, with its justification: a monitor
   tap classifies tokens in flight without taking ownership of them. The
   sender clears before sending, so only the justified leak appears. *)
type Msg.t += Qf_token of int

let relay ctx st ~dst =
  st.token_held <- false;
  ctx.send ~dst (Qf_token 0)

let count_in_flight msgs =
  List.length
    (List.filter
       (fun m ->
         match m with
         (* simlint: allow D017 — fixture: monitor tap counts tokens without taking ownership *)
         | Qf_token _ -> true
         | _other -> false)
       msgs)
