(* Grandfathered findings.

   The checked-in [tools/simlint/baseline.json] lists findings that predate
   the gate. A finding matching an entry (same file, rule and line) is
   reported as "baselined" and does not fail the build, so the gate can be
   strict from day one while legacy debt is paid down. Each entry matches at
   most one finding; stale entries are surfaced so the baseline can only
   shrink. *)

type entry = { file : string; rule : string; line : int }

let schema = "simlint-baseline/1"

let empty : entry list = []

let of_json j =
  let open Obs.Json in
  (match find j "schema" with
  | Some (Str s) when s = schema -> ()
  | _ -> failwith ("baseline: expected schema " ^ schema));
  arr (get j "findings")
  |> List.map (fun e ->
         { file = str (get e "file"); rule = str (get e "rule"); line = int (get e "line") })

let to_json entries =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.Str schema);
      ( "findings",
        Obs.Json.Arr
          (List.map
             (fun e ->
               Obs.Json.Obj
                 [
                   ("file", Obs.Json.Str e.file);
                   ("rule", Obs.Json.Str e.rule);
                   ("line", Obs.Json.Int e.line);
                 ])
             entries) );
    ]

(* Written with the canonical compact printer so regeneration is
   byte-deterministic given the same findings. *)
let write ~path entries =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Obs.Json.to_string (to_json entries)))

let load path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  of_json (Obs.Json.of_string text)

(* Consume the first entry matching [f]; return the shrunk baseline on hit. *)
let matches entries (f : Finding.t) =
  let rec go acc = function
    | [] -> None
    | e :: tl when e.file = f.Finding.file && e.rule = f.Finding.rule && e.line = f.Finding.line
      ->
        Some (List.rev_append acc tl)
    | e :: tl -> go (e :: acc) tl
  in
  go [] entries
