(* Grandfathered findings.

   The checked-in [tools/simlint/baseline.json] lists findings that predate
   the gate. A finding matching an entry is reported as "baselined" and
   does not fail the build, so the gate can be strict from day one while
   legacy debt is paid down. Each entry matches at most one finding; stale
   entries are surfaced so the baseline can only shrink.

   Two kinds of key coexist (schema simlint-baseline/2):

     - line keys (file + rule + line) for the per-file rules, whose
       findings are anchored to a concrete source position;
     - symbol keys (file + rule + sym) for the interprocedural rules
       (D009-D012), whose positions drift under any unrelated edit to the
       files along the chain. The sym is the chain's stable endpoints —
       e.g. "Dsim.Engine.step->Dsim.Trace.append:record" — so a baselined
       interprocedural finding survives reformatting but dies the moment
       the code it is actually about changes.

   Schema v1 files (line keys only) still load; --baseline-update always
   writes v2. *)

type entry = {
  file : string;
  rule : string;
  line : int;  (** ignored when [sym] is present *)
  sym : string option;
}

let schema = "simlint-baseline/2"
let schema_v1 = "simlint-baseline/1"

let empty : entry list = []

let of_json j =
  let open Obs.Json in
  (match find j "schema" with
  | Some (Str s) when s = schema || s = schema_v1 -> ()
  | _ -> failwith ("baseline: expected schema " ^ schema ^ " or " ^ schema_v1));
  arr (get j "findings")
  |> List.map (fun e ->
         {
           file = str (get e "file");
           rule = str (get e "rule");
           line = (match find e "line" with Some (Int n) -> n | _ -> 0);
           sym = (match find e "sym" with Some (Str s) -> Some s | _ -> None);
         })

let to_json entries =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.Str schema);
      ( "findings",
        Obs.Json.Arr
          (List.map
             (fun e ->
               (* [line] is always written — informational for sym-keyed
                  entries (matching ignores it), the key itself otherwise —
                  so write/load round-trips entries exactly. *)
               Obs.Json.Obj
                 ([
                    ("file", Obs.Json.Str e.file);
                    ("rule", Obs.Json.Str e.rule);
                    ("line", Obs.Json.Int e.line);
                  ]
                 @
                 match e.sym with
                 | Some s -> [ ("sym", Obs.Json.Str s) ]
                 | None -> []))
             entries) );
    ]

(* Written with the canonical compact printer so regeneration is
   byte-deterministic given the same findings. *)
let write ~path entries =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Obs.Json.to_string (to_json entries)))

let load path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  of_json (Obs.Json.of_string text)

(* Consume the first entry matching [f]; return the shrunk baseline on hit.
   A sym-keyed entry matches on (file, rule, sym) ignoring the line; a
   line-keyed entry matches a finding without regard to its sym, so v1
   baselines keep working for interprocedural findings too. *)
let matches entries (f : Finding.t) =
  let hits e =
    e.file = f.Finding.file
    && e.rule = f.Finding.rule
    &&
    match e.sym with
    | Some s -> f.Finding.sym = Some s
    | None -> e.line = f.Finding.line
  in
  let rec go acc = function
    | [] -> None
    | e :: tl when hits e -> Some (List.rev_append acc tl)
    | e :: tl -> go (e :: acc) tl
  in
  go [] entries
