(* Protocol-conformance analysis (rules D016/D017/D018).

   D016 — phase-transition legality. The paper's diner state machine is a
   single 4-cycle, exported as data from [Dining.Spec.legal_transitions];
   this pass checks every syntactic phase *write* against it. A write is a
   [Cell.set cell Types.Eating]-shaped call, a [x.phase <- Lit] /
   [x.cur <- Lit] field assignment, or a [{ e with phase = Lit }]
   functional update whose new phase is a literal constructor. The *from*
   side is recovered from the tests that dominate the write: phase
   literals in the enclosing [if] condition, the [Component.action ~guard]
   of the action whose [~body] contains the write, the matched phase
   constructors of an enclosing [match] arm, and references to local
   helpers whose body mentions exactly one phase literal (the
   [let hungry () = phase_equal (phase ()) Types.Hungry] idiom). A phase
   write in sequence position re-anchors the tests for the rest of the
   sequence, so [set cell Hungry; set cell Eating] under a Thinking guard
   is read as two legal hops. Writes with *no* dominating phase test are
   skipped (unanchored — the pass refuses to guess), and negation is not
   modelled; both are deliberate precision-over-recall trades, documented
   in DESIGN.md.

   D017 — fork-token conservation. Fork-carrying constructors (declared
   [Msg.t] constructors whose name contains "fork" or "token") must be
   conserved: a top-level binding that sends one without anywhere clearing
   local ownership (a [<- false] on a fork-ish mutable field, or
   [flag := false]) duplicates the token; a handler arm that consumes one
   without recording ownership ([<- true] on a fork-ish field) or
   forwarding it leaks the token. Granularity is the whole top-level
   binding — ordering between the clear and the send is not checked.

   D018 — worker-PRNG derivation. The [Exec.Pool] determinism contract
   (DESIGN.md, "Parallel execution & determinism contract") requires every
   worker to be a pure function of its index; the only sanctioned way to
   randomness inside a worker is [Prng.derive root_seed ~index]. A worker
   closure passed to a [Pool.map]/[Pool.iter] dispatch that calls
   [Prng.create]/[Prng.split]/[Prng.copy] directly, or that captures a
   local born from one of those, makes the draw sequence depend on domain
   scheduling and is flagged at the offending site. *)

module SS = Set.Make (String)

let cap_phase p = String.capitalize_ascii (Dsim.Types.phase_to_string p)

(* The ground truth, shared with the runtime monitors: constructor-name
   pairs derived from the relation [lib/dining/spec.ml] exports. *)
let default_legal =
  List.map (fun (a, b) -> (cap_phase a, cap_phase b)) Dining.Spec.legal_transitions

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n > 0 && go 0

let forkish name =
  let lc = String.lowercase_ascii name in
  contains ~sub:"fork" lc || contains ~sub:"token" lc

let last_segment li = match List.rev (Rules.flatten li) with s :: _ -> Some s | _ -> None

let prng_heads = [ "Prng.create"; "Prng.split"; "Prng.copy" ]

let findings ?(legal = default_legal) (inputs : Callgraph.input list) : Finding.t list =
  let phases =
    List.fold_left (fun s (a, b) -> SS.add a (SS.add b s)) SS.empty legal
  in
  let cycle =
    (* Human-facing rendering of the relation, e.g.
       "Thinking->Hungry, Hungry->Eating, ...". *)
    String.concat ", " (List.map (fun (a, b) -> a ^ "->" ^ b) legal)
  in
  let fork_ctors =
    List.fold_left
      (fun s (d : Msgflow.decl) -> if forkish d.Msgflow.ctor then SS.add d.Msgflow.ctor s else s)
      SS.empty (Msgflow.declared inputs)
  in
  let out = ref [] in
  let report ?sym ~rel ~loc ~rule msg =
    let line, col = Callgraph.pos_of loc in
    let f = Finding.make ~rule ~file:rel ~line ~col ~msg in
    out := (match sym with Some s -> Finding.with_sym s f | None -> f) :: !out
  in
  (* A constant phase-constructor literal, e.g. [Types.Eating]. *)
  let phase_lit (e : Parsetree.expression) =
    match (Callgraph.peel e).Parsetree.pexp_desc with
    | Parsetree.Pexp_construct ({ txt; _ }, None) -> (
        match last_segment txt with Some s when SS.mem s phases -> Some s | _ -> None)
    | _ -> None
  in
  let bool_lit name (e : Parsetree.expression) =
    match (Callgraph.peel e).Parsetree.pexp_desc with
    | Parsetree.Pexp_construct ({ txt = Longident.Lident b; _ }, None) -> b = name
    | _ -> false
  in
  let walk_input (inp : Callgraph.input) =
    let rel = inp.Callgraph.rel in
    Callgraph.iter_bindings inp (fun ~id ~line:_ ~is_rec:_ body ->
        (* ---------------- D016: phase-transition legality ---------------- *)
        (* Local helpers whose body mentions exactly one phase literal act
           as phase tests when referenced ([let hungry () = ... Hungry]).
           Scope-blind (no shadow tracking): acceptable for a lint. *)
        let helpers : (string, string) Hashtbl.t = Hashtbl.create 8 in
        let phase_lits_of (e : Parsetree.expression) =
          let acc = ref SS.empty in
          let expr it (e : Parsetree.expression) =
            (match phase_lit e with Some s -> acc := SS.add s !acc | None -> ());
            Ast_iterator.default_iterator.Ast_iterator.expr it e
          in
          let it = { Ast_iterator.default_iterator with Ast_iterator.expr = expr } in
          it.Ast_iterator.expr it e;
          !acc
        in
        (* Phase tests established by a condition: literals plus helper
           references. Negation-blind. *)
        let tests_of (e : Parsetree.expression) =
          let acc = ref (phase_lits_of e) in
          let expr it (e : Parsetree.expression) =
            (match e.Parsetree.pexp_desc with
            | Parsetree.Pexp_ident { txt = Longident.Lident n; _ } -> (
                match Hashtbl.find_opt helpers n with
                | Some ph -> acc := SS.add ph !acc
                | None -> ())
            | _ -> ());
            Ast_iterator.default_iterator.Ast_iterator.expr it e
          in
          let it = { Ast_iterator.default_iterator with Ast_iterator.expr = expr } in
          it.Ast_iterator.expr it e;
          !acc
        in
        let pat_phases (p : Parsetree.pattern) =
          let acc = ref SS.empty in
          let pat it (p : Parsetree.pattern) =
            (match p.Parsetree.ppat_desc with
            | Parsetree.Ppat_construct ({ txt; _ }, None) -> (
                match last_segment txt with
                | Some s when SS.mem s phases -> acc := SS.add s !acc
                | _ -> ())
            | _ -> ());
            Ast_iterator.default_iterator.Ast_iterator.pat it p
          in
          let it = { Ast_iterator.default_iterator with pat } in
          it.Ast_iterator.pat it p;
          !acc
        in
        (* The written phase, when [e] is a phase-write site. *)
        let write_to (e : Parsetree.expression) =
          match (Callgraph.peel e).Parsetree.pexp_desc with
          | Parsetree.Pexp_apply (f, args) -> (
              match Rules.path_of_expr f with
              | Some p when Escape.tail2 p = "Cell.set" ->
                  List.find_map
                    (fun (l, a) -> if l = Asttypes.Nolabel then phase_lit a else None)
                    args
              | _ -> None)
          | Parsetree.Pexp_setfield (_, { txt; _ }, rhs) -> (
              match last_segment txt with
              | Some ("phase" | "cur") -> phase_lit rhs
              | _ -> None)
          | Parsetree.Pexp_record (fields, Some _) ->
              List.find_map
                (fun (({ txt; _ } : Longident.t Location.loc), v) ->
                  match last_segment txt with
                  | Some ("phase" | "cur") -> phase_lit v
                  | _ -> None)
                fields
          | _ -> None
        in
        let check_write tests (e : Parsetree.expression) =
          match write_to e with
          | Some to_ when not (SS.is_empty tests) ->
              let illegal = SS.filter (fun from_ -> not (List.mem (from_, to_) legal)) tests in
              SS.iter
                (fun from_ ->
                  report
                    ~sym:(Printf.sprintf "%s:%s->%s:phase" id from_ to_)
                    ~rel ~loc:e.Parsetree.pexp_loc ~rule:"D016"
                    (Printf.sprintf
                       "phase write %s -> %s in %s is outside the paper's transition \
                        relation (%s); the dominating test establishes %s"
                       from_ to_ id cycle from_))
                illegal
          | _ -> ()
        in
        let tests = ref SS.empty in
        let rec it =
          { Ast_iterator.default_iterator with Ast_iterator.expr = (fun _ e -> expr e) }
        and walk_default e = Ast_iterator.default_iterator.Ast_iterator.expr it e
        and with_tests t f =
          let saved = !tests in
          tests := t;
          f ();
          tests := saved
        and expr (e : Parsetree.expression) =
          check_write !tests e;
          match e.Parsetree.pexp_desc with
          | Parsetree.Pexp_let (_, vbs, letbody) ->
              List.iter
                (fun (vb : Parsetree.value_binding) ->
                  (match Callgraph.pat_name vb.Parsetree.pvb_pat with
                  | Some n -> (
                      match SS.elements (phase_lits_of vb.Parsetree.pvb_expr) with
                      | [ ph ] -> Hashtbl.replace helpers n ph
                      | _ -> ())
                  | None -> ());
                  expr vb.Parsetree.pvb_expr)
                vbs;
              expr letbody
          | Parsetree.Pexp_ifthenelse (c, then_, else_) ->
              expr c;
              with_tests (SS.union !tests (tests_of c)) (fun () -> expr then_);
              Option.iter expr else_
          | Parsetree.Pexp_sequence (a, b) -> (
              expr a;
              match write_to a with
              | Some to_ -> with_tests (SS.singleton to_) (fun () -> expr b)
              | None -> expr b)
          | Parsetree.Pexp_match (scrut, cases) ->
              expr scrut;
              List.iter
                (fun (c : Parsetree.case) ->
                  with_tests
                    (SS.union !tests (pat_phases c.Parsetree.pc_lhs))
                    (fun () ->
                      Option.iter expr c.Parsetree.pc_guard;
                      expr c.Parsetree.pc_rhs))
                cases
          | Parsetree.Pexp_function cases ->
              List.iter
                (fun (c : Parsetree.case) ->
                  with_tests
                    (SS.union !tests (pat_phases c.Parsetree.pc_lhs))
                    (fun () ->
                      Option.iter expr c.Parsetree.pc_guard;
                      expr c.Parsetree.pc_rhs))
                cases
          | Parsetree.Pexp_apply (f, args)
            when (match Rules.path_of_expr f with
                 | Some p -> Escape.tail2 p = "Component.action"
                 | None -> false)
                 && List.exists (fun (l, _) -> l = Asttypes.Labelled "body") args ->
              let guard_tests =
                match List.find_opt (fun (l, _) -> l = Asttypes.Labelled "guard") args with
                | Some (_, g) -> tests_of g
                | None -> SS.empty
              in
              List.iter
                (fun (l, a) ->
                  if l = Asttypes.Labelled "body" then
                    with_tests (SS.union !tests guard_tests) (fun () -> expr a)
                  else expr a)
                args
          | _ -> walk_default e
        in
        expr body;
        (* ---------------- D017: fork-token conservation ---------------- *)
        if not (SS.is_empty fork_ctors) then begin
          let sends : (string, Location.t) Hashtbl.t = Hashtbl.create 4 in
          let clears = ref false in
          let scan it (e : Parsetree.expression) =
            (match e.Parsetree.pexp_desc with
            | Parsetree.Pexp_construct ({ txt; loc }, _) -> (
                match last_segment txt with
                | Some s when SS.mem s fork_ctors ->
                    let better cand cur =
                      let key (l : Location.t) = Callgraph.pos_of l in
                      compare (key cand) (key cur) < 0
                    in
                    if not (Hashtbl.mem sends s) then Hashtbl.add sends s loc
                    else if better loc (Hashtbl.find sends s) then Hashtbl.replace sends s loc
                | _ -> ())
            | Parsetree.Pexp_setfield (_, { txt; _ }, rhs) -> (
                match last_segment txt with
                | Some f when forkish f && bool_lit "false" rhs -> clears := true
                | _ -> ())
            | Parsetree.Pexp_apply (f, (Asttypes.Nolabel, lhs) :: (Asttypes.Nolabel, rhs) :: _)
              when Rules.path_of_expr f = Some ":=" -> (
                match Rules.path_of_expr (Callgraph.peel lhs) with
                | Some name when forkish name && bool_lit "false" rhs -> clears := true
                | _ -> ())
            | _ -> ());
            Ast_iterator.default_iterator.Ast_iterator.expr it e
          in
          let it = { Ast_iterator.default_iterator with Ast_iterator.expr = scan } in
          it.Ast_iterator.expr it body;
          if not !clears then
            Hashtbl.fold (fun s loc acc -> (s, loc) :: acc) sends []
            |> List.sort compare
            |> List.iter (fun (s, loc) ->
                   report
                     ~sym:(Printf.sprintf "%s:%s:dup" id s)
                     ~rel ~loc ~rule:"D017"
                     (Printf.sprintf
                        "%s sends fork token `%s` without clearing local ownership (no \
                         fork-ish field is set to false anywhere in the binding) — the \
                         token is duplicated and mutual exclusion can break"
                        id s));
          (* Handler arms that consume a fork message must record or forward
             the token. *)
          let stores_or_forwards (rhs : Parsetree.expression) =
            let hit = ref false in
            let scan it (e : Parsetree.expression) =
              (match e.Parsetree.pexp_desc with
              | Parsetree.Pexp_setfield (_, { txt; _ }, v) -> (
                  match last_segment txt with
                  | Some f when forkish f && bool_lit "true" v -> hit := true
                  | _ -> ())
              | Parsetree.Pexp_construct ({ txt; _ }, _) -> (
                  match last_segment txt with
                  | Some s when SS.mem s fork_ctors -> hit := true
                  | _ -> ())
              | Parsetree.Pexp_apply (f, (Asttypes.Nolabel, lhs) :: (Asttypes.Nolabel, v) :: _)
                when Rules.path_of_expr f = Some ":=" -> (
                  match Rules.path_of_expr (Callgraph.peel lhs) with
                  | Some name when forkish name && bool_lit "true" v -> hit := true
                  | _ -> ())
              | _ -> ());
              Ast_iterator.default_iterator.Ast_iterator.expr it e
            in
            let it = { Ast_iterator.default_iterator with Ast_iterator.expr = scan } in
            it.Ast_iterator.expr it rhs;
            !hit
          in
          let case_scan it (e : Parsetree.expression) =
            (match e.Parsetree.pexp_desc with
            | Parsetree.Pexp_match (_, cases) | Parsetree.Pexp_function cases ->
                List.iter
                  (fun (c : Parsetree.case) ->
                    let matched = SS.inter fork_ctors (Msgflow.pat_ctors c.Parsetree.pc_lhs) in
                    if (not (SS.is_empty matched)) && not (stores_or_forwards c.Parsetree.pc_rhs)
                    then
                      report
                        ~sym:(Printf.sprintf "%s:%s:leak" id (SS.min_elt matched))
                        ~rel ~loc:c.Parsetree.pc_lhs.Parsetree.ppat_loc ~rule:"D017"
                        (Printf.sprintf
                           "handler arm in %s consumes fork token `%s` without recording \
                            ownership (no fork-ish field set to true) or forwarding it — \
                            the token leaks and a neighbour starves"
                           id (SS.min_elt matched)))
                  cases
            | _ -> ());
            Ast_iterator.default_iterator.Ast_iterator.expr it e
          in
          let it = { Ast_iterator.default_iterator with Ast_iterator.expr = case_scan } in
          it.Ast_iterator.expr it body
        end;
        (* ---------------- D018: worker-PRNG derivation ---------------- *)
        let prng_locals = ref SS.empty in
        let collect it (e : Parsetree.expression) =
          (match e.Parsetree.pexp_desc with
          | Parsetree.Pexp_let (_, vbs, _) ->
              List.iter
                (fun (vb : Parsetree.value_binding) ->
                  match
                    (Callgraph.pat_name vb.Parsetree.pvb_pat,
                     Rules.head_path (Callgraph.peel vb.Parsetree.pvb_expr))
                  with
                  | Some n, Some h when List.mem (Escape.tail2 h) prng_heads ->
                      prng_locals := SS.add n !prng_locals
                  | _ -> ())
              vbs
          | _ -> ());
          Ast_iterator.default_iterator.Ast_iterator.expr it e
        in
        let itc = { Ast_iterator.default_iterator with Ast_iterator.expr = collect } in
        itc.Ast_iterator.expr itc body;
        let flag_direct (closure : Parsetree.expression) dispatch =
          let scan it (e : Parsetree.expression) =
            (match e.Parsetree.pexp_desc with
            | Parsetree.Pexp_ident { txt; loc } -> (
                match Rules.path_of_ident txt with
                | Some p when List.mem (Escape.tail2 p) prng_heads ->
                    report
                      ~sym:(Printf.sprintf "%s:%s:prng" id (Escape.tail2 p))
                      ~rel ~loc ~rule:"D018"
                      (Printf.sprintf
                         "worker closure passed to %s calls `%s` — the Exec.Pool contract \
                          makes workers pure functions of their index; derive the \
                          per-worker PRNG via Prng.derive root_seed ~index"
                         dispatch p)
                | _ -> ())
            | _ -> ());
            Ast_iterator.default_iterator.Ast_iterator.expr it e
          in
          let it = { Ast_iterator.default_iterator with Ast_iterator.expr = scan } in
          it.Ast_iterator.expr it closure
        in
        let dispatch_scan it (e : Parsetree.expression) =
          (match e.Parsetree.pexp_desc with
          | Parsetree.Pexp_apply (f, args) -> (
              match Rules.path_of_expr f with
              | Some p when Taint.pool_dispatch_id p ->
                  List.iter
                    (fun (_, a) ->
                      let a = Callgraph.peel a in
                      match a.Parsetree.pexp_desc with
                      | Parsetree.Pexp_fun _ | Parsetree.Pexp_function _ ->
                          flag_direct a p;
                          SS.iter
                            (fun v ->
                              report
                                ~sym:(Printf.sprintf "%s:%s:prng" id v)
                                ~rel ~loc:e.Parsetree.pexp_loc ~rule:"D018"
                                (Printf.sprintf
                                   "worker closure passed to %s captures PRNG `%s` created \
                                    outside the dispatch — all domains share one generator \
                                    and the draw order depends on scheduling; derive a \
                                    per-worker PRNG via Prng.derive root_seed ~index"
                                   p v))
                            (SS.inter (Alloc.free_vars a) !prng_locals)
                      | _ -> ())
                    args
              | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.Ast_iterator.expr it e
        in
        let itd = { Ast_iterator.default_iterator with Ast_iterator.expr = dispatch_scan } in
        itd.Ast_iterator.expr itd body)
  in
  List.iter walk_input inputs;
  List.rev !out
