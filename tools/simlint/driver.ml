(* File discovery, rule dispatch, and finding disposition.

   v2: the driver parses every requested .ml under the root ONCE, runs the
   per-file rules ([Rules]) and the file-set rule D005, then hands all the
   parsed structures to [Callgraph]/[Taint] for the whole-project
   interprocedural pass (D010). Each finding is classified as open,
   suppressed (a [simlint: allow] comment at the site) or baselined (listed
   in baseline.json). Only open findings pass the gate — and since v2 a
   stale baseline entry fails it too (the baseline may only shrink; use
   --baseline-update to regenerate it). *)

type result = {
  findings : (Finding.t * Finding.status) list;  (** sorted, deterministic *)
  files_scanned : int;
  stale_baseline : Baseline.entry list;  (** entries that matched nothing *)
}

let schema = "simlint-report/1"
let default_dirs = [ "lib"; "bin"; "bench"; "stress" ]

(* D001 allowlist: the one module allowed to touch the wall clock. Matching
   is on root-relative paths, normalised to '/'. Sources inside an
   allowlisted file do not seed D010 taint either — Obs.Instrument
   segregates its clock reads from deterministic report bodies, so callers
   do not inherit nondeterminism from it. *)
let wallclock_allowlist = [ "lib/obs/instrument.ml" ]

(* D011 hot roots that hold even if an annotation comment drifts: the
   engine's step dispatch and the per-tick delivery path must stay
   allocation-free for the million-philosopher target. In-source
   [(* simlint: hotpath *)] annotations extend this set; [--hotpath ID]
   on the CLI extends it further. *)
let default_hotpath_roots = [ "Dsim.Engine.step"; "Dsim.Engine.deliver_ripe"; "Dsim.Vec.add_last" ]

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_structure ~path text =
  let lexbuf = Lexing.from_string text in
  Lexing.set_filename lexbuf path;
  Parse.implementation lexbuf

(* Recursive listing of .ml files, relative to [root], sorted so two runs
   visit files in the same order on any filesystem. *)
let rec ml_files root rel =
  let abs = Filename.concat root rel in
  if Sys.is_directory abs then
    Sys.readdir abs |> Array.to_list |> List.sort String.compare
    |> List.concat_map (fun name ->
           if name = "_build" || name = ".git" then []
           else ml_files root (Filename.concat rel name))
  else if Filename.check_suffix rel ".ml" then [ rel ]
  else []

let is_lib rel = String.length rel >= 4 && String.sub rel 0 4 = "lib/"

(* One file's worth of parse state, shared by the per-file rules and the
   whole-project pass. *)
type parsed = {
  rel : string;
  lib : bool;
  wallclock_ok : bool;
  suppressions : Suppress.t;
  hot_lines : int list;  (** lines carrying a [(* simlint: hotpath *)] annotation *)
  str : (Parsetree.structure, exn) Result.t;
}

let parse_one ~allowlist ~force_lib ~root rel =
  let text = read_file (Filename.concat root rel) in
  {
    rel;
    lib = force_lib || is_lib rel;
    wallclock_ok = List.mem rel allowlist;
    suppressions = Suppress.parse text;
    hot_lines = Suppress.hotpaths text;
    str = (try Ok (parse_structure ~path:rel text) with e -> Error e);
  }

let file_findings ~root (p : parsed) =
  let ast_findings =
    match p.str with
    | Ok str ->
        Rules.run { Rules.file = p.rel; lib = p.lib; wallclock_ok = p.wallclock_ok } str
    | Error e ->
        [
          Finding.make ~rule:"E000" ~file:p.rel ~line:1 ~col:0
            ~msg:("parse error: " ^ Printexc.to_string e);
        ]
  in
  let d005 =
    if
      p.lib
      && not (Sys.file_exists (Filename.concat root (Filename.remove_extension p.rel ^ ".mli")))
    then
      [
        Finding.make ~rule:"D005" ~file:p.rel ~line:1 ~col:0
          ~msg:"lib module has no .mli; interfaces pin the surface other layers may rely on";
      ]
    else []
  in
  ast_findings @ d005

(* Back-compat single-file entry point (no interprocedural pass), used by
   the test-suite to probe lib-only rule behaviour. *)
let lint_file ?(force_lib = false) ~root ~rel () =
  let p = parse_one ~allowlist:wallclock_allowlist ~force_lib ~root rel in
  (file_findings ~root p, p.suppressions)

let run ?(baseline = Baseline.empty) ?(dirs = default_dirs) ?(force_lib = false)
    ?(allowlist = wallclock_allowlist) ?(hotpath_roots = default_hotpath_roots) ?(only = [])
    ~root () =
  let files =
    dirs
    |> List.concat_map (fun d ->
           if Sys.file_exists (Filename.concat root d) then ml_files root d else [])
  in
  let parsed = List.map (parse_one ~allowlist ~force_lib ~root) files in
  let per_file = List.concat_map (fun p -> file_findings ~root p) parsed in
  let interprocedural =
    let ok =
      List.filter_map
        (fun p ->
          match p.str with
          | Ok str ->
              Some
                ( { Callgraph.rel = p.rel; lib = p.lib; wallclock_ok = p.wallclock_ok; str },
                  p.hot_lines )
          | Error _ -> None)
        parsed
    in
    let inputs = List.map fst ok in
    let g = Callgraph.build inputs in
    Taint.findings g @ Taint.shared_state_findings g
    @ Alloc.findings
        (List.map (fun (input, hot_lines) -> { Alloc.input; hot_lines }) ok)
        g ~roots:hotpath_roots
    @ Escape.findings inputs
    (* The protocol-conformance passes (D014–D018) deliberately run over
       ALL scanned inputs — bin/bench/stress construct Msg.t values too —
       unlike the lib-scoped hygiene rules D004–D008. *)
    @ Msgflow.findings inputs
    @ Protocol.findings inputs
  in
  (* [--only D014,D016]: restrict the run to the named rules. Baseline
     entries for unselected rules are dropped up front so they are neither
     consumed nor reported stale by a filtered run. *)
  let selected (f : Finding.t) = only = [] || List.mem f.Finding.rule only in
  let baseline =
    if only = [] then baseline
    else List.filter (fun (e : Baseline.entry) -> List.mem e.Baseline.rule only) baseline
  in
  let suppressions_of =
    let tbl = Hashtbl.create 64 in
    List.iter (fun p -> Hashtbl.replace tbl p.rel p.suppressions) parsed;
    fun file -> Option.value ~default:[] (Hashtbl.find_opt tbl file)
  in
  let remaining = ref baseline in
  let classify (f : Finding.t) =
    if Suppress.covers (suppressions_of f.Finding.file) ~rule:f.Finding.rule ~line:f.Finding.line
    then (f, Finding.Suppressed)
    else
      match Baseline.matches !remaining f with
      | Some rest ->
          remaining := rest;
          (f, Finding.Baselined)
      | None -> (f, Finding.Open)
  in
  let findings =
    List.map classify (List.filter selected (per_file @ interprocedural))
    |> List.sort (fun (a, _) (b, _) -> Finding.compare a b)
  in
  { findings; files_scanned = List.length files; stale_baseline = !remaining }

let count status t =
  List.length (List.filter (fun (_, s) -> s = status) t.findings)

let open_findings t = List.filter (fun (_, s) -> s = Finding.Open) t.findings

(* The gate: open findings fail it, and so does a stale baseline entry —
   an entry whose finding has been fixed must be deleted (or the whole file
   regenerated with --baseline-update), otherwise it could silently
   grandfather an unrelated future finding on the same line. *)
let gate_ok t = open_findings t = [] && t.stale_baseline = []

(* Deterministic baseline regeneration: every finding that is not
   suppressed in-source becomes an entry, in report order. Interprocedural
   findings carry a symbol chain and get sym-keyed entries (stable under
   line drift); per-file findings stay line-keyed. *)
let to_baseline t =
  List.filter_map
    (fun ((f : Finding.t), s) ->
      match s with
      | Finding.Suppressed -> None
      | Finding.Open | Finding.Baselined ->
          Some
            {
              Baseline.file = f.Finding.file;
              rule = f.Finding.rule;
              line = f.Finding.line;
              sym = f.Finding.sym;
            })
    t.findings

let to_json t =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.Str schema);
      ("files_scanned", Obs.Json.Int t.files_scanned);
      ("open", Obs.Json.Int (count Finding.Open t));
      ("suppressed", Obs.Json.Int (count Finding.Suppressed t));
      ("baselined", Obs.Json.Int (count Finding.Baselined t));
      ("findings", Obs.Json.Arr (List.map Finding.to_json t.findings));
      ( "stale_baseline",
        Obs.Json.Arr
          (List.map
             (fun (e : Baseline.entry) ->
               Obs.Json.Obj
                 ([
                    ("file", Obs.Json.Str e.Baseline.file);
                    ("rule", Obs.Json.Str e.Baseline.rule);
                    ("line", Obs.Json.Int e.Baseline.line);
                  ]
                 @
                 match e.Baseline.sym with
                 | Some s -> [ ("sym", Obs.Json.Str s) ]
                 | None -> []))
             t.stale_baseline) );
    ]

let print_human ppf t =
  List.iter
    (fun (f, status) ->
      match status with
      | Finding.Open -> Format.fprintf ppf "%s@." (Finding.to_string f)
      | Finding.Suppressed | Finding.Baselined ->
          Format.fprintf ppf "%s [%s]@." (Finding.to_string f) (Finding.status_name status))
    t.findings;
  List.iter
    (fun (e : Baseline.entry) ->
      match e.Baseline.sym with
      | Some s ->
          Format.fprintf ppf
            "simlint: stale baseline entry %s %s [%s] (fixed? remove it or run \
             --baseline-update)@."
            e.Baseline.rule e.Baseline.file s
      | None ->
          Format.fprintf ppf
            "simlint: stale baseline entry %s %s:%d (fixed? remove it or run \
             --baseline-update)@."
            e.Baseline.rule e.Baseline.file e.Baseline.line)
    t.stale_baseline;
  Format.fprintf ppf "simlint: %d file(s), %d open, %d suppressed, %d baselined@."
    t.files_scanned (count Finding.Open t) (count Finding.Suppressed t)
    (count Finding.Baselined t)
