(* File discovery, rule dispatch, and finding disposition.

   The driver walks the requested directories under a root, parses every .ml
   with the compiler's own parser, runs [Rules], applies the file-set rule
   D005 (lib module missing its .mli), then classifies each finding as open,
   suppressed (a [simlint: allow] comment at the site) or baselined (listed
   in baseline.json). Only open findings fail the gate. *)

type result = {
  findings : (Finding.t * Finding.status) list;  (** sorted, deterministic *)
  files_scanned : int;
  stale_baseline : Baseline.entry list;  (** entries that matched nothing *)
}

let schema = "simlint-report/1"
let default_dirs = [ "lib"; "bin"; "bench"; "stress" ]

(* D001 allowlist: the one module allowed to touch the wall clock. Matching
   is on root-relative paths, normalised to '/'. *)
let wallclock_allowlist = [ "lib/obs/instrument.ml" ]

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_structure ~path text =
  let lexbuf = Lexing.from_string text in
  Lexing.set_filename lexbuf path;
  Parse.implementation lexbuf

(* Recursive listing of .ml files, relative to [root], sorted so two runs
   visit files in the same order on any filesystem. *)
let rec ml_files root rel =
  let abs = Filename.concat root rel in
  if Sys.is_directory abs then
    Sys.readdir abs |> Array.to_list |> List.sort String.compare
    |> List.concat_map (fun name ->
           if name = "_build" || name = ".git" then []
           else ml_files root (Filename.concat rel name))
  else if Filename.check_suffix rel ".ml" then [ rel ]
  else []

let is_lib rel = String.length rel >= 4 && String.sub rel 0 4 = "lib/"

let lint_file ?(force_lib = false) ~root ~rel () =
  let path = Filename.concat root rel in
  let text = read_file path in
  let suppressions = Suppress.parse text in
  let cfg =
    {
      Rules.file = rel;
      lib = force_lib || is_lib rel;
      wallclock_ok = List.mem rel wallclock_allowlist;
    }
  in
  let ast_findings =
    match parse_structure ~path:rel text with
    | str -> Rules.run cfg str
    | exception e ->
        [
          Finding.make ~rule:"E000" ~file:rel ~line:1 ~col:0
            ~msg:("parse error: " ^ Printexc.to_string e);
        ]
  in
  let d005 =
    if
      cfg.Rules.lib
      && not (Sys.file_exists (Filename.concat root (Filename.remove_extension rel ^ ".mli")))
    then
      [
        Finding.make ~rule:"D005" ~file:rel ~line:1 ~col:0
          ~msg:"lib module has no .mli; interfaces pin the surface other layers may rely on";
      ]
    else []
  in
  (ast_findings @ d005, suppressions)

let run ?(baseline = Baseline.empty) ?(dirs = default_dirs) ?(force_lib = false) ~root () =
  let files =
    dirs
    |> List.concat_map (fun d ->
           if Sys.file_exists (Filename.concat root d) then ml_files root d else [])
  in
  let remaining = ref baseline in
  let classify suppressions (f : Finding.t) =
    if Suppress.covers suppressions ~rule:f.Finding.rule ~line:f.Finding.line then
      (f, Finding.Suppressed)
    else
      match Baseline.matches !remaining f with
      | Some rest ->
          remaining := rest;
          (f, Finding.Baselined)
      | None -> (f, Finding.Open)
  in
  let findings =
    files
    |> List.concat_map (fun rel ->
           let fs, suppressions = lint_file ~force_lib ~root ~rel () in
           List.map (classify suppressions) fs)
    |> List.sort (fun (a, _) (b, _) -> Finding.compare a b)
  in
  { findings; files_scanned = List.length files; stale_baseline = !remaining }

let count status t =
  List.length (List.filter (fun (_, s) -> s = status) t.findings)

let open_findings t = List.filter (fun (_, s) -> s = Finding.Open) t.findings

let to_json t =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.Str schema);
      ("files_scanned", Obs.Json.Int t.files_scanned);
      ("open", Obs.Json.Int (count Finding.Open t));
      ("suppressed", Obs.Json.Int (count Finding.Suppressed t));
      ("baselined", Obs.Json.Int (count Finding.Baselined t));
      ("findings", Obs.Json.Arr (List.map Finding.to_json t.findings));
      ( "stale_baseline",
        Obs.Json.Arr
          (List.map
             (fun (e : Baseline.entry) ->
               Obs.Json.Obj
                 [
                   ("file", Obs.Json.Str e.Baseline.file);
                   ("rule", Obs.Json.Str e.Baseline.rule);
                   ("line", Obs.Json.Int e.Baseline.line);
                 ])
             t.stale_baseline) );
    ]

let print_human ppf t =
  List.iter
    (fun (f, status) ->
      match status with
      | Finding.Open -> Format.fprintf ppf "%s@." (Finding.to_string f)
      | Finding.Suppressed | Finding.Baselined ->
          Format.fprintf ppf "%s [%s]@." (Finding.to_string f) (Finding.status_name status))
    t.findings;
  List.iter
    (fun (e : Baseline.entry) ->
      Format.fprintf ppf "simlint: stale baseline entry %s %s:%d (fixed? remove it)@."
        e.Baseline.rule e.Baseline.file e.Baseline.line)
    t.stale_baseline;
  Format.fprintf ppf "simlint: %d file(s), %d open, %d suppressed, %d baselined@."
    t.files_scanned (count Finding.Open t) (count Finding.Suppressed t)
    (count Finding.Baselined t)
