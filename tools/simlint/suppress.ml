(* Per-site suppressions.

   A comment of the form

     (* simlint: allow D003 — reason *)

   on the line immediately before a finding (or on the finding's own line,
   for one-liners) silences exactly the named rules at that site. Several ids
   may be listed: [simlint: allow D001 D003 — ...]. The reason text is free
   form and ignored by the parser; reviewers enforce that it exists.

   Suppressions are recovered from the raw source text rather than the AST
   because the compiler's parser drops comments. *)

type t = (int * string) list (* (line, rule id), one entry per id *)

let is_rule_id w =
  String.length w = 4
  && w.[0] = 'D'
  && String.for_all (fun c -> c >= '0' && c <= '9') (String.sub w 1 3)

(* Split on anything that cannot be part of a rule id, so "D001," and
   "D001." parse the same as "D001". *)
let words s =
  let out = ref [] and buf = Buffer.create 8 in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := Buffer.contents buf :: !out;
      Buffer.clear buf
    end
  in
  String.iter
    (fun c ->
      if (c >= '0' && c <= '9') || (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') then
        Buffer.add_char buf c
      else flush ())
    s;
  flush ();
  List.rev !out

let marker = "simlint:"

(* Cheap containment scan for [marker] in [line]. *)
let find_marker line =
  let rec find i =
    if i + String.length marker > String.length line then None
    else if String.sub line i (String.length marker) = marker then Some i
    else find (i + 1)
  in
  find 0

let rules_of_line line =
  match String.index_opt line 's' with
  | None -> []
  | Some _ -> (
      match find_marker line with
      | None -> []
      | Some i -> (
          let rest = String.sub line (i + String.length marker) (String.length line - i - String.length marker) in
          match words rest with
          | "allow" :: ws ->
              (* Take the leading run of rule ids; the reason follows. *)
              let rec take = function
                | w :: tl when is_rule_id w -> w :: take tl
                | _ -> []
              in
              take ws
          | _ -> []))

let parse text : t =
  let lines = String.split_on_char '\n' text in
  List.concat
    (List.mapi
       (fun i line -> List.map (fun r -> (i + 1, r)) (rules_of_line line))
       lines)

(* A suppression on line L covers findings on L and L+1. *)
let covers (t : t) ~rule ~line =
  List.exists (fun (l, r) -> r = rule && (l = line || l = line - 1)) t

(* Hot-path annotations.

   A comment [(* simlint: hotpath *)] on the line immediately before a
   top-level binding (or on the binding's own first line) marks it as a
   root of the D011 allocation analysis: no expression reachable from it
   through the call graph may allocate. Parsed from the raw text for the
   same reason suppressions are — the compiler drops comments. *)

let hotpaths text : int list =
  let lines = String.split_on_char '\n' text in
  List.concat
    (List.mapi
       (fun i line ->
         match find_marker line with
         | None -> []
         | Some at -> (
             let rest =
               String.sub line (at + String.length marker)
                 (String.length line - at - String.length marker)
             in
             match words rest with "hotpath" :: _ -> [ i + 1 ] | _ -> []))
       lines)

(* An annotation on line L marks a binding whose definition starts on L or
   L+1 (mirror of [covers]). *)
let marks_hot (annotations : int list) ~line =
  List.exists (fun l -> l = line || l = line - 1) annotations
