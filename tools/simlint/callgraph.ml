(* Whole-project, module-qualified call graph over top-level [let] bindings.

   Every scanned file is parsed once (by [Driver]) and walked here to
   produce three relations the taint pass consumes:

     - nodes: one per top-level value binding (including bindings inside
       nested [module S = struct .. end]), keyed by a dotted id such as
       "Dining.Ftme.component". Files under lib/<dir>/ get the capitalized
       directory as a namespace prefix, mirroring dune's wrapped libraries,
       so both the external spelling (Dining.Ftme.f) and the intra-library
       spelling (Ftme.f) of a reference resolve to the same node.
     - edges: caller node -> callee node, one per call/reference site.
     - seeds: sites inside a node's body that touch a nondeterminism source
       directly (wall clock, Random, Sys/Unix environment, Hashtbl traversal
       order, the polymorphic Hashtbl.hash).

   Resolution is deliberately best-effort and purely syntactic: [open]s and
   module aliases are expanded, enclosing-module prefixes are tried from
   most- to least-specific, and anything that still fails to resolve (stdlib
   calls, locals, functor innards) is silently dropped. False negatives are
   acceptable — the per-file rules still catch direct sites — but every
   resolution choice is deterministic so reports replay bit-identically. *)

type input = {
  rel : string;  (** root-relative path, '/'-separated *)
  lib : bool;  (** lib rules apply (real lib/ file, or --force-lib) *)
  wallclock_ok : bool;  (** file is on the D001 allowlist: clock reads do not seed *)
  str : Parsetree.structure;
}

type node = { id : string; file : string; line : int; lib : bool }

type edge = { caller : string; callee : string; file : string; line : int; col : int }

type seed = { node : string; source : string; file : string; line : int }

type mutdef = { mnode : string; head : string; mfile : string; mline : int }
(** A top-level binding holding mutable state ([ref], [Hashtbl.create], ...)
    — the D009 sources. Unlike D008 this is collected for every scanned
    file, not just lib: parallel workers live in bin/stress/bench too. *)

type t = {
  nodes : (string * node) list;  (** sorted by id *)
  edges : edge list;  (** sorted; deduplicated *)
  seeds : seed list;  (** sorted *)
  mutables : mutdef list;  (** sorted *)
}

(* Nondeterminism sources seeded into the graph. Wall clock and randomness
   mirror D001/D002; the environment and the representation hash are taint
   sources only (no direct rule bans reading an env var — but a lib function
   whose result depends on one is not replayable). *)
let env_sources = [ "Sys.getenv"; "Sys.getenv_opt"; "Unix.getenv"; "Unix.environment" ]

let ident_sources =
  Rules.wallclock @ env_sources @ Rules.poly_hash @ [ "Hashtbl.randomize"; "Hashtbl.iter" ]

let module_of_file rel =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename rel))

(* lib/<dir>/<file>.ml -> the wrapped-library namespace, e.g. "Dining". *)
let namespace_of_file rel =
  match String.split_on_char '/' rel with
  | [ "lib"; dir; _ ] -> Some (String.capitalize_ascii dir)
  | _ -> None

let rec pat_name (p : Parsetree.pattern) =
  match p.Parsetree.ppat_desc with
  | Parsetree.Ppat_var { txt; _ } -> Some txt
  | Parsetree.Ppat_constraint (inner, _) -> pat_name inner
  | _ -> None

let dotted parts = String.concat "." parts

let pos_of (loc : Location.t) =
  let p = loc.Location.loc_start in
  (p.Lexing.pos_lnum, p.Lexing.pos_cnum - p.Lexing.pos_bol)

(* Mutable build state, folded over every file. *)
type builder = {
  mutable defs : (string * node) list;  (** canonical id -> node, newest first *)
  keys : (string, string) Hashtbl.t;  (** lookup key -> canonical id (first wins) *)
  mutable raw_edges : (string * string list * string list list * string * int * int) list;
      (** caller id, ref path parts, candidate prefixes (outermost scope first),
          file, line, col — resolved after all defs are known *)
  mutable raw_seeds : seed list;
  mutable raw_mutables : mutdef list;
}

let register_def b ~ns ~scope ~name ~file ~line ~lib =
  let id = dotted (scope @ [ name ]) in
  if not (List.mem_assoc id b.defs) then begin
    b.defs <- (id, { id; file; line; lib }) :: b.defs;
    if not (Hashtbl.mem b.keys id) then Hashtbl.add b.keys id id;
    (* Secondary, namespace-free key so intra-library references resolve. *)
    match ns with
    | Some n -> (
        match scope with
        | hd :: tl when hd = n ->
            let bare = dotted (tl @ [ name ]) in
            if not (Hashtbl.mem b.keys bare) then Hashtbl.add b.keys bare id
        | _ -> ())
    | None -> ()
  end;
  id

(* Environment threaded through the walk of one file. [aliases] maps a
   module alias to its expansion's path parts; [opens] are expanded open
   paths, innermost first. *)
type env = { scope : string list; opens : string list list; aliases : (string * string list) list }

let expand_alias env = function
  | [] -> []
  | hd :: tl -> (
      match List.assoc_opt hd env.aliases with Some exp -> exp @ tl | None -> hd :: tl)

let module_path (m : Parsetree.module_expr) =
  match m.Parsetree.pmod_desc with
  | Parsetree.Pmod_ident { txt; _ } -> (
      match Rules.flatten txt with [] -> None | parts -> Some parts)
  | _ -> None

(* Same constraint peeling as the D008 walk in [Rules]. *)
let rec peel (e : Parsetree.expression) =
  match e.Parsetree.pexp_desc with Parsetree.Pexp_constraint (inner, _) -> peel inner | _ -> e

let build (inputs : input list) : t =
  let b =
    { defs = []; keys = Hashtbl.create 256; raw_edges = []; raw_seeds = []; raw_mutables = [] }
  in
  (* ---- pass 1: definitions, raw references, seeds ---- *)
  let walk_file (inp : input) =
    let ns = namespace_of_file inp.rel in
    let root_scope =
      match ns with
      | Some n -> [ n; module_of_file inp.rel ]
      | None -> [ module_of_file inp.rel ]
    in
    (* Candidate prefixes for a reference in scope [s], most specific
       first, ending with the empty prefix (absolute reference). *)
    let rec scope_chain = function
      | [] -> [ [] ]
      | s -> s :: scope_chain (List.rev (List.tl (List.rev s)))
    in
    let prefixes env = scope_chain env.scope @ env.opens in
    (* An [open M] (or [include M]) of a module defined locally in this
       file must resolve against the enclosing scope too: inside module [A]
       of file [F], [open Impl] may mean [F.A.Impl], [F.Impl] or a global
       [Impl], so every scope-qualified variant becomes an open prefix. *)
    let open_prefixes env parts = List.map (fun s -> s @ parts) (scope_chain env.scope) in
    let record_ref env ~caller ~loc (li : Longident.t) =
      match Rules.flatten li with
      | [] -> ()
      | parts ->
          let parts = expand_alias env parts in
          let line, col = pos_of loc in
          b.raw_edges <- (caller, parts, prefixes env, inp.rel, line, col) :: b.raw_edges
    in
    let record_seed ~caller ~loc source =
      let line, _ = pos_of loc in
      b.raw_seeds <- { node = caller; source; file = inp.rel; line } :: b.raw_seeds
    in
    (* Walk one binding body, attributing refs and seeds to [caller]. The
       environment is mutable-with-restore so [let open]/[M.(..)] scopes
       extend it only for their subtree. *)
    let walk_body env0 ~caller (body : Parsetree.expression) =
      let env = ref env0 in
      (* Same sanctioning dance as the D003 rule: a [Hashtbl.fold] piped
         straight into a sort is order-free and must not seed taint. *)
      let sanctioned : (Location.t, unit) Hashtbl.t = Hashtbl.create 8 in
      let sanction (e : Parsetree.expression) =
        match e.Parsetree.pexp_desc with
        | Parsetree.Pexp_apply (f, _) -> (
            match Rules.path_of_expr f with
            | Some "Hashtbl.fold" -> Hashtbl.replace sanctioned f.Parsetree.pexp_loc ()
            | _ -> ())
        | _ -> ()
      in
      let is_sort e =
        match Rules.head_path e with Some p -> List.mem p Rules.sort_heads | None -> false
      in
      let expr (it : Ast_iterator.iterator) (e : Parsetree.expression) =
        match e.Parsetree.pexp_desc with
        | Parsetree.Pexp_open (o, body) ->
            let saved = !env in
            (match module_path o.Parsetree.popen_expr with
            | Some parts ->
                env := { !env with opens = open_prefixes !env (expand_alias !env parts) @ !env.opens }
            | None -> ());
            it.Ast_iterator.expr it body;
            env := saved
        | Parsetree.Pexp_letmodule ({ txt = Some name; _ }, m, body) ->
            let saved = !env in
            (match module_path m with
            | Some parts -> env := { !env with aliases = (name, expand_alias !env parts) :: !env.aliases }
            | None -> ());
            it.Ast_iterator.expr it body;
            env := saved
        | Parsetree.Pexp_ident { txt; loc } ->
            (match Rules.path_of_ident txt with
            | Some p
              when List.mem p ident_sources || Rules.starts_with ~prefix:"Random." p ->
                if not (inp.wallclock_ok && List.mem p Rules.wallclock) then
                  record_seed ~caller ~loc p
            | Some "Hashtbl.fold" when not (Hashtbl.mem sanctioned e.Parsetree.pexp_loc) ->
                record_seed ~caller ~loc "Hashtbl.fold (unsorted)"
            | _ -> ());
            record_ref !env ~caller ~loc txt
        | Parsetree.Pexp_apply (f, args) ->
            (match (Rules.path_of_expr f, args) with
            | Some "|>", [ (Asttypes.Nolabel, lhs); (Asttypes.Nolabel, rhs) ] when is_sort rhs ->
                sanction lhs
            | Some "@@", [ (Asttypes.Nolabel, lhs); (Asttypes.Nolabel, rhs) ] when is_sort lhs ->
                sanction rhs
            | Some p, args when List.mem p Rules.sort_heads ->
                List.iter (fun (_, a) -> sanction a) args
            | _ -> ());
            Ast_iterator.default_iterator.Ast_iterator.expr it e
        | _ -> Ast_iterator.default_iterator.Ast_iterator.expr it e
      in
      let it = { Ast_iterator.default_iterator with expr } in
      it.Ast_iterator.expr it body
    in
    let rec walk_items env items = List.iter (walk_item env) items
    and walk_item (env : env ref) (si : Parsetree.structure_item) =
      match si.Parsetree.pstr_desc with
      | Parsetree.Pstr_value (_, vbs) ->
          List.iter
            (fun (vb : Parsetree.value_binding) ->
              let line, _ = pos_of vb.Parsetree.pvb_loc in
              let caller =
                match pat_name vb.Parsetree.pvb_pat with
                | Some name ->
                    let id =
                      register_def b ~ns ~scope:!env.scope ~name ~file:inp.rel ~line ~lib:inp.lib
                    in
                    (match Rules.head_path (peel vb.Parsetree.pvb_expr) with
                    | Some h when List.mem h Rules.mutable_heads ->
                        b.raw_mutables <-
                          { mnode = id; head = h; mfile = inp.rel; mline = line } :: b.raw_mutables
                    | _ -> ());
                    id
                | None ->
                    (* Side-effecting module initialisation ([let () = ..]):
                       one synthetic node per module so cross-file taint in
                       init code is still tracked. *)
                    register_def b ~ns ~scope:!env.scope ~name:"(init)" ~file:inp.rel ~line
                      ~lib:inp.lib
              in
              walk_body !env ~caller vb.Parsetree.pvb_expr)
            vbs
      | Parsetree.Pstr_eval (e, _) ->
          let line, _ = pos_of si.Parsetree.pstr_loc in
          let caller =
            register_def b ~ns ~scope:!env.scope ~name:"(init)" ~file:inp.rel ~line ~lib:inp.lib
          in
          walk_body !env ~caller e
      | Parsetree.Pstr_open o -> (
          match module_path o.Parsetree.popen_expr with
          | Some parts ->
              env := { !env with opens = open_prefixes !env (expand_alias !env parts) @ !env.opens }
          | None -> ())
      | Parsetree.Pstr_module mb -> (
          let name = match mb.Parsetree.pmb_name.txt with Some n -> n | None -> "_" in
          match mb.Parsetree.pmb_expr.Parsetree.pmod_desc with
          | Parsetree.Pmod_ident _ -> (
              match module_path mb.Parsetree.pmb_expr with
              | Some parts -> env := { !env with aliases = (name, expand_alias !env parts) :: !env.aliases }
              | None -> ())
          | _ -> walk_module env name mb.Parsetree.pmb_expr)
      | Parsetree.Pstr_recmodule mbs ->
          List.iter
            (fun (mb : Parsetree.module_binding) ->
              let name = match mb.Parsetree.pmb_name.txt with Some n -> n | None -> "_" in
              walk_module env name mb.Parsetree.pmb_expr)
            mbs
      | Parsetree.Pstr_include i -> (
          (* [include struct .. end] contributes to the enclosing module;
             [include M] re-exports M's bindings, which for resolution
             purposes behaves like an open of M. *)
          match i.Parsetree.pincl_mod.Parsetree.pmod_desc with
          | Parsetree.Pmod_structure s -> walk_items env s
          | Parsetree.Pmod_ident _ -> (
              match module_path i.Parsetree.pincl_mod with
              | Some parts ->
                  env :=
                    { !env with opens = open_prefixes !env (expand_alias !env parts) @ !env.opens }
              | None -> ())
          | _ -> ())
      | _ -> ()
    and walk_module env name (m : Parsetree.module_expr) =
      match m.Parsetree.pmod_desc with
      | Parsetree.Pmod_structure s ->
          let saved = !env in
          env := { !env with scope = !env.scope @ [ name ] };
          walk_items env s;
          env := saved
      | Parsetree.Pmod_constraint (inner, _) -> walk_module env name inner
      | Parsetree.Pmod_functor (_, inner) ->
          (* Functor-body top-level lets register under the functor's name:
             their allocation/state is per-application, but their *call and
             message structure* is static, which is what D010/D014 need. *)
          walk_module env name inner
      | _ -> ()
    in
    let env = ref { scope = root_scope; opens = []; aliases = [] } in
    walk_items env inp.str
  in
  List.iter walk_file inputs;
  (* ---- pass 2: resolve references against the def table ---- *)
  let resolve parts prefixes =
    let rec try_prefixes = function
      | [] -> None
      | pre :: rest -> (
          match Hashtbl.find_opt b.keys (dotted (pre @ parts)) with
          | Some id -> Some id
          | None -> try_prefixes rest)
    in
    try_prefixes prefixes
  in
  let edges =
    List.filter_map
      (fun (caller, parts, prefixes, file, line, col) ->
        match resolve parts prefixes with
        | Some callee when callee <> caller -> Some { caller; callee; file; line; col }
        | _ -> None)
      b.raw_edges
    |> List.sort_uniq compare
  in
  {
    nodes = List.sort (fun (a, _) (c, _) -> String.compare a c) b.defs;
    edges;
    seeds = List.sort_uniq compare b.raw_seeds;
    mutables = List.sort_uniq compare b.raw_mutables;
  }

let find_node t id = List.assoc_opt id t.nodes

(* Iterate the top-level value bindings of one input with exactly the
   canonical ids [build] assigns its nodes (namespace prefix, nested-module
   scopes, the synthetic "(init)" for pattern-less bindings), without
   touching a builder. The allocation ([Alloc]) and escape ([Escape])
   analyses walk binding bodies through this, so a site they report always
   names a node the call-graph passes know. *)
let iter_bindings (inp : input) (f : id:string -> line:int -> is_rec:bool -> Parsetree.expression -> unit) =
  let root_scope =
    match namespace_of_file inp.rel with
    | Some n -> [ n; module_of_file inp.rel ]
    | None -> [ module_of_file inp.rel ]
  in
  let rec walk_items scope items = List.iter (walk_item scope) items
  and walk_item scope (si : Parsetree.structure_item) =
    match si.Parsetree.pstr_desc with
    | Parsetree.Pstr_value (rf, vbs) ->
        List.iter
          (fun (vb : Parsetree.value_binding) ->
            let line, _ = pos_of vb.Parsetree.pvb_loc in
            let name = Option.value ~default:"(init)" (pat_name vb.Parsetree.pvb_pat) in
            f ~id:(dotted (scope @ [ name ])) ~line
              ~is_rec:(rf = Asttypes.Recursive)
              vb.Parsetree.pvb_expr)
          vbs
    | Parsetree.Pstr_eval (e, _) ->
        let line, _ = pos_of si.Parsetree.pstr_loc in
        f ~id:(dotted (scope @ [ "(init)" ])) ~line ~is_rec:false e
    | Parsetree.Pstr_module mb -> (
        let name = match mb.Parsetree.pmb_name.txt with Some n -> n | None -> "_" in
        match mb.Parsetree.pmb_expr.Parsetree.pmod_desc with
        | Parsetree.Pmod_ident _ -> ()
        | _ -> walk_mod scope name mb.Parsetree.pmb_expr)
    | Parsetree.Pstr_recmodule mbs ->
        List.iter
          (fun (mb : Parsetree.module_binding) ->
            let name = match mb.Parsetree.pmb_name.txt with Some n -> n | None -> "_" in
            walk_mod scope name mb.Parsetree.pmb_expr)
          mbs
    | Parsetree.Pstr_include i -> (
        match i.Parsetree.pincl_mod.Parsetree.pmod_desc with
        | Parsetree.Pmod_structure s -> walk_items scope s
        | _ -> ())
    | _ -> ()
  and walk_mod scope name (m : Parsetree.module_expr) =
    match m.Parsetree.pmod_desc with
    | Parsetree.Pmod_structure s -> walk_items (scope @ [ name ]) s
    | Parsetree.Pmod_constraint (inner, _) -> walk_mod scope name inner
    | Parsetree.Pmod_functor (_, inner) -> walk_mod scope name inner
    | _ -> ()
  in
  walk_items root_scope inp.str
