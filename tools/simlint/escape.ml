(* Domain-escape race analysis (rule D012) and quadratic-accumulation
   detection (rule D013).

   D012 — three closely related hazards around [Exec.Pool]:

     (a) a closure passed directly to a [Pool.map]/[Pool.iter] dispatch
         captures a locally-bound [ref]: every worker domain shares the
         cell and races on it. Refs are flagged on ANY captured use — even
         a read races with a concurrent write, and a captured ref in a
         worker is wrong in shape regardless.
     (b) the closure captures a locally-bound mutable container
         ([Array.make], [Hashtbl.create], [Buffer.create], ...) AND
         mutates it inside the closure body. Read-only capture of a
         warmed structure is the standard fan-out idiom and stays clean;
         writes from several domains are data races.
     (c) a non-atomic read-modify-write on an [Atomic.t]:
         [Atomic.set a (... Atomic.get a ...)] loses concurrent updates —
         the two halves do not compose into one atomic step. Use
         [Atomic.fetch_and_add] or a [compare_and_set] retry loop.

   Origins flow through [let] aliases ([let view = table in ...]); values
   born from [Atomic.make]/[Mutex.create] are protected and never flagged
   by (a)/(b). This is sharper than D009, which only sees module-level
   mutable state through the call graph: D012 tracks the locals D009 is
   blind to and points at the precise captured name. Module-level state
   stays D009's business, so the two rules never double-report one site.

   D013 — an accumulator built with [@]/[List.append]/[^]/
   [Buffer.contents] inside the argument of a recursive self-call:
   each iteration copies the whole accumulator, so the loop is O(n^2)
   where consing + one final [List.rev] (or a Buffer kept open) is O(n).
   Only arguments of calls to an enclosing [let rec] are examined —
   divide-and-conquer code that merges sibling results with [@] outside
   the self-call stays clean. *)

module SS = Set.Make (String)

(* What a tracked local was born from. *)
type origin =
  | Ref  (** [ref e] — flagged on any captured use *)
  | Store of string  (** mutable container; flagged when mutated in-closure *)
  | Protected  (** [Atomic.make] / [Mutex.create] — never flagged *)

let store_heads =
  [
    "Hashtbl.create"; "Queue.create"; "Stack.create"; "Buffer.create"; "Bytes.create";
    "Bytes.make"; "Array.make"; "Array.init"; "Array.copy"; "Array.of_list"; "Array.append";
    "Array.sub"; "Array.make_matrix"; "Vec.create"; "Dsim.Vec.create";
  ]

(* Mutating stdlib entry points, matched on their last two path segments so
   [Dsim.Vec.set] and a local [Vec.set] both hit "Vec.set". The mutated
   value is the first unlabeled argument. *)
let mutator_tails =
  [
    "Array.set"; "Array.unsafe_set"; "Array.fill"; "Array.blit"; "Bytes.set";
    "Bytes.unsafe_set"; "Bytes.fill"; "Bytes.blit"; "Hashtbl.add"; "Hashtbl.replace";
    "Hashtbl.remove"; "Hashtbl.reset"; "Hashtbl.clear"; "Buffer.add_char"; "Buffer.add_string";
    "Buffer.add_bytes"; "Buffer.add_substring"; "Buffer.clear"; "Buffer.reset";
    "Buffer.truncate"; "Queue.push"; "Queue.add"; "Queue.pop"; "Queue.take"; "Queue.clear";
    "Queue.transfer"; "Stack.push"; "Stack.pop"; "Stack.clear"; "Vec.add_last"; "Vec.set";
    "Vec.clear"; "Vec.remove_last";
  ]

let tail2 path =
  match List.rev (String.split_on_char '.' path) with
  | f :: m :: _ -> m ^ "." ^ f
  | _ -> path

let first_nolabel args =
  List.find_map
    (fun (l, a) -> if l = Asttypes.Nolabel then Some (Callgraph.peel a) else None)
    args

let ident_name (e : Parsetree.expression) =
  match (Callgraph.peel e).Parsetree.pexp_desc with
  | Parsetree.Pexp_ident { txt = Longident.Lident x; _ } -> Some x
  | _ -> None

(* Does [body] mutate the local [v]? Purely syntactic: [v := ..],
   [v.f <- ..], [incr v]/[decr v], or [v] as the first unlabeled argument
   of a known mutator (which covers the [a.(i) <- x] sugar via
   [Array.set]). *)
let mutates body v =
  let hit = ref false in
  let expr it (e : Parsetree.expression) =
    (match e.Parsetree.pexp_desc with
    | Parsetree.Pexp_setfield (r, _, _) when ident_name r = Some v -> hit := true
    | Parsetree.Pexp_apply (f, args) -> (
        let first_is_v () =
          match first_nolabel args with Some a -> ident_name a = Some v | None -> false
        in
        match Rules.path_of_expr f with
        | Some (":=" | "incr" | "decr") when first_is_v () -> hit := true
        | Some p when List.mem (tail2 p) mutator_tails -> if first_is_v () then hit := true
        | _ -> ())
    | _ -> ());
    Ast_iterator.default_iterator.Ast_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with Ast_iterator.expr = expr } in
  it.Ast_iterator.expr it body;
  !hit

(* Does [e] read [Atomic.get] of the atomic named [path]? *)
let reads_atomic e path =
  let hit = ref false in
  let expr it (e : Parsetree.expression) =
    (match e.Parsetree.pexp_desc with
    | Parsetree.Pexp_apply (f, args) when Rules.path_of_expr f = Some "Atomic.get" -> (
        match first_nolabel args with
        | Some a when Rules.path_of_expr a = Some path -> hit := true
        | _ -> ())
    | _ -> ());
    Ast_iterator.default_iterator.Ast_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with Ast_iterator.expr = expr } in
  it.Ast_iterator.expr it e;
  !hit

(* Accumulating operations that copy their left operand. *)
let accumulating = [ "@"; "List.append"; "^"; "Buffer.contents"; "Buffer.to_bytes" ]

let findings (inputs : Callgraph.input list) : Finding.t list =
  let out = ref [] in
  let reported : (string * int * int * string, unit) Hashtbl.t = Hashtbl.create 16 in
  let report ~sym ~rel ~loc msg =
    let line, col = Callgraph.pos_of loc in
    if not (Hashtbl.mem reported (rel, line, col, sym)) then begin
      Hashtbl.replace reported (rel, line, col, sym) ();
      out := Finding.with_sym sym (Finding.make ~rule:"D012" ~file:rel ~line ~col ~msg) :: !out
    end
  in
  let report_d013 ~sym ~rel ~loc msg =
    let line, col = Callgraph.pos_of loc in
    if not (Hashtbl.mem reported (rel, line, col, sym)) then begin
      Hashtbl.replace reported (rel, line, col, sym) ();
      out := Finding.with_sym sym (Finding.make ~rule:"D013" ~file:rel ~line ~col ~msg) :: !out
    end
  in
  let walk_input (inp : Callgraph.input) =
    let rel = inp.Callgraph.rel in
    Callgraph.iter_bindings inp (fun ~id ~line:_ ~is_rec body ->
        (* Tracked locals: name -> origin; scoping by save/restore. *)
        let env : (string, origin) Hashtbl.t = Hashtbl.create 16 in
        (* Names of enclosing [let rec] functions whose loop body the walk
           is currently inside (for D013 self-call detection). *)
        let rec_names = ref SS.empty in
        let origin_of (e : Parsetree.expression) =
          let e = Callgraph.peel e in
          match Rules.head_path e with
          | Some "ref" -> Some Ref
          | Some ("Atomic.make" | "Mutex.create" | "Semaphore.Counting.make") -> Some Protected
          | Some h when List.mem h store_heads || List.mem (tail2 h) store_heads ->
              Some (Store h)
          | _ -> (
              (* alias of an already-tracked local *)
              match ident_name e with
              | Some w -> Hashtbl.find_opt env w
              | None -> None)
        in
        let rec it =
          {
            Ast_iterator.default_iterator with
            Ast_iterator.expr = (fun _ e -> expr e);
          }
        and walk_default e = Ast_iterator.default_iterator.Ast_iterator.expr it e
        and check_dispatch (e : Parsetree.expression) f args =
          match Rules.path_of_expr f with
          | Some p when Taint.pool_dispatch_id p ->
              List.iter
                (fun (_, a) ->
                  let a = Callgraph.peel a in
                  match a.Parsetree.pexp_desc with
                  | Parsetree.Pexp_fun _ | Parsetree.Pexp_function _ ->
                      SS.iter
                        (fun v ->
                          match Hashtbl.find_opt env v with
                          | Some Ref ->
                              report ~sym:(Printf.sprintf "%s:%s:escape" id v) ~rel
                                ~loc:e.Parsetree.pexp_loc
                                (Printf.sprintf
                                   "worker closure passed to %s captures mutable `%s` (ref) \
                                    — domains race on the shared cell; use Atomic, a Mutex, \
                                    or make workers pure functions of their index"
                                   p v)
                          | Some (Store h) when mutates a v ->
                              report ~sym:(Printf.sprintf "%s:%s:escape" id v) ~rel
                                ~loc:e.Parsetree.pexp_loc
                                (Printf.sprintf
                                   "worker closure passed to %s captures and mutates `%s` \
                                    (%s) — concurrent writes from worker domains race; \
                                    collect per-index results instead"
                                   p v h)
                          | _ -> ())
                        (Alloc.free_vars a)
                  | _ -> ())
                args
          | _ -> ()
        and check_rmw (e : Parsetree.expression) f args =
          if Rules.path_of_expr f = Some "Atomic.set" then
            match args with
            | (_, target) :: (_, value) :: _ -> (
                match Rules.path_of_expr (Callgraph.peel target) with
                | Some apath when reads_atomic value apath ->
                    report ~sym:(Printf.sprintf "%s:%s:rmw" id apath) ~rel
                      ~loc:e.Parsetree.pexp_loc
                      (Printf.sprintf
                         "non-atomic read-modify-write on Atomic `%s` (get then set loses \
                          concurrent updates); use Atomic.fetch_and_add or a \
                          compare_and_set loop"
                         apath)
                | _ -> ())
            | _ -> ()
        and check_self_call f args =
          match Rules.path_of_expr f with
          | Some p when SS.mem p !rec_names ->
              List.iter
                (fun (_, a) ->
                  let acc_site = ref None in
                  let expr it (e : Parsetree.expression) =
                    (match e.Parsetree.pexp_desc with
                    | Parsetree.Pexp_apply (g, _) -> (
                        match Rules.path_of_expr g with
                        | Some op when List.mem op accumulating && !acc_site = None ->
                            acc_site := Some (e.Parsetree.pexp_loc, op)
                        | _ -> ())
                    | _ -> ());
                    Ast_iterator.default_iterator.Ast_iterator.expr it e
                  in
                  let it = { Ast_iterator.default_iterator with Ast_iterator.expr = expr } in
                  it.Ast_iterator.expr it a;
                  match !acc_site with
                  | Some (loc, op) ->
                      report_d013 ~sym:(Printf.sprintf "%s:%s:quad" id p) ~rel ~loc
                        (Printf.sprintf
                           "accumulator built with `%s` inside recursive calls to %s — each \
                            iteration copies the whole accumulator (O(n^2)); cons and \
                            reverse once, or keep a Buffer open"
                           op p)
                  | None -> ())
                args
          | _ -> ()
        and expr (e : Parsetree.expression) =
          match e.Parsetree.pexp_desc with
          | Parsetree.Pexp_let (rf, vbs, letbody) ->
              let bound =
                List.filter_map
                  (fun (vb : Parsetree.value_binding) -> Callgraph.pat_name vb.Parsetree.pvb_pat)
                  vbs
              in
              let is_fun (vb : Parsetree.value_binding) =
                match (Callgraph.peel vb.Parsetree.pvb_expr).Parsetree.pexp_desc with
                | Parsetree.Pexp_fun _ | Parsetree.Pexp_function _ -> true
                | _ -> false
              in
              let saved_rec = !rec_names in
              (if rf = Asttypes.Recursive then
                 rec_names :=
                   List.fold_left
                     (fun s (vb : Parsetree.value_binding) ->
                       match Callgraph.pat_name vb.Parsetree.pvb_pat with
                       | Some n when is_fun vb -> SS.add n s
                       | _ -> s)
                     !rec_names vbs);
              List.iter (fun (vb : Parsetree.value_binding) -> expr vb.Parsetree.pvb_expr) vbs;
              (* Self-calls matter inside the loop bodies only: the call in
                 the continuation below is the loop's entry, not an
                 iteration. *)
              rec_names := saved_rec;
              let saved =
                List.map (fun v -> (v, Hashtbl.find_opt env v)) bound
              in
              List.iter
                (fun (vb : Parsetree.value_binding) ->
                  match Callgraph.pat_name vb.Parsetree.pvb_pat with
                  | Some v -> (
                      match origin_of vb.Parsetree.pvb_expr with
                      | Some o -> Hashtbl.replace env v o
                      | None -> Hashtbl.remove env v)
                  | None -> ())
                vbs;
              expr letbody;
              List.iter
                (fun (v, prev) ->
                  match prev with
                  | Some o -> Hashtbl.replace env v o
                  | None -> Hashtbl.remove env v)
                saved
          | Parsetree.Pexp_apply (f, args) ->
              check_dispatch e f args;
              check_rmw e f args;
              check_self_call f args;
              walk_default e
          | _ -> walk_default e
        in
        let saved_rec = !rec_names in
        (if is_rec then
           match List.rev (String.split_on_char '.' id) with
           | name :: _ when name <> "(init)" -> rec_names := SS.add name !rec_names
           | _ -> ());
        expr body;
        rec_names := saved_rec)
  in
  List.iter walk_input inputs;
  List.rev !out
