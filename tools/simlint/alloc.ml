(* Hot-path allocation analysis (rule D011).

   A function marked [(* simlint: hotpath *)] (or named in the driver's
   hot-root config) promises to stay allocation-free: the engine's step
   dispatch runs millions of times per campaign, and every word it
   allocates per call is GC pressure multiplying across the sweep. This
   pass classifies the allocating expressions inside every top-level
   binding, computes forward reachability over the [Callgraph] from the
   hot roots (reusing the [Taint] BFS on a flipped edge set), and reports
   one D011 per allocation site in a reached node, carrying the full
   "hot caller -> ... -> allocating callee" chain.

   Classified allocation kinds, all purely syntactic:

     - closure construction: a nested [fun]/[function] whose free
       variables intersect the enclosing bindings (a capture-free lambda
       is hoisted to a static closure by the compiler and costs nothing);
       a local [let rec f] always counts — the self-reference makes the
       closure block cyclic, so it is rebuilt per call.
     - tuples, records, non-empty array literals, list cons cells,
       constructors and polymorphic variants with a payload, [lazy] — all
       skipped when the whole expression is a structured constant, which
       ocamlopt lifts to static data.
     - calls to known allocators ([@]/[List.append], [^]/[String.concat],
       [ref], [Printf.sprintf], [Array.make], [Buffer.contents], ...).
     - partial application of a known-arity stdlib function (builds a
       closure at each call).

   Float boxing is deliberately not a kind of its own: a float only boxes
   when stored into a generic position — a tuple, record, ref or
   constructor — and those enclosing constructions are already sites.
   [Int64] arithmetic is likewise not classified: ocamlopt unboxes local
   Int64 flows, and flagging them would drown the PRNG in noise.

   Sites are only collected inside bindings that are syntactic functions:
   a structured constant or one-off computation bound at module top level
   allocates once at init, not per hot call. *)

module SS = Set.Make (String)

let pat_vars (p : Parsetree.pattern) : SS.t =
  let acc = ref SS.empty in
  let pat it (p : Parsetree.pattern) =
    (match p.Parsetree.ppat_desc with
    | Parsetree.Ppat_var { txt; _ } -> acc := SS.add txt !acc
    | Parsetree.Ppat_alias (_, { txt; _ }) -> acc := SS.add txt !acc
    | _ -> ());
    Ast_iterator.default_iterator.Ast_iterator.pat it p
  in
  let it = { Ast_iterator.default_iterator with pat } in
  it.Ast_iterator.pat it p;
  !acc

(* Unqualified identifiers of [e0] not bound within it. Module-qualified
   paths are globals and never captures. Scoping is handled for the forms
   that bind ([fun], [let], cases, [for]); everything else falls through
   to the default traversal. *)
let free_vars (e0 : Parsetree.expression) : SS.t =
  let free = ref SS.empty in
  let bound = ref SS.empty in
  let scoped extra k =
    let saved = !bound in
    bound := SS.union saved extra;
    k ();
    bound := saved
  in
  let rec it =
    {
      Ast_iterator.default_iterator with
      Ast_iterator.expr = (fun _ e -> expr e);
      case = (fun _ c -> case c);
      pat = (fun _ _ -> ());
    }
  and expr (e : Parsetree.expression) =
    match e.Parsetree.pexp_desc with
    | Parsetree.Pexp_ident { txt = Longident.Lident x; _ } ->
        if not (SS.mem x !bound) then free := SS.add x !free
    | Parsetree.Pexp_fun (_, dflt, pat, body) ->
        Option.iter expr dflt;
        scoped (pat_vars pat) (fun () -> expr body)
    | Parsetree.Pexp_let (rf, vbs, body) ->
        let names =
          List.fold_left
            (fun s (vb : Parsetree.value_binding) -> SS.union s (pat_vars vb.Parsetree.pvb_pat))
            SS.empty vbs
        in
        (if rf = Asttypes.Recursive then
           scoped names (fun () ->
               List.iter (fun (vb : Parsetree.value_binding) -> expr vb.Parsetree.pvb_expr) vbs)
         else
           List.iter (fun (vb : Parsetree.value_binding) -> expr vb.Parsetree.pvb_expr) vbs);
        scoped names (fun () -> expr body)
    | Parsetree.Pexp_for (pat, lo, hi, _, body) ->
        expr lo;
        expr hi;
        scoped (pat_vars pat) (fun () -> expr body)
    | _ -> Ast_iterator.default_iterator.Ast_iterator.expr it e
  and case (c : Parsetree.case) =
    scoped (pat_vars c.Parsetree.pc_lhs) (fun () ->
        Option.iter expr c.Parsetree.pc_guard;
        expr c.Parsetree.pc_rhs)
  in
  expr e0;
  !free

(* Known allocating calls: path (after the Stdlib. strip that
   [Rules.path_of_ident] already performs) -> short kind slug. *)
let allocating_calls =
  [
    ("@", "list-append");
    ("List.append", "list-append");
    ("List.rev_append", "list-append");
    ("^", "string-concat");
    ("String.concat", "string-concat");
    ("ref", "ref");
    ("List.map", "list-build");
    ("List.mapi", "list-build");
    ("List.rev_map", "list-build");
    ("List.filter", "list-build");
    ("List.filter_map", "list-build");
    ("List.concat", "list-build");
    ("List.concat_map", "list-build");
    ("List.flatten", "list-build");
    ("List.init", "list-build");
    ("List.rev", "list-build");
    ("List.split", "list-build");
    ("List.combine", "list-build");
    ("List.of_seq", "list-build");
    ("List.sort", "list-build");
    ("List.sort_uniq", "list-build");
    ("List.stable_sort", "list-build");
    ("List.fast_sort", "list-build");
    ("Array.make", "array-build");
    ("Array.init", "array-build");
    ("Array.create_float", "array-build");
    ("Array.copy", "array-build");
    ("Array.append", "array-build");
    ("Array.concat", "array-build");
    ("Array.sub", "array-build");
    ("Array.of_list", "array-build");
    ("Array.to_list", "list-build");
    ("Array.map", "array-build");
    ("Array.mapi", "array-build");
    ("Array.make_matrix", "array-build");
    ("Array.of_seq", "array-build");
    ("Array.to_seq", "seq-build");
    ("String.make", "string-build");
    ("String.init", "string-build");
    ("String.sub", "string-build");
    ("String.map", "string-build");
    ("String.split_on_char", "string-build");
    ("String.uppercase_ascii", "string-build");
    ("String.lowercase_ascii", "string-build");
    ("String.capitalize_ascii", "string-build");
    ("String.trim", "string-build");
    ("String.escaped", "string-build");
    ("Bytes.create", "bytes-build");
    ("Bytes.make", "bytes-build");
    ("Bytes.init", "bytes-build");
    ("Bytes.sub", "bytes-build");
    ("Bytes.copy", "bytes-build");
    ("Bytes.of_string", "bytes-build");
    ("Bytes.to_string", "string-build");
    ("Bytes.sub_string", "string-build");
    ("Bytes.extend", "bytes-build");
    ("Bytes.cat", "bytes-build");
    ("Buffer.create", "buffer-build");
    ("Buffer.contents", "string-build");
    ("Buffer.to_bytes", "bytes-build");
    ("Buffer.sub", "string-build");
    ("Printf.sprintf", "printf");
    ("Printf.printf", "printf");
    ("Printf.eprintf", "printf");
    ("Printf.fprintf", "printf");
    ("Format.sprintf", "printf");
    ("Format.asprintf", "printf");
    ("Format.printf", "printf");
    ("Hashtbl.create", "hashtbl");
    ("Hashtbl.add", "hashtbl");
    ("Hashtbl.replace", "hashtbl");
    ("Hashtbl.copy", "hashtbl");
    ("Queue.create", "queue");
    ("Queue.push", "queue");
    ("Queue.add", "queue");
    ("Stack.create", "stack");
    ("Stack.push", "stack");
    ("string_of_int", "string-build");
    ("string_of_float", "string-build");
    ("Int.to_string", "string-build");
    ("Int64.to_string", "string-build");
    ("Float.to_string", "string-build");
  ]

(* Functions that do NOT otherwise allocate, but whose partial application
   builds a closure: path -> number of unlabeled parameters. *)
let known_arity =
  [
    ("List.iter", 2);
    ("List.iteri", 2);
    ("List.fold_left", 3);
    ("List.exists", 2);
    ("List.for_all", 2);
    ("Array.iter", 2);
    ("Array.iteri", 2);
    ("Array.fold_left", 3);
    ("Array.set", 3);
    ("Array.get", 2);
    ("Array.fill", 4);
    ("Array.blit", 5);
    ("Hashtbl.find", 2);
    ("Hashtbl.find_opt", 2);
    ("Hashtbl.mem", 2);
    ("Atomic.get", 1);
    ("Atomic.set", 2);
    ("min", 2);
    ("max", 2);
    ("compare", 2);
  ]

(* Structured constants are lifted to static data by ocamlopt; an
   identifier is conservatively non-constant. *)
let rec is_const (e : Parsetree.expression) =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_constant _ -> true
  | Parsetree.Pexp_construct (_, None) -> true
  | Parsetree.Pexp_construct (_, Some arg) -> is_const arg
  | Parsetree.Pexp_variant (_, None) -> true
  | Parsetree.Pexp_variant (_, Some arg) -> is_const arg
  | Parsetree.Pexp_tuple es -> List.for_all is_const es
  | Parsetree.Pexp_array es -> List.for_all is_const es
  | Parsetree.Pexp_constraint (inner, _) -> is_const inner
  | _ -> false

type site = {
  line : int;
  col : int;
  kind : string;  (** human description, e.g. "closure capturing p, t" *)
  slug : string;  (** compact kind for the baseline symbol key *)
}

let site_of ~loc ~kind ~slug =
  let line, col = Callgraph.pos_of loc in
  { line; col; kind; slug }

(* Peel the parameter chain of a binding: returns [Some (params, body)]
   when the bound expression is a syntactic function, [None] otherwise
   (then the binding runs once at module init and is not a D011 target).
   A [function] head binds per-case; its scrutinee parameter is
   implicit. *)
let rec peel_fun (e : Parsetree.expression) (params : SS.t) =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_fun (_, _, pat, body) -> peel_fun body (SS.union params (pat_vars pat))
  | Parsetree.Pexp_newtype (_, body) -> peel_fun body params
  | Parsetree.Pexp_constraint (inner, _) -> peel_fun inner params
  | Parsetree.Pexp_function _ -> Some (params, e)
  | _ -> if SS.is_empty params then None else Some (params, e)

(* Collect the allocation sites of one function binding. [locals] tracks
   every name bound since the binding's head (parameters included): a
   nested lambda is a per-call closure exactly when its free variables
   meet that set. *)
let sites_of_binding (e0 : Parsetree.expression) : site list =
  match peel_fun e0 SS.empty with
  | None -> []
  | Some (params, body) ->
      let sites = ref [] in
      let add s = sites := s :: !sites in
      let locals = ref params in
      let scoped extra k =
        let saved = !locals in
        locals := SS.union saved extra;
        k ();
        locals := saved
      in
      let closure_site (e : Parsetree.expression) =
        let captured = SS.inter (free_vars e) !locals in
        if not (SS.is_empty captured) then
          add
            (site_of ~loc:e.Parsetree.pexp_loc
               ~kind:
                 (Printf.sprintf "closure capturing %s"
                    (String.concat ", " (SS.elements captured)))
               ~slug:"closure")
      in
      let rec it =
        {
          Ast_iterator.default_iterator with
          Ast_iterator.expr = (fun _ e -> expr e);
          case = (fun _ c -> case c);
          pat = (fun _ _ -> ());
        }
      and walk_default e = Ast_iterator.default_iterator.Ast_iterator.expr it e
      and expr (e : Parsetree.expression) =
        match e.Parsetree.pexp_desc with
        | Parsetree.Pexp_fun (_, dflt, pat, body) ->
            closure_site e;
            Option.iter expr dflt;
            scoped (pat_vars pat) (fun () -> expr body)
        | Parsetree.Pexp_function _ ->
            closure_site e;
            walk_default e
        | Parsetree.Pexp_let (rf, vbs, body) ->
            let names =
              List.fold_left
                (fun s (vb : Parsetree.value_binding) ->
                  SS.union s (pat_vars vb.Parsetree.pvb_pat))
                SS.empty vbs
            in
            (* [let rec f] allocates a cyclic closure per entry even with no
               other capture: record the self name as a local before the
               capture check so the analysis sees it. *)
            (if rf = Asttypes.Recursive then
               scoped names (fun () ->
                   List.iter
                     (fun (vb : Parsetree.value_binding) -> expr vb.Parsetree.pvb_expr)
                     vbs)
             else
               List.iter (fun (vb : Parsetree.value_binding) -> expr vb.Parsetree.pvb_expr) vbs);
            scoped names (fun () -> expr body)
        | Parsetree.Pexp_for (pat, lo, hi, _, body) ->
            expr lo;
            expr hi;
            scoped (pat_vars pat) (fun () -> expr body)
        | Parsetree.Pexp_tuple _ when not (is_const e) ->
            add (site_of ~loc:e.Parsetree.pexp_loc ~kind:"tuple" ~slug:"tuple");
            walk_default e
        | Parsetree.Pexp_record _ ->
            add (site_of ~loc:e.Parsetree.pexp_loc ~kind:"record" ~slug:"record");
            walk_default e
        | Parsetree.Pexp_array (_ :: _) when not (is_const e) ->
            add (site_of ~loc:e.Parsetree.pexp_loc ~kind:"array literal" ~slug:"array");
            walk_default e
        | Parsetree.Pexp_construct ({ txt; _ }, Some _) when not (is_const e) ->
            let name = match Rules.flatten txt with [] -> "?" | p -> List.nth p (List.length p - 1) in
            add
              (site_of ~loc:e.Parsetree.pexp_loc
                 ~kind:
                   (if name = "::" then "list cons"
                    else Printf.sprintf "constructor %s with payload" name)
                 ~slug:(if name = "::" then "cons" else "construct"));
            walk_default e
        | Parsetree.Pexp_variant (_, Some _) when not (is_const e) ->
            add
              (site_of ~loc:e.Parsetree.pexp_loc ~kind:"polymorphic variant with payload"
                 ~slug:"variant");
            walk_default e
        | Parsetree.Pexp_lazy _ ->
            add (site_of ~loc:e.Parsetree.pexp_loc ~kind:"lazy block" ~slug:"lazy");
            walk_default e
        | Parsetree.Pexp_apply (f, args) ->
            (match Rules.path_of_expr f with
            | Some p -> (
                match List.assoc_opt p allocating_calls with
                | Some slug ->
                    add
                      (site_of ~loc:e.Parsetree.pexp_loc
                         ~kind:(Printf.sprintf "call to allocator %s" p)
                         ~slug)
                | None -> (
                    match List.assoc_opt p known_arity with
                    | Some arity
                      when List.length
                             (List.filter (fun (l, _) -> l = Asttypes.Nolabel) args)
                           < arity ->
                        add
                          (site_of ~loc:e.Parsetree.pexp_loc
                             ~kind:(Printf.sprintf "partial application of %s" p)
                             ~slug:"partial")
                    | _ -> ()))
            | None -> ());
            walk_default e
        | Parsetree.Pexp_ident _ | Parsetree.Pexp_constant _ -> ()
        | _ -> walk_default e
      and case (c : Parsetree.case) =
        scoped (pat_vars c.Parsetree.pc_lhs) (fun () ->
            Option.iter expr c.Parsetree.pc_guard;
            expr c.Parsetree.pc_rhs)
      in
      (* A [function] at the head of the binding is the binding's own body
         (its implicit parameter), not a nested closure: enter its cases
         directly so it is never counted as a capture site. *)
      (match body.Parsetree.pexp_desc with
      | Parsetree.Pexp_function _ -> walk_default body
      | _ -> expr body);
      List.rev !sites

(* One scanned file plus the lines carrying a [(* simlint: hotpath *)]
   annotation (from [Suppress.hotpaths]). *)
type file = { input : Callgraph.input; hot_lines : int list }

let findings (files : file list) (g : Callgraph.t) ~(roots : string list) : Finding.t list =
  (* Per-node allocation sites, and the hot roots the annotations name. *)
  let node_sites : (string * string * site list) list ref = ref [] in
  let annotated = ref [] in
  List.iter
    (fun f ->
      Callgraph.iter_bindings f.input (fun ~id ~line ~is_rec:_ body ->
          if Suppress.marks_hot f.hot_lines ~line then annotated := id :: !annotated;
          match sites_of_binding body with
          | [] -> ()
          | sites -> node_sites := (id, f.input.Callgraph.rel, sites) :: !node_sites))
    files;
  let roots = List.sort_uniq String.compare (roots @ !annotated) in
  let seeds =
    List.map
      (fun r ->
        let file, line =
          match Callgraph.find_node g r with
          | Some n -> (n.Callgraph.file, n.Callgraph.line)
          | None -> ("", 0)
        in
        ( r,
          { Taint.trail = [ r ]; source = r; source_file = file; source_line = line } ))
      roots
  in
  let reached = Taint.propagate_forward g seeds in
  List.concat_map
    (fun (id, rel, sites) ->
      match Hashtbl.find_opt reached id with
      | None -> []
      | Some c ->
          let chain = List.rev c.Taint.trail in
          let root = List.hd chain in
          let chain_str = String.concat " -> " chain in
          List.map
            (fun s ->
              Finding.with_sym
                (Printf.sprintf "%s->%s:%s" root id s.slug)
              @@ Finding.make ~rule:"D011" ~file:rel ~line:s.line ~col:s.col
                   ~msg:
                  (Printf.sprintf
                     "allocation on the hot path: %s in %s (chain %s); hot-path code must \
                      stay allocation-free — hoist it, reuse scratch state, or justify the \
                      site"
                     s.kind id chain_str))
            sites)
    (List.sort compare !node_sites)
