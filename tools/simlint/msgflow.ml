(* Protocol message-flow analysis (rules D014/D015).

   The engine routes messages through the extensible variant [Dsim.Msg.t],
   so OCaml's exhaustiveness checker is structurally blind to the protocol
   layer: every [match] on a message needs a catch-all arm, and nothing in
   the type system notices when an algorithm starts sending a constructor
   nobody handles. This pass closes that gap syntactically:

   D014  a constructor declared via [type Msg.t += C ...] is constructed
         somewhere in the scanned tree, but no handler arm ([| C ... ->])
         matches it anywhere. The finding lands on the (first) construction
         site and names the enclosing top-level binding and the declaration
         site.

   D015  a [match]/[function] that handles at least one declared protocol
         constructor also has a literal catch-all arm ([| _ ->] or
         [| exception _ ->]). Extensible variants *require* some catch-all,
         so in handler position the wildcard silently absorbs any protocol
         constructor added later — exactly the silent-message-drop class
         the paper's liveness lemmas assume away. Every such arm must carry
         a [(* simlint: allow D015 — reason *)] justification (or bind a
         named wildcard, which reviewers can see is deliberate).

   Matching is keyed on the constructor's *name*, not its module path:
   declarations are indexed project-wide and a pattern [Wf_ewx.Fork] and a
   bare [Fork] both count as handlers for a declared [Fork]. That makes the
   pass module-blind (two libraries declaring a same-named constructor
   alias each other), which is the deliberate cheap-over-sound trade the
   whole linter makes: false negatives are acceptable, nondeterministic or
   spurious findings are not. Constructors that are declared but never
   constructed in the scanned tree (e.g. the built-in [Unit_msg] family,
   which only tests exercise) do not fire. *)

module SS = Set.Make (String)

type decl = { ctor : string; dfile : string; dline : int }

(* [type Msg.t += ...] and [type Dsim.Msg.t += ...] both declare protocol
   messages; any other extensible type is not our business. Inside
   [lib/dsim/msg.ml] itself the extension is spelled on the bare [t], so a
   file whose module is [Msg] counts its own [type t +=] too. *)
let is_msg_t ~in_msg_module parts =
  match List.rev parts with
  | "t" :: "Msg" :: _ -> true
  | [ "t" ] -> in_msg_module
  | _ -> false

let declared (inputs : Callgraph.input list) : decl list =
  let out = ref [] in
  let walk_input (inp : Callgraph.input) =
    let in_msg_module = Callgraph.module_of_file inp.Callgraph.rel = "Msg" in
    let type_extension (it : Ast_iterator.iterator) (te : Parsetree.type_extension) =
      if is_msg_t ~in_msg_module (Rules.flatten te.Parsetree.ptyext_path.Location.txt) then
        List.iter
          (fun (ec : Parsetree.extension_constructor) ->
            match ec.Parsetree.pext_kind with
            | Parsetree.Pext_decl _ ->
                let line, _ = Callgraph.pos_of ec.Parsetree.pext_loc in
                out :=
                  { ctor = ec.Parsetree.pext_name.Location.txt; dfile = inp.Callgraph.rel; dline = line }
                  :: !out
            | Parsetree.Pext_rebind _ -> ())
          te.Parsetree.ptyext_constructors;
      Ast_iterator.default_iterator.Ast_iterator.type_extension it te
    in
    let it = { Ast_iterator.default_iterator with type_extension } in
    it.Ast_iterator.structure it inp.Callgraph.str
  in
  List.iter walk_input inputs;
  (* Sorted for determinism; duplicates (same name re-declared in another
     file) collapse to the first declaration site. *)
  List.sort_uniq compare (List.rev !out)

let last_segment li = match List.rev (Rules.flatten li) with s :: _ -> Some s | _ -> None

(* Constructor names mentioned anywhere in a pattern (through or-patterns,
   aliases, tuples, payloads). *)
let pat_ctors (p : Parsetree.pattern) : SS.t =
  let acc = ref SS.empty in
  let pat (it : Ast_iterator.iterator) (p : Parsetree.pattern) =
    (match p.Parsetree.ppat_desc with
    | Parsetree.Ppat_construct ({ txt; _ }, _) -> (
        match last_segment txt with Some s -> acc := SS.add s !acc | None -> ())
    | _ -> ());
    Ast_iterator.default_iterator.Ast_iterator.pat it p
  in
  let it = { Ast_iterator.default_iterator with pat } in
  it.Ast_iterator.pat it p;
  !acc

(* A case arm that is a literal catch-all: [_], possibly behind an alias or
   type constraint, or [exception _]. A *named* wildcard ([| other -> ...])
   is deliberate and stays clean. *)
let rec catchall_pat (p : Parsetree.pattern) =
  match p.Parsetree.ppat_desc with
  | Parsetree.Ppat_any -> true
  | Parsetree.Ppat_alias (inner, _) | Parsetree.Ppat_constraint (inner, _)
  | Parsetree.Ppat_exception inner ->
      catchall_pat inner
  | _ -> false

type construction = { cnode : string; cfile : string; cline : int; ccol : int }

let findings (inputs : Callgraph.input list) : Finding.t list =
  let decls = declared inputs in
  let decl_names = List.fold_left (fun s d -> SS.add d.ctor s) SS.empty decls in
  let handled = ref SS.empty in
  let constructions : (string, construction) Hashtbl.t = Hashtbl.create 32 in
  let d015 = ref [] in
  let walk_input (inp : Callgraph.input) =
    Callgraph.iter_bindings inp (fun ~id ~line:_ ~is_rec:_ body ->
        let check_cases cases =
          let arm_ctors =
            List.fold_left
              (fun s (c : Parsetree.case) ->
                SS.union s (SS.inter decl_names (pat_ctors c.Parsetree.pc_lhs)))
              SS.empty cases
          in
          if not (SS.is_empty arm_ctors) then
            List.iter
              (fun (c : Parsetree.case) ->
                if catchall_pat c.Parsetree.pc_lhs then
                  let loc = c.Parsetree.pc_lhs.Parsetree.ppat_loc in
                  let line, col = Callgraph.pos_of loc in
                  d015 :=
                    Finding.with_sym
                      (Printf.sprintf "%s:%s:drop" id (SS.min_elt arm_ctors))
                      (Finding.make ~rule:"D015" ~file:inp.Callgraph.rel ~line ~col
                         ~msg:
                           (Printf.sprintf
                              "catch-all arm in %s discards protocol messages (arms above \
                               handle %s); Msg.t is extensible, so this silently drops any \
                               constructor added later — handle it or justify the drop"
                              id
                              (String.concat ", " (SS.elements arm_ctors))))
                    :: !d015)
              cases
        in
        let expr (it : Ast_iterator.iterator) (e : Parsetree.expression) =
          (match e.Parsetree.pexp_desc with
          | Parsetree.Pexp_construct ({ txt; loc }, _) -> (
              match last_segment txt with
              | Some s when SS.mem s decl_names ->
                  let line, col = Callgraph.pos_of loc in
                  if not (Hashtbl.mem constructions s) then
                    Hashtbl.add constructions s
                      { cnode = id; cfile = inp.Callgraph.rel; cline = line; ccol = col }
                  else begin
                    (* Keep the first site in deterministic (file, line, col)
                       order so the reported site is stable across walks. *)
                    let cur = Hashtbl.find constructions s in
                    let cand = { cnode = id; cfile = inp.Callgraph.rel; cline = line; ccol = col } in
                    if
                      compare (cand.cfile, cand.cline, cand.ccol) (cur.cfile, cur.cline, cur.ccol)
                      < 0
                    then Hashtbl.replace constructions s cand
                  end
              | _ -> ())
          | Parsetree.Pexp_match (_, cases) | Parsetree.Pexp_function cases -> check_cases cases
          | _ -> ());
          Ast_iterator.default_iterator.Ast_iterator.expr it e
        in
        let pat (it : Ast_iterator.iterator) (p : Parsetree.pattern) =
          (match p.Parsetree.ppat_desc with
          | Parsetree.Ppat_construct ({ txt; _ }, _) -> (
              match last_segment txt with
              | Some s when SS.mem s decl_names -> handled := SS.add s !handled
              | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.Ast_iterator.pat it p
        in
        let it = { Ast_iterator.default_iterator with expr; pat } in
        it.Ast_iterator.expr it body)
  in
  List.iter walk_input inputs;
  let d014 =
    List.filter_map
      (fun d ->
        match Hashtbl.find_opt constructions d.ctor with
        | Some c when not (SS.mem d.ctor !handled) ->
            Some
              (Finding.with_sym
                 (Printf.sprintf "%s->%s:unhandled" c.cnode d.ctor)
                 (Finding.make ~rule:"D014" ~file:c.cfile ~line:c.cline ~col:c.ccol
                    ~msg:
                      (Printf.sprintf
                         "protocol message `%s` (declared %s:%d) is constructed in %s but no \
                          handler arm anywhere matches it — the engine will deliver it into \
                          a catch-all and the protocol silently stalls"
                         d.ctor d.dfile d.dline c.cnode)))
        | _ -> None)
      decls
  in
  d014 @ List.rev !d015
