(* A single rule violation, plus its disposition after suppressions and the
   baseline have been applied. Everything is plain data so the driver can
   sort, dedupe and serialise without touching the AST again. *)

type status = Open | Suppressed | Baselined

(* Severities are advisory metadata for reports and SARIF: the gate itself
   fails on ANY open finding regardless of level, so a "note" cannot rot
   silently. *)
type severity = Error | Warning | Note

type t = {
  rule : string;  (** "D001" .. "D013", or "E000" for parse failures *)
  file : string;  (** path relative to the lint root *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based, as the compiler prints them *)
  msg : string;
  severity : severity;
  sym : string option;
      (** Stable symbol-chain key for interprocedural findings (D009–D012):
          the chain's endpoints, e.g. "Dsim.Engine.step->Dsim.Trace.append:
          record". Line numbers drift under unrelated edits; the endpoints
          only change when the code the finding is about changes, so the
          baseline keys on [sym] when present. *)
}

(* Determinism leaks (including the interprocedural D010) break the replay
   contract outright, and cross-domain escapes (D012) race; the protocol
   rules D014/D016/D017 violate the paper's correctness argument itself and
   D018 its determinism contract, so all four are errors. The hygiene rules
   flag hazards that need a human judgement call (D015's catch-all drop is
   mandatory shape for extensible variants, hence warning); D005 is a
   conventions nudge. *)
let severity_of_rule = function
  | "D001" | "D002" | "D003" | "D009" | "D010" | "D012" | "D014" | "D016" | "D017" | "D018"
  | "E000" ->
      Error
  | "D004" | "D006" | "D007" | "D008" | "D011" | "D013" | "D015" -> Warning
  | _ -> Note

let make ~rule ~file ~line ~col ~msg =
  { rule; file; line; col; msg; severity = severity_of_rule rule; sym = None }

(* Attach the stable symbol key; the interprocedural passes pipe their
   findings through this. *)
let with_sym sym t = { t with sym = Some sym }

let of_location ~rule ~file ~msg (loc : Location.t) =
  let p = loc.Location.loc_start in
  make ~rule ~file ~line:p.Lexing.pos_lnum ~col:(p.Lexing.pos_cnum - p.Lexing.pos_bol) ~msg

(* Deterministic report order: by position within a file, then by rule id so
   two findings on one line always print the same way. *)
let compare a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> (
          match Int.compare a.col b.col with
          | 0 -> String.compare a.rule b.rule
          | c -> c)
      | c -> c)
  | c -> c

let status_name = function
  | Open -> "open"
  | Suppressed -> "suppressed"
  | Baselined -> "baselined"

let severity_name = function Error -> "error" | Warning -> "warning" | Note -> "note"

let to_string t = Printf.sprintf "%s:%d:%d: %s %s" t.file t.line t.col t.rule t.msg

let to_json (t, status) =
  Obs.Json.Obj
    ([
       ("rule", Obs.Json.Str t.rule);
       ("file", Obs.Json.Str t.file);
       ("line", Obs.Json.Int t.line);
       ("col", Obs.Json.Int t.col);
       ("severity", Obs.Json.Str (severity_name t.severity));
       ("msg", Obs.Json.Str t.msg);
       ("status", Obs.Json.Str (status_name status));
     ]
    @ match t.sym with None -> [] | Some s -> [ ("sym", Obs.Json.Str s) ])
