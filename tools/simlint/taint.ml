(* Interprocedural nondeterminism taint (rule D010).

   Seeds come from [Callgraph]: every direct touch of a nondeterminism
   source inside some top-level binding taints that binding. Taint then
   propagates caller-ward over the call graph to a fixpoint, and every call
   site in a lib file whose callee is tainted by a source in *another* file
   yields a D010 finding carrying the full sink -> ... -> source chain.

   Direct sites in the same file are deliberately not reported here — the
   per-file rules (D001/D002/D003) already flag them where they stand. D010
   exists for the laundering case those rules cannot see: a helper in one
   file wrapping the source, consumed from somewhere else. A suppressed
   direct site still seeds taint — the suppression justifies the local use,
   not every caller's transitive dependence on it — and each D010 sink can
   carry its own [simlint: allow D010] justification.

   Everything is deterministic: nodes, edges and seeds arrive sorted, the
   breadth-first propagation processes them in that order, and ties between
   several chains into one node are broken by the sorted queue, so the
   reported chain is stable across runs and machines. *)

type chain = {
  trail : string list;  (** node ids, this node first, seed-owning node last *)
  source : string;  (** offending path, e.g. "Random.int" *)
  source_file : string;
  source_line : int;
}

(* Caller-ward fixpoint from an arbitrary seed set: chain per reached node.
   Shared by D010 (nondeterminism sources) and D009 (module-level mutable
   state); determinism of the reported chains comes from the sorted seed
   and edge orders, as described above. *)
let propagate_from (g : Callgraph.t) (seeds : (string * chain) list) : (string, chain) Hashtbl.t =
  let tainted : (string, chain) Hashtbl.t = Hashtbl.create 64 in
  (* Reverse adjacency: callee -> call sites, in sorted edge order. *)
  let callers : (string, Callgraph.edge) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun (e : Callgraph.edge) -> Hashtbl.add callers e.Callgraph.callee e) g.Callgraph.edges;
  let callers_of id = List.rev (Hashtbl.find_all callers id) in
  let queue = Queue.create () in
  List.iter
    (fun (node, c) ->
      if not (Hashtbl.mem tainted node) then begin
        Hashtbl.replace tainted node c;
        Queue.add node queue
      end)
    seeds;
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    let c = Hashtbl.find tainted id in
    List.iter
      (fun (e : Callgraph.edge) ->
        if not (Hashtbl.mem tainted e.Callgraph.caller) then begin
          Hashtbl.replace tainted e.Callgraph.caller { c with trail = e.Callgraph.caller :: c.trail };
          Queue.add e.Callgraph.caller queue
        end)
      (callers_of id)
  done;
  tainted

(* Callee-ward fixpoint (forward over call edges), for analyses that ask
   "what does this root reach" rather than "who reaches this seed" — the
   same BFS run over the graph with every edge flipped. The allocation
   analysis ([Alloc], rule D011) seeds this with the hot-path roots; a
   reached node's trail is [node .. root], so reversing it yields the
   human-facing "hot caller -> ... -> allocating callee" chain. *)
let propagate_forward (g : Callgraph.t) (seeds : (string * chain) list) :
    (string, chain) Hashtbl.t =
  let flipped =
    {
      g with
      Callgraph.edges =
        List.sort compare
          (List.map
             (fun (e : Callgraph.edge) ->
               { e with Callgraph.caller = e.Callgraph.callee; callee = e.Callgraph.caller })
             g.Callgraph.edges);
    }
  in
  propagate_from flipped seeds

let propagate (g : Callgraph.t) : (string, chain) Hashtbl.t =
  propagate_from g
    (List.map
       (fun (s : Callgraph.seed) ->
         ( s.Callgraph.node,
           {
             trail = [ s.Callgraph.node ];
             source = s.Callgraph.source;
             source_file = s.Callgraph.file;
             source_line = s.Callgraph.line;
           } ))
       g.Callgraph.seeds)

let findings (g : Callgraph.t) : Finding.t list =
  let tainted = propagate g in
  let reported : (string * int * int * string, unit) Hashtbl.t = Hashtbl.create 16 in
  List.filter_map
    (fun (e : Callgraph.edge) ->
      match (Callgraph.find_node g e.Callgraph.caller, Hashtbl.find_opt tainted e.Callgraph.callee) with
      | Some caller_node, Some c
        when caller_node.Callgraph.lib
             && c.source_file <> caller_node.Callgraph.file
             && not (Hashtbl.mem reported (e.Callgraph.file, e.Callgraph.line, e.Callgraph.col, e.Callgraph.callee)) ->
          Hashtbl.replace reported (e.Callgraph.file, e.Callgraph.line, e.Callgraph.col, e.Callgraph.callee) ();
          let chain = String.concat " -> " (e.Callgraph.caller :: c.trail) in
          let seed_node = List.nth c.trail (List.length c.trail - 1) in
          Some
            (Finding.with_sym
               (Printf.sprintf "%s->%s:%s" e.Callgraph.caller seed_node c.source)
            @@ Finding.make ~rule:"D010" ~file:e.Callgraph.file ~line:e.Callgraph.line
               ~col:e.Callgraph.col
               ~msg:
                 (Printf.sprintf
                    "call chain %s reaches nondeterminism source `%s` (%s:%d); route it \
                     through the engine PRNG/Context or justify the sink"
                    chain c.source c.source_file c.source_line))
      | _ -> None)
    g.Callgraph.edges

(* D009: parallel dispatch from a function that (transitively) reaches
   module-level mutable state. Worker tasks submitted to [Exec.Pool] must
   be pure functions of their index — state shared across domains races,
   and even benign races make results depend on scheduling. Dispatch sites
   are recognised by the callee id's [Pool.map]/[Pool.iter] suffix, so the
   real [Exec.Pool] and the fixture corpus's stand-in both match. The check
   is an over-approximation (the whole enclosing function is considered,
   not just the worker closure): a reachable-but-unshared table deserves
   its own [simlint: allow D009] justification at the dispatch site. *)
let pool_dispatch_id id =
  match List.rev (String.split_on_char '.' id) with
  | ("map" | "iter") :: "Pool" :: _ -> true
  | _ -> false

let shared_state_findings (g : Callgraph.t) : Finding.t list =
  let reaches =
    propagate_from g
      (List.map
         (fun (m : Callgraph.mutdef) ->
           ( m.Callgraph.mnode,
             {
               trail = [ m.Callgraph.mnode ];
               source = m.Callgraph.head;
               source_file = m.Callgraph.mfile;
               source_line = m.Callgraph.mline;
             } ))
         g.Callgraph.mutables)
  in
  let reported : (string * int * int, unit) Hashtbl.t = Hashtbl.create 16 in
  List.filter_map
    (fun (e : Callgraph.edge) ->
      if not (pool_dispatch_id e.Callgraph.callee) then None
      else
        match Hashtbl.find_opt reaches e.Callgraph.caller with
        | Some c when not (Hashtbl.mem reported (e.Callgraph.file, e.Callgraph.line, e.Callgraph.col)) ->
            Hashtbl.replace reported (e.Callgraph.file, e.Callgraph.line, e.Callgraph.col) ();
            let chain = String.concat " -> " c.trail in
            let mut_node = List.nth c.trail (List.length c.trail - 1) in
            Some
              (Finding.with_sym
                 (Printf.sprintf "%s->%s:%s" e.Callgraph.caller mut_node c.source)
              @@ Finding.make ~rule:"D009" ~file:e.Callgraph.file ~line:e.Callgraph.line
                 ~col:e.Callgraph.col
                 ~msg:
                   (Printf.sprintf
                      "parallel dispatch while %s reaches module-level mutable state `%s` \
                       (%s:%d); worker tasks must be pure functions of their index"
                      chain c.source c.source_file c.source_line))
        | _ -> None)
    g.Callgraph.edges
