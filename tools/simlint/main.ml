(* simlint — determinism & simulation-hygiene linter.

   Usage: simlint [--root DIR] [--baseline FILE] [--json] [--force-lib] [DIR ...]

   Scans lib/ bin/ bench/ stress/ under the root by default. Exits 0 when no
   open (non-suppressed, non-baselined) finding remains, 1 otherwise, 2 on
   usage or I/O errors. [--json] prints the canonical simlint-report/1
   document instead of human text. *)

open Simlint

let () =
  let root = ref "." in
  let baseline_path = ref "" in
  let json = ref false in
  let force_lib = ref false in
  let dirs = ref [] in
  let spec =
    [
      ("--root", Arg.Set_string root, "DIR repository root to scan (default .)");
      ( "--baseline",
        Arg.Set_string baseline_path,
        "FILE baseline.json of grandfathered findings (default \
         <root>/tools/simlint/baseline.json when present)" );
      ("--json", Arg.Set json, " emit the canonical simlint-report/1 JSON document");
      ( "--force-lib",
        Arg.Set force_lib,
        " apply lib-only rules (D004/D005) to every scanned file" );
    ]
  in
  let usage = "simlint [--root DIR] [--baseline FILE] [--json] [DIR ...]" in
  Arg.parse spec (fun d -> dirs := d :: !dirs) usage;
  let dirs = if !dirs = [] then Driver.default_dirs else List.rev !dirs in
  let baseline =
    let path =
      if !baseline_path <> "" then Some !baseline_path
      else
        let default = Filename.concat !root "tools/simlint/baseline.json" in
        if Sys.file_exists default then Some default else None
    in
    match path with
    | None -> Baseline.empty
    | Some p -> (
        try Baseline.load p
        with e ->
          Printf.eprintf "simlint: cannot load baseline %s: %s\n" p (Printexc.to_string e);
          exit 2)
  in
  let result =
    try Driver.run ~baseline ~dirs ~force_lib:!force_lib ~root:!root ()
    with e ->
      Printf.eprintf "simlint: %s\n" (Printexc.to_string e);
      exit 2
  in
  if !json then print_endline (Obs.Json.to_string (Driver.to_json result))
  else Driver.print_human Format.std_formatter result;
  exit (if Driver.open_findings result = [] then 0 else 1)
