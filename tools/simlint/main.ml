(* simlint — determinism & simulation-hygiene linter.

   Usage: simlint [--root DIR] [--baseline FILE] [--json] [--sarif FILE]
                  [--baseline-update] [--force-lib] [DIR ...]

   Scans lib/ bin/ bench/ stress/ under the root by default. Exits 0 when no
   open (non-suppressed, non-baselined) finding remains AND no baseline
   entry is stale, 1 otherwise, 2 on usage or I/O errors. [--json] prints
   the canonical simlint-report/1 document instead of human text; [--sarif]
   additionally writes a SARIF 2.1.0 document for CI annotation.
   [--baseline-update] regenerates the baseline file deterministically from
   the current findings (everything not suppressed in-source) and exits 0. *)

open Simlint

let () =
  let root = ref "." in
  let baseline_path = ref "" in
  let json = ref false in
  let sarif_path = ref "" in
  let baseline_update = ref false in
  let force_lib = ref false in
  let hotpaths = ref [] in
  let only = ref [] in
  let dirs = ref [] in
  let spec =
    [
      ("--root", Arg.Set_string root, "DIR repository root to scan (default .)");
      ( "--baseline",
        Arg.Set_string baseline_path,
        "FILE baseline.json of grandfathered findings (default \
         <root>/tools/simlint/baseline.json when present)" );
      ("--json", Arg.Set json, " emit the canonical simlint-report/1 JSON document");
      ("--sarif", Arg.Set_string sarif_path, "FILE also write a SARIF 2.1.0 report to FILE");
      ( "--baseline-update",
        Arg.Set baseline_update,
        " regenerate the baseline file from current findings and exit 0" );
      ( "--force-lib",
        Arg.Set force_lib,
        " apply lib-only rules (D004/D005/D006/D007/D008) to every scanned file" );
      ( "--hotpath",
        Arg.String (fun id -> hotpaths := id :: !hotpaths),
        "ID extra D011 hot root (dotted node id, e.g. Dsim.Engine.step); repeatable" );
      ( "--only",
        Arg.String
          (fun s ->
            only :=
              !only
              @ (String.split_on_char ',' s
                |> List.map String.trim
                |> List.filter (fun r -> r <> ""))),
        "RULES run only the named rules, comma-separated (e.g. D014,D016); repeatable" );
    ]
  in
  let usage = "simlint [--root DIR] [--baseline FILE] [--json] [--sarif FILE] [DIR ...]" in
  Arg.parse spec (fun d -> dirs := d :: !dirs) usage;
  let dirs = if !dirs = [] then Driver.default_dirs else List.rev !dirs in
  let default_baseline = Filename.concat !root "tools/simlint/baseline.json" in
  let baseline_file =
    if !baseline_path <> "" then Some !baseline_path
    else if Sys.file_exists default_baseline then Some default_baseline
    else None
  in
  if !baseline_update then begin
    (* Regenerate from a baseline-free run: every finding that is not
       suppressed in-source becomes an entry, in canonical report order. *)
    let result =
      try
        Driver.run ~dirs ~force_lib:!force_lib
          ~hotpath_roots:(Driver.default_hotpath_roots @ List.rev !hotpaths)
          ~only:!only ~root:!root ()
      with e ->
        Printf.eprintf "simlint: %s\n" (Printexc.to_string e);
        exit 2
    in
    let path = Option.value ~default:default_baseline baseline_file in
    let entries = Driver.to_baseline result in
    (try Baseline.write ~path entries
     with e ->
       Printf.eprintf "simlint: cannot write baseline %s: %s\n" path (Printexc.to_string e);
       exit 2);
    Printf.printf "simlint: wrote %d baseline entr%s to %s\n" (List.length entries)
      (if List.length entries = 1 then "y" else "ies")
      path;
    exit 0
  end;
  let baseline =
    match baseline_file with
    | None -> Baseline.empty
    | Some p -> (
        try Baseline.load p
        with e ->
          Printf.eprintf "simlint: cannot load baseline %s: %s\n" p (Printexc.to_string e);
          exit 2)
  in
  let result =
    try
      Driver.run ~baseline ~dirs ~force_lib:!force_lib
        ~hotpath_roots:(Driver.default_hotpath_roots @ List.rev !hotpaths)
        ~only:!only ~root:!root ()
    with e ->
      Printf.eprintf "simlint: %s\n" (Printexc.to_string e);
      exit 2
  in
  if !sarif_path <> "" then begin
    try Sarif.write ~path:!sarif_path result.Driver.findings
    with e ->
      Printf.eprintf "simlint: cannot write SARIF %s: %s\n" !sarif_path (Printexc.to_string e);
      exit 2
  end;
  if !json then print_endline (Obs.Json.to_string (Driver.to_json result))
  else Driver.print_human Format.std_formatter result;
  exit (if Driver.gate_ok result then 0 else 1)
