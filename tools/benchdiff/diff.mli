(** Perf-regression gate over ["dinersim-bench/1"] snapshots.

    Judges a candidate benchmark snapshot against a baseline on the
    per-experiment median-wall-time {e ratio}: experiment [k] regresses
    when [cand/base > threshold] and the baseline median is at least
    [min_base_s] (sub-floor baselines are timer noise and never gate).
    Baseline experiments missing from the candidate fail the gate;
    candidate-only experiments are reported but not gated. The
    comparison is deterministic in the two input documents. *)

(** Which snapshot(s) an experiment appears in. One-sided experiments get
    their own explicit entry rather than being collapsed into a key list:
    every key of either document has exactly one entry in the report. *)
type presence =
  | Compared  (** In both snapshots: the ratio is judged. *)
  | Removed  (** Baseline-only: fails the gate. *)
  | Added  (** Candidate-only: informational. *)

type entry = {
  key : string;
  base_s : float;  (** [0.] for [Added] entries. *)
  cand_s : float;  (** [0.] for [Removed] entries. *)
  ratio : float;
      (** [cand_s /. base_s]; [infinity] when [base_s = 0]; [nan] for
          one-sided entries. *)
  skipped : bool;  (** Baseline under the noise floor: never gates. *)
  regressed : bool;
  presence : presence;
}

type t = {
  threshold : float;
  min_base_s : float;
  entries : entry list;
      (** Baseline document order, then [Added] entries in candidate
          order. *)
  missing : string list;  (** Baseline keys absent from the candidate. *)
  extra : string list;  (** Candidate keys absent from the baseline. *)
}

val schema_version : string
(** ["benchdiff/1"], the tag of {!to_json}. *)

val of_json :
  threshold:float -> min_base_s:float -> baseline:Obs.Json.t -> candidate:Obs.Json.t -> t
(** Raises [Invalid_argument] when [threshold <= 1.0] or [min_base_s < 0];
    [Failure] on documents that are not well-formed dinersim-bench/1. *)

val of_files : threshold:float -> min_base_s:float -> baseline:string -> candidate:string -> t
(** Like {!of_json} from file paths. Additionally raises [Sys_error] on
    IO failure and [Failure] on unparseable JSON. *)

val regressions : t -> string list
(** Keys of the regressed entries, baseline order. *)

val ok : t -> bool
(** No regressed entry and no missing experiment. *)

val to_json : t -> Obs.Json.t
(** [{"schema":"benchdiff/1","threshold":..,"min_base_s":..,"ok":..,
    "regressions":[..],"missing":[..],"extra":[..],"entries":[{"key",
    "base_s","cand_s","ratio","status"}]}]. One-sided entries carry
    [status] ["removed"]/["added"] and only the side that exists. *)

val pp : Format.formatter -> t -> unit
(** Human rendering: one line per experiment plus the gate verdict. *)
