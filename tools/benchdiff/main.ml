(* benchdiff — compare two dinersim-bench/1 snapshots and gate on
   relative slowdown.

     dune exec tools/benchdiff/main.exe -- BASELINE CANDIDATE \
         [--threshold X] [--min-base-s S] [--json PATH]

   Exit 0 when every shared experiment is within threshold, 1 on a
   regression (or a baseline experiment missing from the candidate), 2 on
   malformed input. `make bench-diff` wires this against the committed
   BENCH_dining.json and a fresh bench-smoke run. *)

let usage () =
  prerr_endline
    "usage: main.exe BASELINE CANDIDATE [--threshold X] [--min-base-s S] [--json PATH]";
  exit 2

let () =
  let or_die = function
    | Ok r -> r
    | Error msg ->
        Printf.eprintf "benchdiff: %s\n" msg;
        exit 2
  in
  let args = List.tl (Array.to_list Sys.argv) in
  let threshold, args =
    or_die (Core.Cmdline.extract_float_flag ~names:[ "--threshold" ] ~default:1.5 args)
  in
  let min_base_s, args =
    or_die (Core.Cmdline.extract_float_flag ~names:[ "--min-base-s" ] ~default:0.02 args)
  in
  (* --json is string-valued; reuse the generic extractor via a sentinel
     default ("" = not requested). *)
  let json_out, args =
    let rec go acc v = function
      | [] -> (v, List.rev acc)
      | "--json" :: path :: rest -> go acc (Some path) rest
      | [ "--json" ] ->
          Printf.eprintf "benchdiff: --json expects a value\n";
          exit 2
      | a :: rest -> go (a :: acc) v rest
    in
    go [] None args
  in
  let baseline, candidate =
    match args with [ b; c ] -> (b, c) | _ -> usage ()
  in
  let d =
    match Benchdiff.Diff.of_files ~threshold ~min_base_s ~baseline ~candidate with
    | d -> d
    | exception (Failure msg | Invalid_argument msg) ->
        Printf.eprintf "benchdiff: %s\n" msg;
        exit 2
    | exception Sys_error msg ->
        Printf.eprintf "benchdiff: %s\n" msg;
        exit 2
  in
  Format.printf "%a" Benchdiff.Diff.pp d;
  (match json_out with
  | Some path ->
      let oc =
        match open_out path with
        | oc -> oc
        | exception Sys_error msg ->
            Printf.eprintf "benchdiff: %s\n" msg;
            exit 2
      in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (Obs.Json.to_string_pretty (Benchdiff.Diff.to_json d)));
      Printf.printf "diff written to %s\n" path
  | None -> ());
  if not (Benchdiff.Diff.ok d) then exit 1
