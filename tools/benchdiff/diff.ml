(* Perf-regression gate over dinersim-bench/1 snapshots.

   Compares a candidate snapshot (a fresh bench-smoke run) against a
   baseline (the committed BENCH_dining.json), experiment by experiment,
   on the median wall time. An experiment regresses when its candidate
   median exceeds [threshold] times the baseline median AND the baseline
   median is at least [min_base_s] — sub-floor entries are timer noise
   (a 2 ms experiment doubling is scheduling jitter, not a regression)
   and are compared informationally but never gate.

   Wall times are inherently machine-dependent, so the RATIO is what the
   gate judges, and callers on shared/noisy hardware (CI) should pass a
   generous threshold. The diff itself is deterministic in its two input
   documents. *)

(* Experiments present in only one snapshot are not silently collapsed
   into side lists: they appear in [entries] with an explicit presence, so
   every key of either document has exactly one entry in the report. *)
type presence =
  | Compared (* in both snapshots: ratio judged *)
  | Removed (* baseline-only: fails the gate *)
  | Added (* candidate-only: informational *)

type entry = {
  key : string;
  base_s : float; (* 0. for Added entries *)
  cand_s : float; (* 0. for Removed entries *)
  ratio : float; (* cand_s /. base_s; infinity when base_s = 0; nan one-sided *)
  skipped : bool; (* baseline under the noise floor: never gates *)
  regressed : bool;
  presence : presence;
}

type t = {
  threshold : float;
  min_base_s : float;
  entries : entry list; (* baseline document order, then Added in candidate order *)
  missing : string list; (* baseline keys absent from the candidate *)
  extra : string list; (* candidate keys absent from the baseline *)
}

let schema_version = "benchdiff/1"
let bench_schema = "dinersim-bench/1"

let experiments ~what j =
  (match Obs.Json.find j "schema" with
  | Some (Obs.Json.Str s) when s = bench_schema -> ()
  | Some (Obs.Json.Str s) ->
      failwith (Printf.sprintf "%s has schema %S, want %S" what s bench_schema)
  | _ -> failwith (Printf.sprintf "%s has no schema tag" what));
  match Obs.Json.find j "experiments" with
  | Some (Obs.Json.Arr l) ->
      List.map
        (fun e ->
          match (Obs.Json.find e "key", Obs.Json.find e "wall_s") with
          | Some (Obs.Json.Str k), Some (Obs.Json.Float w) -> (k, w)
          | Some (Obs.Json.Str k), Some (Obs.Json.Int w) -> (k, float_of_int w)
          | _ ->
              failwith (Printf.sprintf "%s has a malformed experiment entry" what))
        l
  | _ -> failwith (Printf.sprintf "%s has no experiments array" what)

let of_json ~threshold ~min_base_s ~baseline ~candidate =
  if threshold <= 1.0 then invalid_arg "Benchdiff: threshold must exceed 1.0";
  if min_base_s < 0.0 then invalid_arg "Benchdiff: min_base_s must be non-negative";
  let base = experiments ~what:"baseline" baseline in
  let cand = experiments ~what:"candidate" candidate in
  let entries =
    List.map
      (fun (key, base_s) ->
        match List.assoc_opt key cand with
        | None ->
            {
              key;
              base_s;
              cand_s = 0.0;
              ratio = Float.nan;
              skipped = false;
              regressed = false;
              presence = Removed;
            }
        | Some cand_s ->
            let skipped = base_s < min_base_s in
            let ratio = if base_s > 0.0 then cand_s /. base_s else infinity in
            {
              key;
              base_s;
              cand_s;
              ratio;
              skipped;
              regressed = (not skipped) && ratio > threshold;
              presence = Compared;
            })
      base
    @ List.filter_map
        (fun (key, cand_s) ->
          if List.mem_assoc key base then None
          else
            Some
              {
                key;
                base_s = 0.0;
                cand_s;
                ratio = Float.nan;
                skipped = false;
                regressed = false;
                presence = Added;
              })
        cand
  in
  let keys want = List.filter_map (fun e -> if e.presence = want then Some e.key else None) entries in
  { threshold; min_base_s; entries; missing = keys Removed; extra = keys Added }

let slurp path =
  let ic = open_in path in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  Obs.Json.of_string content

let of_files ~threshold ~min_base_s ~baseline ~candidate =
  of_json ~threshold ~min_base_s ~baseline:(slurp baseline) ~candidate:(slurp candidate)

let regressions t = List.filter_map (fun e -> if e.regressed then Some e.key else None) t.entries

(* Missing experiments fail the gate too: a candidate that silently
   dropped an experiment is not evidence the experiment still performs. *)
let ok t = regressions t = [] && t.missing = []

let entry_json e =
  match e.presence with
  | Removed ->
      Obs.Json.Obj
        [
          ("key", Obs.Json.Str e.key);
          ("base_s", Obs.Json.Float e.base_s);
          ("status", Obs.Json.Str "removed");
        ]
  | Added ->
      Obs.Json.Obj
        [
          ("key", Obs.Json.Str e.key);
          ("cand_s", Obs.Json.Float e.cand_s);
          ("status", Obs.Json.Str "added");
        ]
  | Compared ->
      Obs.Json.Obj
        [
          ("key", Obs.Json.Str e.key);
          ("base_s", Obs.Json.Float e.base_s);
          ("cand_s", Obs.Json.Float e.cand_s);
          ( "ratio",
            if Float.is_finite e.ratio then Obs.Json.Float e.ratio else Obs.Json.Str "inf" );
          ( "status",
            Obs.Json.Str
              (if e.regressed then "regressed" else if e.skipped then "skipped" else "ok") );
        ]

let to_json t =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.Str schema_version);
      ("threshold", Obs.Json.Float t.threshold);
      ("min_base_s", Obs.Json.Float t.min_base_s);
      ("ok", Obs.Json.Bool (ok t));
      ("regressions", Obs.Json.Arr (List.map (fun k -> Obs.Json.Str k) (regressions t)));
      ("missing", Obs.Json.Arr (List.map (fun k -> Obs.Json.Str k) t.missing));
      ("extra", Obs.Json.Arr (List.map (fun k -> Obs.Json.Str k) t.extra));
      ("entries", Obs.Json.Arr (List.map entry_json t.entries));
    ]

let pp fmt t =
  Format.fprintf fmt "benchdiff: threshold x%.2f, noise floor %.3fs@." t.threshold t.min_base_s;
  List.iter
    (fun e ->
      match e.presence with
      | Removed ->
          Format.fprintf fmt "  %-8s %8.3fs ->   (absent)  REMOVED from candidate@." e.key
            e.base_s
      | Added -> Format.fprintf fmt "  %-8s  (absent) -> %8.3fs  added (not gated)@." e.key e.cand_s
      | Compared ->
          Format.fprintf fmt "  %-8s %8.3fs -> %8.3fs  (x%.2f)%s@." e.key e.base_s e.cand_s
            e.ratio
            (if e.regressed then "  REGRESSED"
             else if e.skipped then "  (under noise floor)"
             else ""))
    t.entries;
  Format.fprintf fmt "  verdict: %s@." (if ok t then "ok" else "FAIL")
