(* Bechamel micro-benchmarks: engineering cost of the substrate and of the
   reduction machinery (B1-B4 in DESIGN.md). *)

open Bechamel
open Dsim

let prepared_engine builder =
  (* Warm a deployment past its convergence prefix so the steady-state step
     cost is measured. *)
  let engine = builder () in
  Engine.run engine ~until:2000;
  engine

let bench_engine_idle () =
  let engine =
    prepared_engine (fun () ->
        Engine.create ~seed:1L ~n:4 ~adversary:(Adversary.async_uniform ()) ())
  in
  Test.make ~name:"engine-step idle n=4" (Staged.stage (fun () -> Engine.step engine))

let bench_engine_dining () =
  let engine =
    prepared_engine (fun () ->
        let run =
          Core.Scenario.wf_dining ~seed:2L ~graph:(Graphs.Conflict_graph.ring ~n:5) ()
        in
        run.Core.Scenario.engine)
  in
  Test.make ~name:"engine-step wf-dining ring5" (Staged.stage (fun () -> Engine.step engine))

let bench_engine_extraction () =
  let engine =
    prepared_engine (fun () ->
        let run = Core.Scenario.wf_extraction ~seed:3L ~with_lemma_monitors:false ~n:3 () in
        run.Core.Scenario.engine)
  in
  Test.make ~name:"engine-step extraction n=3" (Staged.stage (fun () -> Engine.step engine))

let bench_oracle_query () =
  let run = Core.Scenario.wf_extraction ~seed:4L ~with_lemma_monitors:false ~n:3 () in
  Engine.run run.Core.Scenario.engine ~until:2000;
  let oracle = Reduction.Extract.oracle run.Core.Scenario.extract 0 in
  Test.make ~name:"extracted-oracle query n=3"
    (Staged.stage (fun () -> ignore (oracle.Detectors.Oracle.suspects ())))

let bench_trace_scan () =
  let run = Core.Scenario.wf_dining ~seed:5L ~graph:(Graphs.Conflict_graph.ring ~n:5) () in
  Engine.run run.Core.Scenario.engine ~until:5000;
  let trace = Engine.trace run.Core.Scenario.engine in
  let graph = run.Core.Scenario.graph in
  Test.make ~name:"monitor exclusion-scan 5k ticks"
    (Staged.stage (fun () ->
         ignore (Dining.Monitor.exclusion_violations trace ~instance:"dx" ~graph ~horizon:5000)))

let bench_deliver_backlog () =
  (* Regression bench for the deliver_ripe rewrite: with a wide delay
     spread the in-flight map holds one bucket per future tick, and the
     old per-step [Pidmap.partition] walked every bucket whether ripe or
     not. Peeling ripe buckets off [min_binding] keeps the step cost
     proportional to what is actually delivered; this bench collapses if
     the whole-map scan ever comes back. *)
  let n = 8 in
  let engine =
    prepared_engine (fun () ->
        let engine =
          Engine.create ~seed:6L ~retain_trace:false ~n
            ~adversary:(Adversary.async_uniform ~max_delay:600 ()) ()
        in
        for pid = 0 to n - 1 do
          let ctx = Engine.ctx engine pid in
          Engine.register engine pid
            (Component.make ~name:"flood"
               ~actions:
                 [
                   Component.action "spray"
                     ~guard:(fun () -> true)
                     ~body:(fun () ->
                       let dst = Prng.int ctx.Context.rng ~bound:n in
                       (* simlint: allow D014 — flood bench: the sink is deliberately handler-less; the experiment measures raw delivery cost, and a receiver would become part of the measurement *)
                       ctx.Context.send ~dst ~tag:"flood" Msg.Unit_msg);
                 ]
               ())
        done;
        engine)
  in
  Test.make ~name:"engine-step flood-backlog n=8 delay<=600"
    (Staged.stage (fun () -> Engine.step engine))

let bench_prng () =
  let rng = Prng.create 9L in
  Test.make ~name:"prng next_int64" (Staged.stage (fun () -> ignore (Prng.next_int64 rng)))

let run () =
  Util.section "B   Bechamel micro-benchmarks";
  let tests =
    [
      bench_prng ();
      bench_engine_idle ();
      bench_engine_dining ();
      bench_engine_extraction ();
      bench_deliver_backlog ();
      bench_oracle_query ();
      bench_trace_scan ();
    ]
  in
  let grouped = Test.make_grouped ~name:"micro" tests in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~stabilize:false () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] grouped in
  let results =
    Analyze.all
      (Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| "run" |])
      Toolkit.Instance.monotonic_clock raw
  in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let est =
          match Analyze.OLS.estimates ols with
          | Some (t :: _) -> Printf.sprintf "%.1f" t
          | Some [] | None -> "-"
        in
        let r2 =
          match Analyze.OLS.r_square ols with
          | Some r -> Printf.sprintf "%.4f" r
          | None -> "-"
        in
        [ name; est; r2 ] :: acc)
      results []
    |> List.sort compare
  in
  Util.table ~header:[ "benchmark"; "ns/run (OLS)"; "r²" ] rows
