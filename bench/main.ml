(* Experiment and benchmark harness.

     dune exec bench/main.exe                  # every experiment + micro benches
     dune exec bench/main.exe -- t1 v1         # selected experiments
     dune exec bench/main.exe -- --trials 5 -j 4   # median of 5 timings

   One entry per artifact of the paper; see the per-experiment index in
   DESIGN.md and the measured-vs-paper discussion in EXPERIMENTS.md.

   Every invocation also writes BENCH_dining.json at the current
   directory (the repo root under `dune exec`): one wall-clock entry per
   experiment run, schema "dinersim-bench/1". This file is the perf
   trajectory anchor — successive PRs append comparable snapshots.

   --trials T re-runs every experiment T times and records the median
   wall time (first trial prints normally; re-runs go to /dev/null).
   -j/--jobs spreads the re-runs over that many worker domains
   (default 1: contention-free timings). The bench file is wall-clock
   trajectory data, never canonical — trials and jobs are recorded in
   it so snapshots are comparable. *)

let registry =
  [
    ("f1", "Figure 1: witness/subject hand-off timeline", Experiments.f1);
    ("t1", "Theorem 1: strong completeness", Experiments.t1);
    ("t2", "Theorem 2: eventual strong accuracy", Experiments.t2);
    ("lemmas", "Lemmas 1-12 as run-time checks", Experiments.lemmas);
    ("v1", "Section 3: flawed [8] construction vs ours", Experiments.v1);
    ("s9", "Section 9: extracting T from perpetual WX", Experiments.s9);
    ("k1", "Section 8: eventual 2-fairness composition", Experiments.k1);
    ("a1", "Section 2: WSN duty-cycle scheduling", Experiments.a1);
    ("a2", "Sections 2-3: contention-manager boost", Experiments.a2);
    ("fl", "Section 2 trade-off: exclusion vs liveness vs oracle", Experiments.fl);
    ("c1", "intro claim: extracted ◇P solves consensus", Experiments.c1);
    ("sweep", "multi-seed statistical sweep of the theorems", Experiments.sweep);
    ("m1", "engineering: message cost", Experiments.m1);
    ("scale2", "engine scaling curve: n = 10^2 ring", Experiments.scale2);
    ("scale3", "engine scaling curve: n = 10^3 ring", Experiments.scale3);
    ("scale4", "engine scaling curve: n = 10^4 ring", Experiments.scale4);
    ("scale5", "engine scaling curve: n = 10^5 ring", Experiments.scale5);
    ("micro", "Bechamel micro-benchmarks", Micro.run);
  ]

let usage () =
  print_endline
    "usage: main.exe [--trials T] [-j N] [--out FILE] [experiment ...]\n\
     available experiments:";
  List.iter (fun (key, doc, _) -> Printf.printf "  %-8s %s\n" key doc) registry;
  print_endline "  all      run everything (default)"

let default_bench_path = "BENCH_dining.json"

let time_run f =
  (* The harness measures real elapsed time; wall times are reporting only
     and never feed back into simulated behaviour. *)
  (* simlint: allow D001 — wall-clock benchmark timing *)
  let t0 = Unix.gettimeofday () in
  f ();
  (* simlint: allow D001 — wall-clock benchmark timing *)
  Unix.gettimeofday () -. t0

(* Re-run trials repeat the experiments for timing only; their narrative
   output duplicates the first trial's, so fd 1 points at /dev/null for
   the duration (process-wide, hence also for every worker domain). *)
let with_quiet_stdout f =
  flush stdout;
  let saved = Unix.dup Unix.stdout in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  Unix.dup2 devnull Unix.stdout;
  Unix.close devnull;
  Fun.protect
    ~finally:(fun () ->
      flush stdout;
      Unix.dup2 saved Unix.stdout;
      Unix.close saved)
    f

let median a =
  let a = Array.copy a in
  Array.sort compare a;
  let n = Array.length a in
  if n = 0 then 0.0
  else if n land 1 = 1 then a.(n / 2)
  else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

let write_bench ~out ~trials ~jobs entries =
  let j =
    Obs.Json.Obj
      [
        ("schema", Obs.Json.Str "dinersim-bench/1");
        ("suite", Obs.Json.Str "dining");
        ("trials", Obs.Json.Int trials);
        ("jobs", Obs.Json.Int jobs);
        ("experiments", Obs.Json.Arr entries);
      ]
  in
  let oc = open_out out in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Obs.Json.to_string_pretty j));
  Printf.printf "\nbench report written to %s\n" out

(* Bechamel stabilizes the major heap before sampling and fails if it
   cannot — impossible while sibling worker domains allocate — and it is
   already a statistical harness of its own, so "micro" gets exactly one
   wall sample and never rides the re-trial pool. *)
let retrials_p (key, _, _) = key <> "micro"

let run_selected ~out ~trials ~jobs entries =
  let entries = Array.of_list entries in
  (* Trial 0 runs sequentially with normal output — the experiment text is
     part of the harness's human contract. *)
  let first = Array.map (fun (_, _, f) -> time_run f) entries in
  (* Extra trials are timing-only; pool item [i] re-runs poolable
     experiment [i mod m], so merging back in index order groups trials
     per experiment. *)
  let pooled =
    Array.of_list
      (List.filteri
         (fun i _ -> retrials_p entries.(i))
         (List.init (Array.length entries) Fun.id))
  in
  let m = Array.length pooled in
  let extra =
    if trials <= 1 || m = 0 then [||]
    else
      with_quiet_stdout (fun () ->
          Exec.Pool.map ~jobs
            (m * (trials - 1))
            (fun i ->
              let _, _, f = entries.(pooled.(i mod m)) in
              time_run f))
  in
  let json =
    Array.to_list
      (Array.mapi
         (fun i (key, doc, _) ->
           let walls =
             Array.of_list
               (first.(i)
               :: List.filteri
                    (fun j _ -> pooled.(j mod m) = i)
                    (Array.to_list extra))
           in
           Obs.Json.Obj
             [
               ("key", Obs.Json.Str key);
               ("doc", Obs.Json.Str doc);
               ("wall_s", Obs.Json.Float (median walls));
               ( "walls_s",
                 Obs.Json.Arr
                   (Array.to_list (Array.map (fun w -> Obs.Json.Float w) walls)) );
             ])
         entries)
  in
  write_bench ~out ~trials ~jobs json

let () =
  let or_die = function
    | Ok r -> r
    | Error msg ->
        Printf.eprintf "bench: %s\n" msg;
        exit 2
  in
  let args = List.tl (Array.to_list Sys.argv) in
  let trials, args =
    or_die (Core.Cmdline.extract_int_flag ~names:[ "--trials" ] ~default:1 args)
  in
  let jobs, args =
    or_die (Core.Cmdline.extract_int_flag ~names:[ "-j"; "--jobs" ] ~default:1 args)
  in
  (* --out keeps partial-suite runs (e.g. `make bench-scale`) from
     clobbering the committed full-suite snapshot the perf gate diffs
     against. *)
  let out, keys =
    or_die (Core.Cmdline.extract_string_flag ~names:[ "--out" ] ~default:default_bench_path args)
  in
  if trials < 1 || jobs < 1 then begin
    Printf.eprintf "bench: --trials and -j must be at least 1\n";
    exit 2
  end;
  match keys with
  | [] | [ "all" ] -> run_selected ~out ~trials ~jobs registry
  | keys ->
      let unknown = List.filter (fun k -> not (List.exists (fun (key, _, _) -> key = k) registry)) keys in
      if unknown <> [] || List.mem "--help" keys || List.mem "help" keys then usage ()
      else
        run_selected ~out ~trials ~jobs
          (List.map (fun k -> List.find (fun (key, _, _) -> key = k) registry) keys)
