(* Experiment and benchmark harness.

     dune exec bench/main.exe            # every experiment + micro benches
     dune exec bench/main.exe -- t1 v1   # selected experiments

   One entry per artifact of the paper; see the per-experiment index in
   DESIGN.md and the measured-vs-paper discussion in EXPERIMENTS.md.

   Every invocation also writes BENCH_dining.json at the current
   directory (the repo root under `dune exec`): one wall-clock entry per
   experiment run, schema "dinersim-bench/1". This file is the perf
   trajectory anchor — successive PRs append comparable snapshots. *)

let registry =
  [
    ("f1", "Figure 1: witness/subject hand-off timeline", Experiments.f1);
    ("t1", "Theorem 1: strong completeness", Experiments.t1);
    ("t2", "Theorem 2: eventual strong accuracy", Experiments.t2);
    ("lemmas", "Lemmas 1-12 as run-time checks", Experiments.lemmas);
    ("v1", "Section 3: flawed [8] construction vs ours", Experiments.v1);
    ("s9", "Section 9: extracting T from perpetual WX", Experiments.s9);
    ("k1", "Section 8: eventual 2-fairness composition", Experiments.k1);
    ("a1", "Section 2: WSN duty-cycle scheduling", Experiments.a1);
    ("a2", "Sections 2-3: contention-manager boost", Experiments.a2);
    ("fl", "Section 2 trade-off: exclusion vs liveness vs oracle", Experiments.fl);
    ("c1", "intro claim: extracted ◇P solves consensus", Experiments.c1);
    ("sweep", "multi-seed statistical sweep of the theorems", Experiments.sweep);
    ("m1", "engineering: message cost", Experiments.m1);
    ("micro", "Bechamel micro-benchmarks", Micro.run);
  ]

let usage () =
  print_endline "usage: main.exe [experiment ...]\navailable experiments:";
  List.iter (fun (key, doc, _) -> Printf.printf "  %-8s %s\n" key doc) registry;
  print_endline "  all      run everything (default)"

let bench_path = "BENCH_dining.json"

let timed (key, doc, f) =
  (* The harness measures real elapsed time; wall_s is reporting only and
     never feeds back into simulated behaviour. *)
  (* simlint: allow D001 — wall-clock benchmark timing *)
  let t0 = Unix.gettimeofday () in
  f ();
  (* simlint: allow D001 — wall-clock benchmark timing *)
  let elapsed = Unix.gettimeofday () -. t0 in
  Obs.Json.Obj
    [
      ("key", Obs.Json.Str key);
      ("doc", Obs.Json.Str doc);
      ("wall_s", Obs.Json.Float elapsed);
    ]

let write_bench entries =
  let j =
    Obs.Json.Obj
      [
        ("schema", Obs.Json.Str "dinersim-bench/1");
        ("suite", Obs.Json.Str "dining");
        ("experiments", Obs.Json.Arr entries);
      ]
  in
  let oc = open_out bench_path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Obs.Json.to_string_pretty j));
  Printf.printf "\nbench report written to %s\n" bench_path

let run_selected entries = write_bench (List.map timed entries)

let () =
  match Array.to_list Sys.argv with
  | _ :: ([] | [ "all" ]) -> run_selected registry
  | _ :: keys ->
      let unknown = List.filter (fun k -> not (List.exists (fun (key, _, _) -> key = k) registry)) keys in
      if unknown <> [] || List.mem "--help" keys || List.mem "help" keys then usage ()
      else
        run_selected
          (List.map (fun k -> List.find (fun (key, _, _) -> key = k) registry) keys)
  | [] -> usage ()
