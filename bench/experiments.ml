(* Experiment harness: one entry per artifact of the paper (see DESIGN.md's
   per-experiment index). The paper is a theory result, so each "table"
   regenerates the *shape* of a theorem, lemma, figure or narrated claim. *)

open Dsim

let holds (v : Detectors.Properties.verdict) = v.Detectors.Properties.holds

let extracted_flips engine ~owner ~target =
  Trace.suspicion_flips (Engine.trace engine) ~detector:"extracted" ~owner ~target

(* ------------------------------------------------------------------ *)
(* F1 — Figure 1: witness/subject hand-off in the exclusive suffix. *)

let f1 () =
  Util.section "F1  Figure 1: witness and subject threads in the exclusive suffix";
  let run = Core.Scenario.wf_extraction ~seed:101L ~n:2 () in
  let engine = run.Core.Scenario.engine in
  Engine.run engine ~until:16000;
  let pair = Reduction.Extract.pair run.Core.Scenario.extract ~watcher:0 ~subject:1 in
  let horizon = Engine.now engine in
  (* ASCII timeline: one bucket per [scale] ticks in a stable window. *)
  let w0, w1 = (14000, 15000) in
  let scale = 10 in
  let row label intervals =
    let buckets = (w1 - w0) / scale in
    let cells =
      String.init buckets (fun b ->
          let t0 = w0 + (b * scale) and t1 = w0 + ((b + 1) * scale) in
          let covered =
            List.exists (fun (a, bnd) -> a < t1 && bnd > t0) intervals
          in
          if covered then '#' else '.')
    in
    Printf.printf "  %-6s %s\n" label cells
  in
  Printf.printf "\n  eating sessions, t in [%d, %d), %d ticks per column:\n\n" w0 w1 scale;
  let intervals inst pid = Trace.eating_intervals (Engine.trace engine) ~instance:inst ~pid ~horizon in
  row "p.w0" (intervals pair.Reduction.Pair.dx_instances.(0) 0);
  row "q.s0" (intervals pair.Reduction.Pair.dx_instances.(0) 1);
  row "p.w1" (intervals pair.Reduction.Pair.dx_instances.(1) 0);
  row "q.s1" (intervals pair.Reduction.Pair.dx_instances.(1) 1);
  (* The gray regions of Figure 1: some subject is always eating. *)
  let l8 =
    List.find
      (fun r -> r.Reduction.Lemmas.lemma = "L8")
      (Reduction.Lemmas.online_reports (snd (List.hd run.Core.Scenario.onlines)))
  in
  Printf.printf
    "\n  hand-off overlap (Lemma 8): some subject eating at every tick of the suffix\n\
    \  %s   [%s]\n"
    l8.Reduction.Lemmas.info
    (Util.ok_fail (Reduction.Lemmas.ok l8));
  let l12 =
    List.find
      (fun r -> r.Reduction.Lemmas.lemma = "L12")
      (Reduction.Lemmas.trace_reports ~engine ~pair)
  in
  Printf.printf "  witness alternation (Lemma 12): %s   [%s]\n" l12.Reduction.Lemmas.info
    (Util.ok_fail (Reduction.Lemmas.ok l12))

(* ------------------------------------------------------------------ *)
(* T1 — Theorem 1: strong completeness; crash-detection latency. *)

let t1 () =
  Util.section "T1  Theorem 1: strong completeness of the extracted detector";
  let rows = ref [] in
  List.iter
    (fun n ->
      List.iter
        (fun crash_at ->
          let run = Core.Scenario.wf_extraction ~seed:202L ~with_lemma_monitors:false ~n () in
          let engine = run.Core.Scenario.engine in
          let target = n - 1 in
          Engine.schedule_crash engine target ~at:crash_at;
          Engine.run engine ~until:(crash_at + 16000);
          let trace = Engine.trace engine in
          let verdict =
            Detectors.Properties.strong_completeness trace ~detector:"extracted" ~n
              ~initially_suspected:true
          in
          let latency detector initially =
            let worst = ref 0 and okc = ref true in
            for owner = 0 to n - 2 do
              match
                Detectors.Properties.detection_time trace ~detector ~owner ~target
                  ~initially_suspected:initially
              with
              | Some t -> worst := max !worst (t - crash_at)
              | None -> okc := false
            done;
            if !okc then Some !worst else None
          in
          rows :=
            [
              string_of_int n;
              string_of_int crash_at;
              Util.yes_no (holds verdict);
              Util.opt_time (latency "extracted" true);
              Util.opt_time (latency "evp" false);
            ]
            :: !rows)
        [ 1000; 4000; 8000 ])
    [ 2; 3 ];
  Util.table
    ~header:
      [ "n"; "crash at"; "permanent suspicion"; "extracted latency"; "native evp latency" ]
    (List.rev !rows);
  print_endline
    "  Shape: every correct monitor permanently suspects the crashed process; the\n\
    \  extracted detector trails the native heartbeat detector by the time the\n\
    \  witness threads need to eat past the dead subject (wait-freedom at work)."

(* ------------------------------------------------------------------ *)
(* T2 — Theorem 2: eventual strong accuracy. *)

let t2 () =
  Util.section "T2  Theorem 2: eventual strong accuracy of the extracted detector";
  let rows = ref [] in
  List.iter
    (fun (gst, label_windows, windows) ->
      let run =
        Core.Scenario.wf_extraction ~seed:303L
          ~adversary:(Adversary.partial_sync ~gst ())
          ~windows ~with_lemma_monitors:false ~n:2 ()
      in
      let engine = run.Core.Scenario.engine in
      Engine.run engine ~until:30000;
      let trace = Engine.trace engine in
      let verdict =
        Detectors.Properties.eventual_strong_accuracy trace ~detector:"extracted" ~n:2
          ~initially_suspected:true
      in
      let conv detector =
        Detectors.Properties.accuracy_convergence_time trace ~detector ~n:2
      in
      let mistakes =
        Detectors.Properties.total_false_suspicions trace ~detector:"extracted" ~n:2
      in
      rows :=
        [
          string_of_int gst;
          label_windows;
          Util.yes_no (holds verdict);
          string_of_int mistakes;
          string_of_int (conv "extracted");
          string_of_int (conv "evp");
        ]
        :: !rows)
    [
      (200, "none", []);
      (800, "none", []);
      (2000, "none", []);
      ( 800,
        "forced prefix mistakes",
        [
          (0, [ { Detectors.Injected.from_ = 900; until = 1400; target = 1 } ]);
          (1, [ { Detectors.Injected.from_ = 300; until = 700; target = 0 } ]);
        ] );
    ];
  Util.table
    ~header:
      [
        "GST"; "injected oracle mistakes"; "accuracy"; "false suspicions";
        "extracted converged by"; "native evp converged by";
      ]
    (List.rev !rows);
  print_endline
    "  Shape: wrongful suspicions are finite and stop shortly after the underlying\n\
    \  system stabilises, whatever the GST and despite adversarial oracle mistakes."

(* ------------------------------------------------------------------ *)
(* L — Lemmas 1-12 as machine-checked run-time invariants. *)

let lemmas () =
  Util.section "L   Lemmas 1-12: machine-checked proof obligations";
  let totals : (string, int * int) Hashtbl.t = Hashtbl.create 16 in
  let bump lemma ok =
    let runs, bad = Option.value ~default:(0, 0) (Hashtbl.find_opt totals lemma) in
    Hashtbl.replace totals lemma (runs + 1, if ok then bad else bad + 1)
  in
  let scenarios =
    List.concat_map
      (fun seed ->
        [ (seed, None, Adversary.partial_sync ~gst:500 ());
          (seed, Some (2000 + (seed * 997 mod 3000)), Adversary.partial_sync ~gst:500 ());
          (seed, None, Adversary.bursty ~gst:900 ()) ])
      [ 1; 2; 3; 4; 5 ]
  in
  List.iter
    (fun (seed, crash, adversary) ->
      let run =
        Core.Scenario.wf_extraction ~seed:(Int64.of_int (1000 + seed)) ~adversary ~n:2 ()
      in
      let engine = run.Core.Scenario.engine in
      (match crash with Some at -> Engine.schedule_crash engine 1 ~at | None -> ());
      Engine.run engine ~until:22000;
      List.iter
        (fun (pair, online) ->
          List.iter
            (fun r -> bump r.Reduction.Lemmas.lemma (Reduction.Lemmas.ok r))
            (Reduction.Lemmas.online_reports online
            @ Reduction.Lemmas.trace_reports ~engine ~pair))
        run.Core.Scenario.onlines)
    scenarios;
  let order = [ "L1"; "L2"; "L3"; "L4"; "L5"; "L6"; "L7"; "L8"; "L9"; "L11"; "L12" ] in
  Util.table ~header:[ "lemma"; "checked (pair x run)"; "violations" ]
    (List.map
       (fun l ->
         let runs, bad = Option.value ~default:(0, 0) (Hashtbl.find_opt totals l) in
         [ l; string_of_int runs; string_of_int bad ])
       order);
  Printf.printf "  %d runs (seeds x {correct, crash} x {partial-sync, bursty}).\n"
    (List.length scenarios)

(* ------------------------------------------------------------------ *)
(* V1 — Section 3: the [8] construction is not black-box; ours is. *)

let v1 () =
  Util.section "V1  Section 3: vulnerability of the contention-manager construction [8]";
  Util.subsection
    "scenario: correct subject enters its critical section during the oracle's\n\
     mistake-prone prefix and never exits ([12]-style box: exclusive suffix void)";
  let rows = ref [] in
  List.iter
    (fun horizon ->
      let count mode =
        let engine, suspected = Core.Scenario.vulnerability ~mode () in
        Engine.run engine ~until:horizon;
        let det = match mode with `Flawed_cm -> "flawed-cm" | `Our_reduction -> "extracted" in
        let flips = Trace.suspicion_flips (Engine.trace engine) ~detector:det ~owner:1 ~target:0 in
        let late = List.length (List.filter (fun (t, _) -> t > horizon - (horizon / 5)) flips) in
        (List.length flips, late, suspected ())
      in
      let fc, fl, _ = count `Flawed_cm in
      let oc, ol, os = count `Our_reduction in
      rows :=
        [
          string_of_int horizon;
          string_of_int fc;
          string_of_int fl;
          string_of_int oc;
          string_of_int ol;
          (if os then "suspects" else "trusts");
        ]
        :: !rows)
    [ 5000; 10000; 20000; 40000 ];
  Util.table
    ~header:
      [
        "horizon"; "[8] flips about correct q"; "[8] flips in last 20%"; "our flips";
        "our flips in last 20%"; "our final";
      ]
    (List.rev !rows);
  print_endline
    "  Shape: the [8] construction keeps suspecting the correct q (flips grow\n\
    \  linearly with the horizon: eventual strong accuracy is violated); the\n\
    \  paper's two-instance reduction converges with finitely many flips.";
  Util.subsection
    "ablation: one instance, no hand-off (subject exits, but a slow subject is\n\
     legally overtaken forever: fairness is not part of WF-◇WX)";
  let build mode =
    let n = 2 in
    let adversary =
      Adversary.handicap ~slow:[ 1 ] ~factor:0.12 (Adversary.partial_sync ~gst:400 ())
    in
    let engine = Engine.create ~seed:5L ~n ~adversary () in
    let suspects = Core.Scenario.evp_suspects engine ~n ~windows:[] in
    let dining = Reduction.Pair.wf_ewx_factory ~n ~suspects in
    let det =
      match mode with
      | `Single ->
          ignore (Reduction.Single_instance.create ~engine ~dining ~watcher:0 ~subject:1 ());
          "single-inst"
      | `Pair ->
          ignore (Reduction.Pair.create ~engine ~dining ~watcher:0 ~subject:1 ());
          "extracted"
    in
    Engine.run engine ~until:30000;
    let flips = Trace.suspicion_flips (Engine.trace engine) ~detector:det ~owner:0 ~target:1 in
    let late = List.length (List.filter (fun (t, _) -> t > 20000) flips) in
    (List.length flips, late)
  in
  let sc, sl = build `Single in
  let pc, pl = build `Pair in
  let verdict late = if late = 0 then "converged" else "still flipping (accuracy FAILS)" in
  Util.table
    ~header:
      [ "construction"; "flips about correct-but-slow q"; "flips in last third"; "verdict" ]
    [
      [ "single instance"; string_of_int sc; string_of_int sl; verdict sl ];
      [ "two instances + hand-off"; string_of_int pc; string_of_int pl; verdict pl ];
    ]

(* ------------------------------------------------------------------ *)
(* S9 — Section 9: the same reduction over perpetual WX extracts T. *)

let post_trust_revocations trace ~detector ~owner ~target =
  let flips = Trace.suspicion_flips trace ~detector ~owner ~target in
  let crash = Types.Pidmap.find_opt target (Trace.crash_times trace) in
  let rec scan trusted_once acc = function
    | [] -> acc
    | (t, v) :: rest ->
        let live = match crash with None -> true | Some tc -> t < tc in
        let acc = if v && trusted_once && live then acc + 1 else acc in
        scan (trusted_once || not v) acc rest
  in
  scan false 0 flips

let s9 () =
  Util.section "S9  Section 9: extraction over perpetual weak exclusion yields T";
  let rows = ref [] in
  let add label engine crashed =
    let trace = Engine.trace engine in
    let ta =
      Detectors.Properties.trusting_accuracy trace ~detector:"extracted" ~n:2
        ~initially_suspected:true
    in
    let sc =
      Detectors.Properties.strong_completeness trace ~detector:"extracted" ~n:2
        ~initially_suspected:true
    in
    let rev = post_trust_revocations trace ~detector:"extracted" ~owner:0 ~target:1 in
    rows :=
      [
        label;
        (if crashed then "crash @6000" else "correct");
        string_of_int rev;
        Util.yes_no (holds ta);
        Util.yes_no (holds sc);
      ]
      :: !rows
  in
  List.iter
    (fun crash ->
      let run = Core.Scenario.ftme_extraction ~seed:404L ~n:2 () in
      if crash then Engine.schedule_crash run.Core.Scenario.engine 1 ~at:6000;
      Engine.run run.Core.Scenario.engine ~until:25000;
      add "perpetual WX (FTME box)" run.Core.Scenario.engine crash)
    [ false; true ];
  (* Contrast: over a ◇WX box, a mid-run oracle mistake inside the black box
     lets the witness eat twice between subject meals — a trust revocation of
     a live process. The extracted detector is ◇P but NOT T. *)
  let windows =
    [ (0, [ { Detectors.Injected.from_ = 5000; until = 5600; target = 1 } ]) ]
  in
  let run = Core.Scenario.wf_extraction ~seed:405L ~windows ~with_lemma_monitors:false ~n:2 () in
  Engine.run run.Core.Scenario.engine ~until:25000;
  add "eventual WX (WF-◇WX box)" run.Core.Scenario.engine false;
  Util.table
    ~header:
      [
        "black box"; "fault pattern"; "post-trust revocations of live q";
        "trusting accuracy"; "strong completeness";
      ]
    (List.rev !rows);
  print_endline
    "  Shape: over a wait-free *perpetual* WX box the extracted oracle never\n\
    \  revokes trust in a live process (= the trusting detector T); over a ◇WX\n\
    \  box revocations can happen (finitely often): the extraction is only ◇P."

(* ------------------------------------------------------------------ *)
(* K1 — Section 8: composing the extraction with eventually-fair dining. *)

let k1 () =
  Util.section "K1  Section 8: extracted ◇P drives eventually 2-fair dining ([13])";
  let rows = ref [] in
  List.iter
    (fun (algo, label, crash) ->
      let n = 3 in
      let run = Core.Scenario.wf_extraction ~seed:505L ~with_lemma_monitors:false ~n () in
      let engine = run.Core.Scenario.engine in
      (* Layer: the paper's two-step construction — extract ◇P from the
         black box, feed it to the k-fair dining algorithm. *)
      let graph = Graphs.Conflict_graph.clique ~n in
      for pid = 0 to n - 1 do
        let ctx = Engine.ctx engine pid in
        let oracle = Reduction.Extract.oracle run.Core.Scenario.extract pid in
        let suspects () = oracle.Detectors.Oracle.suspects () in
        let comp, handle =
          match algo with
          | `Kfair ->
              let c, h, _ = Dining.Kfair.component ctx ~instance:"kf" ~graph ~suspects () in
              (c, h)
          | `Wf ->
              let c, h, _ = Dining.Wf_ewx.component ctx ~instance:"kf" ~graph ~suspects () in
              (c, h)
        in
        Engine.register engine pid comp;
        Engine.register engine pid (Dining.Clients.greedy ctx ~handle ())
      done;
      (match crash with Some at -> Engine.schedule_crash engine 2 ~at | None -> ());
      Engine.run engine ~until:30000;
      let trace = Engine.trace engine in
      let k = Dining.Monitor.max_overtaking trace ~instance:"kf" ~graph ~after:15000 ~horizon:30000 in
      let wf = Dining.Monitor.wait_freedom trace ~instance:"kf" ~n ~horizon:30000 ~slack:6000 in
      let wx =
        Dining.Monitor.eventual_weak_exclusion trace ~instance:"kf" ~graph ~horizon:30000
          ~suffix_from:15000
      in
      rows :=
        [
          label;
          string_of_int k;
          Util.yes_no (k <= 2);
          Util.yes_no (holds wf);
          Util.yes_no (holds wx);
        ]
        :: !rows)
    [
      (`Kfair, "k-fair scheduler, all correct", None);
      (`Kfair, "k-fair scheduler, crash @5000", Some 5000);
      (`Wf, "plain wf-◇wx (comparison), all correct", None);
    ];
  Util.table
    ~header:
      [
        "scheduler / fault pattern"; "max suffix overtaking k"; "k <= 2"; "wait-free";
        "exclusive suffix";
      ]
    (List.rev !rows);
  print_endline
    "  Shape: any WF-◇WX solution can be upgraded to eventual 2-fairness by\n\
    \  extracting ◇P (this paper) and running the [13]-style fair scheduler on it."

(* ------------------------------------------------------------------ *)
(* A1 — Section 2: WSN duty-cycle scheduling. *)

let a1 () =
  Util.section "A1  Section 2: WSN duty-cycle scheduling (on duty = eating)";
  let config = Wsn.Model.default_config in
  let horizon = 9000 in
  let run scheduler =
    let n = config.Wsn.Model.areas * config.Wsn.Model.nodes_per_area in
    let engine =
      Engine.create ~seed:606L ~n ~adversary:(Adversary.partial_sync ~gst:300 ()) ()
    in
    let model = Wsn.Model.setup ~engine ~config ~scheduler () in
    Engine.run engine ~until:horizon;
    model
  in
  let all_on = run Wsn.Model.All_on in
  let dining = run Wsn.Model.Dining in
  let stats model =
    let series = Wsn.Model.coverage_series model ~sample_every:25 ~horizon in
    let live = List.filter (fun s -> s.Wsn.Model.alive > 0) series in
    let avg f =
      if live = [] then 0.0
      else
        float_of_int (List.fold_left (fun acc s -> acc + f s) 0 live)
        /. float_of_int (List.length live)
    in
    ( (match Wsn.Model.lifetime model with
      | Some t -> string_of_int t
      | None -> Printf.sprintf ">%d" horizon),
      Printf.sprintf "%.2f / %d" (avg (fun s -> s.Wsn.Model.covered)) config.Wsn.Model.areas,
      Printf.sprintf "%.2f" (avg (fun s -> s.Wsn.Model.redundant)) )
  in
  let l1, c1, r1 = stats all_on in
  let l2, c2, r2 = stats dining in
  Util.table
    ~header:[ "scheduler"; "network lifetime"; "avg areas covered (while alive)"; "avg redundant areas" ]
    [
      [ "all-on baseline"; l1; c1; r1 ];
      [ "WF-◇WX dining"; l2; c2; r2 ];
    ];
  print_endline
    "  Shape: duty cycling sacrifices a little instantaneous coverage and all\n\
    \  redundancy (after ◇P converges) for a several-fold network lifetime;\n\
    \  redundant duty during the prefix is a performance mistake, not a safety one."

(* ------------------------------------------------------------------ *)
(* A2 — Sections 2-3: contention manager boosting obstruction freedom. *)

let a2 () =
  Util.section "A2  Sections 2-3: contention manager boosts OF transactions to wait-free";
  let horizon = 12000 in
  let run with_cm =
    let clients = 4 in
    let n = clients + 1 in
    let engine = Engine.create ~seed:707L ~n ~adversary:(Adversary.partial_sync ~gst:400 ()) () in
    let store_comp, _ = Ctm.Store.component (Engine.ctx engine 0) () in
    Engine.register engine 0 store_comp;
    let client_pids = List.init clients (fun i -> i + 1) in
    let graph =
      Graphs.Conflict_graph.of_edges ~n
        (List.concat_map
           (fun a -> List.filter_map (fun b -> if a < b then Some (a, b) else None) client_pids)
           client_pids)
    in
    let stats =
      List.map
        (fun pid ->
          let ctx = Engine.ctx engine pid in
          let cm =
            if with_cm then begin
              let fd, oracle = Detectors.Heartbeat.component ctx ~peers:client_pids () in
              Engine.register engine pid fd;
              let comp, handle, _ =
                Dining.Wf_ewx.component ctx ~instance:"cm" ~graph
                  ~suspects:(fun () -> oracle.Detectors.Oracle.suspects ())
                  ()
              in
              Engine.register engine pid comp;
              Some handle
            end
            else None
          in
          let comp, st = Ctm.Client.component ctx ~store:0 ?cm ~compute_ticks:6 () in
          Engine.register engine pid comp;
          st)
        client_pids
    in
    Engine.run engine ~until:horizon;
    stats
  in
  let summarize stats =
    let tot f = List.fold_left (fun acc st -> acc + f st) 0 stats in
    let commits = tot (fun (st : Ctm.Client.stats) -> st.Ctm.Client.commits) in
    let aborts = tot (fun st -> st.Ctm.Client.aborts) in
    let late_aborts =
      (* aborts are not timestamped; approximate with commits in last third
         vs overall success trend via late commit share *)
      tot (fun st ->
          List.length
            (List.filter (fun t -> t > horizon - (horizon / 3)) st.Ctm.Client.commit_times))
    in
    let min_commits =
      List.fold_left (fun acc (st : Ctm.Client.stats) -> min acc st.Ctm.Client.commits) max_int
        stats
    in
    (commits, aborts, late_aborts, min_commits)
  in
  let c1, a1_, l1, m1 = summarize (run false) in
  let c2, a2_, l2, m2 = summarize (run true) in
  Util.table
    ~header:
      [
        "configuration"; "commits"; "aborts"; "success rate"; "commits in last third";
        "min commits per client";
      ]
    [
      [
        "no contention manager"; string_of_int c1; string_of_int a1_;
        Util.pct c1 (c1 + a1_); string_of_int l1; string_of_int m1;
      ];
      [
        "WF-◇WX contention manager"; string_of_int c2; string_of_int a2_;
        Util.pct c2 (c2 + a2_); string_of_int l2; string_of_int m2;
      ];
    ];
  print_endline
    "  Shape: raw obstruction freedom wastes most attempts under contention; the\n\
    \  manager serialises the suffix so every client commits forever (wait-free)."

(* ------------------------------------------------------------------ *)
(* SW — multi-seed statistical sweep of the headline properties. *)

let sweep () =
  Util.section "SW  Multi-seed sweep: the theorems across 10 random schedules";
  let seeds = Core.Batch.seeds 10 in
  (* Theorem 1 latency distribution. *)
  let latencies =
    Core.Batch.sweep ~seeds (fun ~seed ->
        let run = Core.Scenario.wf_extraction ~seed ~with_lemma_monitors:false ~n:2 () in
        let engine = run.Core.Scenario.engine in
        Engine.schedule_crash engine 1 ~at:3000;
        Engine.run engine ~until:20000;
        match
          Detectors.Properties.detection_time (Engine.trace engine) ~detector:"extracted"
            ~owner:0 ~target:1 ~initially_suspected:true
        with
        | Some t -> float_of_int (t - 3000)
        | None -> Float.nan)
  in
  let detected = List.filter (fun l -> not (Float.is_nan l)) latencies in
  (* Theorem 2 convergence distribution. *)
  let convergences =
    Core.Batch.sweep ~seeds (fun ~seed ->
        let run = Core.Scenario.wf_extraction ~seed ~with_lemma_monitors:false ~n:2 () in
        let engine = run.Core.Scenario.engine in
        Engine.run engine ~until:20000;
        float_of_int
          (Detectors.Properties.accuracy_convergence_time (Engine.trace engine)
             ~detector:"extracted" ~n:2))
  in
  let evp_held, evp_total =
    Core.Batch.count_where ~seeds (fun ~seed ->
        let run = Core.Scenario.wf_extraction ~seed ~with_lemma_monitors:false ~n:2 () in
        let engine = run.Core.Scenario.engine in
        if Int64.to_int seed mod 2 = 0 then Engine.schedule_crash engine 1 ~at:4000;
        Engine.run engine ~until:22000;
        (Detectors.Properties.eventually_perfect (Engine.trace engine) ~detector:"extracted"
           ~n:2 ~initially_suspected:true)
          .Detectors.Properties.holds)
  in
  let t_held, t_total =
    Core.Batch.count_where ~seeds (fun ~seed ->
        let run = Core.Scenario.ftme_extraction ~seed ~n:2 () in
        let engine = run.Core.Scenario.engine in
        if Int64.to_int seed mod 2 = 1 then Engine.schedule_crash engine 1 ~at:4000;
        Engine.run engine ~until:22000;
        let trace = Engine.trace engine in
        (Detectors.Properties.trusting_accuracy trace ~detector:"extracted" ~n:2
           ~initially_suspected:true)
          .Detectors.Properties.holds
        && (Detectors.Properties.strong_completeness trace ~detector:"extracted" ~n:2
              ~initially_suspected:true)
             .Detectors.Properties.holds)
  in
  Util.table
    ~header:[ "property"; "result over 10 seeds" ]
    [
      [ "crash detected permanently"; Printf.sprintf "%d/10 runs" (List.length detected) ];
      [
        "detection latency (ticks)";
        (if detected = [] then "-" else Core.Batch.Stats.summary (Core.Batch.Stats.of_floats detected));
      ];
      [
        "accuracy convergence time (ticks)";
        Core.Batch.Stats.summary (Core.Batch.Stats.of_floats convergences);
      ];
      [ "extracted detector is ◇P"; Printf.sprintf "%d/%d runs" evp_held evp_total ];
      [ "T properties over FTME box"; Printf.sprintf "%d/%d runs" t_held t_total ];
    ]

(* ------------------------------------------------------------------ *)
(* M1 — engineering numbers: message cost of the reduction. *)

let m1 () =
  Util.section "M1  Engineering: message and scheduling cost of the extraction";
  let rows = ref [] in
  List.iter
    (fun n ->
      let run = Core.Scenario.wf_extraction ~seed:808L ~with_lemma_monitors:false ~n () in
      let engine = run.Core.Scenario.engine in
      Engine.run engine ~until:10000;
      let trace = Engine.trace engine in
      let pair = List.hd run.Core.Scenario.extract.Reduction.Extract.pairs in
      let judgments =
        Dining.Monitor.eat_count trace ~instance:pair.Reduction.Pair.dx_instances.(0)
          ~pid:pair.Reduction.Pair.watcher
        + Dining.Monitor.eat_count trace ~instance:pair.Reduction.Pair.dx_instances.(1)
            ~pid:pair.Reduction.Pair.watcher
      in
      let dining_msgs =
        Engine.sent_with_tag engine ~tag:pair.Reduction.Pair.dx_instances.(0)
        + Engine.sent_with_tag engine ~tag:pair.Reduction.Pair.dx_instances.(1)
      in
      let pingack =
        Engine.sent_with_tag engine ~tag:pair.Reduction.Pair.witness_tag
        + Engine.sent_with_tag engine ~tag:pair.Reduction.Pair.subject_tag
      in
      rows :=
        [
          string_of_int n;
          string_of_int (n * (n - 1));
          string_of_int (Engine.sent_total engine);
          string_of_int judgments;
          Printf.sprintf "%.1f"
            (float_of_int (dining_msgs + pingack) /. float_of_int (max 1 judgments));
        ]
        :: !rows)
    [ 2; 3; 4 ];
  Util.table
    ~header:
      [
        "n"; "ordered pairs"; "total msgs (10k ticks)"; "liveness judgments (pair 0)";
        "msgs per judgment (pair 0)";
      ]
    (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* FL — the Section 2 design space: exclusion strength vs liveness vs oracle. *)

let fl () =
  Util.section "FL  Section 2 trade-off: exclusion strength x liveness x oracle";
  let n = 6 in
  let graph = Graphs.Conflict_graph.path ~n in
  let horizon = 12000 in
  (* The crashing process is pinned inside its critical section (glutton
     client) so it deterministically dies holding its fork. *)
  let measure label build =
    let engine = Engine.create ~seed:5L ~n ~adversary:(Adversary.partial_sync ~gst:300 ()) () in
    build engine;
    Engine.schedule_crash engine 0 ~at:1000;
    Engine.run engine ~until:horizon;
    let trace = Engine.trace engine in
    let violations =
      List.length (Dining.Monitor.exclusion_violations trace ~instance:"d" ~graph ~horizon)
    in
    let last_violation =
      Dining.Monitor.last_violation_time trace ~instance:"d" ~graph ~horizon
    in
    let loc =
      Dining.Monitor.failure_locality trace ~instance:"d" ~graph ~horizon ~slack:4000
    in
    let starved = Dining.Monitor.starved trace ~instance:"d" ~n ~horizon ~slack:4000 in
    [
      label;
      (if violations = 0 then "perpetual"
       else
         Printf.sprintf "eventual (%d mistakes, last @%s)" violations
           (Util.opt_time last_violation));
      (match loc with Some l -> string_of_int l | None -> "unbounded");
      string_of_int (List.length starved);
    ]
  in
  let with_clients engine pid handle =
    let ctx = Engine.ctx engine pid in
    if pid = 0 then Engine.register engine pid (Dining.Clients.glutton ctx ~handle ())
    else Engine.register engine pid (Dining.Clients.greedy ctx ~handle ())
  in
  let rows =
    [
      measure "wf-◇wx + ◇P (wait-free, ◇WX)" (fun engine ->
          (* One adversarial (but spec-compliant) oracle mistake in the
             prefix, so the run exhibits the finitely-many-violations
             behaviour that distinguishes ◇WX from WX. *)
          let windows =
            [ (1, [ { Detectors.Injected.from_ = 350; until = 450; target = 0 } ]) ]
          in
          let suspects = Core.Scenario.evp_suspects engine ~n ~windows in
          for pid = 0 to n - 1 do
            let ctx = Engine.ctx engine pid in
            let comp, handle, _ =
              Dining.Wf_ewx.component ctx ~instance:"d" ~graph ~suspects:(suspects pid) ()
            in
            Engine.register engine pid comp;
            with_clients engine pid handle
          done);
      measure "fl1 + ◇P (perpetual, locality 1)" (fun engine ->
          let suspects = Core.Scenario.evp_suspects engine ~n ~windows:[] in
          for pid = 0 to n - 1 do
            let ctx = Engine.ctx engine pid in
            let comp, handle =
              Dining.Fl1.component ctx ~instance:"d" ~graph ~suspects:(suspects pid) ()
            in
            Engine.register engine pid comp;
            with_clients engine pid handle
          done);
      measure "no detector (perpetual, unbounded)" (fun engine ->
          for pid = 0 to n - 1 do
            let ctx = Engine.ctx engine pid in
            let comp, handle =
              Dining.Fl1.component ctx ~instance:"d" ~graph
                ~suspects:(fun () -> Dsim.Types.Pidset.empty)
                ()
            in
            Engine.register engine pid comp;
            with_clients engine pid handle
          done);
    ]
  in
  Util.table
    ~header:[ "algorithm / oracle"; "exclusion"; "crash locality"; "starved correct diners" ]
    rows;
  print_endline
    "  Shape (path of 6, p0 crashes @1000): with ◇P you choose — wait-freedom at\n\
    \  the cost of finitely many exclusion mistakes (this paper's problem), or\n\
    \  perpetual exclusion at the cost of starving the crash's neighbors ([11]);\n\
    \  with no oracle at all, one crash starves the whole chain."

(* ------------------------------------------------------------------ *)
(* C1 — the equivalence put to work: consensus over the extracted ◇P. *)

let c1 () =
  Util.section "C1  Intro claim: the extracted ◇P solves consensus and leader election";
  let rows = ref [] in
  List.iter
    (fun (label, source, crash) ->
      let n = 3 in
      let engine, suspects_of =
        match source with
        | `Extracted ->
            let run = Core.Scenario.wf_extraction ~seed:909L ~with_lemma_monitors:false ~n () in
            ( run.Core.Scenario.engine,
              fun pid ->
                let oracle = Reduction.Extract.oracle run.Core.Scenario.extract pid in
                fun () -> oracle.Detectors.Oracle.suspects () )
        | `Native ->
            let engine = Engine.create ~seed:909L ~n ~adversary:(Adversary.partial_sync ~gst:500 ()) () in
            (engine, Core.Scenario.evp_suspects engine ~n ~windows:[])
      in
      let instances =
        List.init n (fun pid ->
            let ctx = Engine.ctx engine pid in
            let c =
              Agreement.Consensus.create ctx ~members:(List.init n Fun.id)
                ~suspects:(suspects_of pid) ()
            in
            Engine.register engine pid c.Agreement.Consensus.component;
            c.Agreement.Consensus.propose (100 + pid);
            c)
      in
      (match crash with Some at -> Engine.schedule_crash engine 2 ~at | None -> ());
      Engine.run engine ~until:30000;
      let trace = Engine.trace engine in
      let decisions = Agreement.Consensus.decisions trace in
      let latest =
        List.fold_left (fun acc (_, t, _) -> max acc t) 0 decisions
      in
      let correct_decided =
        List.for_all
          (fun pid ->
            (not (Engine.is_live engine pid))
            || List.exists
                 (fun (c : Agreement.Consensus.t) -> c.Agreement.Consensus.decided () <> None)
                 [ List.nth instances pid ])
          (List.init n Fun.id)
      in
      rows :=
        [
          label;
          Util.yes_no correct_decided;
          Util.yes_no (holds (Agreement.Consensus.agreement trace));
          (if decisions = [] then "-" else string_of_int latest);
        ]
        :: !rows)
    [
      ("native heartbeat ◇P, all correct", `Native, None);
      ("native heartbeat ◇P, crash @1000", `Native, Some 1000);
      ("EXTRACTED from dining, all correct", `Extracted, None);
      ("EXTRACTED from dining, crash @1000", `Extracted, Some 1000);
    ];
  Util.table
    ~header:[ "detector source / faults"; "every correct process decides"; "agreement"; "last decision at" ]
    (List.rev !rows);
  print_endline
    "  Shape: the oracle the reduction squeezes out of a dining black box is a\n\
    \  drop-in replacement for a native ◇P in Chandra-Toueg consensus."

(* ------------------------------------------------------------------ *)
(* SC — engine scaling curve: the ROADMAP's million-philosopher target. *)

(* One scaling point: a ring of [n] hygienic diners with greedy clients,
   run for a fixed total budget of process-ticks so every point does
   comparable work and the per-point wall times expose the engine's
   per-process cost. Hygienic dining needs no failure detector, so the
   whole run is engine + dining algorithm — exactly the hot path the
   timing wheel and dense process state exist for. [retain_trace:false]
   keeps 10^5 processes within memory; meals stream through a trace
   subscriber. Everything printed is deterministic (seeded PRNG only);
   wall time is the harness's job. *)
let scale ~n () =
  Util.section (Printf.sprintf "SC  scaling curve point: n = %d (ring, hygienic)" n);
  let budget = 2_000_000 in
  let ticks = max 20 (budget / n) in
  let engine =
    Engine.create ~seed:4242L ~retain_trace:false ~n
      ~adversary:(Adversary.async_uniform ()) ()
  in
  let graph = Graphs.Conflict_graph.ring ~n in
  let meals = ref 0 in
  Trace.subscribe (Engine.trace engine) (fun e ->
      match e.Trace.ev with
      | Trace.Transition { to_ = Types.Eating; _ } -> incr meals
      | _ -> ());
  for pid = 0 to n - 1 do
    let ctx = Engine.ctx engine pid in
    let comp, handle, _ = Dining.Hygienic.component ctx ~instance:"sc" ~graph () in
    Engine.register engine pid comp;
    Engine.register engine pid (Dining.Clients.greedy ctx ~handle ())
  done;
  Engine.run engine ~until:ticks;
  Util.table
    ~header:[ "n"; "ticks"; "proc-ticks"; "meals"; "msgs sent"; "in flight at end" ]
    [
      [
        string_of_int n;
        string_of_int ticks;
        string_of_int (n * ticks);
        string_of_int !meals;
        string_of_int (Engine.sent_total engine);
        string_of_int (Engine.in_flight_total engine);
      ];
    ]

let scale2 () = scale ~n:100 ()
let scale3 () = scale ~n:1_000 ()
let scale4 () = scale ~n:10_000 ()
let scale5 () = scale ~n:100_000 ()

let all () =
  f1 ();
  t1 ();
  t2 ();
  lemmas ();
  v1 ();
  s9 ();
  k1 ();
  a1 ();
  a2 ();
  fl ();
  c1 ();
  sweep ();
  m1 ()
