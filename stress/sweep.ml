(* Offline stress sweeps: dining algorithms x topologies x adversaries x
   fault patterns, hundreds of configurations per invocation.

     dune exec stress/sweep.exe -- wf                # 648 configs
     dune exec stress/sweep.exe -- kfair /tmp/k.json # custom report path
     dune exec stress/sweep.exe -- wf --seed 0xBEEF  # shift the seed grid
     dune exec stress/sweep.exe -- wf -j 8           # 8 worker domains

   --seed (hex or decimal, parsed by the shared Core.Cmdline helper) sets
   the base of the per-config seed ladder (default 4000). -j/--jobs
   spreads the grid over that many domains (default: recommended domain
   count); each configuration is an independent simulation keyed by its
   own seed, so the report body and the stderr failure log are
   byte-identical for every worker count — only wall_clock differs.

   Each configuration's verdicts are recorded as one entry of a
   machine-readable JSON report (default STRESS_<algo>.json in the
   current directory, schema "dinersim-stress/1"); failures are still
   echoed to stderr, in grid order, after the parallel phase.

   These grids found three real bugs during development (an FTME
   double-grant and a recovery deadlock from stale releases, and a kfair
   whole-graph deadlock from stale-request overwrites), all now fixed and
   pinned by regression tests. Keep running them after any protocol
   change. *)

open Dsim

let adversary_of = function
  | `Async -> Adversary.async_uniform ()
  | `Partial gst -> Adversary.partial_sync ~gst ()
  | `Bursty gst -> Adversary.bursty ~gst ()

let graph_of seed = function
  | `Ring n -> Graphs.Conflict_graph.ring ~n
  | `Clique n -> Graphs.Conflict_graph.clique ~n
  | `Star n -> Graphs.Conflict_graph.star ~n
  | `Path n -> Graphs.Conflict_graph.path ~n
  | `Rand n -> Graphs.Conflict_graph.random ~n ~p:0.5 ~rng:(Prng.create seed)

let gname = function
  | `Ring n -> Printf.sprintf "ring%d" n | `Clique n -> Printf.sprintf "clique%d" n
  | `Star n -> Printf.sprintf "star%d" n | `Path n -> Printf.sprintf "path%d" n
  | `Rand n -> Printf.sprintf "rand%d" n

let aname = function
  | `Async -> "async" | `Partial g -> Printf.sprintf "partial:%d" g
  | `Bursty g -> Printf.sprintf "bursty:%d" g

(* The flat grid, in the canonical (graph, adversary, crashes, seed)
   nesting order the sequential sweep used — report entries and failure
   lines keep this order regardless of which domain ran which config. *)
let grid base_seed =
  List.concat_map
    (fun gspec ->
      List.concat_map
        (fun adv ->
          List.concat_map
            (fun ncrash ->
              List.map
                (fun seed -> (gspec, adv, ncrash, seed))
                (List.init 12 (fun i -> Int64.add base_seed (Int64.of_int (i * 1733)))))
            [ 0; 1; 2 ])
        [ `Async; `Partial 300; `Bursty 800 ])
    [ `Ring 5; `Clique 5; `Star 6; `Path 6; `Rand 6; `Rand 7 ]
  |> Array.of_list

(* One configuration = one independent simulation, a pure function of the
   algorithm name and the grid point: safe to run on any worker domain. *)
let run_config algo (gspec, adv, ncrash, seed) =
  let graph = graph_of seed gspec in
  let n = Graphs.Conflict_graph.n graph in
  let engine = Engine.create ~seed ~n ~adversary:(adversary_of adv) () in
  (* Per-config registry, installed before components register so the
     hooks see the whole run; merged in grid order after the parallel
     phase, like the campaign driver. *)
  let metrics = Obs.Metrics.create () in
  let inst = Obs.Instrument.install ~metrics engine in
  let suspects = Core.Scenario.evp_suspects engine ~n ~windows:[] in
  for pid = 0 to n - 1 do
    let ctx = Engine.ctx engine pid in
    let comp, handle =
      if algo = "wf" then
        let c, h, _ = Dining.Wf_ewx.component ctx ~instance:"dx" ~graph ~suspects:(suspects pid) () in (c, h)
      else
        let c, h, _ = Dining.Kfair.component ctx ~instance:"dx" ~graph ~suspects:(suspects pid) () in (c, h)
    in
    Engine.register engine pid comp;
    Engine.register engine pid (Dining.Clients.greedy ctx ~handle ())
  done;
  if ncrash >= 1 then Engine.schedule_crash engine (n - 1) ~at:(600 + Int64.to_int (Int64.rem seed 1500L));
  if ncrash >= 2 && n > 3 then Engine.schedule_crash engine 1 ~at:2200;
  Engine.run engine ~until:14000;
  Obs.Instrument.finalize inst;
  let trace = Engine.trace engine in
  let wf = Dining.Monitor.wait_freedom trace ~instance:"dx" ~n ~horizon:14000 ~slack:4500 in
  let wx = Dining.Monitor.eventual_weak_exclusion trace ~instance:"dx" ~graph ~horizon:14000 ~suffix_from:8000 in
  let ok = wf.Detectors.Properties.holds && wx.Detectors.Properties.holds in
  let entry =
    Obs.Json.Obj
      [
        ("graph", Obs.Json.Str (gname gspec));
        ("adversary", Obs.Json.Str (aname adv));
        ("crashes", Obs.Json.Int ncrash);
        ("seed", Obs.Json.Str (Core.Cmdline.seed_to_string seed));
        ("wait_freedom", Obs.Json.Bool wf.Detectors.Properties.holds);
        ("eventual_weak_exclusion", Obs.Json.Bool wx.Detectors.Properties.holds);
        ("pass", Obs.Json.Bool ok);
      ]
  in
  let fail_line =
    if ok then None
    else
      Some
        (Printf.sprintf "FAIL algo=%s g=%s adv=%s crashes=%d seed=%Ld wf=%b wx=%b\n"
           algo (gname gspec) (aname adv) ncrash seed
           wf.Detectors.Properties.holds wx.Detectors.Properties.holds)
  in
  (entry, fail_line, metrics)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let or_die = function
    | Ok r -> r
    | Error msg ->
        Printf.eprintf "sweep: %s\n" msg;
        exit 2
  in
  let base_seed, args = or_die (Core.Cmdline.extract_seed_flag ~default:4000L args) in
  let jobs, positional =
    or_die
      (Core.Cmdline.extract_int_flag ~names:[ "-j"; "--jobs" ]
         ~default:(Exec.Pool.default_jobs ()) args)
  in
  if jobs < 1 then begin
    Printf.eprintf "sweep: -j must be at least 1 (got %d)\n" jobs;
    exit 2
  end;
  let algo = match positional with a :: _ -> a | [] -> "wf" in
  let report_path =
    match positional with
    | _ :: p :: _ -> p
    | _ -> Printf.sprintf "STRESS_%s.json" algo
  in
  let specs = grid base_seed in
  let (results : (Obs.Json.t * string option * Obs.Metrics.t) array), total_s =
    Obs.Instrument.time (fun () ->
        Exec.Pool.map ~jobs (Array.length specs) (fun i -> run_config algo specs.(i)))
  in
  (* Merge phase, in grid order: failure lines, report entries and the
     merged metrics registry come out identical for every -j. *)
  let fails = ref 0 in
  let metrics = Obs.Metrics.create () in
  Array.iter
    (fun (_, fail_line, m) ->
      Obs.Metrics.merge ~into:metrics m;
      match fail_line with
      | Some line ->
          incr fails;
          Printf.eprintf "%s%!" line
      | None -> ())
    results;
  let j =
    Obs.Json.Obj
      [
        ("schema", Obs.Json.Str "dinersim-stress/1");
        ("algo", Obs.Json.Str algo);
        ("runs", Obs.Json.Int (Array.length specs));
        ("failures", Obs.Json.Int !fails);
        ("configs", Obs.Json.Arr (Array.to_list (Array.map (fun (e, _, _) -> e) results)));
        ("metrics", Obs.Metrics.to_json metrics);
        (* Everything above is deterministic in (--seed, algo); wall_clock
           is the only section allowed to vary between invocations. *)
        ( "wall_clock",
          Obs.Json.Obj
            [ ("jobs", Obs.Json.Int jobs); ("total_s", Obs.Json.Float total_s) ] );
      ]
  in
  let oc = open_out report_path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Obs.Json.to_string_pretty j));
  Printf.printf "algo=%s runs=%d failures=%d jobs=%d report=%s\n" algo (Array.length specs)
    !fails jobs report_path;
  if !fails > 0 then exit 1
