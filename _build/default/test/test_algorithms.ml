(* White-box unit tests of Algorithms 1 and 2 against a scripted (mock)
   dining service: the tests play the role of the black box and schedule
   every hungry->eating and exiting->thinking transition by hand. *)

open Dsim

let check = Alcotest.(check bool)
let check_phase = Alcotest.(check string)

let phase_str (m : Mock_dining.t) = Types.phase_to_string (m.Mock_dining.phase ())

(* A witness at p0 and a subject at p1 over two mock instances. *)
type rig = {
  engine : Engine.t;
  witness : Reduction.Witness.t;
  subject : Reduction.Subject.t;
  w : Mock_dining.t array;
  s : Mock_dining.t array;
}

let make_rig ?(seed = 1L) () =
  let engine = Engine.create ~seed ~n:2 ~adversary:(Adversary.synchronous ()) () in
  let wctx = Engine.ctx engine 0 and sctx = Engine.ctx engine 1 in
  let w = Array.init 2 (fun i -> Mock_dining.create wctx ~instance:(Printf.sprintf "mdx%d" i)) in
  let s = Array.init 2 (fun i -> Mock_dining.create sctx ~instance:(Printf.sprintf "mdx%d" i)) in
  let witness =
    Reduction.Witness.create wctx ~tag:"w[m]" ~subject_pid:1 ~subject_tag:"s[m]"
      ~dx:(Array.map (fun m -> m.Mock_dining.handle) w)
      ~detector_name:"extracted" ()
  in
  Engine.register engine 0 witness.Reduction.Witness.component;
  let subject =
    Reduction.Subject.create sctx ~tag:"s[m]" ~witness_pid:0 ~witness_tag:"w[m]"
      ~dx:(Array.map (fun m -> m.Mock_dining.handle) s)
      ()
  in
  Engine.register engine 1 subject.Reduction.Subject.component;
  { engine; witness; subject; w; s }

let hungry m () = Types.phase_equal (m.Mock_dining.phase ()) Types.Hungry
let exiting m () = Types.phase_equal (m.Mock_dining.phase ()) Types.Exiting
let until r = Mock_dining.step_until r.engine ~max:200

(* ------------------------------------------------------------------ *)

let test_witness_initial_turn () =
  let r = make_rig () in
  (* W_h: w0 becomes hungry first (switch = 0); w1 must stay thinking. *)
  check "w0 gets hungry" true (until r (hungry r.w.(0)));
  check_phase "w1 still thinking" "thinking" (phase_str r.w.(1));
  check "witness starts suspecting" true (r.witness.Reduction.Witness.suspected ())

let test_witness_judges_and_hands_over () =
  let r = make_rig () in
  ignore (until r (hungry r.w.(0)));
  (* Schedule w0 to eat with no ping received: W_x must suspect, flip the
     switch, and exit. *)
  r.w.(0).Mock_dining.grant ();
  check "w0 exits" true (until r (exiting r.w.(0)));
  check "still suspects (no ping ever)" true (r.witness.Reduction.Witness.suspected ());
  Alcotest.(check int) "switch flipped" 1 (r.witness.Reduction.Witness.switch ());
  (* w1 only becomes hungry after w0 is back to thinking (Lemma 9). *)
  Engine.run r.engine ~until:(Engine.now r.engine + 50);
  check_phase "w1 waits for w0 to finish exiting" "thinking" (phase_str r.w.(1));
  r.w.(0).Mock_dining.finish_exit ();
  check "now w1 gets hungry" true (until r (hungry r.w.(1)))

let test_subject_handoff_order () =
  let r = make_rig () in
  (* S_h: s0 first (trigger = 0); s1 must wait. *)
  check "s0 gets hungry" true (until r (hungry r.s.(0)));
  check_phase "s1 still thinking" "thinking" (phase_str r.s.(1));
  (* Grant s0: it pings, and on the ack it triggers s1 — but does NOT exit
     until s1 is eating (Action S_x). *)
  r.s.(0).Mock_dining.grant ();
  check "s1 eventually hungry (ack arrived, trigger flipped)" true (until r (hungry r.s.(1)));
  Alcotest.(check int) "trigger now 1" 1 (r.subject.Reduction.Subject.trigger ());
  Engine.run r.engine ~until:(Engine.now r.engine + 50);
  check_phase "s0 keeps eating until s1 eats" "eating" (phase_str r.s.(0));
  r.s.(1).Mock_dining.grant ();
  check "s0 exits once s1 eats (hand-off overlap)" true (until r (exiting r.s.(0)))

let test_subject_pings_once_per_session () =
  let r = make_rig () in
  ignore (until r (hungry r.s.(0)));
  r.s.(0).Mock_dining.grant ();
  ignore (until r (hungry r.s.(1)));
  Engine.run r.engine ~until:(Engine.now r.engine + 100);
  let pings =
    List.length (Trace.notes ~pid:1 ~label:"red-ping" (Engine.trace r.engine))
  in
  Alcotest.(check int) "exactly one ping in s0's session" 1 pings;
  (* ping flag re-arms only at exit (Lemma 2's machinery) *)
  check "ping_0 spent" false (r.subject.Reduction.Subject.ping_flag 0);
  check "ping_1 still armed" true (r.subject.Reduction.Subject.ping_flag 1)

let test_witness_trusts_after_ping () =
  let r = make_rig () in
  (* Run the full first exchange: s0 eats and pings; then w0 eats. *)
  ignore (until r (hungry r.s.(0)));
  ignore (until r (hungry r.w.(0)));
  r.s.(0).Mock_dining.grant ();
  ignore (until r (hungry r.s.(1)));
  (* the ping has certainly arrived at p0 by now (ack was returned) *)
  check "haveping_0 set" true (r.witness.Reduction.Witness.haveping 0);
  r.w.(0).Mock_dining.grant ();
  ignore (until r (exiting r.w.(0)));
  check "witness now trusts q" false (r.witness.Reduction.Witness.suspected ());
  check "haveping_0 consumed" false (r.witness.Reduction.Witness.haveping 0)

let test_witness_double_meal_without_ping_suspects () =
  (* The exact failure mode the hand-off prevents in real runs, forced by
     hand: two witness meals in a row with no subject meal between them
     reset haveping and flip the verdict back to suspicion. *)
  let r = make_rig () in
  ignore (until r (hungry r.s.(0)));
  ignore (until r (hungry r.w.(0)));
  r.s.(0).Mock_dining.grant ();
  ignore (until r (hungry r.s.(1)));
  r.w.(0).Mock_dining.grant ();
  ignore (until r (exiting r.w.(0)));
  check "trusts after first meal" false (r.witness.Reduction.Witness.suspected ());
  r.w.(0).Mock_dining.finish_exit ();
  ignore (until r (hungry r.w.(1)));
  (* w1 eats although s1 never pinged: verdict flips to suspect. *)
  r.w.(1).Mock_dining.grant ();
  ignore (until r (exiting r.w.(1)));
  check "suspects again after meal without ping" true
    (r.witness.Reduction.Witness.suspected ())

let test_subject_blocks_without_ack () =
  (* Section 8's 'potentially infinite eating session': if the witness side
     never acks (we simply never let the witness component see the ping by
     crashing p0), the subject stays in its critical section forever. *)
  let r = make_rig () in
  Engine.crash_now r.engine 0;
  ignore (until r (hungry r.s.(0)));
  r.s.(0).Mock_dining.grant ();
  Engine.run r.engine ~until:(Engine.now r.engine + 300);
  check_phase "s0 eats forever without the ack" "eating" (phase_str r.s.(0));
  check_phase "s1 never triggered" "thinking" (phase_str r.s.(1))

let () =
  Alcotest.run "algorithms"
    [
      ( "witness (Algorithm 1)",
        [
          Alcotest.test_case "initial turn" `Quick test_witness_initial_turn;
          Alcotest.test_case "judge + hand over" `Quick test_witness_judges_and_hands_over;
          Alcotest.test_case "trusts after ping" `Quick test_witness_trusts_after_ping;
          Alcotest.test_case "double meal without ping suspects" `Quick
            test_witness_double_meal_without_ping_suspects;
        ] );
      ( "subject (Algorithm 2)",
        [
          Alcotest.test_case "hand-off order" `Quick test_subject_handoff_order;
          Alcotest.test_case "one ping per session" `Quick test_subject_pings_once_per_session;
          Alcotest.test_case "blocks without ack (Section 8)" `Quick
            test_subject_blocks_without_ack;
        ] );
    ]
