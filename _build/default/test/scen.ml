(* Shared scenario builders for the test suites. *)

open Dsim

type dining_run = {
  engine : Engine.t;
  graph : Graphs.Conflict_graph.t;
  instance : string;
  handles : Dining.Spec.handle array;
  debugs : Dining.Wf_ewx.debug array;
  oracles : Detectors.Oracle.t array;
}

let wf_dining ?(seed = 1L) ?(adversary = Adversary.partial_sync ()) ?(instance = "dx")
    ?(greedy = true) ?(eat_ticks = 3) ?(think_ticks = 2) ?(suspicion_override = true)
    ~graph () =
  let n = Graphs.Conflict_graph.n graph in
  let engine = Engine.create ~seed ~n ~adversary () in
  let per_pid =
    List.init n (fun pid ->
        let ctx = Engine.ctx engine pid in
        let fd_comp, oracle =
          Detectors.Heartbeat.component ctx ~peers:(List.init n Fun.id) ()
        in
        Engine.register engine pid fd_comp;
        let din_comp, handle, debug =
          Dining.Wf_ewx.component ctx ~instance ~graph
            ~suspects:(fun () -> oracle.Detectors.Oracle.suspects ())
            ~config:{ Dining.Wf_ewx.suspicion_override }
            ()
        in
        Engine.register engine pid din_comp;
        if greedy then
          Engine.register engine pid
            (Dining.Clients.greedy ctx ~handle ~eat_ticks ~think_ticks ());
        (handle, debug, oracle))
  in
  {
    engine;
    graph;
    instance;
    handles = Array.of_list (List.map (fun (h, _, _) -> h) per_pid);
    debugs = Array.of_list (List.map (fun (_, d, _) -> d) per_pid);
    oracles = Array.of_list (List.map (fun (_, _, o) -> o) per_pid);
  }
