(* A scripted dining service for unit-testing the reduction's action
   systems in isolation: the *test* decides exactly when each diner is
   scheduled to eat, so Algorithms 1 and 2 can be exercised under arbitrary
   legal (and barely-legal) schedules without any real dining algorithm in
   the loop. *)

open Dsim

type t = {
  handle : Dining.Spec.handle;
  grant : unit -> unit;  (** hungry -> eating (test-controlled). *)
  finish_exit : unit -> unit;  (** exiting -> thinking (test-controlled). *)
  phase : unit -> Types.phase;
}

(* The mock needs no component: the test mutates phases directly between
   engine steps, which models a dining layer scheduling at arbitrary
   instants. *)
let create ctx ~instance =
  let cell, handle = Dining.Spec.Cell.handle (Dining.Spec.Cell.create ctx ~instance) in
  {
    handle;
    grant =
      (fun () ->
        assert (Types.phase_equal (Dining.Spec.Cell.phase cell) Types.Hungry);
        Dining.Spec.Cell.set cell Types.Eating);
    finish_exit =
      (fun () ->
        assert (Types.phase_equal (Dining.Spec.Cell.phase cell) Types.Exiting);
        Dining.Spec.Cell.set cell Types.Thinking);
    phase = (fun () -> Dining.Spec.Cell.phase cell);
  }

(* Step the engine until [cond] holds or [max] ticks pass; returns success. *)
let step_until engine ~max cond =
  let deadline = Engine.now engine + max in
  Engine.run_while engine ~max:deadline (fun () -> not (cond ()));
  cond ()
