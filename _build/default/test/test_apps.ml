(* Tests for the application substrates: contention-managed transactions
   (Sections 2-3) and WSN duty-cycle scheduling (Section 2). *)

open Dsim

let check = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Contention management / obstruction-free boost *)

(* Process 0 hosts the store; processes 1..clients are transactional
   clients. *)
let ctm_run ?(seed = 51L) ?(adversary = Adversary.partial_sync ~gst:400 ()) ?(clients = 4)
    ?(compute_ticks = 6) ?(with_cm = true) ?(horizon = 10000) ?(crash = []) () =
  let n = clients + 1 in
  let engine = Engine.create ~seed ~n ~adversary () in
  let store_ctx = Engine.ctx engine 0 in
  let store_comp, store_stats = Ctm.Store.component store_ctx () in
  Engine.register engine 0 store_comp;
  let graph =
    (* Clients form a clique; the store process is isolated. *)
    Graphs.Conflict_graph.of_edges ~n
      (List.concat_map
         (fun a -> List.filter_map (fun b -> if a < b then Some (a, b) else None)
                     (List.init n Fun.id |> List.filter (fun x -> x > 0)))
         (List.init n Fun.id |> List.filter (fun x -> x > 0)))
  in
  let stats =
    Array.init n (fun pid ->
        if pid = 0 then None
        else begin
          let ctx = Engine.ctx engine pid in
          let cm =
            if with_cm then begin
              let fd, oracle =
                Detectors.Heartbeat.component ctx ~peers:(List.init (n - 1) (fun i -> i + 1)) ()
              in
              Engine.register engine pid fd;
              let comp, handle, _ =
                Dining.Wf_ewx.component ctx ~instance:"cm" ~graph
                  ~suspects:(fun () -> oracle.Detectors.Oracle.suspects ())
                  ()
              in
              Engine.register engine pid comp;
              Some handle
            end
            else None
          in
          let comp, st = Ctm.Client.component ctx ~store:0 ?cm ~compute_ticks () in
          Engine.register engine pid comp;
          Some st
        end)
  in
  List.iter (fun (pid, at) -> Engine.schedule_crash engine pid ~at) crash;
  Engine.run engine ~until:horizon;
  (engine, store_stats, stats)

let total f stats =
  Array.fold_left (fun acc -> function Some st -> acc + f st | None -> acc) 0 stats

let commits_before t stats =
  Array.fold_left
    (fun acc -> function
      | Some (st : Ctm.Client.stats) ->
          acc + List.length (List.filter (fun ct -> ct <= t) st.Ctm.Client.commit_times)
      | None -> acc)
    0 stats

let test_ctm_contention_without_manager () =
  let _, store_stats, stats = ctm_run ~with_cm:false () in
  let commits = total (fun st -> st.Ctm.Client.commits) stats in
  let aborts = total (fun st -> st.Ctm.Client.aborts) stats in
  check "transactions keep executing" true (commits > 0);
  check "contention causes many aborts" true (aborts > commits);
  check "store saw failures" true (store_stats.Ctm.Store.cas_fail > store_stats.Ctm.Store.cas_ok)

let test_ctm_manager_boosts_to_waitfree () =
  let _, _, stats = ctm_run ~with_cm:true () in
  let commits = total (fun st -> st.Ctm.Client.commits) stats in
  let aborts = total (fun st -> st.Ctm.Client.aborts) stats in
  check "plenty of commits" true (commits > 50);
  (* In the exclusive suffix every transaction runs alone: aborts are
     confined to the mistake-prone prefix. *)
  let early = commits_before 5000 stats in
  let late = commits - early in
  check "all clients keep committing in the suffix" true (late > 30);
  check "aborts bounded (prefix only)" true (aborts < commits / 2)

let test_ctm_every_client_commits () =
  let _, _, stats = ctm_run ~with_cm:true ~horizon:12000 () in
  Array.iteri
    (fun pid -> function
      | Some (st : Ctm.Client.stats) ->
          check (Printf.sprintf "client %d commits" pid) true (st.Ctm.Client.commits > 5)
      | None -> ())
    stats

let test_ctm_survives_client_crash () =
  (* A client dies (possibly inside its critical section); the manager's
     wait-freedom keeps the others committing. *)
  let _, _, stats = ctm_run ~with_cm:true ~horizon:12000 ~crash:[ (2, 2000) ] () in
  Array.iteri
    (fun pid -> function
      | Some (st : Ctm.Client.stats) ->
          if pid <> 2 then
            check
              (Printf.sprintf "client %d commits after the crash" pid)
              true
              (List.exists (fun t -> t > 6000) st.Ctm.Client.commit_times)
      | None -> ())
    stats

let test_ctm_store_consistency () =
  (* Version increments exactly once per successful CAS. *)
  let _, store_stats, stats = ctm_run ~with_cm:true ~horizon:6000 () in
  let commits = total (fun st -> st.Ctm.Client.commits) stats in
  check "commits = successful CAS" true (commits = store_stats.Ctm.Store.cas_ok)

(* ------------------------------------------------------------------ *)
(* WSN duty-cycle scheduling *)

let wsn_run ?(seed = 61L) ?(config = Wsn.Model.default_config) ~scheduler ~horizon () =
  let n = config.Wsn.Model.areas * config.Wsn.Model.nodes_per_area in
  let engine = Engine.create ~seed ~n ~adversary:(Adversary.partial_sync ~gst:300 ()) () in
  let model = Wsn.Model.setup ~engine ~config ~scheduler () in
  Engine.run engine ~until:horizon;
  model

let test_wsn_all_on_lifetime () =
  let model = wsn_run ~scheduler:Wsn.Model.All_on ~horizon:3000 () in
  match Wsn.Model.lifetime model with
  | None -> Alcotest.fail "all-on network should have died"
  | Some t ->
      (* One battery's worth (600 duty ticks) plus start-up slack. *)
      check "lifetime ~ one battery" true (t >= 600 && t < 900)

let test_wsn_dining_extends_lifetime () =
  let all_on = wsn_run ~scheduler:Wsn.Model.All_on ~horizon:3000 () in
  let dining = wsn_run ~scheduler:Wsn.Model.Dining ~horizon:9000 () in
  let t_all_on =
    match Wsn.Model.lifetime all_on with Some t -> t | None -> 3000
  in
  let t_dining =
    match Wsn.Model.lifetime dining with Some t -> t | None -> 9000
  in
  check "duty cycling at least doubles the lifetime" true (t_dining > 2 * t_all_on)

(* Big batteries so the observation window is disjoint from both the
   detector's convergence prefix and the network's end of life. *)
let long_lived_config =
  { Wsn.Model.default_config with Wsn.Model.initial_energy = 3000 }

let test_wsn_redundancy_vanishes () =
  let model = wsn_run ~config:long_lived_config ~scheduler:Wsn.Model.Dining ~horizon:5000 () in
  let series = Wsn.Model.coverage_series model ~sample_every:50 ~horizon:5000 in
  (* After the detector converges (and long before batteries fade), no two
     same-area nodes are on duty together. *)
  let late =
    List.filter (fun s -> s.Wsn.Model.at > 1500 && s.Wsn.Model.at < 4500) series
  in
  check "samples exist" true (late <> []);
  check "everyone still alive in the window" true
    (List.for_all (fun s -> s.Wsn.Model.alive = 9) late);
  List.iter
    (fun s ->
      if s.Wsn.Model.redundant > 0 then
        Alcotest.failf "redundant duty at t=%d after convergence" s.Wsn.Model.at)
    late

let test_wsn_coverage_maintained () =
  let model = wsn_run ~config:long_lived_config ~scheduler:Wsn.Model.Dining ~horizon:5000 () in
  let series = Wsn.Model.coverage_series model ~sample_every:50 ~horizon:5000 in
  let late = List.filter (fun s -> s.Wsn.Model.at > 1000 && s.Wsn.Model.at < 4500) series in
  let avg =
    float_of_int (List.fold_left (fun acc s -> acc + s.Wsn.Model.covered) 0 late)
    /. float_of_int (max 1 (List.length late))
  in
  let areas = float_of_int Wsn.Model.default_config.Wsn.Model.areas in
  check "most areas covered most of the time" true (avg >= 0.5 *. areas)

let test_wsn_energy_accounting () =
  let model = wsn_run ~scheduler:Wsn.Model.All_on ~horizon:100 () in
  (* After 100 ticks always-on, every battery lost ~100 units. *)
  Array.iteri
    (fun pid e ->
      check (Printf.sprintf "node %d drained" pid) true (e <= 520 && e >= 480))
    model.Wsn.Model.energy

let () =
  Alcotest.run "apps"
    [
      ( "ctm",
        [
          Alcotest.test_case "contention without manager" `Quick
            test_ctm_contention_without_manager;
          Alcotest.test_case "manager boosts to wait-free" `Quick
            test_ctm_manager_boosts_to_waitfree;
          Alcotest.test_case "every client commits" `Quick test_ctm_every_client_commits;
          Alcotest.test_case "survives client crash" `Quick test_ctm_survives_client_crash;
          Alcotest.test_case "store consistency" `Quick test_ctm_store_consistency;
        ] );
      ( "wsn",
        [
          Alcotest.test_case "all-on lifetime" `Quick test_wsn_all_on_lifetime;
          Alcotest.test_case "dining extends lifetime" `Quick test_wsn_dining_extends_lifetime;
          Alcotest.test_case "redundancy vanishes" `Quick test_wsn_redundancy_vanishes;
          Alcotest.test_case "coverage maintained" `Quick test_wsn_coverage_maintained;
          Alcotest.test_case "energy accounting" `Quick test_wsn_energy_accounting;
        ] );
    ]
