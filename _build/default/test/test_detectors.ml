(* Tests for the failure-detector implementations and property checkers. *)

open Dsim

let check = Alcotest.(check bool)

let holds (v : Detectors.Properties.verdict) = v.Detectors.Properties.holds

let setup_heartbeat ?(seed = 4L) ?(adversary = Adversary.partial_sync ~gst:300 ()) ?config ~n ()
    =
  let engine = Engine.create ~seed ~n ~adversary () in
  let oracles =
    Array.init n (fun pid ->
        let ctx = Engine.ctx engine pid in
        let comp, oracle =
          Detectors.Heartbeat.component ctx ?config ~peers:(List.init n Fun.id) ()
        in
        Engine.register engine pid comp;
        oracle)
  in
  (engine, oracles)

let test_heartbeat_completeness () =
  let engine, oracles = setup_heartbeat ~n:3 () in
  Engine.schedule_crash engine 2 ~at:600;
  Engine.run engine ~until:3000;
  check "p0 suspects crashed p2" true (oracles.(0).Detectors.Oracle.suspected 2);
  check "p1 suspects crashed p2" true (oracles.(1).Detectors.Oracle.suspected 2);
  let v =
    Detectors.Properties.strong_completeness (Engine.trace engine) ~detector:"evp" ~n:3
      ~initially_suspected:false
  in
  check "strong completeness verdict" true (holds v)

let test_heartbeat_accuracy_converges () =
  let engine, oracles = setup_heartbeat ~n:3 () in
  Engine.run engine ~until:4000;
  Array.iteri
    (fun i o ->
      for j = 0 to 2 do
        if i <> j then
          check
            (Printf.sprintf "p%d trusts p%d at horizon" i j)
            false
            (o.Detectors.Oracle.suspected j)
      done)
    oracles;
  let v =
    Detectors.Properties.eventually_perfect (Engine.trace engine) ~detector:"evp" ~n:3
      ~initially_suspected:false
  in
  check "eventually perfect verdict" true (holds v)

let test_heartbeat_converges_under_bursty () =
  let engine, _ =
    setup_heartbeat ~adversary:(Adversary.bursty ~gst:800 ()) ~n:4 ~seed:17L ()
  in
  Engine.schedule_crash engine 3 ~at:400;
  Engine.run engine ~until:8000;
  let v =
    Detectors.Properties.eventually_perfect (Engine.trace engine) ~detector:"evp" ~n:4
      ~initially_suspected:false
  in
  check "eventually perfect despite bursts" true (holds v)

let test_heartbeat_nonadaptive_fails_accuracy () =
  (* Ablation: a fixed timeout below the heartbeat period can never satisfy
     eventual strong accuracy — the oracle keeps erring forever. *)
  let config = { Detectors.Heartbeat.period = 8; initial_timeout = 2; adaptive = false } in
  let engine, _ = setup_heartbeat ~config ~n:2 () in
  Engine.run engine ~until:4000;
  let mistakes =
    Detectors.Properties.total_false_suspicions (Engine.trace engine) ~detector:"evp" ~n:2
  in
  check "mistakes keep accumulating" true (mistakes > 50)

let test_heartbeat_mistakes_are_finite_when_adaptive () =
  let engine, _ = setup_heartbeat ~adversary:(Adversary.bursty ~gst:600 ()) ~n:2 ~seed:9L () in
  Engine.run engine ~until:3000;
  let t1 =
    Detectors.Properties.total_false_suspicions (Engine.trace engine) ~detector:"evp" ~n:2
  in
  Engine.run engine ~until:12000;
  let t2 =
    Detectors.Properties.total_false_suspicions (Engine.trace engine) ~detector:"evp" ~n:2
  in
  check "no new mistakes after convergence" true (t2 = t1)

let test_perfect_detector () =
  let engine = Engine.create ~seed:5L ~n:3 ~adversary:(Adversary.async_uniform ()) () in
  let oracles =
    Array.init 3 (fun pid ->
        let ctx = Engine.ctx engine pid in
        let comp, o = Detectors.Ground_truth.perfect ctx ~peers:[ 0; 1; 2 ] () in
        Engine.register engine pid comp;
        o)
  in
  Engine.schedule_crash engine 1 ~at:100;
  Engine.run engine ~until:500;
  check "suspects crashed" true (oracles.(0).Detectors.Oracle.suspected 1);
  check "never suspects live" false (oracles.(0).Detectors.Oracle.suspected 2);
  let tr = Engine.trace engine in
  check "zero false suspicions" true
    (Detectors.Properties.total_false_suspicions tr ~detector:"perfect" ~n:3 = 0)

let test_trusting_detector_properties () =
  let engine = Engine.create ~seed:5L ~n:3 ~adversary:(Adversary.async_uniform ()) () in
  let oracles =
    Array.init 3 (fun pid ->
        let ctx = Engine.ctx engine pid in
        let comp, o =
          Detectors.Ground_truth.trusting ctx ~detection_delay:30 ~peers:[ 0; 1; 2 ] ()
        in
        Engine.register engine pid comp;
        o)
  in
  Engine.schedule_crash engine 2 ~at:100;
  Engine.run engine ~until:120;
  check "not yet suspected (delay)" false (oracles.(0).Detectors.Oracle.suspected 2);
  Engine.run engine ~until:1000;
  check "eventually suspected" true (oracles.(0).Detectors.Oracle.suspected 2);
  let tr = Engine.trace engine in
  let v =
    Detectors.Properties.trusting_accuracy tr ~detector:"trusting" ~n:3
      ~initially_suspected:false
  in
  check "trusting accuracy" true (holds v);
  let c =
    Detectors.Properties.strong_completeness tr ~detector:"trusting" ~n:3
      ~initially_suspected:false
  in
  check "strong completeness" true (holds c)

let test_strong_detector () =
  let engine = Engine.create ~seed:5L ~n:4 ~adversary:(Adversary.async_uniform ()) () in
  let oracles =
    Array.init 4 (fun pid ->
        let ctx = Engine.ctx engine pid in
        let comp, o = Detectors.Ground_truth.strong ctx ~peers:[ 0; 1; 2; 3 ] () in
        Engine.register engine pid comp;
        o)
  in
  Engine.schedule_crash engine 2 ~at:100;
  Engine.run engine ~until:800;
  check "suspects crashed" true (oracles.(1).Detectors.Oracle.suspected 2);
  check "anchor never suspected" false (oracles.(1).Detectors.Oracle.suspected 0);
  let tr = Engine.trace engine in
  let v = Detectors.Properties.perpetual_weak_accuracy tr ~detector:"strong" ~n:4 in
  check "perpetual weak accuracy" true v.Detectors.Properties.holds;
  let c =
    Detectors.Properties.strong_completeness tr ~detector:"strong" ~n:4
      ~initially_suspected:false
  in
  check "strong completeness" true c.Detectors.Properties.holds

let test_perpetual_weak_accuracy_violation_detected () =
  let tr = Trace.create () in
  (* every correct process gets suspected at least once *)
  Trace.append tr ~at:1 (Trace.Suspect { detector = "d"; owner = 0; target = 1 });
  Trace.append tr ~at:2 (Trace.Suspect { detector = "d"; owner = 1; target = 0 });
  let v = Detectors.Properties.perpetual_weak_accuracy tr ~detector:"d" ~n:2 in
  check "violation caught" false v.Detectors.Properties.holds

(* ------------------------------------------------------------------ *)
(* Ping-pong ◇P and differential testing against heartbeat *)

let setup_pingpong ?(seed = 4L) ?(adversary = Adversary.partial_sync ~gst:300 ()) ~n () =
  let engine = Engine.create ~seed ~n ~adversary () in
  let oracles =
    Array.init n (fun pid ->
        let ctx = Engine.ctx engine pid in
        let comp, oracle = Detectors.Pingpong.component ctx ~peers:(List.init n Fun.id) () in
        Engine.register engine pid comp;
        oracle)
  in
  (engine, oracles)

let test_pingpong_is_evp () =
  let engine, _ = setup_pingpong ~n:3 () in
  Engine.schedule_crash engine 2 ~at:600;
  Engine.run engine ~until:5000;
  let v =
    Detectors.Properties.eventually_perfect (Engine.trace engine) ~detector:"evp-pp" ~n:3
      ~initially_suspected:false
  in
  check "ping-pong detector is eventually perfect" true (holds v)

let test_pingpong_converges_under_bursty () =
  let engine, _ =
    setup_pingpong ~seed:21L ~adversary:(Adversary.bursty ~gst:800 ()) ~n:3 ()
  in
  Engine.run engine ~until:10000;
  let v =
    Detectors.Properties.eventual_strong_accuracy (Engine.trace engine) ~detector:"evp-pp"
      ~n:3 ~initially_suspected:false
  in
  check "accuracy despite bursts" true (holds v)

let test_differential_heartbeat_vs_pingpong () =
  (* Both implementations deployed side by side in one run: after the
     stabilisation prefix their suspicion sets must be identical. *)
  let n = 3 in
  let engine = Engine.create ~seed:22L ~n ~adversary:(Adversary.partial_sync ~gst:400 ()) () in
  let pairs =
    Array.init n (fun pid ->
        let ctx = Engine.ctx engine pid in
        let hb_comp, hb = Detectors.Heartbeat.component ctx ~peers:(List.init n Fun.id) () in
        Engine.register engine pid hb_comp;
        let pp_comp, pp = Detectors.Pingpong.component ctx ~peers:(List.init n Fun.id) () in
        Engine.register engine pid pp_comp;
        (hb, pp))
  in
  Engine.schedule_crash engine 2 ~at:1500;
  Engine.run engine ~until:10000;
  Array.iteri
    (fun pid (hb, pp) ->
      if Engine.is_live engine pid then
        check
          (Printf.sprintf "p%d: both modules agree at the horizon" pid)
          true
          (Types.Pidset.equal
             (hb.Detectors.Oracle.suspects ())
             (pp.Detectors.Oracle.suspects ())))
    pairs

let test_reduction_over_pingpong_box () =
  (* Black-box check: the same extraction works when the dining layer's
     oracle is the ping-pong ◇P instead of the heartbeat one. *)
  let n = 2 in
  let engine = Engine.create ~seed:23L ~n ~adversary:(Adversary.partial_sync ~gst:400 ()) () in
  let fns =
    Array.init n (fun pid ->
        let ctx = Engine.ctx engine pid in
        let comp, oracle = Detectors.Pingpong.component ctx ~peers:(List.init n Fun.id) () in
        Engine.register engine pid comp;
        fun () -> oracle.Detectors.Oracle.suspects ())
  in
  let dining = Reduction.Pair.wf_ewx_factory ~n ~suspects:(fun pid -> fns.(pid)) in
  let extract = Reduction.Extract.create ~engine ~dining ~members:[ 0; 1 ] () in
  Engine.run engine ~until:20000;
  let pair = Reduction.Extract.pair extract ~watcher:0 ~subject:1 in
  check "converges to trust" false (pair.Reduction.Pair.suspected ());
  let v =
    Detectors.Properties.eventual_strong_accuracy (Engine.trace engine) ~detector:"extracted"
      ~n:2 ~initially_suspected:true
  in
  check "extraction is oracle-agnostic" true (holds v)

let test_injected_mistakes () =
  let engine = Engine.create ~seed:6L ~n:2 ~adversary:(Adversary.synchronous ()) () in
  let ctx = Engine.ctx engine 0 in
  let comp, base = Detectors.Heartbeat.component ctx ~peers:[ 0; 1 ] () in
  Engine.register engine 0 comp;
  let icomp, wrapped =
    Detectors.Injected.wrap ctx ~base
      ~windows:[ { Detectors.Injected.from_ = 50; until = 100; target = 1 } ]
  in
  Engine.register engine 0 icomp;
  (* Register the peer's heartbeat sender so the base oracle stays quiet. *)
  let ctx1 = Engine.ctx engine 1 in
  let comp1, _ = Detectors.Heartbeat.component ctx1 ~peers:[ 0; 1 ] () in
  Engine.register engine 1 comp1;
  Engine.run engine ~until:40;
  check "before window: trusted" false (wrapped.Detectors.Oracle.suspected 1);
  Engine.run engine ~until:75;
  check "inside window: suspected" true (wrapped.Detectors.Oracle.suspected 1);
  Engine.run engine ~until:200;
  check "after window: trusted again" false (wrapped.Detectors.Oracle.suspected 1);
  (* The wrapper logged the injected flip under its own detector name. *)
  let flips =
    Trace.suspicion_flips (Engine.trace engine) ~detector:"evp+inj" ~owner:0 ~target:1
  in
  check "wrapper logged flips" true (List.length flips >= 2)

let test_properties_trusting_violation_detected () =
  (* Hand-craft a trace where trust in a live process is revoked. *)
  let tr = Trace.create () in
  Trace.append tr ~at:10 (Trace.Trust { detector = "d"; owner = 0; target = 1 });
  Trace.append tr ~at:20 (Trace.Suspect { detector = "d"; owner = 0; target = 1 });
  Trace.append tr ~at:30 (Trace.Trust { detector = "d"; owner = 0; target = 1 });
  let v =
    Detectors.Properties.trusting_accuracy tr ~detector:"d" ~n:2 ~initially_suspected:true
  in
  check "violation caught" false (holds v)

let test_properties_completeness_violation_detected () =
  let tr = Trace.create () in
  Trace.append tr ~at:5 (Trace.Crash { pid = 1 });
  (* p0 never suspects p1. *)
  let v =
    Detectors.Properties.strong_completeness tr ~detector:"d" ~n:2 ~initially_suspected:false
  in
  check "violation caught" false (holds v)

let test_properties_detection_time () =
  let tr = Trace.create () in
  Trace.append tr ~at:5 (Trace.Suspect { detector = "d"; owner = 0; target = 1 });
  Trace.append tr ~at:8 (Trace.Trust { detector = "d"; owner = 0; target = 1 });
  Trace.append tr ~at:33 (Trace.Suspect { detector = "d"; owner = 0; target = 1 });
  Alcotest.(check (option int))
    "last onset" (Some 33)
    (Detectors.Properties.detection_time tr ~detector:"d" ~owner:0 ~target:1
       ~initially_suspected:false);
  let tr2 = Trace.create () in
  Alcotest.(check (option int))
    "initially suspected, never flipped" (Some 0)
    (Detectors.Properties.detection_time tr2 ~detector:"d" ~owner:0 ~target:1
       ~initially_suspected:true)

let () =
  Alcotest.run "detectors"
    [
      ( "heartbeat",
        [
          Alcotest.test_case "strong completeness" `Quick test_heartbeat_completeness;
          Alcotest.test_case "accuracy converges" `Quick test_heartbeat_accuracy_converges;
          Alcotest.test_case "converges under bursty adversary" `Quick
            test_heartbeat_converges_under_bursty;
          Alcotest.test_case "non-adaptive fails accuracy (ablation)" `Quick
            test_heartbeat_nonadaptive_fails_accuracy;
          Alcotest.test_case "adaptive mistakes are finite" `Quick
            test_heartbeat_mistakes_are_finite_when_adaptive;
        ] );
      ( "ground-truth oracles",
        [
          Alcotest.test_case "perfect detector" `Quick test_perfect_detector;
          Alcotest.test_case "trusting detector" `Quick test_trusting_detector_properties;
          Alcotest.test_case "strong detector" `Quick test_strong_detector;
        ] );
      ("injection", [ Alcotest.test_case "mistake windows" `Quick test_injected_mistakes ]);
      ( "ping-pong",
        [
          Alcotest.test_case "is eventually perfect" `Quick test_pingpong_is_evp;
          Alcotest.test_case "converges under bursty" `Quick
            test_pingpong_converges_under_bursty;
          Alcotest.test_case "differential vs heartbeat" `Quick
            test_differential_heartbeat_vs_pingpong;
          Alcotest.test_case "reduction over ping-pong box" `Quick
            test_reduction_over_pingpong_box;
        ] );
      ( "property checkers",
        [
          Alcotest.test_case "trusting violation detected" `Quick
            test_properties_trusting_violation_detected;
          Alcotest.test_case "completeness violation detected" `Quick
            test_properties_completeness_violation_detected;
          Alcotest.test_case "detection time" `Quick test_properties_detection_time;
          Alcotest.test_case "perpetual weak accuracy violation" `Quick
            test_perpetual_weak_accuracy_violation_detected;
        ] );
    ]
