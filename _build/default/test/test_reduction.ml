(* Tests for the paper's core contribution: the reduction extracting ◇P
   (resp. T) from black-box WF-◇WX (resp. wait-free WX) dining, plus the
   Section 3 vulnerability of the flawed contention-manager construction. *)

open Dsim

let check = Alcotest.(check bool)
let holds (v : Detectors.Properties.verdict) = v.Detectors.Properties.holds

(* ------------------------------------------------------------------ *)
(* Builders *)

type extraction_run = {
  engine : Engine.t;
  extract : Reduction.Extract.t;
  onlines : (Reduction.Pair.t * Reduction.Lemmas.online) list;
}

(* Underlying ◇P modules (one heartbeat detector per process) feeding the
   WF-◇WX dining boxes; optional adversarial mistake windows per process. *)
let evp_suspects engine ~n ~windows =
  let fns = Array.make n (fun () -> Types.Pidset.empty) in
  for pid = 0 to n - 1 do
    let ctx = Engine.ctx engine pid in
    let comp, base = Detectors.Heartbeat.component ctx ~peers:(List.init n Fun.id) () in
    Engine.register engine pid comp;
    let oracle =
      match List.assoc_opt pid windows with
      | None -> base
      | Some ws ->
          let icomp, wrapped = Detectors.Injected.wrap ctx ~base ~windows:ws in
          Engine.register engine pid icomp;
          wrapped
    in
    fns.(pid) <- (fun () -> oracle.Detectors.Oracle.suspects ())
  done;
  fun pid -> fns.(pid)

let wf_extraction ?(seed = 7L) ?(adversary = Adversary.partial_sync ~gst:500 ()) ?(windows = [])
    ~n () =
  let engine = Engine.create ~seed ~n ~adversary () in
  let suspects = evp_suspects engine ~n ~windows in
  let dining = Reduction.Pair.wf_ewx_factory ~n ~suspects in
  let extract =
    Reduction.Extract.create ~engine ~dining ~members:(List.init n Fun.id) ()
  in
  let onlines =
    List.map
      (fun pair -> (pair, Reduction.Lemmas.install_online ~engine ~pair))
      extract.Reduction.Extract.pairs
  in
  { engine; extract; onlines }

let ftme_extraction ?(seed = 9L) ?(adversary = Adversary.async_uniform ()) ~n () =
  let engine = Engine.create ~seed ~n ~adversary () in
  let fns = Array.make n (fun () -> Types.Pidset.empty) in
  for pid = 0 to n - 1 do
    let ctx = Engine.ctx engine pid in
    let comp, oracle =
      Detectors.Ground_truth.trusting ctx ~detection_delay:25 ~peers:(List.init n Fun.id) ()
    in
    Engine.register engine pid comp;
    fns.(pid) <- (fun () -> oracle.Detectors.Oracle.suspects ())
  done;
  let dining = Reduction.Pair.ftme_factory ~suspects:(fun pid -> fns.(pid)) in
  let extract =
    Reduction.Extract.create ~engine ~dining ~members:(List.init n Fun.id) ()
  in
  { engine; extract; onlines = [] }

let extracted_flips engine ~owner ~target =
  Trace.suspicion_flips (Engine.trace engine) ~detector:"extracted" ~owner ~target

(* ------------------------------------------------------------------ *)
(* Theorem 2: eventual strong accuracy *)

let test_accuracy_pairwise () =
  let r = wf_extraction ~n:2 () in
  Engine.run r.engine ~until:20000;
  let pair = Reduction.Extract.pair r.extract ~watcher:0 ~subject:1 in
  check "eventually trusts correct subject" false (pair.Reduction.Pair.suspected ());
  let v =
    Detectors.Properties.eventual_strong_accuracy (Engine.trace r.engine) ~detector:"extracted"
      ~n:2 ~initially_suspected:true
  in
  check "eventual strong accuracy" true (holds v)

let test_accuracy_full_system () =
  let r = wf_extraction ~seed:11L ~n:3 () in
  Engine.run r.engine ~until:30000;
  let v =
    Detectors.Properties.eventually_perfect (Engine.trace r.engine) ~detector:"extracted" ~n:3
      ~initially_suspected:true
  in
  check "extracted detector is ◇P (all-correct run)" true (holds v)

let test_accuracy_mistakes_are_finite () =
  let r = wf_extraction ~seed:13L ~n:2 () in
  Engine.run r.engine ~until:15000;
  let flips_mid = extracted_flips r.engine ~owner:0 ~target:1 in
  Engine.run r.engine ~until:30000;
  let flips_end = extracted_flips r.engine ~owner:0 ~target:1 in
  check "no new suspicion flips in the stable suffix" true
    (List.length flips_mid = List.length flips_end)

(* ------------------------------------------------------------------ *)
(* Theorem 1: strong completeness *)

let test_completeness_crash_subject () =
  let r = wf_extraction ~seed:17L ~n:2 () in
  Engine.schedule_crash r.engine 1 ~at:4000;
  Engine.run r.engine ~until:25000;
  let pair = Reduction.Extract.pair r.extract ~watcher:0 ~subject:1 in
  check "permanently suspects crashed subject" true (pair.Reduction.Pair.suspected ());
  let v =
    Detectors.Properties.strong_completeness (Engine.trace r.engine) ~detector:"extracted" ~n:2
      ~initially_suspected:true
  in
  check "strong completeness" true (holds v)

let test_completeness_full_system () =
  let r = wf_extraction ~seed:19L ~n:3 () in
  Engine.schedule_crash r.engine 2 ~at:5000;
  Engine.run r.engine ~until:40000;
  let v =
    Detectors.Properties.eventually_perfect (Engine.trace r.engine) ~detector:"extracted" ~n:3
      ~initially_suspected:true
  in
  check "extracted detector is ◇P (one crash)" true (holds v)

let test_completeness_crash_before_start_of_monitoring () =
  (* Crash in the very first ticks: the witness must still converge to
     permanent suspicion (it starts suspecting and q never pings). *)
  let r = wf_extraction ~seed:23L ~n:2 () in
  Engine.schedule_crash r.engine 1 ~at:3;
  Engine.run r.engine ~until:10000;
  let pair = Reduction.Extract.pair r.extract ~watcher:0 ~subject:1 in
  check "suspects immediately-crashed subject" true (pair.Reduction.Pair.suspected ())

(* ------------------------------------------------------------------ *)
(* Lemmas: the proof obligations hold on every run *)

let assert_lemmas r =
  List.iter
    (fun (pair, online) ->
      let reports =
        Reduction.Lemmas.online_reports online
        @ Reduction.Lemmas.trace_reports ~engine:r.engine ~pair
      in
      List.iter
        (fun rep ->
          if not (Reduction.Lemmas.ok rep) then
            Alcotest.failf "pair %s lemma %s: %s" pair.Reduction.Pair.name
              rep.Reduction.Lemmas.lemma
              (String.concat "; " rep.Reduction.Lemmas.violations))
        reports)
    r.onlines

let test_lemmas_correct_run () =
  let r = wf_extraction ~seed:29L ~n:2 () in
  Engine.run r.engine ~until:20000;
  assert_lemmas r

let test_lemmas_with_crash () =
  let r = wf_extraction ~seed:31L ~n:2 () in
  Engine.schedule_crash r.engine 1 ~at:5000;
  Engine.run r.engine ~until:20000;
  assert_lemmas r

let test_lemmas_under_bursty_adversary () =
  let r = wf_extraction ~seed:37L ~adversary:(Adversary.bursty ~gst:1000 ()) ~n:2 () in
  Engine.run r.engine ~until:25000;
  assert_lemmas r

let test_lemmas_seed_sweep () =
  (* A small property sweep: the lemmas and ◇P properties hold across random
     seeds and crash times. *)
  List.iter
    (fun seed ->
      let r = wf_extraction ~seed:(Int64.of_int seed) ~n:2 () in
      let crash = seed mod 3 = 0 in
      if crash then Engine.schedule_crash r.engine 1 ~at:(2000 + (seed * 137 mod 4000));
      Engine.run r.engine ~until:22000;
      assert_lemmas r;
      let v =
        Detectors.Properties.eventually_perfect (Engine.trace r.engine) ~detector:"extracted"
          ~n:2 ~initially_suspected:true
      in
      if not (holds v) then Alcotest.failf "seed %d: extracted not ◇P" seed)
    [ 101; 102; 103; 104; 105; 106 ]

(* ------------------------------------------------------------------ *)
(* Robustness of the reduction to early oracle mistakes in the black box *)

let test_reduction_tolerates_underlying_mistakes () =
  (* Both dining-layer ◇P modules wrongfully suspect the peer during an
     early window; the extraction must still converge to ◇P. *)
  let windows =
    [
      (0, [ { Detectors.Injected.from_ = 100; until = 600; target = 1 } ]);
      (1, [ { Detectors.Injected.from_ = 300; until = 800; target = 0 } ]);
    ]
  in
  let r = wf_extraction ~seed:41L ~windows ~n:2 () in
  Engine.run r.engine ~until:25000;
  assert_lemmas r;
  let v =
    Detectors.Properties.eventually_perfect (Engine.trace r.engine) ~detector:"extracted" ~n:2
      ~initially_suspected:true
  in
  check "◇P despite injected prefix mistakes" true (holds v)

(* ------------------------------------------------------------------ *)
(* Section 3: the [8] construction is not black-box; ours is *)

(* The vulnerability scenario: subject q = 0 (holds the request token),
   watcher p = 1 (holds the fork). q's dining-layer oracle wrongfully
   suspects p early; q enters its critical section on a "virtual fork"
   during the noisy prefix and — being the [8] construction's subject —
   never exits. The exclusive suffix never materialises: p eats (with the
   real fork) and suspects the correct q infinitely often. *)
let flawed_run ~horizon ~seed =
  let n = 2 in
  let engine = Engine.create ~seed ~n ~adversary:(Adversary.partial_sync ~gst:500 ()) () in
  let windows = [ (0, [ { Detectors.Injected.from_ = 0; until = 300; target = 1 } ]) ] in
  let suspects = evp_suspects engine ~n ~windows in
  let dining = Reduction.Pair.wf_ewx_factory ~n ~suspects in
  let cm = Reduction.Flawed_cm.create ~engine ~dining ~watcher:1 ~subject:0 () in
  Engine.run engine ~until:horizon;
  (engine, cm)

let test_flawed_cm_violates_accuracy () =
  let engine1, cm1 = flawed_run ~horizon:10000 ~seed:43L in
  let engine2, cm2 = flawed_run ~horizon:30000 ~seed:43L in
  ignore cm1;
  ignore cm2;
  let flips e =
    List.length (Trace.suspicion_flips (Engine.trace e) ~detector:"flawed-cm" ~owner:1 ~target:0)
  in
  let f1 = flips engine1 and f2 = flips engine2 in
  (* p suspects the correct q over and over, growing with the horizon:
     eventual strong accuracy is violated. *)
  check "many false suspicions" true (f1 > 20);
  check "suspicions keep growing with horizon" true (f2 > f1 + 20)

let test_flawed_cm_subject_is_correct_and_eating () =
  let engine, cm = flawed_run ~horizon:10000 ~seed:43L in
  check "subject is live" true (Engine.is_live engine 0);
  check "subject is (still) eating" true
    (Types.phase_equal (cm.Reduction.Flawed_cm.s_handle.Dining.Spec.phase ()) Types.Eating);
  (* ... and the watcher also eats: the box's exclusive suffix is void. *)
  check "watcher keeps eating" true
    (Dining.Monitor.eat_count (Engine.trace engine) ~instance:cm.Reduction.Flawed_cm.cm_instance
       ~pid:1
    > 20)

let test_our_reduction_closes_the_hole () =
  (* Same black box, same injected prefix mistake, same (p, q) orientation —
     but the two-instance hand-off reduction converges. *)
  let n = 2 in
  let engine = Engine.create ~seed:43L ~n ~adversary:(Adversary.partial_sync ~gst:500 ()) () in
  let windows = [ (0, [ { Detectors.Injected.from_ = 0; until = 300; target = 1 } ]) ] in
  let suspects = evp_suspects engine ~n ~windows in
  let dining = Reduction.Pair.wf_ewx_factory ~n ~suspects in
  let pair = Reduction.Pair.create ~engine ~dining ~watcher:1 ~subject:0 () in
  Engine.run engine ~until:10000;
  let f1 = List.length (extracted_flips engine ~owner:1 ~target:0) in
  Engine.run engine ~until:30000;
  let f2 = List.length (extracted_flips engine ~owner:1 ~target:0) in
  check "finitely many mistakes (no growth)" true (f1 = f2);
  check "converged to trust" false (pair.Reduction.Pair.suspected ())

(* ------------------------------------------------------------------ *)
(* Section 9: the same reduction over perpetual WX extracts T *)

let test_t_extraction_trusting_accuracy () =
  let r = ftme_extraction ~n:2 () in
  Engine.run r.engine ~until:25000;
  let v =
    Detectors.Properties.trusting_accuracy (Engine.trace r.engine) ~detector:"extracted" ~n:2
      ~initially_suspected:true
  in
  check "trusting accuracy over perpetual-WX box" true (holds v)

let test_t_extraction_completeness () =
  let r = ftme_extraction ~seed:47L ~n:2 () in
  Engine.schedule_crash r.engine 1 ~at:6000;
  Engine.run r.engine ~until:30000;
  let pair = Reduction.Extract.pair r.extract ~watcher:0 ~subject:1 in
  check "suspects crashed subject" true (pair.Reduction.Pair.suspected ());
  let v =
    Detectors.Properties.strong_completeness (Engine.trace r.engine) ~detector:"extracted" ~n:2
      ~initially_suspected:true
  in
  check "strong completeness" true (holds v)

let test_t_extraction_seed_sweep () =
  List.iter
    (fun seed ->
      let r = ftme_extraction ~seed:(Int64.of_int seed) ~n:2 () in
      if seed mod 2 = 0 then Engine.schedule_crash r.engine 1 ~at:(3000 + (seed * 531 mod 3000));
      Engine.run r.engine ~until:25000;
      let tr = Engine.trace r.engine in
      let ta =
        Detectors.Properties.trusting_accuracy tr ~detector:"extracted" ~n:2
          ~initially_suspected:true
      in
      let sc =
        Detectors.Properties.strong_completeness tr ~detector:"extracted" ~n:2
          ~initially_suspected:true
      in
      if not (holds ta && holds sc) then Alcotest.failf "seed %d: T properties violated" seed)
    [ 201; 202; 203; 204 ]

(* ------------------------------------------------------------------ *)
(* Soak and storm tests *)

let test_soak_long_horizon () =
  (* 100k ticks: the lemmas stay invariant, the trace machinery keeps up,
     and the extracted detector's flip count stays frozen after the
     prefix. *)
  let r = wf_extraction ~seed:1001L ~n:2 () in
  Engine.run r.engine ~until:25000;
  let flips_mid = List.length (extracted_flips r.engine ~owner:0 ~target:1) in
  Engine.run r.engine ~until:100000;
  let flips_end = List.length (extracted_flips r.engine ~owner:0 ~target:1) in
  check "no flips in 75k ticks of stable suffix" true (flips_mid = flips_end);
  assert_lemmas r

let test_crash_storm () =
  (* All processes but the watcher die, in quick succession. *)
  let n = 4 in
  let r = wf_extraction ~seed:1002L ~n () in
  Engine.schedule_crash r.engine 1 ~at:2000;
  Engine.schedule_crash r.engine 2 ~at:2100;
  Engine.schedule_crash r.engine 3 ~at:2200;
  Engine.run r.engine ~until:25000;
  let v =
    Detectors.Properties.eventually_perfect (Engine.trace r.engine) ~detector:"extracted" ~n
      ~initially_suspected:true
  in
  check "sole survivor suspects everyone" true (holds v)

let test_watcher_crash_does_not_poison_others () =
  (* Section 8: if the watcher dies, its subject may eat forever in their
     shared instances — the spec precondition is void there, but all other
     pairs must still converge. *)
  let n = 3 in
  let r = wf_extraction ~seed:1003L ~n () in
  Engine.schedule_crash r.engine 0 ~at:2000;
  Engine.run r.engine ~until:30000;
  let trace = Engine.trace r.engine in
  (* pairs among survivors 1 and 2 are fine in both directions *)
  List.iter
    (fun (owner, target) ->
      let pair = Reduction.Extract.pair r.extract ~watcher:owner ~subject:target in
      if pair.Reduction.Pair.suspected () then
        Alcotest.failf "p%d wrongly suspects live p%d after watcher crash" owner target)
    [ (1, 2); (2, 1) ];
  let sc =
    Detectors.Properties.strong_completeness trace ~detector:"extracted" ~n
      ~initially_suspected:true
  in
  check "survivors suspect the crashed watcher" true (holds sc)

let test_simultaneous_crash_and_mistake () =
  (* A crash in the middle of an injected mistake window about the same
     process: completeness must still win. *)
  let windows = [ (0, [ { Detectors.Injected.from_ = 1800; until = 2600; target = 1 } ]) ] in
  let r = wf_extraction ~seed:1004L ~windows ~n:2 () in
  Engine.schedule_crash r.engine 1 ~at:2200;
  Engine.run r.engine ~until:20000;
  let pair = Reduction.Extract.pair r.extract ~watcher:0 ~subject:1 in
  check "permanent suspicion" true (pair.Reduction.Pair.suspected ())

let () =
  Alcotest.run "reduction"
    [
      ( "theorem-2 accuracy",
        [
          Alcotest.test_case "pairwise" `Quick test_accuracy_pairwise;
          Alcotest.test_case "full system n=3" `Quick test_accuracy_full_system;
          Alcotest.test_case "mistakes are finite" `Quick test_accuracy_mistakes_are_finite;
        ] );
      ( "theorem-1 completeness",
        [
          Alcotest.test_case "crash subject" `Quick test_completeness_crash_subject;
          Alcotest.test_case "full system n=3" `Quick test_completeness_full_system;
          Alcotest.test_case "crash at start" `Quick
            test_completeness_crash_before_start_of_monitoring;
        ] );
      ( "lemmas",
        [
          Alcotest.test_case "correct run" `Quick test_lemmas_correct_run;
          Alcotest.test_case "with crash" `Quick test_lemmas_with_crash;
          Alcotest.test_case "bursty adversary" `Quick test_lemmas_under_bursty_adversary;
          Alcotest.test_case "seed sweep" `Slow test_lemmas_seed_sweep;
        ] );
      ( "black-box robustness",
        [
          Alcotest.test_case "tolerates underlying mistakes" `Quick
            test_reduction_tolerates_underlying_mistakes;
        ] );
      ( "section-3 vulnerability",
        [
          Alcotest.test_case "[8] violates accuracy" `Quick test_flawed_cm_violates_accuracy;
          Alcotest.test_case "subject correct, box spec void" `Quick
            test_flawed_cm_subject_is_correct_and_eating;
          Alcotest.test_case "our reduction closes the hole" `Quick
            test_our_reduction_closes_the_hole;
        ] );
      ( "soak-and-storm",
        [
          Alcotest.test_case "100k-tick soak" `Slow test_soak_long_horizon;
          Alcotest.test_case "crash storm (n-1 of n)" `Quick test_crash_storm;
          Alcotest.test_case "watcher crash does not poison others" `Quick
            test_watcher_crash_does_not_poison_others;
          Alcotest.test_case "crash inside mistake window" `Quick
            test_simultaneous_crash_and_mistake;
        ] );
      ( "section-9 trusting extraction",
        [
          Alcotest.test_case "trusting accuracy" `Quick test_t_extraction_trusting_accuracy;
          Alcotest.test_case "completeness" `Quick test_t_extraction_completeness;
          Alcotest.test_case "seed sweep" `Slow test_t_extraction_seed_sweep;
        ] );
    ]
