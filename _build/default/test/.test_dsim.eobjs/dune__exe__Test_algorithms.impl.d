test/test_algorithms.ml: Adversary Alcotest Array Dsim Engine List Mock_dining Printf Reduction Trace Types
