test/test_agreement.ml: Adversary Agreement Alcotest Core Detectors Dsim Engine Fun Int64 List Option Printf Reduction Trace
