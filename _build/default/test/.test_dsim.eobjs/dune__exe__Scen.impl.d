test/scen.ml: Adversary Array Detectors Dining Dsim Engine Fun Graphs List
