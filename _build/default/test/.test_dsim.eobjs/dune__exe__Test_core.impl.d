test/test_core.ml: Alcotest Core Detectors Dsim Engine Int64 List Reduction String Trace Types
