test/test_reduction.ml: Adversary Alcotest Array Detectors Dining Dsim Engine Fun Int64 List Reduction String Trace Types
