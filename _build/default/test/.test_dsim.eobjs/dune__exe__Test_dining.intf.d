test/test_dining.mli:
