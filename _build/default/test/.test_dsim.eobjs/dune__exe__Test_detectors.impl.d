test/test_detectors.ml: Adversary Alcotest Array Detectors Dsim Engine Fun List Printf Reduction Trace Types
