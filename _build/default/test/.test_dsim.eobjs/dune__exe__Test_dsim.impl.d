test/test_dsim.ml: Adversary Alcotest Array Component Context Dsim Engine Fun Graphs List Msg Prng String Trace Types Vec
