test/mock_dining.ml: Dining Dsim Engine Types
