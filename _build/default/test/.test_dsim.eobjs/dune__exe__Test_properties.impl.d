test/test_properties.ml: Adversary Agreement Alcotest Array Core Ctm Detectors Dining Dsim Engine Fun Graphs Int64 List Printf Prng QCheck2 QCheck_alcotest Reduction String Trace Types Wsn
