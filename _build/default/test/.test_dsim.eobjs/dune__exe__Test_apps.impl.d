test/test_apps.ml: Adversary Alcotest Array Ctm Detectors Dining Dsim Engine Fun Graphs List Printf Wsn
