test/test_dining.ml: Adversary Alcotest Array Core Detectors Dining Dsim Engine Fun Graphs Int64 List Printf Prng Scen String Trace Types
