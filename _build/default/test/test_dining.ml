(* Tests for the dining algorithms: hygienic baseline and WF-◇WX. *)

open Dsim

let check = Alcotest.(check bool)
let holds (v : Detectors.Properties.verdict) = v.Detectors.Properties.holds

(* ------------------------------------------------------------------ *)
(* Hygienic baseline *)

let hygienic_run ?(seed = 3L) ?(horizon = 3000) ~graph () =
  let n = Graphs.Conflict_graph.n graph in
  let engine = Engine.create ~seed ~n ~adversary:(Adversary.async_uniform ()) () in
  for pid = 0 to n - 1 do
    let ctx = Engine.ctx engine pid in
    let comp, handle, _ = Dining.Hygienic.component ctx ~instance:"hyg" ~graph () in
    Engine.register engine pid comp;
    Engine.register engine pid (Dining.Clients.greedy ctx ~handle ())
  done;
  Engine.run engine ~until:horizon;
  engine

let test_hygienic_perpetual_exclusion () =
  let graph = Graphs.Conflict_graph.ring ~n:5 in
  let engine = hygienic_run ~graph () in
  let v =
    Dining.Monitor.perpetual_weak_exclusion (Engine.trace engine) ~instance:"hyg" ~graph
      ~horizon:(Engine.now engine)
  in
  check "no violation ever" true (holds v)

let test_hygienic_everyone_eats () =
  let graph = Graphs.Conflict_graph.ring ~n:5 in
  let engine = hygienic_run ~graph () in
  for pid = 0 to 4 do
    let c = Dining.Monitor.eat_count (Engine.trace engine) ~instance:"hyg" ~pid in
    check (Printf.sprintf "p%d ate many times" pid) true (c > 10)
  done;
  let v =
    Dining.Monitor.wait_freedom (Engine.trace engine) ~instance:"hyg" ~n:5
      ~horizon:(Engine.now engine) ~slack:500
  in
  check "no starvation" true (holds v)

let test_hygienic_starves_after_crash () =
  (* The crash-intolerance baseline: crash a fork holder mid-protocol and a
     hungry neighbor waits forever. *)
  let graph = Graphs.Conflict_graph.pair () in
  let engine = Engine.create ~seed:11L ~n:2 ~adversary:(Adversary.async_uniform ()) () in
  for pid = 0 to 1 do
    let ctx = Engine.ctx engine pid in
    let comp, handle, _ = Dining.Hygienic.component ctx ~instance:"hyg" ~graph () in
    Engine.register engine pid comp;
    if pid = 1 then
      (* p1 grabs the critical section and crashes while eating. *)
      Engine.register engine pid (Dining.Clients.glutton ctx ~handle ())
    else Engine.register engine pid (Dining.Clients.greedy ctx ~handle ())
  done;
  Engine.schedule_crash engine 1 ~at:200;
  Engine.run engine ~until:5000;
  let v =
    Dining.Monitor.wait_freedom (Engine.trace engine) ~instance:"hyg" ~n:2 ~horizon:5000
      ~slack:1000
  in
  check "hygienic starves p0" false (holds v)

(* ------------------------------------------------------------------ *)
(* WF-◇WX *)

let test_wf_ewx_wait_freedom_with_crashes () =
  let graph = Graphs.Conflict_graph.ring ~n:6 in
  let run = Scen.wf_dining ~seed:21L ~graph () in
  Engine.schedule_crash run.Scen.engine 2 ~at:700;
  Engine.schedule_crash run.Scen.engine 5 ~at:1500;
  Engine.run run.Scen.engine ~until:12000;
  let tr = Engine.trace run.Scen.engine in
  let v = Dining.Monitor.wait_freedom tr ~instance:"dx" ~n:6 ~horizon:12000 ~slack:3000 in
  check "correct diners never starve" true (holds v);
  for pid = 0 to 5 do
    if pid <> 2 && pid <> 5 then begin
      let c = Dining.Monitor.eat_count tr ~instance:"dx" ~pid in
      check (Printf.sprintf "p%d keeps eating after crashes" pid) true (c > 20)
    end
  done

let test_wf_ewx_eventual_exclusion () =
  let graph = Graphs.Conflict_graph.ring ~n:5 in
  let run = Scen.wf_dining ~seed:22L ~adversary:(Adversary.partial_sync ~gst:400 ()) ~graph () in
  Engine.schedule_crash run.Scen.engine 3 ~at:900;
  Engine.run run.Scen.engine ~until:15000;
  let tr = Engine.trace run.Scen.engine in
  (* All violations (if any) happen in the unstable prefix. *)
  let v =
    Dining.Monitor.eventual_weak_exclusion tr ~instance:"dx" ~graph ~horizon:15000
      ~suffix_from:5000
  in
  check "exclusive suffix" true (holds v)

let test_wf_ewx_no_override_is_hygienic () =
  (* With the override disabled, the crash of a diner that holds the fork
     starves its hungry neighbor forever: wait-freedom is lost, which is
     exactly why ◇P is needed. The fork holder is pinned deterministically:
     p1 starts with the fork, eats on it and never exits, then crashes. *)
  let graph = Graphs.Conflict_graph.pair () in
  let engine = Engine.create ~seed:23L ~n:2 ~adversary:(Adversary.partial_sync ()) () in
  for pid = 0 to 1 do
    let ctx = Engine.ctx engine pid in
    let fd, oracle = Detectors.Heartbeat.component ctx ~peers:[ 0; 1 ] () in
    Engine.register engine pid fd;
    let comp, handle, _ =
      Dining.Wf_ewx.component ctx ~instance:"dx" ~graph
        ~suspects:(fun () -> oracle.Detectors.Oracle.suspects ())
        ~config:{ Dining.Wf_ewx.suspicion_override = false }
        ()
    in
    Engine.register engine pid comp;
    if pid = 1 then Engine.register engine pid (Dining.Clients.glutton ctx ~handle ())
    else Engine.register engine pid (Dining.Clients.greedy ctx ~handle ())
  done;
  Engine.schedule_crash engine 1 ~at:300;
  Engine.run engine ~until:8000;
  let eats_p0 = Dining.Monitor.eat_count (Engine.trace engine) ~instance:"dx" ~pid:0 in
  check "p0 starves behind the dead fork holder" true (eats_p0 = 0);
  (* The identical scenario with the override on recovers wait-freedom. *)
  let run = Scen.wf_dining ~seed:23L ~graph ~suspicion_override:true ~greedy:false () in
  (let ctx0 = Engine.ctx run.Scen.engine 0 and ctx1 = Engine.ctx run.Scen.engine 1 in
   Engine.register run.Scen.engine 0 (Dining.Clients.greedy ctx0 ~handle:run.Scen.handles.(0) ());
   Engine.register run.Scen.engine 1 (Dining.Clients.glutton ctx1 ~handle:run.Scen.handles.(1) ()));
  Engine.schedule_crash run.Scen.engine 1 ~at:300;
  Engine.run run.Scen.engine ~until:8000;
  let eats =
    Dining.Monitor.eat_count (Engine.trace run.Scen.engine) ~instance:"dx" ~pid:0
  in
  check "override restores progress" true (eats > 20)

let test_wf_ewx_fork_invariants () =
  (* At most one fork per edge exists among the two endpoints (it may be in
     flight); dirty forks only at holders. Checked online every tick. *)
  let graph = Graphs.Conflict_graph.ring ~n:4 in
  let run = Scen.wf_dining ~seed:25L ~graph () in
  let violations = ref 0 in
  Engine.on_tick run.Scen.engine (fun () ->
      List.iter
        (fun (p, q) ->
          let dp = run.Scen.debugs.(p) and dq = run.Scen.debugs.(q) in
          if dp.Dining.Wf_ewx.has_fork q && dq.Dining.Wf_ewx.has_fork p then incr violations)
        (Graphs.Conflict_graph.edges graph));
  Engine.run run.Scen.engine ~until:5000;
  Alcotest.(check int) "never two forks on one edge" 0 !violations

let test_wf_ewx_virtual_eating_only_under_suspicion () =
  let graph = Graphs.Conflict_graph.pair () in
  let run = Scen.wf_dining ~seed:26L ~graph () in
  Engine.schedule_crash run.Scen.engine 1 ~at:400;
  let saw_virtual = ref false in
  Engine.on_tick run.Scen.engine (fun () ->
      if run.Scen.debugs.(0).Dining.Wf_ewx.eating_virtually () then begin
        saw_virtual := true;
        (* A virtual eater must currently suspect the fork owner. *)
        if not (run.Scen.oracles.(0).Detectors.Oracle.suspected 1) then
          Alcotest.fail "virtual eating without suspicion"
      end);
  Engine.run run.Scen.engine ~until:6000;
  check "p0 eventually ate virtually past the crashed p1" true !saw_virtual

let test_wf_ewx_clique_and_star () =
  List.iter
    (fun (name, graph) ->
      let run = Scen.wf_dining ~seed:27L ~graph () in
      let n = Graphs.Conflict_graph.n graph in
      Engine.schedule_crash run.Scen.engine (n - 1) ~at:800;
      Engine.run run.Scen.engine ~until:15000;
      let tr = Engine.trace run.Scen.engine in
      let v = Dining.Monitor.wait_freedom tr ~instance:"dx" ~n ~horizon:15000 ~slack:4000 in
      check (name ^ ": wait-free") true (holds v);
      let x =
        Dining.Monitor.eventual_weak_exclusion tr ~instance:"dx" ~graph ~horizon:15000
          ~suffix_from:6000
      in
      check (name ^ ": eventually exclusive") true (holds x))
    [
      ("clique4", Graphs.Conflict_graph.clique ~n:4);
      ("star5", Graphs.Conflict_graph.star ~n:5);
    ]

(* ------------------------------------------------------------------ *)
(* Eventually k-fair dining *)

let kfair_run ?(seed = 31L) ?(adversary = Adversary.partial_sync ~gst:400 ()) ?(horizon = 12000)
    ?(crash = []) ~graph () =
  let n = Graphs.Conflict_graph.n graph in
  let engine = Engine.create ~seed ~n ~adversary () in
  for pid = 0 to n - 1 do
    let ctx = Engine.ctx engine pid in
    let fd, oracle = Detectors.Heartbeat.component ctx ~peers:(List.init n Fun.id) () in
    Engine.register engine pid fd;
    let comp, handle, _ =
      Dining.Kfair.component ctx ~instance:"kf" ~graph
        ~suspects:(fun () -> oracle.Detectors.Oracle.suspects ())
        ()
    in
    Engine.register engine pid comp;
    Engine.register engine pid (Dining.Clients.greedy ctx ~handle ())
  done;
  List.iter (fun (pid, at) -> Engine.schedule_crash engine pid ~at) crash;
  Engine.run engine ~until:horizon;
  engine

let test_kfair_wait_freedom () =
  let graph = Graphs.Conflict_graph.ring ~n:5 in
  let engine = kfair_run ~graph ~crash:[ (4, 900) ] () in
  let tr = Engine.trace engine in
  let v = Dining.Monitor.wait_freedom tr ~instance:"kf" ~n:5 ~horizon:12000 ~slack:3000 in
  check "wait-free" true (holds v)

let test_kfair_eventual_exclusion () =
  let graph = Graphs.Conflict_graph.clique ~n:4 in
  let engine = kfair_run ~seed:32L ~graph ~crash:[ (2, 700) ] () in
  let tr = Engine.trace engine in
  let v =
    Dining.Monitor.eventual_weak_exclusion tr ~instance:"kf" ~graph ~horizon:12000
      ~suffix_from:5000
  in
  check "exclusive suffix" true (holds v)

let test_kfair_stale_request_regression () =
  (* Regression: a storm-delayed request from an old session used to
     overwrite the neighbor's record of the current one; the stale grant was
     dropped by the requester and its real request lost — the whole graph
     deadlocked behind the priority minimum (sweep find, bursty adversary,
     dense random graphs). Timestamps are now tracked monotonically. *)
  List.iter
    (fun seed ->
      let graph = Graphs.Conflict_graph.random ~n:7 ~p:0.5 ~rng:(Prng.create seed) in
      let engine =
        kfair_run ~seed ~adversary:(Adversary.bursty ~gst:800 ()) ~graph ~horizon:14000
          ~crash:
            [ (6, 600 + Int64.to_int (Int64.rem seed 1500L)); (1, 2200) ]
          ()
      in
      let v =
        Dining.Monitor.wait_freedom (Engine.trace engine) ~instance:"kf" ~n:7 ~horizon:14000
          ~slack:4500
      in
      if not (holds v) then
        Alcotest.failf "seed %Ld: %s" seed (String.concat "; " v.Detectors.Properties.details))
    [ 10932L; 12665L; 16131L; 21330L ]

let test_kfair_bounded_overtaking () =
  let graph = Graphs.Conflict_graph.ring ~n:5 in
  let engine = kfair_run ~seed:33L ~graph () in
  let tr = Engine.trace engine in
  let k = Dining.Monitor.max_overtaking tr ~instance:"kf" ~graph ~after:5000 ~horizon:12000 in
  check "suffix overtaking <= 2" true (k <= 2)

(* ------------------------------------------------------------------ *)
(* FTME: perpetual exclusion on a trusting detector *)

let ftme_run ?(seed = 41L) ?(adversary = Adversary.async_uniform ()) ?(horizon = 12000)
    ?(crash = []) ?(eat_ticks = 3) ?oracle_windows ~n () =
  let engine = Engine.create ~seed ~n ~adversary () in
  for pid = 0 to n - 1 do
    let ctx = Engine.ctx engine pid in
    let suspects =
      match oracle_windows with
      | None ->
          let comp, oracle =
            Detectors.Ground_truth.trusting ctx ~detection_delay:25 ~peers:(List.init n Fun.id)
              ()
          in
          Engine.register engine pid comp;
          fun () -> oracle.Detectors.Oracle.suspects ()
      | Some windows ->
          (* Ablation: an eventually-accurate oracle that errs early. *)
          let comp, base =
            Detectors.Ground_truth.trusting ctx ~detection_delay:25 ~peers:(List.init n Fun.id)
              ()
          in
          Engine.register engine pid comp;
          let wins = if pid = n - 1 then windows else [] in
          let icomp, wrapped = Detectors.Injected.wrap ctx ~base ~windows:wins in
          Engine.register engine pid icomp;
          fun () -> wrapped.Detectors.Oracle.suspects ()
    in
    let comp, handle, _debug =
      Dining.Ftme.component ctx ~instance:"fx" ~members:(List.init n Fun.id) ~suspects ()
    in
    Engine.register engine pid comp;
    Engine.register engine pid (Dining.Clients.greedy ctx ~eat_ticks ~handle ())
  done;
  List.iter (fun (pid, at) -> Engine.schedule_crash engine pid ~at) crash;
  Engine.run engine ~until:horizon;
  engine

let test_ftme_perpetual_exclusion_no_crash () =
  let engine = ftme_run ~n:4 () in
  let graph = Graphs.Conflict_graph.clique ~n:4 in
  let v =
    Dining.Monitor.perpetual_weak_exclusion (Engine.trace engine) ~instance:"fx" ~graph
      ~horizon:12000
  in
  check "never a violation" true (holds v)

let test_ftme_survives_server_crashes () =
  (* Crash the first two servers in sequence; exclusion stays perpetual and
     the survivors keep eating. *)
  let engine = ftme_run ~seed:42L ~n:5 ~crash:[ (0, 1500); (1, 4000) ] () in
  let graph = Graphs.Conflict_graph.clique ~n:5 in
  let tr = Engine.trace engine in
  let v = Dining.Monitor.perpetual_weak_exclusion tr ~instance:"fx" ~graph ~horizon:12000 in
  check "perpetual exclusion across fail-overs" true (holds v);
  let w = Dining.Monitor.wait_freedom tr ~instance:"fx" ~n:5 ~horizon:12000 ~slack:3000 in
  check "wait-free across fail-overs" true (holds w);
  for pid = 2 to 4 do
    check
      (Printf.sprintf "p%d kept eating" pid)
      true
      (Dining.Monitor.eat_count tr ~instance:"fx" ~pid > 15)
  done

let test_ftme_crash_of_cs_holder () =
  (* The grantee dies inside its critical section; the server reaps the
     grant and the system moves on. *)
  let engine = ftme_run ~seed:43L ~n:4 ~eat_ticks:40 ~crash:[ (2, 800) ] () in
  let graph = Graphs.Conflict_graph.clique ~n:4 in
  let tr = Engine.trace engine in
  let v = Dining.Monitor.perpetual_weak_exclusion tr ~instance:"fx" ~graph ~horizon:12000 in
  check "perpetual exclusion" true (holds v);
  let w = Dining.Monitor.wait_freedom tr ~instance:"fx" ~n:4 ~horizon:12000 ~slack:3000 in
  check "wait-free" true (holds w)

let test_ftme_stale_message_regressions () =
  (* Regressions for two failover races found by grid sweeps under the
     bursty adversary: (seed 1777) a storm-delayed release of an earlier
     epoch both satisfied the new server's recovery round and cleared its
     fresh grant — double grant, exclusion violated; (seed 12655) a status
     reply installing an old grant arrived after that grant's own release —
     the server waited forever. Fixed by unique grant ids carried through
     grant/status/release and a released-ids ledger. *)
  List.iter
    (fun seed ->
      let engine =
        ftme_run ~seed ~adversary:(Adversary.bursty ~gst:800 ()) ~n:4 ~crash:[ (0, 300) ]
          ~horizon:12000 ()
      in
      let graph = Graphs.Conflict_graph.clique ~n:4 in
      let trace = Engine.trace engine in
      let wx = Dining.Monitor.perpetual_weak_exclusion trace ~instance:"fx" ~graph ~horizon:12000 in
      let wf = Dining.Monitor.wait_freedom trace ~instance:"fx" ~n:4 ~horizon:12000 ~slack:4000 in
      if not (holds wx) then Alcotest.failf "seed %Ld: exclusion violated" seed;
      if not (holds wf) then Alcotest.failf "seed %Ld: starvation" seed)
    [ 1777L; 12655L; 5000L; 9662L ]

let test_ftme_needs_trusting_accuracy () =
  (* Ablation: wrongful suspicion of the live server lets a usurper take
     over and double-grant — perpetual weak exclusion breaks. This is the
     empirical face of "◇P is insufficient for wait-free WX" [11]. *)
  let windows =
    [
      { Detectors.Injected.from_ = 300; until = 2000; target = 0 };
      { Detectors.Injected.from_ = 300; until = 2000; target = 1 };
      { Detectors.Injected.from_ = 300; until = 2000; target = 2 };
    ]
  in
  let engine = ftme_run ~seed:44L ~n:4 ~eat_ticks:400 ~oracle_windows:windows () in
  let graph = Graphs.Conflict_graph.clique ~n:4 in
  let v =
    Dining.Monitor.perpetual_weak_exclusion (Engine.trace engine) ~instance:"fx" ~graph
      ~horizon:12000
  in
  check "exclusion violated under false suspicion" false (holds v)

(* ------------------------------------------------------------------ *)
(* FL1: perpetual exclusion with crash locality 1 *)

let fl1_run ?(seed = 5L) ?(with_detector = true) ?(crash = []) ?(glutton = []) ~graph
    ~horizon () =
  let n = Graphs.Conflict_graph.n graph in
  let engine = Engine.create ~seed ~n ~adversary:(Adversary.partial_sync ~gst:300 ()) () in
  let suspects = Core.Scenario.evp_suspects engine ~n ~windows:[] in
  for pid = 0 to n - 1 do
    let ctx = Engine.ctx engine pid in
    let sus = if with_detector then suspects pid else fun () -> Types.Pidset.empty in
    let comp, handle = Dining.Fl1.component ctx ~instance:"fl" ~graph ~suspects:sus () in
    Engine.register engine pid comp;
    if List.mem pid glutton then Engine.register engine pid (Dining.Clients.glutton ctx ~handle ())
    else Engine.register engine pid (Dining.Clients.greedy ctx ~handle ())
  done;
  List.iter (fun (pid, at) -> Engine.schedule_crash engine pid ~at) crash;
  Engine.run engine ~until:horizon;
  engine

let test_fl1_perpetual_exclusion () =
  let graph = Graphs.Conflict_graph.ring ~n:5 in
  let engine = fl1_run ~graph ~horizon:10000 ~crash:[ (2, 800) ] () in
  let v =
    Dining.Monitor.perpetual_weak_exclusion (Engine.trace engine) ~instance:"fl" ~graph
      ~horizon:10000
  in
  check "never a violation, even pre-convergence" true (holds v)

let test_fl1_locality_bounded () =
  let graph = Graphs.Conflict_graph.path ~n:6 in
  let engine = fl1_run ~graph ~horizon:12000 ~crash:[ (0, 1000) ] () in
  let loc =
    Dining.Monitor.failure_locality (Engine.trace engine) ~instance:"fl" ~graph ~horizon:12000
      ~slack:4000
  in
  check "locality <= 1" true (match loc with Some l -> l <= 1 | None -> false);
  (* distance-2+ diners keep eating at full speed *)
  for pid = 2 to 5 do
    check
      (Printf.sprintf "p%d unaffected" pid)
      true
      (Dining.Monitor.eat_count (Engine.trace engine) ~instance:"fl" ~pid > 100)
  done

let test_fl1_no_crash_no_starvation () =
  let graph = Graphs.Conflict_graph.ring ~n:5 in
  let engine = fl1_run ~seed:6L ~graph ~horizon:10000 () in
  let loc =
    Dining.Monitor.failure_locality (Engine.trace engine) ~instance:"fl" ~graph ~horizon:10000
      ~slack:3000
  in
  Alcotest.(check (option int)) "locality 0" (Some 0) loc

let test_fl1_baseline_chain_starvation () =
  (* Without a detector the starvation chain is unbounded: pin the crashed
     process inside its critical section (so it certainly dies holding the
     fork) and watch the whole path behind it stall. *)
  let graph = Graphs.Conflict_graph.path ~n:6 in
  let engine =
    fl1_run ~with_detector:false ~graph ~horizon:12000 ~crash:[ (0, 1000) ] ~glutton:[ 0 ] ()
  in
  let starved =
    Dining.Monitor.starved (Engine.trace engine) ~instance:"fl" ~n:6 ~horizon:12000 ~slack:4000
  in
  check "everyone behind the crash starves" true (List.length starved >= 4);
  (* ... while the detector-equipped FL1 run with the same pinned crash
     confines the damage to the neighbor. *)
  let engine =
    fl1_run ~with_detector:true ~graph ~horizon:12000 ~crash:[ (0, 1000) ] ~glutton:[ 0 ] ()
  in
  let loc =
    Dining.Monitor.failure_locality (Engine.trace engine) ~instance:"fl" ~graph ~horizon:12000
      ~slack:4000
  in
  check "fl1 confines the same crash to locality 1" true
    (match loc with Some l -> l <= 1 | None -> false)

(* ------------------------------------------------------------------ *)
(* Regressions and service-interface behaviour *)

let test_wf_ewx_random_graph_regression () =
  (* Regression: under dirty/clean hygiene these dense random graphs
     deadlocked after the oracle's mistake-prone prefix (virtual meals
     corrupted the precedence DAG) or livelocked when one-shot requests
     were consumed by raced-back yields. *)
  List.iter
    (fun s ->
      let seed = Int64.of_int (s * 1111) in
      let graph = Graphs.Conflict_graph.random ~n:6 ~p:0.5 ~rng:(Prng.create seed) in
      let run =
        Core.Scenario.wf_dining ~seed ~adversary:(Adversary.partial_sync ~gst:300 ()) ~graph ()
      in
      Engine.run run.Core.Scenario.engine ~until:10000;
      let trace = Engine.trace run.Core.Scenario.engine in
      let wf = Dining.Monitor.wait_freedom trace ~instance:"dx" ~n:6 ~horizon:10000 ~slack:3000 in
      if not (holds wf) then
        Alcotest.failf "seed %Ld: %s" seed
          (String.concat "; " wf.Detectors.Properties.details))
    [ 1; 2; 3; 4; 5 ]

let test_fairness_index () =
  let tr = Trace.create () in
  let eat pid at =
    Trace.append tr ~at (Trace.Transition { instance = "i"; pid; from_ = Types.Hungry; to_ = Types.Eating })
  in
  eat 0 1;
  eat 0 2;
  eat 1 3;
  eat 1 4;
  Alcotest.(check (float 1e-9)) "even meals" 1.0
    (Dining.Monitor.fairness_index tr ~instance:"i" ~pids:[ 0; 1 ]);
  let skew = Dining.Monitor.fairness_index tr ~instance:"i" ~pids:[ 0; 1; 2 ] in
  check "skew below 1" true (skew < 1.0);
  Alcotest.(check (float 1e-9)) "no meals at all" 1.0
    (Dining.Monitor.fairness_index tr ~instance:"i" ~pids:[ 7; 8 ])

let test_cell_misuse_raises () =
  let engine = Engine.create ~seed:1L ~n:1 ~adversary:(Adversary.synchronous ()) () in
  let ctx = Engine.ctx engine 0 in
  let _, handle = Dining.Spec.Cell.handle (Dining.Spec.Cell.create ctx ~instance:"i") in
  (try
     handle.Dining.Spec.exit_eating ();
     Alcotest.fail "exit while thinking accepted"
   with Invalid_argument _ -> ());
  handle.Dining.Spec.hungry ();
  (try
     handle.Dining.Spec.hungry ();
     Alcotest.fail "double hungry accepted"
   with Invalid_argument _ -> ())

let test_clients_n_sessions () =
  let graph = Graphs.Conflict_graph.pair () in
  let engine = Engine.create ~seed:9L ~n:2 ~adversary:(Adversary.synchronous ()) () in
  let counters =
    Array.init 2 (fun pid ->
        let ctx = Engine.ctx engine pid in
        let comp, handle, _ = Dining.Hygienic.component ctx ~instance:"hyg" ~graph () in
        Engine.register engine pid comp;
        let client, count = Dining.Clients.n_sessions ctx ~handle ~sessions:5 () in
        Engine.register engine pid client;
        count)
  in
  Engine.run engine ~until:4000;
  Array.iteri
    (fun pid count ->
      Alcotest.(check int) (Printf.sprintf "p%d exactly five meals" pid) 5 (count ()))
    counters

(* ------------------------------------------------------------------ *)
(* Monitors on synthetic traces *)

let test_monitor_detects_violation () =
  let tr = Trace.create () in
  let trans pid at from_ to_ =
    Trace.append tr ~at (Trace.Transition { instance = "i"; pid; from_; to_ })
  in
  trans 0 1 Types.Thinking Types.Hungry;
  trans 0 2 Types.Hungry Types.Eating;
  trans 1 3 Types.Thinking Types.Hungry;
  trans 1 4 Types.Hungry Types.Eating;
  trans 0 10 Types.Eating Types.Exiting;
  trans 1 12 Types.Eating Types.Exiting;
  let graph = Graphs.Conflict_graph.pair () in
  let vs = Dining.Monitor.exclusion_violations tr ~instance:"i" ~graph ~horizon:20 in
  Alcotest.(check int) "one overlap" 1 (List.length vs);
  let v = List.hd vs in
  Alcotest.(check int) "overlap start" 4 v.Dining.Monitor.at

let test_monitor_crash_clips_liveness () =
  (* A diner that crashes while eating stops counting as a live eater. *)
  let tr = Trace.create () in
  let trans pid at from_ to_ =
    Trace.append tr ~at (Trace.Transition { instance = "i"; pid; from_; to_ })
  in
  trans 0 1 Types.Thinking Types.Hungry;
  trans 0 2 Types.Hungry Types.Eating;
  Trace.append tr ~at:5 (Trace.Crash { pid = 0 });
  trans 1 7 Types.Thinking Types.Hungry;
  trans 1 8 Types.Hungry Types.Eating;
  let graph = Graphs.Conflict_graph.pair () in
  let vs = Dining.Monitor.exclusion_violations tr ~instance:"i" ~graph ~horizon:20 in
  Alcotest.(check int) "no live overlap" 0 (List.length vs)

let test_monitor_exiting_finite () =
  let tr = Trace.create () in
  let trans pid at from_ to_ =
    Trace.append tr ~at (Trace.Transition { instance = "i"; pid; from_; to_ })
  in
  trans 0 1 Types.Thinking Types.Hungry;
  trans 0 2 Types.Hungry Types.Eating;
  trans 0 3 Types.Eating Types.Exiting;
  (* p0 never leaves Exiting *)
  let v = Dining.Monitor.exiting_finite tr ~instance:"i" ~n:1 ~horizon:1000 ~slack:100 in
  check "stuck exiting detected" false v.Detectors.Properties.holds;
  trans 0 10 Types.Exiting Types.Thinking;
  let v = Dining.Monitor.exiting_finite tr ~instance:"i" ~n:1 ~horizon:1000 ~slack:100 in
  check "completed exit accepted" true v.Detectors.Properties.holds

let test_monitor_overtaking () =
  let tr = Trace.create () in
  let trans pid at from_ to_ =
    Trace.append tr ~at (Trace.Transition { instance = "i"; pid; from_; to_ })
  in
  (* p0 hungry the whole time; p1 eats three times meanwhile. *)
  trans 0 1 Types.Thinking Types.Hungry;
  List.iter
    (fun t ->
      trans 1 t Types.Thinking Types.Hungry;
      trans 1 (t + 1) Types.Hungry Types.Eating;
      trans 1 (t + 3) Types.Eating Types.Exiting;
      trans 1 (t + 4) Types.Exiting Types.Thinking)
    [ 2; 10; 20 ];
  trans 0 30 Types.Hungry Types.Eating;
  let graph = Graphs.Conflict_graph.pair () in
  let k = Dining.Monitor.max_overtaking tr ~instance:"i" ~graph ~after:0 ~horizon:40 in
  Alcotest.(check int) "three overtakes" 3 k

let () =
  Alcotest.run "dining"
    [
      ( "hygienic",
        [
          Alcotest.test_case "perpetual exclusion" `Quick test_hygienic_perpetual_exclusion;
          Alcotest.test_case "everyone eats" `Quick test_hygienic_everyone_eats;
          Alcotest.test_case "starves after crash (baseline)" `Quick
            test_hygienic_starves_after_crash;
        ] );
      ( "wf-ewx",
        [
          Alcotest.test_case "wait-freedom with crashes" `Quick
            test_wf_ewx_wait_freedom_with_crashes;
          Alcotest.test_case "eventual exclusion" `Quick test_wf_ewx_eventual_exclusion;
          Alcotest.test_case "no override = no progress past crash" `Quick
            test_wf_ewx_no_override_is_hygienic;
          Alcotest.test_case "fork uniqueness invariant" `Quick test_wf_ewx_fork_invariants;
          Alcotest.test_case "virtual eating only under suspicion" `Quick
            test_wf_ewx_virtual_eating_only_under_suspicion;
          Alcotest.test_case "clique and star topologies" `Quick test_wf_ewx_clique_and_star;
        ] );
      ( "kfair",
        [
          Alcotest.test_case "wait-freedom" `Quick test_kfair_wait_freedom;
          Alcotest.test_case "eventual exclusion" `Quick test_kfair_eventual_exclusion;
          Alcotest.test_case "bounded suffix overtaking" `Quick test_kfair_bounded_overtaking;
          Alcotest.test_case "stale-request deadlock regression" `Quick
            test_kfair_stale_request_regression;
        ] );
      ( "ftme",
        [
          Alcotest.test_case "perpetual exclusion" `Quick test_ftme_perpetual_exclusion_no_crash;
          Alcotest.test_case "survives server crashes" `Quick test_ftme_survives_server_crashes;
          Alcotest.test_case "crash of CS holder" `Quick test_ftme_crash_of_cs_holder;
          Alcotest.test_case "needs trusting accuracy (ablation)" `Quick
            test_ftme_needs_trusting_accuracy;
          Alcotest.test_case "stale-message failover regressions" `Quick
            test_ftme_stale_message_regressions;
        ] );
      ( "fl1",
        [
          Alcotest.test_case "perpetual exclusion" `Quick test_fl1_perpetual_exclusion;
          Alcotest.test_case "locality bounded by 1" `Quick test_fl1_locality_bounded;
          Alcotest.test_case "no crash, no starvation" `Quick test_fl1_no_crash_no_starvation;
          Alcotest.test_case "baseline chain starvation" `Quick
            test_fl1_baseline_chain_starvation;
        ] );
      ( "regressions-and-services",
        [
          Alcotest.test_case "random graph deadlock regression" `Quick
            test_wf_ewx_random_graph_regression;
          Alcotest.test_case "fairness index" `Quick test_fairness_index;
          Alcotest.test_case "cell misuse raises" `Quick test_cell_misuse_raises;
          Alcotest.test_case "n_sessions client" `Quick test_clients_n_sessions;
        ] );
      ( "monitors",
        [
          Alcotest.test_case "detects violations" `Quick test_monitor_detects_violation;
          Alcotest.test_case "crash clips liveness" `Quick test_monitor_crash_clips_liveness;
          Alcotest.test_case "overtaking count" `Quick test_monitor_overtaking;
          Alcotest.test_case "exiting finite" `Quick test_monitor_exiting_finite;
        ] );
    ]
