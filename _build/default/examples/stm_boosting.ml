(* Contention management (Sections 2-3 of the paper): a dining-backed
   contention manager boosts an obstruction-free transactional object from
   "commits only in isolation" to wait-free progress for every client.

     dune exec examples/stm_boosting.exe *)

open Dsim

let run ~with_cm ~horizon =
  let clients = 4 in
  let n = clients + 1 in
  let engine = Engine.create ~seed:77L ~n ~adversary:(Adversary.partial_sync ~gst:400 ()) () in
  let store_comp, _ = Ctm.Store.component (Engine.ctx engine 0) () in
  Engine.register engine 0 store_comp;
  let client_pids = List.init clients (fun i -> i + 1) in
  let graph =
    Graphs.Conflict_graph.of_edges ~n
      (List.concat_map
         (fun a -> List.filter_map (fun b -> if a < b then Some (a, b) else None) client_pids)
         client_pids)
  in
  let stats =
    List.map
      (fun pid ->
        let ctx = Engine.ctx engine pid in
        let cm =
          if with_cm then begin
            let fd, oracle = Detectors.Heartbeat.component ctx ~peers:client_pids () in
            Engine.register engine pid fd;
            let comp, handle, _ =
              Dining.Wf_ewx.component ctx ~instance:"cm" ~graph
                ~suspects:(fun () -> oracle.Detectors.Oracle.suspects ())
                ()
            in
            Engine.register engine pid comp;
            Some handle
          end
          else None
        in
        let comp, st = Ctm.Client.component ctx ~store:0 ?cm ~compute_ticks:6 () in
        Engine.register engine pid comp;
        (pid, st))
      client_pids
  in
  Engine.run engine ~until:horizon;
  stats

let summarize label stats ~horizon =
  Printf.printf "%s\n" label;
  Printf.printf "  %-8s %10s %10s %10s %22s\n" "client" "attempts" "commits" "aborts"
    "commits in last third";
  List.iter
    (fun (pid, (st : Ctm.Client.stats)) ->
      let late =
        List.length
          (List.filter (fun t -> t > horizon - (horizon / 3)) st.Ctm.Client.commit_times)
      in
      Printf.printf "  p%-7d %10d %10d %10d %22d\n" pid st.Ctm.Client.attempts
        st.Ctm.Client.commits st.Ctm.Client.aborts late)
    stats;
  let tot f = List.fold_left (fun acc (_, st) -> acc + f st) 0 stats in
  let commits = tot (fun st -> st.Ctm.Client.commits) in
  let aborts = tot (fun st -> st.Ctm.Client.aborts) in
  Printf.printf "  total: %d commits, %d aborts (%.0f%% success)\n\n" commits aborts
    (100.0 *. float_of_int commits /. float_of_int (max 1 (commits + aborts)))

let () =
  let horizon = 12000 in
  print_endline "=== Obstruction-free transactions, 4 contending clients ===\n";
  summarize "without contention manager (raw obstruction freedom):"
    (run ~with_cm:false ~horizon) ~horizon;
  summarize "with a WF-◇WX contention manager (boosted to wait-free):"
    (run ~with_cm:true ~horizon) ~horizon;
  print_endline
    "The manager may admit overlapping transactions during its finite\n\
     mistake-prone prefix, but the eventually exclusive suffix serialises\n\
     them: every client commits over and over — wait-freedom."
