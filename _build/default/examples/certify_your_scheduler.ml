(* Bring your own scheduler.

   The paper's theorem quantifies over *any* black-box WF-◇WX solution, so
   this repository ships a certification harness: hand it a factory for
   your dining implementation and it checks (a) that the box behaves like
   WF-◇WX — wait-freedom past crashes, an eventually exclusive suffix —
   and (b) that the paper's reduction really extracts a working ◇P from it
   (both theorems + the Lemma 1-12 run-time monitors).

   Below we certify a scheduler written *in this file*: a naive
   token-passing mutex for two diners. It is perpetually exclusive and
   perfectly fair while everyone is alive — and it fails certification,
   because the token dies with its holder: no wait-freedom, hence nothing
   for the reduction's witnesses to eat past, hence no completeness.

     dune exec examples/certify_your_scheduler.exe *)

open Dsim

(* --- a user-written scheduler: circulate one token, eat while holding --- *)

type Msg.t += My_token

let naive_token_scheduler : Core.Certify.candidate =
  {
    name = "naive token ring (user-written, crash-oblivious)";
    prepare =
      (fun _engine ctx ~instance ~participants ->
        let self = ctx.Context.self in
        let p, q = participants in
        let peer = if self = p then q else p in
        let cell, handle = Dining.Spec.Cell.handle (Dining.Spec.Cell.create ctx ~instance) in
        let phase () = Dining.Spec.Cell.phase cell in
        let have_token = ref (self = min p q) in
        let eat =
          Component.action "tok-eat"
            ~guard:(fun () -> Types.phase_equal (phase ()) Types.Hungry && !have_token)
            ~body:(fun () -> Dining.Spec.Cell.set cell Types.Eating)
        in
        let pass_on =
          (* Pass the token whenever we do not need it (thinking) or are
             done with it (exiting). *)
          Component.action "tok-pass"
            ~guard:(fun () ->
              !have_token
              && (Types.phase_equal (phase ()) Types.Thinking
                 || Types.phase_equal (phase ()) Types.Exiting))
            ~body:(fun () ->
              have_token := false;
              ctx.Context.send ~dst:peer ~tag:instance My_token;
              if Types.phase_equal (phase ()) Types.Exiting then
                Dining.Spec.Cell.set cell Types.Thinking)
        in
        let on_receive ~src:_ msg =
          match msg with My_token -> have_token := true | _ -> ()
        in
        (Component.make ~name:instance ~actions:[ eat; pass_on ] ~on_receive (), handle));
  }

let () =
  print_endline "=== certifying a user-written scheduler ===\n";
  let report = Core.Certify.run ~seeds:(Core.Batch.seeds 2) naive_token_scheduler in
  Format.printf "%a@." Core.Certify.pp_report report;
  print_endline
    "As the theory predicts: perpetual exclusion and fairness are easy; it is\n\
     *wait-freedom despite crashes* that encapsulates ◇P — lose it and the\n\
     reduction has nothing to extract. Compare with the shipped boxes:";
  List.iter
    (fun candidate ->
      let r = Core.Certify.run ~seeds:(Core.Batch.seeds 1) candidate in
      Printf.printf "  %-45s %s\n" r.Core.Certify.candidate_name
        (if r.Core.Certify.certified then "CERTIFIED" else "not certified"))
    [ Core.Certify.wf_ewx_candidate; Core.Certify.kfair_candidate; Core.Certify.ftme_candidate ]
