(* Duty-cycle scheduling for wireless sensor networks (Section 2 of the
   paper): on-duty = eating, redundant concurrent duty is a recoverable
   performance mistake, and the WF-◇WX scheduler stretches the network's
   lifetime toward (nodes per area) x (one battery).

     dune exec examples/wsn_duty_cycle.exe *)

open Dsim

let run scheduler ~horizon =
  let config = Wsn.Model.default_config in
  let n = config.Wsn.Model.areas * config.Wsn.Model.nodes_per_area in
  let engine = Engine.create ~seed:99L ~n ~adversary:(Adversary.partial_sync ~gst:300 ()) () in
  let model = Wsn.Model.setup ~engine ~config ~scheduler () in
  Engine.run engine ~until:horizon;
  model

let () =
  let config = Wsn.Model.default_config in
  Printf.printf
    "WSN: %d areas x %d nodes, battery = %d duty ticks, duty sessions of %d\n\n"
    config.Wsn.Model.areas config.Wsn.Model.nodes_per_area config.Wsn.Model.initial_energy
    config.Wsn.Model.duty_ticks;
  let horizon = 9000 in
  let all_on = run Wsn.Model.All_on ~horizon in
  let dining = run Wsn.Model.Dining ~horizon in
  let lifetime m =
    match Wsn.Model.lifetime m with
    | Some t -> string_of_int t
    | None -> Printf.sprintf ">%d" horizon
  in
  Printf.printf "%-28s %12s %12s\n" "" "all-on" "WF-◇WX";
  Printf.printf "%-28s %12s %12s\n" "network lifetime (ticks)" (lifetime all_on)
    (lifetime dining);
  let series m = Wsn.Model.coverage_series m ~sample_every:100 ~horizon in
  let avg l f =
    if l = [] then 0.0
    else float_of_int (List.fold_left (fun acc s -> acc + f s) 0 l) /. float_of_int (List.length l)
  in
  let early_window s = List.filter (fun x -> x.Wsn.Model.at < 600) s in
  Printf.printf "%-28s %12.2f %12.2f\n" "avg areas covered (t<600)"
    (avg (early_window (series all_on)) (fun s -> s.Wsn.Model.covered))
    (avg (early_window (series dining)) (fun s -> s.Wsn.Model.covered));
  Printf.printf "%-28s %12.2f %12.2f\n" "avg redundant areas (t<600)"
    (avg (early_window (series all_on)) (fun s -> s.Wsn.Model.redundant))
    (avg (early_window (series dining)) (fun s -> s.Wsn.Model.redundant));
  print_newline ();
  print_endline "coverage timeline under the WF-◇WX scheduler:";
  print_endline "  (C = areas covered, R = redundant, A = live nodes)";
  List.iter
    (fun s ->
      if s.Wsn.Model.at mod 500 = 0 then
        Printf.printf "  t=%-5d C=%d R=%d A=%d\n" s.Wsn.Model.at s.Wsn.Model.covered
          s.Wsn.Model.redundant s.Wsn.Model.alive)
    (series dining)
