(* The full equivalence loop, end to end.

   The paper motivates ◇P by what it buys: consensus, stable leader
   election, crash-tolerant scheduling. Its theorem says a wait-free ◇WX
   dining service *encapsulates* ◇P. This example composes the two:

     black-box WF-◇WX dining
        --(Algorithms 1 & 2, all ordered pairs)-->  extracted ◇P
        --(Chandra-Toueg rotating coordinator)-->   consensus
        --(lowest trusted process)-->               stable leader election

   Three processes run the reduction among themselves, propose distinct
   values to a consensus instance driven *only* by the extracted detector,
   and p2 crashes mid-run.

     dune exec examples/consensus_via_dining.exe *)

open Dsim

let () =
  let n = 3 in
  let run = Core.Scenario.wf_extraction ~seed:2029L ~with_lemma_monitors:false ~n () in
  let engine = run.Core.Scenario.engine in
  let consensus =
    List.init n (fun pid ->
        let ctx = Engine.ctx engine pid in
        let oracle = Reduction.Extract.oracle run.Core.Scenario.extract pid in
        let c =
          Agreement.Consensus.create ctx ~members:(List.init n Fun.id)
            ~suspects:(fun () -> oracle.Detectors.Oracle.suspects ())
            ()
        in
        Engine.register engine pid c.Agreement.Consensus.component;
        c.Agreement.Consensus.propose (100 + pid);
        let l =
          Agreement.Leader.create ctx ~members:(List.init n Fun.id)
            ~suspects:(fun () -> oracle.Detectors.Oracle.suspects ())
            ()
        in
        Engine.register engine pid l.Agreement.Leader.component;
        (c, l))
  in
  Engine.schedule_crash engine 2 ~at:3000;
  Engine.run engine ~until:30000;
  print_endline "=== consensus and leader election over the EXTRACTED detector ===\n";
  Printf.printf "inputs: p0=100 p1=101 p2=102; p2 crashes at t=3000\n\n";
  List.iteri
    (fun pid (c, l) ->
      if Engine.is_live engine pid then
        Printf.printf "p%d: decided=%s (round %d), leader=p%d\n" pid
          (match c.Agreement.Consensus.decided () with
          | Some v -> string_of_int v
          | None -> "-")
          (c.Agreement.Consensus.round ())
          (l.Agreement.Leader.leader ()))
    consensus;
  let decisions = Agreement.Consensus.decisions (Engine.trace engine) in
  Printf.printf "\ndecision log: %s\n"
    (String.concat ", "
       (List.map (fun (p, t, v) -> Printf.sprintf "p%d@t=%d→%d" p t v) decisions));
  Format.printf "agreement: %a@." Detectors.Properties.pp_verdict
    (Agreement.Consensus.agreement (Engine.trace engine));
  print_endline
    "\nEvery bit of synchrony consensus needed came through the dining black box:\n\
     the only 'failure information' the consensus layer ever saw was the output\n\
     of the paper's reduction."
