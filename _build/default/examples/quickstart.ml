(* Quickstart: extract ◇P from a black-box wait-free ◇WX dining solution.

   Two processes run the full reduction: p0 monitors p1 through two dining
   instances (Algorithms 1 and 2 of the paper). We watch the extracted
   failure detector converge on a correct neighbor, then re-run with a
   crash and watch strong completeness kick in.

     dune exec examples/quickstart.exe *)

open Dsim

let describe engine label =
  let flips = Trace.suspicion_flips (Engine.trace engine) ~detector:"extracted" ~owner:0 ~target:1 in
  Printf.printf "%s\n" label;
  Printf.printf "  suspicion flips of p0 about p1 (S = suspect, T = trust):\n   ";
  List.iter (fun (t, v) -> Printf.printf " %d:%s" t (if v then "S" else "T")) flips;
  print_newline ()

let () =
  print_endline "=== Wait-free dining under eventual weak exclusion ≡ ◇P ===\n";

  (* Run 1: both processes correct. The extracted detector may err during
     the asynchronous prefix but converges to permanent trust. *)
  let run = Core.Scenario.wf_extraction ~seed:2026L ~n:2 () in
  Engine.run run.Core.Scenario.engine ~until:20000;
  describe run.Core.Scenario.engine "run 1: p1 is correct";
  let pair = Reduction.Extract.pair run.Core.Scenario.extract ~watcher:0 ~subject:1 in
  Printf.printf "  final verdict: p0 %s p1  (eventual strong accuracy)\n\n"
    (if pair.Reduction.Pair.suspected () then "suspects" else "trusts");

  (* Run 2: p1 crashes mid-run. Wait-freedom lets the witness threads keep
     eating past the dead subject, and the pings stop: permanent suspicion. *)
  let run = Core.Scenario.wf_extraction ~seed:2026L ~n:2 () in
  Engine.schedule_crash run.Core.Scenario.engine 1 ~at:5000;
  Engine.run run.Core.Scenario.engine ~until:20000;
  describe run.Core.Scenario.engine "run 2: p1 crashes at t=5000";
  let pair = Reduction.Extract.pair run.Core.Scenario.extract ~watcher:0 ~subject:1 in
  Printf.printf "  final verdict: p0 %s p1  (strong completeness)\n\n"
    (if pair.Reduction.Pair.suspected () then "suspects" else "trusts");

  (* The machine-checked proof obligations of Section 7. *)
  print_endline "lemma checks on run 2:";
  List.iter
    (fun (pair, online) ->
      List.iter
        (fun r -> Format.printf "  %a@." Reduction.Lemmas.pp_report r)
        (Reduction.Lemmas.online_reports online
        @ Reduction.Lemmas.trace_reports ~engine:run.Core.Scenario.engine ~pair))
    (List.filteri (fun i _ -> i = 0) run.Core.Scenario.onlines)
