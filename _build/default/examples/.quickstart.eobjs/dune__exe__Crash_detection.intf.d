examples/crash_detection.mli:
