examples/wsn_duty_cycle.mli:
