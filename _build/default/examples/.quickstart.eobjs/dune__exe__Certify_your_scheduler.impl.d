examples/certify_your_scheduler.ml: Component Context Core Dining Dsim Format List Msg Printf Types
