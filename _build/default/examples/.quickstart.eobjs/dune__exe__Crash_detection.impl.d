examples/crash_detection.ml: Core Detectors Dsim Engine Format List Printf Trace
