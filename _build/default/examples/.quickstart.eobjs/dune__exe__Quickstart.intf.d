examples/quickstart.mli:
