examples/quickstart.ml: Core Dsim Engine Format List Printf Reduction Trace
