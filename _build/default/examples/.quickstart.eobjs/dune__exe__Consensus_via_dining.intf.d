examples/consensus_via_dining.mli:
