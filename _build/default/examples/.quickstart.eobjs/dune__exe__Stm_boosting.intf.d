examples/stm_boosting.mli:
