examples/stm_boosting.ml: Adversary Ctm Detectors Dining Dsim Engine Graphs List Printf
