examples/consensus_via_dining.ml: Agreement Core Detectors Dsim Engine Format Fun List Printf Reduction String
