examples/certify_your_scheduler.mli:
