examples/wsn_duty_cycle.ml: Adversary Dsim Engine List Printf Wsn
