(* Full-system extraction on three processes with a crash: every ordered
   pair runs the reduction; the aggregated modules form a system-wide ◇P.

     dune exec examples/crash_detection.exe *)

open Dsim

let attitude engine ~owner ~target ~at =
  Trace.suspected_at (Engine.trace engine) ~detector:"extracted" ~owner ~target ~at
    ~initially:true

let () =
  let n = 3 in
  let run = Core.Scenario.wf_extraction ~seed:4242L ~with_lemma_monitors:false ~n () in
  let engine = run.Core.Scenario.engine in
  Engine.schedule_crash engine 2 ~at:6000;
  Engine.run engine ~until:24000;
  Printf.printf "3 processes, p2 crashes at t=6000; extracted suspicion matrices:\n\n";
  List.iter
    (fun at ->
      Printf.printf "t=%-6d   " at;
      for owner = 0 to n - 1 do
        for target = 0 to n - 1 do
          if owner <> target then
            Printf.printf "p%d%sp%d  " owner
              (if attitude engine ~owner ~target ~at then "✗" else "✓")
              target
        done
      done;
      print_newline ())
    [ 100; 1000; 3000; 8000; 16000; 24000 ];
  print_newline ();
  let v =
    Detectors.Properties.eventually_perfect (Engine.trace engine) ~detector:"extracted" ~n
      ~initially_suspected:true
  in
  Format.printf "◇P verdict over the whole run: %a@."
    Detectors.Properties.pp_verdict v;
  List.iter
    (fun target ->
      List.iter
        (fun owner ->
          if owner <> target then
            match
              Detectors.Properties.detection_time (Engine.trace engine) ~detector:"extracted"
                ~owner ~target ~initially_suspected:true
            with
            | Some t when t > 6000 ->
                Printf.printf "p%d detected the crash of p%d at t=%d (latency %d)\n" owner
                  target t (t - 6000)
            | Some _ | None -> ())
        [ 0; 1 ])
    [ 2 ]
