open Dsim

type t = {
  detector_name : string;
  members : Types.pid list;
  pairs : Pair.t list;
}

let create ~engine ?(detector_name = "extracted") ~dining ~members () =
  let members = List.sort_uniq compare members in
  let pairs =
    List.concat_map
      (fun watcher ->
        List.filter_map
          (fun subject ->
            if watcher = subject then None
            else Some (Pair.create ~engine ~detector_name ~dining ~watcher ~subject ()))
          members)
      members
  in
  { detector_name; members; pairs }

let pair t ~watcher ~subject =
  match
    List.find_opt (fun p -> p.Pair.watcher = watcher && p.Pair.subject = subject) t.pairs
  with
  | Some p -> p
  | None -> raise Not_found

let oracle t owner =
  let mine = List.filter (fun p -> p.Pair.watcher = owner) t.pairs in
  Detectors.Oracle.make ~name:t.detector_name ~owner ~suspects:(fun () ->
      List.fold_left
        (fun acc p -> if p.Pair.suspected () then Types.Pidset.add p.Pair.subject acc else acc)
        Types.Pidset.empty mine)
