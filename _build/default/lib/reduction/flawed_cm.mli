(** The flawed ◇P extraction of [8] (Section 3), reproduced verbatim.

    One dining instance is used as a wait-free contention manager for the
    ordered pair (p, q):

    - upon initialisation q sends heartbeats to p at regular intervals and
      requests permission for obstruction-free access; upon being granted,
      q enters its critical section {e and never exits};
    - p, upon receiving a heartbeat, trusts q and requests permission; upon
      being granted, p enters and immediately exits its critical section,
      suspects q, and waits for another heartbeat before starting over.

    The intended argument: if q crashes, wait-freedom lets p eat (and the
    heartbeats stop), so p permanently suspects q; if q is correct, the
    eventually-exclusive manager locks p out forever behind the perpetually
    eating q, so p eventually trusts q forever.

    The vulnerability: a [12]-style black box guarantees the exclusive
    suffix only after every diner that entered its critical section during
    the oracle's mistake-prone prefix has exited. A correct q that entered
    during that prefix and never exits voids the guarantee, p keeps eating
    — and keeps suspecting the correct q — forever, violating eventual
    strong accuracy. The paper's two-instance hand-off reduction closes
    exactly this hole; the V1 bench shows both behaviours side by side. *)

type t = {
  name : string;
  watcher : Dsim.Types.pid;
  subject : Dsim.Types.pid;
  suspected : unit -> bool;
  cm_instance : string;
  w_handle : Dining.Spec.handle;
  s_handle : Dining.Spec.handle;
}

val create :
  engine:Dsim.Engine.t ->
  ?detector_name:string ->
  ?heartbeat_period:int ->
  dining:Pair.dining_factory ->
  watcher:Dsim.Types.pid ->
  subject:Dsim.Types.pid ->
  unit ->
  t
