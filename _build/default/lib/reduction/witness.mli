(** Algorithm 1 — the witness threads [p.w_0] and [p.w_1].

    Process [p] monitors the liveness of process [q] through two dining
    instances DX_0 and DX_1. The two witness threads take turns becoming
    hungry ([switch] alternates), and on each eating session thread [w_i]
    rules on [q]'s liveness: it trusts [q] iff a ping from subject [q.s_i]
    arrived since [w_i]'s previous eating session (Action W_x), then exits
    immediately. Each ping is acknowledged with a single ack (Action W_p).

    Both threads are one component sharing [switch], [haveping_{0,1}] and
    the [suspect_q] output, mirroring the paper's "single stream of physical
    execution" with interleaved actions. *)

type t = {
  component : Dsim.Component.t;
  suspected : unit -> bool;  (** Current value of [suspect_q]. *)
  haveping : int -> bool;
  switch : unit -> int;
}

val create :
  Dsim.Context.t ->
  tag:string ->
  subject_pid:Dsim.Types.pid ->
  subject_tag:string ->
  dx:Dining.Spec.handle array ->
  detector_name:string ->
  unit ->
  t
(** [dx] are this process's handles in DX_0 and DX_1 (length 2). Suspicion
    flips of [suspect_q] are logged under [detector_name] with
    [owner = ctx.self], [target = subject_pid]. The output starts suspecting
    (the paper initialises [suspect_q] to true). *)
