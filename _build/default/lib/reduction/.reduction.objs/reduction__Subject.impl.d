lib/reduction/subject.ml: Array Component Context Dining Dsim Messages Printf Trace Types
