lib/reduction/single_instance.mli: Dsim Pair
