lib/reduction/witness.ml: Array Component Context Dining Dsim Messages Printf Trace Types
