lib/reduction/messages.ml: Dsim
