lib/reduction/pair.ml: Array Component Context Dining Dsim Engine Graphs Printf Subject Types Witness
