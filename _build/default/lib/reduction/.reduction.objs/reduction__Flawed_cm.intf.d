lib/reduction/flawed_cm.mli: Dining Dsim Pair
