lib/reduction/extract.mli: Detectors Dsim Pair
