lib/reduction/flawed_cm.ml: Component Context Dining Dsim Engine Messages Printf Trace Types
