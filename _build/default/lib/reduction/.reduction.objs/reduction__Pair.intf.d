lib/reduction/pair.mli: Dining Dsim Subject Witness
