lib/reduction/witness.mli: Dining Dsim
