lib/reduction/lemmas.ml: Array Dining Dsim Engine Format List Messages Pair Printf String Subject Trace Types
