lib/reduction/extract.ml: Detectors Dsim List Pair Types
