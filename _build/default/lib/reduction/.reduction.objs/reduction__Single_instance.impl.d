lib/reduction/single_instance.ml: Component Context Dining Dsim Engine Messages Printf Trace Types
