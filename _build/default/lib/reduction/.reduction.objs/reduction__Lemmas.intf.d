lib/reduction/lemmas.mli: Dsim Format Pair
