lib/reduction/subject.mli: Dining Dsim
