(** The full asynchronous transformation: WF-◇WX dining -> ◇P.

    For every ordered pair (p, q) of distinct members this instantiates one
    reduction cell ({!Pair}); the aggregated module of process [p] suspects
    exactly the processes its per-pair witnesses currently suspect. With a
    WF-◇WX black box the extracted detector is ◇P (Theorems 1 and 2); with
    a wait-free perpetual-WX black box it is the trusting oracle T
    (Section 9). *)

type t = {
  detector_name : string;
  members : Dsim.Types.pid list;
  pairs : Pair.t list;
}

val create :
  engine:Dsim.Engine.t ->
  ?detector_name:string ->
  dining:Pair.dining_factory ->
  members:Dsim.Types.pid list ->
  unit ->
  t

val pair : t -> watcher:Dsim.Types.pid -> subject:Dsim.Types.pid -> Pair.t
(** Raises [Not_found] for a non-member pair. *)

val oracle : t -> Dsim.Types.pid -> Detectors.Oracle.t
(** The aggregated extracted module of one process. *)
