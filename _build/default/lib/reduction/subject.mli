(** Algorithm 2 — the subject threads [q.s_0] and [q.s_1].

    The subjects coordinate their eating sessions by the hand-off mechanism:
    [s_0] becomes hungry first ([trigger = 0]); while eating (and while the
    peer subject is not) it sends exactly one ping to the peer witness
    (Action S_p); on receiving the ack it schedules the other subject to
    become hungry (Action S_a, [trigger := 1 - i]); and it exits only once
    the other subject is eating too (Action S_x). Hence in the exclusive
    suffix the beginning and end of each subject's eating session overlap
    the other's — the gray regions of Figure 1 — so a witness can never eat
    twice in DX_i without [s_i] eating in between.

    For Lemma 5's bookkeeping the subject logs trace notes
    ["red-ping"]/["red-ack"] with [info = tag ^ ":" ^ i]. *)

type t = {
  component : Dsim.Component.t;
  trigger : unit -> int;
  ping_flag : int -> bool;
}

val create :
  Dsim.Context.t ->
  tag:string ->
  witness_pid:Dsim.Types.pid ->
  witness_tag:string ->
  dx:Dining.Spec.handle array ->
  unit ->
  t
