(** Ablation: a naive one-instance extraction (no hand-off).

    The witness eats, rules on [q] by "did a ping arrive since my previous
    meal", exits, and immediately re-competes in the {e same} dining
    instance; the subject eats, pings, exits on the ack, and re-competes.
    This differs from the flawed [8] construction (the subject does exit)
    and from the paper's reduction (there is no second instance and no
    hand-off overlap).

    Why the paper needs two instances: WF-◇WX guarantees no {e exclusion}
    failures in the suffix but promises nothing about {e fairness} — a
    legal box may serve a fast witness several times between two meals of
    a slow subject, forever. Each such double-meal resets [haveping] and
    produces a fresh wrongful suspicion: eventual strong accuracy fails.
    The hand-off of Algorithm 2 closes this by keeping some subject eating
    at all times in the suffix, so witness meals and subject meals strictly
    alternate per instance (Lemma 12). The V1 bench drives exactly this
    schedule (a slowed subject process) against both constructions. *)

type t = {
  name : string;
  watcher : Dsim.Types.pid;
  subject : Dsim.Types.pid;
  suspected : unit -> bool;
  instance : string;
}

val create :
  engine:Dsim.Engine.t ->
  ?detector_name:string ->
  dining:Pair.dining_factory ->
  watcher:Dsim.Types.pid ->
  subject:Dsim.Types.pid ->
  unit ->
  t
