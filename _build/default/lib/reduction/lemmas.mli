(** Executable encodings of the paper's correctness lemmas.

    The proofs of Section 7 rest on a dozen lemmas about the reduction's
    variables, channels and schedules. Each is rendered here as a run-time
    predicate over one {!Pair} — the state invariants are checked online at
    every tick, the schedule/counting lemmas post-hoc over the trace — so
    every test run machine-checks the proof obligations:

    - Lemma 2: [(s_i <> eating) => ping_i].
    - Lemma 3: when [(s_i <> eating) /\ ping_i], no ping/ack of instance
      [i] is in transit between q.s_i and p.w_i.
    - Lemma 4: [(s_i = hungry) => (trigger = i)].
    - Lemma 5: during every completed eating session of subject [s_i],
      exactly one ping is sent and exactly one ack received.
    - Lemma 8 (suffix invariant): eventually, at any time some subject is
      eating (reported as the last violation time, which must stabilise).
    - Lemma 9: at any time some witness is thinking.
    - Lemmas 7 and 11: subjects and witnesses eat infinitely often
      (reported as eat counts, which must keep growing).
    - Lemma 12: between consecutive eating sessions of witness [w_i],
      witness [w_{1-i}] eats exactly once. *)

type report = {
  lemma : string;
  violations : string list;
  info : string;  (** Free-form statistics (e.g. counts, last times). *)
}

val ok : report -> bool
val all_ok : report list -> bool
val pp_report : Format.formatter -> report -> unit

type online

val install_online : engine:Dsim.Engine.t -> pair:Pair.t -> online
(** Hook the per-tick state-invariant checks (Lemmas 2, 3, 4, 8, 9) into
    the engine. Violations are accumulated (capped); Lemma 8 records the
    last tick its invariant did not hold. *)

val online_reports : online -> report list
(** Lemma 8's report is judged against the current engine time: its last
    violation must precede the final quarter of the run. *)

val trace_reports : engine:Dsim.Engine.t -> pair:Pair.t -> report list
(** Post-hoc schedule lemmas (5, 7, 11, 12) plus liveness of the subjects'
    hungry phases (Lemma 1) and finiteness of their eating sessions
    (Lemma 6). Sessions still open near the horizon are ignored. *)
