open Dsim

type dining_factory =
  Context.t ->
  instance:string ->
  participants:Types.pid * Types.pid ->
  Component.t * Dining.Spec.handle

let wf_ewx_factory ~n ~suspects : dining_factory =
 fun ctx ~instance ~participants ->
  let p, q = participants in
  let graph = Graphs.Conflict_graph.of_edges ~n [ (p, q) ] in
  let comp, handle, _debug =
    Dining.Wf_ewx.component ctx ~instance ~graph ~suspects:(suspects ctx.Context.self) ()
  in
  (comp, handle)

let ftme_factory ~suspects : dining_factory =
 fun ctx ~instance ~participants ->
  let p, q = participants in
  let comp, handle, _debug =
    Dining.Ftme.component ctx ~instance ~members:[ p; q ] ~suspects:(suspects ctx.Context.self)
      ()
  in
  (comp, handle)

type t = {
  name : string;
  watcher : Types.pid;
  subject : Types.pid;
  suspected : unit -> bool;
  witness : Witness.t;
  subject_threads : Subject.t;
  dx_instances : string array;
  witness_tag : string;
  subject_tag : string;
  w_handles : Dining.Spec.handle array;
  s_handles : Dining.Spec.handle array;
}

let create ~engine ?(detector_name = "extracted") ~dining ~watcher ~subject () =
  if watcher = subject then invalid_arg "Pair.create: watcher = subject";
  let name = Printf.sprintf "%d>%d" watcher subject in
  let dx_instances = Array.init 2 (fun i -> Printf.sprintf "dx%d[%s]" i name) in
  let witness_tag = Printf.sprintf "w[%s]" name in
  let subject_tag = Printf.sprintf "s[%s]" name in
  let wctx = Engine.ctx engine watcher in
  let sctx = Engine.ctx engine subject in
  let make_instance ctx i =
    let comp, handle =
      dining ctx ~instance:dx_instances.(i) ~participants:(watcher, subject)
    in
    Engine.register engine ctx.Context.self comp;
    handle
  in
  let w_handles = Array.init 2 (make_instance wctx) in
  let s_handles = Array.init 2 (make_instance sctx) in
  let witness =
    Witness.create wctx ~tag:witness_tag ~subject_pid:subject ~subject_tag ~dx:w_handles
      ~detector_name ()
  in
  Engine.register engine watcher witness.Witness.component;
  let subject_threads =
    Subject.create sctx ~tag:subject_tag ~witness_pid:watcher ~witness_tag ~dx:s_handles ()
  in
  Engine.register engine subject subject_threads.Subject.component;
  {
    name;
    watcher;
    subject;
    suspected = witness.Witness.suspected;
    witness;
    subject_threads;
    dx_instances;
    witness_tag;
    subject_tag;
    w_handles;
    s_handles;
  }
