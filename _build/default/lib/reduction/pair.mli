(** One ordered monitoring pair (p, q): the full reduction cell.

    For each ordered pair of processes (p, q) where p monitors q, the
    reduction runs two instances DX_0 and DX_1 of a black-box WF-◇WX dining
    solution in which p's witness threads and q's subject threads are the
    two (neighboring) diners, plus the ping/ack protocol of Algorithms 1
    and 2. The extracted local output is [suspect_q] at p.

    The dining black box is pluggable (that is the point of a black-box
    reduction): {!wf_ewx_factory} yields the ◇P-based [12]-style solution,
    {!ftme_factory} the perpetual-exclusion substrate of Section 9 — the
    same reduction then extracts the trusting oracle T. *)

type dining_factory =
  Dsim.Context.t ->
  instance:string ->
  participants:Dsim.Types.pid * Dsim.Types.pid ->
  Dsim.Component.t * Dining.Spec.handle
(** Builds one diner (at [ctx.self], which is one of [participants]) of a
    two-diner dining instance named [instance]. *)

val wf_ewx_factory :
  n:int -> suspects:(Dsim.Types.pid -> unit -> Dsim.Types.Pidset.t) -> dining_factory
(** [suspects owner] is the local ◇P module of process [owner] (shared by
    all instances at that process). *)

val ftme_factory :
  suspects:(Dsim.Types.pid -> unit -> Dsim.Types.Pidset.t) -> dining_factory
(** Perpetual-WX mutual exclusion between the two participants; [suspects]
    should come from a trusting detector. *)

type t = {
  name : string;
  watcher : Dsim.Types.pid;
  subject : Dsim.Types.pid;
  suspected : unit -> bool;  (** The extracted ◇P (or T) output at p. *)
  witness : Witness.t;
  subject_threads : Subject.t;
  dx_instances : string array;  (** The two dining instance names. *)
  witness_tag : string;
  subject_tag : string;
  w_handles : Dining.Spec.handle array;  (** p's diner handles in DX_0/DX_1. *)
  s_handles : Dining.Spec.handle array;  (** q's diner handles in DX_0/DX_1. *)
}

val create :
  engine:Dsim.Engine.t ->
  ?detector_name:string ->
  dining:dining_factory ->
  watcher:Dsim.Types.pid ->
  subject:Dsim.Types.pid ->
  unit ->
  t
(** Registers 6 components: 2x2 diners and the witness/subject threads.
    Suspicion flips are logged under [detector_name] (default
    ["extracted"]); the initial attitude is "suspected". *)
