(** Trace checkers for the dining safety/liveness properties of Section 4.

    - {e Eventual weak exclusion} (◇WX): there is a time after which no two
      live neighbors eat simultaneously; finitely many earlier mistakes are
      allowed.
    - {e Perpetual weak exclusion} (WX): live neighbors never eat
      simultaneously.
    - {e Wait-freedom}: if correct diners eat for finite time, every correct
      hungry diner eventually eats, no matter how many processes crash.
    - {e Eventual k-fairness} ([13]): there is a time after which no diner
      enters its critical section more than [k] consecutive times while a
      correct neighbor stays hungry.

    On a finite trace the eventual properties are checked against an
    explicit suffix start (or reported as a measured convergence time). *)

type violation = {
  at : Dsim.Types.time;  (** Instant both neighbors were eating and live. *)
  p : Dsim.Types.pid;
  q : Dsim.Types.pid;
}

val live_eating_intervals :
  Dsim.Trace.t -> instance:string -> pid:Dsim.Types.pid -> horizon:Dsim.Types.time ->
  (Dsim.Types.time * Dsim.Types.time) list
(** Eating intervals clipped at the diner's crash time (a crashed process is
    no longer live, so post-crash "eating" cannot violate ◇WX). *)

val exclusion_violations :
  Dsim.Trace.t -> instance:string -> graph:Graphs.Conflict_graph.t ->
  horizon:Dsim.Types.time -> violation list
(** One record per overlapping live-eating interval pair, at overlap start,
    chronological. *)

val last_violation_time :
  Dsim.Trace.t -> instance:string -> graph:Graphs.Conflict_graph.t ->
  horizon:Dsim.Types.time -> Dsim.Types.time option

val eventual_weak_exclusion :
  Dsim.Trace.t -> instance:string -> graph:Graphs.Conflict_graph.t ->
  horizon:Dsim.Types.time -> suffix_from:Dsim.Types.time -> Detectors.Properties.verdict
(** No violation at or after [suffix_from]. *)

val perpetual_weak_exclusion :
  Dsim.Trace.t -> instance:string -> graph:Graphs.Conflict_graph.t ->
  horizon:Dsim.Types.time -> Detectors.Properties.verdict

val wait_freedom :
  Dsim.Trace.t -> instance:string -> n:int -> horizon:Dsim.Types.time ->
  slack:Dsim.Types.time -> Detectors.Properties.verdict
(** Every hungry phase of a correct diner beginning before
    [horizon - slack] transitions to eating. [slack] absorbs requests that
    are legitimately still in progress at the end of the run. *)

val exiting_finite :
  Dsim.Trace.t -> instance:string -> n:int -> horizon:Dsim.Types.time ->
  slack:Dsim.Types.time -> Detectors.Properties.verdict
(** The spec requires relinquishment to complete in finite time: no correct
    diner may sit in [Exiting] from before [horizon - slack] to the end. *)

val eat_count :
  Dsim.Trace.t -> instance:string -> pid:Dsim.Types.pid -> int

val max_overtaking :
  Dsim.Trace.t -> instance:string -> graph:Graphs.Conflict_graph.t ->
  after:Dsim.Types.time -> horizon:Dsim.Types.time -> int
(** Maximum, over diners [p] (correct) and neighbors [q], of the number of
    eating sessions [q] begins during one hungry wait of [p] that starts at
    or after [after]. Eventual k-fairness holds iff this is <= k for a
    suitable suffix. *)

val starved :
  Dsim.Trace.t -> instance:string -> n:int -> horizon:Dsim.Types.time ->
  slack:Dsim.Types.time -> Dsim.Types.pid list
(** Correct diners left hungry at the horizon whose wait began before
    [horizon - slack]. *)

val failure_locality :
  Dsim.Trace.t -> instance:string -> graph:Graphs.Conflict_graph.t ->
  horizon:Dsim.Types.time -> slack:Dsim.Types.time -> int option
(** The crash-locality actually exhibited by the run: the maximum, over
    starved correct diners, of the distance to the nearest crashed process
    ([Some 0] when nothing starves, [None] when a diner starves with no
    crash to blame — i.e. the algorithm starves on its own). Wait-free
    algorithms exhibit locality 0; the FL-1 algorithms of [11] bound it by
    1; plain fork-based dining lets a crash starve whole chains. *)

val fairness_index :
  Dsim.Trace.t -> instance:string -> pids:Dsim.Types.pid list -> float
(** Jain's fairness index over the meal counts of the given diners:
    [(sum x)^2 / (n * sum x^2)], 1.0 = perfectly even, 1/n = one diner
    took everything. *)

val hungry_wait_times :
  Dsim.Trace.t -> instance:string -> pid:Dsim.Types.pid -> horizon:Dsim.Types.time -> int list
(** Durations of the completed hungry -> eating waits of one diner. *)
