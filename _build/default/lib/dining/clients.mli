(** Reusable diner clients (the application side of the dining service).

    A client drives the thinking -> hungry and eating -> exiting transitions
    of one diner; the dining algorithm supplies hungry -> eating and
    exiting -> thinking. The paper requires correct diners to eat for finite
    (not necessarily bounded) time; these clients respect that unless
    explicitly configured otherwise ({!glutton}). *)

val greedy :
  Dsim.Context.t ->
  handle:Spec.handle ->
  ?eat_ticks:int ->
  ?think_ticks:int ->
  unit ->
  Dsim.Component.t
(** Perpetually re-hungry diner: thinks for [think_ticks], eats for
    [eat_ticks], repeats forever. *)

val n_sessions :
  Dsim.Context.t ->
  handle:Spec.handle ->
  sessions:int ->
  ?eat_ticks:int ->
  ?think_ticks:int ->
  unit ->
  Dsim.Component.t * (unit -> int)
(** Like {!greedy} but stops after [sessions] completed meals; also returns
    a counter of completed meals. *)

val glutton :
  Dsim.Context.t ->
  handle:Spec.handle ->
  ?start_after:int ->
  unit ->
  Dsim.Component.t
(** Becomes hungry once and never exits its critical section — the
    spec-violating client at the heart of the Section 3 vulnerability. *)
