(** Wait-free dining under eventual weak exclusion, driven by ◇P.

    This is the [12]-style black box the paper's reduction assumes:
    fork-based dining with timestamped request priorities, extended with a
    {e suspicion override} — a hungry diner treats a neighbor currently
    suspected by its local ◇P module as absent and may eat without that
    neighbor's fork ("virtual fork").

    One fork per edge; a hungry diner stamps its session with a Lamport
    timestamp and requests every missing fork once per session. A holder
    surrenders a requested fork unless it is eating with it or is itself
    hungry with higher priority (smaller [(timestamp, pid)]). Timestamps
    grow along message chains, so the priority order is total, acyclic by
    construction, and — crucially — {e self-stabilizing}: scheduling
    mistakes made while ◇P still errs (virtual meals) cannot poison any
    persistent precedence state, unlike dirty/clean-fork hygiene, where a
    virtual meal fails to flip the eater's un-held edges and can leave a
    permanent clean-fork cycle once the oracle converges.

    Guarantees (checked empirically by {!Monitor} in the tests/benches):

    - {e Wait-freedom}: if correct diners eat for finite time, every correct
      hungry diner eventually eats, regardless of crashes. Crashed neighbors
      are eventually permanently suspected (◇P strong completeness), so
      their forks are never awaited forever; among live diners the globally
      minimal [(timestamp, pid)] request is never refused.
    - {e Eventual weak exclusion}: each false suspicion can cause a
      simultaneous-eating mistake, but ◇P errs only finitely often, so runs
      converge to an exclusive suffix — {e after the oracle converges and
      every mistaken eater has exited}. That convergence caveat is exactly
      the property of [12] on which the Section 3 vulnerability of the [8]
      construction rests, and this implementation reproduces it faithfully.

    With [suspicion_override:false] the algorithm never eats without the
    real forks: perpetually exclusive, but starving once a fork holder
    crashes (the crash-intolerant baseline — see {!Hygienic}). *)

type Dsim.Msg.t += Fork | Request of int (** exposed for white-box monitors *)

type config = {
  suspicion_override : bool;
}

val default_config : config

type debug = {
  has_fork : Dsim.Types.pid -> bool;
  peer_requesting : Dsim.Types.pid -> bool;
      (** A request from that neighbor is pending here. *)
  session_ts : unit -> int option;
      (** Timestamp of the current hungry session, if any. *)
  eating_virtually : unit -> bool;
      (** True while eating with at least one fork replaced by suspicion. *)
}

val component :
  Dsim.Context.t ->
  instance:string ->
  graph:Graphs.Conflict_graph.t ->
  suspects:(unit -> Dsim.Types.Pidset.t) ->
  ?config:config ->
  unit ->
  Dsim.Component.t * Spec.handle * debug
(** Build the diner of process [ctx.self] in dining instance [instance]
    (which doubles as the message-routing tag, so it must be globally
    unique). Every process in [graph] must register a component built with
    the same [instance] and [graph]. [suspects] is the local ◇P module. *)
