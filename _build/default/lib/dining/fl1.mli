(** Perpetual-exclusion dining with crash locality 1, from ◇P ([11]-style).

    The paper's introduction cites "crash-locality-1 dining for perpetual
    exclusion [11]" as another problem ◇P solves, and Section 2 leans on
    the induced trade-off (◇P cannot give wait-freedom {e and} perpetual
    exclusion together [11], which is why WSN-style applications accept
    ◇WX). This module completes that design space in the reproduction:

    - {!Wf_ewx}: wait-free (locality 0) but only {e eventually} exclusive;
    - {!Ftme}: wait-free and perpetually exclusive, but needs T;
    - this module: perpetually exclusive from ◇P alone, at the price of
      starving the crashed processes' {e neighbors} — and only them
      (crash locality 1).

    Mechanism: suspicion never stands in for a fork (so exclusion is never
    violated, even by oracle mistakes). Instead, a hungry diner that is
    {e doomed} — waiting on a fork whose holder it currently suspects —
    turns generous: it surrenders every requested fork regardless of
    priority, so the processes behind it never block on it transitively.
    A false suspicion merely costs the victim its turn; when the oracle
    converges, exactly the crashed processes' neighbors can remain doomed.

    Checked by tests/benches: perpetual weak exclusion on every run; after
    convergence {!Monitor.failure_locality} is 0 without crashes and <= 1
    with them, against unbounded starvation chains for the no-detector
    baseline. *)

val component :
  Dsim.Context.t ->
  instance:string ->
  graph:Graphs.Conflict_graph.t ->
  suspects:(unit -> Dsim.Types.Pidset.t) ->
  unit ->
  Dsim.Component.t * Spec.handle
