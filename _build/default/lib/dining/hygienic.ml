let component ctx ~instance ~graph () =
  Wf_ewx.component ctx ~instance ~graph
    ~suspects:(fun () -> Dsim.Types.Pidset.empty)
    ~config:{ Wf_ewx.suspicion_override = false }
    ()
