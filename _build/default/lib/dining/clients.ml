open Dsim

let phase_is h p = Types.phase_equal (h.Spec.phase ()) p

let build (ctx : Context.t) ~handle ~eat_ticks ~think_ticks ~limit =
  let completed = ref 0 in
  let became_eating = ref (-1) in
  let became_thinking = ref 0 in
  handle.Spec.set_on_transition (fun _ to_ ->
      match to_ with
      | Types.Eating -> became_eating := ctx.Context.now ()
      | Types.Thinking -> became_thinking := ctx.Context.now ()
      | Types.Exiting -> incr completed
      | Types.Hungry -> ());
  let may_start () = match limit with None -> true | Some k -> !completed < k in
  let get_hungry =
    Component.action "client-hungry"
      ~guard:(fun () ->
        may_start ()
        && phase_is handle Types.Thinking
        && ctx.Context.now () - !became_thinking >= think_ticks)
      ~body:(fun () -> handle.Spec.hungry ())
  in
  let stop_eating =
    Component.action "client-exit"
      ~guard:(fun () ->
        phase_is handle Types.Eating && ctx.Context.now () - !became_eating >= eat_ticks)
      ~body:(fun () -> handle.Spec.exit_eating ())
  in
  ( Component.make ~name:("client:" ^ handle.Spec.instance)
      ~actions:[ get_hungry; stop_eating ] (),
    fun () -> !completed )

let greedy ctx ~handle ?(eat_ticks = 3) ?(think_ticks = 2) () =
  fst (build ctx ~handle ~eat_ticks ~think_ticks ~limit:None)

let n_sessions ctx ~handle ~sessions ?(eat_ticks = 3) ?(think_ticks = 2) () =
  build ctx ~handle ~eat_ticks ~think_ticks ~limit:(Some sessions)

let glutton ctx ~handle ?(start_after = 0) () =
  let get_hungry =
    Component.action "client-glutton"
      ~guard:(fun () -> ctx.Context.now () >= start_after && phase_is handle Types.Thinking)
      ~body:(fun () -> handle.Spec.hungry ())
  in
  Component.make ~name:("client:" ^ handle.Spec.instance) ~actions:[ get_hungry ] ()
