(** Eventually fair wait-free dining under ◇WX ([13]-style service).

    Ricart–Agrawala-style timestamped requests adapted to arbitrary conflict
    graphs, with the same ◇P suspicion override as {!Wf_ewx}: a hungry diner
    sends a Lamport-timestamped request to every neighbor and eats once each
    neighbor has granted it or is currently suspected; a neighbor defers its
    grant while eating or while hungry with an older request.

    Properties (checked by tests/benches):
    - wait-freedom and ◇WX, as for {!Wf_ewx};
    - {e eventual k-fairness}: after ◇P converges and in-flight requests
      drain, a hungry diner can be overtaken by each neighbor at most a
      bounded number of times (measured k <= 2, matching the eventual
      2-fairness the paper obtains by composing its reduction with [13]). *)

val component :
  Dsim.Context.t ->
  instance:string ->
  graph:Graphs.Conflict_graph.t ->
  suspects:(unit -> Dsim.Types.Pidset.t) ->
  unit ->
  Dsim.Component.t * Spec.handle * (unit -> string)
