(** Fault-Tolerant Mutual Exclusion: wait-free dining under *perpetual*
    weak exclusion, built on a trusting failure detector.

    This is the [4]-style substrate that Section 9 of the paper feeds into
    the reduction to extract the trusting oracle T. The conflict graph is a
    clique (mutual exclusion is dining on a clique). The design is
    coordinator-based:

    - the lowest live process acts as server, granting the critical section
      to one requester at a time (FIFO);
    - when the server crashes, the next-lowest live process takes over, but
      only after a {e recovery round}: it announces its epoch (= its pid;
      successor pids are strictly increasing since crashes are permanent)
      and waits until every process it still trusts has replied with its
      status, and any live critical-section holder it learned about has
      released. Trusting accuracy makes this safe: a suspected process has
      really crashed, so skipping it cannot skip a *live* CS holder —
      and a crashed holder cannot violate weak exclusion, which only
      constrains live processes;
    - clients resend their request whenever their believed server (lowest
      trusted pid) changes, and ignore stale grants from superseded epochs.

    Guarantees, checked on every run by {!Monitor}: perpetual weak
    exclusion (zero simultaneous live eaters, from time zero), and
    wait-freedom. Liveness relies on T's strong completeness; safety relies
    only on trusting accuracy — with a merely eventually-accurate oracle in
    its place, safety breaks, which is the ablation the benches show
    (P is insufficient for wait-free perpetual exclusion [11]). *)

val component :
  Dsim.Context.t ->
  instance:string ->
  members:Dsim.Types.pid list ->
  suspects:(unit -> Dsim.Types.Pidset.t) ->
  unit ->
  Dsim.Component.t * Spec.handle * (unit -> string)
(** One diner of a mutual-exclusion instance among [members] (each member
    registers one component; the lowest member id is the initial server). [suspects] must
    come from a trusting detector for the perpetual-exclusion guarantee to
    hold (pass a ◇P module instead to reproduce the safety-violation
    ablation). *)
