(** Crash-intolerant dining baseline.

    Exactly {!Wf_ewx} with the suspicion override disabled and a
    never-suspecting oracle: fork-based dining with timestamped priorities,
    perpetually exclusive and starvation-free among live processes, but a
    single crash of a fork holder starves its hungry neighbors forever.
    Benches use it as the "what the paper's problem statement rules out"
    baseline. *)

val component :
  Dsim.Context.t ->
  instance:string ->
  graph:Graphs.Conflict_graph.t ->
  unit ->
  Dsim.Component.t * Spec.handle * Wf_ewx.debug
