lib/dining/clients.ml: Component Context Dsim Spec Types
