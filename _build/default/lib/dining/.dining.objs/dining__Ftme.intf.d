lib/dining/ftme.mli: Dsim Spec
