lib/dining/clients.mli: Dsim Spec
