lib/dining/monitor.ml: Array Detectors Dsim Fun Graphs List Printf Trace Types
