lib/dining/fl1.ml: Component Context Dsim Graphs List Msg Spec Types
