lib/dining/kfair.mli: Dsim Graphs Spec
