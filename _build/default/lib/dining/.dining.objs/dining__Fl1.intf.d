lib/dining/fl1.mli: Dsim Graphs Spec
