lib/dining/spec.mli: Dsim
