lib/dining/wf_ewx.ml: Component Context Dsim Graphs List Msg Spec Types
