lib/dining/wf_ewx.mli: Dsim Graphs Spec
