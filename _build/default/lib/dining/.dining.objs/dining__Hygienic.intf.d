lib/dining/hygienic.mli: Dsim Graphs Spec Wf_ewx
