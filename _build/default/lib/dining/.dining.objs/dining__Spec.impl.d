lib/dining/spec.ml: Context Dsim Printf Trace Types
