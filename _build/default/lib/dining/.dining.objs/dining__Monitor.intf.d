lib/dining/monitor.mli: Detectors Dsim Graphs
