lib/dining/hygienic.ml: Dsim Wf_ewx
