lib/dining/ftme.ml: Component Context Dsim Hashtbl List Msg Printf Spec String Trace Types Vec
