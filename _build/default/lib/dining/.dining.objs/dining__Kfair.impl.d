lib/dining/kfair.ml: Component Context Dsim Graphs List Msg Printf Spec String Types
