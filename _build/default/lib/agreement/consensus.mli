(** Chandra–Toueg rotating-coordinator consensus over an unreliable
    failure detector.

    The paper's opening motivation for ◇P is that it "is sufficiently
    powerful to solve many crash-tolerant problems including consensus
    [3]". This module closes that loop for the reproduction: the detector
    extracted from a black-box dining solution can be plugged in here and
    used to reach agreement (see the [consensus_via_dining] example and the
    C1 bench).

    The algorithm is the classic ◇S-style rotating coordinator (◇P ⊆ ◇S):
    rounds proceed through estimate collection (majority), a coordinator
    proposal carrying the highest-timestamp estimate, ack/nack (nack when
    the coordinator is suspected), and a reliably-broadcast decision once a
    majority acks. Safety (agreement, validity) holds with {e any} detector
    thanks to majority quorums; termination needs fewer than [n/2] crashes
    and the detector's eventual accuracy. *)

type t = {
  propose : int -> unit;
      (** Submit this process's input. First call wins; must be called for
          the process to participate. *)
  decided : unit -> int option;
  round : unit -> int;  (** Current round (diagnostics). *)
  component : Dsim.Component.t;
}

val create :
  Dsim.Context.t ->
  ?tag:string ->
  members:Dsim.Types.pid list ->
  suspects:(unit -> Dsim.Types.Pidset.t) ->
  unit ->
  t
(** All members must register a component built with the same [tag]
    (default ["consensus"]). Decisions are logged as a trace {!Dsim.Trace.Note}
    with label ["decide"]. *)

val decisions : Dsim.Trace.t -> (Dsim.Types.pid * Dsim.Types.time * int) list
(** All logged decisions [(pid, time, value)], chronological. *)

val agreement : Dsim.Trace.t -> Detectors.Properties.verdict
(** No two processes decide differently. *)
