open Dsim

type t = {
  leader : unit -> Types.pid;
  component : Component.t;
}

let create (ctx : Context.t) ~members ~suspects () =
  let members = List.sort_uniq compare members in
  if members = [] then invalid_arg "Leader.create: no members";
  let current () =
    let s = suspects () in
    match List.find_opt (fun p -> not (Types.Pidset.mem p s)) members with
    | Some p -> p
    | None -> List.hd members (* everyone suspected: fall back deterministically *)
  in
  let last = ref (-1) in
  let watch =
    Component.action "leader-watch"
      ~guard:(fun () -> current () <> !last)
      ~body:(fun () ->
        last := current ();
        ctx.Context.log
          (Trace.Note
             { pid = ctx.Context.self; label = "leader"; info = string_of_int !last }))
  in
  { leader = current; component = Component.make ~name:"leader" ~actions:[ watch ] () }

let changes trace ~pid =
  Trace.notes ~pid ~label:"leader" trace
  |> List.filter_map (fun (e : Trace.entry) ->
         match e.ev with
         | Trace.Note n -> Some (e.at, int_of_string n.info)
         | _ -> None)

let stabilisation_time trace ~pid =
  match List.rev (changes trace ~pid) with [] -> None | (t, _) :: _ -> Some t

let final_leader trace ~pid =
  match List.rev (changes trace ~pid) with [] -> None | (_, l) :: _ -> Some l
