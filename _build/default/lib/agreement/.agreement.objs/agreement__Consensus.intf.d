lib/agreement/consensus.mli: Detectors Dsim
