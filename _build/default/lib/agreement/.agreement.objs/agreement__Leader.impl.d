lib/agreement/leader.ml: Component Context Dsim List Trace Types
