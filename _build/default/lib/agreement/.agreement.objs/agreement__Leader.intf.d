lib/agreement/leader.mli: Dsim
