lib/agreement/consensus.ml: Component Context Detectors Dsim Hashtbl List Msg Printf String Trace Types
