(** Stable leader election from ◇P.

    The paper's introduction lists stable leader election [1] among the
    problems ◇P solves; with the reduction of this repository, any WF-◇WX
    dining box therefore yields a leader service. The rule is the classic
    one: trust the lowest process the local ◇P module does not suspect.
    Once the detector converges, every correct process permanently elects
    the same (lowest-id correct) leader. *)

type t = {
  leader : unit -> Dsim.Types.pid;
  component : Dsim.Component.t;
      (** Logs a ["leader"]-labelled {!Dsim.Trace.Note} on every change. *)
}

val create :
  Dsim.Context.t ->
  members:Dsim.Types.pid list ->
  suspects:(unit -> Dsim.Types.Pidset.t) ->
  unit ->
  t

val stabilisation_time :
  Dsim.Trace.t -> pid:Dsim.Types.pid -> Dsim.Types.time option
(** Time of the last leader change logged by that process ([None] if it
    never elected anyone). *)

val final_leader : Dsim.Trace.t -> pid:Dsim.Types.pid -> Dsim.Types.pid option
