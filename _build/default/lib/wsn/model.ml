open Dsim

type config = {
  areas : int;
  nodes_per_area : int;
  initial_energy : int;
  duty_ticks : int;
  rest_ticks : int;
}

let default_config =
  { areas = 3; nodes_per_area = 3; initial_energy = 600; duty_ticks = 20; rest_ticks = 5 }

type scheduler = Dining | All_on

type t = {
  engine : Engine.t;
  config : config;
  scheduler : scheduler;
  instance : string;
  node_count : int;
  energy : int array;
}

let area_of t pid = pid / t.config.nodes_per_area

let nodes_of_area t a =
  List.init t.config.nodes_per_area (fun i -> (a * t.config.nodes_per_area) + i)

(* Conflict graph: one clique per area (same-area nodes cover the same
   ground, so their duty sessions conflict). *)
let coverage_graph config =
  let n = config.areas * config.nodes_per_area in
  let edges = ref [] in
  for a = 0 to config.areas - 1 do
    let base = a * config.nodes_per_area in
    for i = 0 to config.nodes_per_area - 1 do
      for j = i + 1 to config.nodes_per_area - 1 do
        edges := (base + i, base + j) :: !edges
      done
    done
  done;
  Graphs.Conflict_graph.of_edges ~n !edges

let setup ~engine ?(config = default_config) ~scheduler () =
  let node_count = config.areas * config.nodes_per_area in
  if Engine.n engine <> node_count then
    invalid_arg "Wsn.Model.setup: engine size must be areas * nodes_per_area";
  let instance = "wsn" in
  let t =
    {
      engine;
      config;
      scheduler;
      instance;
      node_count;
      energy = Array.make node_count config.initial_energy;
    }
  in
  let handles = Array.make node_count None in
  (match scheduler with
  | Dining ->
      let graph = coverage_graph config in
      for pid = 0 to node_count - 1 do
        let ctx = Engine.ctx engine pid in
        let peers = nodes_of_area t (area_of t pid) in
        let fd, oracle = Detectors.Heartbeat.component ctx ~peers () in
        Engine.register engine pid fd;
        let comp, handle, _ =
          Dining.Wf_ewx.component ctx ~instance ~graph
            ~suspects:(fun () -> oracle.Detectors.Oracle.suspects ())
            ()
        in
        Engine.register engine pid comp;
        handles.(pid) <- Some handle;
        Engine.register engine pid
          (Dining.Clients.greedy ctx ~handle ~eat_ticks:config.duty_ticks
             ~think_ticks:config.rest_ticks ())
      done
  | All_on ->
      for pid = 0 to node_count - 1 do
        let ctx = Engine.ctx engine pid in
        let cell, handle = Dining.Spec.Cell.handle (Dining.Spec.Cell.create ctx ~instance) in
        handles.(pid) <- Some handle;
        let turn_on =
          Component.action "wsn-always-on"
            ~guard:(fun () ->
              Types.phase_equal (handle.Dining.Spec.phase ()) Types.Thinking)
            ~body:(fun () ->
              Dining.Spec.Cell.set cell Types.Hungry;
              Dining.Spec.Cell.set cell Types.Eating)
        in
        Engine.register engine pid (Component.make ~name:instance ~actions:[ turn_on ] ())
      done);
  (* Energy drain: one unit per on-duty tick; empty battery = crash. *)
  Engine.on_tick engine (fun () ->
      for pid = 0 to node_count - 1 do
        if Engine.is_live engine pid then
          match handles.(pid) with
          | Some h when Types.phase_equal (h.Dining.Spec.phase ()) Types.Eating ->
              t.energy.(pid) <- t.energy.(pid) - 1;
              if t.energy.(pid) <= 0 then Engine.crash_now engine pid
          | Some _ | None -> ()
      done);
  t

type sample = {
  at : Types.time;
  covered : int;
  redundant : int;
  alive : int;
}

let coverage_series t ~sample_every ~horizon =
  let trace = Engine.trace t.engine in
  let crash_times = Trace.crash_times trace in
  let intervals =
    Array.init t.node_count (fun pid ->
        Dining.Monitor.live_eating_intervals trace ~instance:t.instance ~pid ~horizon)
  in
  let on_duty pid at = List.exists (fun (a, b) -> a <= at && at < b) intervals.(pid) in
  let alive_at pid at =
    match Types.Pidmap.find_opt pid crash_times with None -> true | Some tc -> at < tc
  in
  let samples = ref [] in
  let at = ref sample_every in
  while !at <= horizon do
    let covered = ref 0 and redundant = ref 0 in
    for a = 0 to t.config.areas - 1 do
      let on = List.length (List.filter (fun pid -> on_duty pid !at) (nodes_of_area t a)) in
      if on >= 1 then incr covered;
      if on >= 2 then incr redundant
    done;
    let alive =
      List.length (List.filter (fun pid -> alive_at pid !at) (List.init t.node_count Fun.id))
    in
    samples := { at = !at; covered = !covered; redundant = !redundant; alive } :: !samples;
    at := !at + sample_every
  done;
  List.rev !samples

let lifetime t =
  let crash_times = Trace.crash_times (Engine.trace t.engine) in
  let area_death a =
    let deaths =
      List.map (fun pid -> Types.Pidmap.find_opt pid crash_times) (nodes_of_area t a)
    in
    if List.for_all Option.is_some deaths then
      Some (List.fold_left (fun acc d -> max acc (Option.get d)) 0 deaths)
    else None
  in
  List.init t.config.areas Fun.id
  |> List.filter_map area_death
  |> function
  | [] -> None
  | l -> Some (List.fold_left min max_int l)
