lib/wsn/model.mli: Dsim
