lib/wsn/model.ml: Array Component Detectors Dining Dsim Engine Fun Graphs List Option Trace Types
