(** Wireless-sensor-network duty-cycle scheduling (Section 2).

    A surveillance field is divided into coverage areas; each area has a set
    of redundant battery-powered nodes. A node on duty covers its area and
    drains energy; when the battery is empty the node crashes (power
    depletion — every node is eventually faulty, as the paper stresses).
    Nodes that volunteer for duty contend for the area's coverage resource:
    being on duty = eating, so same-area nodes are dining neighbors.

    Two schedulers are compared:
    - [Dining]: the WF-◇WX scheduler over a ◇P heartbeat detector. Finitely
      many scheduling mistakes put redundant nodes on duty together (wasted
      energy, but only a performance cost — exactly the paper's argument for
      ◇WX here); wait-freedom keeps a volunteer on duty despite crashes, so
      the network lifetime approaches [nodes_per_area x initial_energy].
    - [All_on]: every node is always on duty — full redundancy, maximal
      coverage, and a lifetime of one battery. *)

type config = {
  areas : int;
  nodes_per_area : int;
  initial_energy : int;  (** Duty ticks a battery sustains. *)
  duty_ticks : int;  (** Length of one duty session. *)
  rest_ticks : int;  (** Pause before volunteering again. *)
}

val default_config : config

type scheduler = Dining | All_on

type t = {
  engine : Dsim.Engine.t;
  config : config;
  scheduler : scheduler;
  instance : string;
  node_count : int;
  energy : int array;  (** Remaining energy per node (live view). *)
}

val area_of : t -> Dsim.Types.pid -> int
val nodes_of_area : t -> int -> Dsim.Types.pid list

val setup : engine:Dsim.Engine.t -> ?config:config -> scheduler:scheduler -> unit -> t
(** Registers all node components (detector + scheduler + volunteer client)
    and installs the energy-drain hook. The engine must have been created
    with [n = areas * nodes_per_area]. *)

type sample = {
  at : Dsim.Types.time;
  covered : int;  (** Areas with >= 1 node on duty. *)
  redundant : int;  (** Areas with >= 2 nodes on duty (wasted energy). *)
  alive : int;  (** Live nodes. *)
}

val coverage_series : t -> sample_every:int -> horizon:Dsim.Types.time -> sample list
(** Post-hoc sampling of the run's trace. *)

val lifetime : t -> Dsim.Types.time option
(** First instant an area lost its last live node ([None] if the network
    outlived the run). *)
