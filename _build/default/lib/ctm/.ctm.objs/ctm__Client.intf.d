lib/ctm/client.mli: Dining Dsim
