lib/ctm/store.mli: Dsim
