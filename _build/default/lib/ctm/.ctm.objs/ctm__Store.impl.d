lib/ctm/store.ml: Component Context Dsim Msg
