lib/ctm/client.ml: Component Context Dining Dsim Store Types
