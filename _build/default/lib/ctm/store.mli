(** A versioned shared object served by one process — the substrate for the
    obstruction-free transactions of Sections 2–3.

    The store holds a single integer value with a version counter. Clients
    read [(version, value)], compute, and attempt a compare-and-swap
    conditioned on the version. A transaction that runs without interleaved
    committers always succeeds (obstruction freedom); overlapping
    transactions abort each other — the livelock that contention managers
    exist to break. *)

val tag : string
(** Routing tag of the store component (["ctm-store"]). *)

val client_tag : string
(** Routing tag store replies are sent to (["ctm-client"]). *)

type stats = {
  mutable reads : int;
  mutable cas_ok : int;
  mutable cas_fail : int;
}

val component : Dsim.Context.t -> unit -> Dsim.Component.t * stats
(** The store process's component. *)

(** Client-side wire messages (exposed so the client module and tests can
    speak the protocol). *)
type Dsim.Msg.t +=
  | Read_req
  | Read_resp of { version : int; value : int }
  | Cas_req of { expect : int; value : int }
  | Cas_resp of { ok : bool; version : int }
