(** Transactional client, with or without a contention manager.

    Each transaction reads the store, "computes" for [compute_ticks], and
    tries to commit with a version-checked compare-and-swap; a failed swap
    is an abort and the transaction restarts. Without a contention manager
    this is the raw obstruction-free object: under contention most swaps
    fail. With one ([cm], any dining handle on a clique of the clients),
    the client acquires its critical section before running the transaction
    and keeps it until commit — during the manager's mistake-prone prefix
    concurrent transactions (and aborts) remain possible, but the eventual
    exclusion suffix makes every transaction run in isolation and succeed:
    obstruction freedom is boosted to wait freedom. *)

type stats = {
  mutable attempts : int;
  mutable commits : int;
  mutable aborts : int;
  mutable commit_times : Dsim.Types.time list;  (** Reverse-chronological. *)
}

val component :
  Dsim.Context.t ->
  store:Dsim.Types.pid ->
  ?cm:Dining.Spec.handle ->
  ?compute_ticks:int ->
  ?transactions:int ->
  unit ->
  Dsim.Component.t * stats
(** [transactions] bounds the number of commits to perform (default:
    unbounded). *)
