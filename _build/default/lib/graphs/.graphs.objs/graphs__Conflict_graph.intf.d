lib/graphs/conflict_graph.mli: Dsim
