lib/graphs/conflict_graph.ml: Array Dsim List Prng Queue Types
