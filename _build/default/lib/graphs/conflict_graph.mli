(** Undirected conflict graphs for dining instances.

    A dining instance is modelled by an undirected conflict graph
    [DP = (Pi, E)] (Section 4): vertices are diners, and an edge [(p, q)]
    represents the set of shared resources contended for by neighbors [p]
    and [q]. *)

type t

val of_edges : n:int -> (Dsim.Types.pid * Dsim.Types.pid) list -> t
(** [of_edges ~n edges] builds a graph over pids [0 .. n-1]. Self-loops and
    out-of-range endpoints are rejected; duplicate edges are merged. *)

val n : t -> int
val neighbors : t -> Dsim.Types.pid -> Dsim.Types.Pidset.t
val are_neighbors : t -> Dsim.Types.pid -> Dsim.Types.pid -> bool
val edges : t -> (Dsim.Types.pid * Dsim.Types.pid) list
(** Each undirected edge once, as [(min, max)] pairs, sorted. *)

val degree : t -> Dsim.Types.pid -> int
val max_degree : t -> int

val distance : t -> Dsim.Types.pid -> Dsim.Types.pid -> int option
(** Length of a shortest path between two vertices ([None] if
    disconnected; [Some 0] for a vertex and itself). *)

(** {1 Generators} *)

val empty : n:int -> t
val pair : unit -> t
(** Two diners, one edge — the shape of every DX_i in the reduction. *)

val ring : n:int -> t
val clique : n:int -> t
val star : n:int -> t
(** Vertex 0 is the hub. *)

val path : n:int -> t
val grid : rows:int -> cols:int -> t
val random : n:int -> p:float -> rng:Dsim.Prng.t -> t
(** Erdos–Renyi G(n, p). *)
