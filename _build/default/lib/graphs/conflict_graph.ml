open Dsim

type t = { size : int; adj : Types.Pidset.t array }

let of_edges ~n edges =
  if n <= 0 then invalid_arg "Conflict_graph.of_edges: n must be positive";
  let adj = Array.make n Types.Pidset.empty in
  List.iter
    (fun (a, b) ->
      if a = b then invalid_arg "Conflict_graph.of_edges: self-loop";
      if a < 0 || a >= n || b < 0 || b >= n then
        invalid_arg "Conflict_graph.of_edges: endpoint out of range";
      adj.(a) <- Types.Pidset.add b adj.(a);
      adj.(b) <- Types.Pidset.add a adj.(b))
    edges;
  { size = n; adj }

let n t = t.size
let neighbors t p = t.adj.(p)
let are_neighbors t p q = Types.Pidset.mem q t.adj.(p)

let edges t =
  let acc = ref [] in
  for p = t.size - 1 downto 0 do
    Types.Pidset.iter (fun q -> if p < q then acc := (p, q) :: !acc) t.adj.(p)
  done;
  List.sort compare !acc

let degree t p = Types.Pidset.cardinal t.adj.(p)

let max_degree t =
  let best = ref 0 in
  for p = 0 to t.size - 1 do
    best := max !best (degree t p)
  done;
  !best

let empty ~n = of_edges ~n []

let pair () = of_edges ~n:2 [ (0, 1) ]

let ring ~n =
  if n < 3 then invalid_arg "Conflict_graph.ring: need n >= 3";
  of_edges ~n (List.init n (fun i -> (i, (i + 1) mod n)))

let clique ~n =
  let acc = ref [] in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      acc := (a, b) :: !acc
    done
  done;
  of_edges ~n !acc

let star ~n =
  if n < 2 then invalid_arg "Conflict_graph.star: need n >= 2";
  of_edges ~n (List.init (n - 1) (fun i -> (0, i + 1)))

let path ~n =
  if n < 2 then invalid_arg "Conflict_graph.path: need n >= 2";
  of_edges ~n (List.init (n - 1) (fun i -> (i, i + 1)))

let grid ~rows ~cols =
  if rows < 1 || cols < 1 then invalid_arg "Conflict_graph.grid: bad dimensions";
  let id r c = (r * cols) + c in
  let acc = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then acc := (id r c, id r (c + 1)) :: !acc;
      if r + 1 < rows then acc := (id r c, id (r + 1) c) :: !acc
    done
  done;
  of_edges ~n:(rows * cols) !acc

let random ~n ~p ~rng =
  let acc = ref [] in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      if Prng.chance rng ~p then acc := (a, b) :: !acc
    done
  done;
  of_edges ~n !acc

let distance t a b =
  if a = b then Some 0
  else begin
    let dist = Array.make t.size (-1) in
    dist.(a) <- 0;
    let queue = Queue.create () in
    Queue.add a queue;
    let found = ref None in
    while !found = None && not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      Types.Pidset.iter
        (fun v ->
          if dist.(v) < 0 then begin
            dist.(v) <- dist.(u) + 1;
            if v = b then found := Some dist.(v) else Queue.add v queue
          end)
        t.adj.(u)
    done;
    !found
  end
