lib/core/scenario.mli: Adversary Detectors Dining Dsim Engine Graphs Reduction Types
