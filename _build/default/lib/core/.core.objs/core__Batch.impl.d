lib/core/batch.ml: Array Format Int64 List Printf
