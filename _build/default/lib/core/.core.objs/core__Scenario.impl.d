lib/core/scenario.ml: Adversary Array Detectors Dining Dsim Engine Fun Graphs List Reduction Types
