lib/core/certify.ml: Adversary Array Batch Context Detectors Dining Dsim Engine Format Fun Graphs List Printf Reduction Scenario String Types
