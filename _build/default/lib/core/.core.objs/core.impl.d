lib/core/core.ml: Agreement Batch Certify Ctm Detectors Dining Dsim Graphs Reduction Scenario Wsn
