lib/core/certify.mli: Dsim Format Reduction
