module Stats = struct
  type t = {
    count : int;
    mean : float;
    stddev : float;
    min_ : float;
    max_ : float;
    median : float;
  }

  let of_floats xs =
    if xs = [] then invalid_arg "Batch.Stats.of_floats: empty";
    let n = List.length xs in
    let nf = float_of_int n in
    let mean = List.fold_left ( +. ) 0.0 xs /. nf in
    let var =
      List.fold_left (fun acc x -> acc +. ((x -. mean) *. (x -. mean))) 0.0 xs /. nf
    in
    let sorted = List.sort compare xs in
    let median =
      let a = Array.of_list sorted in
      if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0
    in
    {
      count = n;
      mean;
      stddev = sqrt var;
      min_ = List.hd sorted;
      max_ = List.nth sorted (n - 1);
      median;
    }

  let of_ints xs = of_floats (List.map float_of_int xs)

  let pp fmt t =
    Format.fprintf fmt "n=%d mean=%.1f sd=%.1f min=%.1f med=%.1f max=%.1f" t.count t.mean
      t.stddev t.min_ t.median t.max_

  let summary t = Printf.sprintf "%.0f±%.0f [%.0f,%.0f]" t.mean t.stddev t.min_ t.max_
end

let seeds ?(base = 42) n = List.init n (fun i -> Int64.of_int (base + (i * 7919)))

let sweep ~seeds f = List.map (fun seed -> f ~seed) seeds

let sweep_stats ~seeds f = Stats.of_floats (sweep ~seeds f)

let count_where ~seeds f =
  let hits = List.length (List.filter (fun seed -> f ~seed) seeds) in
  (hits, List.length seeds)
