open Dsim

type candidate = {
  name : string;
  prepare : Engine.t -> Reduction.Pair.dining_factory;
}

(* ------------------------------------------------------------------ *)
(* Built-in candidates *)

let heartbeat_suspects engine =
  Scenario.evp_suspects engine ~n:(Engine.n engine) ~windows:[]

let wf_ewx_candidate =
  {
    name = "wf-evp (this repo's WF-◇WX box)";
    prepare =
      (fun engine ->
        let suspects = heartbeat_suspects engine in
        Reduction.Pair.wf_ewx_factory ~n:(Engine.n engine) ~suspects);
  }

let kfair_candidate =
  {
    name = "k-fair timestamped scheduler";
    prepare =
      (fun engine ->
        let suspects = heartbeat_suspects engine in
        fun ctx ~instance ~participants ->
          let p, q = participants in
          let graph = Graphs.Conflict_graph.of_edges ~n:(Engine.n engine) [ (p, q) ] in
          let c, h, _ =
            Dining.Kfair.component ctx ~instance ~graph
              ~suspects:(suspects ctx.Context.self)
              ()
          in
          (c, h));
  }

let ftme_candidate =
  {
    name = "FTME (perpetual WX over trusting oracle)";
    prepare =
      (fun engine ->
        let n = Engine.n engine in
        let fns = Array.make n (fun () -> Types.Pidset.empty) in
        for pid = 0 to n - 1 do
          let ctx = Engine.ctx engine pid in
          let comp, oracle =
            Detectors.Ground_truth.trusting ctx ~detection_delay:25
              ~peers:(List.init n Fun.id) ()
          in
          Engine.register engine pid comp;
          fns.(pid) <- (fun () -> oracle.Detectors.Oracle.suspects ())
        done;
        Reduction.Pair.ftme_factory ~suspects:(fun pid -> fns.(pid)));
  }

let no_override_candidate =
  {
    name = "no-detector dining (negative control)";
    prepare =
      (fun engine ->
        fun ctx ~instance ~participants ->
          let p, q = participants in
          let graph = Graphs.Conflict_graph.of_edges ~n:(Engine.n engine) [ (p, q) ] in
          let comp, handle, _ = Dining.Hygienic.component ctx ~instance ~graph () in
          ignore (p, q);
          (comp, handle));
  }

(* ------------------------------------------------------------------ *)
(* Checks *)

type check = {
  label : string;
  passed : bool;
  detail : string;
}

type report = {
  candidate_name : string;
  checks : check list;
  certified : bool;
}

(* Box-level behaviour on one two-diner instance with greedy clients. *)
let box_checks candidate ~seed ~horizon =
  let engine = Engine.create ~seed ~n:2 ~adversary:(Adversary.partial_sync ~gst:500 ()) () in
  let factory = candidate.prepare engine in
  let graph = Graphs.Conflict_graph.pair () in
  for pid = 0 to 1 do
    let ctx = Engine.ctx engine pid in
    let comp, handle = factory ctx ~instance:"cert" ~participants:(0, 1) in
    Engine.register engine pid comp;
    Engine.register engine pid (Dining.Clients.greedy ctx ~handle ())
  done;
  Engine.schedule_crash engine 1 ~at:(horizon / 4);
  Engine.run engine ~until:horizon;
  let trace = Engine.trace engine in
  let wf =
    Dining.Monitor.wait_freedom trace ~instance:"cert" ~n:2 ~horizon ~slack:(horizon / 4)
  in
  let wx =
    Dining.Monitor.eventual_weak_exclusion trace ~instance:"cert" ~graph ~horizon
      ~suffix_from:(horizon / 2)
  in
  let meals = Dining.Monitor.eat_count trace ~instance:"cert" ~pid:0 in
  let ex =
    Dining.Monitor.exiting_finite trace ~instance:"cert" ~n:2 ~horizon ~slack:(horizon / 4)
  in
  [
    {
      label = Printf.sprintf "exiting is finite (seed %Ld)" seed;
      passed = ex.Detectors.Properties.holds;
      detail =
        (if ex.Detectors.Properties.holds then "all relinquishments completed"
         else String.concat "; " ex.Detectors.Properties.details);
    };
    {
      label = Printf.sprintf "wait-freedom past a crash (seed %Ld)" seed;
      passed = wf.Detectors.Properties.holds && meals > 10;
      detail =
        (if wf.Detectors.Properties.holds then Printf.sprintf "survivor ate %d times" meals
         else String.concat "; " wf.Detectors.Properties.details);
    };
    {
      label = Printf.sprintf "eventual weak exclusion (seed %Ld)" seed;
      passed = wx.Detectors.Properties.holds;
      detail =
        (if wx.Detectors.Properties.holds then "no violation in the suffix"
         else String.concat "; " wx.Detectors.Properties.details);
    };
  ]

(* Reduction-level behaviour: extract over the box and check the theorems. *)
let extraction_checks candidate ~seed ~horizon =
  let run_extraction ~crash =
    let engine =
      Engine.create ~seed ~n:2 ~adversary:(Adversary.partial_sync ~gst:500 ()) ()
    in
    let factory = candidate.prepare engine in
    let extract = Reduction.Extract.create ~engine ~dining:factory ~members:[ 0; 1 ] () in
    let onlines =
      List.map
        (fun pair -> (pair, Reduction.Lemmas.install_online ~engine ~pair))
        extract.Reduction.Extract.pairs
    in
    if crash then Engine.schedule_crash engine 1 ~at:(horizon / 4);
    Engine.run engine ~until:horizon;
    (engine, extract, onlines)
  in
  let engine, _, onlines = run_extraction ~crash:false in
  let accuracy =
    Detectors.Properties.eventual_strong_accuracy (Engine.trace engine) ~detector:"extracted"
      ~n:2 ~initially_suspected:true
  in
  let lemma_failures =
    List.concat_map
      (fun (pair, online) ->
        Reduction.Lemmas.online_reports online
        @ Reduction.Lemmas.trace_reports ~engine ~pair
        |> List.filter (fun r -> not (Reduction.Lemmas.ok r))
        |> List.map (fun r -> pair.Reduction.Pair.name ^ ":" ^ r.Reduction.Lemmas.lemma))
      onlines
  in
  let engine2, _, _ = run_extraction ~crash:true in
  let completeness =
    Detectors.Properties.strong_completeness (Engine.trace engine2) ~detector:"extracted"
      ~n:2 ~initially_suspected:true
  in
  [
    {
      label = Printf.sprintf "Theorem 2: extracted accuracy (seed %Ld)" seed;
      passed = accuracy.Detectors.Properties.holds;
      detail =
        (if accuracy.Detectors.Properties.holds then "converged to trust"
         else String.concat "; " accuracy.Detectors.Properties.details);
    };
    {
      label = Printf.sprintf "Lemmas 1-12 monitors (seed %Ld)" seed;
      passed = lemma_failures = [];
      detail =
        (if lemma_failures = [] then "all invariants held"
         else "violated: " ^ String.concat ", " lemma_failures);
    };
    {
      label = Printf.sprintf "Theorem 1: extracted completeness (seed %Ld)" seed;
      passed = completeness.Detectors.Properties.holds;
      detail =
        (if completeness.Detectors.Properties.holds then "crash permanently suspected"
         else String.concat "; " completeness.Detectors.Properties.details);
    };
  ]

let run ?(seeds = Batch.seeds 3) ?(horizon = 20000) candidate =
  let checks =
    List.concat_map
      (fun seed -> box_checks candidate ~seed ~horizon @ extraction_checks candidate ~seed ~horizon)
      seeds
  in
  {
    candidate_name = candidate.name;
    checks;
    certified = List.for_all (fun c -> c.passed) checks;
  }

let pp_report fmt r =
  Format.fprintf fmt "certification of %s:@." r.candidate_name;
  List.iter
    (fun c ->
      Format.fprintf fmt "  [%s] %-45s %s@." (if c.passed then "pass" else "FAIL") c.label
        c.detail)
    r.checks;
  Format.fprintf fmt "verdict: %s@."
    (if r.certified then "CERTIFIED — behaves as a WF-◇WX box; ◇P extracted"
     else "NOT certified")
