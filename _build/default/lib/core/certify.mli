(** Certification harness for candidate dining black boxes.

    The paper's theorem is universally quantified: ◇P is extractable from
    {e any} solution to WF-◇WX. This module turns that into a tool for
    downstream users: plug in your own dining implementation and get an
    empirical scorecard — does it behave as a WF-◇WX box (wait-freedom
    with crashes, an exclusive suffix), and does the reduction actually
    squeeze a working ◇P out of it (Theorems 1 and 2, plus the Lemma 1–12
    run-time monitors)?

    A certificate from finitely many schedules is evidence, not a proof —
    but a {e failed} check is a definite counterexample, with the seed and
    the violated property in the report. *)

type candidate = {
  name : string;
  prepare : Dsim.Engine.t -> Reduction.Pair.dining_factory;
      (** Called once per engine; register any per-process auxiliaries
          (e.g. your failure-detector modules) here and return the factory
          the harness will use to instantiate two-diner instances. *)
}

(** Built-in candidates (also serve as wiring examples). *)

val wf_ewx_candidate : candidate
val kfair_candidate : candidate
val ftme_candidate : candidate

val no_override_candidate : candidate
(** Deliberately broken: dining without a failure detector. Fails the
    wait-freedom check — kept as the harness's own negative control. *)

type check = {
  label : string;
  passed : bool;
  detail : string;
}

type report = {
  candidate_name : string;
  checks : check list;
  certified : bool;  (** All checks passed. *)
}

val run : ?seeds:int64 list -> ?horizon:int -> candidate -> report
(** Default: 3 seeds, horizon 20000 per scenario. Scenarios per seed:
    box-level wait-freedom past a crash and eventual exclusion on a pair
    instance, then a full extraction with correct processes (accuracy +
    lemmas) and with a crashed subject (completeness). *)

val pp_report : Format.formatter -> report -> unit
