open Dsim

type mistake_windows = (Types.pid * Detectors.Injected.window list) list

let evp_suspects engine ~n ~windows =
  let fns = Array.make n (fun () -> Types.Pidset.empty) in
  for pid = 0 to n - 1 do
    let ctx = Engine.ctx engine pid in
    let comp, base = Detectors.Heartbeat.component ctx ~peers:(List.init n Fun.id) () in
    Engine.register engine pid comp;
    let oracle =
      match List.assoc_opt pid windows with
      | None -> base
      | Some ws ->
          let icomp, wrapped = Detectors.Injected.wrap ctx ~base ~windows:ws in
          Engine.register engine pid icomp;
          wrapped
    in
    fns.(pid) <- (fun () -> oracle.Detectors.Oracle.suspects ())
  done;
  fun pid -> fns.(pid)

type dining_run = {
  engine : Engine.t;
  graph : Graphs.Conflict_graph.t;
  instance : string;
  handles : Dining.Spec.handle array;
}

let wf_dining ?(seed = 1L) ?(adversary = Adversary.partial_sync ()) ?(instance = "dx")
    ?(eat_ticks = 3) ?(think_ticks = 2) ?(windows = []) ~graph () =
  let n = Graphs.Conflict_graph.n graph in
  let engine = Engine.create ~seed ~n ~adversary () in
  let suspects = evp_suspects engine ~n ~windows in
  let handles =
    Array.init n (fun pid ->
        let ctx = Engine.ctx engine pid in
        let comp, handle, _ =
          Dining.Wf_ewx.component ctx ~instance ~graph ~suspects:(suspects pid) ()
        in
        Engine.register engine pid comp;
        Engine.register engine pid (Dining.Clients.greedy ctx ~handle ~eat_ticks ~think_ticks ());
        handle)
  in
  { engine; graph; instance; handles }

type extraction_run = {
  engine : Engine.t;
  extract : Reduction.Extract.t;
  onlines : (Reduction.Pair.t * Reduction.Lemmas.online) list;
}

let monitors engine extract enabled =
  if not enabled then []
  else
    List.map
      (fun pair -> (pair, Reduction.Lemmas.install_online ~engine ~pair))
      extract.Reduction.Extract.pairs

let wf_extraction ?(seed = 7L) ?(adversary = Adversary.partial_sync ~gst:500 ())
    ?(windows = []) ?(with_lemma_monitors = true) ~n () =
  let engine = Engine.create ~seed ~n ~adversary () in
  let suspects = evp_suspects engine ~n ~windows in
  let dining = Reduction.Pair.wf_ewx_factory ~n ~suspects in
  let extract = Reduction.Extract.create ~engine ~dining ~members:(List.init n Fun.id) () in
  { engine; extract; onlines = monitors engine extract with_lemma_monitors }

let ftme_extraction ?(seed = 9L) ?(adversary = Adversary.async_uniform ())
    ?(detection_delay = 25) ~n () =
  let engine = Engine.create ~seed ~n ~adversary () in
  let fns = Array.make n (fun () -> Types.Pidset.empty) in
  for pid = 0 to n - 1 do
    let ctx = Engine.ctx engine pid in
    let comp, oracle =
      Detectors.Ground_truth.trusting ctx ~detection_delay ~peers:(List.init n Fun.id) ()
    in
    Engine.register engine pid comp;
    fns.(pid) <- (fun () -> oracle.Detectors.Oracle.suspects ())
  done;
  let dining = Reduction.Pair.ftme_factory ~suspects:(fun pid -> fns.(pid)) in
  let extract = Reduction.Extract.create ~engine ~dining ~members:(List.init n Fun.id) () in
  { engine; extract; onlines = [] }

let vulnerability ?(seed = 43L) ?(adversary = Adversary.partial_sync ~gst:500 ())
    ?(mistake_until = 300) ~mode () =
  let n = 2 in
  let engine = Engine.create ~seed ~n ~adversary () in
  let windows =
    [ (0, [ { Detectors.Injected.from_ = 0; until = mistake_until; target = 1 } ]) ]
  in
  let suspects = evp_suspects engine ~n ~windows in
  let dining = Reduction.Pair.wf_ewx_factory ~n ~suspects in
  match mode with
  | `Flawed_cm ->
      let cm = Reduction.Flawed_cm.create ~engine ~dining ~watcher:1 ~subject:0 () in
      (engine, cm.Reduction.Flawed_cm.suspected)
  | `Our_reduction ->
      let pair = Reduction.Pair.create ~engine ~dining ~watcher:1 ~subject:0 () in
      (engine, pair.Reduction.Pair.suspected)
