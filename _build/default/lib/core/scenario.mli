(** Canned experiment scenarios.

    One-call builders for the set-ups used throughout the test-suite,
    benches, examples and the CLI: a WF-◇WX dining deployment, the full
    ◇P extraction, the Section 9 T extraction, and the Section 3
    vulnerability scenario. All are deterministic in [seed]. *)

open Dsim

type mistake_windows = (Types.pid * Detectors.Injected.window list) list
(** Per-process adversarial false-suspicion windows injected into the
    {e underlying} dining-layer ◇P modules. *)

val evp_suspects :
  Engine.t -> n:int -> windows:mistake_windows -> Types.pid -> unit -> Types.Pidset.t
(** Deploy one heartbeat ◇P module per process (wrapped with injected
    mistakes where configured) and return the per-process query functions. *)

(** A dining deployment: one WF-◇WX diner per process plus greedy clients. *)
type dining_run = {
  engine : Engine.t;
  graph : Graphs.Conflict_graph.t;
  instance : string;
  handles : Dining.Spec.handle array;
}

val wf_dining :
  ?seed:int64 ->
  ?adversary:Adversary.t ->
  ?instance:string ->
  ?eat_ticks:int ->
  ?think_ticks:int ->
  ?windows:mistake_windows ->
  graph:Graphs.Conflict_graph.t ->
  unit ->
  dining_run

(** A full reduction deployment. *)
type extraction_run = {
  engine : Engine.t;
  extract : Reduction.Extract.t;
  onlines : (Reduction.Pair.t * Reduction.Lemmas.online) list;
}

val wf_extraction :
  ?seed:int64 ->
  ?adversary:Adversary.t ->
  ?windows:mistake_windows ->
  ?with_lemma_monitors:bool ->
  n:int ->
  unit ->
  extraction_run
(** ◇P extraction from the WF-◇WX black box (heartbeat ◇P underneath). *)

val ftme_extraction :
  ?seed:int64 ->
  ?adversary:Adversary.t ->
  ?detection_delay:int ->
  n:int ->
  unit ->
  extraction_run
(** T extraction from the perpetual-WX black box (trusting oracle
    underneath) — the Section 9 set-up. *)

val vulnerability :
  ?seed:int64 ->
  ?adversary:Adversary.t ->
  ?mistake_until:Types.time ->
  mode:[ `Flawed_cm | `Our_reduction ] ->
  unit ->
  Engine.t * (unit -> bool)
(** The Section 3 scenario on two processes: the subject (p0, which holds
    the edge's request token) falsely suspects the watcher (p1, which holds
    the fork) until [mistake_until], enters its critical section on the
    virtual fork during that prefix, and — as the [8] construction's
    subject — never exits. Returns the engine and the extracted
    "suspected?" output at the watcher. The flawed construction flips it
    forever; [`Our_reduction] converges. *)
