(** Multi-seed sweeps and summary statistics for experiments.

    Finite simulations witness one schedule per seed; the experiment
    harness therefore sweeps seeds and reports aggregates. *)

module Stats : sig
  type t = {
    count : int;
    mean : float;
    stddev : float;
    min_ : float;
    max_ : float;
    median : float;
  }

  val of_floats : float list -> t
  (** Raises [Invalid_argument] on the empty list. *)

  val of_ints : int list -> t
  val pp : Format.formatter -> t -> unit
  val summary : t -> string
  (** ["mean±stddev [min,max]"] with sensible rounding. *)
end

val seeds : ?base:int -> int -> int64 list
(** [seeds n] is [n] distinct deterministic seeds. *)

val sweep : seeds:int64 list -> (seed:int64 -> 'a) -> 'a list
(** Run the experiment body once per seed, collecting results. *)

val sweep_stats : seeds:int64 list -> (seed:int64 -> float) -> Stats.t

val count_where : seeds:int64 list -> (seed:int64 -> bool) -> int * int
(** [(hits, total)]. *)
