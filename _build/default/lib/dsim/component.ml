type action = {
  aname : string;
  guard : unit -> bool;
  body : unit -> unit;
}

type t = {
  cname : string;
  actions : action array;
  on_receive : src:Types.pid -> Msg.t -> unit;
}

let action aname ~guard ~body = { aname; guard; body }

let make ~name ?(actions = []) ?(on_receive = fun ~src:_ _ -> ()) () =
  { cname = name; actions = Array.of_list actions; on_receive }
