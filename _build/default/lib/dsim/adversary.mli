(** Run adversaries: message delays and step schedules.

    The paper's system model is asynchronous — message delay and relative
    process speed are unbounded but finite, channels are reliable and
    non-FIFO, and correct processes take infinitely many steps. A finite
    simulation can only exhibit bounded behaviours, so an adversary is a
    *family of knobs* over those bounds; the interesting regimes are:

    - {!synchronous}: lock-step, delay 1 — the friendliest schedule.
    - {!async_uniform}: random bounded delays and random step skipping with
      a weak-fairness backstop.
    - {!partial_sync}: arbitrary (large, reordering) delays before an
      unknown global stabilisation time [gst], bounded by [delta] after —
      the classic model in which ◇P is implementable.
    - {!bursty}: alternating calm/storm delay phases before [gst]; stresses
      timeout adaptation. *)

type t = {
  name : string;
  delay : Prng.t -> now:Types.time -> src:Types.pid -> dst:Types.pid -> int;
      (** Delivery delay (>= 1 ticks) assigned when a message is sent. *)
  steps : Prng.t -> now:Types.time -> Types.pid -> bool;
      (** Whether this live process is offered a step this tick. The engine
          additionally forces a step after [fairness_bound] consecutive
          skipped ticks, so correct processes always take infinitely many
          steps. *)
  fairness_bound : int;
}

val synchronous : unit -> t

val async_uniform : ?max_delay:int -> ?step_prob:float -> ?fairness_bound:int -> unit -> t

val partial_sync :
  ?gst:Types.time ->
  ?pre_max_delay:int ->
  ?delta:int ->
  ?pre_step_prob:float ->
  ?fairness_bound:int ->
  unit ->
  t
(** Before [gst]: delays uniform in [1, pre_max_delay], steps offered with
    probability [pre_step_prob]. From [gst] on: delays uniform in
    [1, delta], every live process steps every tick. *)

val handicap : slow:Types.pid list -> factor:float -> t -> t
(** Derive an adversary where the listed processes are offered steps only
    with probability [factor] of the base schedule (their weak-fairness
    backstop is stretched by [1/factor] too, so they stay correct — just
    arbitrarily slow, which asynchrony permits). *)

val bursty :
  ?gst:Types.time ->
  ?calm:int ->
  ?storm:int ->
  ?storm_delay:int ->
  ?delta:int ->
  ?fairness_bound:int ->
  unit ->
  t
(** Before [gst], time alternates between [calm]-tick windows (delay 1-3)
    and [storm]-tick windows (delay up to [storm_delay]); after [gst],
    behaves like {!partial_sync}. *)
