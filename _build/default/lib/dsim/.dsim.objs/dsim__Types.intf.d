lib/dsim/types.mli: Format Map Set
