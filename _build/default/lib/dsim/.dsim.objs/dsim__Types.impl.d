lib/dsim/types.ml: Format Int List Map Set String
