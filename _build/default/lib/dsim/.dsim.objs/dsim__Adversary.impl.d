lib/dsim/adversary.ml: List Printf Prng Types
