lib/dsim/adversary.mli: Prng Types
