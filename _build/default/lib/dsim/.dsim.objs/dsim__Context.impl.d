lib/dsim/context.ml: Msg Prng Trace Types
