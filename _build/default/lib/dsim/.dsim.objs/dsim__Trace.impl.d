lib/dsim/trace.ml: Array Buffer Format Fun List Printf String Types
