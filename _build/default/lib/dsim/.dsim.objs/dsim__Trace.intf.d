lib/dsim/trace.mli: Format Types
