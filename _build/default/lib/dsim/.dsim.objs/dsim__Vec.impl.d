lib/dsim/vec.ml: Array
