lib/dsim/component.mli: Msg Types
