lib/dsim/prng.mli:
