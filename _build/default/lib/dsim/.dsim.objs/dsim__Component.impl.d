lib/dsim/component.ml: Array Msg Types
