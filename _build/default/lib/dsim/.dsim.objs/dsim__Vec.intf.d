lib/dsim/vec.mli:
