lib/dsim/engine.mli: Adversary Component Context Msg Prng Trace Types
