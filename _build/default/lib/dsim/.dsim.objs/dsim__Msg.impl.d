lib/dsim/msg.ml:
