lib/dsim/engine.ml: Adversary Array Component Context Fun Hashtbl List Msg Option Printf Prng String Trace Types Vec
