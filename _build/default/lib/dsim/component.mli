(** Guarded-command action systems.

    Protocols in the paper are written as action systems ("Action W_h",
    "Action S_p", ...): sets of atomic actions, each with a guard and a body,
    executed under interleaving semantics with weak fairness, plus
    message-triggered actions ("upon receive ...").

    A [Component.t] is one such action system. Several components can be
    registered on the same process — this models the paper's logical threads
    (e.g. witness threads [p.w_0] and [p.w_1]) that share a single stream of
    physical execution: the engine interleaves their actions within the
    process's atomic steps, and their closures may share mutable state. *)

type action = private {
  aname : string;
  guard : unit -> bool;
  body : unit -> unit;
}

type t = private {
  cname : string;  (** Routing tag; unique among the components of a process. *)
  actions : action array;
  on_receive : src:Types.pid -> Msg.t -> unit;
}

val action : string -> guard:(unit -> bool) -> body:(unit -> unit) -> action

val make :
  name:string ->
  ?actions:action list ->
  ?on_receive:(src:Types.pid -> Msg.t -> unit) ->
  unit ->
  t
(** [make ~name ()] builds a component. Omitted [on_receive] ignores
    messages; omitted [actions] means the component is purely reactive. *)
