(** Minimal growable array (OCaml 5.1 has no [Dynarray]). *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val add_last : 'a t -> 'a -> unit
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val remove_last : 'a t -> unit
val clear : 'a t -> unit
val iter : ('a -> unit) -> 'a t -> unit
val to_list : 'a t -> 'a list
