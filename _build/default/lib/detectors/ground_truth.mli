(** Oracle implementations backed by the global fault pattern.

    Some detector classes used by this reproduction (the perfect detector P
    and the trusting detector T) are *not implementable* in asynchronous
    systems — indeed proving exactly that kind of boundary is the point of
    the paper. Where an algorithm (e.g. the FTME substrate of Section 9)
    assumes such an oracle, we model it directly from the simulator's fault
    pattern via the omniscient [is_live] capability. This is the standard
    move when simulating oracle-augmented systems: the oracle's *interface
    guarantees* are what the algorithm relies on, and these implementations
    satisfy them by construction (verified by {!Properties} on every run). *)

val perfect :
  Dsim.Context.t ->
  ?detector_name:string ->
  peers:Dsim.Types.pid list ->
  unit ->
  Dsim.Component.t * Oracle.t
(** P: suspects exactly the crashed processes, immediately. Strong
    completeness + perpetual strong accuracy. *)

val strong :
  Dsim.Context.t ->
  ?detector_name:string ->
  ?anchor:Dsim.Types.pid ->
  peers:Dsim.Types.pid list ->
  unit ->
  Dsim.Component.t * Oracle.t
(** S: strong completeness + perpetual weak accuracy — some correct process
    ([anchor], default the lowest peer, which must then be correct in the
    run for the oracle to meet its spec) is never suspected by anyone;
    everyone else is suspected once crashed. Used with {!trusting} to model
    the (T + S) composition of [4]. *)

val trusting :
  Dsim.Context.t ->
  ?detector_name:string ->
  ?detection_delay:int ->
  peers:Dsim.Types.pid list ->
  unit ->
  Dsim.Component.t * Oracle.t
(** T: initially trusts everyone; starts suspecting a process only once it
    has been crashed for [detection_delay] ticks, and then permanently.
    Strong completeness + trusting accuracy (a trust is revoked only if the
    process really crashed). The delay models the realistic lag between a
    crash and its detection. *)
