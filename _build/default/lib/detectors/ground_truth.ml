open Dsim

(* Both oracles poll the fault pattern from a guarded action so that
   suspicion flips appear in the trace at the tick they become visible. *)

type peer_obs = {
  peer : Types.pid;
  mutable dead_since : Types.time option;
  mutable suspected : bool;
}

let make_polling (ctx : Context.t) ~detector_name ~comp_name ~peers ~should_suspect =
  let self = ctx.Context.self in
  let states =
    List.map
      (fun peer -> { peer; dead_since = None; suspected = false })
      (List.filter (fun q -> q <> self) peers)
  in
  let observe st =
    if st.dead_since = None && not (ctx.Context.is_live st.peer) then
      st.dead_since <- Some (ctx.Context.now ())
  in
  let pending st =
    observe st;
    (not st.suspected) && should_suspect ~now:(ctx.Context.now ()) ~dead_since:st.dead_since
  in
  let poll =
    Component.action "oracle-poll"
      ~guard:(fun () -> List.exists pending states)
      ~body:(fun () ->
        List.iter
          (fun st ->
            if pending st then begin
              st.suspected <- true;
              ctx.Context.log
                (Trace.Suspect { detector = detector_name; owner = self; target = st.peer })
            end)
          states)
  in
  let comp = Component.make ~name:comp_name ~actions:[ poll ] () in
  let suspects () =
    (* Queries reflect the oracle's latest observation even between steps. *)
    List.fold_left
      (fun acc st ->
        if
          st.suspected
          ||
          (observe st;
           should_suspect ~now:(ctx.Context.now ()) ~dead_since:st.dead_since)
        then Types.Pidset.add st.peer acc
        else acc)
      Types.Pidset.empty states
  in
  (comp, Oracle.make ~name:detector_name ~owner:self ~suspects)

let perfect ctx ?(detector_name = "perfect") ~peers () =
  make_polling ctx ~detector_name
    ~comp_name:(detector_name ^ "-mod")
    ~peers
    ~should_suspect:(fun ~now:_ ~dead_since -> dead_since <> None)

let trusting ctx ?(detector_name = "trusting") ?(detection_delay = 20) ~peers () =
  make_polling ctx ~detector_name
    ~comp_name:(detector_name ^ "-mod")
    ~peers
    ~should_suspect:(fun ~now ~dead_since ->
      match dead_since with Some t -> now - t >= detection_delay | None -> false)

let strong ctx ?(detector_name = "strong") ?anchor ~peers () =
  let anchor =
    match anchor with
    | Some a -> a
    | None -> List.fold_left min max_int peers
  in
  make_polling ctx ~detector_name
    ~comp_name:(detector_name ^ "-mod")
    ~peers:(List.filter (fun q -> q <> anchor) peers)
    ~should_suspect:(fun ~now:_ ~dead_since -> dead_since <> None)
