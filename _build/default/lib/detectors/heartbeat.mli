(** Heartbeat implementation of the eventually perfect failure detector ◇P.

    Each process periodically broadcasts heartbeats; each monitor keeps a
    per-peer adaptive timeout. A silent peer is suspected when its timeout
    expires; a heartbeat from a suspected peer revokes the suspicion and
    enlarges that peer's timeout. Under any adversary whose delays and
    scheduling become bounded after some (unknown) global stabilisation
    time — the classic partial-synchrony model — the timeouts eventually
    exceed the true bound, after which the module satisfies both strong
    completeness and eventual strong accuracy, i.e. ◇P.

    With [adaptive:false] the timeout is never enlarged: if the fixed value
    lies below the post-GST bound the detector suspects correct processes
    forever (it is *not* ◇P) — kept as an ablation. *)

type config = {
  period : int;  (** Ticks between heartbeat broadcasts. *)
  initial_timeout : int;
  adaptive : bool;  (** Double the timeout on each detected mistake. *)
}

val default_config : config

val component :
  Dsim.Context.t ->
  ?detector_name:string ->
  ?tag:string ->
  ?config:config ->
  peers:Dsim.Types.pid list ->
  unit ->
  Dsim.Component.t * Oracle.t
(** Build the local ◇P module of process [ctx.self] monitoring [peers].
    All processes of one detector deployment must share the same [tag]
    (default ["fd"]), which routes heartbeat messages. Suspicion flips are
    logged to the trace under [detector_name] (default ["evp"]). *)
