open Dsim

type pair_stat = {
  owner : Types.pid;
  target : Types.pid;
  flips : (Types.time * bool) list;
  final_suspected : bool;
  false_suspicions : int;
}

type verdict = {
  holds : bool;
  details : string list;
}

let pp_verdict fmt v =
  if v.holds then Format.fprintf fmt "OK"
  else
    Format.fprintf fmt "VIOLATED:@,%a"
      (Format.pp_print_list ~pp_sep:Format.pp_print_cut Format.pp_print_string)
      v.details

let verdict details = { holds = details = []; details }

let crash_time trace pid = Types.Pidmap.find_opt pid (Trace.crash_times trace)

let pair_stats trace ~detector ~n ~initially_suspected =
  let crash_times = Trace.crash_times trace in
  let stats = ref [] in
  for owner = n - 1 downto 0 do
    for target = n - 1 downto 0 do
      if owner <> target then begin
        let flips = Trace.suspicion_flips trace ~detector ~owner ~target in
        let final_suspected =
          List.fold_left (fun _ (_, v) -> v) initially_suspected flips
        in
        let target_crash = Types.Pidmap.find_opt target crash_times in
        let false_suspicions =
          List.length
            (List.filter
               (fun (t, v) ->
                 v && match target_crash with None -> true | Some tc -> t < tc)
               flips)
        in
        stats := { owner; target; flips; final_suspected; false_suspicions } :: !stats
      end
    done
  done;
  !stats

let correct_pids trace ~n =
  let crashed = Trace.crash_times trace in
  List.filter (fun p -> not (Types.Pidmap.mem p crashed)) (List.init n Fun.id)

let strong_completeness trace ~detector ~n ~initially_suspected =
  let correct = correct_pids trace ~n in
  let crashed = Trace.crash_times trace in
  let stats = pair_stats trace ~detector ~n ~initially_suspected in
  let violations =
    List.filter_map
      (fun st ->
        if List.mem st.owner correct && Types.Pidmap.mem st.target crashed
           && not st.final_suspected
        then
          Some
            (Printf.sprintf "p%d does not permanently suspect crashed p%d" st.owner st.target)
        else None)
      stats
  in
  verdict violations

let eventual_strong_accuracy trace ~detector ~n ~initially_suspected =
  let correct = correct_pids trace ~n in
  let stats = pair_stats trace ~detector ~n ~initially_suspected in
  let violations =
    List.filter_map
      (fun st ->
        if List.mem st.owner correct && List.mem st.target correct && st.final_suspected
        then Some (Printf.sprintf "correct p%d still suspects correct p%d" st.owner st.target)
        else None)
      stats
  in
  verdict violations

let eventually_perfect trace ~detector ~n ~initially_suspected =
  let c = strong_completeness trace ~detector ~n ~initially_suspected in
  let a = eventual_strong_accuracy trace ~detector ~n ~initially_suspected in
  { holds = c.holds && a.holds; details = c.details @ a.details }

let trusting_accuracy trace ~detector ~n ~initially_suspected =
  let correct = correct_pids trace ~n in
  let stats = pair_stats trace ~detector ~n ~initially_suspected in
  let violations =
    List.concat_map
      (fun st ->
        if not (List.mem st.owner correct) then []
        else begin
          let target_crash = crash_time trace st.target in
          (* (b) no trust revocation of a live process *)
          let rec scan trusted_before acc = function
            | [] -> acc
            | (t, v) :: rest ->
                let acc =
                  if v && trusted_before
                     && (match target_crash with None -> true | Some tc -> t < tc)
                  then
                    Printf.sprintf "p%d revoked trust in live p%d at t=%d" st.owner st.target t
                    :: acc
                  else acc
                in
                scan (not v) acc rest
          in
          let revocations = scan (not initially_suspected) [] st.flips in
          (* (a) correct targets end trusted *)
          let untrusted =
            if List.mem st.target correct && st.final_suspected then
              [ Printf.sprintf "p%d never converged to trusting correct p%d" st.owner st.target ]
            else []
          in
          revocations @ untrusted
        end)
      stats
  in
  verdict violations

let perpetual_weak_accuracy trace ~detector ~n =
  let correct = correct_pids trace ~n in
  let never_suspected target =
    Trace.filter trace (fun e ->
        match e.Trace.ev with
        | Trace.Suspect s -> String.equal s.detector detector && s.target = target
        | _ -> false)
    = []
  in
  if List.exists never_suspected correct then verdict []
  else verdict [ "every correct process was suspected at least once" ]

let detection_time trace ~detector ~owner ~target ~initially_suspected =
  let flips = Trace.suspicion_flips trace ~detector ~owner ~target in
  let final = List.fold_left (fun _ (_, v) -> v) initially_suspected flips in
  if not final then None
  else
    let rec last_true_onset acc = function
      | [] -> acc
      | (t, true) :: rest -> last_true_onset (Some t) rest
      | (_, false) :: rest -> last_true_onset acc rest
    in
    match last_true_onset None flips with
    | Some t -> Some t
    | None -> Some 0 (* initially suspected, never flipped *)

let accuracy_convergence_time trace ~detector ~n =
  let crash_times = Trace.crash_times trace in
  let correct = correct_pids trace ~n in
  let latest = ref 0 in
  List.iter
    (fun owner ->
      List.iter
        (fun target ->
          if owner <> target then
            let flips = Trace.suspicion_flips trace ~detector ~owner ~target in
            List.iter
              (fun (t, v) ->
                let target_live_at t =
                  match Types.Pidmap.find_opt target crash_times with
                  | None -> true
                  | Some tc -> t < tc
                in
                (* Both the wrongful suspicion and its later revocation count
                   as "the detector had not yet converged". *)
                if target_live_at t && (v || t > !latest) then latest := max !latest t)
              flips)
        (List.init n Fun.id))
    correct;
  !latest

let total_false_suspicions trace ~detector ~n =
  pair_stats trace ~detector ~n ~initially_suspected:false
  |> List.fold_left (fun acc st -> acc + st.false_suspicions) 0
