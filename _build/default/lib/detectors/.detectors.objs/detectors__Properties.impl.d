lib/detectors/properties.ml: Dsim Format Fun List Printf String Trace Types
