lib/detectors/heartbeat.ml: Component Context Dsim List Msg Oracle Trace Types
