lib/detectors/oracle.mli: Dsim
