lib/detectors/ground_truth.ml: Component Context Dsim List Oracle Trace Types
