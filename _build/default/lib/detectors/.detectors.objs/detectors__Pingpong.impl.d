lib/detectors/pingpong.ml: Component Context Dsim List Msg Oracle Trace Types
