lib/detectors/oracle.ml: Dsim
