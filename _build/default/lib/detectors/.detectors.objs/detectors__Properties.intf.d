lib/detectors/properties.mli: Dsim Format
