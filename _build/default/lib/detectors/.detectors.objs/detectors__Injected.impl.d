lib/detectors/injected.ml: Component Context Dsim List Oracle Printf Trace Types
