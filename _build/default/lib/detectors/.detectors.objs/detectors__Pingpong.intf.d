lib/detectors/pingpong.mli: Dsim Oracle
