lib/detectors/heartbeat.mli: Dsim Oracle
