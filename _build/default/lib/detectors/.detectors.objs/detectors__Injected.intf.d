lib/detectors/injected.mli: Dsim Oracle
