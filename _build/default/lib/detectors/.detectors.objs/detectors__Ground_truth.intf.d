lib/detectors/ground_truth.mli: Dsim Oracle
