type t = {
  name : string;
  owner : Dsim.Types.pid;
  suspects : unit -> Dsim.Types.Pidset.t;
  suspected : Dsim.Types.pid -> bool;
}

let make ~name ~owner ~suspects =
  { name; owner; suspects; suspected = (fun q -> Dsim.Types.Pidset.mem q (suspects ())) }
