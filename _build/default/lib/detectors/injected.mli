(** Adversarial mistake injection.

    ◇P is allowed to wrongfully suspect correct processes finitely many
    times per run. This wrapper forces such mistakes at chosen times: during
    each window [(from_, until, target)] the wrapped oracle additionally
    suspects [target]. As long as the window list is finite the wrapped
    oracle still satisfies the ◇P specification whenever the base oracle
    does — but the injected prefix lets experiments drive worst-case oracle
    behaviour (e.g. the Section 3 vulnerability scenario, where an early
    mistake makes a correct diner eat through a suspicion override). *)

type window = {
  from_ : Dsim.Types.time;
  until : Dsim.Types.time;
  target : Dsim.Types.pid;
}

val wrap :
  Dsim.Context.t ->
  base:Oracle.t ->
  windows:window list ->
  Dsim.Component.t * Oracle.t
(** The returned component only logs effective suspicion flips (under the
    name [base.name ^ "+inj"]); the returned oracle is what protocols should
    query. *)
