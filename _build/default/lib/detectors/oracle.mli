(** Failure-detector query interface.

    A failure detector is a distributed oracle: each process owns a local
    module that can be queried for a set of processes currently suspected of
    having crashed (Chandra & Toueg). Protocols receive a value of this type
    and only ever *query* it — the detector classes differ in the guarantees
    on the answers, which are checked post-hoc by {!Properties}. *)

type t = {
  name : string;  (** Detector name used in trace events. *)
  owner : Dsim.Types.pid;
  suspects : unit -> Dsim.Types.Pidset.t;
  suspected : Dsim.Types.pid -> bool;
}

val make :
  name:string ->
  owner:Dsim.Types.pid ->
  suspects:(unit -> Dsim.Types.Pidset.t) ->
  t
