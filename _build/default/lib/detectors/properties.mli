(** Post-hoc checkers for failure-detector properties over run traces.

    Definitions follow Section 4 of the paper (and [3], [4]):

    - {e strong completeness}: every crashed process is eventually and
      permanently suspected by every correct process;
    - {e eventual strong accuracy}: there is a time after which no correct
      process is suspected by any correct process (◇P = both);
    - {e trusting accuracy} (the T detector): every correct process is
      eventually and permanently trusted, and a process that stops being
      trusted must have crashed by then.

    A finite trace can only witness the "so far" truncation of an eventual
    property: checkers therefore test the property {e at the horizon} (e.g.
    "the last flip on a correct pair happened, and it was a Trust"), and
    additionally report convergence statistics so that experiments can show
    the times are stable well before the horizon. *)

type pair_stat = {
  owner : Dsim.Types.pid;
  target : Dsim.Types.pid;
  flips : (Dsim.Types.time * bool) list;  (** [(t, suspected?)] chronological. *)
  final_suspected : bool;
  false_suspicions : int;
      (** Suspect events fired while the target was still live. *)
}

type verdict = {
  holds : bool;
  details : string list;  (** Human-readable violations (empty iff [holds]). *)
}

val pp_verdict : Format.formatter -> verdict -> unit

val pair_stats :
  Dsim.Trace.t ->
  detector:string ->
  n:int ->
  initially_suspected:bool ->
  pair_stat list
(** All ordered pairs (owner <> target) over pids [0..n-1].
    [initially_suspected] is the detector's attitude before any logged flip
    (the reduction's extracted detector starts suspecting; heartbeat ◇P
    starts trusting). *)

val strong_completeness :
  Dsim.Trace.t -> detector:string -> n:int -> initially_suspected:bool -> verdict

val eventual_strong_accuracy :
  Dsim.Trace.t -> detector:string -> n:int -> initially_suspected:bool -> verdict

val eventually_perfect :
  Dsim.Trace.t -> detector:string -> n:int -> initially_suspected:bool -> verdict
(** Conjunction of the two ◇P properties. *)

val trusting_accuracy :
  Dsim.Trace.t -> detector:string -> n:int -> initially_suspected:bool -> verdict
(** T's accuracy: (a) correct targets end up trusted by correct owners and
    (b) any Suspect event that follows a Trust event on the same pair
    happened at-or-after the target's crash. *)

val perpetual_weak_accuracy :
  Dsim.Trace.t -> detector:string -> n:int -> verdict
(** S's accuracy: some correct process is never suspected by any process
    (checked as: a correct pid exists with zero Suspect events against it). *)

val detection_time :
  Dsim.Trace.t -> detector:string -> owner:Dsim.Types.pid -> target:Dsim.Types.pid ->
  initially_suspected:bool -> Dsim.Types.time option
(** Time from which [owner] suspects [target] permanently (time of the last
    flip-to-suspected, or 0 if initially suspected and never flipped);
    [None] if the pair does not end suspected. *)

val accuracy_convergence_time :
  Dsim.Trace.t -> detector:string -> n:int -> Dsim.Types.time
(** Latest time at which any correct owner stopped (or started, counting the
    flip itself) wrongfully suspecting a correct target; 0 if the detector
    never erred on correct pairs. *)

val total_false_suspicions :
  Dsim.Trace.t -> detector:string -> n:int -> int
