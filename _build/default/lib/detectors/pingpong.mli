(** Query/response ("ping-pong") implementation of ◇P.

    An alternative to {!Heartbeat} with a different communication pattern:
    each monitor polls its peers with explicit queries and suspects a peer
    whose response to the {e current} query round is overdue; a late
    response revokes the suspicion and enlarges that peer's timeout.
    Compared to heartbeats, traffic is demand-driven (a process that
    monitors nobody sends nothing) and round-trip-based, so timeouts adapt
    to two-way delays.

    Under eventually-bounded delays and scheduling it satisfies strong
    completeness and eventual strong accuracy, like {!Heartbeat} — the
    differential tests in the suite check that both implementations
    converge to identical suspicion sets. Two interchangeable oracles also
    make the black-box claim of the reduction concrete: the dining layer
    and the extraction behave identically over either. *)

type config = {
  period : int;  (** Ticks between query rounds. *)
  initial_timeout : int;
  adaptive : bool;
}

val default_config : config

val component :
  Dsim.Context.t ->
  ?detector_name:string ->
  ?tag:string ->
  ?config:config ->
  peers:Dsim.Types.pid list ->
  unit ->
  Dsim.Component.t * Oracle.t
(** All processes of one deployment must share [tag] (default ["fdpp"]). *)
