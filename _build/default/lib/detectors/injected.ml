open Dsim

type window = {
  from_ : Types.time;
  until : Types.time;
  target : Types.pid;
}

let wrap (ctx : Context.t) ~base ~windows =
  let name = base.Oracle.name ^ "+inj" in
  let self = ctx.Context.self in
  let effective () =
    let now = ctx.Context.now () in
    List.fold_left
      (fun acc w ->
        if now >= w.from_ && now < w.until then Types.Pidset.add w.target acc else acc)
      (base.Oracle.suspects ()) windows
  in
  let last = ref Types.Pidset.empty in
  let log_flips =
    Component.action "inj-log"
      ~guard:(fun () -> not (Types.Pidset.equal (effective ()) !last))
      ~body:(fun () ->
        let cur = effective () in
        Types.Pidset.iter
          (fun q ->
            if not (Types.Pidset.mem q !last) then
              ctx.Context.log (Trace.Suspect { detector = name; owner = self; target = q }))
          cur;
        Types.Pidset.iter
          (fun q ->
            if not (Types.Pidset.mem q cur) then
              ctx.Context.log (Trace.Trust { detector = name; owner = self; target = q }))
          !last;
        last := cur)
  in
  let comp = Component.make ~name:(Printf.sprintf "%s-inj-p%d" base.Oracle.name self)
      ~actions:[ log_flips ] () in
  (comp, Oracle.make ~name ~owner:self ~suspects:effective)
