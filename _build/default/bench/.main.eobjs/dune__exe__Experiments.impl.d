bench/experiments.ml: Adversary Agreement Array Core Ctm Detectors Dining Dsim Engine Float Fun Graphs Hashtbl Int64 List Option Printf Reduction String Trace Types Util Wsn
