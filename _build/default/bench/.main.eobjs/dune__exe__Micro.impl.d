bench/micro.ml: Adversary Analyze Bechamel Benchmark Core Detectors Dining Dsim Engine Graphs Hashtbl List Printf Prng Reduction Staged Test Time Toolkit Util
