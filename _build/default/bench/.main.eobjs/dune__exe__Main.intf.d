bench/main.mli:
