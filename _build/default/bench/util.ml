(* Table rendering for the experiment harness. *)

let section title =
  let bar = String.make (String.length title + 8) '=' in
  Printf.printf "\n%s\n=== %s ===\n%s\n" bar title bar

let subsection title = Printf.printf "\n--- %s ---\n" title

let table ~header rows =
  let cols = List.length header in
  let widths = Array.make cols 0 in
  List.iteri (fun i h -> widths.(i) <- String.length h) header;
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> if i < cols then widths.(i) <- max widths.(i) (String.length cell))
        row)
    rows;
  let print_row row =
    List.iteri (fun i cell -> Printf.printf "| %-*s " widths.(i) cell) row;
    print_endline "|"
  in
  let rule () =
    Array.iter (fun w -> Printf.printf "+%s" (String.make (w + 2) '-')) widths;
    print_endline "+"
  in
  rule ();
  print_row header;
  rule ();
  List.iter print_row rows;
  rule ()

let yes_no b = if b then "yes" else "NO"
let ok_fail b = if b then "ok" else "FAIL"

let opt_time = function Some t -> string_of_int t | None -> "-"

let pct num den = if den = 0 then "-" else Printf.sprintf "%.0f%%" (100.0 *. float_of_int num /. float_of_int den)
