(* Experiment and benchmark harness.

     dune exec bench/main.exe            # every experiment + micro benches
     dune exec bench/main.exe -- t1 v1   # selected experiments

   One entry per artifact of the paper; see the per-experiment index in
   DESIGN.md and the measured-vs-paper discussion in EXPERIMENTS.md. *)

let registry =
  [
    ("f1", "Figure 1: witness/subject hand-off timeline", Experiments.f1);
    ("t1", "Theorem 1: strong completeness", Experiments.t1);
    ("t2", "Theorem 2: eventual strong accuracy", Experiments.t2);
    ("lemmas", "Lemmas 1-12 as run-time checks", Experiments.lemmas);
    ("v1", "Section 3: flawed [8] construction vs ours", Experiments.v1);
    ("s9", "Section 9: extracting T from perpetual WX", Experiments.s9);
    ("k1", "Section 8: eventual 2-fairness composition", Experiments.k1);
    ("a1", "Section 2: WSN duty-cycle scheduling", Experiments.a1);
    ("a2", "Sections 2-3: contention-manager boost", Experiments.a2);
    ("fl", "Section 2 trade-off: exclusion vs liveness vs oracle", Experiments.fl);
    ("c1", "intro claim: extracted ◇P solves consensus", Experiments.c1);
    ("sweep", "multi-seed statistical sweep of the theorems", Experiments.sweep);
    ("m1", "engineering: message cost", Experiments.m1);
    ("micro", "Bechamel micro-benchmarks", Micro.run);
  ]

let usage () =
  print_endline "usage: main.exe [experiment ...]\navailable experiments:";
  List.iter (fun (key, doc, _) -> Printf.printf "  %-8s %s\n" key doc) registry;
  print_endline "  all      run everything (default)"

let () =
  match Array.to_list Sys.argv with
  | _ :: ([] | [ "all" ]) ->
      List.iter (fun (_, _, f) -> f ()) registry
  | _ :: keys ->
      let unknown = List.filter (fun k -> not (List.exists (fun (key, _, _) -> key = k) registry)) keys in
      if unknown <> [] || List.mem "--help" keys || List.mem "help" keys then usage ()
      else
        List.iter
          (fun k ->
            let _, _, f = List.find (fun (key, _, _) -> key = k) registry in
            f ())
          keys
  | [] -> usage ()
