(* Large-n stack-safety and delivery-structure equivalence.

   The engine's in-flight structure is a bucketed timing wheel; the
   previous tree-map-of-buckets implementation survives as the
   [`Reference] delivery mode. This suite is the proof the swap changed
   nothing: a same-tick flood far past the old recursion limit completes,
   randomized instances produce byte-identical traces under both modes
   (including past the wheel horizon, where the overflow map migrates),
   the incremental in-flight counters match the brute-force scan at every
   tick, and campaign reports stay byte-identical at any worker count. *)

open Dsim

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Flood stack safety *)

let test_flood_100k_stack_safe () =
  (* 3 x 10^5 packets ripening on the same tick form one delivery bucket.
     The old [deliver_bucket] recursed to the bucket tail before
     delivering, so this flood needed ~300k stack frames — overflow; the
     iterative delivery needs O(1). Messages address an unregistered tag,
     so they drain and drop at the first step of each destination. *)
  let n = 100_000 in
  let engine = Engine.create ~seed:1L ~retain_trace:false ~n ~adversary:(Adversary.synchronous ()) () in
  for pid = 0 to n - 1 do
    let ctx = Engine.ctx engine pid in
    for k = 1 to 3 do
      ctx.Context.send ~dst:((pid + k) mod n) ~tag:"flood" Msg.Unit_msg
    done
  done;
  check_int "all packets in flight" (3 * n) (Engine.in_flight_total engine);
  check_int "counter sees the flood" (3 * n) (Engine.in_flight engine ~tag:"flood");
  Engine.run engine ~until:3;
  check_int "flood fully delivered" 0 (Engine.in_flight_total engine);
  check_int "flood fully drained" 0 (Engine.in_flight engine ~tag:"flood");
  check_int "sends accounted" (3 * n) (Engine.sent_total engine)

(* ------------------------------------------------------------------ *)
(* Wheel vs reference delivery: byte-identical traces *)

(* Delays far beyond the 256-tick wheel horizon, so packets land in the
   overflow map and migrate into the wheel as the window reaches them —
   the one code path small-delay adversaries never touch. *)
let big_delay_adversary () =
  {
    Adversary.name = "big-delay";
    delay = (fun rng ~now:_ ~src:_ ~dst:_ -> Prng.int_in rng ~lo:1 ~hi:600);
    steps = (fun rng ~now:_ _ -> Prng.bool rng);
    fairness_bound = 8;
  }

let build_instance ~delivery ~seed ~n ~adversary =
  let engine = Engine.create ~seed ~delivery ~n ~adversary () in
  let graph = Graphs.Conflict_graph.ring ~n in
  for pid = 0 to n - 1 do
    let ctx = Engine.ctx engine pid in
    let comp, handle, _ = Dining.Hygienic.component ctx ~instance:"d" ~graph () in
    Engine.register engine pid comp;
    Engine.register engine pid (Dining.Clients.greedy ctx ~handle ())
  done;
  engine

let test_wheel_matches_reference () =
  (* Randomized small instances under three adversary families (bounded
     delays, partial synchrony, and overflow-exercising large delays):
     the wheel and the reference map must produce byte-identical traces
     and identical message accounting. *)
  let adversaries =
    [
      ("async", fun () -> Adversary.async_uniform ());
      ("psync", fun () -> Adversary.partial_sync ~gst:120 ());
      ("big-delay", big_delay_adversary);
    ]
  in
  for case = 0 to 11 do
    let seed = Int64.of_int (1000 + (case * 77)) in
    let n = 3 + (case mod 5) in
    let name, adv = List.nth adversaries (case mod 3) in
    let run delivery =
      let engine = build_instance ~delivery ~seed ~n ~adversary:(adv ()) in
      if case mod 4 = 0 then Engine.schedule_crash engine (n - 1) ~at:200;
      Engine.run engine ~until:900;
      ( Trace.to_csv (Engine.trace engine),
        Engine.sent_total engine,
        Engine.in_flight_total engine )
    in
    let csv_w, sent_w, fl_w = run `Wheel in
    let csv_r, sent_r, fl_r = run `Reference in
    Alcotest.(check string)
      (Printf.sprintf "case %d (%s, n=%d): traces byte-identical" case name n)
      csv_r csv_w;
    check_int (Printf.sprintf "case %d: same sends" case) sent_r sent_w;
    check_int (Printf.sprintf "case %d: same residue" case) fl_r fl_w
  done

let test_overflow_delivers_exactly_once () =
  (* Under >horizon delays every packet crosses the overflow map; nothing
     may be lost or duplicated by the migration. One round of sends from
     a live component, then run past the max delay. *)
  let n = 5 in
  let engine =
    Engine.create ~seed:9L ~n ~adversary:(big_delay_adversary ()) ()
  in
  let delivered = ref 0 in
  for pid = 0 to n - 1 do
    Engine.register engine pid
      (Component.make ~name:"probe"
         ~actions:[]
         ~on_receive:(fun ~src:_ _ -> incr delivered)
         ())
  done;
  let sends = 500 in
  let ctx = Engine.ctx engine 0 in
  for k = 1 to sends do
    ctx.Context.send ~dst:(k mod n) ~tag:"probe" Msg.Unit_msg
  done;
  Engine.run engine ~until:700;
  check_int "every overflow packet delivered exactly once" sends !delivered;
  check_int "nothing left in flight" 0 (Engine.in_flight_total engine)

(* ------------------------------------------------------------------ *)
(* Incremental counters vs brute-force scan *)

let test_in_flight_counter_matches_scan () =
  (* The O(1) per-tag counters must agree with the full-state scan at
     every observation point the monitors use (end of tick), across
     sends, deliveries, inbox drains, mid-run crashes (inbox discard) and
     deliveries to dead destinations. *)
  let n = 6 in
  let engine = build_instance ~delivery:`Wheel ~seed:77L ~n ~adversary:(Adversary.async_uniform ()) in
  Engine.schedule_crash engine 2 ~at:150;
  Engine.schedule_crash engine 4 ~at:300;
  let checked = ref 0 in
  Engine.on_tick engine (fun () ->
      List.iter
        (fun tag ->
          let fast = Engine.in_flight engine ~tag in
          let slow = Engine.in_flight_scan engine ~tag in
          if fast <> slow then
            Alcotest.failf "t=%d tag=%s: counter %d <> scan %d" (Engine.now engine) tag fast
              slow;
          incr checked)
        [ "d"; "never-sent" ]);
  Engine.run engine ~until:600;
  check_int "cross-checked every tick" (2 * 600) !checked;
  check_int "unknown tag counts zero" 0 (Engine.in_flight engine ~tag:"never-sent")

(* ------------------------------------------------------------------ *)
(* Quadratic-registration fix: many components per process *)

let test_many_components_registration () =
  (* [register] must stay linear in the number of layers (Vec append, not
     list-concat): 400 single-action components on one process, then one
     step exercises the rebuilt flat-action table and routing. *)
  let engine = Engine.create ~seed:3L ~n:1 ~adversary:(Adversary.synchronous ()) () in
  let fired = Array.make 400 false in
  let ctx = Engine.ctx engine 0 in
  for i = 0 to 399 do
    Engine.register engine 0
      (Component.make
         ~name:(Printf.sprintf "layer%d" i)
         ~actions:
           [
             Component.action "fire"
               ~guard:(fun () -> not fired.(i))
               ~body:(fun () -> fired.(i) <- true);
           ]
         ~on_receive:(fun ~src:_ _ -> ())
         ())
  done;
  ignore ctx;
  Engine.run engine ~until:400;
  check "every layer's action eventually ran (weak fairness over 400 layers)" true
    (Array.for_all Fun.id fired)

(* ------------------------------------------------------------------ *)
(* Campaign jobs-invariance over the new engine core *)

let test_campaign_jobs_invariance_post_wheel () =
  (* End-to-end re-check of the parallel-determinism contract on top of
     the timing-wheel engine: canonical campaign summaries are
     byte-identical at -j 1/2/7. *)
  let summary jobs =
    let result =
      Check.Campaign.run ~runs:20 ~max_horizon:2500 ~jobs
        ~registry:Check.Runner.default_registry ~root_seed:0x5CA1EL ()
    in
    Obs.Json.to_string_pretty
      (Obs.Report.strip_wall_clock (Check.Campaign.summary ~cmd:"fuzz" result))
  in
  let reference = summary 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Printf.sprintf "jobs=%d matches jobs=1" jobs)
        reference (summary jobs))
    [ 2; 7 ]

let () =
  Alcotest.run "scale"
    [
      ( "engine",
        [
          Alcotest.test_case "100k-process same-tick flood is stack-safe" `Quick
            test_flood_100k_stack_safe;
          Alcotest.test_case "wheel and reference delivery traces identical" `Quick
            test_wheel_matches_reference;
          Alcotest.test_case "overflow packets delivered exactly once" `Quick
            test_overflow_delivers_exactly_once;
          Alcotest.test_case "in-flight counters match brute-force scan" `Quick
            test_in_flight_counter_matches_scan;
          Alcotest.test_case "400-layer registration and fairness" `Quick
            test_many_components_registration;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "jobs-invariance at -j 1/2/7" `Quick
            test_campaign_jobs_invariance_post_wheel;
        ] );
    ]
