(* A deliberately broken dining variant for the shrinker self-test.

   [wf-dropfork] is the real WF-◇WX diner except that process 0 silently
   drops the first Fork message it receives: the fork vanishes (the sender
   no longer holds it, p0 never records it), so some edge of p0 can never
   be acquired again and a correct hungry diner starves — a genuine
   wait-freedom violation that a fuzz campaign must catch and shrink.
   The module has no toplevel side effects: the test/dune (tests) stanza
   links it into every test executable. *)

open Dsim

let algo = "wf-dropfork"

let drop_first_fork (comp : Component.t) =
  let dropped = ref false in
  Component.make ~name:comp.Component.cname
    ~actions:(Array.to_list comp.Component.actions)
    ~on_receive:(fun ~src msg ->
      match msg with
      | Dining.Wf_ewx.Fork when not !dropped -> dropped := true
      | _ -> comp.Component.on_receive ~src msg)
    ()

let builder engine ~graph ~instance ~eat_ticks =
  let n = Graphs.Conflict_graph.n graph in
  let suspects = Core.Scenario.evp_suspects engine ~n ~windows:[] in
  for pid = 0 to n - 1 do
    let ctx = Engine.ctx engine pid in
    let comp, handle, _ =
      Dining.Wf_ewx.component ctx ~instance ~graph ~suspects:(suspects pid) ()
    in
    let comp = if pid = 0 then drop_first_fork comp else comp in
    Engine.register engine pid comp;
    Engine.register engine pid (Dining.Clients.greedy ctx ~handle ~eat_ticks ())
  done

(* The default registry plus the broken variant, so corpus artifacts for
   either kind replay through one registry. *)
let registry = (algo, builder) :: Check.Runner.default_registry
