(* Unit tests for the observability layer (lib/obs): JSON codec, trace
   sinks, metrics registry, engine instrumentation, run reports. *)

open Dsim

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Json *)

let test_json_roundtrip () =
  let j =
    Obs.Json.(
      Obj
        [
          ("null", Null);
          ("bool", Bool true);
          ("int", Int (-42));
          ("float", Float 1.5);
          ("str", Str "quote\" slash\\ newline\n tab\t ctrl\001 unicode\xc3\xa9");
          ("arr", Arr [ Int 1; Str "two"; Obj [ ("k", Bool false) ] ]);
          ("empty_arr", Arr []);
          ("empty_obj", Obj []);
        ])
  in
  let s = Obs.Json.to_string j in
  check "compact parses back" true (Obs.Json.of_string s = j);
  let p = Obs.Json.to_string_pretty j in
  check "pretty parses back" true (Obs.Json.of_string p = j)

let test_json_numbers () =
  check "int stays int" true (Obs.Json.of_string "17" = Obs.Json.Int 17);
  check "negative int" true (Obs.Json.of_string "-3" = Obs.Json.Int (-3));
  check "decimal is float" true (Obs.Json.of_string "1.25" = Obs.Json.Float 1.25);
  check "exponent is float" true (Obs.Json.of_string "2e3" = Obs.Json.Float 2000.0)

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Obs.Json.of_string s with
      | _ -> Alcotest.failf "accepted %S" s
      | exception Failure _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "nul"; "\"unterminated"; "1 2"; "{\"a\":1,}" ]

let test_json_accessors () =
  let j = Obs.Json.of_string {|{"a":1,"b":"x","c":[true],"d":{"e":2}}|} in
  check_int "int" 1 Obs.Json.(int (get j "a"));
  check_str "str" "x" Obs.Json.(str (get j "b"));
  check "arr" true Obs.Json.(arr (get j "c") = [ Bool true ]);
  check "find missing" true (Obs.Json.find j "zzz" = None);
  check "find non-obj" true (Obs.Json.find (Obs.Json.Int 3) "k" = None)

(* ------------------------------------------------------------------ *)
(* Sinks *)

let seeded_dining_run ?(retain_trace = true) ?(horizon = 5000) ?(sink = None) () =
  let graph = Graphs.Conflict_graph.ring ~n:5 in
  let n = Graphs.Conflict_graph.n graph in
  let engine =
    Engine.create ~seed:41L ~retain_trace ~n ~adversary:(Adversary.partial_sync ~gst:400 ()) ()
  in
  (match sink with Some s -> Obs.Sink.attach (Engine.trace engine) s | None -> ());
  let suspects = Core.Scenario.evp_suspects engine ~n ~windows:[] in
  for pid = 0 to n - 1 do
    let ctx = Engine.ctx engine pid in
    let comp, handle, _ =
      Dining.Wf_ewx.component ctx ~instance:"dx" ~graph ~suspects:(suspects pid) ()
    in
    Engine.register engine pid comp;
    Engine.register engine pid (Dining.Clients.greedy ctx ~handle ())
  done;
  Engine.schedule_crash engine 4 ~at:2000;
  Engine.run engine ~until:horizon;
  engine

let test_entry_json_roundtrip () =
  let entries =
    [
      { Trace.at = 1;
        ev = Trace.Transition { instance = "i,\"x"; pid = 0; from_ = Types.Thinking; to_ = Types.Hungry } };
      { Trace.at = 2; ev = Trace.Suspect { detector = "d"; owner = 0; target = 1 } };
      { Trace.at = 3; ev = Trace.Trust { detector = "d"; owner = 1; target = 0 } };
      { Trace.at = 4; ev = Trace.Crash { pid = 2 } };
      { Trace.at = 5; ev = Trace.Note { pid = 0; label = "l"; info = "line1\nline2\"q" } };
    ]
  in
  List.iter
    (fun e ->
      let j = Obs.Sink.entry_to_json e in
      let e' = Obs.Sink.entry_of_json (Obs.Json.of_string (Obs.Json.to_string j)) in
      check "entry survives json round-trip" true (e = e'))
    entries

let test_jsonl_sink_roundtrip () =
  let path = Filename.temp_file "obs_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let sink = Obs.Sink.jsonl_file path in
      let engine = seeded_dining_run ~sink:(Some sink) () in
      sink.Obs.Sink.close ();
      let mem = Trace.entries (Engine.trace engine) in
      let streamed = Trace.entries (Obs.Sink.read_jsonl path) in
      check "trace is non-trivial" true (List.length mem > 100);
      check_int "same number of entries" (List.length mem) (List.length streamed);
      check "identical entries" true (mem = streamed))

let test_streaming_without_retention () =
  (* The memory-free mode of very long runs: retain_trace:false keeps the
     in-memory buffer empty while the sink still sees every event — and
     on a seeded 100k-tick run the streamed file equals, entry for entry,
     the in-memory trace of an identical retained run. *)
  let horizon = 100_000 in
  let path = Filename.temp_file "obs_stream" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let sink = Obs.Sink.jsonl_file path in
      let streaming = seeded_dining_run ~retain_trace:false ~horizon ~sink:(Some sink) () in
      sink.Obs.Sink.close ();
      check_int "in-memory buffer stays empty" 0 (Trace.length (Engine.trace streaming));
      let retained = seeded_dining_run ~horizon () in
      let mem = Trace.entries (Engine.trace retained) in
      check "trace spans the full horizon" true
        (List.exists (fun e -> e.Trace.at > horizon - 1000) mem);
      check "streamed file = retained trace of the identical run" true
        (Trace.entries (Obs.Sink.read_jsonl path) = mem))

let test_tee_and_memory_sinks () =
  let mem_sink, tr = Obs.Sink.memory () in
  let tee = Obs.Sink.tee [ Obs.Sink.null; mem_sink ] in
  let e = { Trace.at = 7; ev = Trace.Crash { pid = 0 } } in
  tee.Obs.Sink.emit e;
  tee.Obs.Sink.close ();
  check "tee forwarded to memory sink" true (Trace.entries tr = [ e ])

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_metrics_registry () =
  let m = Obs.Metrics.create () in
  let c = Obs.Metrics.counter m "c" in
  Obs.Metrics.incr c;
  Obs.Metrics.incr ~by:4 c;
  check_int "counter" 5 (Obs.Metrics.counter_value c);
  check_int "counter is get-or-create" 5
    (Obs.Metrics.counter_value (Obs.Metrics.counter m "c"));
  let g = Obs.Metrics.gauge m "g" in
  Obs.Metrics.set g 9;
  check_int "gauge" 9 (Obs.Metrics.gauge_value g);
  (try
     ignore (Obs.Metrics.gauge m "c");
     Alcotest.fail "kind clash accepted"
   with Invalid_argument _ -> ());
  let h = Obs.Metrics.histogram m "h" ~buckets:[ 10; 100 ] in
  List.iter (Obs.Metrics.observe h) [ 0; 10; 11; 1000 ];
  let j = Obs.Metrics.to_json m in
  let hist = Obs.Json.(get (get j "histograms") "h") in
  check_int "count" 4 Obs.Json.(int (get hist "count"));
  check_int "sum" 1021 Obs.Json.(int (get hist "sum"));
  check_int "min" 0 Obs.Json.(int (get hist "min"));
  check_int "max" 1000 Obs.Json.(int (get hist "max"));
  let counts =
    List.map (fun b -> Obs.Json.(int (get b "count"))) Obs.Json.(arr (get hist "buckets"))
  in
  Alcotest.(check (list int)) "bucket placement" [ 2; 1; 1 ] counts

let test_metrics_determinism () =
  let snapshot () =
    let m = Obs.Metrics.create () in
    let graph = Graphs.Conflict_graph.ring ~n:5 in
    let engine =
      Engine.create ~seed:23L ~n:5 ~adversary:(Adversary.partial_sync ~gst:400 ()) ()
    in
    let inst = Obs.Instrument.install ~metrics:m engine in
    let suspects = Core.Scenario.evp_suspects engine ~n:5 ~windows:[] in
    for pid = 0 to 4 do
      let ctx = Engine.ctx engine pid in
      let comp, handle, _ =
        Dining.Wf_ewx.component ctx ~instance:"dx" ~graph ~suspects:(suspects pid) ()
      in
      Engine.register engine pid comp;
      Engine.register engine pid (Dining.Clients.greedy ctx ~handle ())
    done;
    Engine.schedule_crash engine 4 ~at:1500;
    Engine.run engine ~until:4000;
    Obs.Instrument.finalize inst;
    Obs.Json.to_string (Obs.Metrics.to_json m)
  in
  let a = snapshot () and b = snapshot () in
  check_str "same seed, byte-identical metrics" a b;
  let j = Obs.Json.of_string a in
  let counters = Obs.Json.get j "counters" in
  check_int "ticks counted" 4000 Obs.Json.(int (get counters "engine.ticks"));
  check_int "crash counted" 1 Obs.Json.(int (get counters "engine.crashes"));
  check "meals counted" true Obs.Json.(int (get counters "dining.dx.meals") > 0);
  let gauges = Obs.Json.get j "gauges" in
  check_int "live procs final" 4 Obs.Json.(int (get gauges "engine.live_procs"));
  check "sent total recorded" true Obs.Json.(int (get gauges "engine.sent_total") > 0);
  let hist = Obs.Json.(get (get j "histograms") "dining.dx.hunger_latency") in
  check "hunger sessions observed" true Obs.Json.(int (get hist "count") > 0)

(* ------------------------------------------------------------------ *)
(* Reports *)

let test_report_schema_roundtrip () =
  let path = Filename.temp_file "obs_report" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let m = Obs.Metrics.create () in
      Obs.Metrics.incr (Obs.Metrics.counter m "events");
      let j =
        Obs.Report.make ~cmd:"dining" ~seed:7L ~horizon:12000
          ~config:[ ("algo", Obs.Json.Str "wf") ]
          ~metrics:m
          ~checks:
            [
              Obs.Report.check "wait_freedom" true;
              Obs.Report.check ~detail:"2 violations" "exclusion" false;
            ]
          ~wall:(Obs.Json.Obj [ ("elapsed_s", Obs.Json.Float 0.5) ])
          ()
      in
      Obs.Report.write ~path j;
      let j' = Obs.Report.read ~path in
      check "write/read identity" true (j = j');
      check_str "schema tag" Obs.Report.schema_version Obs.Json.(str (get j' "schema"));
      check_str "cmd" "dining" Obs.Json.(str (get j' "cmd"));
      check_int "seed" 7 Obs.Json.(int (get j' "seed"));
      check "one failing check => not passed" false (Obs.Report.passed j');
      check "wall_clock stripped" true
        (Obs.Json.find (Obs.Report.strip_wall_clock j') "wall_clock" = None);
      check "metrics embedded" true
        Obs.Json.(int (get (get (get j' "metrics") "counters") "events") = 1))

let test_report_rejects_invalid () =
  let path = Filename.temp_file "obs_bad" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let write s =
        let oc = open_out path in
        output_string oc s;
        close_out oc
      in
      List.iter
        (fun s ->
          write s;
          match Obs.Report.read ~path with
          | _ -> Alcotest.failf "accepted %S" s
          | exception Failure _ -> ())
        [
          "not json";
          "{}";
          {|{"schema":"other/9","cmd":"x","checks":[]}|};
          {|{"schema":"dinersim-report/1","checks":[]}|};
          {|{"schema":"dinersim-report/1","cmd":"x"}|};
          {|{"schema":"dinersim-report/1","cmd":"x","checks":[{"name":"y"}]}|};
        ])

(* The third schema family: the determinism linter's simlint-report/1.
   read_any must dispatch on the tag and the validator must round-trip the
   canonical document (and reject truncated ones). *)
let test_simlint_report_roundtrip () =
  let path = Filename.temp_file "obs_simlint" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let finding =
        Obs.Json.Obj
          [
            ("rule", Obs.Json.Str "D010");
            ("file", Obs.Json.Str "lib/x.ml");
            ("line", Obs.Json.Int 3);
            ("col", Obs.Json.Int 2);
            ("severity", Obs.Json.Str "error");
            ("msg", Obs.Json.Str "call chain A -> B reaches `Random.int`");
            ("status", Obs.Json.Str "open");
          ]
      in
      let doc =
        Obs.Json.Obj
          [
            ("schema", Obs.Json.Str Obs.Report.simlint_schema_version);
            ("files_scanned", Obs.Json.Int 2);
            ("open", Obs.Json.Int 1);
            ("suppressed", Obs.Json.Int 0);
            ("baselined", Obs.Json.Int 0);
            ("findings", Obs.Json.Arr [ finding ]);
            ("stale_baseline", Obs.Json.Arr []);
          ]
      in
      let oc = open_out path in
      output_string oc (Obs.Json.to_string doc);
      close_out oc;
      (match Obs.Report.read_any ~path with
      | `Simlint j ->
          check_str "canonical text round-trips" (Obs.Json.to_string doc)
            (Obs.Json.to_string j)
      | `Run _ | `Campaign _ -> Alcotest.fail "simlint report misdispatched");
      let j = Obs.Report.read_simlint ~path in
      check_str "read_simlint agrees" (Obs.Json.to_string doc) (Obs.Json.to_string j);
      List.iter
        (fun bad ->
          let oc = open_out path in
          output_string oc bad;
          close_out oc;
          match Obs.Report.read_simlint ~path with
          | _ -> Alcotest.failf "accepted %S" bad
          | exception Failure _ -> ())
        [
          {|{"schema":"simlint-report/1"}|};
          {|{"schema":"simlint-report/1","files_scanned":1,"open":0,"suppressed":0,"baselined":0,"findings":[{"rule":"D001"}],"stale_baseline":[]}|};
          {|{"schema":"simlint-report/1","files_scanned":1,"open":0,"suppressed":0,"baselined":0,"findings":[]}|};
        ])

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "numbers" `Quick test_json_numbers;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "sink",
        [
          Alcotest.test_case "entry json roundtrip" `Quick test_entry_json_roundtrip;
          Alcotest.test_case "jsonl roundtrip on seeded run" `Quick test_jsonl_sink_roundtrip;
          Alcotest.test_case "streaming without retention" `Quick
            test_streaming_without_retention;
          Alcotest.test_case "tee and memory" `Quick test_tee_and_memory_sinks;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "registry" `Quick test_metrics_registry;
          Alcotest.test_case "determinism on seeded run" `Quick test_metrics_determinism;
        ] );
      ( "report",
        [
          Alcotest.test_case "schema roundtrip" `Quick test_report_schema_roundtrip;
          Alcotest.test_case "rejects invalid" `Quick test_report_rejects_invalid;
          Alcotest.test_case "simlint report roundtrip" `Quick test_simlint_report_roundtrip;
        ] );
    ]
