(* Unit tests for the observability layer (lib/obs): JSON codec, trace
   sinks, metrics registry, engine instrumentation, run reports. *)

open Dsim

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Json *)

let test_json_roundtrip () =
  let j =
    Obs.Json.(
      Obj
        [
          ("null", Null);
          ("bool", Bool true);
          ("int", Int (-42));
          ("float", Float 1.5);
          ("str", Str "quote\" slash\\ newline\n tab\t ctrl\001 unicode\xc3\xa9");
          ("arr", Arr [ Int 1; Str "two"; Obj [ ("k", Bool false) ] ]);
          ("empty_arr", Arr []);
          ("empty_obj", Obj []);
        ])
  in
  let s = Obs.Json.to_string j in
  check "compact parses back" true (Obs.Json.of_string s = j);
  let p = Obs.Json.to_string_pretty j in
  check "pretty parses back" true (Obs.Json.of_string p = j)

let test_json_numbers () =
  check "int stays int" true (Obs.Json.of_string "17" = Obs.Json.Int 17);
  check "negative int" true (Obs.Json.of_string "-3" = Obs.Json.Int (-3));
  check "decimal is float" true (Obs.Json.of_string "1.25" = Obs.Json.Float 1.25);
  check "exponent is float" true (Obs.Json.of_string "2e3" = Obs.Json.Float 2000.0)

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Obs.Json.of_string s with
      | _ -> Alcotest.failf "accepted %S" s
      | exception Failure _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "nul"; "\"unterminated"; "1 2"; "{\"a\":1,}" ]

let test_json_accessors () =
  let j = Obs.Json.of_string {|{"a":1,"b":"x","c":[true],"d":{"e":2}}|} in
  check_int "int" 1 Obs.Json.(int (get j "a"));
  check_str "str" "x" Obs.Json.(str (get j "b"));
  check "arr" true Obs.Json.(arr (get j "c") = [ Bool true ]);
  check "find missing" true (Obs.Json.find j "zzz" = None);
  check "find non-obj" true (Obs.Json.find (Obs.Json.Int 3) "k" = None)

(* ------------------------------------------------------------------ *)
(* Sinks *)

let seeded_dining_run ?(seed = 41L) ?(retain_trace = true) ?(horizon = 5000) ?(sink = None) () =
  let graph = Graphs.Conflict_graph.ring ~n:5 in
  let n = Graphs.Conflict_graph.n graph in
  let engine =
    Engine.create ~seed ~retain_trace ~n ~adversary:(Adversary.partial_sync ~gst:400 ()) ()
  in
  (match sink with Some s -> Obs.Sink.attach (Engine.trace engine) s | None -> ());
  let suspects = Core.Scenario.evp_suspects engine ~n ~windows:[] in
  for pid = 0 to n - 1 do
    let ctx = Engine.ctx engine pid in
    let comp, handle, _ =
      Dining.Wf_ewx.component ctx ~instance:"dx" ~graph ~suspects:(suspects pid) ()
    in
    Engine.register engine pid comp;
    Engine.register engine pid (Dining.Clients.greedy ctx ~handle ())
  done;
  Engine.schedule_crash engine 4 ~at:2000;
  Engine.run engine ~until:horizon;
  engine

let test_entry_json_roundtrip () =
  let entries =
    [
      { Trace.at = 1;
        ev = Trace.Transition { instance = "i,\"x"; pid = 0; from_ = Types.Thinking; to_ = Types.Hungry } };
      { Trace.at = 2; ev = Trace.Suspect { detector = "d"; owner = 0; target = 1 } };
      { Trace.at = 3; ev = Trace.Trust { detector = "d"; owner = 1; target = 0 } };
      { Trace.at = 4; ev = Trace.Crash { pid = 2 } };
      { Trace.at = 5; ev = Trace.Note { pid = 0; label = "l"; info = "line1\nline2\"q" } };
    ]
  in
  List.iter
    (fun e ->
      let j = Obs.Sink.entry_to_json e in
      let e' = Obs.Sink.entry_of_json (Obs.Json.of_string (Obs.Json.to_string j)) in
      check "entry survives json round-trip" true (e = e'))
    entries

let test_jsonl_sink_roundtrip () =
  let path = Filename.temp_file "obs_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let sink = Obs.Sink.jsonl_file path in
      let engine = seeded_dining_run ~sink:(Some sink) () in
      sink.Obs.Sink.close ();
      let mem = Trace.entries (Engine.trace engine) in
      let streamed = Trace.entries (Obs.Sink.read_jsonl path) in
      check "trace is non-trivial" true (List.length mem > 100);
      check_int "same number of entries" (List.length mem) (List.length streamed);
      check "identical entries" true (mem = streamed))

let test_streaming_without_retention () =
  (* The memory-free mode of very long runs: retain_trace:false keeps the
     in-memory buffer empty while the sink still sees every event — and
     on a seeded 100k-tick run the streamed file equals, entry for entry,
     the in-memory trace of an identical retained run. *)
  let horizon = 100_000 in
  let path = Filename.temp_file "obs_stream" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let sink = Obs.Sink.jsonl_file path in
      let streaming = seeded_dining_run ~retain_trace:false ~horizon ~sink:(Some sink) () in
      sink.Obs.Sink.close ();
      check_int "in-memory buffer stays empty" 0 (Trace.length (Engine.trace streaming));
      let retained = seeded_dining_run ~horizon () in
      let mem = Trace.entries (Engine.trace retained) in
      check "trace spans the full horizon" true
        (List.exists (fun e -> e.Trace.at > horizon - 1000) mem);
      check "streamed file = retained trace of the identical run" true
        (Trace.entries (Obs.Sink.read_jsonl path) = mem))

let test_tee_and_memory_sinks () =
  let mem_sink, tr = Obs.Sink.memory () in
  let tee = Obs.Sink.tee [ Obs.Sink.null; mem_sink ] in
  let e = { Trace.at = 7; ev = Trace.Crash { pid = 0 } } in
  tee.Obs.Sink.emit e;
  tee.Obs.Sink.close ();
  check "tee forwarded to memory sink" true (Trace.entries tr = [ e ])

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_metrics_registry () =
  let m = Obs.Metrics.create () in
  let c = Obs.Metrics.counter m "c" in
  Obs.Metrics.incr c;
  Obs.Metrics.incr ~by:4 c;
  check_int "counter" 5 (Obs.Metrics.counter_value c);
  check_int "counter is get-or-create" 5
    (Obs.Metrics.counter_value (Obs.Metrics.counter m "c"));
  let g = Obs.Metrics.gauge m "g" in
  Obs.Metrics.set g 9;
  check_int "gauge" 9 (Obs.Metrics.gauge_value g);
  (try
     ignore (Obs.Metrics.gauge m "c");
     Alcotest.fail "kind clash accepted"
   with Invalid_argument _ -> ());
  let h = Obs.Metrics.histogram m "h" ~buckets:[ 10; 100 ] in
  List.iter (Obs.Metrics.observe h) [ 0; 10; 11; 1000 ];
  let j = Obs.Metrics.to_json m in
  let hist = Obs.Json.(get (get j "histograms") "h") in
  check_int "count" 4 Obs.Json.(int (get hist "count"));
  check_int "sum" 1021 Obs.Json.(int (get hist "sum"));
  check_int "min" 0 Obs.Json.(int (get hist "min"));
  check_int "max" 1000 Obs.Json.(int (get hist "max"));
  let counts =
    List.map (fun b -> Obs.Json.(int (get b "count"))) Obs.Json.(arr (get hist "buckets"))
  in
  Alcotest.(check (list int)) "bucket placement" [ 2; 1; 1 ] counts

let test_metrics_determinism () =
  let snapshot () =
    let m = Obs.Metrics.create () in
    let graph = Graphs.Conflict_graph.ring ~n:5 in
    let engine =
      Engine.create ~seed:23L ~n:5 ~adversary:(Adversary.partial_sync ~gst:400 ()) ()
    in
    let inst = Obs.Instrument.install ~metrics:m engine in
    let suspects = Core.Scenario.evp_suspects engine ~n:5 ~windows:[] in
    for pid = 0 to 4 do
      let ctx = Engine.ctx engine pid in
      let comp, handle, _ =
        Dining.Wf_ewx.component ctx ~instance:"dx" ~graph ~suspects:(suspects pid) ()
      in
      Engine.register engine pid comp;
      Engine.register engine pid (Dining.Clients.greedy ctx ~handle ())
    done;
    Engine.schedule_crash engine 4 ~at:1500;
    Engine.run engine ~until:4000;
    Obs.Instrument.finalize inst;
    Obs.Json.to_string (Obs.Metrics.to_json m)
  in
  let a = snapshot () and b = snapshot () in
  check_str "same seed, byte-identical metrics" a b;
  let j = Obs.Json.of_string a in
  let counters = Obs.Json.get j "counters" in
  check_int "ticks counted" 4000 Obs.Json.(int (get counters "engine.ticks"));
  check_int "crash counted" 1 Obs.Json.(int (get counters "engine.crashes"));
  check "meals counted" true Obs.Json.(int (get counters "dining.dx.meals") > 0);
  let gauges = Obs.Json.get j "gauges" in
  check_int "live procs final" 4 Obs.Json.(int (get gauges "engine.live_procs"));
  check "sent total recorded" true Obs.Json.(int (get gauges "engine.sent_total") > 0);
  let hist = Obs.Json.(get (get j "histograms") "dining.dx.hunger_latency") in
  check "hunger sessions observed" true Obs.Json.(int (get hist "count") > 0)

let test_metrics_merge_edge_cases () =
  (* Empty histograms on both sides: min/max must stay null after the
     merge, not collapse to 0. *)
  let a = Obs.Metrics.create () and b = Obs.Metrics.create () in
  ignore (Obs.Metrics.histogram a "h" ~buckets:[ 10; 100 ]);
  ignore (Obs.Metrics.histogram b "h" ~buckets:[ 10; 100 ]);
  Obs.Metrics.merge ~into:a b;
  let hist_of m = Obs.Json.(get (get (Obs.Metrics.to_json m) "histograms") "h") in
  let ja = hist_of a in
  check "empty+empty min stays null" true (Obs.Json.get ja "min" = Obs.Json.Null);
  check "empty+empty max stays null" true (Obs.Json.get ja "max" = Obs.Json.Null);
  check_int "empty+empty count" 0 Obs.Json.(int (get ja "count"));
  (* An empty source merged into a populated destination must not disturb
     the destination's extrema. *)
  Obs.Metrics.observe (Obs.Metrics.histogram a "h" ~buckets:[ 10; 100 ]) 42;
  Obs.Metrics.merge ~into:a b;
  let ja = hist_of a in
  check_int "min survives empty-source merge" 42 Obs.Json.(int (get ja "min"));
  check_int "max survives empty-source merge" 42 Obs.Json.(int (get ja "max"));
  (* ... and a populated source merged into an empty destination adopts
     the source's extrema rather than min-ing against a phantom 0. *)
  let c = Obs.Metrics.create () in
  ignore (Obs.Metrics.histogram c "h" ~buckets:[ 10; 100 ]);
  Obs.Metrics.merge ~into:c a;
  let jc = hist_of c in
  check_int "empty-destination adopts min" 42 Obs.Json.(int (get jc "min"));
  check_int "empty-destination adopts max" 42 Obs.Json.(int (get jc "max"));
  (* Gauges: the source value wins, so merge order matters (which is why
     campaign drivers merge in run-index order). *)
  let g1 = Obs.Metrics.create () and g2 = Obs.Metrics.create () in
  Obs.Metrics.set (Obs.Metrics.gauge g1 "g") 1;
  Obs.Metrics.set (Obs.Metrics.gauge g2 "g") 2;
  Obs.Metrics.merge ~into:g1 g2;
  check_int "gauge takes the source value" 2
    (Obs.Metrics.gauge_value (Obs.Metrics.gauge g1 "g"));
  let g3 = Obs.Metrics.create () in
  Obs.Metrics.set (Obs.Metrics.gauge g3 "g") 1;
  Obs.Metrics.merge ~into:g2 g3;
  check_int "reverse order gives the other answer" 1
    (Obs.Metrics.gauge_value (Obs.Metrics.gauge g2 "g"));
  (* Mismatched histogram buckets are a hard error, not a silent resample. *)
  let m1 = Obs.Metrics.create () and m2 = Obs.Metrics.create () in
  ignore (Obs.Metrics.histogram m1 "h" ~buckets:[ 1; 2 ]);
  ignore (Obs.Metrics.histogram m2 "h" ~buckets:[ 1; 3 ]);
  (try
     Obs.Metrics.merge ~into:m1 m2;
     Alcotest.fail "mismatched buckets accepted"
   with Invalid_argument _ -> ());
  (* Kind clashes across registries are rejected like same-registry ones. *)
  let k1 = Obs.Metrics.create () and k2 = Obs.Metrics.create () in
  ignore (Obs.Metrics.counter k1 "x");
  ignore (Obs.Metrics.gauge k2 "x");
  (try
     Obs.Metrics.merge ~into:k1 k2;
     Alcotest.fail "cross-registry kind clash accepted"
   with Invalid_argument _ -> ());
  (* Mismatched series widths are rejected too. *)
  let s1 = Obs.Metrics.create () and s2 = Obs.Metrics.create () in
  ignore (Obs.Metrics.series s1 "s" ~width:100);
  ignore (Obs.Metrics.series s2 "s" ~width:200);
  try
    Obs.Metrics.merge ~into:s1 s2;
    Alcotest.fail "mismatched series widths accepted"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Exact quantiles *)

(* Deterministic xorshift64* stream for sample generation — the test must
   not depend on OCaml's Random (whose stream is version-dependent). *)
let sample_stream seed =
  let state = ref seed in
  fun () ->
    let x = !state in
    let x = Int64.logxor x (Int64.shift_left x 13) in
    let x = Int64.logxor x (Int64.shift_right_logical x 7) in
    let x = Int64.logxor x (Int64.shift_left x 17) in
    state := x;
    Int64.to_int (Int64.rem (Int64.logand x 0x7FFFFFFFL) 500L)

let test_quantile_exact_vs_naive () =
  let next = sample_stream 0x9E3779B97F4A7C15L in
  (* > 5x the 512-sample pending buffer: forces several compactions. *)
  let n = 3000 in
  let samples = Array.init n (fun _ -> next ()) in
  let q = Obs.Quantile.create () in
  Array.iter (Obs.Quantile.add q) samples;
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  let naive p =
    let rank = max 1 (int_of_float (ceil (p *. float_of_int n))) in
    sorted.(rank - 1)
  in
  List.iter
    (fun p ->
      match Obs.Quantile.quantile q p with
      | Some v -> check_int (Printf.sprintf "quantile %.3f is the order statistic" p) (naive p) v
      | None -> Alcotest.fail "non-empty digest returned None")
    [ 0.0; 0.01; 0.25; 0.5; 0.9; 0.99; 0.999; 1.0 ];
  check_int "count" n (Obs.Quantile.count q);
  check_int "sum" (Array.fold_left ( + ) 0 samples) (Obs.Quantile.sum q);
  check "min" true (Obs.Quantile.min_value q = Some sorted.(0));
  check "max" true (Obs.Quantile.max_value q = Some sorted.(n - 1));
  (* Runs are the exact multiset: counts sum to n, values strictly
     increasing. *)
  let runs = Obs.Quantile.runs q in
  check_int "runs cover every sample" n (List.fold_left (fun acc (_, c) -> acc + c) 0 runs);
  check "runs strictly increasing" true
    (fst (List.fold_left (fun (ok, prev) (v, _) -> (ok && v > prev, v)) (true, min_int) runs));
  (try
     ignore (Obs.Quantile.quantile q 1.5);
     Alcotest.fail "q > 1 accepted"
   with Invalid_argument _ -> ());
  (try
     ignore (Obs.Quantile.quantile q (-0.1));
     Alcotest.fail "q < 0 accepted"
   with Invalid_argument _ -> ());
  let e = Obs.Quantile.create () in
  check "empty digest has no quantiles" true (Obs.Quantile.quantile e 0.5 = None);
  check "empty digest min/max are None" true
    (Obs.Quantile.min_value e = None && Obs.Quantile.max_value e = None);
  let je = Obs.Quantile.to_json e in
  check "empty json p99 null" true (Obs.Json.get je "p99" = Obs.Json.Null)

let test_quantile_merge_is_multiset_union () =
  let a = Obs.Quantile.create ()
  and b = Obs.Quantile.create ()
  and all = Obs.Quantile.create () in
  for i = 0 to 999 do
    let v = i * 7919 mod 101 in
    Obs.Quantile.add (if i mod 2 = 0 then a else b) v;
    Obs.Quantile.add all v
  done;
  Obs.Quantile.merge ~into:a b;
  check "merged runs equal the union digest's runs" true
    (Obs.Quantile.runs a = Obs.Quantile.runs all);
  check_int "merged count" 1000 (Obs.Quantile.count a);
  check_int "merged sum" (Obs.Quantile.sum all) (Obs.Quantile.sum a);
  check_int "source sample content unchanged" 500 (Obs.Quantile.count b)

(* ------------------------------------------------------------------ *)
(* Windowed series *)

let test_window_series () =
  (try
     ignore (Obs.Window.create ~width:0);
     Alcotest.fail "width 0 accepted"
   with Invalid_argument _ -> ());
  let w = Obs.Window.create ~width:100 in
  check_int "width" 100 (Obs.Window.width w);
  Obs.Window.observe w ~at:0;
  Obs.Window.observe w ~at:99;
  Obs.Window.observe ~by:3 w ~at:250;
  check_int "total" 5 (Obs.Window.total w);
  check_int "peak" 3 (Obs.Window.peak w);
  Alcotest.(check (list int)) "per-window counts" [ 2; 0; 3 ] (Array.to_list (Obs.Window.counts w));
  (try
     Obs.Window.observe w ~at:(-1);
     Alcotest.fail "negative timestamp accepted"
   with Invalid_argument _ -> ());
  let v = Obs.Window.create ~width:100 in
  Obs.Window.observe v ~at:120;
  Obs.Window.merge ~into:w v;
  Alcotest.(check (list int)) "merge adds window-wise" [ 2; 1; 3 ]
    (Array.to_list (Obs.Window.counts w));
  check_int "source unchanged" 1 (Obs.Window.total v);
  let j = Obs.Window.to_json w in
  check_int "json total" 6 Obs.Json.(int (get j "total"));
  check_int "json peak" 3 Obs.Json.(int (get j "peak"));
  let bad = Obs.Window.create ~width:50 in
  try
    Obs.Window.merge ~into:w bad;
    Alcotest.fail "width mismatch accepted"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Spans *)

let transition at instance pid from_ to_ =
  { Trace.at; ev = Trace.Transition { instance; pid; from_; to_ } }

let test_span_fold () =
  let t = Obs.Span.create () in
  let closes = ref [] in
  Obs.Span.on_close t (fun sp ~next -> closes := (sp, next) :: !closes);
  List.iter (Obs.Span.observe t)
    [
      transition 5 "dx" 0 Types.Thinking Types.Hungry;
      (* entered and left Hungry within one tick: a zero-length span *)
      transition 5 "dx" 0 Types.Hungry Types.Eating;
      transition 20 "dx" 0 Types.Eating Types.Thinking;
      (* diner 1 first seen mid-run: assumed Hungry since tick 0 *)
      transition 10 "dx" 1 Types.Hungry Types.Eating;
    ];
  let expect =
    [
      { Obs.Span.instance = "dx"; pid = 0; phase = Types.Thinking; start = 0; stop = 5; closed = true };
      { Obs.Span.instance = "dx"; pid = 0; phase = Types.Eating; start = 5; stop = 20; closed = true };
      { Obs.Span.instance = "dx"; pid = 0; phase = Types.Thinking; start = 20; stop = 30; closed = false };
      { Obs.Span.instance = "dx"; pid = 1; phase = Types.Hungry; start = 0; stop = 10; closed = true };
      { Obs.Span.instance = "dx"; pid = 1; phase = Types.Eating; start = 10; stop = 30; closed = false };
    ]
  in
  check "folded spans (open ones cut at the horizon)" true
    (Obs.Span.spans t ~horizon:30 = expect);
  check_int "every transition fired a close" 4 (List.length !closes);
  (* The zero-length Hungry stay is dropped from the retained list but
     still reaches the close callbacks — it is a 0-tick latency sample. *)
  check "zero-length close observed with its next phase" true
    (List.exists
       (fun (sp, next) ->
         sp.Obs.Span.phase = Types.Hungry && sp.Obs.Span.start = 5 && sp.Obs.Span.stop = 5
         && next = Types.Eating)
       !closes);
  let nf = Obs.Span.create ~retain:false () in
  Obs.Span.observe nf (transition 5 "dx" 0 Types.Thinking Types.Hungry);
  try
    ignore (Obs.Span.spans nf ~horizon:30);
    Alcotest.fail "spans on a retain:false collector accepted"
  with Invalid_argument _ -> ()

let test_chrome_export_deterministic () =
  let render () =
    let engine = seeded_dining_run ~horizon:3000 () in
    Obs.Json.to_string_pretty (Obs.Span.chrome_of_trace (Engine.trace engine))
  in
  let a = render () and b = render () in
  check_str "same seed, byte-identical trace-event document" a b;
  let j = Obs.Json.of_string a in
  check_str "schema tag" Obs.Span.schema_version Obs.Json.(str (get j "schema"));
  let events = Obs.Json.(arr (get j "traceEvents")) in
  check "document is non-trivial" true (List.length events > 50);
  List.iter
    (fun e ->
      let ph = Obs.Json.(str (get e "ph")) in
      check "only metadata/complete/instant events" true (List.mem ph [ "M"; "X"; "i" ]))
    events;
  (* One complete event per span of an independent fold of the same trace. *)
  let engine = seeded_dining_run ~horizon:3000 () in
  let collector = Obs.Span.create () in
  Obs.Span.attach collector (Engine.trace engine);
  let n_spans = List.length (Obs.Span.spans collector ~horizon:3001) in
  let n_x =
    List.length (List.filter (fun e -> Obs.Json.(str (get e "ph")) = "X") events)
  in
  check_int "one X event per span" n_spans n_x

(* ------------------------------------------------------------------ *)
(* Schedule-coverage signatures *)

let signature_of_run seed =
  let engine = seeded_dining_run ~seed () in
  let c = Obs.Coverage.create () in
  Obs.Coverage.attach c (Engine.trace engine);
  Obs.Coverage.snapshot c

let test_coverage_signatures () =
  List.iter
    (fun w ->
      match Obs.Coverage.empty ~width:w () with
      | _ -> Alcotest.failf "width %d accepted" w
      | exception Invalid_argument _ -> ())
    [ 0; -8; 7; 12 ];
  let e = Obs.Coverage.empty () in
  check_int "default width" Obs.Coverage.default_width (Obs.Coverage.width e);
  check_int "empty signature has no edges" 0 (Obs.Coverage.edges e);
  let a = signature_of_run 41L in
  let a' = signature_of_run 41L in
  let b = signature_of_run 42L in
  check "same seed, equal signature" true (Obs.Coverage.equal a a');
  check_str "same seed, same hex" (Obs.Coverage.to_hex a) (Obs.Coverage.to_hex a');
  check_str "same seed, same digest" (Obs.Coverage.digest a) (Obs.Coverage.digest a');
  check "signature is non-trivial" true (Obs.Coverage.edges a > 0);
  check "different seed, different signature" false (Obs.Coverage.equal a b);
  check "hex round-trips" true (Obs.Coverage.equal a (Obs.Coverage.of_hex (Obs.Coverage.to_hex a)));
  List.iter
    (fun s ->
      match Obs.Coverage.of_hex s with
      | _ -> Alcotest.failf "of_hex accepted %S" s
      | exception Invalid_argument _ -> ())
    [ ""; "abc"; "zz" ];
  let u = Obs.Coverage.union a b in
  check "union is commutative" true (Obs.Coverage.equal u (Obs.Coverage.union b a));
  check "union covers both sides" true
    (Obs.Coverage.new_edges ~seen:u a = 0 && Obs.Coverage.new_edges ~seen:u b = 0);
  check_int "a adds nothing over itself" 0 (Obs.Coverage.new_edges ~seen:a a);
  check "the other seed contributes fresh edges" true (Obs.Coverage.new_edges ~seen:a b > 0);
  check_int "union popcount = base + marginal"
    (Obs.Coverage.edges a + Obs.Coverage.new_edges ~seen:a b)
    (Obs.Coverage.edges u);
  (try
     ignore (Obs.Coverage.union a (Obs.Coverage.empty ~width:64 ()));
     Alcotest.fail "width mismatch accepted"
   with Invalid_argument _ -> ());
  let j = Obs.Coverage.to_json a in
  check_int "json width" (Obs.Coverage.width a) Obs.Json.(int (get j "width"));
  check_int "json edges" (Obs.Coverage.edges a) Obs.Json.(int (get j "edges"));
  check_str "json digest" (Obs.Coverage.digest a) Obs.Json.(str (get j "digest"));
  check_str "json bitmap" (Obs.Coverage.to_hex a) Obs.Json.(str (get j "bitmap"))

(* ------------------------------------------------------------------ *)
(* Instrumented run: histogram / exact-digest / series agreement *)

let test_exact_quantiles_track_histogram () =
  let m = Obs.Metrics.create () in
  let graph = Graphs.Conflict_graph.ring ~n:5 in
  let engine =
    Engine.create ~seed:23L ~n:5 ~adversary:(Adversary.partial_sync ~gst:400 ()) ()
  in
  let inst = Obs.Instrument.install ~metrics:m engine in
  let suspects = Core.Scenario.evp_suspects engine ~n:5 ~windows:[] in
  for pid = 0 to 4 do
    let ctx = Engine.ctx engine pid in
    let comp, handle, _ =
      Dining.Wf_ewx.component ctx ~instance:"dx" ~graph ~suspects:(suspects pid) ()
    in
    Engine.register engine pid comp;
    Engine.register engine pid (Dining.Clients.greedy ctx ~handle ())
  done;
  Engine.schedule_crash engine 4 ~at:1500;
  Engine.run engine ~until:4000;
  Obs.Instrument.finalize inst;
  let j = Obs.Metrics.to_json m in
  (* The bucketed histogram and the exact digest watch the same span-close
     stream, so they must agree on every shared statistic. *)
  let hist = Obs.Json.(get (get j "histograms") "dining.dx.hunger_latency") in
  let exact = Obs.Json.(get (get j "quantiles") "dining.dx.hunger_latency_exact") in
  check "hunger sessions observed" true Obs.Json.(int (get exact "count") > 0);
  List.iter
    (fun field ->
      check_int ("histogram and digest agree on " ^ field)
        Obs.Json.(int (get hist field))
        Obs.Json.(int (get exact field)))
    [ "count"; "sum"; "min"; "max" ];
  (* The exact p99 is a real sample: within the digest's [min, max]. *)
  let p99 = Obs.Json.(int (get exact "p99")) in
  check "p99 within extrema" true
    (p99 >= Obs.Json.(int (get exact "min")) && p99 <= Obs.Json.(int (get exact "max")));
  (* The meals series counts exactly the Eating transitions the meals
     counter counts, windowed by the documented width. *)
  let series = Obs.Json.(get (get j "series") "dining.dx.meals_per_window") in
  check_int "series width is the documented constant" Obs.Instrument.meals_window_width
    Obs.Json.(int (get series "width"));
  check_int "series total = meals counter"
    Obs.Json.(int (get (get j "counters") "dining.dx.meals"))
    Obs.Json.(int (get series "total"));
  check "series peak positive" true Obs.Json.(int (get series "peak") > 0)

(* ------------------------------------------------------------------ *)
(* Reports *)

let test_report_schema_roundtrip () =
  let path = Filename.temp_file "obs_report" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let m = Obs.Metrics.create () in
      Obs.Metrics.incr (Obs.Metrics.counter m "events");
      let j =
        Obs.Report.make ~cmd:"dining" ~seed:7L ~horizon:12000
          ~config:[ ("algo", Obs.Json.Str "wf") ]
          ~metrics:m
          ~checks:
            [
              Obs.Report.check "wait_freedom" true;
              Obs.Report.check ~detail:"2 violations" "exclusion" false;
            ]
          ~wall:(Obs.Json.Obj [ ("elapsed_s", Obs.Json.Float 0.5) ])
          ()
      in
      Obs.Report.write ~path j;
      let j' = Obs.Report.read ~path in
      check "write/read identity" true (j = j');
      check_str "schema tag" Obs.Report.schema_version Obs.Json.(str (get j' "schema"));
      check_str "cmd" "dining" Obs.Json.(str (get j' "cmd"));
      check_int "seed" 7 Obs.Json.(int (get j' "seed"));
      check "one failing check => not passed" false (Obs.Report.passed j');
      check "wall_clock stripped" true
        (Obs.Json.find (Obs.Report.strip_wall_clock j') "wall_clock" = None);
      check "metrics embedded" true
        Obs.Json.(int (get (get (get j' "metrics") "counters") "events") = 1))

let test_report_rejects_invalid () =
  let path = Filename.temp_file "obs_bad" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let write s =
        let oc = open_out path in
        output_string oc s;
        close_out oc
      in
      List.iter
        (fun s ->
          write s;
          match Obs.Report.read ~path with
          | _ -> Alcotest.failf "accepted %S" s
          | exception Failure _ -> ())
        [
          "not json";
          "{}";
          {|{"schema":"other/9","cmd":"x","checks":[]}|};
          {|{"schema":"dinersim-report/1","checks":[]}|};
          {|{"schema":"dinersim-report/1","cmd":"x"}|};
          {|{"schema":"dinersim-report/1","cmd":"x","checks":[{"name":"y"}]}|};
        ])

(* The third schema family: the determinism linter's simlint-report/1.
   read_any must dispatch on the tag and the validator must round-trip the
   canonical document (and reject truncated ones). *)
let test_simlint_report_roundtrip () =
  let path = Filename.temp_file "obs_simlint" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let finding =
        Obs.Json.Obj
          [
            ("rule", Obs.Json.Str "D010");
            ("file", Obs.Json.Str "lib/x.ml");
            ("line", Obs.Json.Int 3);
            ("col", Obs.Json.Int 2);
            ("severity", Obs.Json.Str "error");
            ("msg", Obs.Json.Str "call chain A -> B reaches `Random.int`");
            ("status", Obs.Json.Str "open");
          ]
      in
      let doc =
        Obs.Json.Obj
          [
            ("schema", Obs.Json.Str Obs.Report.simlint_schema_version);
            ("files_scanned", Obs.Json.Int 2);
            ("open", Obs.Json.Int 1);
            ("suppressed", Obs.Json.Int 0);
            ("baselined", Obs.Json.Int 0);
            ("findings", Obs.Json.Arr [ finding ]);
            ("stale_baseline", Obs.Json.Arr []);
          ]
      in
      let oc = open_out path in
      output_string oc (Obs.Json.to_string doc);
      close_out oc;
      (match Obs.Report.read_any ~path with
      | `Simlint j ->
          check_str "canonical text round-trips" (Obs.Json.to_string doc)
            (Obs.Json.to_string j)
      | `Run _ | `Campaign _ | `Mc _ -> Alcotest.fail "simlint report misdispatched");
      let j = Obs.Report.read_simlint ~path in
      check_str "read_simlint agrees" (Obs.Json.to_string doc) (Obs.Json.to_string j);
      List.iter
        (fun bad ->
          let oc = open_out path in
          output_string oc bad;
          close_out oc;
          match Obs.Report.read_simlint ~path with
          | _ -> Alcotest.failf "accepted %S" bad
          | exception Failure _ -> ())
        [
          {|{"schema":"simlint-report/1"}|};
          {|{"schema":"simlint-report/1","files_scanned":1,"open":0,"suppressed":0,"baselined":0,"findings":[{"rule":"D001"}],"stale_baseline":[]}|};
          {|{"schema":"simlint-report/1","files_scanned":1,"open":0,"suppressed":0,"baselined":0,"findings":[]}|};
        ])

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "numbers" `Quick test_json_numbers;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "sink",
        [
          Alcotest.test_case "entry json roundtrip" `Quick test_entry_json_roundtrip;
          Alcotest.test_case "jsonl roundtrip on seeded run" `Quick test_jsonl_sink_roundtrip;
          Alcotest.test_case "streaming without retention" `Quick
            test_streaming_without_retention;
          Alcotest.test_case "tee and memory" `Quick test_tee_and_memory_sinks;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "registry" `Quick test_metrics_registry;
          Alcotest.test_case "determinism on seeded run" `Quick test_metrics_determinism;
          Alcotest.test_case "merge edge cases" `Quick test_metrics_merge_edge_cases;
        ] );
      ( "quantile",
        [
          Alcotest.test_case "exact vs naive across compactions" `Quick
            test_quantile_exact_vs_naive;
          Alcotest.test_case "merge is multiset union" `Quick
            test_quantile_merge_is_multiset_union;
        ] );
      ( "window", [ Alcotest.test_case "series semantics" `Quick test_window_series ] );
      ( "span",
        [
          Alcotest.test_case "fold of a synthetic stream" `Quick test_span_fold;
          Alcotest.test_case "chrome export deterministic" `Quick
            test_chrome_export_deterministic;
        ] );
      ( "coverage",
        [ Alcotest.test_case "signature semantics on seeded runs" `Quick test_coverage_signatures ] );
      ( "instrument",
        [
          Alcotest.test_case "exact digest and series track the run" `Quick
            test_exact_quantiles_track_histogram;
        ] );
      ( "report",
        [
          Alcotest.test_case "schema roundtrip" `Quick test_report_schema_roundtrip;
          Alcotest.test_case "rejects invalid" `Quick test_report_rejects_invalid;
          Alcotest.test_case "simlint report roundtrip" `Quick test_simlint_report_roundtrip;
        ] );
    ]
