(* Tests for lib/check: the schedule fuzzer, the shrinker, and the
   fuzz-repro/1 artifact round trip.

   The checked-in corpus under test/corpus/ is regenerated with

     DINERSIM_CORPUS_UPDATE=$PWD/test/corpus dune runtest --force

   (the variable must hold an absolute path; the tests then write fresh
   artifacts instead of comparing against the checked-in ones). *)

open Dsim

let update_dir = Sys.getenv_opt "DINERSIM_CORPUS_UPDATE"

(* ------------------------------------------------------------------ *)
(* Generator and codec *)

let test_generator_deterministic () =
  let gen seed =
    Check.Config.generate (Prng.create seed) ~algos:[ "wf"; "kfair"; "hygienic" ]
      ~families:Check.Config.all_families ~max_horizon:4000
  in
  Alcotest.(check bool) "equal seeds, equal configs" true (gen 11L = gen 11L);
  Alcotest.(check bool) "different seeds diverge somewhere" true
    (List.exists (fun s -> gen s <> gen 11L) [ 12L; 13L; 14L; 15L ])

let test_config_json_roundtrip () =
  let rng = Prng.create 0xC0DECL in
  for _ = 1 to 50 do
    let c =
      Check.Config.generate rng
        ~algos:[ "wf"; "kfair"; "fl1"; "hygienic"; "ftme" ]
        ~families:Check.Config.all_families ~max_horizon:6000
    in
    let c' = Check.Config.of_json (Obs.Json.of_string (Obs.Json.to_string (Check.Config.to_json c))) in
    Alcotest.(check bool) "config round-trips through JSON" true (c = c')
  done

let test_crash_tolerance_respected () =
  let rng = Prng.create 0xCAFEL in
  for _ = 1 to 80 do
    let c =
      Check.Config.generate rng ~algos:[ "hygienic"; "fl1" ]
        ~families:Check.Config.all_families ~max_horizon:4000
    in
    Alcotest.(check (list (pair int int))) "no crashes for crash-intolerant algos" [] c.Check.Config.crashes
  done

(* ------------------------------------------------------------------ *)
(* Record / replay identity *)

let some_config () =
  Check.Config.generate (Prng.create 0x51DEL) ~algos:[ "wf" ]
    ~families:Check.Config.all_families ~max_horizon:3000

let test_record_replay_identity () =
  let registry = Check.Runner.default_registry in
  let c = some_config () in
  let tape = Adversary.tape () in
  let natural = Check.Runner.run ~record:tape ~registry c in
  let plain = Check.Runner.run ~registry c in
  Alcotest.(check bool) "recording does not perturb the run" true (natural = plain);
  let d = Adversary.tape_decisions tape in
  let len = Array.length d in
  Alcotest.(check bool) "the run consulted the adversary" true (len > 0);
  let full = List.init len (fun i -> (i, d.(i))) in
  let replayed = Check.Runner.run ~replay:(len, full) ~registry c in
  Alcotest.(check bool) "full-override replay is bit-identical" true (natural = replayed);
  let zero = Check.Runner.run ~replay:(0, []) ~registry c in
  Alcotest.(check bool) "len=0 replay falls through to the natural run" true (natural = zero)

(* ------------------------------------------------------------------ *)
(* Repro artifacts *)

let test_repro_roundtrip_and_digest () =
  let c = some_config () in
  let outcome = Check.Runner.run ~registry:Check.Runner.default_registry c in
  let r =
    Check.Repro.v ~config:c ~len:3
      ~overrides:[ (2, Adversary.Delay 4); (0, Adversary.Step false) ]
      ~checks:outcome.Check.Runner.checks
  in
  let r' = Check.Repro.of_json (Obs.Json.of_string (Obs.Json.to_string (Check.Repro.to_json r))) in
  Alcotest.(check bool) "artifact round-trips through JSON" true (r = r');
  Alcotest.(check string) "digest is stable" (Check.Repro.digest r) (Check.Repro.digest r');
  (* Tampering with any body field must be caught by the digest check. *)
  let tampered =
    match Check.Repro.to_json r with
    | Obs.Json.Obj fields ->
        Obs.Json.Obj
          (List.map
             (function
               | "config", cfg -> (
                   match cfg with
                   | Obs.Json.Obj cf ->
                       ( "config",
                         Obs.Json.Obj
                           (List.map
                              (function
                                | "horizon", Obs.Json.Int h -> ("horizon", Obs.Json.Int (h + 1))
                                | f -> f)
                              cf) )
                   | _ -> assert false)
               | f -> f)
             fields)
    | _ -> assert false
  in
  Alcotest.check_raises "tampered artifact is rejected"
    (Failure
       (Printf.sprintf "Repro.of_json: digest mismatch (recorded %s, computed %s)"
          (Check.Repro.digest r)
          (Check.Repro.digest
             { r with Check.Repro.config = { c with Check.Config.horizon = c.Check.Config.horizon + 1 } })))
    (fun () -> ignore (Check.Repro.of_json tampered))

(* ------------------------------------------------------------------ *)
(* Campaigns *)

let test_real_algorithms_pass () =
  let result =
    Check.Campaign.run ~runs:30 ~max_horizon:4000 ~registry:Check.Runner.default_registry
      ~root_seed:0xF5EEDL ()
  in
  Alcotest.(check int) "30 runs executed" 30 result.Check.Campaign.runs;
  Alcotest.(check int) "no violations on the real algorithms" 0
    (List.length result.Check.Campaign.violations)

(* The digest of the minimal counterexample that the broken-variant
   campaign shrinks to. Pinned: shrinking is deterministic, so this only
   changes when the generator, the shrinker, or the engine change —
   regenerate the corpus (see header) and update the constant then. *)
let pinned_broken_digest = "b28c01c4190dd28c03fc4e47ee78799d"

let broken_campaign () =
  Check.Campaign.run ~runs:200 ~max_repros:1 ~max_horizon:4000 ~algos:[ Broken_dining.algo ]
    ~registry:Broken_dining.registry ~root_seed:0xB40C0DEL ()

let first_repro (result : Check.Campaign.t) =
  match result.Check.Campaign.violations with
  | { Check.Campaign.repro = Some r; _ } :: _ -> r
  | _ -> Alcotest.fail "campaign produced no shrunk repro"

let test_broken_variant_caught_and_shrunk () =
  let result = broken_campaign () in
  Alcotest.(check bool) "the 200-run campaign catches the dropped fork" true
    (result.Check.Campaign.violations <> []);
  let r = first_repro result in
  Alcotest.(check bool) "shrunk repro records a violation" true
    (List.exists (fun (c : Obs.Report.check) -> not c.Obs.Report.holds) r.Check.Repro.checks);
  (* Shrinking must be a pure function of the root seed: a second campaign
     reproduces the same minimal counterexample, digest included. *)
  let again = first_repro (broken_campaign ()) in
  Alcotest.(check string) "two campaigns shrink to the same digest" (Check.Repro.digest r)
    (Check.Repro.digest again);
  (match update_dir with
  | Some dir ->
      let path = Filename.concat dir "broken-wf-dropfork.json" in
      Check.Repro.save ~path r;
      Printf.printf "corpus: wrote %s (digest %s)\n%!" path (Check.Repro.digest r)
  | None -> ());
  Alcotest.(check string) "minimal counterexample digest is pinned" pinned_broken_digest
    (Check.Repro.digest r)

(* ------------------------------------------------------------------ *)
(* Worker pool & jobs-invariance *)

let test_pool_map () =
  let r = Exec.Pool.map ~jobs:4 100 (fun i -> i * i) in
  Alcotest.(check int) "all slots filled" 100 (Array.length r);
  Array.iteri (fun i v -> Alcotest.(check int) "slot holds f(index)" (i * i) v) r;
  Alcotest.(check int) "n = 0 is fine" 0 (Array.length (Exec.Pool.map ~jobs:4 0 Fun.id));
  Alcotest.check_raises "jobs < 1 rejected"
    (Invalid_argument "Pool.map: jobs must be >= 1") (fun () ->
      ignore (Exec.Pool.map ~jobs:0 4 Fun.id));
  Alcotest.check_raises "negative count rejected"
    (Invalid_argument "Pool.map: negative count") (fun () ->
      ignore (Exec.Pool.map ~jobs:2 (-1) Fun.id))

let test_pool_exception_lowest_index () =
  (* Several tasks fail; the caller sees the lowest index's exception, no
     matter which domain hit which failure first. *)
  Alcotest.check_raises "lowest failing index wins" (Failure "boom1") (fun () ->
      ignore
        (Exec.Pool.map ~jobs:4 10 (fun i ->
             if i mod 3 = 1 then failwith (Printf.sprintf "boom%d" i) else i)))

let test_pool_concurrent_raises () =
  (* Two domains raise concurrently; the higher index almost certainly
     fails first in wall time, yet after the joins the caller
     deterministically sees the lowest failing index's exception. *)
  Alcotest.check_raises "lowest index wins the race" (Failure "low") (fun () ->
      ignore
        (Exec.Pool.map ~jobs:3 6 (fun i ->
             if i = 5 then failwith "high"
             else if i = 2 then begin
               for _ = 1 to 10_000 do
                 Domain.cpu_relax ()
               done;
               failwith "low"
             end
             else i)))

let test_pool_jobs_clamped () =
  (* jobs far above n is clamped to n: no spare domains exist, so at most
     n tasks are ever in flight, and results match any other worker
     count. The peak is tracked with fetch_and_add + compare_and_set —
     the composed-get/set idiom the pool contract (and D012) forbids. *)
  let active = Atomic.make 0 and peak = Atomic.make 0 in
  let bump () =
    let now = Atomic.fetch_and_add active 1 + 1 in
    let rec raise_peak () =
      let seen = Atomic.get peak in
      if now > seen && not (Atomic.compare_and_set peak seen now) then raise_peak ()
    in
    raise_peak ()
  in
  let r =
    Exec.Pool.map ~jobs:64 3 (fun i ->
        bump ();
        for _ = 1 to 1_000 do
          Domain.cpu_relax ()
        done;
        Atomic.decr active;
        i * 10)
  in
  Alcotest.(check (list int)) "results index-ordered" [ 0; 10; 20 ] (Array.to_list r);
  Alcotest.(check bool) "in-flight tasks never exceed n" true (Atomic.get peak <= 3);
  Alcotest.(check int) "n = 1 under huge jobs" 1 (Array.length (Exec.Pool.map ~jobs:64 1 Fun.id));
  (* The exception contract holds in the clamped regime too. *)
  Alcotest.check_raises "lowest index re-raised when jobs > n" (Failure "boom0") (fun () ->
      ignore (Exec.Pool.map ~jobs:32 2 (fun i -> failwith (Printf.sprintf "boom%d" i))))

let test_campaign_jobs_invariance () =
  (* The acceptance property of the parallel campaign: the summary's
     canonical body — verdicts, entries, shrunk digests, merged metrics —
     is byte-identical for every worker count. Runs over the broken
     variant so the violation/shrink paths are exercised too. *)
  let summary jobs =
    let result =
      Check.Campaign.run ~runs:60 ~max_repros:1 ~max_horizon:3000 ~jobs
        ~algos:[ Broken_dining.algo ] ~registry:Broken_dining.registry ~root_seed:0xB40C0DEL
        ()
    in
    Obs.Json.to_string_pretty
      (Obs.Report.strip_wall_clock (Check.Campaign.summary ~cmd:"fuzz" result))
  in
  let reference = summary 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Printf.sprintf "jobs=%d canonical summary matches jobs=1" jobs)
        reference (summary jobs))
    [ 2; 7 ]

(* ------------------------------------------------------------------ *)
(* Schedule-coverage signatures *)

let test_coverage_jobs_invariance () =
  (* The campaign's union bitmap and growth curve are canonical: byte- and
     element-identical for every worker count, because per-run signatures
     are pure functions of the config and the union is merged in run-index
     order. *)
  let coverage_of jobs =
    let r =
      Check.Campaign.run ~runs:20 ~max_horizon:3000 ~jobs
        ~registry:Check.Runner.default_registry ~root_seed:0xC0FFEEL ()
    in
    (Obs.Coverage.to_hex r.Check.Campaign.coverage, r.Check.Campaign.coverage_growth)
  in
  let hex1, growth1 = coverage_of 1 in
  Alcotest.(check int) "one growth point per run" 20 (List.length growth1);
  Alcotest.(check bool) "growth curve is monotone non-decreasing" true
    (fst
       (List.fold_left (fun (ok, prev) g -> (ok && g >= prev, g)) (true, 0) growth1));
  Alcotest.(check bool) "campaign accumulated edges" true
    (List.fold_left max 0 growth1 > 0);
  List.iter
    (fun jobs ->
      let hex, growth = coverage_of jobs in
      Alcotest.(check string)
        (Printf.sprintf "jobs=%d union bitmap matches jobs=1" jobs)
        hex1 hex;
      Alcotest.(check (list int))
        (Printf.sprintf "jobs=%d growth curve matches jobs=1" jobs)
        growth1 growth)
    [ 2; 7 ]

(* Nudge exactly one adversary knob, preserving the family when it has
   one. *)
let bump_adversary = function
  | Check.Config.Sync -> Check.Config.Async { max_delay = 4; step_prob_pct = 70 }
  | Check.Config.Async a -> Check.Config.Async { a with max_delay = a.max_delay + 3 }
  | Check.Config.Partial p -> Check.Config.Partial { p with gst = p.gst + 500 }
  | Check.Config.Bursty b -> Check.Config.Bursty { b with storm_delay = b.storm_delay + 3 }
  | Check.Config.Dls d -> Check.Config.Dls { d with delta = d.delta + 3 }

let test_coverage_knob_sensitivity () =
  let registry = Check.Runner.default_registry in
  let c = some_config () in
  let base = (Check.Runner.run ~registry c).Check.Runner.coverage in
  let same = (Check.Runner.run ~registry c).Check.Runner.coverage in
  Alcotest.(check bool) "same config, identical signature" true
    (Obs.Coverage.equal base same);
  let tweaked = { c with Check.Config.adversary = bump_adversary c.Check.Config.adversary } in
  let cov = (Check.Runner.run ~registry tweaked).Check.Runner.coverage in
  Alcotest.(check bool) "changed adversary knob changes the signature" false
    (Obs.Coverage.equal base cov);
  Alcotest.(check bool) "the changed knob flips at least one edge bucket" true
    (Obs.Coverage.new_edges ~seen:base cov >= 1)

(* The coverage digest of one corpus artifact, replayed with its recorded
   decision overrides. Pinned like pinned_broken_digest above: it only
   changes when the engine, the trace vocabulary or the coverage hash
   change — regenerate the corpus and update the constant then. *)
let pinned_sync_coverage_digest = "8e56ee1a311381cdbe65d1873832b171"

let test_corpus_coverage_digest_pinned () =
  (* Under `dune runtest` the corpus is a sandbox dep next to the binary;
     fall back to the source path for manual `dune exec` from the root. *)
  let path =
    if Sys.file_exists "corpus/family-sync.json" then "corpus/family-sync.json"
    else "test/corpus/family-sync.json"
  in
  let r = Check.Repro.load ~path in
  let outcome =
    Check.Runner.run
      ~replay:(r.Check.Repro.len, r.Check.Repro.overrides)
      ~registry:Check.Runner.default_registry r.Check.Repro.config
  in
  let digest = Obs.Coverage.digest outcome.Check.Runner.coverage in
  (match update_dir with
  | Some _ -> Printf.printf "corpus: family-sync coverage digest %s\n%!" digest
  | None -> ());
  Alcotest.(check string) "family-sync schedule-coverage digest is pinned"
    pinned_sync_coverage_digest digest

(* ------------------------------------------------------------------ *)
(* Corpus *)

let family_seed = function
  | `Sync -> 0xC0001L
  | `Async -> 0xC0002L
  | `Partial -> 0xC0003L
  | `Bursty -> 0xC0004L
  | `Dls -> 0xC0005L

let test_family_corpus_update () =
  match update_dir with
  | None -> ()
  | Some dir ->
      List.iter
        (fun fam ->
          let saved = ref None in
          let result =
            Check.Campaign.run ~runs:1 ~families:[ fam ]
              ~max_horizon:3000
              ~corpus:(fun _ r -> saved := Some r)
              ~registry:Check.Runner.default_registry ~root_seed:(family_seed fam) ()
          in
          Alcotest.(check int)
            (Printf.sprintf "family %s corpus run passes" (Check.Config.family_to_string fam))
            0
            (List.length result.Check.Campaign.violations);
          match !saved with
          | Some r ->
              let path =
                Filename.concat dir
                  (Printf.sprintf "family-%s.json" (Check.Config.family_to_string fam))
              in
              Check.Repro.save ~path r;
              Printf.printf "corpus: wrote %s (digest %s)\n%!" path (Check.Repro.digest r)
          | None -> Alcotest.fail "corpus callback not invoked")
        Check.Config.all_families

let corpus_files () =
  match Sys.readdir "corpus" with
  | entries ->
      Array.to_list entries
      |> List.filter (fun f -> Filename.check_suffix f ".json")
      |> List.sort compare
      |> List.map (Filename.concat "corpus")
  | exception Sys_error _ -> []

let test_corpus_replays () =
  let files = corpus_files () in
  Alcotest.(check bool)
    (Printf.sprintf "corpus present (found %d artifacts)" (List.length files))
    true
    (List.length files >= 5);
  List.iter
    (fun path ->
      let r = Check.Repro.load ~path in
      match Check.Repro.replay ~registry:Broken_dining.registry r with
      | Ok _ -> ()
      | Error mismatches ->
          Alcotest.fail
            (Printf.sprintf "%s: verdict mismatch: %s" path (String.concat "; " mismatches)))
    files

let () =
  Alcotest.run "check"
    [
      ( "config",
        [
          Alcotest.test_case "generator deterministic" `Quick test_generator_deterministic;
          Alcotest.test_case "json roundtrip" `Quick test_config_json_roundtrip;
          Alcotest.test_case "crash tolerance respected" `Quick test_crash_tolerance_respected;
        ] );
      ( "replay",
        [
          Alcotest.test_case "record/replay identity" `Quick test_record_replay_identity;
          Alcotest.test_case "repro roundtrip + digest" `Quick test_repro_roundtrip_and_digest;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "real algorithms pass" `Slow test_real_algorithms_pass;
          Alcotest.test_case "broken variant caught, shrink deterministic" `Slow
            test_broken_variant_caught_and_shrunk;
        ] );
      ( "pool",
        [
          Alcotest.test_case "map is index-ordered and validates" `Quick test_pool_map;
          Alcotest.test_case "lowest-index exception propagates" `Quick
            test_pool_exception_lowest_index;
          Alcotest.test_case "concurrent raises resolve to lowest index" `Quick
            test_pool_concurrent_raises;
          Alcotest.test_case "jobs above n are clamped" `Quick test_pool_jobs_clamped;
          Alcotest.test_case "campaign canonical output is jobs-invariant" `Slow
            test_campaign_jobs_invariance;
        ] );
      ( "coverage",
        [
          Alcotest.test_case "union bitmap is jobs-invariant" `Slow
            test_coverage_jobs_invariance;
          Alcotest.test_case "adversary knob flips edge buckets" `Quick
            test_coverage_knob_sensitivity;
          Alcotest.test_case "corpus coverage digest is pinned" `Quick
            test_corpus_coverage_digest_pinned;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "family corpus update" `Quick test_family_corpus_update;
          Alcotest.test_case "corpus artifacts replay" `Slow test_corpus_replays;
        ] );
    ]
