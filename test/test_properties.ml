(* Property-based tests (qcheck): invariants checked over randomised seeds,
   topologies, adversaries and fault patterns. Each generated case runs a
   full simulation, so case counts are kept moderate. *)

open Dsim

let to_alcotest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Generators *)

let seed_gen = QCheck2.Gen.map Int64.of_int (QCheck2.Gen.int_range 1 1_000_000)

let adversary_gen =
  QCheck2.Gen.oneofl
    [
      `Sync;
      `Async;
      `Partial 200;
      `Partial 700;
      `Bursty 800;
    ]

let adversary_of = function
  | `Sync -> Adversary.synchronous ()
  | `Async -> Adversary.async_uniform ()
  | `Partial gst -> Adversary.partial_sync ~gst ()
  | `Bursty gst -> Adversary.bursty ~gst ()

let adversary_name a = (adversary_of a).Adversary.name

(* ------------------------------------------------------------------ *)
(* PRNG *)

let prop_prng_bounds =
  QCheck2.Test.make ~name:"prng: int_in stays in range" ~count:200
    QCheck2.Gen.(triple seed_gen (int_range 0 1000) (int_range 1 1000))
    (fun (seed, lo, width) ->
      let rng = Prng.create seed in
      let hi = lo + width in
      let x = Prng.int_in rng ~lo ~hi in
      x >= lo && x <= hi)

let prop_prng_shuffle_multiset =
  QCheck2.Test.make ~name:"prng: shuffle permutes" ~count:100
    QCheck2.Gen.(pair seed_gen (list_size (int_range 0 50) small_int))
    (fun (seed, l) ->
      let rng = Prng.create seed in
      let a = Array.of_list l in
      Prng.shuffle rng a;
      List.sort compare (Array.to_list a) = List.sort compare l)

let prop_prng_uniformity =
  QCheck2.Test.make ~name:"prng: rough uniformity of int" ~count:20 seed_gen (fun seed ->
      let rng = Prng.create seed in
      let buckets = Array.make 8 0 in
      let draws = 8000 in
      for _ = 1 to draws do
        let b = Prng.int rng ~bound:8 in
        buckets.(b) <- buckets.(b) + 1
      done;
      (* Every bucket within 25% of the expected mass. *)
      Array.for_all (fun c -> abs (c - (draws / 8)) < draws / 32) buckets)

(* ------------------------------------------------------------------ *)
(* Trace timelines are well-formed for real dining runs *)

let legal_succession a b =
  match (a, b) with
  | Types.Thinking, Types.Hungry
  | Types.Hungry, Types.Eating
  | Types.Eating, Types.Exiting
  | Types.Exiting, Types.Thinking -> true
  | (Types.Thinking | Types.Hungry | Types.Eating | Types.Exiting), _ -> false

let prop_timeline_legal =
  QCheck2.Test.make ~name:"dining phases follow the 4-phase cycle" ~count:15 seed_gen
    (fun seed ->
      let graph = Graphs.Conflict_graph.ring ~n:4 in
      let run = Core.Scenario.wf_dining ~seed ~graph () in
      Engine.run run.Core.Scenario.engine ~until:4000;
      let trace = Engine.trace run.Core.Scenario.engine in
      List.for_all
        (fun pid ->
          let tl = Trace.phase_timeline trace ~instance:"dx" ~pid ~horizon:4000 in
          (* contiguous segments, legal phase successions *)
          let rec check = function
            | (_, b1, p1) :: ((a2, _, p2) :: _ as rest) ->
                b1 = a2 && legal_succession p1 p2 && check rest
            | [ _ ] | [] -> true
          in
          (match tl with (a, _, p) :: _ -> a = 0 && p = Types.Thinking | [] -> false)
          && check tl)
        [ 0; 1; 2; 3 ])

(* ------------------------------------------------------------------ *)
(* WF-◇WX dining on random topologies and fault patterns *)

let graph_gen =
  QCheck2.Gen.(
    oneof
      [
        map (fun n -> Graphs.Conflict_graph.ring ~n) (int_range 3 7);
        map (fun n -> Graphs.Conflict_graph.clique ~n) (int_range 3 5);
        map (fun n -> Graphs.Conflict_graph.star ~n) (int_range 3 7);
        map
          (fun (n, seed) ->
            Graphs.Conflict_graph.random ~n ~p:0.5 ~rng:(Prng.create (Int64.of_int seed)))
          (pair (int_range 3 7) (int_range 1 10000));
      ])

let prop_wf_dining_no_crash =
  QCheck2.Test.make ~name:"wf-◇wx: wait-freedom + eventual exclusion (random graphs)"
    ~count:12
    QCheck2.Gen.(pair seed_gen graph_gen)
    (fun (seed, graph) ->
      let n = Graphs.Conflict_graph.n graph in
      let run =
        Core.Scenario.wf_dining ~seed ~adversary:(Adversary.partial_sync ~gst:300 ()) ~graph ()
      in
      Engine.run run.Core.Scenario.engine ~until:10000;
      let trace = Engine.trace run.Core.Scenario.engine in
      let wf = Dining.Monitor.wait_freedom trace ~instance:"dx" ~n ~horizon:10000 ~slack:3000 in
      let wx =
        Dining.Monitor.eventual_weak_exclusion trace ~instance:"dx" ~graph ~horizon:10000
          ~suffix_from:5000
      in
      wf.Detectors.Properties.holds && wx.Detectors.Properties.holds)

let prop_wf_dining_with_crashes =
  QCheck2.Test.make ~name:"wf-◇wx: survivors keep eating (random crashes)" ~count:12
    QCheck2.Gen.(triple seed_gen (int_range 4 6) (int_range 500 3000))
    (fun (seed, n, crash_at) ->
      let graph = Graphs.Conflict_graph.ring ~n in
      let run =
        Core.Scenario.wf_dining ~seed ~adversary:(Adversary.partial_sync ~gst:300 ()) ~graph ()
      in
      let engine = run.Core.Scenario.engine in
      (* crash one or two diners *)
      Engine.schedule_crash engine (n - 1) ~at:crash_at;
      if n >= 5 then Engine.schedule_crash engine 1 ~at:(crash_at + 700);
      Engine.run engine ~until:14000;
      let trace = Engine.trace engine in
      let wf = Dining.Monitor.wait_freedom trace ~instance:"dx" ~n ~horizon:14000 ~slack:4000 in
      let wx =
        Dining.Monitor.eventual_weak_exclusion trace ~instance:"dx" ~graph ~horizon:14000
          ~suffix_from:8000
      in
      wf.Detectors.Properties.holds && wx.Detectors.Properties.holds)

let prop_wf_dining_fairness =
  QCheck2.Test.make ~name:"wf-◇wx: meals are roughly fair (Jain >= 0.7)" ~count:10
    QCheck2.Gen.(pair seed_gen (int_range 3 6))
    (fun (seed, n) ->
      let graph = Graphs.Conflict_graph.ring ~n:(max 3 n) in
      let run = Core.Scenario.wf_dining ~seed ~graph () in
      Engine.run run.Core.Scenario.engine ~until:10000;
      let trace = Engine.trace run.Core.Scenario.engine in
      Dining.Monitor.fairness_index trace ~instance:"dx"
        ~pids:(List.init (Graphs.Conflict_graph.n graph) Fun.id)
      >= 0.7)

(* ------------------------------------------------------------------ *)
(* FTME: perpetual exclusion under every generated schedule *)

let prop_ftme_perpetual =
  QCheck2.Test.make ~name:"ftme: perpetual WX + wait-freedom (random schedules)" ~count:10
    QCheck2.Gen.(triple seed_gen adversary_gen (option (int_range 300 4000)))
    (fun (seed, adv, crash) ->
      let n = 4 in
      let engine = Engine.create ~seed ~n ~adversary:(adversary_of adv) () in
      for pid = 0 to n - 1 do
        let ctx = Engine.ctx engine pid in
        let comp, oracle =
          Detectors.Ground_truth.trusting ctx ~detection_delay:25 ~peers:(List.init n Fun.id)
            ()
        in
        Engine.register engine pid comp;
        let dcomp, handle, _ =
          Dining.Ftme.component ctx ~instance:"fx" ~members:(List.init n Fun.id)
            ~suspects:(fun () -> oracle.Detectors.Oracle.suspects ())
            ()
        in
        Engine.register engine pid dcomp;
        Engine.register engine pid (Dining.Clients.greedy ctx ~handle ())
      done;
      (match crash with Some at -> Engine.schedule_crash engine 0 ~at | None -> ());
      Engine.run engine ~until:12000;
      let trace = Engine.trace engine in
      let graph = Graphs.Conflict_graph.clique ~n in
      let wx = Dining.Monitor.perpetual_weak_exclusion trace ~instance:"fx" ~graph ~horizon:12000 in
      let wf = Dining.Monitor.wait_freedom trace ~instance:"fx" ~n ~horizon:12000 ~slack:4000 in
      if not (wx.Detectors.Properties.holds && wf.Detectors.Properties.holds) then
        QCheck2.Test.fail_reportf "adv=%s crash=%s: %s" (adversary_name adv)
          (match crash with Some t -> string_of_int t | None -> "-")
          (String.concat "; "
             (wx.Detectors.Properties.details @ wf.Detectors.Properties.details))
      else true)

(* ------------------------------------------------------------------ *)
(* The reduction: lemmas + ◇P properties over random schedules *)

let prop_reduction_lemmas =
  QCheck2.Test.make ~name:"reduction: all lemmas hold (random schedules)" ~count:8
    QCheck2.Gen.(triple seed_gen (oneofl [ `Partial 300; `Partial 900; `Bursty 800 ])
                   (option (int_range 500 6000)))
    (fun (seed, adv, crash) ->
      let run = Core.Scenario.wf_extraction ~seed ~adversary:(adversary_of adv) ~n:2 () in
      let engine = run.Core.Scenario.engine in
      (match crash with Some at -> Engine.schedule_crash engine 1 ~at | None -> ());
      Engine.run engine ~until:20000;
      List.for_all
        (fun (pair, online) ->
          let reports =
            Reduction.Lemmas.online_reports online
            @ Reduction.Lemmas.trace_reports ~engine ~pair
          in
          match List.find_opt (fun r -> not (Reduction.Lemmas.ok r)) reports with
          | None -> true
          | Some r ->
              QCheck2.Test.fail_reportf "pair %s lemma %s: %s" pair.Reduction.Pair.name
                r.Reduction.Lemmas.lemma
                (String.concat "; " r.Reduction.Lemmas.violations))
        run.Core.Scenario.onlines)

let prop_reduction_is_evp =
  QCheck2.Test.make ~name:"reduction: extracted detector is ◇P (random schedules)" ~count:8
    QCheck2.Gen.(pair seed_gen (option (int_range 500 6000)))
    (fun (seed, crash) ->
      let run = Core.Scenario.wf_extraction ~seed ~with_lemma_monitors:false ~n:2 () in
      let engine = run.Core.Scenario.engine in
      (match crash with Some at -> Engine.schedule_crash engine 1 ~at | None -> ());
      Engine.run engine ~until:22000;
      let v =
        Detectors.Properties.eventually_perfect (Engine.trace engine) ~detector:"extracted"
          ~n:2 ~initially_suspected:true
      in
      if not v.Detectors.Properties.holds then
        QCheck2.Test.fail_reportf "%s" (String.concat "; " v.Detectors.Properties.details)
      else true)

let prop_t_extraction =
  QCheck2.Test.make ~name:"reduction: T properties over FTME box (random schedules)" ~count:6
    QCheck2.Gen.(pair seed_gen (option (int_range 500 6000)))
    (fun (seed, crash) ->
      let run = Core.Scenario.ftme_extraction ~seed ~n:2 () in
      let engine = run.Core.Scenario.engine in
      (match crash with Some at -> Engine.schedule_crash engine 1 ~at | None -> ());
      Engine.run engine ~until:22000;
      let trace = Engine.trace engine in
      let ta =
        Detectors.Properties.trusting_accuracy trace ~detector:"extracted" ~n:2
          ~initially_suspected:true
      in
      let sc =
        Detectors.Properties.strong_completeness trace ~detector:"extracted" ~n:2
          ~initially_suspected:true
      in
      ta.Detectors.Properties.holds && sc.Detectors.Properties.holds)

(* ------------------------------------------------------------------ *)
(* k-fair dining: overtaking bound *)

let prop_kfair_overtaking =
  QCheck2.Test.make ~name:"kfair: suffix overtaking <= 2 (random graphs)" ~count:8
    QCheck2.Gen.(pair seed_gen graph_gen)
    (fun (seed, graph) ->
      let n = Graphs.Conflict_graph.n graph in
      let engine =
        Engine.create ~seed ~n ~adversary:(Adversary.partial_sync ~gst:300 ()) ()
      in
      for pid = 0 to n - 1 do
        let ctx = Engine.ctx engine pid in
        let fd, oracle = Detectors.Heartbeat.component ctx ~peers:(List.init n Fun.id) () in
        Engine.register engine pid fd;
        let comp, handle, _ =
          Dining.Kfair.component ctx ~instance:"kf" ~graph
            ~suspects:(fun () -> oracle.Detectors.Oracle.suspects ())
            ()
        in
        Engine.register engine pid comp;
        Engine.register engine pid (Dining.Clients.greedy ctx ~handle ())
      done;
      Engine.run engine ~until:12000;
      let trace = Engine.trace engine in
      Dining.Monitor.max_overtaking trace ~instance:"kf" ~graph ~after:6000 ~horizon:12000 <= 2)

(* ------------------------------------------------------------------ *)
(* Application substrates *)

let prop_ctm_manager_wins =
  QCheck2.Test.make ~name:"ctm: manager beats raw OF success rate (random loads)" ~count:6
    QCheck2.Gen.(triple seed_gen (int_range 3 5) (int_range 3 8))
    (fun (seed, clients, compute_ticks) ->
      let run with_cm =
        let n = clients + 1 in
        let engine =
          Engine.create ~seed ~n ~adversary:(Adversary.partial_sync ~gst:400 ()) ()
        in
        let store_comp, _ = Ctm.Store.component (Engine.ctx engine 0) () in
        Engine.register engine 0 store_comp;
        let client_pids = List.init clients (fun i -> i + 1) in
        let graph =
          Graphs.Conflict_graph.of_edges ~n
            (List.concat_map
               (fun a ->
                 List.filter_map (fun b -> if a < b then Some (a, b) else None) client_pids)
               client_pids)
        in
        let stats =
          List.map
            (fun pid ->
              let ctx = Engine.ctx engine pid in
              let cm =
                if with_cm then begin
                  let fd, oracle = Detectors.Heartbeat.component ctx ~peers:client_pids () in
                  Engine.register engine pid fd;
                  let comp, handle, _ =
                    Dining.Wf_ewx.component ctx ~instance:"cm" ~graph
                      ~suspects:(fun () -> oracle.Detectors.Oracle.suspects ())
                      ()
                  in
                  Engine.register engine pid comp;
                  Some handle
                end
                else None
              in
              let comp, st = Ctm.Client.component ctx ~store:0 ?cm ~compute_ticks () in
              Engine.register engine pid comp;
              st)
            client_pids
        in
        Engine.run engine ~until:9000;
        let commits =
          List.fold_left (fun acc (st : Ctm.Client.stats) -> acc + st.Ctm.Client.commits) 0 stats
        in
        let aborts =
          List.fold_left (fun acc (st : Ctm.Client.stats) -> acc + st.Ctm.Client.aborts) 0 stats
        in
        float_of_int commits /. float_of_int (max 1 (commits + aborts))
      in
      run true > run false)

let prop_wsn_lifetime_dominates =
  QCheck2.Test.make ~name:"wsn: duty cycling never shortens the lifetime" ~count:5
    QCheck2.Gen.(pair seed_gen (int_range 2 3))
    (fun (seed, nodes_per_area) ->
      let config =
        { Wsn.Model.default_config with Wsn.Model.nodes_per_area; initial_energy = 400 }
      in
      let n = config.Wsn.Model.areas * nodes_per_area in
      let horizon = 8000 in
      let run scheduler =
        let engine =
          Engine.create ~seed ~n ~adversary:(Adversary.partial_sync ~gst:300 ()) ()
        in
        let model = Wsn.Model.setup ~engine ~config ~scheduler () in
        Engine.run engine ~until:horizon;
        match Wsn.Model.lifetime model with Some t -> t | None -> horizon
      in
      run Wsn.Model.Dining >= run Wsn.Model.All_on)

let prop_consensus_agreement =
  QCheck2.Test.make ~name:"consensus: agreement + validity (random inputs/crashes)" ~count:8
    ~print:(fun (seed, inputs, crash) ->
      Printf.sprintf "seed=%Ld inputs=[%s] crash=%s" seed
        (String.concat ";" (List.map string_of_int inputs))
        (match crash with Some t -> string_of_int t | None -> "-"))
    QCheck2.Gen.(
      triple seed_gen
        (list_size (return 4) (int_range 0 1000))
        (option (int_range 50 2000)))
    (fun (seed, inputs, crash) ->
      let n = 4 in
      let engine = Engine.create ~seed ~n ~adversary:(Adversary.partial_sync ~gst:300 ()) () in
      let suspects = Core.Scenario.evp_suspects engine ~n ~windows:[] in
      let instances =
        List.init n (fun pid ->
            let ctx = Engine.ctx engine pid in
            let c =
              Agreement.Consensus.create ctx ~members:(List.init n Fun.id)
                ~suspects:(suspects pid) ()
            in
            Engine.register engine pid c.Agreement.Consensus.component;
            c.Agreement.Consensus.propose (List.nth inputs pid);
            c)
      in
      (match crash with Some at -> Engine.schedule_crash engine 3 ~at | None -> ());
      Engine.run engine ~until:12000;
      let trace = Engine.trace engine in
      let ag = (Agreement.Consensus.agreement trace).Detectors.Properties.holds in
      let validity =
        List.for_all
          (fun (c : Agreement.Consensus.t) ->
            match c.Agreement.Consensus.decided () with
            | Some v -> List.mem v inputs
            | None -> true)
          instances
      in
      let termination =
        List.for_all
          (fun pid ->
            (not (Engine.is_live engine pid))
            || (List.nth instances pid).Agreement.Consensus.decided () <> None)
          (List.init n Fun.id)
      in
      ag && validity && termination)

(* ------------------------------------------------------------------ *)
(* Checker metamorphic tests on synthetic traces *)

let flips_gen =
  (* A chronological flip sequence with strictly increasing times. *)
  QCheck2.Gen.(
    let* n = int_range 0 12 in
    let* gaps = list_size (return n) (int_range 1 50) in
    let* start_suspected = bool in
    let times = List.rev (snd (List.fold_left (fun (t, acc) g -> (t + g, (t + g) :: acc)) (0, []) gaps)) in
    return
      (List.mapi (fun i t -> (t, if start_suspected then i mod 2 = 0 else i mod 2 = 1)) times))

let trace_of_flips ?(crash = None) flips =
  let tr = Trace.create () in
  (match crash with Some at -> Trace.append tr ~at (Trace.Crash { pid = 1 }) | None -> ());
  (* The checkers judge every ordered pair; give the mirror direction a
     trivially convergent history so only the generated pair matters. *)
  Trace.append tr ~at:0 (Trace.Trust { detector = "d"; owner = 1; target = 0 });
  List.iter
    (fun (t, v) ->
      Trace.append tr ~at:t
        (if v then Trace.Suspect { detector = "d"; owner = 0; target = 1 }
         else Trace.Trust { detector = "d"; owner = 0; target = 1 }))
    flips;
  tr

let prop_suspected_at_consistent =
  QCheck2.Test.make ~name:"trace: suspected_at agrees with the last flip" ~count:200 flips_gen
    (fun flips ->
      let tr = trace_of_flips flips in
      let check_at at =
        let expected =
          List.fold_left (fun acc (t, v) -> if t <= at then v else acc) true flips
        in
        Trace.suspected_at tr ~detector:"d" ~owner:0 ~target:1 ~at ~initially:true = expected
      in
      List.for_all check_at [ 0; 13; 100; 500; 10000 ])

let prop_trusting_accuracy_checker =
  QCheck2.Test.make
    ~name:"properties: trusting-accuracy checker agrees with a reference decision" ~count:200
    ~print:(fun flips ->
      String.concat " " (List.map (fun (t, v) -> Printf.sprintf "%d:%b" t v) flips))
    flips_gen
    (fun flips ->
      let tr = trace_of_flips flips in
      (* Reference: a violation exists iff some Suspect follows a Trust (the
         target never crashes here), or the sequence ends suspected. *)
      let rec has_revocation seen_trust = function
        | [] -> false
        | (_, false) :: rest -> has_revocation true rest
        | (_, true) :: rest -> (seen_trust && true) || has_revocation seen_trust rest
      in
      let ends_suspected = List.fold_left (fun _ (_, v) -> v) true flips in
      let expected_violation = has_revocation false flips || ends_suspected in
      let v =
        Detectors.Properties.trusting_accuracy tr ~detector:"d" ~n:2 ~initially_suspected:true
      in
      v.Detectors.Properties.holds = not expected_violation)

let prop_detection_time_is_last_onset =
  QCheck2.Test.make ~name:"properties: detection time = last onset of suspicion" ~count:200
    flips_gen
    (fun flips ->
      let tr = trace_of_flips flips in
      let expected =
        if not (List.fold_left (fun _ (_, v) -> v) true flips) then None
        else
          match List.filter (fun (_, v) -> v) flips with
          | [] -> Some 0
          | l -> Some (fst (List.nth l (List.length l - 1)))
      in
      Detectors.Properties.detection_time tr ~detector:"d" ~owner:0 ~target:1
        ~initially_suspected:true
      = expected)

(* ------------------------------------------------------------------ *)
(* Phase naming and the exported transition relation *)

let phase_gen = QCheck2.Gen.oneofl [ Types.Thinking; Types.Hungry; Types.Eating; Types.Exiting ]

let prop_phase_string_roundtrip =
  QCheck2.Test.make ~name:"phase: of_string inverts to_string" ~count:100 phase_gen (fun p ->
      Types.phase_of_string (Types.phase_to_string p) = Some p)

let prop_phase_of_string_total =
  (* Strings outside the four phase names map to None — of_string never
     guesses, so trace parsing fails loudly on a corrupt phase label. *)
  QCheck2.Test.make ~name:"phase: of_string rejects non-phase strings" ~count:200
    QCheck2.Gen.(string_size ~gen:printable (int_range 0 12))
    (fun s ->
      match Types.phase_of_string s with
      | Some p -> Types.phase_to_string p = s
      | None -> not (List.mem s [ "thinking"; "hungry"; "eating"; "exiting" ]))

(* The relation [Dining.Spec] exports as data is exactly the paper's
   Section-4 diner state machine: the single 4-cycle
   thinking -> hungry -> eating -> exiting -> thinking, nothing else. *)
let test_spec_transition_relation () =
  Alcotest.(check int) "four edges" 4 (List.length Dining.Spec.legal_transitions);
  List.iter
    (fun (a, b) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s->%s is legal" (Types.phase_to_string a) (Types.phase_to_string b))
        true
        (List.mem (a, b) Dining.Spec.legal_transitions))
    [
      (Types.Thinking, Types.Hungry);
      (Types.Hungry, Types.Eating);
      (Types.Eating, Types.Exiting);
      (Types.Exiting, Types.Thinking);
    ];
  let all = [ Types.Thinking; Types.Hungry; Types.Eating; Types.Exiting ] in
  List.iter
    (fun from_ ->
      List.iter
        (fun to_ ->
          let expected =
            match (from_, to_) with
            | Types.Thinking, Types.Hungry
            | Types.Hungry, Types.Eating
            | Types.Eating, Types.Exiting
            | Types.Exiting, Types.Thinking ->
                true
            | _ -> false
          in
          Alcotest.(check bool)
            (Printf.sprintf "legal_transition %s %s" (Types.phase_to_string from_)
               (Types.phase_to_string to_))
            expected
            (Dining.Spec.legal_transition ~from_ ~to_))
        all)
    all

let () =
  Alcotest.run "properties"
    [
      ( "prng",
        List.map to_alcotest
          [ prop_prng_bounds; prop_prng_shuffle_multiset; prop_prng_uniformity ] );
      ( "spec",
        List.map to_alcotest [ prop_phase_string_roundtrip; prop_phase_of_string_total ]
        @ [ Alcotest.test_case "transition relation is the paper's 4-cycle" `Quick
              test_spec_transition_relation ] );
      ("trace", List.map to_alcotest [ prop_timeline_legal; prop_suspected_at_consistent ]);
      ( "dining",
        List.map to_alcotest
          [ prop_wf_dining_no_crash; prop_wf_dining_with_crashes; prop_wf_dining_fairness ] );
      ("ftme", List.map to_alcotest [ prop_ftme_perpetual ]);
      ( "reduction",
        List.map to_alcotest
          [ prop_reduction_lemmas; prop_reduction_is_evp; prop_t_extraction ] );
      ("kfair", List.map to_alcotest [ prop_kfair_overtaking ]);
      ( "applications",
        List.map to_alcotest
          [ prop_ctm_manager_wins; prop_wsn_lifetime_dominates; prop_consensus_agreement ] );
      ( "checkers",
        List.map to_alcotest
          [ prop_trusting_accuracy_checker; prop_detection_time_is_last_onset ] );
    ]
