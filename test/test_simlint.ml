(* Tests for the simlint determinism & simulation-hygiene linter, driving it
   as a library against the fixture corpus under tools/simlint/fixtures/.

   The fixtures are declared as test dependencies, so they are materialised
   under _build next to the test's working directory. *)

open Simlint

let check = Alcotest.(check bool)

(* cwd at runtime is _build/default/test. Under `dune runtest` the declared
   fixture deps are materialised at ../tools/simlint; under a bare
   `dune exec` they are not, so fall back to walking up to the source tree
   (whose root is three levels above the build dir). *)
let fixtures_root =
  let rec find base = function
    | 0 -> Alcotest.fail "tools/simlint/fixtures not found from cwd"
    | n ->
        let candidate = Filename.concat base "tools/simlint" in
        if Sys.file_exists (Filename.concat candidate "fixtures") then candidate
        else find (Filename.concat base "..") (n - 1)
  in
  find "." 7

let run_fixtures ?baseline ?allowlist () =
  Driver.run ?baseline ?allowlist ~dirs:[ "fixtures" ] ~force_lib:true ~root:fixtures_root ()

let triple (f : Finding.t) = (f.Finding.rule, f.Finding.file, f.Finding.line)
let opens result = List.map (fun (f, _) -> triple f) (Driver.open_findings result)

let in_file file result =
  List.filter (fun (_, f, _) -> f = "fixtures/" ^ file) (opens result)

let rule_lines rule findings =
  List.filter_map (fun (r, _, l) -> if r = rule then Some l else None) findings

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)

let test_every_rule_fires () =
  let result = run_fixtures () in
  let rules = List.sort_uniq compare (List.map (fun (r, _, _) -> r) (opens result)) in
  List.iter
    (fun rule -> check (rule ^ " fires on the corpus") true (List.mem rule rules))
    [
      "D001"; "D002"; "D003"; "D004"; "D005"; "D006"; "D007"; "D008"; "D009"; "D010"; "D011";
      "D012"; "D013"; "D014"; "D015"; "D016"; "D017"; "D018";
    ];
  check "no parse failures in fixtures" false (List.mem "E000" rules)

let test_corpus_fails_gate () =
  check "fixture corpus has open findings" true (Driver.open_findings (run_fixtures ()) <> [])

let test_d001_sites () =
  let fs = in_file "d001_wallclock.ml" (run_fixtures ()) in
  Alcotest.(check (list int))
    "every wall-clock read flagged, including via Stdlib" [ 3; 4; 5; 6 ]
    (List.sort compare (rule_lines "D001" fs))

let test_d002_sites () =
  let fs = in_file "d002_random.ml" (run_fixtures ()) in
  Alcotest.(check int)
    "Random.*, ~random:, randomize, open, alias all flagged" 6
    (List.length (rule_lines "D002" fs))

let test_d003_only_unsorted () =
  let fs = in_file "d003_hashtbl_order.ml" (run_fixtures ()) in
  Alcotest.(check (list int))
    "iter and unsorted fold flagged; |>, direct and @@ sorts sanctioned" [ 7; 10 ]
    (List.sort compare (rule_lines "D003" fs))

let test_d004_sites () =
  let fs = in_file "d004_unsafe.ml" (run_fixtures ()) in
  Alcotest.(check (list int))
    "Obj.magic, ==, != flagged in lib code" [ 3; 4; 5 ]
    (List.sort compare (rule_lines "D004" fs))

let test_d004_d005_lib_only () =
  (* Without force_lib the fixture is ordinary tool/app code: the unsafe
     constructs and the missing .mli are tolerated. *)
  let findings, _ = Driver.lint_file ~root:fixtures_root ~rel:"fixtures/d004_unsafe.ml" () in
  check "no D004 outside lib" true
    (not (List.exists (fun (f : Finding.t) -> f.Finding.rule = "D004") findings));
  check "no D005 outside lib" true
    (not (List.exists (fun (f : Finding.t) -> f.Finding.rule = "D005") findings))

let test_d006_sites () =
  let fs = in_file "d006_polycompare.ml" (run_fixtures ()) in
  Alcotest.(check (list int))
    "hash, tuple =, Some <>, list compare flagged; scalar = and passed comparator clean"
    [ 4; 5; 6; 7 ]
    (List.sort compare (rule_lines "D006" fs))

let test_d007_sites () =
  let fs = in_file "d007_catchall.ml" (run_fixtures ()) in
  Alcotest.(check (list int))
    "sole wildcard and trailing wildcard flagged; named handler clean" [ 3; 4 ]
    (List.sort compare (rule_lines "D007" fs))

let test_d008_sites () =
  let fs = in_file "d008_toplevel_state.ml" (run_fixtures ()) in
  Alcotest.(check (list int))
    "top-level ref/Hashtbl and nested-module Queue flagged; per-call create clean"
    [ 4; 5; 8 ]
    (List.sort compare (rule_lines "D008" fs))

(* ------------------------------------------------------------------ *)
(* D010: interprocedural nondeterminism taint. *)

let d010_opens result =
  List.filter (fun (r, _, _) -> r = "D010") (opens result)

let test_d010_cross_module_chain () =
  let result = run_fixtures () in
  Alcotest.(check (list (triple string string int)))
    "one-hop, two-hop and clock chains flagged at their call sites"
    [
      ("D010", "fixtures/clock_user.ml", 4);
      ("D010", "fixtures/taint_b.ml", 4);
      ("D010", "fixtures/taint_c.ml", 5);
    ]
    (d010_opens result);
  let sink =
    List.find
      (fun ((f : Finding.t), _) -> f.Finding.file = "fixtures/taint_c.ml" && f.Finding.line = 5)
      result.Driver.findings
    |> fst
  in
  check "message carries the full source->sink chain" true
    (contains ~needle:"Taint_c.use -> Taint_b.wrapped -> Taint_a.roll" sink.Finding.msg);
  check "message names the seed site" true
    (contains ~needle:"`Random.int` (fixtures/taint_a.ml:4)" sink.Finding.msg)

let test_d010_suppressed_sink () =
  let result = run_fixtures () in
  check "justified sink is suppressed, not open" true
    (List.exists
       (fun ((f : Finding.t), s) ->
         s = Finding.Suppressed && triple f = ("D010", "fixtures/taint_c.ml", 8))
       result.Driver.findings)

let test_d010_allowlist () =
  (* With the clock source allowlisted, neither the direct D001 nor the
     downstream D010 fires — same corpus, different disposition. The Random
     chain is unaffected. *)
  let allowlist = [ "fixtures/allowed_clock.ml" ] in
  let result = run_fixtures ~allowlist () in
  Alcotest.(check (list int))
    "allowlisted clock source is D001-clean" []
    (rule_lines "D001" (in_file "allowed_clock.ml" result));
  Alcotest.(check (list int))
    "no taint flows out of an allowlisted source" []
    (rule_lines "D010" (in_file "clock_user.ml" result));
  Alcotest.(check (list (triple string string int)))
    "Random-rooted chains still flagged"
    [ ("D010", "fixtures/taint_b.ml", 4); ("D010", "fixtures/taint_c.ml", 5) ]
    (d010_opens result)

(* D009: parallel dispatch reaching shared mutable state. *)

let test_d009_sites () =
  let result = run_fixtures () in
  Alcotest.(check (list (triple string string int)))
    "dispatch reaching the shared table flagged; pure dispatch clean"
    [ ("D009", "fixtures/pool_user.ml", 8) ]
    (List.filter (fun (r, _, _) -> r = "D009") (opens result));
  let f =
    List.find
      (fun ((f : Finding.t), _) ->
        f.Finding.rule = "D009" && f.Finding.file = "fixtures/pool_user.ml" && f.Finding.line = 8)
      result.Driver.findings
    |> fst
  in
  check "message carries the dispatch->state chain" true
    (contains ~needle:"Pool_user.tainted_campaign -> Pool_user.lookup -> Pool_user.cache"
       f.Finding.msg);
  check "message names the mutable binding" true
    (contains ~needle:"`Hashtbl.create` (fixtures/pool_user.ml:4)" f.Finding.msg)

let test_d009_suppressed_site () =
  let result = run_fixtures () in
  check "justified dispatch suppressed, not open" true
    (List.exists
       (fun ((f : Finding.t), s) ->
         s = Finding.Suppressed && triple f = ("D009", "fixtures/pool_user.ml", 14))
       result.Driver.findings)

let test_d010_baseline () =
  let baseline = [ { Baseline.file = "fixtures/taint_c.ml"; rule = "D010"; line = 5; sym = None } ] in
  let result = run_fixtures ~baseline () in
  check "baselined D010 no longer open" true
    (List.exists
       (fun ((f : Finding.t), s) ->
         s = Finding.Baselined && triple f = ("D010", "fixtures/taint_c.ml", 5))
       result.Driver.findings);
  Alcotest.(check int) "no stale entries" 0 (List.length result.Driver.stale_baseline)

(* ------------------------------------------------------------------ *)
(* D011-D013: hot-path allocation, domain escape, quadratic accumulation. *)

let disposition result (rule, file, line) =
  List.find_map
    (fun ((f : Finding.t), s) -> if triple f = (rule, file, line) then Some (f, s) else None)
    result.Driver.findings

let test_d011_hotpath_chain () =
  let result = run_fixtures () in
  Alcotest.(check (list (triple string string int)))
    "allocation reached from the annotated root flagged; cold path clean"
    [
      ("D011", "fixtures/d011_dfs.ml", 8);
      ("D011", "fixtures/d011_dfs.ml", 8);
      ("D011", "fixtures/d011_hotpath.ml", 6);
    ]
    (List.sort compare (List.filter (fun (r, _, _) -> r = "D011") (opens result)));
  let f, _ = Option.get (disposition result ("D011", "fixtures/d011_hotpath.ml", 6)) in
  check "message carries the hot caller chain" true
    (contains ~needle:"chain D011_hotpath.hot_tick -> D011_hotpath.build_pair" f.Finding.msg);
  check "finding is sym-keyed on the chain endpoints" true
    (f.Finding.sym = Some "D011_hotpath.hot_tick->D011_hotpath.build_pair:tuple");
  check "justified amortised growth suppressed, not open" true
    (match disposition result ("D011", "fixtures/d011_hotpath.ml", 10) with
    | Some (_, s) -> s = Finding.Suppressed
    | None -> false)

(* The shape a model-checking explorer hot loop takes: a DFS driver
   popping a worklist by pattern matching (allocation-free) but pushing
   through a helper that conses. The cons must be attributed to the
   annotated driver through the call chain; the unreached fold stays
   clean. *)
let test_d011_dfs_loop () =
  let result = run_fixtures () in
  (* [state :: stack] parses as the cons constructor applied to its argument
     tuple, so the one push expression classifies as two sites. *)
  Alcotest.(check (list int))
    "only the frontier push is flagged; match-pop and unreached fold clean" [ 8; 8 ]
    (rule_lines "D011" (in_file "d011_dfs.ml" result));
  let cons =
    List.find_map
      (fun ((f : Finding.t), _) ->
        if f.Finding.sym = Some "D011_dfs.check_states->D011_dfs.push_frontier:cons" then Some f
        else None)
      result.Driver.findings
  in
  let f = Option.get cons in
  check "cons site carries the DFS driver chain" true
    (contains ~needle:"chain D011_dfs.check_states -> D011_dfs.push_frontier" f.Finding.msg)

let test_d012_escapes () =
  let result = run_fixtures () in
  Alcotest.(check (list int))
    "captured ref, mutated array and atomic RMW flagged; read-only capture clean" [ 8; 13; 26 ]
    (List.sort compare (rule_lines "D012" (in_file "d012_escape.ml" result)));
  let f, _ = Option.get (disposition result ("D012", "fixtures/d012_escape.ml", 8)) in
  check "escape message names the captured cell" true
    (contains ~needle:"captures mutable `total` (ref)" f.Finding.msg);
  let rmw, _ = Option.get (disposition result ("D012", "fixtures/d012_escape.ml", 26)) in
  check "rmw message points at the composed get/set" true
    (contains ~needle:"read-modify-write on Atomic `c`" rmw.Finding.msg);
  check "tolerated race suppressed, not open" true
    (match disposition result ("D012", "fixtures/d012_escape.ml", 23) with
    | Some (_, s) -> s = Finding.Suppressed
    | None -> false)

let test_d013_quadratic () =
  let result = run_fixtures () in
  Alcotest.(check (list int))
    "@ and ^ accumulators in self-calls flagged; consing and sibling merges clean" [ 5; 7 ]
    (List.sort compare (rule_lines "D013" (in_file "d013_quadratic.ml" result)));
  check "justified tiny-n accumulator suppressed, not open" true
    (match disposition result ("D013", "fixtures/d013_quadratic.ml", 16) with
    | Some (_, s) -> s = Finding.Suppressed
    | None -> false)

(* ------------------------------------------------------------------ *)
(* D014-D018: protocol conformance. *)

let test_d014_unhandled () =
  let result = run_fixtures () in
  Alcotest.(check (list (triple string string int)))
    "exactly the handler-less fork message flagged, at its construction site"
    [ ("D014", "fixtures/d014_unhandled.ml", 13) ]
    (List.filter (fun (r, _, _) -> r = "D014") (opens result));
  let f, _ = Option.get (disposition result ("D014", "fixtures/d014_unhandled.ml", 13)) in
  check "message names the declaration site" true
    (contains ~needle:"(declared fixtures/d014_unhandled.ml:7)" f.Finding.msg);
  check "message names the constructing node" true
    (contains ~needle:"constructed in D014_unhandled.pass_fork" f.Finding.msg);
  check "sym keys on the constructing node and the constructor" true
    (f.Finding.sym = Some "D014_unhandled.pass_fork->Mf_fork_pass:unhandled");
  check "justified handler-less flood suppressed, not open" true
    (match disposition result ("D014", "fixtures/d014_suppressed.ml", 9) with
    | Some (_, s) -> s = Finding.Suppressed
    | None -> false)

let test_d015_catchall_drop () =
  let result = run_fixtures () in
  Alcotest.(check (list (triple string string int)))
    "literal catch-all in handler position flagged; named wildcard clean"
    [ ("D015", "fixtures/d015_catchall.ml", 11) ]
    (List.filter (fun (r, _, _) -> r = "D015") (opens result));
  let f, _ = Option.get (disposition result ("D015", "fixtures/d015_catchall.ml", 11)) in
  check "message lists the constructors the arms above handle" true
    (contains ~needle:"arms above handle Pf_ping" f.Finding.msg);
  check "justified drop suppressed, not open" true
    (match disposition result ("D015", "fixtures/d015_suppressed.ml", 10) with
    | Some (_, s) -> s = Finding.Suppressed
    | None -> false)

let test_d016_phase_legality () =
  let result = run_fixtures () in
  Alcotest.(check (list (triple string string int)))
    "illegal hop flagged; legal hop and unanchored write clean"
    [ ("D016", "fixtures/d016_phase.ml", 10) ]
    (List.filter (fun (r, _, _) -> r = "D016") (opens result));
  let f, _ = Option.get (disposition result ("D016", "fixtures/d016_phase.ml", 10)) in
  check "message names the illegal hop and the relation" true
    (contains ~needle:"phase write Eating -> Hungry in D016_phase.regress" f.Finding.msg
    && contains ~needle:"Thinking->Hungry, Hungry->Eating, Eating->Exiting, Exiting->Thinking"
         f.Finding.msg);
  check "sym keys on node and hop" true
    (f.Finding.sym = Some "D016_phase.regress:Eating->Hungry:phase");
  check "justified recovery hop suppressed, not open" true
    (match disposition result ("D016", "fixtures/d016_suppressed.ml", 7) with
    | Some (_, s) -> s = Finding.Suppressed
    | None -> false)

let test_d017_fork_conservation () =
  let result = run_fixtures () in
  Alcotest.(check (list (triple string string int)))
    "uncleared send flagged; clearing sender and storing handler clean"
    [ ("D017", "fixtures/d017_fork.ml", 9) ]
    (List.filter (fun (r, _, _) -> r = "D017") (opens result));
  let f, _ = Option.get (disposition result ("D017", "fixtures/d017_fork.ml", 9)) in
  check "message names the duplicating node and token" true
    (contains ~needle:"D017_fork.duplicate sends fork token `Pf_fork`" f.Finding.msg);
  check "sym keys on node and token" true (f.Finding.sym = Some "D017_fork.duplicate:Pf_fork:dup");
  check "justified monitor-tap leak suppressed, not open" true
    (match disposition result ("D017", "fixtures/d017_suppressed.ml", 17) with
    | Some (_, s) -> s = Finding.Suppressed
    | None -> false)

let test_d018_worker_prng () =
  let result = run_fixtures () in
  Alcotest.(check (list (triple string string int)))
    "in-worker PRNG creation flagged; Prng.derive form clean"
    [ ("D018", "fixtures/d018_prng.ml", 8) ]
    (List.filter (fun (r, _, _) -> r = "D018") (opens result));
  let f, _ = Option.get (disposition result ("D018", "fixtures/d018_prng.ml", 8)) in
  check "message names the dispatch and the sanctioned spelling" true
    (contains ~needle:"worker closure passed to Pool.map calls `Prng.create`" f.Finding.msg
    && contains ~needle:"Prng.derive root_seed ~index" f.Finding.msg);
  check "justified shared-stream capture suppressed, not open" true
    (match disposition result ("D018", "fixtures/d018_suppressed.ml", 8) with
    | Some (_, s) -> s = Finding.Suppressed
    | None -> false)

(* The --only rule filter: findings and baseline entries outside the
   selection vanish entirely (no false stale reports), open findings of the
   selected rules survive. *)
let test_only_filter () =
  let result =
    Driver.run ~only:[ "D014"; "D016" ] ~dirs:[ "fixtures" ] ~force_lib:true ~root:fixtures_root
      ()
  in
  let rules =
    List.sort_uniq compare
      (List.map (fun ((f : Finding.t), _) -> f.Finding.rule) result.Driver.findings)
  in
  Alcotest.(check (list string))
    "only the selected rules survive, open or suppressed" [ "D014"; "D016" ] rules;
  Alcotest.(check (list (triple string string int)))
    "open findings are exactly the two firing fixtures"
    [ ("D014", "fixtures/d014_unhandled.ml", 13); ("D016", "fixtures/d016_phase.ml", 10) ]
    (List.sort compare (opens result));
  let baseline =
    [ { Baseline.file = "fixtures/taint_c.ml"; rule = "D010"; line = 5; sym = None } ]
  in
  let result =
    Driver.run ~baseline ~only:[ "D014" ] ~dirs:[ "fixtures" ] ~force_lib:true
      ~root:fixtures_root ()
  in
  Alcotest.(check int)
    "baseline entries for deselected rules are filtered, not stale" 0
    (List.length result.Driver.stale_baseline)

(* Callgraph resolution through [include M] and functor bodies, which the
   protocol passes depend on: a handler arm inside a functor must count as
   handling, and a bare reference to an included binding must resolve. *)
let test_callgraph_include_functor () =
  let rel = "fixtures/cg_functor.ml" in
  let path = Filename.concat fixtures_root rel in
  let text =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let str = Driver.parse_structure ~path text in
  let g = Callgraph.build [ { Callgraph.rel; lib = true; wallclock_ok = false; str } ] in
  check "functor-body let registers under the functor's name" true
    (Callgraph.find_node g "Cg_functor.Make.consume" <> None);
  let edge caller callee =
    List.exists
      (fun (e : Callgraph.edge) -> e.Callgraph.caller = caller && e.Callgraph.callee = callee)
      g.Callgraph.edges
  in
  check "include-as-open resolves the bare reference" true
    (edge "Cg_functor.emit" "Cg_functor.Impl.weight");
  check "functor body resolves through the include too" true
    (edge "Cg_functor.Make.consume" "Cg_functor.Impl.weight");
  (* And the payoff: D014 stays silent on [Cg_probe], whose only handler arm
     lives inside the functor body. *)
  let result = run_fixtures () in
  check "no D014 for the functor-handled constructor" true
    (List.for_all
       (fun ((f : Finding.t), _) ->
         not (f.Finding.rule = "D014" && contains ~needle:"Cg_probe" f.Finding.msg))
       result.Driver.findings)

let test_catalog_coverage () =
  (* Every catalogued rule has both a firing and a suppressed fixture, so the
     corpus pins each rule's detection AND its suppression path. E000 is the
     parse-failure rule: the corpus deliberately contains no broken file (a
     parse failure would silently shrink every other analysis). *)
  let result = run_fixtures () in
  let open_rules = List.map (fun (r, _, _) -> r) (opens result) in
  let suppressed_rules =
    List.filter_map
      (fun ((f : Finding.t), s) ->
        if s = Finding.Suppressed then Some f.Finding.rule else None)
      result.Driver.findings
  in
  List.iter
    (fun (rule, _) ->
      if rule <> "E000" then begin
        check (rule ^ " has a firing fixture") true (List.mem rule open_rules);
        check (rule ^ " has a suppressed fixture") true (List.mem rule suppressed_rules)
      end)
    Rules.catalog

let test_sym_keyed_baseline () =
  (* Interprocedural entries key on file + rule + chain endpoints: the
     recorded line is informational, so the entry survives line drift in any
     file along the chain... *)
  let entry =
    {
      Baseline.file = "fixtures/d011_hotpath.ml";
      rule = "D011";
      line = 999;
      sym = Some "D011_hotpath.hot_tick->D011_hotpath.build_pair:tuple";
    }
  in
  let result = run_fixtures ~baseline:[ entry ] () in
  check "sym entry matches despite line drift" true
    (List.exists
       (fun ((f : Finding.t), s) ->
         s = Finding.Baselined && triple f = ("D011", "fixtures/d011_hotpath.ml", 6))
       result.Driver.findings);
  Alcotest.(check int) "no stale entries" 0 (List.length result.Driver.stale_baseline);
  (* ... while a sym mismatch does not match even at the right line. *)
  let wrong = { entry with Baseline.line = 6; sym = Some "Other.root->Other.leaf:tuple" } in
  let result = run_fixtures ~baseline:[ wrong ] () in
  check "wrong sym stays open" true
    (List.mem ("D011", "fixtures/d011_hotpath.ml", 6) (opens result));
  Alcotest.(check int) "wrong sym is stale" 1 (List.length result.Driver.stale_baseline)

(* ------------------------------------------------------------------ *)
(* Gate semantics and baseline regeneration. *)

let test_gate_and_baseline_regeneration () =
  let plain = run_fixtures () in
  check "corpus fails the gate outright" false (Driver.gate_ok plain);
  (* Regenerating the baseline from the run grandfathers every
     non-suppressed finding: the gate then passes... *)
  let regenerated = Driver.to_baseline plain in
  let grandfathered = run_fixtures ~baseline:regenerated () in
  check "regenerated baseline covers every open finding" true (Driver.gate_ok grandfathered);
  Alcotest.(check int) "nothing open" 0 (List.length (Driver.open_findings grandfathered));
  (* ... and a stale entry alone fails it again. *)
  let stale =
    { Baseline.file = "fixtures/gone.ml"; rule = "D001"; line = 1; sym = None } :: regenerated
  in
  let with_stale = run_fixtures ~baseline:stale () in
  check "stale baseline entry fails the gate" false (Driver.gate_ok with_stale);
  Alcotest.(check int) "no open findings, only staleness" 0
    (List.length (Driver.open_findings with_stale))

let test_baseline_write_deterministic () =
  let entries = Driver.to_baseline (run_fixtures ()) in
  let slurp path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let p1 = Filename.temp_file "simlint_baseline" ".json" in
  let p2 = Filename.temp_file "simlint_baseline" ".json" in
  Baseline.write ~path:p1 entries;
  Baseline.write ~path:p2 entries;
  Alcotest.(check string) "two writes are byte-identical" (slurp p1) (slurp p2);
  let reloaded = Baseline.load p1 in
  check "write/load round-trips the entries" true (reloaded = entries);
  (* The regenerated (--baseline-update) entries for the interprocedural
     rules are sym-keyed, never bare line keys. *)
  let interprocedural =
    List.filter
      (fun (e : Baseline.entry) ->
        List.mem e.Baseline.rule
          [ "D009"; "D010"; "D011"; "D012"; "D013"; "D014"; "D015"; "D016"; "D017"; "D018" ])
      entries
  in
  check "interprocedural rules present in the regenerated baseline" true
    (List.exists (fun (e : Baseline.entry) -> e.Baseline.rule = "D011") interprocedural);
  check "interprocedural entries are sym-keyed" true
    (List.for_all (fun (e : Baseline.entry) -> e.Baseline.sym <> None) interprocedural);
  Sys.remove p1;
  Sys.remove p2

(* ------------------------------------------------------------------ *)
(* SARIF emission. *)

let test_sarif_pinned () =
  let result = run_fixtures () in
  let produced = Sarif.to_string result.Driver.findings ^ "\n" in
  (match Sys.getenv_opt "SIMLINT_SARIF_UPDATE" with
  | Some dir ->
      let oc = open_out_bin (Filename.concat dir "expected.sarif") in
      output_string oc produced;
      close_out oc
  | None -> ());
  let expected =
    let ic = open_in_bin (Filename.concat fixtures_root "fixtures/expected.sarif") in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  Alcotest.(check string) "SARIF of the fixture corpus is pinned byte-exactly" expected produced

let test_sarif_shape () =
  let result = run_fixtures () in
  let j = Sarif.of_findings result.Driver.findings in
  let open Obs.Json in
  Alcotest.(check string) "version" "2.1.0" (str (get j "version"));
  let run = List.hd (arr (get j "runs")) in
  let results = arr (get run "results") in
  Alcotest.(check int)
    "one result per finding"
    (List.length result.Driver.findings)
    (List.length results);
  let suppressed_count =
    List.length (List.filter (fun r -> find r "suppressions" <> None) results)
  in
  Alcotest.(check int)
    "suppressed+baselined findings carry a suppressions array"
    (List.length result.Driver.findings - List.length (Driver.open_findings result))
    suppressed_count;
  let with_sym =
    List.length
      (List.filter (fun ((f : Finding.t), _) -> f.Finding.sym <> None) result.Driver.findings)
  in
  Alcotest.(check int)
    "interprocedural results carry a simlintSym fingerprint" with_sym
    (List.length
       (List.filter
          (fun r ->
            match find r "partialFingerprints" with
            | Some fp -> find fp "simlintSym/v1" <> None
            | None -> false)
          results));
  check "sym-carrying results exist" true (with_sym > 0);
  let driver = get (get run "tool") "driver" in
  Alcotest.(check int) "rule catalog shipped" (List.length Rules.catalog)
    (List.length (arr (get driver "rules")))

let test_severities () =
  Alcotest.(check string) "D001 is an error" "error"
    (Finding.severity_name (Finding.severity_of_rule "D001"));
  Alcotest.(check string) "D010 is an error" "error"
    (Finding.severity_name (Finding.severity_of_rule "D010"));
  Alcotest.(check string) "D006 is a warning" "warning"
    (Finding.severity_name (Finding.severity_of_rule "D006"));
  Alcotest.(check string) "D014 is an error" "error"
    (Finding.severity_name (Finding.severity_of_rule "D014"));
  Alcotest.(check string) "D015 is a warning" "warning"
    (Finding.severity_name (Finding.severity_of_rule "D015"));
  Alcotest.(check string) "D016 is an error" "error"
    (Finding.severity_name (Finding.severity_of_rule "D016"));
  Alcotest.(check string) "D017 is an error" "error"
    (Finding.severity_name (Finding.severity_of_rule "D017"));
  Alcotest.(check string) "D018 is an error" "error"
    (Finding.severity_name (Finding.severity_of_rule "D018"));
  Alcotest.(check string) "unknown rules downgrade to note" "note"
    (Finding.severity_name (Finding.severity_of_rule "D999"))

let test_suppression_exact () =
  let result = run_fixtures () in
  (* The only open finding in suppressed.ml is the D002 whose comment names
     the wrong rule id. *)
  Alcotest.(check (list (triple string string int)))
    "mis-named allow does not silence"
    [ ("D002", "fixtures/suppressed.ml", 16) ]
    (in_file "suppressed.ml" result);
  let suppressed =
    List.filter
      (fun (f, s) -> s = Finding.Suppressed && f.Finding.file = "fixtures/suppressed.ml")
      result.Driver.findings
  in
  Alcotest.(check int) "named rules silenced at their sites" 4 (List.length suppressed)

let test_clean_fixture () =
  Alcotest.(check (list (triple string string int)))
    "compliant file yields nothing" []
    (in_file "clean.ml" (run_fixtures ()))

let test_baseline_grandfathers () =
  let baseline =
    [
      { Baseline.file = "fixtures/d003_hashtbl_order.ml"; rule = "D003"; line = 7; sym = None };
      { Baseline.file = "fixtures/gone.ml"; rule = "D001"; line = 1; sym = None };
    ]
  in
  let plain = run_fixtures () in
  let result = run_fixtures ~baseline () in
  Alcotest.(check int)
    "baselined finding no longer open"
    (List.length (Driver.open_findings plain) - 1)
    (List.length (Driver.open_findings result));
  check "finding reported as baselined" true
    (List.exists
       (fun (f, s) -> s = Finding.Baselined && triple f = ("D003", "fixtures/d003_hashtbl_order.ml", 7))
       result.Driver.findings);
  Alcotest.(check int) "stale entry surfaced" 1 (List.length result.Driver.stale_baseline)

let test_json_roundtrip () =
  let result = run_fixtures () in
  let j = Driver.to_json result in
  let s = Obs.Json.to_string j in
  let j' = Obs.Json.of_string s in
  Alcotest.(check string) "canonical text is a fixpoint" s (Obs.Json.to_string j');
  Alcotest.(check string)
    "schema" "simlint-report/1"
    (Obs.Json.str (Obs.Json.get j' "schema"));
  Alcotest.(check int)
    "finding count round-trips"
    (List.length result.Driver.findings)
    (List.length (Obs.Json.arr (Obs.Json.get j' "findings")))

let test_suppress_parser () =
  let t = Suppress.parse "let a = 1\n(* simlint: allow D001 D003 — why *)\nlet b = 2\n" in
  check "covers own line" true (Suppress.covers t ~rule:"D001" ~line:2);
  check "covers next line" true (Suppress.covers t ~rule:"D003" ~line:3);
  check "does not cover later lines" false (Suppress.covers t ~rule:"D001" ~line:4);
  check "does not cover other rules" false (Suppress.covers t ~rule:"D002" ~line:3);
  check "no marker, no suppression" true (Suppress.parse "(* allow D001 *)" = [])

let () =
  Alcotest.run "simlint"
    [
      ( "rules",
        [
          Alcotest.test_case "every rule fires" `Quick test_every_rule_fires;
          Alcotest.test_case "corpus fails the gate" `Quick test_corpus_fails_gate;
          Alcotest.test_case "D001 wall clock" `Quick test_d001_sites;
          Alcotest.test_case "D002 randomness" `Quick test_d002_sites;
          Alcotest.test_case "D003 unsorted traversals only" `Quick test_d003_only_unsorted;
          Alcotest.test_case "D004 unsafe constructs" `Quick test_d004_sites;
          Alcotest.test_case "D004/D005 are lib-only" `Quick test_d004_d005_lib_only;
          Alcotest.test_case "D006 polymorphic compare/hash" `Quick test_d006_sites;
          Alcotest.test_case "D007 catch-all handlers" `Quick test_d007_sites;
          Alcotest.test_case "D008 module-level mutable state" `Quick test_d008_sites;
        ] );
      ( "taint",
        [
          Alcotest.test_case "D010 cross-module chain" `Quick test_d010_cross_module_chain;
          Alcotest.test_case "D010 sink suppression" `Quick test_d010_suppressed_sink;
          Alcotest.test_case "D010 respects the allowlist" `Quick test_d010_allowlist;
          Alcotest.test_case "D010 baseline hit" `Quick test_d010_baseline;
          Alcotest.test_case "D009 shared state under parallel dispatch" `Quick test_d009_sites;
          Alcotest.test_case "D009 site suppression" `Quick test_d009_suppressed_site;
        ] );
      ( "hotpath",
        [
          Alcotest.test_case "D011 hot-path allocation chain" `Quick test_d011_hotpath_chain;
          Alcotest.test_case "D011 DFS worklist loop" `Quick test_d011_dfs_loop;
          Alcotest.test_case "D012 domain escapes and RMW" `Quick test_d012_escapes;
          Alcotest.test_case "D013 quadratic accumulation" `Quick test_d013_quadratic;
          Alcotest.test_case "catalog fully covered by fixtures" `Quick test_catalog_coverage;
          Alcotest.test_case "sym-keyed baseline survives line drift" `Quick
            test_sym_keyed_baseline;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "D014 unhandled protocol message" `Quick test_d014_unhandled;
          Alcotest.test_case "D015 catch-all message drop" `Quick test_d015_catchall_drop;
          Alcotest.test_case "D016 phase-transition legality" `Quick test_d016_phase_legality;
          Alcotest.test_case "D017 fork-token conservation" `Quick test_d017_fork_conservation;
          Alcotest.test_case "D018 worker PRNG derivation" `Quick test_d018_worker_prng;
          Alcotest.test_case "--only rule filter" `Quick test_only_filter;
          Alcotest.test_case "callgraph through include and functors" `Quick
            test_callgraph_include_functor;
        ] );
      ( "gate",
        [
          Alcotest.test_case "stale baseline fails; regeneration passes" `Quick
            test_gate_and_baseline_regeneration;
          Alcotest.test_case "baseline writes are deterministic" `Quick
            test_baseline_write_deterministic;
        ] );
      ( "dispositions",
        [
          Alcotest.test_case "suppression is per-site and per-rule" `Quick test_suppression_exact;
          Alcotest.test_case "clean file stays clean" `Quick test_clean_fixture;
          Alcotest.test_case "baseline grandfathers exactly once" `Quick
            test_baseline_grandfathers;
          Alcotest.test_case "suppress comment parser" `Quick test_suppress_parser;
        ] );
      ( "report",
        [
          Alcotest.test_case "JSON round-trips through Obs.Json" `Quick test_json_roundtrip;
          Alcotest.test_case "SARIF pinned byte-exactly" `Quick test_sarif_pinned;
          Alcotest.test_case "SARIF document shape" `Quick test_sarif_shape;
          Alcotest.test_case "severity mapping" `Quick test_severities;
        ] );
    ]
