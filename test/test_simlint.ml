(* Tests for the simlint determinism & simulation-hygiene linter, driving it
   as a library against the fixture corpus under tools/simlint/fixtures/.

   The fixtures are declared as test dependencies, so they are materialised
   under _build next to the test's working directory. *)

open Simlint

let check = Alcotest.(check bool)

(* cwd at runtime is _build/default/test. Under `dune runtest` the declared
   fixture deps are materialised at ../tools/simlint; under a bare
   `dune exec` they are not, so fall back to walking up to the source tree
   (whose root is three levels above the build dir). *)
let fixtures_root =
  let rec find base = function
    | 0 -> Alcotest.fail "tools/simlint/fixtures not found from cwd"
    | n ->
        let candidate = Filename.concat base "tools/simlint" in
        if Sys.file_exists (Filename.concat candidate "fixtures") then candidate
        else find (Filename.concat base "..") (n - 1)
  in
  find "." 7

let run_fixtures ?baseline () =
  Driver.run ?baseline ~dirs:[ "fixtures" ] ~force_lib:true ~root:fixtures_root ()

let triple (f : Finding.t) = (f.Finding.rule, f.Finding.file, f.Finding.line)
let opens result = List.map (fun (f, _) -> triple f) (Driver.open_findings result)

let in_file file result =
  List.filter (fun (_, f, _) -> f = "fixtures/" ^ file) (opens result)

let rule_lines rule findings =
  List.filter_map (fun (r, _, l) -> if r = rule then Some l else None) findings

(* ------------------------------------------------------------------ *)

let test_every_rule_fires () =
  let result = run_fixtures () in
  let rules = List.sort_uniq compare (List.map (fun (r, _, _) -> r) (opens result)) in
  List.iter
    (fun rule -> check (rule ^ " fires on the corpus") true (List.mem rule rules))
    [ "D001"; "D002"; "D003"; "D004"; "D005" ];
  check "no parse failures in fixtures" false (List.mem "E000" rules)

let test_corpus_fails_gate () =
  check "fixture corpus has open findings" true (Driver.open_findings (run_fixtures ()) <> [])

let test_d001_sites () =
  let fs = in_file "d001_wallclock.ml" (run_fixtures ()) in
  Alcotest.(check (list int))
    "every wall-clock read flagged, including via Stdlib" [ 3; 4; 5; 6 ]
    (List.sort compare (rule_lines "D001" fs))

let test_d002_sites () =
  let fs = in_file "d002_random.ml" (run_fixtures ()) in
  Alcotest.(check int)
    "Random.*, ~random:, randomize, open, alias all flagged" 6
    (List.length (rule_lines "D002" fs))

let test_d003_only_unsorted () =
  let fs = in_file "d003_hashtbl_order.ml" (run_fixtures ()) in
  Alcotest.(check (list int))
    "iter and unsorted fold flagged; |>, direct and @@ sorts sanctioned" [ 7; 10 ]
    (List.sort compare (rule_lines "D003" fs))

let test_d004_sites () =
  let fs = in_file "d004_unsafe.ml" (run_fixtures ()) in
  Alcotest.(check (list int))
    "Obj.magic, ==, != flagged in lib code" [ 3; 4; 5 ]
    (List.sort compare (rule_lines "D004" fs))

let test_d004_d005_lib_only () =
  (* Without force_lib the fixture is ordinary tool/app code: the unsafe
     constructs and the missing .mli are tolerated. *)
  let findings, _ = Driver.lint_file ~root:fixtures_root ~rel:"fixtures/d004_unsafe.ml" () in
  check "no D004 outside lib" true
    (not (List.exists (fun (f : Finding.t) -> f.Finding.rule = "D004") findings));
  check "no D005 outside lib" true
    (not (List.exists (fun (f : Finding.t) -> f.Finding.rule = "D005") findings))

let test_suppression_exact () =
  let result = run_fixtures () in
  (* The only open finding in suppressed.ml is the D002 whose comment names
     the wrong rule id. *)
  Alcotest.(check (list (triple string string int)))
    "mis-named allow does not silence"
    [ ("D002", "fixtures/suppressed.ml", 16) ]
    (in_file "suppressed.ml" result);
  let suppressed =
    List.filter
      (fun (f, s) -> s = Finding.Suppressed && f.Finding.file = "fixtures/suppressed.ml")
      result.Driver.findings
  in
  Alcotest.(check int) "named rules silenced at their sites" 4 (List.length suppressed)

let test_clean_fixture () =
  Alcotest.(check (list (triple string string int)))
    "compliant file yields nothing" []
    (in_file "clean.ml" (run_fixtures ()))

let test_baseline_grandfathers () =
  let baseline =
    [
      { Baseline.file = "fixtures/d003_hashtbl_order.ml"; rule = "D003"; line = 7 };
      { Baseline.file = "fixtures/gone.ml"; rule = "D001"; line = 1 };
    ]
  in
  let plain = run_fixtures () in
  let result = run_fixtures ~baseline () in
  Alcotest.(check int)
    "baselined finding no longer open"
    (List.length (Driver.open_findings plain) - 1)
    (List.length (Driver.open_findings result));
  check "finding reported as baselined" true
    (List.exists
       (fun (f, s) -> s = Finding.Baselined && triple f = ("D003", "fixtures/d003_hashtbl_order.ml", 7))
       result.Driver.findings);
  Alcotest.(check int) "stale entry surfaced" 1 (List.length result.Driver.stale_baseline)

let test_json_roundtrip () =
  let result = run_fixtures () in
  let j = Driver.to_json result in
  let s = Obs.Json.to_string j in
  let j' = Obs.Json.of_string s in
  Alcotest.(check string) "canonical text is a fixpoint" s (Obs.Json.to_string j');
  Alcotest.(check string)
    "schema" "simlint-report/1"
    (Obs.Json.str (Obs.Json.get j' "schema"));
  Alcotest.(check int)
    "finding count round-trips"
    (List.length result.Driver.findings)
    (List.length (Obs.Json.arr (Obs.Json.get j' "findings")))

let test_suppress_parser () =
  let t = Suppress.parse "let a = 1\n(* simlint: allow D001 D003 — why *)\nlet b = 2\n" in
  check "covers own line" true (Suppress.covers t ~rule:"D001" ~line:2);
  check "covers next line" true (Suppress.covers t ~rule:"D003" ~line:3);
  check "does not cover later lines" false (Suppress.covers t ~rule:"D001" ~line:4);
  check "does not cover other rules" false (Suppress.covers t ~rule:"D002" ~line:3);
  check "no marker, no suppression" true (Suppress.parse "(* allow D001 *)" = [])

let () =
  Alcotest.run "simlint"
    [
      ( "rules",
        [
          Alcotest.test_case "every rule fires" `Quick test_every_rule_fires;
          Alcotest.test_case "corpus fails the gate" `Quick test_corpus_fails_gate;
          Alcotest.test_case "D001 wall clock" `Quick test_d001_sites;
          Alcotest.test_case "D002 randomness" `Quick test_d002_sites;
          Alcotest.test_case "D003 unsorted traversals only" `Quick test_d003_only_unsorted;
          Alcotest.test_case "D004 unsafe constructs" `Quick test_d004_sites;
          Alcotest.test_case "D004/D005 are lib-only" `Quick test_d004_d005_lib_only;
        ] );
      ( "dispositions",
        [
          Alcotest.test_case "suppression is per-site and per-rule" `Quick test_suppression_exact;
          Alcotest.test_case "clean file stays clean" `Quick test_clean_fixture;
          Alcotest.test_case "baseline grandfathers exactly once" `Quick
            test_baseline_grandfathers;
          Alcotest.test_case "suppress comment parser" `Quick test_suppress_parser;
        ] );
      ( "report",
        [ Alcotest.test_case "JSON round-trips through Obs.Json" `Quick test_json_roundtrip ] );
    ]
