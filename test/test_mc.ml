(* Bounded exhaustive model checking (lib/mc): cross-validation against
   the random fuzzer, partial-order-reduction soundness, counterexample
   replay, and jobs-invariance of the canonical report.

   Every pinned integer below (schedule counts, prune counts) is a pure
   function of the explored config and the engine — like the digest pins
   in test_check.ml, they only move when the engine's query pattern, the
   deployed algorithms or the explorer's enumeration order change.
   Regenerate by printing the stats of a run and update the constant. *)

let registry = Broken_dining.registry

let mc_config ?(algo = "wf") ?(horizon = 12) ?(delta = 2) ?(phi = 1) ?(eat_ticks = 1)
    ?(crashes = []) () =
  {
    Check.Config.algo;
    topology = Check.Config.Pair;
    adversary = Check.Config.Dls { delta; phi };
    crashes;
    handicap = None;
    horizon;
    eat_ticks;
    seed = 0x5EEDL;
  }

let explore ?(por = true) ?(jobs = 1) ?(collect = false) ?(crash_budget = 0) base =
  Mc.Explore.run ~registry
    {
      (Mc.Explore.default ~base) with
      Mc.Explore.por;
      jobs;
      collect_schedules = collect;
      crash_budget;
      max_schedules = 500_000;
    }

(* ------------------------------------------------------------------ *)
(* Enumeration basics *)

(* delta = 1 and phi = 1 leave the adversary no choices at all: the tree
   is a single (synchronous) schedule. *)
let test_synchronous_is_single_schedule () =
  let r = explore (mc_config ~delta:1 ~phi:1 ()) in
  Alcotest.(check int) "one schedule" 1 r.Mc.Explore.stats.Mc.Explore.schedules;
  Alcotest.(check int) "no violations" 0 r.Mc.Explore.stats.Mc.Explore.violation_count;
  Alcotest.(check int) "nothing pruned" 0 r.Mc.Explore.stats.Mc.Explore.pruned

(* The flagship green instance: the real WF-◇WX diner on a pair, delays
   in {1, 2}, every step forced — 256 delay schedules, all of which keep
   the Section 4 properties. *)
let pinned_wf_green_schedules = 256

let test_wf_green_instance () =
  let r = explore (mc_config ()) in
  let s = r.Mc.Explore.stats in
  Alcotest.(check int) "schedule count pinned" pinned_wf_green_schedules
    s.Mc.Explore.schedules;
  Alcotest.(check int) "no violations" 0 s.Mc.Explore.violation_count;
  Alcotest.(check bool) "not truncated" false s.Mc.Explore.truncated

(* ------------------------------------------------------------------ *)
(* Cross-validation: the exhaustive schedule set (no reduction) is a
   superset of any random DLS tape for the same instance. *)

let pinned_step_instance_schedules = 20736

let test_exhaustive_superset_of_random_tapes () =
  let base = mc_config ~algo:"hygienic" ~horizon:10 ~delta:1 ~phi:2 () in
  let r = explore ~por:false ~collect:true base in
  Alcotest.(check int) "schedule count pinned" pinned_step_instance_schedules
    r.Mc.Explore.stats.Mc.Explore.schedules;
  Alcotest.(check int) "collected every schedule" pinned_step_instance_schedules
    (List.length r.Mc.Explore.schedules);
  let seen = Hashtbl.create 8192 in
  List.iter (fun d -> Hashtbl.replace seen (Mc.Explore.schedule_key d) ()) r.Mc.Explore.schedules;
  for i = 0 to 49 do
    let rng = Dsim.Prng.derive 0xF00DL ~index:i in
    let tape = Mc.Explore.random_schedule ~registry base rng in
    Alcotest.(check bool)
      (Printf.sprintf "random tape %d is an enumerated schedule" i)
      true
      (Hashtbl.mem seen (Mc.Explore.schedule_key tape))
  done

(* ------------------------------------------------------------------ *)
(* Partial-order reduction: pinned reduction counts, and the reduced
   exploration reaches the same verdicts — a violation exists iff the
   full exploration finds one, for the same set of failed properties. *)

let pinned_por_instance = ("hygienic", 8, 1, 3)
let pinned_full_schedules = 22201
let pinned_full_violations = 22041
let pinned_por_schedules = 4530
let pinned_por_pruned = 1048
let pinned_por_violations = 4454

let failed_name_set (r : Mc.Explore.result) =
  List.sort_uniq String.compare
    (List.concat_map
       (fun (v : Mc.Explore.violation) ->
         List.filter_map
           (fun (c : Obs.Report.check) ->
             if c.Obs.Report.holds then None else Some c.Obs.Report.name)
           v.Mc.Explore.repro.Check.Repro.checks)
       r.Mc.Explore.violations)

let test_por_counts_pinned_and_verdicts_equal () =
  let algo, horizon, delta, phi = pinned_por_instance in
  let base = mc_config ~algo ~horizon ~delta ~phi () in
  let full = explore ~por:false base in
  let por = explore ~por:true base in
  Alcotest.(check int) "full schedule count pinned" pinned_full_schedules
    full.Mc.Explore.stats.Mc.Explore.schedules;
  Alcotest.(check int) "full violation count pinned" pinned_full_violations
    full.Mc.Explore.stats.Mc.Explore.violation_count;
  Alcotest.(check int) "nothing pruned without POR" 0
    full.Mc.Explore.stats.Mc.Explore.pruned;
  Alcotest.(check int) "reduced schedule count pinned" pinned_por_schedules
    por.Mc.Explore.stats.Mc.Explore.schedules;
  Alcotest.(check int) "pruned branch count pinned" pinned_por_pruned
    por.Mc.Explore.stats.Mc.Explore.pruned;
  Alcotest.(check int) "reduced violation count pinned" pinned_por_violations
    por.Mc.Explore.stats.Mc.Explore.violation_count;
  Alcotest.(check (list string)) "reduction preserves the failed-property set"
    (failed_name_set full) (failed_name_set por)

(* ------------------------------------------------------------------ *)
(* Seeded broken variant: wf-dropfork starves on the very first (all-
   friendliest) schedule — the bounded DFS counterexample is already
   minimal — and the emitted fuzz-repro/1 artifact replays
   bit-identically through the ordinary replay machinery. *)

let test_dropfork_counterexample_and_replay () =
  let base = mc_config ~algo:Broken_dining.algo () in
  let r = explore base in
  let s = r.Mc.Explore.stats in
  Alcotest.(check int) "same schedule count as the green instance"
    pinned_wf_green_schedules s.Mc.Explore.schedules;
  Alcotest.(check int) "every schedule starves" pinned_wf_green_schedules
    s.Mc.Explore.violation_count;
  let first =
    match r.Mc.Explore.violations with
    | v :: _ -> v
    | [] -> Alcotest.fail "no counterexample found"
  in
  Alcotest.(check int) "first counterexample is the first schedule" 0
    first.Mc.Explore.schedule_index;
  let repro = first.Mc.Explore.repro in
  Alcotest.(check bool) "wait_freedom is among the failures" true
    (List.exists
       (fun (c : Obs.Report.check) ->
         (not c.Obs.Report.holds) && String.equal c.Obs.Report.name "wait_freedom")
       repro.Check.Repro.checks);
  (* Artifact round-trip: save validates the digest on load, and replay
     re-executes the run and compares every recorded verdict. *)
  let path = Filename.temp_file "mc-cex" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Check.Repro.save ~path repro;
      let loaded = Check.Repro.load ~path in
      Alcotest.(check string) "digest survives the round trip" (Check.Repro.digest repro)
        (Check.Repro.digest loaded);
      match Check.Repro.replay ~registry loaded with
      | Ok _ -> ()
      | Error mismatches ->
          Alcotest.fail
            ("counterexample did not replay bit-identically: " ^ String.concat "; " mismatches));
  (* Determinism: an independent exploration produces the same artifact. *)
  let again = explore base in
  match again.Mc.Explore.violations with
  | v :: _ ->
      Alcotest.(check string) "counterexample digest is deterministic"
        (Check.Repro.digest repro)
        (Check.Repro.digest v.Mc.Explore.repro)
  | [] -> Alcotest.fail "second exploration found no counterexample"

(* ------------------------------------------------------------------ *)
(* Crash-budget enumeration *)

let test_crash_schedule_enumeration () =
  let base = mc_config ~horizon:10 () in
  let mc =
    { (Mc.Explore.default ~base) with Mc.Explore.crash_budget = 1; crash_grid = 4 }
  in
  Alcotest.(check (list (list (pair int int))))
    "crash schedules enumerate pid/tick grid in canonical order"
    [ []; [ (0, 4) ]; [ (0, 8) ]; [ (1, 4) ]; [ (1, 8) ] ]
    (Mc.Explore.crash_schedules mc);
  let r = Mc.Explore.run ~registry mc in
  Alcotest.(check int) "all five crash schedules explored" 5
    r.Mc.Explore.stats.Mc.Explore.crash_schedules;
  (* Each violation names the crash schedule it came from. *)
  List.iter
    (fun (v : Mc.Explore.violation) ->
      let within = v.Mc.Explore.crash_index >= 0 && v.Mc.Explore.crash_index < 5 in
      Alcotest.(check bool) "violation crash index in range" true within)
    r.Mc.Explore.violations

(* ------------------------------------------------------------------ *)
(* Reports: canonical body, schema dispatch, jobs-invariance *)

let stripped_report ~jobs base =
  let metrics = Obs.Metrics.create () in
  let mc =
    {
      (Mc.Explore.default ~base) with
      Mc.Explore.por = true;
      jobs;
      max_schedules = 500_000;
    }
  in
  let result = Mc.Explore.run ~metrics ~registry mc in
  let report = Mc.Report.make ~config:mc ~result ~metrics () in
  Obs.Json.to_string_pretty (Obs.Report.strip_wall_clock report)

let test_report_jobs_invariance () =
  let algo, horizon, delta, phi = pinned_por_instance in
  let base = mc_config ~algo ~horizon ~delta ~phi () in
  let one = stripped_report ~jobs:1 base in
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Printf.sprintf "jobs=%d report matches jobs=1" jobs)
        one
        (stripped_report ~jobs base))
    [ 2; 7 ]

let test_report_schema_round_trip () =
  let base = mc_config ~algo:Broken_dining.algo ~horizon:10 () in
  let mc = Mc.Explore.default ~base in
  let result = Mc.Explore.run ~registry mc in
  let report = Mc.Report.make ~config:mc ~result () in
  let path = Filename.temp_file "mc-report" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Obs.Report.write ~path report;
      Obs.Report.validate_mc (Obs.Report.read_mc ~path);
      (match Obs.Report.read_any ~path with
      | `Mc j ->
          Alcotest.(check string) "read_any dispatches to the mc validator"
            (Obs.Json.to_string report) (Obs.Json.to_string j)
      | `Run _ | `Campaign _ | `Simlint _ -> Alcotest.fail "mc report misdispatched");
      (* The human summary renders without raising. *)
      let j = Obs.Report.read_mc ~path in
      let buf = Buffer.create 256 in
      let fmt = Format.formatter_of_buffer buf in
      Obs.Report.pp_mc_summary fmt j;
      Format.pp_print_flush fmt ();
      Alcotest.(check bool) "summary mentions the schedule count" true
        (Buffer.length buf > 0))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "mc"
    [
      ( "explore",
        [
          Alcotest.test_case "synchronous instance has one schedule" `Quick
            test_synchronous_is_single_schedule;
          Alcotest.test_case "wf green instance is exhaustively clean" `Quick
            test_wf_green_instance;
          Alcotest.test_case "exhaustive set covers random tapes" `Slow
            test_exhaustive_superset_of_random_tapes;
          Alcotest.test_case "POR counts pinned, verdicts preserved" `Slow
            test_por_counts_pinned_and_verdicts_equal;
          Alcotest.test_case "crash schedules enumerate canonically" `Slow
            test_crash_schedule_enumeration;
        ] );
      ( "counterexamples",
        [
          Alcotest.test_case "dropfork caught, repro replays bit-identically" `Quick
            test_dropfork_counterexample_and_replay;
        ] );
      ( "report",
        [
          Alcotest.test_case "canonical report is jobs-invariant" `Slow
            test_report_jobs_invariance;
          Alcotest.test_case "dinersim-mc/1 schema round-trips" `Quick
            test_report_schema_round_trip;
        ] );
    ]
