(* Tests for the agreement layer: consensus and stable leader election over
   ◇P — including on top of the detector extracted from black-box dining. *)

open Dsim

let check = Alcotest.(check bool)
let holds (v : Detectors.Properties.verdict) = v.Detectors.Properties.holds

(* ------------------------------------------------------------------ *)
(* Consensus over the native heartbeat ◇P *)

let consensus_run ?(seed = 71L) ?(adversary = Adversary.partial_sync ~gst:300 ())
    ?(horizon = 8000) ?(crash = []) ?windows ~n ~inputs () =
  let engine = Engine.create ~seed ~n ~adversary () in
  let suspects =
    Core.Scenario.evp_suspects engine ~n ~windows:(Option.value ~default:[] windows)
  in
  let instances =
    List.init n (fun pid ->
        let ctx = Engine.ctx engine pid in
        let c =
          Agreement.Consensus.create ctx ~members:(List.init n Fun.id)
            ~suspects:(suspects pid) ()
        in
        Engine.register engine pid c.Agreement.Consensus.component;
        c.Agreement.Consensus.propose (List.nth inputs pid);
        c)
  in
  List.iter (fun (pid, at) -> Engine.schedule_crash engine pid ~at) crash;
  Engine.run engine ~until:horizon;
  (engine, instances)

let test_consensus_all_correct () =
  let engine, instances = consensus_run ~n:3 ~inputs:[ 10; 20; 30 ] () in
  List.iteri
    (fun pid c ->
      match c.Agreement.Consensus.decided () with
      | Some v ->
          check (Printf.sprintf "p%d decided an input" pid) true (List.mem v [ 10; 20; 30 ])
      | None -> Alcotest.failf "p%d never decided" pid)
    instances;
  check "agreement" true (holds (Agreement.Consensus.agreement (Engine.trace engine)))

let test_consensus_coordinator_crash () =
  (* The round-0 coordinator (p0) dies before anyone can decide: rotation +
     suspicion drive later rounds to success. *)
  let engine, instances =
    consensus_run ~seed:72L ~n:5 ~inputs:[ 1; 2; 3; 4; 5 ] ~crash:[ (0, 5) ] ~horizon:10000 ()
  in
  List.iteri
    (fun pid c ->
      if pid <> 0 then
        check (Printf.sprintf "p%d decided" pid) true (c.Agreement.Consensus.decided () <> None))
    instances;
  check "agreement" true (holds (Agreement.Consensus.agreement (Engine.trace engine)))

let test_consensus_two_crashes_of_five () =
  let engine, instances =
    consensus_run ~seed:73L ~n:5 ~inputs:[ 7; 7; 9; 9; 9 ] ~crash:[ (1, 40); (3, 200) ]
      ~horizon:12000 ()
  in
  List.iteri
    (fun pid c ->
      if pid <> 1 && pid <> 3 then
        check (Printf.sprintf "p%d decided" pid) true (c.Agreement.Consensus.decided () <> None))
    instances;
  check "agreement" true (holds (Agreement.Consensus.agreement (Engine.trace engine)))

let test_consensus_survives_detector_mistakes () =
  (* Wrongful suspicions of live coordinators cost rounds but never safety. *)
  let windows =
    [
      (1, [ { Detectors.Injected.from_ = 0; until = 600; target = 0 } ]);
      (2, [ { Detectors.Injected.from_ = 0; until = 500; target = 0 } ]);
    ]
  in
  let engine, instances =
    consensus_run ~seed:74L ~n:3 ~inputs:[ 5; 6; 7 ] ~windows ~horizon:10000 ()
  in
  List.iteri
    (fun pid c ->
      check (Printf.sprintf "p%d decided" pid) true (c.Agreement.Consensus.decided () <> None))
    instances;
  check "agreement" true (holds (Agreement.Consensus.agreement (Engine.trace engine)))

let test_consensus_validity_unanimous () =
  let _, instances = consensus_run ~seed:75L ~n:3 ~inputs:[ 42; 42; 42 ] () in
  List.iter
    (fun c -> Alcotest.(check (option int)) "decided 42" (Some 42) (c.Agreement.Consensus.decided ()))
    instances

let test_consensus_seed_sweep () =
  List.iter
    (fun seed ->
      let engine, instances =
        consensus_run ~seed:(Int64.of_int seed) ~n:4 ~inputs:[ 1; 2; 3; 4 ]
          ~crash:(if seed mod 2 = 0 then [ (seed mod 4, 100 + (seed * 37 mod 1000)) ] else [])
          ~horizon:12000 ()
      in
      check
        (Printf.sprintf "seed %d: agreement" seed)
        true
        (holds (Agreement.Consensus.agreement (Engine.trace engine)));
      List.iteri
        (fun pid c ->
          if Engine.is_live engine pid && c.Agreement.Consensus.decided () = None then
            Alcotest.failf "seed %d: correct p%d undecided" seed pid)
        instances)
    [ 301; 302; 303; 304; 305; 306 ]

let test_consensus_trace_pinned () =
  (* Regression for the Hashtbl-order bug class (simlint D003): coordinator
     actions iterate rounds in sorted key order, so Cs_propose/Cs_decide
     emission order is a function of protocol state only. Two runs from one
     seed must be bit-identical, and the digest is pinned so a reintroduced
     order dependence that happens to be stable within one binary still
     shows up as a diff when the table layout shifts. *)
  let run () =
    let engine, _ =
      consensus_run ~seed:77L ~n:5 ~inputs:[ 3; 1; 4; 1; 5 ] ~crash:[ (0, 50) ]
        ~horizon:10000 ()
    in
    Trace.to_csv (Engine.trace engine)
  in
  let a = run () in
  check "replay is bit-identical" true (a = run ());
  Alcotest.(check string)
    "pinned trace digest for seed 77" "4dac5952070e79639dd065e2cff5276f"
    (Digest.to_hex (Digest.string a))

(* ------------------------------------------------------------------ *)
(* Leader election *)

let leader_run ?(seed = 81L) ?(horizon = 6000) ?(crash = []) ~n () =
  let engine = Engine.create ~seed ~n ~adversary:(Adversary.partial_sync ~gst:300 ()) () in
  let suspects = Core.Scenario.evp_suspects engine ~n ~windows:[] in
  let leaders =
    List.init n (fun pid ->
        let ctx = Engine.ctx engine pid in
        let l =
          Agreement.Leader.create ctx ~members:(List.init n Fun.id) ~suspects:(suspects pid) ()
        in
        Engine.register engine pid l.Agreement.Leader.component;
        l)
  in
  List.iter (fun (pid, at) -> Engine.schedule_crash engine pid ~at) crash;
  Engine.run engine ~until:horizon;
  (engine, leaders)

let test_leader_stable_no_crash () =
  let engine, leaders = leader_run ~n:4 () in
  List.iteri
    (fun pid l ->
      Alcotest.(check int) (Printf.sprintf "p%d elects p0" pid) 0 (l.Agreement.Leader.leader ());
      ignore engine)
    leaders

let test_leader_fails_over () =
  let engine, leaders = leader_run ~seed:82L ~n:4 ~crash:[ (0, 1000); (1, 2500) ] () in
  List.iteri
    (fun pid l ->
      if pid >= 2 then
        Alcotest.(check int)
          (Printf.sprintf "p%d elects p2 after fail-overs" pid)
          2
          (l.Agreement.Leader.leader ()))
    leaders;
  (* Stability: the last change happened shortly after the last crash. *)
  List.iter
    (fun pid ->
      match Agreement.Leader.stabilisation_time (Engine.trace engine) ~pid with
      | Some t -> check (Printf.sprintf "p%d stabilised" pid) true (t < 3500)
      | None -> Alcotest.failf "p%d never elected" pid)
    [ 2; 3 ]

let test_leader_changes_are_finite () =
  let engine, _ = leader_run ~seed:83L ~n:3 ~horizon:10000 () in
  List.iter
    (fun pid ->
      let changes =
        List.length (Trace.notes ~pid ~label:"leader" (Engine.trace engine))
      in
      check (Printf.sprintf "p%d: few leader changes" pid) true (changes <= 5))
    [ 0; 1; 2 ]

(* ------------------------------------------------------------------ *)
(* End-to-end: consensus over the detector extracted from dining *)

let test_consensus_over_extracted_detector () =
  let n = 3 in
  let run = Core.Scenario.wf_extraction ~seed:91L ~with_lemma_monitors:false ~n () in
  let engine = run.Core.Scenario.engine in
  let instances =
    List.init n (fun pid ->
        let ctx = Engine.ctx engine pid in
        let oracle = Reduction.Extract.oracle run.Core.Scenario.extract pid in
        let c =
          Agreement.Consensus.create ctx ~members:(List.init n Fun.id)
            ~suspects:(fun () -> oracle.Detectors.Oracle.suspects ())
            ()
        in
        Engine.register engine pid c.Agreement.Consensus.component;
        c.Agreement.Consensus.propose (100 + pid);
        c)
  in
  Engine.schedule_crash engine 2 ~at:3000;
  Engine.run engine ~until:30000;
  List.iteri
    (fun pid c ->
      if pid <> 2 then
        check
          (Printf.sprintf "p%d decided over the extracted ◇P" pid)
          true
          (c.Agreement.Consensus.decided () <> None))
    instances;
  check "agreement" true (holds (Agreement.Consensus.agreement (Engine.trace engine)))

let test_leader_over_extracted_detector () =
  let n = 3 in
  let run = Core.Scenario.wf_extraction ~seed:92L ~with_lemma_monitors:false ~n () in
  let engine = run.Core.Scenario.engine in
  let leaders =
    List.init n (fun pid ->
        let ctx = Engine.ctx engine pid in
        let oracle = Reduction.Extract.oracle run.Core.Scenario.extract pid in
        let l =
          Agreement.Leader.create ctx ~members:(List.init n Fun.id)
            ~suspects:(fun () -> oracle.Detectors.Oracle.suspects ())
            ()
        in
        Engine.register engine pid l.Agreement.Leader.component;
        l)
  in
  Engine.schedule_crash engine 0 ~at:4000;
  Engine.run engine ~until:30000;
  List.iteri
    (fun pid l ->
      if pid <> 0 then
        Alcotest.(check int)
          (Printf.sprintf "p%d elects p1 over the extracted ◇P" pid)
          1
          (l.Agreement.Leader.leader ()))
    leaders

let () =
  Alcotest.run "agreement"
    [
      ( "consensus",
        [
          Alcotest.test_case "all correct" `Quick test_consensus_all_correct;
          Alcotest.test_case "coordinator crash" `Quick test_consensus_coordinator_crash;
          Alcotest.test_case "two crashes of five" `Quick test_consensus_two_crashes_of_five;
          Alcotest.test_case "survives detector mistakes" `Quick
            test_consensus_survives_detector_mistakes;
          Alcotest.test_case "validity (unanimous)" `Quick test_consensus_validity_unanimous;
          Alcotest.test_case "seed sweep" `Slow test_consensus_seed_sweep;
          Alcotest.test_case "pinned trace (D003 regression)" `Quick
            test_consensus_trace_pinned;
        ] );
      ( "leader",
        [
          Alcotest.test_case "stable without crashes" `Quick test_leader_stable_no_crash;
          Alcotest.test_case "fails over" `Quick test_leader_fails_over;
          Alcotest.test_case "finitely many changes" `Quick test_leader_changes_are_finite;
        ] );
      ( "end-to-end over extracted ◇P",
        [
          Alcotest.test_case "consensus" `Quick test_consensus_over_extracted_detector;
          Alcotest.test_case "leader election" `Quick test_leader_over_extracted_detector;
        ] );
    ]
