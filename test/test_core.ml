(* Tests for the core umbrella: scenario builders and batch statistics. *)

open Dsim

let check = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Batch statistics *)

let test_stats_basic () =
  let s = Core.Batch.Stats.of_ints [ 1; 2; 3; 4; 5 ] in
  checkf "mean" 3.0 s.Core.Batch.Stats.mean;
  checkf "median" 3.0 s.Core.Batch.Stats.median;
  checkf "min" 1.0 s.Core.Batch.Stats.min_;
  checkf "max" 5.0 s.Core.Batch.Stats.max_;
  Alcotest.(check int) "count" 5 s.Core.Batch.Stats.count

let test_stats_even_median () =
  let s = Core.Batch.Stats.of_ints [ 1; 2; 3; 4 ] in
  checkf "median of even list" 2.5 s.Core.Batch.Stats.median

let test_stats_constant () =
  let s = Core.Batch.Stats.of_floats [ 7.0; 7.0; 7.0 ] in
  checkf "stddev of constant" 0.0 s.Core.Batch.Stats.stddev

let test_stats_empty_rejected () =
  (try
     ignore (Core.Batch.Stats.of_floats []);
     Alcotest.fail "empty accepted"
   with Invalid_argument _ -> ())

let test_seeds_distinct () =
  let seeds = Core.Batch.seeds 10 in
  Alcotest.(check int) "ten distinct seeds" 10 (List.length (List.sort_uniq compare seeds))

let test_sweep () =
  let results = Core.Batch.sweep ~seeds:(Core.Batch.seeds 4) (fun ~seed -> Int64.to_int seed) in
  Alcotest.(check int) "four results" 4 (List.length results);
  let hits, total =
    Core.Batch.count_where ~seeds:(Core.Batch.seeds 4) (fun ~seed -> Int64.to_int seed mod 2 = 0)
  in
  check "count_where total" true (total = 4 && hits <= 4)

(* ------------------------------------------------------------------ *)
(* Scenario builders are deterministic and well-formed *)

let test_scenario_determinism () =
  let run () =
    let r = Core.Scenario.wf_extraction ~seed:55L ~with_lemma_monitors:false ~n:2 () in
    Engine.run r.Core.Scenario.engine ~until:6000;
    Trace.length (Engine.trace r.Core.Scenario.engine)
  in
  Alcotest.(check int) "identical trace lengths" (run ()) (run ())

let test_scenario_pair_lookup () =
  let r = Core.Scenario.wf_extraction ~seed:56L ~with_lemma_monitors:false ~n:3 () in
  Alcotest.(check int) "six ordered pairs" 6
    (List.length r.Core.Scenario.extract.Reduction.Extract.pairs);
  let p = Reduction.Extract.pair r.Core.Scenario.extract ~watcher:2 ~subject:0 in
  check "pair identity" true (p.Reduction.Pair.watcher = 2 && p.Reduction.Pair.subject = 0);
  (try
     ignore (Reduction.Extract.pair r.Core.Scenario.extract ~watcher:0 ~subject:0);
     Alcotest.fail "self pair accepted"
   with Not_found -> ())

let test_scenario_oracle_aggregation () =
  let r = Core.Scenario.wf_extraction ~seed:57L ~with_lemma_monitors:false ~n:3 () in
  Engine.schedule_crash r.Core.Scenario.engine 2 ~at:2000;
  Engine.run r.Core.Scenario.engine ~until:15000;
  let oracle = Reduction.Extract.oracle r.Core.Scenario.extract 0 in
  let s = oracle.Detectors.Oracle.suspects () in
  check "aggregated module suspects the crashed process" true (Types.Pidset.mem 2 s);
  check "and trusts the correct one" false (Types.Pidset.mem 1 s)

let test_vulnerability_modes_disagree () =
  let run mode =
    let engine, suspected = Core.Scenario.vulnerability ~mode () in
    Engine.run engine ~until:12000;
    let det = match mode with `Flawed_cm -> "flawed-cm" | `Our_reduction -> "extracted" in
    ( List.length (Trace.suspicion_flips (Engine.trace engine) ~detector:det ~owner:1 ~target:0),
      suspected () )
  in
  let flawed_flips, _ = run `Flawed_cm in
  let our_flips, our_final = run `Our_reduction in
  check "flawed oscillates much more" true (flawed_flips > 10 * our_flips);
  check "ours converges to trust" false our_final

(* ------------------------------------------------------------------ *)
(* Certification harness *)

let certify c = Core.Certify.run ~seeds:[ 42L ] ~horizon:16000 c

let test_certify_wf_box () =
  let r = certify Core.Certify.wf_ewx_candidate in
  if not r.Core.Certify.certified then
    List.iter
      (fun (c : Core.Certify.check) ->
        if not c.Core.Certify.passed then
          Alcotest.failf "%s: %s" c.Core.Certify.label c.Core.Certify.detail)
      r.Core.Certify.checks

let test_certify_kfair_box () =
  let r = certify Core.Certify.kfair_candidate in
  check "kfair box certified" true r.Core.Certify.certified

let test_certify_ftme_box () =
  let r = certify Core.Certify.ftme_candidate in
  check "ftme box certified" true r.Core.Certify.certified

let test_certify_negative_control () =
  let r = certify Core.Certify.no_override_candidate in
  check "negative control rejected" false r.Core.Certify.certified;
  (* it must fail exactly on the liveness-derived checks *)
  List.iter
    (fun (c : Core.Certify.check) ->
      let is_liveness =
        String.length c.Core.Certify.label > 0
        && (String.sub c.Core.Certify.label 0 4 = "wait"
           || String.sub c.Core.Certify.label 0 9 = "Theorem 1")
      in
      if not c.Core.Certify.passed then
        check ("failure is liveness-related: " ^ c.Core.Certify.label) true is_liveness)
    r.Core.Certify.checks

(* Shared --seed parsing (Core.Cmdline): hex and decimal must be accepted
   uniformly by every dinersim subcommand and stress/sweep.exe. *)
let test_cmdline_parse_seed () =
  let ok s v =
    match Core.Cmdline.parse_seed s with
    | Ok got -> Alcotest.(check int64) (Printf.sprintf "parse %S" s) v got
    | Error e -> Alcotest.fail (Printf.sprintf "parse %S failed: %s" s e)
  in
  ok "7" 7L;
  ok "  42 " 42L;
  ok "0x2F00d" 0x2F00dL;
  ok "0XDEADBEEF" 0xDEADBEEFL;
  ok "0o17" 15L;
  ok "0b101" 5L;
  ok "1_000_000" 1_000_000L;
  ok "-1" (-1L);
  ok "0xffffffffffffffff" (-1L);
  List.iter
    (fun s ->
      match Core.Cmdline.parse_seed s with
      | Ok v -> Alcotest.fail (Printf.sprintf "parse %S unexpectedly gave %Ld" s v)
      | Error _ -> ())
    [ ""; "  "; "seed"; "0x"; "12abc"; "0xzz" ]

let test_cmdline_seed_roundtrip () =
  List.iter
    (fun v ->
      match Core.Cmdline.parse_seed (Core.Cmdline.seed_to_string v) with
      | Ok got -> Alcotest.(check int64) "seed echo round-trips" v got
      | Error e -> Alcotest.fail e)
    [ 0L; 7L; -1L; 0x2F00dL; Int64.max_int; Int64.min_int ]

let test_cmdline_extract_seed_flag () =
  let extract args = Core.Cmdline.extract_seed_flag ~default:9L args in
  (match extract [ "a"; "--seed"; "0x10"; "b" ] with
  | Ok (seed, rest) ->
      Alcotest.(check int64) "--seed V consumed" 16L seed;
      Alcotest.(check (list string)) "other args preserved" [ "a"; "b" ] rest
  | Error e -> Alcotest.fail e);
  (match extract [ "--seed=33" ] with
  | Ok (seed, rest) ->
      Alcotest.(check int64) "--seed=V consumed" 33L seed;
      Alcotest.(check (list string)) "nothing left" [] rest
  | Error e -> Alcotest.fail e);
  (match extract [ "x"; "y" ] with
  | Ok (seed, rest) ->
      Alcotest.(check int64) "default used when flag absent" 9L seed;
      Alcotest.(check (list string)) "args untouched" [ "x"; "y" ] rest
  | Error e -> Alcotest.fail e);
  (match extract [ "--seed" ] with
  | Ok _ -> Alcotest.fail "dangling --seed accepted"
  | Error _ -> ());
  match extract [ "--seed"; "nope" ] with
  | Ok _ -> Alcotest.fail "bad seed value accepted"
  | Error _ -> ()

let () =
  Alcotest.run "core"
    [
      ( "cmdline",
        [
          Alcotest.test_case "parse seed" `Quick test_cmdline_parse_seed;
          Alcotest.test_case "seed echo roundtrip" `Quick test_cmdline_seed_roundtrip;
          Alcotest.test_case "extract --seed flag" `Quick test_cmdline_extract_seed_flag;
        ] );
      ( "batch",
        [
          Alcotest.test_case "stats basic" `Quick test_stats_basic;
          Alcotest.test_case "even median" `Quick test_stats_even_median;
          Alcotest.test_case "constant stddev" `Quick test_stats_constant;
          Alcotest.test_case "empty rejected" `Quick test_stats_empty_rejected;
          Alcotest.test_case "seeds distinct" `Quick test_seeds_distinct;
          Alcotest.test_case "sweep" `Quick test_sweep;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "determinism" `Quick test_scenario_determinism;
          Alcotest.test_case "pair lookup" `Quick test_scenario_pair_lookup;
          Alcotest.test_case "oracle aggregation" `Quick test_scenario_oracle_aggregation;
          Alcotest.test_case "vulnerability modes disagree" `Quick
            test_vulnerability_modes_disagree;
        ] );
      ( "certify",
        [
          Alcotest.test_case "wf box certifies" `Quick test_certify_wf_box;
          Alcotest.test_case "kfair box certifies" `Quick test_certify_kfair_box;
          Alcotest.test_case "ftme box certifies" `Quick test_certify_ftme_box;
          Alcotest.test_case "negative control rejected" `Quick test_certify_negative_control;
        ] );
    ]
