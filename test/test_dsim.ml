(* Unit tests for the simulation substrate. *)

open Dsim

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Prng *)

let test_prng_determinism () =
  let a = Prng.create 42L and b = Prng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1L and b = Prng.create 2L in
  let da = List.init 16 (fun _ -> Prng.next_int64 a) in
  let db = List.init 16 (fun _ -> Prng.next_int64 b) in
  check "different seeds differ" true (da <> db)

let test_prng_bounds () =
  let rng = Prng.create 7L in
  for _ = 1 to 1000 do
    let x = Prng.int rng ~bound:17 in
    check "in [0,17)" true (x >= 0 && x < 17);
    let y = Prng.int_in rng ~lo:5 ~hi:9 in
    check "in [5,9]" true (y >= 5 && y <= 9);
    let f = Prng.float rng in
    check "in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_prng_chance_extremes () =
  let rng = Prng.create 3L in
  for _ = 1 to 50 do
    check "p=0 never" false (Prng.chance rng ~p:0.0);
    check "p=1 always" true (Prng.chance rng ~p:1.0)
  done

let test_prng_derive_pure_by_index () =
  (* Two derivations of the same (seed, index) give the same stream,
     regardless of what else was drawn in between. *)
  let a = Prng.derive 42L ~index:5 in
  ignore (Prng.next_int64 (Prng.derive 42L ~index:0));
  let b = Prng.derive 42L ~index:5 in
  for _ = 1 to 50 do
    Alcotest.(check int64) "pure in (seed, index)" (Prng.next_int64 a) (Prng.next_int64 b)
  done;
  let c = Prng.derive 42L ~index:6 in
  check "adjacent indices differ" true (Prng.next_int64 a <> Prng.next_int64 c);
  Alcotest.check_raises "negative index rejected"
    (Invalid_argument "Prng.derive: index must be non-negative") (fun () ->
      ignore (Prng.derive 42L ~index:(-1)))

let test_prng_derive_matches_split_chain () =
  (* A split chain with no interleaved draws is exactly the by-index
     derivation. The campaign used to split sequentially; this equivalence
     is what kept every recorded corpus artifact and pinned digest valid
     when it switched to [derive]. *)
  let parent = Prng.create 0xF5EEDL in
  let children = List.init 8 (fun _ -> Prng.split parent) in
  List.iteri
    (fun i child ->
      let derived = Prng.derive 0xF5EEDL ~index:i in
      for _ = 1 to 4 do
        Alcotest.(check int64) "same stream" (Prng.next_int64 child) (Prng.next_int64 derived)
      done)
    children

let test_prng_shuffle_permutes () =
  let rng = Prng.create 11L in
  let a = Array.init 20 Fun.id in
  Prng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 20 Fun.id) sorted

(* ------------------------------------------------------------------ *)
(* Vec *)

let test_vec_roundtrip () =
  let v = Vec.create () in
  for i = 0 to 99 do
    Vec.add_last v i
  done;
  check_int "length" 100 (Vec.length v);
  check_int "get" 37 (Vec.get v 37);
  Vec.set v 37 (-1);
  check_int "set" (-1) (Vec.get v 37);
  Vec.remove_last v;
  check_int "remove_last" 99 (Vec.length v);
  Alcotest.(check int) "to_list length" 99 (List.length (Vec.to_list v));
  Vec.clear v;
  check_int "clear" 0 (Vec.length v)

let test_vec_errors () =
  let v = Vec.create () in
  Alcotest.check_raises "get empty" (Invalid_argument "Vec: index out of bounds") (fun () ->
      ignore (Vec.get v 0));
  Alcotest.check_raises "remove empty" (Invalid_argument "Vec.remove_last: empty") (fun () ->
      Vec.remove_last v)

(* ------------------------------------------------------------------ *)
(* Engine: delivery, fairness, crashes *)

type Msg.t += Ping of int | Pong of int

let test_engine_ping_pong () =
  let engine = Engine.create ~seed:5L ~n:2 ~adversary:(Adversary.async_uniform ()) () in
  let received_at_1 = ref [] in
  let pongs_at_0 = ref [] in
  let ctx0 = Engine.ctx engine 0 and ctx1 = Engine.ctx engine 1 in
  let sender =
    let sent = ref 0 in
    Component.make ~name:"app"
      ~actions:
        [
          Component.action "send"
            ~guard:(fun () -> !sent < 10)
            ~body:(fun () ->
              incr sent;
              ctx0.Context.send ~dst:1 ~tag:"app" (Ping !sent));
        ]
      ~on_receive:(fun ~src:_ -> function
        | Pong k -> pongs_at_0 := k :: !pongs_at_0
        | _ -> ())
      ()
  in
  let echo =
    Component.make ~name:"app"
      ~on_receive:(fun ~src -> function
        | Ping k ->
            received_at_1 := k :: !received_at_1;
            ctx1.Context.send ~dst:src ~tag:"app" (Pong k)
        | _ -> ())
      ()
  in
  Engine.register engine 0 sender;
  Engine.register engine 1 echo;
  Engine.run engine ~until:500;
  check_int "all pings delivered" 10 (List.length !received_at_1);
  check_int "all pongs delivered" 10 (List.length !pongs_at_0);
  let sorted = List.sort compare !received_at_1 in
  Alcotest.(check (list int)) "exactly once, no corruption" (List.init 10 (fun i -> i + 1)) sorted

let test_engine_determinism () =
  let run () =
    let engine = Engine.create ~seed:99L ~n:3 ~adversary:(Adversary.async_uniform ()) () in
    let log = ref [] in
    for pid = 0 to 2 do
      let ctx = Engine.ctx engine pid in
      let comp =
        Component.make ~name:"app"
          ~actions:
            [
              Component.action "gossip"
                ~guard:(fun () -> ctx.Context.now () mod 7 = pid)
                ~body:(fun () ->
                  ctx.Context.send ~dst:((pid + 1) mod 3) ~tag:"app"
                    (Ping (ctx.Context.now ())));
            ]
          ~on_receive:(fun ~src -> function
            | Ping k -> log := (pid, src, k) :: !log
            | _ -> ())
          ()
      in
      Engine.register engine pid comp
    done;
    Engine.run engine ~until:300;
    !log
  in
  check "same seed, same run" true (run () = run ())

let test_engine_weak_fairness () =
  (* A continuously enabled action runs infinitely often even under a
     step-skipping adversary, thanks to the fairness bound. *)
  let engine =
    Engine.create ~seed:2L ~n:1
      ~adversary:(Adversary.async_uniform ~step_prob:0.05 ~fairness_bound:10 ())
      ()
  in
  let fired = ref 0 in
  let comp =
    Component.make ~name:"app"
      ~actions:
        [ Component.action "tick" ~guard:(fun () -> true) ~body:(fun () -> incr fired) ]
      ()
  in
  Engine.register engine 0 comp;
  Engine.run engine ~until:1000;
  check "fired at least horizon/bound times" true (!fired >= 100)

let test_engine_action_rotation () =
  (* Two always-enabled actions alternate: neither starves the other. *)
  let engine = Engine.create ~seed:2L ~n:1 ~adversary:(Adversary.synchronous ()) () in
  let a = ref 0 and b = ref 0 in
  let comp =
    Component.make ~name:"app"
      ~actions:
        [
          Component.action "a" ~guard:(fun () -> true) ~body:(fun () -> incr a);
          Component.action "b" ~guard:(fun () -> true) ~body:(fun () -> incr b);
        ]
      ()
  in
  Engine.register engine 0 comp;
  Engine.run engine ~until:100;
  check "a ran" true (!a >= 49);
  check "b ran" true (!b >= 49)

let test_engine_crash_stops_steps () =
  let engine = Engine.create ~seed:8L ~n:2 ~adversary:(Adversary.synchronous ()) () in
  let steps = ref 0 in
  let ctx1 = Engine.ctx engine 1 in
  ignore ctx1;
  let comp =
    Component.make ~name:"app"
      ~actions:[ Component.action "t" ~guard:(fun () -> true) ~body:(fun () -> incr steps) ]
      ()
  in
  Engine.register engine 1 comp;
  Engine.schedule_crash engine 1 ~at:50;
  Engine.run engine ~until:200;
  check "no steps after crash" true (!steps <= 50);
  check "crashed set" true (Types.Pidset.mem 1 (Engine.crashed engine));
  check "live set" true (Types.Pidset.mem 0 (Engine.live_set engine));
  (* Crash is in the trace exactly once. *)
  let crashes =
    Trace.filter (Engine.trace engine) (fun e ->
        match e.Trace.ev with Trace.Crash { pid } -> pid = 1 | _ -> false)
  in
  check_int "one crash event" 1 (List.length crashes)

let test_engine_messages_to_crashed_dropped () =
  let engine = Engine.create ~seed:8L ~n:2 ~adversary:(Adversary.async_uniform ()) () in
  let got = ref 0 in
  let ctx0 = Engine.ctx engine 0 in
  let sender =
    Component.make ~name:"app"
      ~actions:
        [
          Component.action "spam"
            ~guard:(fun () -> true)
            ~body:(fun () -> ctx0.Context.send ~dst:1 ~tag:"app" (Ping 0));
        ]
      ()
  in
  let sink =
    Component.make ~name:"app"
      ~on_receive:(fun ~src:_ _ -> incr got)
      ()
  in
  Engine.register engine 0 sender;
  Engine.register engine 1 sink;
  Engine.schedule_crash engine 1 ~at:10;
  Engine.run engine ~until:100;
  (* Only messages delivered before the crash arrive; in-flight count for
     the tag eventually drains to 0 despite the crash. *)
  check "some early deliveries possible" true (!got <= 10);
  Engine.run engine ~until:300;
  check "sender keeps spamming but inbox stays empty" true (Engine.in_flight engine ~tag:"app" >= 0)

let test_engine_hook_order () =
  (* on_tick hooks fire in registration order every tick (they are held in
     a Vec; the old list-append representation was quadratic to build but
     had the same order — this pins the order against refactors). *)
  let engine = Engine.create ~seed:1L ~n:1 ~adversary:(Adversary.synchronous ()) () in
  let seen = ref [] in
  for i = 0 to 63 do
    Engine.on_tick engine (fun () -> seen := i :: !seen)
  done;
  Engine.step engine;
  Alcotest.(check (list int)) "hooks run in registration order" (List.init 64 Fun.id)
    (List.rev !seen)

let test_engine_reflatten_resets_rotation () =
  (* Registering a component mid-run rebuilds the flat action table; the
     weak-fairness cursor must re-anchor at the head of the new layout, not
     keep pointing wherever the old rotation stopped. *)
  let engine = Engine.create ~seed:3L ~n:1 ~adversary:(Adversary.synchronous ()) () in
  let fired = ref [] in
  let act name =
    Component.action name ~guard:(fun () -> true) ~body:(fun () -> fired := name :: !fired)
  in
  Engine.register engine 0 (Component.make ~name:"a" ~actions:[ act "a0"; act "a1" ] ());
  Engine.step engine;
  (* a0 fired; the rotation now points at a1. *)
  Engine.register engine 0 (Component.make ~name:"b" ~actions:[ act "b0"; act "b1" ] ());
  Engine.step engine;
  Alcotest.(check (list string)) "rotation re-anchored at the new layout's head"
    [ "a0"; "a0" ] (List.rev !fired)

let test_engine_delivery_exactly_once_under_backlog () =
  (* Wide delay spread ⇒ many distinct in-flight buckets; the min_binding
     peeling in deliver_ripe must still deliver every packet exactly once
     and drain the map completely. *)
  let n = 4 in
  let engine =
    Engine.create ~seed:11L ~n
      ~adversary:(Adversary.async_uniform ~max_delay:80 ~fairness_bound:20 ())
      ()
  in
  let got = ref 0 in
  for pid = 0 to n - 1 do
    let ctx = Engine.ctx engine pid in
    let comp =
      Component.make ~name:"app"
        ~actions:
          [
            Component.action "spam"
              ~guard:(fun () -> Engine.now engine < 200)
              ~body:(fun () -> ctx.Context.send ~dst:((pid + 1) mod n) ~tag:"app" (Ping 0));
          ]
        ~on_receive:(fun ~src:_ _ -> incr got)
        ()
    in
    Engine.register engine pid comp
  done;
  Engine.run engine ~until:400;
  check_int "every sent packet delivered exactly once" (Engine.sent_total engine) !got;
  check_int "in-flight map fully drained" 0 (Engine.in_flight_total engine)

let test_engine_duplicate_component_rejected () =
  let engine = Engine.create ~seed:1L ~n:1 ~adversary:(Adversary.synchronous ()) () in
  let c () = Component.make ~name:"dup" () in
  Engine.register engine 0 (c ());
  (try
     Engine.register engine 0 (c ());
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_engine_run_while () =
  let engine = Engine.create ~seed:1L ~n:1 ~adversary:(Adversary.synchronous ()) () in
  Engine.run_while engine ~max:1000 (fun () -> Engine.now engine < 123);
  check_int "stopped at predicate" 123 (Engine.now engine)

let test_engine_send_counters () =
  let engine = Engine.create ~seed:3L ~n:2 ~adversary:(Adversary.synchronous ()) () in
  let ctx0 = Engine.ctx engine 0 in
  let sender =
    Component.make ~name:"a"
      ~actions:
        [
          Component.action "s"
            ~guard:(fun () -> ctx0.Context.now () <= 10)
            ~body:(fun () ->
              ctx0.Context.send ~dst:1 ~tag:"a" (Ping 0);
              ctx0.Context.send ~dst:1 ~tag:"b" (Ping 0));
        ]
      ()
  in
  Engine.register engine 0 sender;
  Engine.run engine ~until:50;
  check_int "total" 20 (Engine.sent_total engine);
  check_int "per tag a" 10 (Engine.sent_with_tag engine ~tag:"a");
  check_int "per tag b" 10 (Engine.sent_with_tag engine ~tag:"b");
  check_int "unknown tag" 0 (Engine.sent_with_tag engine ~tag:"zzz")

let test_engine_inbox_drains_under_load () =
  (* Chatty senders must not grow inboxes without bound: a step consumes
     every pending packet (regression for a systemic livelock where
     heartbeat + retry traffic outpaced one-packet-per-step draining). *)
  let engine = Engine.create ~seed:4L ~n:3 ~adversary:(Adversary.synchronous ()) () in
  for pid = 0 to 2 do
    let ctx = Engine.ctx engine pid in
    let spam =
      Component.make ~name:"spam"
        ~actions:
          [
            Component.action "s"
              ~guard:(fun () -> true)
              ~body:(fun () ->
                ctx.Context.send ~dst:((pid + 1) mod 3) ~tag:"spam" (Ping 0);
                ctx.Context.send ~dst:((pid + 2) mod 3) ~tag:"spam" (Ping 0));
          ]
        ()
    in
    Engine.register engine pid spam
  done;
  Engine.run engine ~until:2000;
  (* 6 sends per tick, delay 1: only the last tick's packets are pending. *)
  check "bounded backlog" true (Engine.in_flight engine ~tag:"spam" <= 12)

(* ------------------------------------------------------------------ *)
(* Trace *)

let test_trace_phase_timeline () =
  let tr = Trace.create () in
  let trans at from_ to_ =
    Trace.append tr ~at (Trace.Transition { instance = "i"; pid = 0; from_; to_ })
  in
  trans 10 Types.Thinking Types.Hungry;
  trans 20 Types.Hungry Types.Eating;
  trans 35 Types.Eating Types.Exiting;
  trans 36 Types.Exiting Types.Thinking;
  let tl = Trace.phase_timeline tr ~instance:"i" ~pid:0 ~horizon:50 in
  Alcotest.(check int) "five segments" 5 (List.length tl);
  let intervals = Trace.eating_intervals tr ~instance:"i" ~pid:0 ~horizon:50 in
  Alcotest.(check (list (pair int int))) "eating interval" [ (20, 35) ] intervals

let test_trace_open_eating_clipped_at_horizon () =
  let tr = Trace.create () in
  Trace.append tr ~at:5
    (Trace.Transition { instance = "i"; pid = 1; from_ = Types.Thinking; to_ = Types.Hungry });
  Trace.append tr ~at:9
    (Trace.Transition { instance = "i"; pid = 1; from_ = Types.Hungry; to_ = Types.Eating });
  let intervals = Trace.eating_intervals tr ~instance:"i" ~pid:1 ~horizon:100 in
  Alcotest.(check (list (pair int int))) "clipped" [ (9, 100) ] intervals

let test_trace_suspicion_history () =
  let tr = Trace.create () in
  Trace.append tr ~at:3 (Trace.Suspect { detector = "d"; owner = 0; target = 1 });
  Trace.append tr ~at:9 (Trace.Trust { detector = "d"; owner = 0; target = 1 });
  Trace.append tr ~at:15 (Trace.Suspect { detector = "d"; owner = 0; target = 1 });
  let flips = Trace.suspicion_flips tr ~detector:"d" ~owner:0 ~target:1 in
  Alcotest.(check (list (pair int bool))) "flips" [ (3, true); (9, false); (15, true) ] flips;
  check "at t=5 suspected" true
    (Trace.suspected_at tr ~detector:"d" ~owner:0 ~target:1 ~at:5 ~initially:false);
  check "at t=10 trusted" false
    (Trace.suspected_at tr ~detector:"d" ~owner:0 ~target:1 ~at:10 ~initially:false);
  check "at t=0 initial" false
    (Trace.suspected_at tr ~detector:"d" ~owner:0 ~target:1 ~at:0 ~initially:false)

let test_trace_crash_times () =
  let tr = Trace.create () in
  Trace.append tr ~at:42 (Trace.Crash { pid = 3 });
  let m = Trace.crash_times tr in
  Alcotest.(check (option int)) "crash at 42" (Some 42) (Types.Pidmap.find_opt 3 m);
  Alcotest.(check (option int)) "no crash" None (Types.Pidmap.find_opt 0 m)

let test_adversary_handicap () =
  (* A handicapped process still makes progress (weak fairness), just more
     slowly than its peers. *)
  let adversary =
    Adversary.handicap ~slow:[ 1 ] ~factor:0.1 (Adversary.synchronous ())
  in
  let engine = Engine.create ~seed:3L ~n:2 ~adversary () in
  let steps = Array.make 2 0 in
  for pid = 0 to 1 do
    let comp =
      Component.make ~name:"app"
        ~actions:
          [
            Component.action "t"
              ~guard:(fun () -> true)
              ~body:(fun () -> steps.(pid) <- steps.(pid) + 1);
          ]
        ()
    in
    Engine.register engine pid comp
  done;
  Engine.run engine ~until:2000;
  check "slow process still runs" true (steps.(1) > 50);
  check "but much less than the fast one" true (steps.(1) * 3 < steps.(0))

let test_adversary_handicap_backstop () =
  (* With a factor close to 0 the chance-driven offers all but vanish, so
     progress of the slowed process rests on the stretched weak-fairness
     backstop: fairness_bound grows to ceil(base/factor) and the engine
     still forces a step whenever the process has been idle that long. *)
  let factor = 0.005 in
  let adversary = Adversary.handicap ~slow:[ 1 ] ~factor (Adversary.synchronous ()) in
  let stretched =
    int_of_float (ceil (float_of_int (Adversary.synchronous ()).Adversary.fairness_bound /. factor))
  in
  check "backstop bound is stretched, not dropped" true (stretched = 200);
  let horizon = 4000 in
  let engine = Engine.create ~seed:9L ~n:2 ~adversary () in
  let steps = Array.make 2 0 in
  for pid = 0 to 1 do
    let comp =
      Component.make ~name:"app"
        ~actions:
          [
            Component.action "t"
              ~guard:(fun () -> true)
              ~body:(fun () -> steps.(pid) <- steps.(pid) + 1);
          ]
        ()
    in
    Engine.register engine pid comp
  done;
  Engine.run engine ~until:horizon;
  (* The backstop alone guarantees about horizon/stretched forced steps. *)
  check "backstop still forces steps at factor near 0" true
    (steps.(1) >= (horizon / stretched) - 1);
  check "slowed process is heavily throttled" true (steps.(1) * 10 < steps.(0))

let test_trace_csv () =
  let tr = Trace.create () in
  Trace.append tr ~at:3
    (Trace.Transition { instance = "i"; pid = 0; from_ = Types.Thinking; to_ = Types.Hungry });
  Trace.append tr ~at:5 (Trace.Suspect { detector = "d"; owner = 0; target = 1 });
  Trace.append tr ~at:9 (Trace.Crash { pid = 1 });
  Trace.append tr ~at:11 (Trace.Note { pid = 0; label = "l"; info = "x" });
  let csv = Trace.to_csv tr in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + 4 rows" 5 (List.length lines);
  Alcotest.(check string) "header" "at,kind,scope,actor,peer,detail" (List.hd lines);
  Alcotest.(check string) "transition row" "3,transition,i,0,,thinking->hungry"
    (List.nth lines 1);
  Alcotest.(check string) "suspect row" "5,suspect,d,0,1," (List.nth lines 2);
  Alcotest.(check string) "crash row" "9,crash,,1,," (List.nth lines 3)

let test_trace_csv_escaping () =
  (* RFC 4180: fields containing commas, quotes, or line breaks must be
     quoted, with embedded quotes doubled. Regression for note payloads
     like grant reasons that quote peer state. *)
  let tr = Trace.create () in
  Trace.append tr ~at:1 (Trace.Note { pid = 0; label = "weird,label"; info = "say \", \nboth" });
  Trace.append tr ~at:2
    (Trace.Transition { instance = "inst\"q"; pid = 1; from_ = Types.Hungry; to_ = Types.Eating });
  let csv = Trace.to_csv tr in
  let lines = String.split_on_char '\n' csv in
  Alcotest.(check string) "note row quotes label and info"
    "1,note,\"weird,label\",0,,\"say \"\", " (List.nth lines 1);
  Alcotest.(check string) "embedded newline continues the field" "both\"" (List.nth lines 2);
  Alcotest.(check string) "quoted scope with doubled quote"
    "2,transition,\"inst\"\"q\",1,,hungry->eating" (List.nth lines 3)

(* ------------------------------------------------------------------ *)
(* Conflict graphs *)

let test_graph_generators () =
  let module G = Graphs.Conflict_graph in
  check_int "ring edges" 5 (List.length (G.edges (G.ring ~n:5)));
  check_int "clique edges" 10 (List.length (G.edges (G.clique ~n:5)));
  check_int "star edges" 4 (List.length (G.edges (G.star ~n:5)));
  check_int "path edges" 4 (List.length (G.edges (G.path ~n:5)));
  check_int "grid 2x3 edges" 7 (List.length (G.edges (G.grid ~rows:2 ~cols:3)));
  check_int "pair" 1 (List.length (G.edges (G.pair ())));
  check "ring symmetric" true (G.are_neighbors (G.ring ~n:5) 0 4);
  check_int "star hub degree" 4 (G.degree (G.star ~n:5) 0);
  check_int "max degree" 4 (G.max_degree (G.star ~n:5))

let test_graph_rejects_garbage () =
  let module G = Graphs.Conflict_graph in
  (try
     ignore (G.of_edges ~n:3 [ (0, 0) ]);
     Alcotest.fail "self-loop accepted"
   with Invalid_argument _ -> ());
  (try
     ignore (G.of_edges ~n:3 [ (0, 5) ]);
     Alcotest.fail "out of range accepted"
   with Invalid_argument _ -> ())

let test_graph_distance () =
  let module G = Graphs.Conflict_graph in
  let g = G.path ~n:5 in
  Alcotest.(check (option int)) "path ends" (Some 4) (G.distance g 0 4);
  Alcotest.(check (option int)) "self" (Some 0) (G.distance g 2 2);
  Alcotest.(check (option int)) "neighbors" (Some 1) (G.distance g 1 2);
  let disconnected = G.of_edges ~n:4 [ (0, 1) ] in
  Alcotest.(check (option int)) "disconnected" None (G.distance disconnected 0 3);
  let ring = G.ring ~n:6 in
  Alcotest.(check (option int)) "ring shortcut" (Some 2) (G.distance ring 0 4)

(* ------------------------------------------------------------------ *)
(* Engine trace digest pin.

   A chatty two-process exchange with a mid-run crash, digested over the
   CSV trace rendering. The pin is the behavioural contract the hot-path
   allocation work (simlint D011) must preserve: removing per-tick
   allocations from [Engine.step]/[step_process] may not change a single
   PRNG draw, delivery order, or trace byte. *)

let test_engine_trace_digest_pinned () =
  let run () =
    let engine = Engine.create ~seed:0xD161757L ~n:3 ~adversary:(Adversary.async_uniform ()) () in
    let ctxs = Array.init 3 (Engine.ctx engine) in
    for pid = 0 to 2 do
      let sent = ref 0 in
      let comp =
        Component.make ~name:"app"
          ~actions:
            [
              Component.action "gossip"
                ~guard:(fun () -> !sent < 20)
                ~body:(fun () ->
                  incr sent;
                  let dst = (pid + 1) mod 3 in
                  ctxs.(pid).Context.send ~dst ~tag:"app" (Ping !sent);
                  ctxs.(pid).Context.log
                    (Trace.Note { pid; label = "sent"; info = string_of_int !sent }))
            ]
          ~on_receive:(fun ~src -> function
            | Ping k ->
                ctxs.(pid).Context.log
                  (Trace.Note { pid; label = "got"; info = Printf.sprintf "%d<-%d" k src })
            | _ -> ())
          ()
      in
      Engine.register engine pid comp
    done;
    Engine.schedule_crash engine 1 ~at:40;
    Engine.run engine ~until:200;
    Trace.to_csv (Engine.trace engine)
  in
  let a = run () in
  check "replay is bit-identical" true (a = run ());
  Alcotest.(check string)
    "pinned engine trace digest for seed 0xD161757" "6ea50c1608b4b92d51ff0745860a5b84"
    (Digest.to_hex (Digest.string a))

let test_graph_random_valid () =
  let module G = Graphs.Conflict_graph in
  let rng = Prng.create 13L in
  let g = G.random ~n:10 ~p:0.5 ~rng in
  List.iter
    (fun (a, b) ->
      check "no self loop" true (a <> b);
      check "symmetric" true (G.are_neighbors g a b && G.are_neighbors g b a))
    (G.edges g)

let () =
  Alcotest.run "dsim"
    [
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_prng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "chance extremes" `Quick test_prng_chance_extremes;
          Alcotest.test_case "derive is pure by index" `Quick test_prng_derive_pure_by_index;
          Alcotest.test_case "derive matches a pristine split chain" `Quick
            test_prng_derive_matches_split_chain;
          Alcotest.test_case "shuffle permutes" `Quick test_prng_shuffle_permutes;
        ] );
      ( "vec",
        [
          Alcotest.test_case "roundtrip" `Quick test_vec_roundtrip;
          Alcotest.test_case "errors" `Quick test_vec_errors;
        ] );
      ( "engine",
        [
          Alcotest.test_case "ping-pong reliable exactly-once" `Quick test_engine_ping_pong;
          Alcotest.test_case "determinism" `Quick test_engine_determinism;
          Alcotest.test_case "weak fairness" `Quick test_engine_weak_fairness;
          Alcotest.test_case "action rotation" `Quick test_engine_action_rotation;
          Alcotest.test_case "crash stops steps" `Quick test_engine_crash_stops_steps;
          Alcotest.test_case "messages to crashed dropped" `Quick
            test_engine_messages_to_crashed_dropped;
          Alcotest.test_case "hook order" `Quick test_engine_hook_order;
          Alcotest.test_case "reflatten resets the rotation" `Quick
            test_engine_reflatten_resets_rotation;
          Alcotest.test_case "exactly-once under delay backlog" `Quick
            test_engine_delivery_exactly_once_under_backlog;
          Alcotest.test_case "duplicate component rejected" `Quick
            test_engine_duplicate_component_rejected;
          Alcotest.test_case "run_while" `Quick test_engine_run_while;
          Alcotest.test_case "send counters" `Quick test_engine_send_counters;
          Alcotest.test_case "inbox drains under load" `Quick
            test_engine_inbox_drains_under_load;
          Alcotest.test_case "pinned trace digest (hot-path contract)" `Quick
            test_engine_trace_digest_pinned;
        ] );
      ( "trace",
        [
          Alcotest.test_case "phase timeline" `Quick test_trace_phase_timeline;
          Alcotest.test_case "open eating clipped" `Quick test_trace_open_eating_clipped_at_horizon;
          Alcotest.test_case "suspicion history" `Quick test_trace_suspicion_history;
          Alcotest.test_case "crash times" `Quick test_trace_crash_times;
          Alcotest.test_case "csv export" `Quick test_trace_csv;
          Alcotest.test_case "csv escaping" `Quick test_trace_csv_escaping;
          Alcotest.test_case "handicap adversary" `Quick test_adversary_handicap;
          Alcotest.test_case "handicap backstop at factor near 0" `Quick
            test_adversary_handicap_backstop;
        ] );
      ( "graphs",
        [
          Alcotest.test_case "generators" `Quick test_graph_generators;
          Alcotest.test_case "rejects garbage" `Quick test_graph_rejects_garbage;
          Alcotest.test_case "distance" `Quick test_graph_distance;
          Alcotest.test_case "random valid" `Quick test_graph_random_valid;
        ] );
    ]
